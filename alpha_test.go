package alpha_test

import (
	"fmt"
	"log"
	"net"
	"testing"
	"time"

	"alpha"
	"alpha/internal/core"
)

// TestPublicAPISimulatedPath exercises the facade the way the README's
// quickstart does: simulator, two endpoints, one verifying relay.
func TestPublicAPISimulatedPath(t *testing.T) {
	net := alpha.NewNetwork(5)
	cfg := alpha.Config{Mode: alpha.ModeC, BatchSize: 4, Reliable: true, ChainLen: 128}
	epA, err := alpha.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := alpha.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := alpha.NewEndpointNode(net, "a", "b", epA)
	b := alpha.NewEndpointNode(net, "b", "a", epB)
	r := alpha.NewRelayNode(net, "r", alpha.RelayConfig{})
	link := alpha.DefaultLink()
	net.AddDuplexLink("a", "r", link)
	net.AddDuplexLink("r", "b", link)
	net.AutoRoute()

	if err := a.Start(net.Now()); err != nil {
		t.Fatal(err)
	}
	net.RunFor(time.Second)
	if !epA.Established() {
		t.Fatal("not established")
	}
	for i := 0; i < 8; i++ {
		if _, err := a.Send(net.Now(), []byte(fmt.Sprintf("api-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush(net.Now())
	net.RunFor(2 * time.Second)
	if got := len(b.DeliveredPayloads()); got != 8 {
		t.Fatalf("delivered %d/8", got)
	}
	if a.CountEvents(alpha.EventAcked) != 8 {
		t.Fatalf("acked %d/8", a.CountEvents(alpha.EventAcked))
	}
	if len(r.Extracted) != 8 {
		t.Fatalf("relay extracted %d/8", len(r.Extracted))
	}
}

// TestPublicAPIUDP exercises DialUDP/ListenUDP round trip.
func TestPublicAPIUDP(t *testing.T) {
	pa, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := alpha.Config{Mode: alpha.ModeBase, Reliable: true, ChainLen: 64}
	type res struct {
		c   *alpha.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := alpha.ListenUDP(pb, cfg, 5*time.Second)
		ch <- res{c, err}
	}()
	dialer, err := alpha.DialUDP(pa, pb.LocalAddr(), cfg, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.c.Close()
	if _, err := dialer.Send([]byte("public api over udp")); err != nil {
		t.Fatal(err)
	}
	dialer.Flush()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-r.c.Events():
			if ev.Kind == alpha.EventDelivered {
				if string(ev.Payload) != "public api over udp" {
					t.Fatalf("payload %q", ev.Payload)
				}
				return
			}
		case <-deadline:
			t.Fatal("delivery timeout")
		}
	}
}

// TestFacadeAliasesAreInterchangeable pins the facade to the internal
// packages so a refactor cannot silently fork the types.
func TestFacadeAliasesAreInterchangeable(t *testing.T) {
	var cfg alpha.Config = core.Config{Mode: alpha.ModeM}
	if cfg.Mode != alpha.ModeM {
		t.Fatal("Config alias broken")
	}
	var ev alpha.Event = core.Event{Kind: core.EventDelivered}
	if ev.Kind != alpha.EventDelivered {
		t.Fatal("Event alias broken")
	}
	if alpha.SHA1().Size() != 20 || alpha.MMO().Size() != 16 || alpha.SHA256().Size() != 32 {
		t.Fatal("suite accessors broken")
	}
}

// Example_quickstart is the runnable documentation example for the package.
func Example_quickstart() {
	simnet := alpha.NewNetwork(1)
	cfg := alpha.Config{Mode: alpha.ModeBase, Reliable: true, ChainLen: 64}
	epA, err := alpha.NewEndpoint(cfg)
	if err != nil {
		log.Fatal(err)
	}
	epB, err := alpha.NewEndpoint(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := alpha.NewEndpointNode(simnet, "a", "b", epA)
	b := alpha.NewEndpointNode(simnet, "b", "a", epB)
	simnet.AddDuplexLink("a", "b", alpha.DefaultLink())
	simnet.AutoRoute()

	if err := a.Start(simnet.Now()); err != nil {
		log.Fatal(err)
	}
	simnet.RunFor(time.Second)
	if _, err := a.Send(simnet.Now(), []byte("hello, verified world")); err != nil {
		log.Fatal(err)
	}
	a.Flush(simnet.Now())
	simnet.RunFor(time.Second)
	for _, p := range b.DeliveredPayloads() {
		fmt.Println(string(p))
	}
	// Output: hello, verified world
}

// TestFacadeConstructors covers the remaining facade surface.
func TestFacadeConstructors(t *testing.T) {
	if alpha.NewRelay(alpha.RelayConfig{}) == nil {
		t.Fatal("NewRelay nil")
	}
	pi, pr, anchors, err := alpha.Provision(alpha.Config{ChainLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if anchors.Assoc == 0 {
		t.Fatal("no association id")
	}
	a, err := alpha.NewPreconfiguredEndpoint(pi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := alpha.NewPreconfiguredEndpoint(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Established() || !b.Established() {
		t.Fatal("preconfigured endpoints not established via facade")
	}
	r := alpha.NewRelay(alpha.RelayConfig{Strict: true})
	if err := r.Seed(alpha.SHA1(), anchors); err != nil {
		t.Fatal(err)
	}
	// Verdict constants alias correctly.
	if alpha.Forward.String() != "forward" || alpha.Drop.String() != "drop" {
		t.Fatal("verdict aliases broken")
	}
	if alpha.ModeCM.String() != "ALPHA-CM" {
		t.Fatal("mode alias broken")
	}
}

// TestFacadeUDPRelay covers NewUDPRelay.
func TestFacadeUDPRelay(t *testing.T) {
	pa, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := alpha.NewUDPRelay(pr, pa.LocalAddr(), pb.LocalAddr(), alpha.RelayConfig{})
	defer r.Close()
	defer pa.Close()
	defer pb.Close()
	if r.Stats().Forwarded != 0 {
		t.Fatal("fresh relay has traffic")
	}
}
