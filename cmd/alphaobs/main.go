// Command alphaobs scrapes one or more ALPHA /metrics endpoints and holds
// the samples to the telemetry invariant catalog (DESIGN.md §5i):
//
//	I1  counters never move backwards (-recheck takes a second scrape)
//	I2  benign runs show zero verification failures (-benign); the
//	    catalog counts forged/replayed/wrong-address admission tokens
//	    (drop_admission_{invalid,replayed,addr_mismatch}) as hostile,
//	    while missing/expired tokens have benign causes and stay out
//	I3  dropped == sum of drop_<reason> for every drop family, the
//	    admission tier's alpha_admission family and the relay's
//	    drop_s1_ratelimit included
//	I4  flow conservation and the loss-scaled drop budget
//
// Usage:
//
//	alphaobs -benign -loss 0.1 -offered 10000 -hops 3 http://127.0.0.1:9100/metrics
//	alphaobs -recheck 2s http://a:9100/metrics http://b:9100/metrics
//
// Samples from multiple endpoints are summed per name, giving the chain-wide
// aggregate view the conservation rules reason about. Exit status: 0 all
// invariants hold, 1 violations, 2 usage or scrape errors.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"alpha/internal/obs"
)

func main() {
	var (
		benign   = flag.Bool("benign", false, "assert I2: no adversary, so any verification-failure drop is a violation")
		offered  = flag.Uint64("offered", 0, "offered datagram load for the I4 drop budget (0 = skip the budget rule)")
		loss     = flag.Float64("loss", 0, "expected per-hop loss probability for the I4 drop budget")
		hops     = flag.Int("hops", 0, "path length in verifying hops for the I4 drop budget")
		maxDrops = flag.Uint64("max-drops", 0, "absolute drop ceiling overriding the loss-scaled budget (0 = derive from -offered/-loss/-hops)")
		recheck  = flag.Duration("recheck", 0, "scrape again after this delay and assert I1 monotonicity between the two snapshots")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
		quiet    = flag.Bool("q", false, "suppress the per-rule summary; violations still print")
	)
	flag.Parse()
	urls := flag.Args()
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "usage: alphaobs [flags] <metrics-url>...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	scrape := func() (obs.MetricSnapshot, map[string]bool) {
		merged := make(obs.MetricSnapshot)
		counters := make(map[string]bool)
		for _, u := range urls {
			resp, err := client.Get(u)
			if err != nil {
				fmt.Fprintf(os.Stderr, "alphaobs: %v\n", err)
				os.Exit(2)
			}
			snap, ctrs, err := obs.ParsePrometheus(resp.Body)
			resp.Body.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "alphaobs: %s: %v\n", u, err)
				os.Exit(2)
			}
			// Sum per name: the invariant rules then see the chain-wide
			// aggregate, which is what conservation is about.
			for name, v := range snap {
				merged[name] += v
			}
			for name := range ctrs {
				counters[name] = true
			}
		}
		return merged, counters
	}

	snap, counters := scrape()
	inv := obs.Invariants{
		Benign:   *benign,
		Offered:  *offered,
		Loss:     *loss,
		Hops:     *hops,
		MaxDrops: *maxDrops,
	}
	violations := inv.Check(snap)

	if *recheck > 0 {
		time.Sleep(*recheck)
		cur, _ := scrape()
		violations = append(violations, obs.Monotonic(snap, cur, counters)...)
		// The second snapshot may have moved; the point-in-time rules must
		// still hold on it.
		violations = append(violations, inv.Check(cur)...)
	}

	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "alphaobs: %d invariant violation(s) across %d endpoint(s)\n", len(violations), len(urls))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("alphaobs: %d samples from %d endpoint(s): invariants hold\n", len(snap), len(urls))
	}
}
