// Command alphatoken is the out-of-band half of the admission tier: it
// generates admission keys and mints short-lived connect tokens a client
// presents in its HS1. The server (alphanode -role serve -token-key ...
// -require-token) admits only handshakes whose token decrypts under a
// shared key, has not expired, has not been seen before, and matches the
// datagram's source address.
//
// Typical flow:
//
//	alphatoken -genkey > key.hex
//	alphanode -role serve -addr 127.0.0.1:7001 -token-key $(cat key.hex) -require-token
//	alphatoken -mint -key $(cat key.hex) -client 127.0.0.1:7000 -ttl 1m > token.hex
//	alphanode -role dial -addr 127.0.0.1:7000 -peer 127.0.0.1:7001 -token $(cat token.hex)
//
// Anchor-bound tokens (-sig-anchor/-ack-anchor, hex) additionally let the
// server skip the §3.4 anchor-signature verification; they require the
// client to fix its chain anchors before requesting the token.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"alpha/internal/admission"
)

func main() {
	var (
		genkey    = flag.Bool("genkey", false, "generate a fresh admission key and print it as hex")
		mint      = flag.Bool("mint", false, "mint a connect token (requires -key and -client)")
		keyHex    = flag.String("key", "", "admission key: hex-encoded 32 bytes")
		keyID     = flag.Uint("key-id", 1, "key identifier stamped into the token (servers select the verify key by it)")
		client    = flag.String("client", "", "client source address ip:port the token is bound to")
		ttl       = flag.Duration("ttl", time.Minute, "token lifetime from now")
		sigAnchor = flag.String("sig-anchor", "", "hex signature-chain anchor to bind (optional; needs -ack-anchor too)")
		ackAnchor = flag.String("ack-anchor", "", "hex acknowledgment-chain anchor to bind (optional; needs -sig-anchor too)")
	)
	flag.Parse()

	switch {
	case *genkey:
		var key admission.Key
		if _, err := rand.Read(key[:]); err != nil {
			fatal(err)
		}
		fmt.Println(hex.EncodeToString(key[:]))

	case *mint:
		if *keyHex == "" || *client == "" {
			fatal(fmt.Errorf("-mint requires -key and -client"))
		}
		if *keyID > 255 {
			fatal(fmt.Errorf("-key-id %d out of range [0, 255]", *keyID))
		}
		raw, err := hex.DecodeString(*keyHex)
		if err != nil {
			fatal(fmt.Errorf("-key: %w", err))
		}
		if len(raw) != admission.KeySize {
			fatal(fmt.Errorf("-key: %d bytes, want %d", len(raw), admission.KeySize))
		}
		var key admission.Key
		copy(key[:], raw)
		host, portStr, err := net.SplitHostPort(*client)
		if err != nil {
			fatal(fmt.Errorf("-client: %w", err))
		}
		ip := net.ParseIP(host)
		if ip == nil {
			fatal(fmt.Errorf("-client: %q is not an IP address (tokens bind addresses, not names)", host))
		}
		port, err := strconv.Atoi(portStr)
		if err != nil || port < 0 || port > 65535 {
			fatal(fmt.Errorf("-client: bad port %q", portStr))
		}
		if (*sigAnchor == "") != (*ackAnchor == "") {
			fatal(fmt.Errorf("anchor binding needs both -sig-anchor and -ack-anchor"))
		}
		var sig, ack []byte
		if *sigAnchor != "" {
			if sig, err = hex.DecodeString(*sigAnchor); err != nil {
				fatal(fmt.Errorf("-sig-anchor: %w", err))
			}
			if ack, err = hex.DecodeString(*ackAnchor); err != nil {
				fatal(fmt.Errorf("-ack-anchor: %w", err))
			}
		}
		issuer, err := admission.NewIssuer(uint8(*keyID), key)
		if err != nil {
			fatal(err)
		}
		token, err := issuer.Mint(time.Now(), *ttl, ip, port, sig, ack)
		if err != nil {
			fatal(err)
		}
		fmt.Println(hex.EncodeToString(token))

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
