// Command alphaprovision plays the base station of §3.4's static
// bootstrapping: it mints the pair-wise material of one association and
// writes three files — one provisioning record per endpoint (secret! treat
// like private keys) and an anchor set for relays.
//
//	alphaprovision -dir ./creds -suite mmo -chainlen 1024
//	alphanode -role listen -addr :7001 -provision ./creds/responder.json
//	alphanode -role dial   -addr :7000 -peer <relay> -provision ./creds/initiator.json
//	alphanode -role relay  -addr :7002 -a ... -b ... -anchors ./creds/anchors.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"alpha/internal/core"
	"alpha/internal/suite"
)

func main() {
	var (
		dir      = flag.String("dir", ".", "output directory")
		suiteStr = flag.String("suite", "sha1", "hash suite: sha1, sha256, mmo")
		chainLen = flag.Int("chainlen", 2048, "chain length (exchanges per direction = chainlen/2)")
	)
	flag.Parse()

	var st suite.Suite
	switch *suiteStr {
	case "sha1":
		st = suite.SHA1()
	case "sha256":
		st = suite.SHA256()
	case "mmo":
		st = suite.MMO()
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suiteStr)
		os.Exit(2)
	}

	cfg := core.Config{Suite: st, ChainLen: *chainLen}
	init, resp, anchors, err := core.Provision(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	write := func(name string, v interface{}, mode os.FileMode) string {
		path := filepath.Join(*dir, name)
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, data, mode); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return path
	}
	i := write("initiator.json", init.Record(), 0600)
	r := write("responder.json", resp.Record(), 0600)
	a := write("anchors.json", anchors, 0644)
	fmt.Printf("association %016x provisioned (%s, %d exchanges/direction)\n",
		anchors.Assoc, st.Name(), *chainLen/2)
	fmt.Printf("  endpoint secrets: %s %s  (distribute securely, then delete)\n", i, r)
	fmt.Printf("  relay anchors:    %s     (public)\n", a)
}
