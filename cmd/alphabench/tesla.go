// Related-work experiment: TESLA (time-based) vs ALPHA (interaction-based)
// under network jitter — the quantitative form of the paper's §2.1.1
// argument for why ALPHA avoids time-based signatures.

package main

import (
	"fmt"
	"math/rand"
	"time"

	"alpha/internal/baseline"
	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/stats"
	"alpha/internal/suite"
)

func init() {
	extraExperiments = append(extraExperiments,
		experiment{"related-tesla", "TESLA vs ALPHA under jitter (§2.1.1's argument, measured)", runTESLA},
	)
}

// runTESLA sweeps one-way jitter against a fixed TESLA epoch and reports the
// fraction of *genuine* packets each scheme delivers.
func runTESLA() error {
	const (
		epoch    = 100 * time.Millisecond
		lag      = 1
		skew     = 10 * time.Millisecond
		baseLat  = 20 * time.Millisecond
		messages = 200
	)
	t := &stats.Table{
		Title:   fmt.Sprintf("TESLA (epoch %v, skew %v) vs ALPHA under one-way jitter", epoch, skew),
		Headers: []string{"jitter", "TESLA delivered", "TESLA discarded (late)", "TESLA buffer peak", "ALPHA delivered"},
	}
	for _, jitter := range []time.Duration{
		10 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
	} {
		delivered, unsafe, peak, err := runTESLAOnce(epoch, lag, skew, baseLat, jitter, messages)
		if err != nil {
			return err
		}
		alphaDelivered, err := runALPHAJitter(baseLat, jitter, messages)
		if err != nil {
			return err
		}
		t.Add(jitter,
			fmt.Sprintf("%d/%d (%.0f%%)", delivered, messages, 100*float64(delivered)/messages),
			unsafe,
			fmt.Sprintf("%d pkts", peak),
			fmt.Sprintf("%d/%d (%.0f%%)", alphaDelivered, messages, 100*float64(alphaDelivered)/messages))
	}
	t.Note("TESLA discards genuine packets once delivery delay approaches the epoch")
	t.Note("(its time safety condition cannot distinguish them from forgeries), and")
	t.Note("buffers whole packets until keys disclose. ALPHA's interaction-based")
	t.Note("signatures have no disclosure clock: jitter only stretches latency, so")
	t.Note("delivery stays complete — the §2.1.1 argument, measured.")
	fmt.Print(t)
	return nil
}

// runTESLAOnce streams messages through a jittery path into a TESLA
// receiver.
func runTESLAOnce(epoch time.Duration, lag uint32, skew, baseLat, jitter time.Duration, messages int) (delivered, unsafe, bufferPeak int, err error) {
	st := suite.SHA1()
	start := time.Unix(1_700_000_000, 0)
	epochs := int(time.Duration(messages)*10*time.Millisecond/epoch) + int(lag) + 8
	s, err := baseline.NewTESLASender(st, start, epoch, lag, epochs)
	if err != nil {
		return 0, 0, 0, err
	}
	r := baseline.NewTESLAReceiver(st, start, epoch, lag, skew, s.Commitment())
	rng := rand.New(rand.NewSource(99))
	// One message every 10 ms; arrival = send + base + U[0,jitter).
	type arrival struct {
		at  time.Time
		pkt *baseline.TESLAPacket
	}
	var arrivals []arrival
	for i := 0; i < messages; i++ {
		sendAt := start.Add(time.Duration(i) * 10 * time.Millisecond)
		pkt, err := s.Seal(sendAt, []byte(fmt.Sprintf("tesla-%03d", i)))
		if err != nil {
			return 0, 0, 0, err
		}
		at := sendAt.Add(baseLat + time.Duration(rng.Int63n(int64(jitter)+1)))
		arrivals = append(arrivals, arrival{at: at, pkt: pkt})
	}
	// Deliver in arrival order.
	for i := 1; i < len(arrivals); i++ {
		for j := i; j > 0 && arrivals[j].at.Before(arrivals[j-1].at); j-- {
			arrivals[j], arrivals[j-1] = arrivals[j-1], arrivals[j]
		}
	}
	for _, a := range arrivals {
		r.Receive(a.at, a.pkt)
		if p := r.PendingPackets(); p > bufferPeak {
			bufferPeak = p
		}
	}
	// Stream over: flush remaining keys.
	flushAt := start.Add(time.Duration(epochs) * epoch)
	last := s.EpochAt(arrivals[len(arrivals)-1].at)
	for e := 0; e <= last; e++ {
		if k, ok := s.KeyFor(flushAt, uint32(e)); ok {
			r.LearnKey(uint32(e), k)
		}
	}
	return len(r.Delivered()), int(r.Unsafe), bufferPeak, nil
}

// runALPHAJitter pushes the same message count through a real ALPHA
// association whose packets experience the same delay distribution.
func runALPHAJitter(baseLat, jitter time.Duration, messages int) (int, error) {
	cfg := core.Config{
		Mode: packet.ModeC, BatchSize: 8, Reliable: true,
		ChainLen: 4 * messages, RTO: 500 * time.Millisecond, MaxRetries: 20,
	}
	a, err := core.NewEndpoint(cfg)
	if err != nil {
		return 0, err
	}
	b, err := core.NewEndpoint(cfg)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(98))
	now := time.Unix(1_700_000_000, 0)
	type flight struct {
		at  time.Time
		to  *core.Endpoint
		raw []byte
	}
	var wire []flight
	post := func(to *core.Endpoint, raw []byte) {
		at := now.Add(baseLat + time.Duration(rng.Int63n(int64(jitter)+1)))
		wire = append(wire, flight{at: at, to: to, raw: raw})
	}
	delivered := 0
	step := func() {
		for i := 0; i < len(wire); {
			if wire[i].at.After(now) {
				i++
				continue
			}
			f := wire[i]
			wire = append(wire[:i], wire[i+1:]...)
			evs, _ := f.to.Handle(now, f.raw)
			for _, ev := range evs {
				if ev.Kind == core.EventDelivered && f.to == b {
					delivered++
				}
			}
		}
		outA, _ := a.Poll(now)
		for _, raw := range outA {
			post(b, raw)
		}
		outB, _ := b.Poll(now)
		for _, raw := range outB {
			post(a, raw)
		}
	}
	hs1, err := a.StartHandshake(now)
	if err != nil {
		return 0, err
	}
	post(b, hs1)
	for i := 0; i < 1000 && !a.Established(); i++ {
		now = now.Add(10 * time.Millisecond)
		step()
	}
	if !a.Established() {
		return 0, fmt.Errorf("ALPHA association failed under jitter %v", jitter)
	}
	for i := 0; i < messages; i++ {
		if _, err := a.Send(now, []byte(fmt.Sprintf("alpha-%03d", i))); err != nil {
			return 0, err
		}
		if i%8 == 7 {
			now = now.Add(10 * time.Millisecond)
			step()
		}
	}
	a.Flush(now)
	for i := 0; i < 5000 && delivered < messages; i++ {
		now = now.Add(10 * time.Millisecond)
		step()
	}
	return delivered, nil
}
