// Figure experiments: Fig. 3 (pre-(n)ack trace), Fig. 5 and 6 (ALPHA-M
// payload and overhead curves), and the §4.1.3 WSN estimate.

package main

import (
	"bytes"
	"fmt"

	"alpha/internal/analytic"
	"alpha/internal/core"
	"alpha/internal/merkle"
	"alpha/internal/packet"
	"alpha/internal/stats"
	"alpha/internal/suite"
)

// fig5Sizes are the four packet budgets of Figures 5 and 6: total packet
// sizes a)-d), including the minimum IPv6 MTU.
var fig5Sizes = []int{1280, 512, 256, 128}

// runFig5 prints the signed-bytes-per-S1 series and cross-checks the
// analytic per-packet overhead against real encoded S2 packets.
func runFig5() error {
	const sh = 20
	t := &stats.Table{
		Title:   "Figure 5 — signed bytes per S1 pre-signature (20 B hash)",
		Headers: []string{"packets n", "1280 B", "512 B", "256 B", "128 B"},
	}
	for n := 1; n <= 1<<24; n *= 4 {
		row := []interface{}{n}
		for _, sp := range fig5Sizes {
			row = append(row, stats.Bytes(analytic.STotal(n, sp, sh)))
		}
		t.Add(row...)
	}
	t.Note("Shape to compare with the paper's Fig. 5: near-linear growth in n with")
	t.Note("see-saw dips whenever the Merkle tree gains a level; larger packets")
	t.Note("always dominate, and small packets hit zero when the proof alone")
	t.Note("exceeds the packet (128 B supports trees only up to ~2^4 leaves).")
	fmt.Print(t)

	// Empirical cross-check of the per-packet model against real encoded
	// ALPHA-M S2 packets.
	fmt.Println("\ncross-check of per-packet signature overhead vs real S2 encoding:")
	ct := &stats.Table{
		Headers: []string{"leaves", "model overhead (B)", "encoded overhead (B)"},
	}
	for _, n := range []int{2, 16, 256, 1024} {
		enc, err := realS2Overhead(n)
		if err != nil {
			return err
		}
		model := sh * (analytic.Ceil2Log(n) + 1)
		ct.Add(n, model, enc)
	}
	ct.Note("Encoded overhead adds the fixed wire header and field framing on top")
	ct.Note("of the paper's pure hash-data model; the per-level +20 B step matches.")
	fmt.Print(ct)
	return nil
}

// realS2Overhead builds a real ALPHA-M exchange of n one-byte messages and
// reports the S2 wire overhead (encoded size minus payload size).
func realS2Overhead(n int) (int, error) {
	cfg := core.Config{Mode: packet.ModeM, ChainLen: 8, BatchSize: n, FlushDelay: -1}
	d, err := newDriver(cfg, cfg, nil)
	if err != nil {
		return 0, err
	}
	const payloadSize = 64
	for i := 0; i < n; i++ {
		if _, err := d.a.Send(d.now, bytes.Repeat([]byte{1}, payloadSize)); err != nil {
			return 0, err
		}
	}
	d.a.Flush(d.now)
	s1, _ := d.a.Poll(d.now)
	for _, raw := range s1 {
		d.b.Handle(d.now, raw)
	}
	a1, _ := d.b.Poll(d.now)
	for _, raw := range a1 {
		d.a.Handle(d.now, raw)
	}
	s2s, _ := d.a.Poll(d.now)
	if len(s2s) != n {
		return 0, fmt.Errorf("got %d S2 packets, want %d", len(s2s), n)
	}
	return len(s2s[0]) - payloadSize, nil
}

// runFig6 prints the transferred-bytes-per-signed-byte ratio series.
func runFig6() error {
	const sh = 20
	t := &stats.Table{
		Title:   "Figure 6 — transferred bytes per signed byte (20 B hash)",
		Headers: []string{"packets n", "1280 B", "512 B", "256 B", "128 B"},
	}
	fmtRatio := func(r float64) string {
		if r > 1e6 {
			return "∞"
		}
		return fmt.Sprintf("%.3f", r)
	}
	for n := 1; n <= 1<<24; n *= 4 {
		row := []interface{}{n}
		for _, sp := range fig5Sizes {
			row = append(row, fmtRatio(analytic.OverheadRatio(n, sp, sh)))
		}
		t.Add(row...)
	}
	t.Note("Shape: the ratio steps up with every tree level; small packets pay")
	t.Note("disproportionally (128 B packets cross 2x early, 1280 B stays below")
	t.Note("1.5x beyond 10^6 packets) — matching the a)-d) ordering of Fig. 6.")
	fmt.Print(t)
	return nil
}

// runFig3 prints an annotated trace of one reliable exchange, reproducing
// the message sequence of Figure 3 from a live run.
func runFig3() error {
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 8, FlushDelay: -1}
	d, err := newDriver(cfg, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3 — reliable exchange trace (live run)")
	fmt.Println()
	dump := func(dir string, raws [][]byte) {
		for _, raw := range raws {
			hdr, msg, err := packet.Decode(raw)
			if err != nil {
				continue
			}
			desc := ""
			switch m := msg.(type) {
			case *packet.S1:
				desc = fmt.Sprintf("h^Ss[%d], MAC(h^Ss[%d]|m)", m.AuthIdx, m.KeyIdx)
			case *packet.A1:
				desc = fmt.Sprintf("h^Va[%d], H(h^Va[%d]|1|s_ack), H(h^Va[%d]|0|s_nack)", m.AuthIdx, m.KeyIdx, m.KeyIdx)
			case *packet.S2:
				desc = fmt.Sprintf("h^Ss[%d], m (%d B)", m.KeyIdx, len(m.Payload))
			case *packet.A2:
				flag := "1, s_ack"
				if !m.Ack {
					flag = "0, s_nack"
				}
				desc = fmt.Sprintf("h^Va[%d], [%s]", m.KeyIdx, flag)
			}
			fmt.Printf("  %-18s %-4s seq=%d  %s  (%d bytes)\n", dir, hdr.Type, hdr.Seq, desc, len(raw))
		}
	}
	if _, err := d.a.Send(d.now, []byte("signed and acknowledged")); err != nil {
		return err
	}
	d.a.Flush(d.now)
	s1, _ := d.a.Poll(d.now)
	dump("Signer → Verifier", s1)
	for _, raw := range s1 {
		d.b.Handle(d.now, raw)
	}
	a1, _ := d.b.Poll(d.now)
	dump("Verifier → Signer", a1)
	for _, raw := range a1 {
		d.a.Handle(d.now, raw)
	}
	s2, _ := d.a.Poll(d.now)
	dump("Signer → Verifier", s2)
	for _, raw := range s2 {
		d.b.Handle(d.now, raw)
	}
	a2, _ := d.b.Poll(d.now)
	dump("Verifier → Signer", a2)
	for _, raw := range a2 {
		d.a.Handle(d.now, raw)
	}
	acked := false
	for _, ev := range d.aEvents {
		if ev.Kind == core.EventAcked {
			acked = true
		}
	}
	// Events from direct Handle calls above were returned inline; check
	// the signer's stats instead for the authoritative count.
	if d.a.Stats().Acked == 1 {
		acked = true
	}
	fmt.Printf("\n  4 packets total (vs 6 for a naive signed ack); signer saw verifiable ack: %v\n", acked)
	return nil
}

// runWSN reproduces the §4.1.3 estimation with measured MMO costs.
func runWSN() error {
	s := suite.MMO()
	small := bytes.Repeat([]byte{0x11}, 2*s.Size())
	pkt := bytes.Repeat([]byte{0x22}, 100)
	fixed := stats.MeasureBatch(200, 20, 100, func() {
		for i := 0; i < 100; i++ {
			s.Hash(small)
		}
	})
	full := stats.MeasureBatch(200, 20, 100, func() {
		for i := 0; i < 100; i++ {
			s.MAC(small[:16], pkt)
		}
	})
	t := &stats.Table{
		Title: fmt.Sprintf("§4.1.3 — WSN estimate (MMO-AES128, measured: %s fixed / %s per 100 B MAC)",
			stats.Us(fixed.Mean), stats.Us(full.Mean)),
		Headers: []string{"Configuration", "payload/packet", "verifiable throughput", "vs 250 Kbit/s radio"},
	}
	for _, withAcks := range []bool{false, true} {
		est := analytic.WSN(100, s.Size(), 5, fixed.Mean, full.Mean, withAcks)
		name := "ALPHA-C, 5 pre-sigs"
		if withAcks {
			name += " + pre-acks"
		}
		kbps := est.VerifiableKbps
		cap := ""
		if kbps >= 250 {
			cap = "CPU not the bottleneck (radio-limited)"
		} else {
			cap = fmt.Sprintf("%.0f%% of radio rate", kbps/250*100)
		}
		t.Add(name, fmt.Sprintf("%d B", est.PayloadPerPacket), stats.Rate(kbps*1000), cap)
	}
	t.Note("Paper (16 MHz CC2430 with AES hardware): 244 Kbit/s without and")
	t.Note("156.56 Kbit/s with pre-acks — i.e. hop-by-hop verification runs at or")
	t.Note("near radio line rate. On this host the MMO hash is far faster, so the")
	t.Note("CPU ceiling sits far above the 250 Kbit/s radio; the qualitative")
	t.Note("conclusion (relay verification is not the bottleneck) is preserved,")
	t.Note("and pre-acks cost roughly the same relative overhead.")
	fmt.Print(t)

	// Also show the AMT arithmetic of Fig. 7 holding together at n=8.
	key := s.Hash([]byte("hVa"))
	amt, err := merkle.NewAckTree(s, key, 8)
	if err != nil {
		return err
	}
	o, err := amt.Open(3, true)
	if err != nil {
		return err
	}
	fmt.Printf("\nFig. 7 AMT sanity: 8-message tree, opening (msg 3, ack) verifies: %v\n",
		merkle.VerifyOpening(s, key, amt.Root(), 8, o))
	return nil
}
