// Command alphabench regenerates every table and figure of the ALPHA paper
// (Heer et al., CoNEXT 2008) on the local machine: it runs the real
// protocol implementation under instrumented hash suites and timers, prints
// measured values next to the paper's analytic models, and flags where the
// shapes should match.
//
// Usage:
//
//	alphabench -exp all
//	alphabench -exp table1|table2|table3|table4|table5|table6
//	alphabench -exp fig3|fig5|fig6|wsn
//
// Absolute numbers differ from the paper (different decade, different CPU);
// the relationships — who wins, by what factor, where curves bend — are the
// reproduction target. See EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one regenerable table or figure.
type experiment struct {
	name string
	desc string
	run  func() error
}

// extraExperiments collects experiments registered by other files (the
// ablations), appended after the paper's tables and figures.
var extraExperiments []experiment

func experiments() []experiment {
	return append([]experiment{
		{"table1", "hash computations for processing one message (measured vs paper model)", runTable1},
		{"table2", "memory requirements for n messages sent in parallel", runTable2},
		{"table3", "additional memory for n parallel acknowledgments", runTable3},
		{"table4", "ALPHA vs RSA/DSA processing delay", runTable4},
		{"table5", "hash delay for 20 B and 1024 B inputs", runTable5},
		{"table6", "ALPHA-M estimates: processing, payload, throughput, data per S1", runTable6},
		{"fig3", "packet trace of the reliable pre-(n)ack exchange", runFig3},
		{"fig5", "signed bytes per S1 vs number of signed packets", runFig5},
		{"fig6", "transferred bytes per signed byte", runFig6},
		{"wsn", "§4.1.3 sensor-network estimate with the MMO hash", runWSN},
	}, extraExperiments...)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, or comma-separated names)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}
	want := map[string]bool{}
	runAll := *exp == "all"
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	names := make([]string, 0, len(exps))
	for _, e := range exps {
		names = append(names, e.name)
	}
	sort.Strings(names)
	ran := 0
	for _, e := range exps {
		if !runAll && !want[e.name] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n\n", e.name, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *exp, strings.Join(names, ", "))
		os.Exit(2)
	}
}
