// In-memory protocol driver: two endpoints and an optional relay with
// manual packet shuttling, used by the table experiments for precise
// measurement without simulator scheduling in the way.

package main

import (
	"fmt"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/relay"
)

// driver pumps packets between endpoint a (initiator/signer) and endpoint b
// (responder/verifier), optionally passing everything through a relay.
type driver struct {
	now  time.Time
	a, b *core.Endpoint
	r    *relay.Relay

	// holdTypes buffers matching a->b packets instead of delivering
	// them, so experiments can freeze the protocol mid-exchange.
	holdTypes map[packet.Type]bool
	held      [][]byte

	aEvents, bEvents []core.Event
}

// newDriver creates the endpoints, performs the handshake and returns the
// ready driver. Separate configs allow per-endpoint instrumented suites.
func newDriver(cfgA, cfgB core.Config, relayCfg *relay.Config) (*driver, error) {
	a, err := core.NewEndpoint(cfgA)
	if err != nil {
		return nil, err
	}
	b, err := core.NewEndpoint(cfgB)
	if err != nil {
		return nil, err
	}
	d := &driver{
		now:       time.Unix(1_700_000_000, 0),
		a:         a,
		b:         b,
		holdTypes: make(map[packet.Type]bool),
	}
	if relayCfg != nil {
		d.r = relay.New(*relayCfg)
	}
	hs1, err := a.StartHandshake(d.now)
	if err != nil {
		return nil, err
	}
	d.toB(hs1)
	d.pump(40)
	if !a.Established() || !b.Established() {
		return nil, fmt.Errorf("driver handshake failed")
	}
	return d, nil
}

// hold freezes endpoint delivery of the given packet types (both
// directions). The relay still observes held packets — it sits mid-path —
// so experiments can freeze the endpoints' protocol state while measuring
// relay state.
func (d *driver) hold(types ...packet.Type) {
	for _, t := range types {
		d.holdTypes[t] = true
	}
}

// toB delivers one datagram to b, via the relay if configured.
func (d *driver) toB(raw []byte) {
	if d.r != nil {
		if dec := d.r.Process(d.now, raw); dec.Verdict != relay.Forward {
			return
		}
	}
	if hdr, _, err := packet.Decode(raw); err == nil && d.holdTypes[hdr.Type] {
		d.held = append(d.held, raw)
		return
	}
	evs, _ := d.b.Handle(d.now, raw)
	d.bEvents = append(d.bEvents, evs...)
}

// toA delivers one datagram to a, via the relay if configured.
func (d *driver) toA(raw []byte) {
	if d.r != nil {
		if dec := d.r.Process(d.now, raw); dec.Verdict != relay.Forward {
			return
		}
	}
	if hdr, _, err := packet.Decode(raw); err == nil && d.holdTypes[hdr.Type] {
		d.held = append(d.held, raw)
		return
	}
	evs, _ := d.a.Handle(d.now, raw)
	d.aEvents = append(d.aEvents, evs...)
}

// pump advances virtual time and exchanges pending packets until quiet or
// maxRounds elapsed.
func (d *driver) pump(maxRounds int) {
	for i := 0; i < maxRounds; i++ {
		d.now = d.now.Add(5 * time.Millisecond)
		outA, evA := d.a.Poll(d.now)
		d.aEvents = append(d.aEvents, evA...)
		outB, evB := d.b.Poll(d.now)
		d.bEvents = append(d.bEvents, evB...)
		if len(outA) == 0 && len(outB) == 0 {
			return
		}
		for _, raw := range outA {
			d.toB(raw)
		}
		for _, raw := range outB {
			d.toA(raw)
		}
	}
}

// exchange sends msgs from a to b as one batch and pumps to completion.
func (d *driver) exchange(msgs [][]byte) error {
	for _, m := range msgs {
		if _, err := d.a.Send(d.now, m); err != nil {
			return err
		}
	}
	d.a.Flush(d.now)
	d.pump(60)
	return nil
}

// delivered counts b's Delivered events so far.
func (d *driver) delivered() int {
	n := 0
	for _, ev := range d.bEvents {
		if ev.Kind == core.EventDelivered {
			n++
		}
	}
	return n
}
