// Ablation experiments: quantifying the design choices DESIGN.md §5 calls
// out, each on real protocol runs.

package main

import (
	"bytes"
	"fmt"
	"time"

	"alpha/internal/core"
	"alpha/internal/hashchain"
	"alpha/internal/packet"
	"alpha/internal/stats"
	"alpha/internal/suite"
)

func init() {
	// Registered here to keep main.go's table tidy.
	extraExperiments = append(extraExperiments,
		experiment{"ablate-preack", "pre-acks (4 packets) vs naive double exchange (6 packets)", runAblatePreack},
		experiment{"ablate-modes", "ALPHA-C vs ALPHA-M: relay memory vs CPU vs wire bytes", runAblateModes},
		experiment{"ablate-checkpoint", "chain storage: full vs checkpointed owners", runAblateCheckpoint},
		experiment{"ablate-rekey", "in-band rekey: cost of a chain rotation", runAblateRekey},
		experiment{"ablate-bundle", "packet coalescing (§3.2.1 piggybacking): datagrams per batch", runAblateBundle},
	)
}

// runAblateBundle measures how §3.2.1's combined transmissions shrink the
// datagram count of a bidirectional reliable batch.
func runAblateBundle() error {
	run := func(coalesce bool) (datagrams, bytes int, err error) {
		cfg := core.Config{Mode: packet.ModeC, BatchSize: 8, Reliable: true, ChainLen: 64, FlushDelay: -1, Coalesce: coalesce}
		d, err := newDriver(cfg, cfg, nil)
		if err != nil {
			return 0, 0, err
		}
		count := func(raws [][]byte) {
			for _, raw := range raws {
				datagrams++
				bytes += len(raw)
			}
		}
		// Bidirectional batch: both sides send 8 messages.
		for i := 0; i < 8; i++ {
			if _, err := d.a.Send(d.now, make([]byte, 256)); err != nil {
				return 0, 0, err
			}
			if _, err := d.b.Send(d.now, make([]byte, 256)); err != nil {
				return 0, 0, err
			}
		}
		d.a.Flush(d.now)
		d.b.Flush(d.now)
		for i := 0; i < 40; i++ {
			d.now = d.now.Add(5 * time.Millisecond)
			outA, _ := d.a.Poll(d.now)
			outB, _ := d.b.Poll(d.now)
			if len(outA) == 0 && len(outB) == 0 {
				break
			}
			count(outA)
			count(outB)
			for _, raw := range outA {
				d.toB(raw)
			}
			for _, raw := range outB {
				d.toA(raw)
			}
		}
		return datagrams, bytes, nil
	}
	plainD, plainB, err := run(false)
	if err != nil {
		return err
	}
	packedD, packedB, err := run(true)
	if err != nil {
		return err
	}
	t := &stats.Table{
		Title:   "Ablation — packet coalescing (bidirectional 8+8 message reliable batch, ALPHA-C)",
		Headers: []string{"Scheme", "datagrams", "bytes on the wire"},
	}
	t.Add("one packet per datagram", plainD, stats.Bytes(int64(plainB)))
	t.Add("coalesced (≤1400 B bundles)", packedD, stats.Bytes(int64(packedB)))
	t.Note("§3.2.1: 'A host that acts as signer and verifier can combine the packet")
	t.Note("transmissions of both directions.' Fewer datagrams means fewer radio")
	t.Note("wakeups and MAC-layer headers; the byte total barely moves.")
	fmt.Print(t)
	return nil
}

// runAblatePreack compares the integrated pre-acknowledgments of §3.2.2
// against the naive alternative the paper rejects: acknowledging a signed
// message with a second, independent signature exchange.
func runAblatePreack() error {
	// Integrated: one reliable exchange.
	cfgR := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64, FlushDelay: -1}
	dR, err := newDriver(cfgR, cfgR, nil)
	if err != nil {
		return err
	}
	preA := dR.a.Stats()
	preB := dR.b.Stats()
	if err := dR.exchange([][]byte{[]byte("acknowledged payload")}); err != nil {
		return err
	}
	postA := dR.a.Stats()
	postB := dR.b.Stats()
	integrated := (postA.SentS1 - preA.SentS1) + (postA.SentS2 - preA.SentS2) +
		(postB.SentA1 - preB.SentA1) + (postB.SentA2 - preB.SentA2)
	integratedChain := 2 + 2 // one sig pair (signer) + one ack pair (verifier)

	// Naive: unreliable exchange a->b carrying the data, then an
	// unreliable exchange b->a carrying an application-level ack. Each
	// costs S1+A1+S2 = 3 packets and a chain pair on both chains.
	cfgU := core.Config{Mode: packet.ModeBase, Reliable: false, ChainLen: 64, FlushDelay: -1}
	dU, err := newDriver(cfgU, cfgU, nil)
	if err != nil {
		return err
	}
	if err := dU.exchange([][]byte{[]byte("payload")}); err != nil {
		return err
	}
	// The reverse "ack" exchange.
	if _, err := dU.b.Send(dU.now, []byte("app-level ack")); err != nil {
		return err
	}
	dU.b.Flush(dU.now)
	dU.pump(40)
	sA, sB := dU.a.Stats(), dU.b.Stats()
	naive := sA.SentS1 + sA.SentS2 + sA.SentA1 + sB.SentA1 + sB.SentS1 + sB.SentS2
	naiveChain := 4 + 4

	t := &stats.Table{
		Title:   "Ablation — reliable delivery: integrated pre-acks vs naive double exchange",
		Headers: []string{"Scheme", "packets/acked msg", "chain elements", "latency (RTT)"},
	}
	t.Add("pre-(n)acks (§3.2.2)", integrated, integratedChain, "2.0")
	t.Add("naive signed ack", naive, naiveChain, "3.0")
	t.Note("Paper: pre-acks 'reduce the communication overhead... and reduce the")
	t.Note("latency for receiving the acknowledgement from three to two RTTs'.")
	fmt.Print(t)
	return nil
}

// runAblateModes sweeps the batch size and pits ALPHA-C against ALPHA-M on
// the three axes of the §3.3 trade-off.
func runAblateModes() error {
	t := &stats.Table{
		Title:   "Ablation — ALPHA-C vs ALPHA-M across batch sizes (1024 B messages)",
		Headers: []string{"Mode", "n", "verifier/relay buffer", "verify CPU/msg", "wire bytes/msg"},
	}
	for _, mode := range []packet.Mode{packet.ModeC, packet.ModeM, packet.ModeCM} {
		for _, n := range []int{4, 16, 64, 256} {
			buf, cpu, wire, err := measureMode(mode, n)
			if err != nil {
				return err
			}
			t.Add(mode.String(), n, stats.Bytes(int64(buf)), stats.Us(cpu), wire)
		}
	}
	t.Note("The §3.3 trade-off in one table: -C pins n·h bytes on every relay but")
	t.Note("verifies in constant time; -M pins one digest regardless of n and pays")
	t.Note("log2(n) hashes plus log2(n)·h proof bytes in every packet; -CM (k=4")
	t.Note("roots) sits in between, cutting log2(k) hashes off every proof for")
	t.Note("k·h bytes of buffer — the combined operation of §3.3.2.")
	fmt.Print(t)
	return nil
}

// measureMode runs one exchange of n messages and reports relay buffer
// bytes, verifier CPU per message, and wire bytes per message.
func measureMode(mode packet.Mode, n int) (buf int, cpu time.Duration, wire int, err error) {
	cfg := core.Config{Mode: mode, ChainLen: 32, BatchSize: n, FlushDelay: -1, MaxOutstanding: 1}
	d, err := newDriver(cfg, cfg, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	payload := bytes.Repeat([]byte{7}, 1024)
	for i := 0; i < n; i++ {
		if _, err := d.a.Send(d.now, payload); err != nil {
			return 0, 0, 0, err
		}
	}
	d.a.Flush(d.now)
	s1, _ := d.a.Poll(d.now)
	wireBytes := 0
	for _, raw := range s1 {
		wireBytes += len(raw)
		d.b.Handle(d.now, raw)
	}
	// Verifier-side buffer at its peak (pre-signatures buffered).
	buf, _ = d.b.RxBufferedBytes()
	a1, _ := d.b.Poll(d.now)
	for _, raw := range a1 {
		wireBytes += len(raw)
		d.a.Handle(d.now, raw)
	}
	s2s, _ := d.a.Poll(d.now)
	start := time.Now()
	for _, raw := range s2s {
		wireBytes += len(raw)
		if _, err := d.b.Handle(d.now, raw); err != nil {
			return 0, 0, 0, err
		}
	}
	cpu = time.Since(start) / time.Duration(n)
	return buf, cpu, wireBytes / n, nil
}

// runAblateCheckpoint sweeps the checkpoint interval of the chain owner.
func runAblateCheckpoint() error {
	s := suite.SHA1()
	const chainLen = 2048
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation — chain owner storage (chain length %d, SHA-1)", chainLen),
		Headers: []string{"Storage", "resident digests", "memory", "disclose cost (amortized)"},
	}
	secret := []byte("ablation secret")
	full, err := hashchain.New(s, hashchain.TagS1, hashchain.TagS2, secret, chainLen)
	if err != nil {
		return err
	}
	_ = full
	fullCost := stats.MeasureBatch(20, 2, chainLen, func() {
		c, _ := hashchain.New(s, hashchain.TagS1, hashchain.TagS2, secret, chainLen)
		for {
			if _, _, err := c.Next(); err != nil {
				break
			}
		}
	})
	t.Add("full", chainLen+1, stats.Bytes(int64((chainLen+1)*s.Size())), stats.Us(fullCost.Mean))
	for _, interval := range []int{8, 32, 128} {
		cost := stats.MeasureBatch(20, 2, chainLen, func() {
			c, _ := hashchain.NewCheckpoint(s, hashchain.TagS1, hashchain.TagS2, secret, chainLen, interval)
			for {
				if _, _, err := c.Next(); err != nil {
					break
				}
			}
		})
		cp, err := hashchain.NewCheckpoint(s, hashchain.TagS1, hashchain.TagS2, secret, chainLen, interval)
		if err != nil {
			return err
		}
		t.Add(fmt.Sprintf("checkpoint/%d", interval),
			cp.StoredElements(),
			stats.Bytes(int64(cp.StoredElements()*s.Size())),
			stats.Us(cost.Mean))
	}
	t.Note("Disclose cost includes generation (amortized over the full chain).")
	t.Note("Checkpointing divides resident memory by the interval at bounded extra")
	t.Note("hashing — the §4.1.3 story for 8-KB sensor nodes, measured.")
	fmt.Print(t)
	return nil
}

// runAblateRekey measures what one in-band chain rotation costs.
func runAblateRekey() error {
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64, FlushDelay: -1}
	d, err := newDriver(cfg, cfg, nil)
	if err != nil {
		return err
	}
	if err := d.exchange([][]byte{[]byte("warm-up")}); err != nil {
		return err
	}
	before := d.a.Stats()
	start := time.Now()
	if _, err := d.a.Rekey(d.now); err != nil {
		return err
	}
	d.pump(40)
	elapsed := time.Since(start)
	after := d.a.Stats()
	rekeyed := false
	for _, ev := range d.aEvents {
		if ev.Kind == core.EventRekeyed {
			rekeyed = true
		}
	}
	if !rekeyed {
		return fmt.Errorf("rekey did not complete")
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation — in-band rekey (chain length %d)", cfg.ChainLen),
		Headers: []string{"Metric", "Value"},
	}
	t.Add("packets", (after.SentS1-before.SentS1)+(after.SentS2-before.SentS2)+2) // + A1/A2 from peer
	t.Add("bytes sent (signer)", stats.Bytes(int64(after.BytesSent-before.BytesSent)))
	t.Add("chain elements consumed", 2)
	t.Add("CPU (both ends, incl. chain generation)", stats.Us(elapsed))
	t.Add("exchanges bought per rotation", cfg.ChainLen/2-1)
	t.Note("One ordinary 4-packet exchange buys a whole new chain generation —")
	t.Note("the association never needs asymmetric crypto again after bootstrap.")
	fmt.Print(t)
	return nil
}
