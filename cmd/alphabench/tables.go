// Table experiments: Tables 1-6 of the paper.

package main

import (
	"bytes"
	"fmt"
	"time"

	"alpha/internal/analytic"
	"alpha/internal/baseline"
	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/relay"
	"alpha/internal/stats"
	"alpha/internal/suite"
)

// modeSpec ties a wire mode to its Table 1 row group and batch size.
type modeSpec struct {
	mode  packet.Mode
	name  string
	model analytic.ModeName
	batch int
}

func table1Specs() []modeSpec {
	return []modeSpec{
		{packet.ModeBase, "ALPHA", analytic.ALPHA, 1},
		{packet.ModeC, "ALPHA-C", analytic.ALPHAC, 16},
		{packet.ModeM, "ALPHA-M", analytic.ALPHAM, 16},
	}
}

// runTable1 counts hash operations per processed message in real reliable
// exchanges, one counting suite per role, next to the paper's model.
func runTable1() error {
	t := &stats.Table{
		Title:   "Table 1 — hash computations for processing one message (reliable mode)",
		Headers: []string{"Mode", "n", "Role", "measured ops/msg", "  (hash/MAC)", "paper online model", "paper model w/ HC create"},
	}
	for _, spec := range table1Specs() {
		csA := suite.NewCounting(suite.SHA1())
		csB := suite.NewCounting(suite.SHA1())
		csR := suite.NewCounting(suite.SHA1())
		cfgA := core.Config{Suite: csA, Mode: spec.mode, Reliable: true, ChainLen: 4096, BatchSize: spec.batch}
		cfgB := cfgA
		cfgB.Suite = csB
		d, err := newDriver(cfgA, cfgB, &relay.Config{SuiteOverride: csR})
		if err != nil {
			return err
		}
		// Warm-up exchange, then measure a window of full batches.
		msgs := make([][]byte, spec.batch)
		for i := range msgs {
			msgs[i] = bytes.Repeat([]byte{byte(i)}, 512)
		}
		if err := d.exchange(msgs); err != nil {
			return err
		}
		const rounds = 8
		startA, startB, startR := csA.Snapshot(), csB.Snapshot(), csR.Snapshot()
		for k := 0; k < rounds; k++ {
			if err := d.exchange(msgs); err != nil {
				return err
			}
		}
		total := float64(rounds * spec.batch)
		if d.delivered() != (rounds+1)*spec.batch {
			return fmt.Errorf("table1 %s: delivered %d, want %d", spec.name, d.delivered(), (rounds+1)*spec.batch)
		}
		for _, role := range []struct {
			name  string
			cs    *suite.Counting
			start suite.Counts
			model analytic.Role
		}{
			{"Signer", csA, startA, analytic.Signer},
			{"Verifier", csB, startB, analytic.Verifier},
			{"Relay", csR, startR, analytic.RelayRole},
		} {
			delta := role.cs.Snapshot().Sub(role.start)
			perMsg := float64(delta.Total()) / total
			detail := fmt.Sprintf("%.2f hash + %.2f MAC", float64(delta.Hashes)/total, float64(delta.MACs)/total)
			ops := analytic.Table1(spec.model, role.model, spec.batch)
			online := ops.Total() - ops.HCCreate
			t.Add(spec.name, spec.batch, role.name, fmt.Sprintf("%.2f", perMsg), detail, fmt.Sprintf("%.2f", online), fmt.Sprintf("%.2f", ops.Total()))
		}
	}
	t.Note("Chains are precomputed at association setup here, so the paper's off-line")
	t.Note("'HC create' entries (2/n per message) do not appear in the measured window.")
	t.Note("Measured MAC ops run over full message payloads (the paper's * entries);")
	t.Note("hash ops run over one or two digests. Small constant offsets vs the model")
	t.Note("come from counting both chain elements of A1/A2 verification explicitly.")
	fmt.Print(t)
	return nil
}

// runTable2 freezes exchanges after the S1 and measures live buffer state.
func runTable2() error {
	const msgSize = 1024
	h := suite.SHA1().Size()
	t := &stats.Table{
		Title:   fmt.Sprintf("Table 2 — memory for n parallel messages (message m=%d B, hash h=%d B)", msgSize, h),
		Headers: []string{"Mode", "n", "Signer measured", "Signer model", "Verifier measured", "Verifier model", "Relay measured", "Relay model"},
	}
	for _, spec := range table1Specs() {
		for _, n := range []int{1, 4, 16, 64} {
			if spec.mode == packet.ModeBase && n != 1 {
				continue
			}
			cfg := core.Config{Mode: spec.mode, Reliable: false, ChainLen: 4096, BatchSize: n, MaxOutstanding: 1}
			rc := relay.Config{}
			d, err := newDriver(cfg, cfg, &rc)
			if err != nil {
				return err
			}
			// Hold the A1: the exchange freezes with pre-signatures
			// buffered at verifier and relay, payloads at the signer.
			d.hold(packet.TypeA1)
			msgs := make([][]byte, n)
			for i := range msgs {
				msgs[i] = bytes.Repeat([]byte{byte(i)}, msgSize)
			}
			for _, m := range msgs {
				if _, err := d.a.Send(d.now, m); err != nil {
					return err
				}
			}
			d.a.Flush(d.now)
			d.pump(20)
			payload, sig := d.a.TxBufferedBytes()
			vSig, _ := d.b.RxBufferedBytes()
			rSig, _ := d.r.BufferedBytes()
			model := analytic.Table2(spec.model, n, msgSize, h)
			t.Add(spec.name, n,
				stats.Bytes(int64(payload+sig)), stats.Bytes(model.Signer),
				stats.Bytes(int64(vSig)), stats.Bytes(model.Verifier),
				stats.Bytes(int64(rSig)), stats.Bytes(model.Relay))
		}
	}
	t.Note("Measured signer state includes encoded packet copies retained for")
	t.Note("retransmission, a constant factor above the paper's n(m+h) model.")
	t.Note("The shape to check: verifier/relay state is n·h for ALPHA/-C but a")
	t.Note("single digest (h) for ALPHA-M, independent of n.")
	fmt.Print(t)
	return nil
}

// runTable3 measures the additional acknowledgment state of reliable mode.
func runTable3() error {
	h := suite.SHA1().Size()
	t := &stats.Table{
		Title:   fmt.Sprintf("Table 3 — additional memory for n parallel acknowledgments (h=s=%d B)", h),
		Headers: []string{"Mode", "n", "Verifier measured", "Verifier model", "Relay measured", "Relay model"},
	}
	for _, spec := range table1Specs() {
		for _, n := range []int{1, 4, 16, 64} {
			if spec.mode == packet.ModeBase && n != 1 {
				continue
			}
			cfg := core.Config{Mode: spec.mode, Reliable: true, ChainLen: 4096, BatchSize: n, MaxOutstanding: 1}
			rc := relay.Config{}
			d, err := newDriver(cfg, cfg, &rc)
			if err != nil {
				return err
			}
			// Hold S2s: the verifier has generated its pre-(n)ack
			// material (it sent the A1) but not yet opened it.
			d.hold(packet.TypeS2)
			msgs := make([][]byte, n)
			for i := range msgs {
				msgs[i] = bytes.Repeat([]byte{byte(i)}, 256)
			}
			for _, m := range msgs {
				if _, err := d.a.Send(d.now, m); err != nil {
					return err
				}
			}
			d.a.Flush(d.now)
			d.pump(20)
			_, vAck := d.b.RxBufferedBytes()
			_, rAck := d.r.BufferedBytes()
			// The paper's flat pre-(n)ack rows assume one pre-ack pair
			// per message (ALPHA/-C); this implementation switches to
			// the AMT for multi-message batches, so the matching model
			// is ALPHA-M's for n > 1.
			modelMode := spec.model
			if n > 1 {
				modelMode = analytic.ALPHAM
			}
			model := analytic.Table3(modelMode, n, h, h)
			t.Add(spec.name, n,
				stats.Bytes(int64(vAck)), stats.Bytes(model.Verifier),
				stats.Bytes(int64(rAck)), stats.Bytes(model.Relay))
		}
	}
	t.Note("Relays buffer only the pre-ack pair or the AMT root (h..2h bytes); the")
	t.Note("verifier holds the secrets and tree, n·s+(4n-1)·h for an AMT as in the")
	t.Note("paper's ALPHA-M row. Batches of one use the flat pre-(n)ack pair (2n·h).")
	fmt.Print(t)
	return nil
}

// runTable4 times every protocol step of a reliable base-mode signature and
// the RSA/DSA baselines, mirroring the paper's Table 4 rows.
func runTable4() error {
	const rounds = 300
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 4 * rounds, BatchSize: 1, FlushDelay: -1}
	d, err := newDriver(cfg, cfg, nil)
	if err != nil {
		return err
	}
	payload := bytes.Repeat([]byte{0x5A}, 512)

	var sendS1, procS1, procA1, verS2, procA2 []time.Duration
	step := func(samples *[]time.Duration, fn func()) {
		start := time.Now()
		fn()
		*samples = append(*samples, time.Since(start))
	}
	for i := 0; i < rounds; i++ {
		d.now = d.now.Add(time.Millisecond)
		var s1, a1, s2, a2 [][]byte
		step(&sendS1, func() {
			if _, err := d.a.Send(d.now, payload); err != nil {
				panic(err)
			}
			d.a.Flush(d.now)
			s1, _ = d.a.Poll(d.now)
		})
		step(&procS1, func() {
			for _, raw := range s1 {
				d.b.Handle(d.now, raw)
			}
			a1, _ = d.b.Poll(d.now)
		})
		step(&procA1, func() {
			for _, raw := range a1 {
				d.a.Handle(d.now, raw)
			}
			s2, _ = d.a.Poll(d.now)
		})
		step(&verS2, func() {
			for _, raw := range s2 {
				d.b.Handle(d.now, raw)
			}
			a2, _ = d.b.Poll(d.now)
		})
		step(&procA2, func() {
			for _, raw := range a2 {
				d.a.Handle(d.now, raw)
			}
			d.a.Poll(d.now)
		})
		if len(s1) != 1 || len(a1) != 1 || len(s2) != 1 || len(a2) != 1 {
			return fmt.Errorf("table4 round %d: unexpected packet counts %d/%d/%d/%d", i, len(s1), len(a1), len(s2), len(a2))
		}
	}

	mean := func(s []time.Duration) time.Duration { return stats.Summarize(s).Mean }
	senderTotal := mean(sendS1) + mean(procA1) + mean(procA2)
	receiverTotal := mean(procS1) + mean(verS2)

	sha1T := stats.MeasureBatch(200, 50, 100, func() {
		for i := 0; i < 100; i++ {
			suite.SHA1().Hash(payload[:20])
		}
	})

	rsa, err := baseline.NewRSASigner(1024)
	if err != nil {
		return err
	}
	msg := payload
	sig, err := rsa.Sign(msg)
	if err != nil {
		return err
	}
	rsaSign := stats.Measure(50, 5, func() { rsa.Sign(msg) })
	rsaVerify := stats.Measure(200, 20, func() { rsa.Verify(msg, sig) })

	dsa, err := baseline.NewDSASigner()
	if err != nil {
		return err
	}
	dsig, err := dsa.Sign(msg)
	if err != nil {
		return err
	}
	dsaSign := stats.Measure(50, 5, func() { dsa.Sign(msg) })
	dsaVerify := stats.Measure(50, 5, func() { dsa.Verify(msg, dsig) })

	t := &stats.Table{
		Title:   fmt.Sprintf("Table 4 — ALPHA, RSA and DSA delay (mean of %d signatures, 512 B payload)", rounds),
		Headers: []string{"Step", "this host"},
	}
	t.Add("Send S1", stats.Ms(mean(sendS1)))
	t.Add("Process S1, send A1", stats.Ms(mean(procS1)))
	t.Add("Process A1, send S2", stats.Ms(mean(procA1)))
	t.Add("Verify S2, send A2", stats.Ms(mean(verS2)))
	t.Add("Process A2", stats.Ms(mean(procA2)))
	t.Add("Sender (total)", stats.Ms(senderTotal))
	t.Add("Receiver (total)", stats.Ms(receiverTotal))
	t.Add("SHA-1 hash (20 B)", fmt.Sprintf("%s (%s)", stats.Ms(sha1T.Mean), stats.Us(sha1T.Mean)))
	t.Add("RSA 1024 sign", stats.Ms(rsaSign.Mean))
	t.Add("RSA 1024 verify", stats.Ms(rsaVerify.Mean))
	t.Add("DSA 1024 sign", stats.Ms(dsaSign.Mean))
	t.Add("DSA 1024 verify", stats.Ms(dsaVerify.Mean))
	t.Note("Paper (N770/Xeon): sender 2.34/0.13 ms, receiver 3.07/0.10 ms,")
	t.Note("RSA sign 181.32/9.09 ms, DSA sign 96.71/1.34 ms. Absolute numbers differ")
	t.Note("by hardware decade; the reproduction target is the ordering: ALPHA totals")
	t.Note("orders of magnitude below asymmetric signing, same order as bare hashing.")
	fmt.Print(t)

	ratio := float64(rsaSign.Mean) / float64(senderTotal+receiverTotal)
	fmt.Printf("\nALPHA full signature round vs one RSA-1024 sign: %.0fx cheaper\n", ratio)
	return nil
}

// runTable5 times hash digests over 20 B and 1024 B inputs for all suites.
func runTable5() error {
	t := &stats.Table{
		Title:   "Table 5 — hash delay (paper: SHA-1 on three router CPUs; here: one host, three suites)",
		Headers: []string{"Suite", "20 B digest", "1024 B digest", "ratio"},
	}
	small := bytes.Repeat([]byte{0xAA}, 20)
	big := bytes.Repeat([]byte{0xBB}, 1024)
	for _, s := range []suite.Suite{suite.SHA1(), suite.SHA256(), suite.MMO()} {
		ts := stats.MeasureBatch(200, 20, 100, func() {
			for i := 0; i < 100; i++ {
				s.Hash(small)
			}
		})
		tb := stats.MeasureBatch(200, 20, 100, func() {
			for i := 0; i < 100; i++ {
				s.Hash(big)
			}
		})
		t.Add(s.Name(), stats.Us(ts.Mean), stats.Us(tb.Mean), fmt.Sprintf("%.1fx", float64(tb.Mean)/float64(ts.Mean)))
	}
	t.Note("Paper values (20 B / 1024 B): AR2315 59/360 µs, BCM5365 46/361 µs,")
	t.Note("Geode LX 11/62 µs — a ~6x spread between input sizes, which is the")
	t.Note("shape to compare against the SHA-1 row above.")
	fmt.Print(t)
	return nil
}

// runTable6 reproduces the ALPHA-M estimation procedure with locally
// measured hash constants, then cross-checks one row against a real run.
func runTable6() error {
	s := suite.SHA1()
	h := s.Size()
	const spacket = 1024
	two := bytes.Repeat([]byte{0x11}, 2*h)
	pkt := bytes.Repeat([]byte{0x22}, spacket)
	fixed := stats.MeasureBatch(200, 20, 100, func() {
		for i := 0; i < 100; i++ {
			s.Hash(two)
		}
	})
	full := stats.MeasureBatch(200, 20, 100, func() {
		for i := 0; i < 100; i++ {
			s.Hash(pkt)
		}
	})
	leaves := []int{16, 32, 64, 128, 256, 512, 1024}
	rows := analytic.Table6(leaves, spacket, h, fixed.Mean, full.Mean)
	t := &stats.Table{
		Title:   fmt.Sprintf("Table 6 — ALPHA-M estimates (packet %d B, hash %d B, measured hash: fixed %s, packet %s)", spacket, h, stats.Us(fixed.Mean), stats.Us(full.Mean)),
		Headers: []string{"Leaves", "Processing", "Payload (B)", "Throughput", "Data per S1"},
	}
	for _, r := range rows {
		t.Add(r.Leaves, stats.Us(r.Processing), r.Payload, stats.Rate(r.ThroughputBitPerS), stats.Bytes(r.DataPerS1))
	}
	t.Note("Paper shape: processing grows ~linearly with log2(leaves); payload")
	t.Note("shrinks one hash per level; data per S1 roughly doubles per row.")
	fmt.Print(t)

	// Cross-check: measure a real ALPHA-M verification at 64 leaves.
	measured, err := measureMVerification(64, 924)
	if err != nil {
		return err
	}
	fmt.Printf("\ncross-check: real ALPHA-M S2 verification at 64 leaves: %s (model %s)\n",
		stats.Us(measured), stats.Us(rows[2].Processing))
	return nil
}

// measureMVerification times the verifier's S2 handling in a real ALPHA-M
// exchange with the given batch size and payload.
func measureMVerification(n, payloadSize int) (time.Duration, error) {
	cfg := core.Config{Mode: packet.ModeM, ChainLen: 64, BatchSize: n, FlushDelay: -1}
	d, err := newDriver(cfg, cfg, nil)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if _, err := d.a.Send(d.now, bytes.Repeat([]byte{byte(i)}, payloadSize)); err != nil {
			return 0, err
		}
	}
	d.a.Flush(d.now)
	s1, _ := d.a.Poll(d.now)
	for _, raw := range s1 {
		d.b.Handle(d.now, raw)
	}
	a1, _ := d.b.Poll(d.now)
	for _, raw := range a1 {
		d.a.Handle(d.now, raw)
	}
	s2s, _ := d.a.Poll(d.now)
	if len(s2s) != n {
		return 0, fmt.Errorf("expected %d S2 packets, got %d", n, len(s2s))
	}
	delivered := 0
	start := time.Now()
	for _, raw := range s2s {
		evs, err := d.b.Handle(d.now, raw)
		if err != nil {
			return 0, err
		}
		for _, ev := range evs {
			if ev.Kind == core.EventDelivered {
				delivered++
			}
		}
	}
	elapsed := time.Since(start)
	if delivered != n {
		return 0, fmt.Errorf("delivered %d/%d during measurement", delivered, n)
	}
	return elapsed / time.Duration(n), nil
}
