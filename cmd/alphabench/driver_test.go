package main

import (
	"bytes"
	"testing"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/relay"
)

func TestDriverHandshakeAndExchange(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64, FlushDelay: -1}
	d, err := newDriver(cfg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.exchange([][]byte{[]byte("driver smoke")}); err != nil {
		t.Fatal(err)
	}
	if d.delivered() != 1 {
		t.Fatalf("delivered %d", d.delivered())
	}
}

func TestDriverWithRelay(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeC, BatchSize: 4, ChainLen: 64, FlushDelay: -1}
	rc := relay.Config{}
	d, err := newDriver(cfg, cfg, &rc)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	if err := d.exchange(msgs); err != nil {
		t.Fatal(err)
	}
	if d.delivered() != 4 {
		t.Fatalf("delivered %d/4 through driver relay", d.delivered())
	}
	if d.r.Stats().ExtractedBytes == 0 {
		t.Fatalf("driver relay extracted nothing")
	}
}

func TestDriverHoldFreezesExchange(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeC, BatchSize: 4, ChainLen: 64, FlushDelay: -1, MaxOutstanding: 1}
	d, err := newDriver(cfg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.hold(packet.TypeA1)
	for i := 0; i < 4; i++ {
		if _, err := d.a.Send(d.now, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	d.a.Flush(d.now)
	d.pump(10)
	if d.delivered() != 0 {
		t.Fatalf("delivery happened despite held A1")
	}
	payload, sig := d.a.TxBufferedBytes()
	if payload != 400 || sig == 0 {
		t.Fatalf("frozen signer buffers payload=%d sig=%d", payload, sig)
	}
	vSig, _ := d.b.RxBufferedBytes()
	if vSig != 4*20 {
		t.Fatalf("frozen verifier buffers %d, want n·h=80", vSig)
	}
}

// TestExperimentsRegistered pins the experiment registry: every name is
// unique and runnable entries exist for all tables, figures and ablations.
func TestExperimentsRegistered(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig3", "fig5", "fig6", "wsn",
		"ablate-preack", "ablate-modes", "ablate-checkpoint", "ablate-rekey", "ablate-bundle",
		"related-tesla",
	}
	got := map[string]bool{}
	for _, e := range experiments() {
		if got[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		if e.run == nil || e.desc == "" {
			t.Fatalf("experiment %q incomplete", e.name)
		}
		got[e.name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Fatalf("experiment %q missing from registry", name)
		}
	}
}

// TestMeasureModeShapes spot-checks the ablation helper against the §3.3
// trade-off shape without printing tables.
func TestMeasureModeShapes(t *testing.T) {
	bufC, _, _, err := measureMode(packet.ModeC, 16)
	if err != nil {
		t.Fatal(err)
	}
	bufM, _, _, err := measureMode(packet.ModeM, 16)
	if err != nil {
		t.Fatal(err)
	}
	bufCM, _, _, err := measureMode(packet.ModeCM, 16)
	if err != nil {
		t.Fatal(err)
	}
	if bufC != 16*20 {
		t.Fatalf("ALPHA-C buffer %d, want n·h=320", bufC)
	}
	if bufM != 20 {
		t.Fatalf("ALPHA-M buffer %d, want h=20", bufM)
	}
	if bufCM != 4*20 {
		t.Fatalf("ALPHA-CM buffer %d, want k·h=80", bufCM)
	}
}
