// Command alphasim runs multi-hop ALPHA scenarios on the deterministic
// network simulator and reports delivery, drop and relay statistics. It is
// the quickest way to observe the protocol's hop-by-hop filtering under
// configurable topologies, loss rates and attacks.
//
// Usage:
//
//	alphasim -hops 3 -mode M -batch 16 -msgs 100 -loss 0.1 -reliable
//	alphasim -attack tamper -msgs 20
//	alphasim -attack flood -msgs 5
//
// The topology is a linear path: signer - relay1..relayN - verifier, the
// protected path of the paper's Figure 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"alpha/internal/adaptive"
	"alpha/internal/attack"
	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/relay"
	"alpha/internal/stats"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
	"alpha/internal/udpio"
	"alpha/internal/workload"
)

func main() {
	var (
		topo      = flag.String("topo", "line", "topology: line, grid, random")
		hops      = flag.Int("hops", 3, "relays on the path (line), grid side, or mesh size")
		modeStr   = flag.String("mode", "base", "mode: base, C, M, or CM")
		batch     = flag.Int("batch", 8, "messages per S1 (modes C and M)")
		msgs      = flag.Int("msgs", 50, "number of messages to send")
		size      = flag.Int("size", 512, "payload size in bytes")
		loss      = flag.Float64("loss", 0, "per-hop loss probability")
		latency   = flag.Duration("latency", 2*time.Millisecond, "per-hop latency")
		jitter    = flag.Duration("jitter", time.Millisecond, "per-hop jitter")
		bw        = flag.Int64("bw", 20_000_000, "per-hop bandwidth (bit/s, 0 = infinite)")
		reliable  = flag.Bool("reliable", false, "use pre-(n)ack reliable delivery")
		suiteStr  = flag.String("suite", "sha1", "hash suite: sha1, sha256, mmo")
		attackK   = flag.String("attack", "none", "attack: none, tamper, flood, replay")
		workloadK = flag.String("workload", "bulk", "workload: bulk, signaling, sensor")
		seed      = flag.Int64("seed", 42, "simulation seed")
		duration  = flag.Duration("duration", 60*time.Second, "max simulated time")
		adaptOn   = flag.Bool("adaptive", false, "attach the closed-loop mode/batch controller to the signer (-mode/-batch become the starting profile)")
		lossShift = flag.Duration("loss-shift", 0, "shifting-loss scenario (line topology): hops run clean for this long, take -loss for an equal phase, then recover")
		gso       = flag.Bool("gso", false, "project the simulated traffic onto the UDP GSO/GRO I/O engine (syscalls and kernel traversals per burst; the simulator itself has no sockets)")
		zerocopy  = flag.Bool("zerocopy", false, "include the MSG_ZEROCOPY send path in the I/O engine projection")
		flightLen = flag.Int("flight-size", 8192, "per-hop span ring size for the exchange-timeline report (0 disables span capture)")
		otlpEP    = flag.String("otlp-endpoint", "", "push the final metrics snapshot and captured spans to this OTLP/HTTP collector (requires a build with -tags alpha_otlp)")
	)
	flag.Parse()
	if *lossShift > 0 && *topo != "line" {
		fmt.Fprintln(os.Stderr, "-loss-shift requires -topo line")
		os.Exit(2)
	}

	var mode packet.Mode
	switch *modeStr {
	case "base":
		mode = packet.ModeBase
	case "C", "c":
		mode = packet.ModeC
	case "M", "m":
		mode = packet.ModeM
	case "CM", "cm":
		mode = packet.ModeCM
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeStr)
		os.Exit(2)
	}
	var st suite.Suite
	switch *suiteStr {
	case "sha1":
		st = suite.SHA1()
	case "sha256":
		st = suite.SHA256()
	case "mmo":
		st = suite.MMO()
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suiteStr)
		os.Exit(2)
	}

	cfg := core.Config{
		Suite:      st,
		Mode:       mode,
		Reliable:   *reliable,
		ChainLen:   4 * (*msgs) / max(1, *batch) * max(1, *batch), // headroom
		BatchSize:  *batch,
		RTO:        100 * time.Millisecond,
		MaxRetries: 20,
	}
	if cfg.ChainLen < 64 {
		cfg.ChainLen = 64
	}
	if *adaptOn {
		// The controller may shrink the batch (down to Basic's one message
		// per exchange), so size the chain for the worst case.
		cfg.ChainLen = 8 * max(64, *msgs)
	}

	// One span ring per hop: exchange timelines reconstruct from these at
	// exit, correlated by the shared hash-chain element (no wire change).
	var ringS, ringV *obs.SpanRing
	if *flightLen > 0 {
		ringS = obs.NewSpanRing(*flightLen)
		ringV = obs.NewSpanRing(*flightLen)
	}

	net := netsim.New(*seed)
	cfgS, cfgV := cfg, cfg
	cfgS.Spans, cfgV.Spans = ringS, ringV
	epS, err := core.NewEndpoint(cfgS)
	check(err)
	epV, err := core.NewEndpoint(cfgV)
	check(err)
	s := netsim.NewEndpointNode(net, "signer", "verifier", epS)
	v := netsim.NewEndpointNode(net, "verifier", "signer", epV)

	linkLoss := *loss
	if *lossShift > 0 {
		linkLoss = 0 // the lossy phase is scheduled below via VaryDuplexLink
	}
	link := netsim.LinkConfig{Latency: *latency, Jitter: *jitter, Loss: linkLoss, Bandwidth: *bw}
	var lineNames []string
	var relays []*netsim.RelayNode
	var relayRings []*obs.SpanRing
	addRelay := func(name string, tamper bool) {
		if tamper {
			attack.NewTamperNode(net, name, []byte("tampered payload"))
			return
		}
		var ring *obs.SpanRing
		if *flightLen > 0 {
			ring = obs.NewSpanRing(*flightLen)
		}
		relayRings = append(relayRings, ring)
		relays = append(relays, netsim.NewRelayNode(net, name, relay.Config{Spans: ring}))
	}
	switch *topo {
	case "line":
		names := []string{"signer"}
		for i := 1; i <= *hops; i++ {
			name := fmt.Sprintf("relay%d", i)
			addRelay(name, i == 1 && *attackK == "tamper")
			names = append(names, name)
		}
		names = append(names, "verifier")
		net.Line(link, names...)
		lineNames = names
	case "grid":
		// signer and verifier sit at opposite corners of a hops×hops
		// relay grid.
		side := *hops
		if side < 2 {
			side = 2
		}
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				addRelay(fmt.Sprintf("relay%d_%d", r, c), r == 0 && c == 0 && *attackK == "tamper")
			}
		}
		net.Grid(link, side, side, "relay%d_%d")
		net.AddDuplexLink("signer", "relay0_0", link)
		net.AddDuplexLink(fmt.Sprintf("relay%d_%d", side-1, side-1), "verifier", link)
	case "random":
		names := []string{"signer", "verifier"}
		for i := 1; i <= *hops; i++ {
			name := fmt.Sprintf("relay%d", i)
			addRelay(name, i == 1 && *attackK == "tamper")
			names = append(names, name)
		}
		net.RandomMesh(*seed, link, *hops, names...)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}
	net.AutoRoute()
	if *topo != "line" {
		fmt.Printf("topology %s: route signer->verifier starts at %s\n", *topo, firstHop(net))
	}

	check(s.Start(net.Now()))
	for i := 0; i < 200 && !epS.Established(); i++ {
		net.RunFor(100 * time.Millisecond)
	}
	if !epS.Established() {
		fmt.Fprintln(os.Stderr, "association failed to establish")
		os.Exit(1)
	}
	fmt.Printf("association established over %d hops (assoc %016x)\n\n", *hops+1, epS.Assoc())

	var ctrlMet *telemetry.ControllerMetrics
	if *adaptOn {
		ctrlMet = &telemetry.ControllerMetrics{}
		s.AttachAdaptive(adaptive.Config{Metrics: ctrlMet})
		fmt.Printf("adaptive controller attached (starting profile %v/%d)\n", mode, cfg.BatchSize)
	}
	if *lossShift > 0 {
		lossy := link
		lossy.Loss = *loss
		for i := 0; i+1 < len(lineNames); i++ {
			check(net.VaryDuplexLink(lineNames[i], lineNames[i+1],
				netsim.LinkPhase{Start: *lossShift, Config: lossy},
				netsim.LinkPhase{Start: 2 * *lossShift, Config: link},
			))
		}
		fmt.Printf("loss shifts: 0%% for %v, then %.0f%% for %v, then 0%%\n", *lossShift, *loss*100, *lossShift)
	}

	if *attackK == "flood" {
		fl := attack.NewFloodNode(net, "mallory", "verifier", epS.Assoc())
		net.AddDuplexLink("mallory", "relay1", link)
		net.AutoRoute()
		fl.FloodFor(net, net.Now(), 2*time.Second, 500)
		fmt.Println("flood attack: 500 forged S2 packets injected at relay1")
	}
	var rep *attack.ReplayNode
	if *attackK == "replay" {
		// Splice a capture node before the first relay by rerouting.
		rep = attack.NewReplayNode(net, "tap")
		net.AddDuplexLink("signer", "tap", link)
		net.AddDuplexLink("tap", "relay1", link)
		net.SetRoute("signer", "verifier", "tap")
		net.SetRoute("tap", "verifier", "relay1")
	}

	var gen workload.Generator
	switch *workloadK {
	case "bulk":
		gen = workload.Bulk{Seed: *seed, Count: *msgs, Size: *size, Pace: 2 * time.Millisecond}
	case "signaling":
		gen = workload.Signaling{Seed: *seed, Count: *msgs, MeanGap: 250 * time.Millisecond, Size: *size}
	case "sensor":
		gen = workload.Sensor{Seed: *seed, Count: *msgs, Period: 100 * time.Millisecond, Jitter: 20 * time.Millisecond, Size: *size}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workloadK)
		os.Exit(2)
	}
	fmt.Printf("workload: %s\n", gen.Name())
	start := net.Now()
	msgsList := gen.Messages()
	lastAt := time.Duration(0)
	for _, m := range msgsList {
		if m.At > lastAt {
			lastAt = m.At
		}
	}
	for _, m := range msgsList {
		m := m
		net.Schedule(start.Add(m.At), func(now time.Time) {
			if _, err := s.Send(now, m.Payload); err != nil {
				fmt.Fprintf(os.Stderr, "send: %v\n", err)
			}
		})
	}
	net.Schedule(start.Add(lastAt+10*time.Millisecond), func(now time.Time) {
		s.Flush(now)
	})
	net.RunFor(*duration)
	if rep != nil {
		fmt.Printf("replaying %d captured packets\n", len(rep.Captured))
		rep.ReplayAll(net)
		net.RunFor(5 * time.Second)
	}

	// Report.
	delivered := v.DeliveredPayloads()
	t := &stats.Table{Title: "Results", Headers: []string{"Metric", "Value"}}
	t.Add("messages sent", *msgs)
	t.Add("messages delivered+verified", len(delivered))
	t.Add("acked end-to-end", s.CountEvents(core.EventAcked))
	t.Add("send failures", s.CountEvents(core.EventSendFailed))
	t.Add("signer retransmits", epS.Stats().Retransmits)
	t.Add("signer bytes sent", stats.Bytes(int64(epS.Stats().BytesSent)))
	t.Add("verifier drops", epV.Stats().Dropped)
	if ctrlMet != nil {
		p := epS.Profile()
		t.Add("adaptive decisions", ctrlMet.Decisions.Load())
		t.Add("adaptive flaps", ctrlMet.Flaps.Load())
		t.Add("mode changes", s.CountEvents(core.EventModeChanged))
		t.Add("final profile", fmt.Sprintf("%v/%d", p.Mode, p.BatchSize))
	}
	fmt.Print(t)
	fmt.Println()

	rt := &stats.Table{Title: "Per-relay verdicts", Headers: []string{"Relay", "forwarded", "dropped", "unsolicited", "bad payload", "bad element", "rate-limited", "extracted"}}
	for _, rn := range relays {
		st := rn.R.Stats()
		rt.Add(rn.Name, st.Forwarded, st.Dropped, st.Unsolicited, st.BadPayload, st.BadElement, st.RateLimited, stats.Bytes(int64(st.ExtractedBytes)))
	}
	fmt.Print(rt)

	// The simulator drives the engine sans-IO — no sockets — so -gso and
	// -zerocopy cannot change its behaviour. What they can do is project
	// the simulated burst structure onto the real udpio engine tiers:
	// what one ALPHA burst of this shape costs in send syscalls and kernel
	// UDP-stack traversals under each engine (see BENCH_gso.json for the
	// measured loopback equivalents).
	if *gso || *zerocopy {
		burst := 2 // base mode: one S1 + one S2 per message
		if cfg.Mode == packet.ModeC || cfg.Mode == packet.ModeM {
			burst = cfg.BatchSize + 1
		}
		s2Run := burst - 1
		gsoHdrs := 1 + (s2Run+udpio.DefaultBatch-1)/udpio.DefaultBatch // S1 + packed S2 run(s)
		pt := &stats.Table{Title: "I/O engine projection (per ALPHA burst)", Headers: []string{"Engine", "send syscalls", "kernel traversals"}}
		pt.Add("portable", burst, burst)
		pt.Add("batched (sendmmsg)", 1, burst)
		if *gso {
			pt.Add("gso (UDP_SEGMENT)", 1, gsoHdrs)
		}
		fmt.Println()
		fmt.Print(pt)
		if *gso {
			fmt.Println("assumes equal-size S2s (fixed -size payloads); ragged runs fall back per run to plain sendmmsg")
		}
		if *zerocopy {
			bb := s2Run * *size
			if bb >= 4096 {
				fmt.Printf("zerocopy: burst payload ~%d B clears the 4096 B MSG_ZEROCOPY threshold; page pinning replaces the kernel copy\n", bb)
			} else {
				fmt.Printf("zerocopy: burst payload ~%d B is under the 4096 B MSG_ZEROCOPY threshold; the engine would keep copying\n", bb)
			}
		}
	}

	// Full telemetry snapshot: the same metric namespace a live alphanode
	// serves on /metrics, here taken programmatically at exit.
	exp := telemetry.NewExporter()
	exp.Register("signer", epS.Telemetry())
	exp.Register("verifier", epV.Telemetry())
	for _, rn := range relays {
		exp.Register(rn.Name, rn.R.Telemetry())
	}
	fmt.Println("\nTelemetry snapshot")
	check(exp.WriteText(os.Stdout))

	// Observability report: correlate the per-hop span rings into exchange
	// timelines, then hold the final metric state to the invariant catalog
	// (benign runs only — attacks are supposed to violate I2).
	var allSpans []obs.Span
	if *flightLen > 0 {
		spanHops := []obs.HopSpans{{Hop: "signer", Spans: ringS.Snapshot()}}
		for i, rn := range relays {
			spanHops = append(spanHops, obs.HopSpans{Hop: rn.Name, Spans: relayRings[i].Snapshot()})
		}
		vSpans := ringV.Snapshot()
		spanHops = append(spanHops, obs.HopSpans{Hop: "verifier", Spans: vSpans})
		for _, h := range spanHops {
			allSpans = append(allSpans, h.Spans...)
		}
		timelines := obs.Reconstruct(spanHops)
		complete := 0
		for _, entries := range timelines {
			sent, deliver := false, false
			for _, e := range entries {
				if e.Hop == "signer" && e.Span.Verdict == obs.VerdictSent {
					sent = true
				}
				if e.Hop == "verifier" && e.Span.Verdict == obs.VerdictDeliver {
					deliver = true
				}
			}
			if sent && deliver {
				complete++
			}
		}
		ot := &stats.Table{Title: "Observability", Headers: []string{"Metric", "Value"}}
		ot.Add("spans captured", len(allSpans))
		ot.Add("exchange timelines", len(timelines))
		ot.Add("timelines spanning signer to verifier", complete)
		fmt.Println()
		fmt.Print(ot)
	}
	if *attackK == "none" {
		snap, _, err := obs.Collect(exp)
		check(err)
		stS, stV := epS.Stats(), epV.Stats()
		offered := stS.SentS1 + stS.SentS2 + stS.Retransmits + stV.SentS1 + stV.SentS2 + 400
		inv := obs.Invariants{Benign: true, Offered: offered, Loss: *loss, Hops: *hops}
		if viol := inv.Check(snap); len(viol) > 0 {
			fmt.Fprintln(os.Stderr, "\ntelemetry invariant violations:")
			for _, v := range viol {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("\ntelemetry invariants: I1-I4 hold")
	}
	if *otlpEP != "" {
		if !obs.OTLPEnabled {
			fmt.Fprintln(os.Stderr, "warning: -otlp-endpoint ignored: this binary was built without -tags alpha_otlp")
		} else {
			otlp := obs.NewOTLPExporter(*otlpEP)
			check(otlp.PushMetrics(exp, time.Now().UnixNano()))
			check(otlp.PushSpans(allSpans))
			fmt.Printf("pushed final snapshot and %d spans to %s\n", len(allSpans), *otlpEP)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func firstHop(net *netsim.Network) string {
	hop, ok := net.NextHop("signer", "verifier")
	if !ok {
		return "(no route)"
	}
	return hop
}
