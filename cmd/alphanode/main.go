// Command alphanode runs an ALPHA endpoint or verifying relay on real UDP
// sockets — the deployment face of the library.
//
// A three-terminal demo on one machine:
//
//	alphanode -role listen -addr 127.0.0.1:7001
//	alphanode -role relay  -addr 127.0.0.1:7002 -a 127.0.0.1:7000 -b 127.0.0.1:7001
//	alphanode -role dial   -addr 127.0.0.1:7000 -peer 127.0.0.1:7002 -send "hello" -count 10
//
// The dialer sends toward the relay, which verifies hop-by-hop and forwards
// to the listener; the listener prints every verified payload.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"alpha/internal/adaptive"
	"alpha/internal/admission"
	"alpha/internal/core"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/relay"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
	"alpha/internal/udpio"
	"alpha/internal/udptransport"
)

// maxIOBatch bounds -io-batch: each read loop pre-allocates batch-many
// full-size packet slabs, so an absurd value is almost certainly a typo.
const maxIOBatch = 1024

// maxTraceSize bounds -trace-size (the ring rounds up to a power of two).
const maxTraceSize = 1 << 20

// maxWorkers bounds -workers; the dispatch pool is meant to track cores,
// not sessions, so four digits is already generous.
const maxWorkers = 4096

// validateFlags fail-fasts on out-of-range numeric flags before any socket
// is opened, reporting every problem at once with the offending flag name.
func validateFlags(batch, traceLen, ioBatch, reuse, count, flightLen, workers int, chainLow float64, wait, rotate time.Duration) error {
	var errs []string
	if batch < 1 || batch > packet.MaxMACs {
		errs = append(errs, fmt.Sprintf("-batch %d out of range [1, %d]", batch, packet.MaxMACs))
	}
	if workers < 0 || workers > maxWorkers {
		errs = append(errs, fmt.Sprintf("-workers %d out of range [0, %d] (0 = GOMAXPROCS)", workers, maxWorkers))
	}
	if rotate < 0 {
		errs = append(errs, fmt.Sprintf("-rotate-interval %v must be >= 0 (0 = no expiry)", rotate))
	}
	if traceLen < 1 || traceLen > maxTraceSize {
		errs = append(errs, fmt.Sprintf("-trace-size %d out of range [1, %d]", traceLen, maxTraceSize))
	}
	if flightLen < 1 || flightLen > maxTraceSize {
		errs = append(errs, fmt.Sprintf("-flight-size %d out of range [1, %d]", flightLen, maxTraceSize))
	}
	if ioBatch < 0 || ioBatch > maxIOBatch {
		errs = append(errs, fmt.Sprintf("-io-batch %d out of range [0, %d] (0 = default)", ioBatch, maxIOBatch))
	}
	if reuse < 0 {
		errs = append(errs, fmt.Sprintf("-reuseport %d must be >= 0", reuse))
	}
	if count < 0 {
		errs = append(errs, fmt.Sprintf("-count %d must be >= 0", count))
	}
	if chainLow != 0 && (chainLow <= 0 || chainLow >= 1) {
		errs = append(errs, fmt.Sprintf("-chain-low %v out of range (0, 1) (0 = default %.3g)", chainLow, core.DefaultChainLowFraction))
	}
	if wait <= 0 {
		errs = append(errs, fmt.Sprintf("-wait %v must be positive", wait))
	}
	if len(errs) == 0 {
		return nil
	}
	msg := errs[0]
	for _, e := range errs[1:] {
		msg += "\n" + e
	}
	return fmt.Errorf("%s", msg)
}

// parseTokenKeys decodes the -token-key flag: comma-separated hex keys,
// each optionally prefixed id: (bare keys get id 1, matching alphatoken's
// default). Several entries let a server verify across a rotation.
func parseTokenKeys(s string) (map[uint8]admission.Key, error) {
	keys := make(map[uint8]admission.Key)
	for _, entry := range strings.Split(s, ",") {
		id := uint64(1)
		hexKey := strings.TrimSpace(entry)
		if i := strings.IndexByte(hexKey, ':'); i >= 0 {
			var err error
			if id, err = strconv.ParseUint(hexKey[:i], 10, 8); err != nil {
				return nil, fmt.Errorf("-token-key id %q: %w", hexKey[:i], err)
			}
			hexKey = hexKey[i+1:]
		}
		raw, err := hex.DecodeString(hexKey)
		if err != nil {
			return nil, fmt.Errorf("-token-key: %w", err)
		}
		if len(raw) != admission.KeySize {
			return nil, fmt.Errorf("-token-key: %d bytes, want %d", len(raw), admission.KeySize)
		}
		var k admission.Key
		copy(k[:], raw)
		keys[uint8(id)] = k
	}
	return keys, nil
}

func main() {
	var (
		role      = flag.String("role", "", "listen, dial, or relay")
		addr      = flag.String("addr", "127.0.0.1:7000", "local UDP address")
		peer      = flag.String("peer", "", "peer address (dial)")
		aAddr     = flag.String("a", "", "first peer (relay)")
		bAddr     = flag.String("b", "", "second peer (relay)")
		send      = flag.String("send", "hello from alphanode", "payload to send (dial)")
		count     = flag.Int("count", 5, "messages to send (dial)")
		modeStr   = flag.String("mode", "base", "mode: base, C, M, or CM")
		batch     = flag.Int("batch", 8, "messages per S1 (C and M)")
		reliable  = flag.Bool("reliable", true, "use reliable delivery")
		wait      = flag.Duration("wait", 30*time.Second, "how long to serve/wait")
		provision = flag.String("provision", "", "provisioning record (JSON) for a handshake-free association")
		anchorsF  = flag.String("anchors", "", "anchor set (JSON) to seed a relay with (relay role)")
		metrics   = flag.String("metrics-addr", "", "serve /metrics (Prometheus; ?format=json) and /trace on this HTTP address")
		traceLen  = flag.Int("trace-size", 4096, "packet-trace ring size (most recent events kept)")
		ioBatch   = flag.Int("io-batch", 0, "datagrams per recvmmsg/sendmmsg syscall (0 = default; 1 effectively disables batching)")
		gso       = flag.Bool("gso", false, "UDP segmentation offload: pack same-size send runs with UDP_SEGMENT and split UDP_GRO coalesced receives (Linux >= 4.18/5.0; downgrades to the batched engine elsewhere)")
		zerocopy  = flag.Bool("zerocopy", false, "opt sends into MSG_ZEROCOPY with errqueue completion reaping (downgrades itself on unsupported kernels and loopback)")
		reuse     = flag.Int("reuseport", 0, "serve role: SO_REUSEPORT read loops sharing the port (0 = single socket; capped at GOMAXPROCS; Linux only)")
		adaptOn   = flag.Bool("adaptive", false, "run the closed-loop mode/batch controller on each association (overrides -mode/-batch at runtime)")
		chainLow  = flag.Float64("chain-low", 0, "chain fraction below which ChainLow/auto-rekey fires, in (0, 1) (0 = default)")
		perAssoc  = flag.Bool("metrics-per-assoc", false, "serve role: export one labeled metric family per live association on /metrics")
		flightLen = flag.Int("flight-size", obs.DefaultSpanRingSize, "per-association flight-recorder ring size in spans (served on /flight)")
		otlpEP    = flag.String("otlp-endpoint", "", "push metrics and anomaly spans to this OTLP/HTTP collector base URL (requires a build with -tags alpha_otlp)")
		workers   = flag.Int("workers", 0, "serve role: session dispatch pool size (0 = GOMAXPROCS)")
		rotate    = flag.Duration("rotate-interval", 0, "serve role: generation-rotation period; associations idle for two periods are expired (0 = never expire)")
		prefilter = flag.Bool("prefilter", false, "stateless packet prefilter: stamp outgoing headers with a source-bound cookie and reject unstamped junk before session lookup (enable on every hop or none; requires UDP addressing without NAT)")
		tokenKeys = flag.String("token-key", "", "admission key(s) as hex-encoded 32 bytes, optionally id:hex and comma-separated for rotation; serve: verify HS1 connect tokens; dial: mint an anchor-bound token locally (deployments mint out of band with alphatoken)")
		tokenReq  = flag.Bool("require-token", false, "serve role: drop HS1s without a valid connect token (admission tier; needs -token-key)")
		tokenHex  = flag.String("token", "", "dial role: hex connect token minted by alphatoken for this client's -addr")
		s1Rate    = flag.Float64("s1-rate", 0, "relay role: sustained unsolicited-S1 forwards per second per upstream direction (0 = unlimited); unknown-association S1s beyond the budget are dropped as drop_s1_ratelimit")
		s1Burst   = flag.Float64("s1-burst", 16, "relay role: unsolicited-S1 burst allowance on top of -s1-rate")
	)
	flag.Parse()
	if err := validateFlags(*batch, *traceLen, *ioBatch, *reuse, *count, *flightLen, *workers, *chainLow, *wait, *rotate); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Admission: a keyed server verifies connect tokens before allocating
	// session state; -require-token upgrades that to drop token-less HS1s.
	var admitKeys map[uint8]admission.Key
	if *tokenKeys != "" {
		var err error
		admitKeys, err = parseTokenKeys(*tokenKeys)
		fatalIf(err)
	}
	if *tokenReq && admitKeys == nil {
		fatal(fmt.Errorf("-require-token needs -token-key"))
	}
	var admitVerifier *admission.Verifier
	if admitKeys != nil {
		var err error
		admitVerifier, err = admission.NewVerifier(admission.VerifierConfig{
			Require: *tokenReq,
			Keys:    admitKeys,
		})
		fatalIf(err)
	}

	var mode packet.Mode
	switch *modeStr {
	case "base":
		mode = packet.ModeBase
	case "C", "c":
		mode = packet.ModeC
	case "M", "m":
		mode = packet.ModeM
	case "CM", "cm":
		mode = packet.ModeCM
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeStr))
	}
	tracer := telemetry.NewTracer(*traceLen)

	// The flight recorder hands each association a span ring and freezes
	// recent history on anomalies (verify failures, offload downgrades,
	// adaptive flaps, chain exhaustion warnings). Single-association roles
	// emit into the shared ring; the serve role resolves one ring per
	// accepted association.
	rec := obs.NewRecorder(*flightLen)

	cfg := core.Config{
		Suite:            suite.SHA1(),
		Mode:             mode,
		BatchSize:        *batch,
		Reliable:         *reliable,
		ChainLen:         4096,
		ChainLowFraction: *chainLow,
		Tracer:           tracer,
		Spans:            rec.Shared(),
	}

	// One process-wide controller metric group: counters aggregate across
	// associations; the target gauges reflect the most recent decision.
	ctrlMet := &telemetry.ControllerMetrics{}
	adaptCfg := adaptive.Config{Metrics: ctrlMet, Tracer: tracer,
		OnFlap: func(assoc uint64) { rec.Trigger(assoc, obs.CauseAdaptiveFlap) }}

	// Every role registers its metric groups on one exporter; -metrics-addr
	// serves them live, and the exit path prints a final snapshot.
	exp := telemetry.NewExporter()
	exp.SetTracer(tracer)
	obs.RegisterRuntime(exp)
	if *adaptOn {
		exp.Register("alpha_adaptive", ctrlMet)
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		fatalIf(err)
		fmt.Printf("metrics on http://%s/metrics, traces on http://%s/trace, flight dumps on http://%s/flight\n", ln.Addr(), ln.Addr(), ln.Addr())
		go func() { _ = http.Serve(ln, obs.Handler(exp, rec)) }()
	}
	if *otlpEP != "" {
		if !obs.OTLPEnabled {
			fmt.Fprintln(os.Stderr, "warning: -otlp-endpoint ignored: this binary was built without -tags alpha_otlp")
		} else {
			otlp := obs.NewOTLPExporter(*otlpEP)
			fmt.Printf("pushing OTLP metrics and anomaly spans to %s\n", *otlpEP)
			go func() {
				tick := time.NewTicker(5 * time.Second)
				defer tick.Stop()
				pushed := 0
				for range tick.C {
					if err := otlp.PushMetrics(exp, time.Now().UnixNano()); err != nil {
						fmt.Fprintf(os.Stderr, "otlp: %v\n", err)
					}
					// Anomaly dumps export once each, as trace batches.
					dumps := rec.Dumps()
					for ; pushed < len(dumps); pushed++ {
						if err := otlp.PushSpans(dumps[pushed].Spans); err != nil {
							fmt.Fprintf(os.Stderr, "otlp: %v\n", err)
							break
						}
					}
				}
			}()
		}
	}
	dumpTelemetry := func() {
		fmt.Println("\ntelemetry snapshot:")
		_ = exp.WriteText(os.Stdout)
	}

	ioOpts := udptransport.IOOptions{Batch: *ioBatch, GSO: *gso, ZeroCopy: *zerocopy, Prefilter: *prefilter}

	// One warning, then keep going on the best engine the kernel grants —
	// an unsupported kernel must never be fatal (fail-fast is for flag
	// typos, not hardware variance).
	warnOffload := func(st udpio.OffloadStatus) {
		if w := ioOpts.DowngradeWarning(st); w != "" {
			fmt.Fprintln(os.Stderr, "warning: "+w)
			rec.Trigger(0, obs.CauseOffloadDowngrade)
		}
	}

	// The reuseport server binds its own socket group, so only bind the
	// shared socket here when a role will actually use it.
	var pc net.PacketConn
	if !(*role == "serve" && *reuse > 0) {
		var err error
		pc, err = net.ListenPacket("udp", *addr)
		fatalIf(err)
	}

	// Preconfigured endpoints skip the handshake entirely (§3.4 static
	// bootstrapping): load the record and wrap the socket directly.
	loadProvisioned := func(peer net.Addr) *udptransport.Conn {
		data, err := os.ReadFile(*provision)
		fatalIf(err)
		var rec core.ProvisionRecord
		fatalIf(json.Unmarshal(data, &rec))
		prov, err := core.FromRecord(cfg, rec)
		fatalIf(err)
		ep, err := core.NewPreconfiguredEndpoint(prov)
		fatalIf(err)
		fmt.Printf("preconfigured association %016x ready (no handshake)\n", ep.Assoc())
		c := udptransport.WrapOpts(pc, ep, peer, ioOpts)
		warnOffload(c.OffloadStatus())
		return c
	}

	switch *role {
	case "serve":
		// Multi-association responder: accepts any number of dialers. With
		// -reuseport N the kernel shards inbound flows across N sockets,
		// each drained by its own batched read loop.
		srvOpts := udptransport.ServerOptions{IO: ioOpts, Workers: *workers, RotateInterval: *rotate, Admission: admitVerifier}
		if admitVerifier != nil {
			exp.Register("alpha_admission", admitVerifier.Metrics())
			if *tokenReq {
				fmt.Println("admission: connect token required on every new association")
			} else {
				fmt.Println("admission: verifying connect tokens (token-less HS1s still admitted)")
			}
		}
		var srv *udptransport.Server
		if *reuse > 0 {
			n := *reuse
			if max := runtime.GOMAXPROCS(0); n > max {
				n = max
			}
			var err error
			srv, err = udptransport.NewReusePortServerWith("udp", *addr, n, cfg, srvOpts)
			fatalIf(err)
			fmt.Printf("SO_REUSEPORT: %d read loops\n", n)
		} else {
			srv = udptransport.NewServerWith(cfg, srvOpts, pc)
		}
		defer srv.Close()
		srv.SetFlightRecorder(rec)
		warnOffload(srv.OffloadStatus())
		exp.Register("alpha_transport", srv.Telemetry())
		// Endpoint metrics aggregate across sessions at scrape time.
		exp.Register("alpha_endpoint", telemetry.WalkerFunc(func(v telemetry.Visitor) {
			srv.EndpointTelemetry().Walk(v)
		}))
		// Per-association families materialize at scrape time, so session
		// churn needs no registration bookkeeping.
		if *perAssoc {
			exp.RegisterDynamic(srv.SessionGroups("alpha_session"))
		}
		fmt.Printf("serving on %s\n", *addr)
		deadline := time.After(*wait)
		for {
			acceptCh := make(chan *udptransport.Session, 1)
			go func() {
				if sess, err := srv.Accept(); err == nil {
					acceptCh <- sess
				}
			}()
			select {
			case sess := <-acceptCh:
				fmt.Printf("accepted association %016x from %s\n", sess.Endpoint().Assoc(), sess.Peer())
				if *adaptOn {
					sess.EnableAdaptive(adaptCfg)
				}
				go func() {
					for ev := range sess.Events() {
						if ev.Kind == core.EventDelivered {
							fmt.Printf("[%016x] verified: %q\n", sess.Endpoint().Assoc(), ev.Payload)
						}
					}
				}()
			case <-deadline:
				fmt.Printf("done: served %d associations\n", srv.Sessions())
				dumpTelemetry()
				return
			}
		}

	case "listen":
		fmt.Printf("listening on %s\n", *addr)
		var conn *udptransport.Conn
		if *provision != "" {
			conn = loadProvisioned(nil)
		} else {
			var err error
			conn, err = udptransport.ListenOpts(pc, cfg, *wait, ioOpts)
			fatalIf(err)
			warnOffload(conn.OffloadStatus())
		}
		defer conn.Close()
		exp.Register("alpha_endpoint", conn.Endpoint().Telemetry())
		if *adaptOn {
			conn.EnableAdaptive(adaptCfg)
		}
		fmt.Printf("association established with %s\n", conn.Peer())
		deadline := time.After(*wait)
		for {
			select {
			case ev := <-conn.Events():
				switch ev.Kind {
				case core.EventDelivered:
					fmt.Printf("verified payload (seq %d idx %d): %q\n", ev.Seq, ev.MsgIndex, ev.Payload)
				case core.EventDropped:
					fmt.Printf("dropped packet: %v\n", ev.Err)
				}
			case <-deadline:
				st := conn.Endpoint().Stats()
				fmt.Printf("done: delivered %d, dropped %d\n", st.Delivered, st.Dropped)
				dumpTelemetry()
				return
			}
		}

	case "dial":
		if *peer == "" {
			fatal(fmt.Errorf("-peer required for dial"))
		}
		peerAddr, err := net.ResolveUDPAddr("udp", *peer)
		fatalIf(err)
		// Stamp a connect token into the HS1: either one minted out of
		// band by alphatoken (-token) or, with the shared key at hand,
		// minted here bound to this handshake's anchors.
		switch {
		case *tokenHex != "":
			tok, err := hex.DecodeString(*tokenHex)
			fatalIf(err)
			cfg.TokenSource = func(sig, ack []byte) ([]byte, error) { return tok, nil }
		case admitKeys != nil:
			var keyID uint8
			for id := range admitKeys {
				keyID = id
				break
			}
			issuer, err := admission.NewIssuer(keyID, admitKeys[keyID])
			fatalIf(err)
			cfg.TokenSource = func(sig, ack []byte) ([]byte, error) {
				udp, ok := pc.LocalAddr().(*net.UDPAddr)
				if !ok {
					return nil, fmt.Errorf("cannot derive client address from %v", pc.LocalAddr())
				}
				return issuer.Mint(time.Now(), time.Minute, udp.IP, udp.Port, sig, ack)
			}
		}
		var conn *udptransport.Conn
		if *provision != "" {
			conn = loadProvisioned(peerAddr)
		} else {
			conn, err = udptransport.DialOpts(pc, peerAddr, cfg, 10*time.Second, ioOpts)
			fatalIf(err)
			warnOffload(conn.OffloadStatus())
		}
		defer conn.Close()
		exp.Register("alpha_endpoint", conn.Endpoint().Telemetry())
		if *adaptOn {
			conn.EnableAdaptive(adaptCfg)
		}
		fmt.Printf("association established with %s\n", *peer)
		for i := 0; i < *count; i++ {
			payload := fmt.Sprintf("%s #%d", *send, i)
			id, err := conn.Send([]byte(payload))
			fatalIf(err)
			fmt.Printf("sent message %d: %q\n", id, payload)
		}
		conn.Flush()
		acked := 0
		deadline := time.After(*wait)
		for acked < *count && *reliable {
			select {
			case ev := <-conn.Events():
				switch ev.Kind {
				case core.EventAcked:
					acked++
					fmt.Printf("acked message %d (%d/%d)\n", ev.MsgID, acked, *count)
				case core.EventNacked:
					fmt.Printf("nacked message %d\n", ev.MsgID)
				case core.EventSendFailed:
					fmt.Printf("send failed for message %d: %v\n", ev.MsgID, ev.Err)
					acked++
				}
			case <-deadline:
				fmt.Printf("timeout waiting for acks (%d/%d)\n", acked, *count)
				dumpTelemetry()
				return
			}
		}
		fmt.Println("all messages acknowledged")
		dumpTelemetry()

	case "relay":
		if *aAddr == "" || *bAddr == "" {
			fatal(fmt.Errorf("-a and -b required for relay"))
		}
		a, err := net.ResolveUDPAddr("udp", *aAddr)
		fatalIf(err)
		b, err := net.ResolveUDPAddr("udp", *bAddr)
		fatalIf(err)
		rcfg := relay.Config{Tracer: tracer, Spans: rec.Shared(),
			UnsolicitedS1Rate: *s1Rate, UnsolicitedS1Burst: *s1Burst}
		r := udptransport.NewRelayOpts(pc, a, b, rcfg, ioOpts)
		if *s1Rate > 0 {
			fmt.Printf("rate limiting unsolicited S1s to %.3g/s (burst %.3g) per upstream\n", *s1Rate, *s1Burst)
		}
		warnOffload(r.OffloadStatus())
		exp.Register("alpha_relay", r.Telemetry())
		exp.Register("alpha_relay_transport", r.TransportTelemetry())
		if *anchorsF != "" {
			data, err := os.ReadFile(*anchorsF)
			fatalIf(err)
			var anchors core.AnchorSet
			fatalIf(json.Unmarshal(data, &anchors))
			ast, err := suite.ByID(suite.ID(anchors.Suite))
			fatalIf(err)
			fatalIf(r.Seed(ast, anchors))
			fmt.Printf("seeded with anchors for association %016x\n", anchors.Assoc)
		}
		r.OnDecision = func(d relay.Decision) {
			if d.Verdict == relay.Drop {
				fmt.Printf("dropped %v: %v\n", d.Type, d.Reason)
			} else if d.Extracted != nil {
				fmt.Printf("verified and forwarded %d payload bytes\n", len(d.Extracted))
			}
		}
		fmt.Printf("relaying %s <-> %s via %s\n", *aAddr, *bAddr, *addr)
		time.Sleep(*wait)
		st := r.Stats()
		fmt.Printf("relay done: forwarded %d, dropped %d (unsolicited %d, bad payload %d)\n",
			st.Forwarded, st.Dropped, st.Unsolicited, st.BadPayload)
		dumpTelemetry()
		r.Close()

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
