// I/O engine selection for the UDP transport. Every socket the package
// touches is wrapped in a udpio.Conn: batched recvmmsg/sendmmsg where the
// platform supports it, the portable one-datagram shim everywhere else.

package udptransport

import (
	"alpha/internal/telemetry"
	"alpha/internal/udpio"
	"net"
)

// IOOptions selects and sizes the datagram I/O engine.
type IOOptions struct {
	// Batch caps the datagrams moved per syscall on the batched engine and
	// sizes the read slabs. 0 means udpio.DefaultBatch.
	Batch int
	// ForcePortable pins the portable one-datagram engine even where the
	// batched one is available — the switch the dual-engine test suite and
	// the before/after benchmarks flip.
	ForcePortable bool
}

func (o IOOptions) batch() int {
	if o.Batch <= 0 {
		return udpio.DefaultBatch
	}
	return o.Batch
}

// wrap builds the configured engine over pc.
func (o IOOptions) wrap(pc net.PacketConn, m *telemetry.IOMetrics) udpio.Conn {
	if o.ForcePortable {
		return udpio.Portable(pc, m)
	}
	return udpio.Wrap(pc, o.batch(), m)
}

// connBatch sizes a single-association Conn's read slab: one association
// never needs the server's full burst depth, and each slab slot pins a
// MaxPacketSize buffer.
const connBatch = 8
