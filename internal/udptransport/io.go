// I/O engine selection for the UDP transport. Every socket the package
// touches is wrapped in a udpio.Conn: the segmentation-offload engine when
// requested and granted, batched recvmmsg/sendmmsg where the platform
// supports it, the portable one-datagram shim everywhere else.

package udptransport

import (
	"strings"

	"alpha/internal/telemetry"
	"alpha/internal/udpio"
	"net"
)

// IOOptions selects and sizes the datagram I/O engine.
type IOOptions struct {
	// Batch caps the datagrams moved per syscall on the batched engine and
	// sizes the read slabs. 0 means udpio.DefaultBatch.
	Batch int
	// ForcePortable pins the portable one-datagram engine even where the
	// batched one is available — the switch the dual-engine test suite and
	// the before/after benchmarks flip.
	ForcePortable bool
	// GSO requests UDP segmentation offload: same-size send runs packed
	// into UDP_SEGMENT-tagged bursts, and UDP_GRO coalesced receives split
	// back out (Linux ≥ 4.18 / ≥ 5.0). Probed at setup; unsupported
	// kernels keep the batched engine.
	GSO bool
	// ZeroCopy opts sends into MSG_ZEROCOPY with automatic downgrade.
	ZeroCopy bool
	// ForceNoOffload pins the batched engine even when offload is
	// requested — the downgrade-path test hook mirroring ForcePortable.
	ForceNoOffload bool
	// Prefilter enables the stateless per-packet prefilter
	// (packet.Prefilter): outgoing packets are stamped with an
	// address-bound filter cookie, and — on the server and relay — inbound
	// datagrams failing the structural or cookie checks are rejected
	// before any session lookup or MAC, counted under drop_prefilter.
	// Enable it on every hop of a path or not at all: a stamped packet
	// crossing a non-restamping hop fails the next hop's check. Requires
	// UDP addressing with no NAT between hops.
	Prefilter bool
}

// addrIPPort extracts the cookie-binding view of a UDP address: the
// 4-byte-normalized IP (nil when unspecified or not UDP) and the port.
//
//alpha:hotpath
func addrIPPort(a net.Addr) ([]byte, int) {
	ua, ok := a.(*net.UDPAddr)
	if !ok {
		return nil, 0
	}
	ip := ua.IP
	if ip == nil || ip.IsUnspecified() {
		return nil, ua.Port
	}
	if v4 := ip.To4(); v4 != nil {
		return v4, ua.Port
	}
	return ip, ua.Port
}

func (o IOOptions) batch() int {
	if o.Batch <= 0 {
		return udpio.DefaultBatch
	}
	return o.Batch
}

// offload translates the transport-level flags into an engine request.
// One GSO flag drives both directions: a node that packs its sends wants
// its receives split too.
func (o IOOptions) offload() udpio.OffloadOptions {
	if o.ForcePortable || o.ForceNoOffload {
		return udpio.OffloadOptions{}
	}
	return udpio.OffloadOptions{GSO: o.GSO, GRO: o.GSO, ZeroCopy: o.ZeroCopy}
}

// wrap builds the configured engine over pc.
func (o IOOptions) wrap(pc net.PacketConn, m *telemetry.IOMetrics) udpio.Conn {
	c, _ := o.wrapStatus(pc, m)
	return c
}

// wrapStatus is wrap plus the offload feature set the kernel granted, so
// callers can log one downgrade warning and continue.
func (o IOOptions) wrapStatus(pc net.PacketConn, m *telemetry.IOMetrics) (udpio.Conn, udpio.OffloadStatus) {
	if o.ForcePortable {
		return udpio.Portable(pc, m), udpio.OffloadStatus{}
	}
	if off := o.offload(); off.GSO || off.GRO || off.ZeroCopy {
		return udpio.WrapOffload(pc, o.batch(), off, m)
	}
	return udpio.Wrap(pc, o.batch(), m), udpio.OffloadStatus{}
}

// DowngradeWarning renders one log-ready sentence when st grants less than
// the options requested, or "" when nothing was lost. Explicit ForcePortable
// and ForceNoOffload are silent: the caller asked for the downgrade.
func (o IOOptions) DowngradeWarning(st udpio.OffloadStatus) string {
	if o.ForcePortable || o.ForceNoOffload {
		return ""
	}
	var miss []string
	if o.GSO && !st.GSO {
		miss = append(miss, "gso")
	}
	if o.GSO && !st.GRO {
		miss = append(miss, "gro")
	}
	if o.ZeroCopy && !st.ZeroCopy {
		miss = append(miss, "zerocopy")
	}
	if len(miss) == 0 {
		return ""
	}
	engine := "batched"
	if st.Any() {
		engine = "partial offload"
	}
	return "udp offload unavailable on this kernel: " + strings.Join(miss, ", ") +
		"; continuing on the " + engine + " engine"
}

// connBatch sizes a single-association Conn's read slab: one association
// never needs the server's full burst depth, and each slab slot pins a
// MaxPacketSize buffer.
const connBatch = 8
