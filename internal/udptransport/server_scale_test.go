// Tests for the million-association session core: generation rotation
// under churn, the bounded accept backlog, and the stateless prefilter
// end to end over real sockets.

package udptransport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// waitDelivered drains a session's event channel until a delivery arrives.
func waitDelivered(t *testing.T, sess *Session) string {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-sess.Events():
			if ev.Kind == core.EventDelivered {
				return string(ev.Payload)
			}
		case <-deadline:
			t.Fatalf("session %x: delivery timeout", sess.Endpoint().Assoc())
		}
	}
}

// sawEvent reports whether kind is sitting in the session's event buffer.
func sawEvent(sess *Session, kind core.EventKind) bool {
	for {
		select {
		case ev := <-sess.Events():
			if ev.Kind == kind {
				return true
			}
		default:
			return false
		}
	}
}

// TestServerRotationExpiresIdleOnly walks the generation machinery
// deterministically: traffic promotes an association across a rotation
// boundary, a full idle interval retires it, expiry folds its telemetry
// into the server aggregate exactly once, and an explicit Close racing the
// expiry never double-counts.
func TestServerRotationExpiresIdleOnly(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	srv := NewServer(spc, cfg) // RotateInterval 0: rotations are manual
	defer srv.Close()

	const dialers = 6
	conns := make([]*Conn, 0, dialers)
	sessions := make([]*Session, 0, dialers)
	for i := 0; i < dialers; i++ {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(pc, spc.LocalAddr(), cfg, 5*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		conns = append(conns, c)
		sess, err := srv.Accept()
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
	}
	for i, c := range conns {
		if _, err := c.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Flush()
	}
	// Accept() hands sessions back in establishment order, which need not
	// match dial order; route by association ID.
	byAssoc := map[uint64]*Session{}
	for _, sess := range sessions {
		waitDelivered(t, sess)
		byAssoc[sess.Endpoint().Assoc()] = sess
	}
	deliveredBefore := srv.EndpointTelemetry().Delivered.Load()
	if deliveredBefore < dialers {
		t.Fatalf("aggregate Delivered = %d, want >= %d", deliveredBefore, dialers)
	}
	// Let the reliable-mode ack exchanges finish so the idle half goes
	// genuinely quiet before the first rotation stamps the cutoff.
	time.Sleep(100 * time.Millisecond)

	// Rotation one: everything demotes to the previous generation, nothing
	// is idle yet.
	srv.Rotate()
	if got := srv.Sessions(); got != dialers {
		t.Fatalf("Sessions = %d after first rotation, want %d", got, dialers)
	}

	// Half the dialers keep talking — inbound traffic promotes their
	// sessions into the current generation. The other half stay silent.
	for i := 0; i < dialers/2; i++ {
		if _, err := conns[i].Send([]byte("again")); err != nil {
			t.Fatal(err)
		}
		conns[i].Flush()
		waitDelivered(t, byAssoc[conns[i].Endpoint().Assoc()])
	}

	// Rotation two: the silent half has now been idle a full interval and
	// must be retired; the active half survives.
	srv.Rotate()
	if got := srv.Sessions(); got != dialers/2 {
		t.Fatalf("Sessions = %d after second rotation, want %d", got, dialers/2)
	}
	m := srv.Telemetry()
	if got := m.SessionsExpired.Load(); got != dialers/2 {
		t.Fatalf("SessionsExpired = %d, want %d", got, dialers/2)
	}
	if got := m.SessionsRemoved.Load(); got != dialers/2 {
		t.Fatalf("SessionsRemoved = %d, want %d", got, dialers/2)
	}
	if got := m.ActiveSessions.Load(); got != dialers/2 {
		t.Fatalf("ActiveSessions = %d, want %d", got, dialers/2)
	}
	for i := dialers / 2; i < dialers; i++ {
		sess := byAssoc[conns[i].Endpoint().Assoc()]
		if !sawEvent(sess, core.EventExpired) {
			t.Fatalf("expired session %x never saw EventExpired", sess.Endpoint().Assoc())
		}
	}
	// The fold keeps the server-wide aggregate intact: deliveries made by
	// the now-retired sessions still count.
	if got := srv.EndpointTelemetry().Delivered.Load(); got < deliveredBefore {
		t.Fatalf("aggregate Delivered shrank across expiry: %d -> %d", deliveredBefore, got)
	}

	// Closing an already-expired session is a no-op: the maps no longer
	// hold it, so nothing double-folds or double-counts.
	for i := dialers / 2; i < dialers; i++ {
		byAssoc[conns[i].Endpoint().Assoc()].Close()
	}
	if got := m.SessionsRemoved.Load(); got != dialers/2 {
		t.Fatalf("SessionsRemoved = %d after closing expired sessions, want %d (no double retire)", got, dialers/2)
	}

	// Rotation three: the survivors have been idle since before rotation
	// two, so the whole table drains.
	srv.Rotate()
	if got := srv.Sessions(); got != 0 {
		t.Fatalf("Sessions = %d after third rotation, want 0", got)
	}
	if got := m.SessionsExpired.Load(); got != dialers {
		t.Fatalf("SessionsExpired = %d, want %d", got, dialers)
	}
	if got := m.ActiveSessions.Load(); got != 0 {
		t.Fatalf("ActiveSessions = %d, want 0", got)
	}
	if got := m.Rotations.Load(); got != 3 {
		t.Fatalf("Rotations = %d, want 3", got)
	}
}

// TestServerRotationChurnStress runs automatic rotation at a short interval
// while dialers establish, talk, and close concurrently — the race surface
// between rotation expiry, lookup promotion, and explicit removal. Under
// -race this exercises every lock edge; the end-state invariants catch any
// double retire or leaked session regardless.
func TestServerRotationChurnStress(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Unreliable mode so a session expired mid-conversation never wedges a
	// dialer waiting for acks that cannot come.
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 64}
	srv := NewServerWith(cfg, ServerOptions{RotateInterval: 40 * time.Millisecond}, spc)
	defer srv.Close()

	// Accept loop: hold each session briefly, then Close it — explicit
	// removal racing rotation expiry from the other side.
	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		for {
			sess, err := srv.Accept()
			if err != nil {
				return
			}
			acceptWG.Add(1)
			go func() {
				defer acceptWG.Done()
				time.Sleep(time.Duration(rand.Intn(60)) * time.Millisecond)
				sess.Close()
			}()
		}
	}()

	const dialers = 16
	var wg sync.WaitGroup
	for i := 0; i < dialers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				return
			}
			c, err := Dial(pc, spc.LocalAddr(), cfg, 3*time.Second)
			if err != nil {
				pc.Close() // session may have expired mid-handshake; fine
				return
			}
			defer c.Close()
			for m := 0; m < 5; m++ {
				if _, err := c.Send([]byte(fmt.Sprintf("d%d-m%d", i, m))); err != nil {
					return
				}
				c.Flush()
				time.Sleep(time.Duration(rand.Intn(30)) * time.Millisecond)
			}
		}()
	}
	wg.Wait()

	// Quiesce: with all dialers gone, at most two more intervals retire
	// whatever the accept loop has not closed yet.
	m := srv.Telemetry()
	deadline := time.Now().Add(3 * time.Second)
	for srv.Sessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.Sessions(); got != 0 {
		t.Fatalf("Sessions = %d after churn quiesced, want 0", got)
	}
	created, removed := m.SessionsCreated.Load(), m.SessionsRemoved.Load()
	if created == 0 {
		t.Fatal("no sessions were created — churn did not run")
	}
	if created != removed {
		t.Fatalf("SessionsCreated = %d, SessionsRemoved = %d — a double retire or leak", created, removed)
	}
	if got := m.ActiveSessions.Load(); got != 0 {
		t.Fatalf("ActiveSessions = %d, want 0", got)
	}
	if m.Rotations.Load() == 0 {
		t.Fatal("rotation loop never ticked")
	}
	srv.Close()
	acceptWG.Wait()
}

// TestServerAcceptBacklogBound caps the established-but-unaccepted list and
// proves the overflow is dropped — and counted — at establishment time,
// like a full TCP accept queue dropping SYNs.
func TestServerAcceptBacklogBound(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(256)
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 32, Tracer: tracer}
	srv := NewServerWith(cfg, ServerOptions{AcceptBacklog: 2}, spc)
	defer srv.Close()

	// Nobody calls Accept, so the first two dialers fill the backlog.
	for i := 0; i < 2; i++ {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(pc, spc.LocalAddr(), cfg, 5*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
	}

	// The third establishes server-side, overflows the backlog, and is
	// retired before its HS2 ever leaves — the dialer times out exactly as
	// it would against a saturated responder.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if c, err := Dial(pc, spc.LocalAddr(), cfg, 1500*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("third dial succeeded past a full accept backlog")
	}
	pc.Close()

	m := srv.Telemetry()
	// The handshake retransmits while the dialer waits, and every retry
	// re-establishes and is re-dropped; at least one drop must register.
	if got := m.AcceptBacklogDrops.Load(); got == 0 {
		t.Fatal("AcceptBacklogDrops = 0, want > 0")
	}
	found := false
	for _, ev := range tracer.Snapshot() {
		if ev.Kind == telemetry.TraceDrop && ev.Detail == telemetry.ReasonAcceptBacklog {
			found = true
		}
	}
	if !found {
		t.Fatal("backlog drop left no trace event")
	}

	// The two queued sessions are intact and acceptable; the dropped one
	// left no residue once its dialer gave up.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Sessions() != 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.Sessions(); got != 2 {
		t.Fatalf("Sessions = %d, want 2", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.Accept(); err != nil {
			t.Fatalf("Accept %d: %v", i, err)
		}
	}
}

// TestServerPrefilterEndToEnd turns the stateless prefilter on across a real
// socket pair: stamped traffic flows both ways, junk and bad-cookie floods
// are rejected before any session lookup, and the drops are counted under
// their own reason.
func TestServerPrefilterEndToEnd(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(256)
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 32, Tracer: tracer}
	popts := IOOptions{Prefilter: true}
	srv := NewServerWith(cfg, ServerOptions{IO: popts}, spc)
	defer srv.Close()

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialOpts(pc, spc.LocalAddr(), cfg, 5*time.Second, popts)
	if err != nil {
		t.Fatalf("dial through prefilter: %v", err)
	}
	defer c.Close()
	sess, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if got := waitDelivered(t, sess); got != "ping" {
		t.Fatalf("delivered %q, want %q", got, "ping")
	}
	if _, err := sess.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	sess.Flush()
	waitConnDelivered(t, c, "pong")

	// Flood from an unrelated socket. First shape: structural junk (no
	// magic). Second shape: a perfectly well-formed HS1 whose cookie
	// matches neither of the sender's valid bindings — what replayed or
	// rerouted traffic looks like to the filter.
	atk, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer atk.Close()
	junk := make([]byte, 64)
	for i := range junk {
		junk[i] = byte(i * 7)
	}
	if _, err := atk.WriteTo(junk, spc.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeHS1, Suite: 1, Flags: core.FlagInitiator, Assoc: 0xBAD, Seq: 0,
	}, &packet.Handshake{Initiator: true, SigAnchor: make([]byte, 20), AckAnchor: make([]byte, 20), ChainLen: 8, Nonce: make([]byte, 20)})
	if err != nil {
		t.Fatal(err)
	}
	ip, port := addrIPPort(atk.LocalAddr())
	bad := -1
	for v := 1; v < 256; v++ {
		raw[packet.CookieOffset] = byte(v)
		if !packet.Prefilter(raw, ip, port) {
			bad = v
			break
		}
	}
	if bad < 0 {
		t.Fatal("every cookie value passed the prefilter")
	}
	raw[packet.CookieOffset] = byte(bad)
	if _, err := atk.WriteTo(raw, spc.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	m := srv.Telemetry()
	deadline := time.Now().Add(3 * time.Second)
	for m.PrefilterDrops.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := m.PrefilterDrops.Load(); got != 2 {
		t.Fatalf("PrefilterDrops = %d, want 2", got)
	}
	// Both rejections happened before demux: no unknown-association drop,
	// no phantom session.
	if got := m.UnknownAssocDrops.Load(); got != 0 {
		t.Fatalf("UnknownAssocDrops = %d, want 0 (prefilter must fire before demux)", got)
	}
	if got := srv.Sessions(); got != 1 {
		t.Fatalf("Sessions = %d, want 1 — junk created a session", got)
	}
	found := false
	for _, ev := range tracer.Snapshot() {
		if ev.Kind == telemetry.TraceDrop && ev.Detail == telemetry.ReasonPrefilter {
			found = true
		}
	}
	if !found {
		t.Fatal("prefilter drop left no trace event")
	}

	// The live association is unaffected by the flood.
	if _, err := c.Send([]byte("still-here")); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if got := waitDelivered(t, sess); got != "still-here" {
		t.Fatalf("delivered %q after flood, want %q", got, "still-here")
	}
}

// waitConnDelivered drains a client conn's events until payload arrives.
func waitConnDelivered(t *testing.T, c *Conn, payload string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-c.Events():
			if ev.Kind == core.EventDelivered && string(ev.Payload) == payload {
				return
			}
		case <-deadline:
			t.Fatalf("conn never delivered %q", payload)
		}
	}
}
