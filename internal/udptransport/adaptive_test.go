package udptransport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"alpha/internal/adaptive"
	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// TestUDPSetProfileRacesInFlightBurst hammers runtime profile transitions
// against a continuous stream of ALPHA-M bursts. Run under -race this is
// the transport-level proof that SetProfile's serialization holds: every
// message must still verify and ack, and no S2 may be rejected for
// carrying the wrong mode (which is what an unpinned mid-exchange
// transition would produce).
func TestUDPSetProfileRacesInFlightBurst(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeM, Reliable: true, ChainLen: 4096, BatchSize: 8}
	dialer, listener := connect(t, cfg)

	const total = 160
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		profiles := []core.Profile{
			{Mode: packet.ModeC, BatchSize: 4},
			{Mode: packet.ModeBase, BatchSize: 1},
			{Mode: packet.ModeM, BatchSize: 8},
			{Mode: packet.ModeCM, BatchSize: 8},
		}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := dialer.SetProfile(profiles[i%len(profiles)]); err != nil {
				t.Errorf("SetProfile: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for i := 0; i < total; i++ {
		if _, err := dialer.Send([]byte(fmt.Sprintf("race-%03d", i))); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			dialer.Flush()
		}
	}
	dialer.Flush()
	evs := collect(t, listener, core.EventDelivered, total, 20*time.Second)
	collect(t, dialer, core.EventAcked, total, 20*time.Second)
	close(done)
	wg.Wait()

	// Losses and duplicate retransmissions are legal on a real socket;
	// verification failures are not — they would mean an exchange mixed
	// profiles mid-flight.
	for _, ev := range evs {
		if ev.Kind != core.EventDropped {
			continue
		}
		if errors.Is(ev.Err, core.ErrBadMAC) || errors.Is(ev.Err, core.ErrBadProof) ||
			errors.Is(ev.Err, core.ErrBadAuthElement) {
			t.Fatalf("verification failure during profile races: %v", ev.Err)
		}
	}
}

// TestConnEnableAdaptive runs the background controller loop against real
// traffic and checks it samples and stays deadlock-free through Close.
func TestConnEnableAdaptive(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeC, Reliable: true, ChainLen: 1024, BatchSize: 4}
	dialer, listener := connect(t, cfg)

	met := &telemetry.ControllerMetrics{}
	dialer.EnableAdaptive(adaptive.Config{
		Interval: 5 * time.Millisecond,
		Metrics:  met,
	})
	const total = 24
	for i := 0; i < total; i++ {
		if _, err := dialer.Send([]byte(fmt.Sprintf("adaptive-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	dialer.Flush()
	collect(t, listener, core.EventDelivered, total, 10*time.Second)

	deadline := time.Now().Add(5 * time.Second)
	for met.Samples.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if met.Samples.Load() < 3 {
		t.Fatalf("controller sampled %d times, want >= 3", met.Samples.Load())
	}
	// Close must reap the controller goroutine (Close waits on the conn
	// WaitGroup, so a stuck loop would hang the test here).
	dialer.Close()
	listener.Close()
}

// TestServerSessionGroups checks the per-association metric families: one
// labeled group per live session at scrape time, gone after the session
// retires.
func TestServerSessionGroups(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeC, Reliable: true, ChainLen: 256, BatchSize: 4}
	srv := NewServer(spc, cfg)
	defer srv.Close()

	exp := telemetry.NewExporter()
	exp.RegisterDynamic(srv.SessionGroups("alpha_session"))

	const dialers = 3
	var conns []*Conn
	for i := 0; i < dialers; i++ {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(pc, srv.LocalAddr(), cfg, 5*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		conns = append(conns, c)
		if _, err := srv.Accept(); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range conns {
		if _, err := c.Send([]byte(fmt.Sprintf("hello-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Flush()
	}

	snap := exp.Snapshot()
	labeled := 0
	for name := range snap {
		if strings.HasPrefix(name, `alpha_session_sent_s1{assoc="`) {
			labeled++
		}
	}
	if labeled != dialers {
		t.Fatalf("per-association families = %d, want %d\nkeys: %v", labeled, dialers, keysOf(snap))
	}
	// Prometheus rendering carries the label and declares each family once.
	var buf strings.Builder
	if err := exp.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "# TYPE alpha_session_sent_s1 counter"); n != 1 {
		t.Fatalf("TYPE declared %d times, want 1", n)
	}
	if n := strings.Count(buf.String(), `alpha_session_sent_s1{assoc="`); n != dialers {
		t.Fatalf("prometheus samples = %d, want %d", n, dialers)
	}

	// Retiring a session removes its family at the next scrape.
	assoc := conns[0].Endpoint().Assoc()
	srv.remove(assoc)
	snap = exp.Snapshot()
	if _, ok := snap[fmt.Sprintf(`alpha_session_sent_s1{assoc=%q}`, fmt.Sprintf("%016x", assoc))]; ok {
		t.Fatal("retired session still exported")
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
