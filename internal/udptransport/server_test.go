package udptransport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
)

func TestServerAcceptsMultipleDialers(t *testing.T) {
	forEachEngine(t, testServerAcceptsMultipleDialers)
}

func testServerAcceptsMultipleDialers(t *testing.T, opts IOOptions) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	srv := NewServerOpts(cfg, opts, spc)
	defer srv.Close()

	const dialers = 4
	type result struct {
		idx  int
		conn *Conn
		err  error
	}
	dialed := make(chan result, dialers)
	for i := 0; i < dialers; i++ {
		i := i
		go func() {
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				dialed <- result{i, nil, err}
				return
			}
			c, err := DialOpts(pc, spc.LocalAddr(), cfg, 5*time.Second, opts)
			dialed <- result{i, c, err}
		}()
	}
	// Accept all sessions.
	sessions := make([]*Session, 0, dialers)
	for i := 0; i < dialers; i++ {
		sess, err := srv.Accept()
		if err != nil {
			t.Fatalf("Accept %d: %v", i, err)
		}
		sessions = append(sessions, sess)
	}
	conns := make([]*Conn, dialers)
	for i := 0; i < dialers; i++ {
		r := <-dialed
		if r.err != nil {
			t.Fatalf("dialer %d: %v", r.idx, r.err)
		}
		conns[r.idx] = r.conn
		defer r.conn.Close()
	}
	if srv.Sessions() != dialers {
		t.Fatalf("server tracks %d sessions, want %d", srv.Sessions(), dialers)
	}

	// Every dialer sends; every session delivers its own traffic only.
	for i, c := range conns {
		if _, err := c.Send([]byte(fmt.Sprintf("from-dialer-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Flush()
	}
	byAssoc := map[uint64]string{}
	for i, c := range conns {
		byAssoc[c.Endpoint().Assoc()] = fmt.Sprintf("from-dialer-%d", i)
	}
	for _, sess := range sessions {
		want := byAssoc[sess.Endpoint().Assoc()]
		deadline := time.After(5 * time.Second)
		for {
			var got string
			select {
			case ev := <-sess.Events():
				if ev.Kind == core.EventDelivered {
					got = string(ev.Payload)
				}
			case <-deadline:
				t.Fatalf("session %x: delivery timeout", sess.Endpoint().Assoc())
			}
			if got == "" {
				continue
			}
			if got != want {
				t.Fatalf("session %x got %q, want %q — cross-association leak!", sess.Endpoint().Assoc(), got, want)
			}
			break
		}
	}
	// And the reverse direction works per session.
	for _, sess := range sessions {
		if _, err := sess.Send([]byte("reply")); err != nil {
			t.Fatal(err)
		}
		sess.Flush()
	}
	for _, c := range conns {
		deadline := time.After(5 * time.Second)
		for done := false; !done; {
			select {
			case ev := <-c.Events():
				if ev.Kind == core.EventDelivered && string(ev.Payload) == "reply" {
					done = true
				}
			case <-deadline:
				t.Fatalf("dialer never got its reply")
			}
		}
	}
}

// TestServerManyAssociationsStress drives 32 concurrent dialers through one
// server socket with interleaved sends in both directions, then tears
// everything down cleanly. Run under -race this exercises the sharded
// routing table, the pooled read buffers, and the per-session workers.
func TestServerManyAssociationsStress(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 256}
	srv := NewServer(spc, cfg)
	defer srv.Close()

	const (
		dialers  = 32
		messages = 6
	)
	type result struct {
		idx  int
		conn *Conn
		err  error
	}
	dialed := make(chan result, dialers)
	for i := 0; i < dialers; i++ {
		i := i
		go func() {
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				dialed <- result{i, nil, err}
				return
			}
			c, err := Dial(pc, spc.LocalAddr(), cfg, 10*time.Second)
			dialed <- result{i, c, err}
		}()
	}
	sessions := make([]*Session, 0, dialers)
	for i := 0; i < dialers; i++ {
		sess, err := srv.Accept()
		if err != nil {
			t.Fatalf("Accept %d: %v", i, err)
		}
		sessions = append(sessions, sess)
	}
	conns := make([]*Conn, dialers)
	for i := 0; i < dialers; i++ {
		r := <-dialed
		if r.err != nil {
			t.Fatalf("dialer %d: %v", r.idx, r.err)
		}
		conns[r.idx] = r.conn
	}
	if got := srv.Sessions(); got != dialers {
		t.Fatalf("server tracks %d sessions, want %d", got, dialers)
	}

	// All dialers send concurrently, interleaving traffic from every
	// association on the server's single socket.
	var wg sync.WaitGroup
	sendErr := make(chan error, dialers)
	for i, c := range conns {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := 0; m < messages; m++ {
				if _, err := c.Send([]byte(fmt.Sprintf("d%d-m%d", i, m))); err != nil {
					sendErr <- fmt.Errorf("dialer %d send %d: %w", i, m, err)
					return
				}
				c.Flush()
			}
		}()
	}
	wg.Wait()
	close(sendErr)
	for err := range sendErr {
		t.Fatal(err)
	}

	// Each session must deliver exactly its own dialer's messages.
	idxByAssoc := map[uint64]int{}
	for i, c := range conns {
		idxByAssoc[c.Endpoint().Assoc()] = i
	}
	for _, sess := range sessions {
		di, ok := idxByAssoc[sess.Endpoint().Assoc()]
		if !ok {
			t.Fatalf("session %x matches no dialer", sess.Endpoint().Assoc())
		}
		prefix := fmt.Sprintf("d%d-", di)
		seen := map[string]bool{}
		deadline := time.After(20 * time.Second)
		for len(seen) < messages {
			select {
			case ev := <-sess.Events():
				if ev.Kind != core.EventDelivered {
					continue
				}
				got := string(ev.Payload)
				if len(got) < len(prefix) || got[:len(prefix)] != prefix {
					t.Fatalf("session for dialer %d got %q — cross-association leak!", di, got)
				}
				seen[got] = true
			case <-deadline:
				t.Fatalf("dialer %d: delivered %d/%d messages", di, len(seen), messages)
			}
		}
	}

	// Reverse direction, also interleaved.
	for _, sess := range sessions {
		sess := sess
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess.Send([]byte("reply"))
			sess.Flush()
		}()
	}
	wg.Wait()
	for i, c := range conns {
		deadline := time.After(20 * time.Second)
		for done := false; !done; {
			select {
			case ev := <-c.Events():
				if ev.Kind == core.EventDelivered && string(ev.Payload) == "reply" {
					done = true
				}
			case <-deadline:
				t.Fatalf("dialer %d never got its reply", i)
			}
		}
	}

	// Clean teardown: every side closes; the routing table must empty.
	for _, c := range conns {
		c.Close()
	}
	for _, sess := range sessions {
		sess.Close()
	}
	if got := srv.Sessions(); got != 0 {
		t.Fatalf("server still tracks %d sessions after close", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerIgnoresDataForUnknownAssociations(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(spc, core.Config{ChainLen: 16})
	defer srv.Close()
	// Fire a non-handshake packet at the server: no session must appear.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeS2, Suite: 1, Flags: core.FlagInitiator, Assoc: 777, Seq: 1,
	}, &packet.S2{Mode: packet.ModeBase, KeyIdx: 2, Key: make([]byte, 20), Payload: []byte("stray")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.WriteTo(raw, spc.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if srv.Sessions() != 0 {
		t.Fatalf("stray data packet created a session")
	}
}

func TestServerCloseUnblocksAccept(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(spc, core.Config{ChainLen: 16})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Accept()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err != ErrServerClosed {
			t.Fatalf("Accept returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Accept did not unblock on Close")
	}
}
