package udptransport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
)

func TestServerAcceptsMultipleDialers(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	srv := NewServer(spc, cfg)
	defer srv.Close()

	const dialers = 4
	type result struct {
		idx  int
		conn *Conn
		err  error
	}
	dialed := make(chan result, dialers)
	for i := 0; i < dialers; i++ {
		i := i
		go func() {
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				dialed <- result{i, nil, err}
				return
			}
			c, err := Dial(pc, spc.LocalAddr(), cfg, 5*time.Second)
			dialed <- result{i, c, err}
		}()
	}
	// Accept all sessions.
	sessions := make([]*Session, 0, dialers)
	for i := 0; i < dialers; i++ {
		sess, err := srv.Accept()
		if err != nil {
			t.Fatalf("Accept %d: %v", i, err)
		}
		sessions = append(sessions, sess)
	}
	conns := make([]*Conn, dialers)
	for i := 0; i < dialers; i++ {
		r := <-dialed
		if r.err != nil {
			t.Fatalf("dialer %d: %v", r.idx, r.err)
		}
		conns[r.idx] = r.conn
		defer r.conn.Close()
	}
	if srv.Sessions() != dialers {
		t.Fatalf("server tracks %d sessions, want %d", srv.Sessions(), dialers)
	}

	// Every dialer sends; every session delivers its own traffic only.
	for i, c := range conns {
		if _, err := c.Send([]byte(fmt.Sprintf("from-dialer-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Flush()
	}
	byAssoc := map[uint64]string{}
	for i, c := range conns {
		byAssoc[c.Endpoint().Assoc()] = fmt.Sprintf("from-dialer-%d", i)
	}
	for _, sess := range sessions {
		want := byAssoc[sess.Endpoint().Assoc()]
		deadline := time.After(5 * time.Second)
		for {
			var got string
			select {
			case ev := <-sess.Events():
				if ev.Kind == core.EventDelivered {
					got = string(ev.Payload)
				}
			case <-deadline:
				t.Fatalf("session %x: delivery timeout", sess.Endpoint().Assoc())
			}
			if got == "" {
				continue
			}
			if got != want {
				t.Fatalf("session %x got %q, want %q — cross-association leak!", sess.Endpoint().Assoc(), got, want)
			}
			break
		}
	}
	// And the reverse direction works per session.
	for _, sess := range sessions {
		if _, err := sess.Send([]byte("reply")); err != nil {
			t.Fatal(err)
		}
		sess.Flush()
	}
	for _, c := range conns {
		deadline := time.After(5 * time.Second)
		for done := false; !done; {
			select {
			case ev := <-c.Events():
				if ev.Kind == core.EventDelivered && string(ev.Payload) == "reply" {
					done = true
				}
			case <-deadline:
				t.Fatalf("dialer never got its reply")
			}
		}
	}
}

func TestServerIgnoresDataForUnknownAssociations(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(spc, core.Config{ChainLen: 16})
	defer srv.Close()
	// Fire a non-handshake packet at the server: no session must appear.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeS2, Suite: 1, Flags: core.FlagInitiator, Assoc: 777, Seq: 1,
	}, &packet.S2{Mode: packet.ModeBase, KeyIdx: 2, Key: make([]byte, 20), Payload: []byte("stray")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.WriteTo(raw, spc.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if srv.Sessions() != 0 {
		t.Fatalf("stray data packet created a session")
	}
}

func TestServerCloseUnblocksAccept(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(spc, core.Config{ChainLen: 16})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Accept()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err != ErrServerClosed {
			t.Fatalf("Accept returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Accept did not unblock on Close")
	}
}
