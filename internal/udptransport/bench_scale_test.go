// Scale proof for the session core: how many live associations one server
// holds, what each costs in memory, that expiry is a generation swap rather
// than a table scan, and what the prefilter rejects per second. The numbers
// recorded in BENCH_scale.json come from TestScaleMillion (ALPHA_SCALE=1);
// the CI smoke job runs TestScaleSmoke (ALPHA_SCALE_SMOKE=1) at 100k
// associations with loose bounds, and BenchmarkScale gives `go test -bench`
// visibility into the per-operation costs at a small table size.
//
// The populated table is built through the real dispatch path with
// header-only HS1 frames: dispatch creates the session and its endpoint
// exactly as for live traffic, the engine then rejects the truncated
// handshake body — so each association holds its full routing-table,
// endpoint, and buffer footprint without needing a million real peers.

package udptransport

import (
	"encoding/binary"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// scaleFrame builds a header-only frame that passes the prefilter's
// structural tier (magic/version/type, cookie 0 = unstamped).
func scaleFrame(typ packet.Type, assoc uint64) []byte {
	b := make([]byte, packet.HeaderSize)
	binary.BigEndian.PutUint16(b[0:2], packet.Magic)
	b[2] = packet.Version
	b[3] = byte(typ)
	binary.BigEndian.PutUint64(b[6:14], assoc)
	return b
}

// dispatchFrame feeds one crafted frame through Server.dispatch the way a
// read loop would.
func dispatchFrame(s *Server, from net.Addr, frame []byte) {
	bp := bufPool.Get().(*[]byte)
	n := copy(*bp, frame)
	s.dispatch(time.Now(), nil, from, bp, n)
}

// drainWorkers waits until the run queues are empty and every owner turn
// has finished.
func drainWorkers(s *Server) {
	for s.tel.RunQueueDepth.Load() != 0 {
		runtime.Gosched()
	}
}

// scaleBurst is the offered-load granularity of the scale runs: dispatch a
// burst, let the pool drain it, repeat. Latency percentiles then measure
// the dispatch-to-drain path under a bounded backlog — the steady state of
// a provisioned deployment — rather than the unbounded-queue sweep time
// that open-loop flooding would produce.
const scaleBurst = 512

// histP99 returns the upper bound of the bucket holding the 99th
// percentile observation.
func histP99(s telemetry.HistogramSnapshot) int64 {
	if s.Count == 0 {
		return 0
	}
	target := s.Count - s.Count/100 // ceil(0.99 * count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1] // overflow bucket
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// scaleMetrics is one scaleRun's report.
type scaleMetrics struct {
	n              int
	bytesPerAssoc  uint64
	populatePerSec float64
	churnP99NS     int64
	churnPerSec    float64
	swapRotate     time.Duration
	fullScan       time.Duration
	expireAll      time.Duration
	rejectPerSec   float64
	acceptPerSec   float64
}

// scaleRun drives one server through the full scale scenario: populate n
// associations, churn traffic across them, rotate (pure swap), compare
// against a full-table scan, then expire the whole table in one rotation.
func scaleRun(tb testing.TB, n int) scaleMetrics {
	m := scaleMetrics{n: n}
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 16}
	// No sockets: dispatch is driven directly, so no read loops spin and
	// nothing is ever written (the truncated handshakes produce no output).
	// Buffers are sized for residency, the way a million-association
	// deployment would run.
	srv := NewServerWith(cfg, ServerOptions{InboxSize: 4, EventBuffer: 4, IO: IOOptions{Prefilter: true}})
	defer srv.Close()
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 40000}

	// Populate through the real dispatch path.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		dispatchFrame(srv, from, scaleFrame(packet.TypeHS1, uint64(i)+1))
		if (i+1)%scaleBurst == 0 {
			drainWorkers(srv)
		}
	}
	drainWorkers(srv)
	m.populatePerSec = float64(n) / time.Since(start).Seconds()
	runtime.GC() // also empties bufPool, so only session state is counted
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		m.bytesPerAssoc = (after.HeapAlloc - before.HeapAlloc) / uint64(n)
	}
	if got := srv.Sessions(); got != n {
		tb.Fatalf("Sessions = %d after populate, want %d", got, n)
	}

	// Churn: data frames round-robin across the live table, measuring the
	// dispatch-to-drain latency distribution under a saturated run queue.
	churn := n
	if churn > 200_000 {
		churn = 200_000
	}
	frame := scaleFrame(packet.TypeS2, 1)
	pre := srv.tel.DispatchLatency.Snapshot()
	start = time.Now()
	for i := 0; i < churn; i++ {
		binary.BigEndian.PutUint64(frame[6:14], uint64(i%n)+1)
		dispatchFrame(srv, from, frame)
		if (i+1)%scaleBurst == 0 {
			drainWorkers(srv)
		}
	}
	drainWorkers(srv)
	// Let the final owner turns land their latency observations.
	var prev uint64
	for {
		c := srv.tel.DispatchLatency.Snapshot().Count
		if c == prev {
			break
		}
		prev = c
		time.Sleep(5 * time.Millisecond)
	}
	m.churnPerSec = float64(churn) / time.Since(start).Seconds()
	// Subtract the populate-phase observations so the percentile reflects
	// the churn traffic alone.
	post := srv.tel.DispatchLatency.Snapshot()
	for i := range post.Counts {
		post.Counts[i] -= pre.Counts[i]
	}
	post.Count -= pre.Count
	m.churnP99NS = histP99(post)

	// Expiry cost, the tentpole claim: a rotation over an all-live table is
	// a pointer swap per shard (the previous generation is empty), while
	// the pre-rotation design paid a scan over every live session.
	start = time.Now()
	srv.Rotate()
	m.swapRotate = time.Since(start)
	if got := srv.Sessions(); got != n {
		tb.Fatalf("Sessions = %d after swap rotation, want %d", got, n)
	}
	cutoff := time.Now().UnixNano()
	idle := 0
	start = time.Now()
	for i := range srv.shards {
		sh := &srv.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.cur {
			if sess.lastActive.Load() < cutoff {
				idle++
			}
		}
		for _, sess := range sh.old {
			if sess.lastActive.Load() < cutoff {
				idle++
			}
		}
		sh.mu.Unlock()
	}
	m.fullScan = time.Since(start)
	if idle != n {
		tb.Fatalf("scan saw %d sessions, want %d", idle, n)
	}

	// Second rotation: every association has been idle since before the
	// first, so the entire table retires — the worst case, paid once and
	// proportional to the idle count, not to table history.
	start = time.Now()
	srv.Rotate()
	m.expireAll = time.Since(start)
	if got := srv.Sessions(); got != 0 {
		tb.Fatalf("Sessions = %d after expiry rotation, want 0", got)
	}
	tel := srv.Telemetry()
	if got := tel.SessionsExpired.Load(); got != uint64(n) {
		tb.Fatalf("SessionsExpired = %d, want %d", got, n)
	}
	if got := tel.SessionsCreated.Load(); got != tel.SessionsRemoved.Load() {
		tb.Fatalf("SessionsCreated = %d != SessionsRemoved = %d", got, tel.SessionsRemoved.Load())
	}
	if got := tel.ActiveSessions.Load(); got != 0 {
		tb.Fatalf("ActiveSessions = %d, want 0", got)
	}

	// Prefilter throughput, stateless and table-independent.
	const probes = 2_000_000
	junk := make([]byte, 64)
	for i := range junk {
		junk[i] = byte(i * 7) // no magic: rejected by the structural tier
	}
	ip, port := addrIPPort(from)
	start = time.Now()
	for i := 0; i < probes; i++ {
		if packet.Prefilter(junk, ip, port) {
			tb.Fatal("junk passed the prefilter")
		}
	}
	m.rejectPerSec = float64(probes) / time.Since(start).Seconds()
	valid := scaleFrame(packet.TypeS2, 7)
	packet.StampCookie(valid, ip, port)
	start = time.Now()
	for i := 0; i < probes; i++ {
		if !packet.Prefilter(valid, ip, port) {
			tb.Fatal("stamped frame rejected")
		}
	}
	m.acceptPerSec = float64(probes) / time.Since(start).Seconds()
	return m
}

func (m scaleMetrics) log(tb testing.TB) {
	tb.Logf("scale n=%d: %d B/assoc, populate %.0f/s, churn %.0f/s p99<=%s, "+
		"rotate(swap)=%s scan=%s expire-all=%s, prefilter reject %.1fM/s accept %.1fM/s",
		m.n, m.bytesPerAssoc, m.populatePerSec, m.churnPerSec,
		time.Duration(m.churnP99NS), m.swapRotate, m.fullScan, m.expireAll,
		m.rejectPerSec/1e6, m.acceptPerSec/1e6)
}

// TestScaleSmoke is the CI-sized scale gate: 100k associations, loose
// bounds on the properties that must not regress. Enable with
// ALPHA_SCALE_SMOKE=1; it is too heavy for the ordinary test sweep and
// meaningless under -race.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("ALPHA_SCALE_SMOKE") == "" {
		t.Skip("set ALPHA_SCALE_SMOKE=1 to run the 100k-association smoke test")
	}
	m := scaleRun(t, 100_000)
	m.log(t)
	if m.bytesPerAssoc == 0 || m.bytesPerAssoc > 16<<10 {
		t.Errorf("bytes/association = %d, want 1..16384", m.bytesPerAssoc)
	}
	if m.churnP99NS > 100_000_000 {
		t.Errorf("dispatch p99 = %s, want <= 100ms", time.Duration(m.churnP99NS))
	}
	if m.swapRotate > 50*time.Millisecond {
		t.Errorf("swap rotation took %s, want <= 50ms", m.swapRotate)
	}
	if m.rejectPerSec < 1e6 {
		t.Errorf("prefilter rejects %.0f/s, want >= 1M/s", m.rejectPerSec)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		junk := [64]byte{}
		packet.Prefilter(junk[:], nil, 40000)
	}); allocs != 0 {
		t.Errorf("Prefilter allocates %.1f per call, want 0", allocs)
	}
}

// TestScaleMillion is the full-size run behind BENCH_scale.json: one
// million live associations on one server. Enable with ALPHA_SCALE=1.
func TestScaleMillion(t *testing.T) {
	if os.Getenv("ALPHA_SCALE") == "" {
		t.Skip("set ALPHA_SCALE=1 to run the million-association scale test")
	}
	m := scaleRun(t, 1_000_000)
	m.log(t)
	if m.bytesPerAssoc > 16<<10 {
		t.Errorf("bytes/association = %d, want <= 16384", m.bytesPerAssoc)
	}
}

// BenchmarkScale reports the per-operation costs of the session core at a
// small table size, for -bench comparisons.
func BenchmarkScale(b *testing.B) {
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 40000}
	ip, port := addrIPPort(from)

	b.Run("prefilter-accept", func(b *testing.B) {
		frame := scaleFrame(packet.TypeS2, 7)
		packet.StampCookie(frame, ip, port)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !packet.Prefilter(frame, ip, port) {
				b.Fatal("stamped frame rejected")
			}
		}
	})
	b.Run("prefilter-reject", func(b *testing.B) {
		junk := make([]byte, 64)
		for i := range junk {
			junk[i] = byte(i * 7)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if packet.Prefilter(junk, ip, port) {
				b.Fatal("junk passed")
			}
		}
	})

	const table = 8192
	b.Run("dispatch", func(b *testing.B) {
		srv := NewServerWith(core.Config{Mode: packet.ModeBase, ChainLen: 16},
			ServerOptions{InboxSize: 4, EventBuffer: 4, IO: IOOptions{Prefilter: true}})
		defer srv.Close()
		for i := 0; i < table; i++ {
			dispatchFrame(srv, from, scaleFrame(packet.TypeHS1, uint64(i)+1))
		}
		drainWorkers(srv)
		frame := scaleFrame(packet.TypeS2, 1)
		b.ReportAllocs()
		b.ResetTimer()
		// Paced like scaleRun: an open-loop flood would only measure the
		// buffer pool refilling behind a saturated run queue.
		for i := 0; i < b.N; i++ {
			binary.BigEndian.PutUint64(frame[6:14], uint64(i%table)+1)
			dispatchFrame(srv, from, frame)
			if (i+1)%scaleBurst == 0 {
				drainWorkers(srv)
			}
		}
		drainWorkers(srv)
	})
	b.Run("rotate-swap", func(b *testing.B) {
		srv := NewServerWith(core.Config{Mode: packet.ModeBase, ChainLen: 16},
			ServerOptions{InboxSize: 4, EventBuffer: 4})
		defer srv.Close()
		for i := 0; i < table; i++ {
			dispatchFrame(srv, from, scaleFrame(packet.TypeHS1, uint64(i)+1))
		}
		drainWorkers(srv)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Keep the previous generation empty so each measured rotation
			// is the all-live pure-swap case, as under steady traffic.
			b.StopTimer()
			for j := range srv.shards {
				sh := &srv.shards[j]
				sh.mu.Lock()
				for assoc, sess := range sh.old {
					delete(sh.old, assoc)
					sh.cur[assoc] = sess
				}
				sh.mu.Unlock()
			}
			b.StartTimer()
			srv.Rotate()
		}
		b.StopTimer()
		if got := srv.Sessions(); got != table {
			b.Fatalf("Sessions = %d, want %d", got, table)
		}
	})
}
