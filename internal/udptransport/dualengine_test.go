// Multi-engine harness: every data-path test in this package runs once per
// I/O engine tier — the segmentation-offload engine (GSO/GRO, where the
// kernel has it), the batched recvmmsg/sendmmsg engine, and the portable
// fallback — so the implementations cannot drift apart behaviourally.

package udptransport

import (
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/udpio"
)

// engineCases enumerates the I/O engines under test. On platforms without
// an engine, its case silently runs the next tier down (WrapOffload and
// Wrap both fall back), which keeps the suite green everywhere. The
// ALPHA_TEST_IO environment variable ("offload", "no-offload", "portable")
// narrows the matrix to one leg — the switch the CI offload matrix flips.
func engineCases() []struct {
	name string
	opts IOOptions
} {
	all := []struct {
		name string
		opts IOOptions
	}{
		{"offload", IOOptions{GSO: true}},
		{"batched", IOOptions{ForceNoOffload: true}},
		{"portable", IOOptions{ForcePortable: true}},
	}
	switch os.Getenv("ALPHA_TEST_IO") {
	case "offload":
		return all[:1]
	case "no-offload":
		return all[1:2]
	case "portable":
		return all[2:]
	}
	return all
}

func forEachEngine(t *testing.T, fn func(t *testing.T, opts IOOptions)) {
	for _, e := range engineCases() {
		t.Run(e.name, func(t *testing.T) { fn(t, e.opts) })
	}
}

// connectOpts establishes an association over loopback UDP with the given
// I/O engine.
func connectOpts(t *testing.T, cfg core.Config, opts IOOptions) (*Conn, *Conn) {
	t.Helper()
	pa, pb := udpPair(t)
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ListenOpts(pb, cfg, 5*time.Second, opts)
		ch <- res{c, err}
	}()
	dialer, err := DialOpts(pa, pb.LocalAddr(), cfg, 5*time.Second, opts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("Listen: %v", r.err)
	}
	t.Cleanup(func() {
		dialer.Close()
		r.c.Close()
	})
	return dialer, r.c
}

// TestReusePortServerAcceptsDialers exercises the SO_REUSEPORT server: four
// read loops on one port, several dialers whose flows the kernel shards
// across the sockets, traffic in both directions.
func TestReusePortServerAcceptsDialers(t *testing.T) {
	if !udpio.ReusePortSupported() {
		t.Skip("SO_REUSEPORT sharding is Linux-only")
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	srv, err := NewReusePortServer("udp", "127.0.0.1:0", 4, cfg, IOOptions{})
	if err != nil {
		t.Fatalf("NewReusePortServer: %v", err)
	}
	defer srv.Close()

	const dialers = 8
	type result struct {
		idx  int
		conn *Conn
		err  error
	}
	dialed := make(chan result, dialers)
	for i := 0; i < dialers; i++ {
		i := i
		go func() {
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				dialed <- result{i, nil, err}
				return
			}
			c, err := Dial(pc, srv.LocalAddr(), cfg, 10*time.Second)
			dialed <- result{i, c, err}
		}()
	}
	sessions := make([]*Session, 0, dialers)
	for i := 0; i < dialers; i++ {
		sess, err := srv.Accept()
		if err != nil {
			t.Fatalf("Accept %d: %v", i, err)
		}
		sessions = append(sessions, sess)
	}
	conns := make([]*Conn, dialers)
	for i := 0; i < dialers; i++ {
		r := <-dialed
		if r.err != nil {
			t.Fatalf("dialer %d: %v", r.idx, r.err)
		}
		conns[r.idx] = r.conn
		defer r.conn.Close()
	}

	for i, c := range conns {
		if _, err := c.Send([]byte(fmt.Sprintf("shard-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Flush()
	}
	byAssoc := map[uint64]string{}
	for i, c := range conns {
		byAssoc[c.Endpoint().Assoc()] = fmt.Sprintf("shard-%d", i)
	}
	for _, sess := range sessions {
		want := byAssoc[sess.Endpoint().Assoc()]
		deadline := time.After(10 * time.Second)
		for done := false; !done; {
			select {
			case ev := <-sess.Events():
				if ev.Kind != core.EventDelivered {
					continue
				}
				if got := string(ev.Payload); got != want {
					t.Fatalf("session %x got %q, want %q", sess.Endpoint().Assoc(), got, want)
				}
				done = true
			case <-deadline:
				t.Fatalf("session %x: delivery timeout", sess.Endpoint().Assoc())
			}
		}
	}
	// Replies must leave through whichever socket the session adopted.
	for _, sess := range sessions {
		if _, err := sess.Send([]byte("reply")); err != nil {
			t.Fatal(err)
		}
		sess.Flush()
	}
	for i, c := range conns {
		deadline := time.After(10 * time.Second)
		for done := false; !done; {
			select {
			case ev := <-c.Events():
				if ev.Kind == core.EventDelivered && string(ev.Payload) == "reply" {
					done = true
				}
			case <-deadline:
				t.Fatalf("dialer %d never got its reply", i)
			}
		}
	}
}
