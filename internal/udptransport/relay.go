// UDP relay: a verifying forwarder between two fixed peers, the real-socket
// counterpart of netsim.RelayNode.

package udptransport

import (
	"net"
	"sync"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/relay"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
	"alpha/internal/udpio"
)

// Relay forwards datagrams between two peers, applying ALPHA hop-by-hop
// verification to everything it relays. Packets arriving from addresses
// other than the two configured peers are dropped (and counted). The data
// path is batched end to end: one recvmmsg drains a burst into a slab of
// pooled buffers, every verified datagram of the burst is forwarded with
// one sendmmsg, and the slab is reused for the next burst.
type Relay struct {
	pc      net.PacketConn
	io      udpio.Conn
	offload udpio.OffloadStatus
	a, b    *net.UDPAddr
	r       *relay.Relay
	mu      sync.Mutex

	// Stateless prefilter state (IOOptions.Prefilter): inbound datagrams
	// are checked against the sender's address-bound cookie before
	// verification, and forwarded ones are restamped with this relay's
	// own binding — each hop of an ALPHA path owns its own cookie.
	prefilter bool
	stampIP   []byte
	stampPort int

	// OnDecision, if set, observes every verdict.
	OnDecision func(d relay.Decision)

	tel telemetry.RelayTransportMetrics

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewRelay creates a verifying UDP relay between peers a and b.
func NewRelay(pc net.PacketConn, a, b net.Addr, cfg relay.Config) *Relay {
	return NewRelayOpts(pc, a, b, cfg, IOOptions{})
}

// NewRelayOpts is NewRelay with an explicit I/O engine selection.
func NewRelayOpts(pc net.PacketConn, a, b net.Addr, cfg relay.Config, opts IOOptions) *Relay {
	r := &Relay{
		pc:     pc,
		a:      asUDPAddr(a),
		b:      asUDPAddr(b),
		r:      relay.New(cfg),
		closed: make(chan struct{}),
	}
	r.tel.Init()
	r.io, r.offload = opts.wrapStatus(pc, &r.tel.IO)
	r.prefilter = opts.Prefilter
	if opts.Prefilter {
		r.stampIP, r.stampPort = addrIPPort(pc.LocalAddr())
	}
	r.wg.Add(1)
	go r.loop(opts.batch())
	return r
}

// asUDPAddr resolves the configured peer to a comparable form once, so the
// hot loop never calls Addr.String.
func asUDPAddr(a net.Addr) *net.UDPAddr {
	if ua, ok := a.(*net.UDPAddr); ok {
		return ua
	}
	ua, err := net.ResolveUDPAddr("udp", a.String())
	if err != nil {
		return &net.UDPAddr{}
	}
	return ua
}

// sameAddr reports whether from is the configured peer, without
// allocating.
func sameAddr(from net.Addr, peer *net.UDPAddr) bool {
	ua, ok := from.(*net.UDPAddr)
	if !ok {
		return false
	}
	return ua.Port == peer.Port && ua.IP.Equal(peer.IP)
}

// Seed installs a statically provisioned association (§3.4) so the relay
// verifies traffic whose handshake it will never see.
func (r *Relay) Seed(st suite.Suite, anchors core.AnchorSet) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Seed(st, anchors)
}

// Stats returns the underlying relay's counters.
func (r *Relay) Stats() relay.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Stats()
}

// Telemetry returns the underlying relay's live metric set for export. The
// counters are atomic, so no lock is needed to read them.
func (r *Relay) Telemetry() *telemetry.RelayMetrics { return r.r.Telemetry() }

// TransportTelemetry returns the relay's socket-level metric set: datagram
// and byte counts, unknown-peer drops, and the I/O engine's batch
// accounting.
func (r *Relay) TransportTelemetry() *telemetry.RelayTransportMetrics { return &r.tel }

// OffloadStatus reports which requested offload features the kernel
// granted on the relay's socket (zero when none were requested).
func (r *Relay) OffloadStatus() udpio.OffloadStatus { return r.offload }

// Close stops the relay and closes its socket.
func (r *Relay) Close() error {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.pc.Close()
		udpio.CloseEngine(r.io)
	})
	r.wg.Wait()
	return nil
}

// loop is the relay data path. The read slab comes from the shared buffer
// pool and is reused for every burst: WriteBatch returns only after the
// kernel has copied the forwarded datagrams out, and relay.Process copies
// everything it keeps, so no buffer outlives the iteration that read it.
func (r *Relay) loop(batch int) {
	defer r.wg.Done()
	ms := make([]udpio.Message, batch)
	bps := make([]*[]byte, batch)
	for i := range ms {
		bps[i] = bufPool.Get().(*[]byte)
		ms[i].Buf = *bps[i]
	}
	defer func() {
		for _, bp := range bps {
			bufPool.Put(bp)
		}
	}()
	fwd := make([]udpio.Message, 0, batch)
	for {
		n, err := r.io.ReadBatch(ms)
		if err != nil {
			return
		}
		now := time.Now()
		fwd = fwd[:0]
		for i := 0; i < n; i++ {
			r.tel.Datagrams.Inc()
			r.tel.Bytes.Add(uint64(ms[i].N))
			var to net.Addr
			var upstream int
			switch {
			case sameAddr(ms[i].Addr, r.a):
				to = r.b
			case sameAddr(ms[i].Addr, r.b):
				to, upstream = r.a, 1
			default:
				r.tel.UnknownPeerDrops.Inc()
				continue
			}
			data := ms[i].Buf[:ms[i].N]
			if r.prefilter {
				ip, port := addrIPPort(ms[i].Addr)
				if !packet.Prefilter(data, ip, port) {
					r.tel.PrefilterDrops.Inc()
					continue
				}
			}
			r.mu.Lock()
			d := r.r.ProcessFrom(now, upstream, data)
			r.mu.Unlock()
			if r.OnDecision != nil {
				r.OnDecision(d)
			}
			if d.Verdict != relay.Forward {
				continue
			}
			if d.Rewritten != nil {
				data = d.Rewritten
			}
			if r.prefilter {
				// Restamp for the next hop: the cookie binds to this
				// relay's source address now.
				packet.StampCookie(data, r.stampIP, r.stampPort)
			}
			fwd = append(fwd, udpio.Message{Buf: data, N: len(data), Addr: to})
		}
		if len(fwd) == 0 {
			continue
		}
		if _, err := r.io.WriteBatch(fwd); err != nil {
			// A refused batch loses every verified datagram in it —
			// counted, so forwarded-vs-sent discrepancies stay visible.
			r.tel.WriteErrors.Inc()
			return
		}
	}
}
