// UDP relay: a verifying forwarder between two fixed peers, the real-socket
// counterpart of netsim.RelayNode.

package udptransport

import (
	"net"
	"sync"
	"time"

	"alpha/internal/core"
	"alpha/internal/relay"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
)

// Relay forwards datagrams between two peers, applying ALPHA hop-by-hop
// verification to everything it relays. Packets arriving from addresses
// other than the two configured peers are ignored.
type Relay struct {
	pc   net.PacketConn
	a, b net.Addr
	r    *relay.Relay
	mu   sync.Mutex

	// OnDecision, if set, observes every verdict.
	OnDecision func(d relay.Decision)

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewRelay creates a verifying UDP relay between peers a and b.
func NewRelay(pc net.PacketConn, a, b net.Addr, cfg relay.Config) *Relay {
	r := &Relay{pc: pc, a: a, b: b, r: relay.New(cfg), closed: make(chan struct{})}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Seed installs a statically provisioned association (§3.4) so the relay
// verifies traffic whose handshake it will never see.
func (r *Relay) Seed(st suite.Suite, anchors core.AnchorSet) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Seed(st, anchors)
}

// Stats returns the underlying relay's counters.
func (r *Relay) Stats() relay.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Stats()
}

// Telemetry returns the underlying relay's live metric set for export. The
// counters are atomic, so no lock is needed to read them.
func (r *Relay) Telemetry() *telemetry.RelayMetrics { return r.r.Telemetry() }

// Close stops the relay and closes its socket.
func (r *Relay) Close() error {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.pc.Close()
	})
	r.wg.Wait()
	return nil
}

func (r *Relay) loop() {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := r.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		var to net.Addr
		switch from.String() {
		case r.a.String():
			to = r.b
		case r.b.String():
			to = r.a
		default:
			continue
		}
		data := append([]byte(nil), buf[:n]...)
		r.mu.Lock()
		d := r.r.Process(time.Now(), data)
		r.mu.Unlock()
		if r.OnDecision != nil {
			r.OnDecision(d)
		}
		if d.Verdict != relay.Forward {
			continue
		}
		if d.Rewritten != nil {
			data = d.Rewritten
		}
		if _, err := r.pc.WriteTo(data, to); err != nil {
			return
		}
	}
}
