// Package udptransport runs the sans-IO ALPHA engine over real datagram
// sockets. It is the deployment path of the library: the same engine that
// the simulator drives deterministically is driven here by a reader
// goroutine and a retransmission timer. One Conn wraps one association.
//
// The package works with any net.PacketConn, so tests can use in-process
// UDP over the loopback interface and deployments can substitute their own
// datagram transports. All socket I/O goes through internal/udpio: batched
// recvmmsg/sendmmsg on Linux, a portable shim elsewhere, selectable per
// connection with IOOptions.
package udptransport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/udpio"
)

// Conn is a blocking, goroutine-safe wrapper around one ALPHA association
// on a datagram socket.
type Conn struct {
	pc      net.PacketConn
	io      udpio.Conn
	offload udpio.OffloadStatus
	mu      sync.Mutex
	ep      *core.Endpoint
	peer    net.Addr

	wbatch []udpio.Message // coalescing scratch for pumpLocked

	// Outgoing filter-cookie binding (IOOptions.Prefilter): the peer's
	// prefilter recomputes the cookie from our source address.
	prefilter bool
	stampIP   []byte
	stampPort int

	events      chan core.Event
	established chan struct{}
	estOnce     sync.Once
	closed      chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
}

// ErrClosed is returned by operations on a closed Conn.
var ErrClosed = errors.New("udptransport: connection closed")

// Dial starts an association as initiator toward peer and blocks until it
// establishes or the timeout expires.
func Dial(pc net.PacketConn, peer net.Addr, cfg core.Config, timeout time.Duration) (*Conn, error) {
	return DialOpts(pc, peer, cfg, timeout, IOOptions{})
}

// DialOpts is Dial with an explicit I/O engine selection.
func DialOpts(pc net.PacketConn, peer net.Addr, cfg core.Config, timeout time.Duration, opts IOOptions) (*Conn, error) {
	ep, err := core.NewEndpoint(cfg)
	if err != nil {
		return nil, err
	}
	c := newConn(pc, ep, peer, opts)
	hs1, err := ep.StartHandshake(time.Now())
	if err != nil {
		c.Close()
		return nil, err
	}
	c.stamp(hs1)
	if _, err := c.io.WriteBatch([]udpio.Message{{Buf: hs1, N: len(hs1), Addr: peer}}); err != nil {
		c.Close()
		return nil, fmt.Errorf("udptransport: sending HS1: %w", err)
	}
	c.start()
	select {
	case <-c.established:
		return c, nil
	case <-time.After(timeout):
		c.Close()
		return nil, errors.New("udptransport: handshake timeout")
	case <-c.closed:
		return nil, ErrClosed
	}
}

// Listen starts a responder that accepts the first handshake arriving on
// the socket and blocks until the association establishes or the timeout
// expires.
func Listen(pc net.PacketConn, cfg core.Config, timeout time.Duration) (*Conn, error) {
	return ListenOpts(pc, cfg, timeout, IOOptions{})
}

// ListenOpts is Listen with an explicit I/O engine selection.
func ListenOpts(pc net.PacketConn, cfg core.Config, timeout time.Duration, opts IOOptions) (*Conn, error) {
	ep, err := core.NewEndpoint(cfg)
	if err != nil {
		return nil, err
	}
	c := newConn(pc, ep, nil, opts)
	c.start()
	select {
	case <-c.established:
		return c, nil
	case <-time.After(timeout):
		c.Close()
		return nil, errors.New("udptransport: no handshake received")
	case <-c.closed:
		return nil, ErrClosed
	}
}

// Wrap runs a caller-constructed endpoint over the socket — the entry point
// for statically bootstrapped (preconfigured) associations, which have no
// handshake. peer may be nil; a responder then adopts the first sender.
// The connection is returned immediately; if the endpoint is already
// established (preconfigured), it is usable at once.
func Wrap(pc net.PacketConn, ep *core.Endpoint, peer net.Addr) *Conn {
	return WrapOpts(pc, ep, peer, IOOptions{})
}

// WrapOpts is Wrap with an explicit I/O engine selection.
func WrapOpts(pc net.PacketConn, ep *core.Endpoint, peer net.Addr, opts IOOptions) *Conn {
	c := newConn(pc, ep, peer, opts)
	if ep.Established() {
		c.estOnce.Do(func() { close(c.established) })
	}
	c.start()
	return c
}

func newConn(pc net.PacketConn, ep *core.Endpoint, peer net.Addr, opts IOOptions) *Conn {
	if opts.Batch <= 0 || opts.Batch > connBatch {
		opts.Batch = connBatch // one association never needs the server's burst depth
	}
	io, st := opts.wrapStatus(pc, nil)
	c := &Conn{
		pc:          pc,
		io:          io,
		offload:     st,
		ep:          ep,
		peer:        peer,
		prefilter:   opts.Prefilter,
		events:      make(chan core.Event, 256),
		established: make(chan struct{}),
		closed:      make(chan struct{}),
	}
	if opts.Prefilter {
		c.stampIP, c.stampPort = addrIPPort(pc.LocalAddr())
	}
	return c
}

// stamp writes the outgoing filter cookie when prefiltering is enabled.
func (c *Conn) stamp(raw []byte) {
	if c.prefilter {
		packet.StampCookie(raw, c.stampIP, c.stampPort)
	}
}

func (c *Conn) start() {
	c.wg.Add(2)
	go c.readLoop()
	go c.timerLoop()
}

// Events returns the channel of engine events (deliveries, acks, drops).
// The channel is buffered; if the application stops draining it, further
// events are discarded rather than blocking the protocol.
func (c *Conn) Events() <-chan core.Event { return c.events }

// Endpoint exposes the underlying engine for stats inspection. Callers
// must not invoke engine methods directly.
func (c *Conn) Endpoint() *core.Endpoint { return c.ep }

// OffloadStatus reports which requested offload features the kernel
// granted on this connection's socket (zero when none were requested).
func (c *Conn) OffloadStatus() udpio.OffloadStatus { return c.offload }

// Peer returns the remote address (nil until a responder learns it).
func (c *Conn) Peer() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peer
}

// Send queues payload for protected transmission and returns its message ID.
func (c *Conn) Send(payload []byte) (uint64, error) {
	select {
	case <-c.closed:
		return 0, ErrClosed
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id, err := c.ep.Send(time.Now(), payload)
	if err != nil {
		return 0, err
	}
	c.pumpLocked(time.Now())
	return id, nil
}

// Flush forces partial batches out immediately.
func (c *Conn) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ep.Flush(time.Now())
	c.pumpLocked(time.Now())
}

// Close shuts the connection down. The underlying socket is closed too.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.pc.Close()
		udpio.CloseEngine(c.io)
	})
	c.wg.Wait()
	return nil
}

// readLoop feeds received datagrams into the engine, a burst at a time.
// The slab buffers are reused across iterations: the engine copies every
// field it keeps, so nothing retains them once Handle returns.
func (c *Conn) readLoop() {
	defer c.wg.Done()
	ms := make([]udpio.Message, connBatch)
	for i := range ms {
		ms[i].Buf = make([]byte, packet.MaxPacketSize)
	}
	for {
		n, err := c.io.ReadBatch(ms)
		if err != nil {
			select {
			case <-c.closed:
			default:
				c.closeOnce.Do(func() {
					close(c.closed)
					c.pc.Close()
					udpio.CloseEngine(c.io)
				})
			}
			return
		}
		now := time.Now()
		c.mu.Lock()
		for i := 0; i < n; i++ {
			if c.peer == nil {
				// Responder: adopt the first sender as our peer.
				c.peer = ms[i].Addr
			}
			evs, _ := c.ep.Handle(now, ms[i].Buf[:ms[i].N])
			c.dispatch(evs)
		}
		c.pumpLocked(now)
		c.mu.Unlock()
	}
}

// timerLoop drives the engine's retransmission and flush timers.
func (c *Conn) timerLoop() {
	defer c.wg.Done()
	timer := time.NewTimer(10 * time.Millisecond)
	defer timer.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-timer.C:
		}
		now := time.Now()
		c.mu.Lock()
		c.pumpLocked(now)
		next, ok := c.ep.NextTimeout()
		c.mu.Unlock()
		d := 50 * time.Millisecond
		if ok {
			if until := time.Until(next); until < d {
				d = until
			}
			if d < time.Millisecond {
				d = time.Millisecond
			}
		}
		timer.Reset(d)
	}
}

// pumpLocked drains the engine outbox onto the socket through the
// coalescing writer: one Poll harvest, one WriteBatch, one sendmmsg.
// Callers hold c.mu.
func (c *Conn) pumpLocked(now time.Time) {
	out, evs := c.ep.Poll(now)
	c.dispatch(evs)
	if c.peer == nil || len(out) == 0 {
		return
	}
	ms := c.wbatch[:0]
	for _, raw := range out {
		c.stamp(raw)
		ms = append(ms, udpio.Message{Buf: raw, N: len(raw), Addr: c.peer})
	}
	c.wbatch = ms
	c.io.WriteBatch(ms)
}

// dispatch forwards events to the application channel without blocking.
func (c *Conn) dispatch(evs []core.Event) {
	for _, ev := range evs {
		if ev.Kind == core.EventEstablished {
			c.estOnce.Do(func() { close(c.established) })
		}
		select {
		case c.events <- ev:
		default: // application not draining; drop rather than stall
		}
	}
}
