// BenchmarkUDPBurst measures the I/O engine ladder: how many syscalls, how
// many kernel UDP-stack traversals, and how much wall time it takes to push
// a real ALPHA-C/M burst (the S1 plus its S2 packets) through a UDP socket
// pair — portable one-datagram-at-a-time, batched recvmmsg/sendmmsg, and
// the GSO/GRO segmentation-offload engine.

package udptransport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
	"alpha/internal/udpio"
)

// captureBurst produces the sender-side datagrams of one n-message burst:
// the S1 announcing it plus, once the A1 comes back, the n S2s — the exact
// packet train the coalescing writer pushes out in one sendmmsg.
func captureBurst(b *testing.B, mode packet.Mode, n int) [][]byte {
	b.Helper()
	cfg := core.Config{
		Suite:     suite.SHA1(),
		Mode:      mode,
		Reliable:  false,
		ChainLen:  4096,
		BatchSize: n,
	}
	pi, pr, _, err := core.Provision(cfg)
	if err != nil {
		b.Fatal(err)
	}
	snd, err := core.NewPreconfiguredEndpoint(pi)
	if err != nil {
		b.Fatal(err)
	}
	rcv, err := core.NewPreconfiguredEndpoint(pr)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(1700000000, 0)
	payload := make([]byte, 512)
	for i := 0; i < n; i++ {
		if _, err := snd.Send(now, payload); err != nil {
			b.Fatal(err)
		}
	}
	snd.Flush(now)
	var burst [][]byte
	// Ping-pong until the exchange settles, collecting every sender-side
	// datagram (S1, then the S2 burst released by the A1).
	for round := 0; round < 8; round++ {
		out, _ := snd.Poll(now)
		burst = append(burst, out...)
		for _, raw := range out {
			if _, err := rcv.Handle(now, raw); err != nil {
				b.Fatal(err)
			}
		}
		back, _ := rcv.Poll(now)
		for _, raw := range back {
			if _, err := snd.Handle(now, raw); err != nil {
				b.Fatal(err)
			}
		}
	}
	if len(burst) < n {
		b.Fatalf("burst capture: got %d datagrams, want >= %d", len(burst), n)
	}
	return burst
}

func BenchmarkUDPBurst(b *testing.B) {
	for _, mode := range []packet.Mode{packet.ModeC, packet.ModeM} {
		burst := captureBurst(b, mode, 16)
		for _, eng := range []string{"gso", "batched", "portable"} {
			b.Run(fmt.Sprintf("%s/n=16/%s", mode, eng), func(b *testing.B) {
				benchBurst(b, burst, eng)
			})
		}
	}
}

// benchBurst replays one captured burst per iteration through a loopback
// socket pair and reads every datagram back, reporting syscalls, kernel
// UDP traversals, and datagram throughput from the engines' own accounting.
func benchBurst(b *testing.B, burst [][]byte, engine string) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer spc.Close()
	rpc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer rpc.Close()

	var wm, rm telemetry.IOMetrics
	var w, r udpio.Conn
	switch engine {
	case "portable":
		w, r = udpio.Portable(spc, &wm), udpio.Portable(rpc, &rm)
	case "batched":
		w, r = udpio.Wrap(spc, udpio.DefaultBatch, &wm), udpio.Wrap(rpc, udpio.DefaultBatch, &rm)
		if !w.Batched() || !r.Batched() {
			b.Skip("batched engine unavailable on this platform")
		}
	case "gso":
		var wst, rst udpio.OffloadStatus
		w, wst = udpio.WrapOffload(spc, udpio.DefaultBatch, udpio.OffloadOptions{GSO: true}, &wm)
		r, rst = udpio.WrapOffload(rpc, udpio.DefaultBatch, udpio.OffloadOptions{GRO: true}, &rm)
		defer udpio.CloseEngine(w)
		defer udpio.CloseEngine(r)
		if !wst.GSO || !rst.GRO {
			b.Skip("kernel lacks UDP_SEGMENT/UDP_GRO")
		}
	default:
		b.Fatalf("unknown engine %q", engine)
	}

	out := make([]udpio.Message, len(burst))
	for i, raw := range burst {
		out[i] = udpio.Message{Buf: raw, N: len(raw), Addr: rpc.LocalAddr()}
	}
	in := make([]udpio.Message, len(burst))
	for i := range in {
		in[i].Buf = make([]byte, packet.MaxPacketSize)
	}
	rpc.SetReadDeadline(time.Now().Add(time.Minute))

	bytesPerBurst := 0
	for _, raw := range burst {
		bytesPerBurst += len(raw)
	}
	b.SetBytes(int64(bytesPerBurst))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.WriteBatch(out); err != nil {
			b.Fatal(err)
		}
		for got := 0; got < len(burst); {
			n, err := r.ReadBatch(in)
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
	b.StopTimer()
	// Syscalls straight from the engines' accounting; kernel UDP-stack
	// traversals from the offload counters — a GSO send of k segments is
	// one traversal (saving k-1), a GRO datagram split into k segments
	// likewise on receive. Without offload both equal the datagram count.
	syscalls := wm.WriteBatches.Load() + rm.ReadBatches.Load()
	sendTrav := wm.DatagramsWritten.Load() - wm.GSOSegments.Load() + wm.GSOSends.Load()
	recvTrav := rm.DatagramsRead.Load() - rm.GROSegments.Load() + rm.GROSplits.Load()
	b.ReportMetric(float64(syscalls)/float64(b.N), "syscalls/op")
	b.ReportMetric(float64(wm.WriteBatches.Load())/float64(b.N), "sendsyscalls/op")
	b.ReportMetric(float64(sendTrav)/float64(b.N), "sendtraversals/op")
	b.ReportMetric(float64(recvTrav)/float64(b.N), "recvtraversals/op")
	b.ReportMetric(float64(len(burst)), "datagrams/op")
}
