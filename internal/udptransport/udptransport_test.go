package udptransport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/relay"
)

// udpPair opens two loopback sockets.
func udpPair(t *testing.T) (net.PacketConn, net.PacketConn) {
	t.Helper()
	a, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	return a, b
}

// connect establishes an association over loopback UDP with the default
// I/O engine.
func connect(t *testing.T, cfg core.Config) (*Conn, *Conn) {
	t.Helper()
	return connectOpts(t, cfg, IOOptions{})
}

// collect drains events until predicate or timeout.
func collect(t *testing.T, c *Conn, want core.EventKind, n int, timeout time.Duration) []core.Event {
	t.Helper()
	var got []core.Event
	deadline := time.After(timeout)
	for count := 0; count < n; {
		select {
		case ev := <-c.Events():
			got = append(got, ev)
			if ev.Kind == want {
				count++
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %d %v events (got %v)", n, want, got)
		}
	}
	return got
}

func TestUDPHandshakeAndMessage(t *testing.T) {
	forEachEngine(t, testUDPHandshakeAndMessage)
}

func testUDPHandshakeAndMessage(t *testing.T, opts IOOptions) {
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	dialer, listener := connectOpts(t, cfg, opts)
	if dialer.Peer() == nil || listener.Peer() == nil {
		t.Fatalf("peers not learned")
	}
	id, err := dialer.Send([]byte("over real sockets"))
	if err != nil {
		t.Fatal(err)
	}
	dialer.Flush()
	evs := collect(t, listener, core.EventDelivered, 1, 5*time.Second)
	found := false
	for _, ev := range evs {
		if ev.Kind == core.EventDelivered && string(ev.Payload) == "over real sockets" {
			found = true
		}
	}
	if !found {
		t.Fatalf("payload not delivered: %v", evs)
	}
	acks := collect(t, dialer, core.EventAcked, 1, 5*time.Second)
	if acks[len(acks)-1].MsgID != id {
		t.Fatalf("acked wrong message: %v", acks)
	}
}

func TestUDPBulkAllModes(t *testing.T) {
	forEachEngine(t, testUDPBulkAllModes)
}

func testUDPBulkAllModes(t *testing.T, opts IOOptions) {
	for _, mode := range []packet.Mode{packet.ModeBase, packet.ModeC, packet.ModeM, packet.ModeCM} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := core.Config{Mode: mode, Reliable: true, ChainLen: 256, BatchSize: 4}
			dialer, listener := connectOpts(t, cfg, opts)
			const total = 12
			for i := 0; i < total; i++ {
				if _, err := dialer.Send([]byte(fmt.Sprintf("bulk-%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			dialer.Flush()
			collect(t, listener, core.EventDelivered, total, 10*time.Second)
			collect(t, dialer, core.EventAcked, total, 10*time.Second)
		})
	}
}

func TestUDPThroughVerifyingRelay(t *testing.T) {
	forEachEngine(t, testUDPThroughVerifyingRelay)
}

func testUDPThroughVerifyingRelay(t *testing.T, opts IOOptions) {
	// dialer <-> relay <-> listener over three loopback sockets.
	pa, pb := udpPair(t)
	pr, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelayOpts(pr, pa.LocalAddr(), pb.LocalAddr(), relay.Config{}, opts)
	defer r.Close()

	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ListenOpts(pb, cfg, 5*time.Second, opts)
		ch <- res{c, err}
	}()
	dialer, err := DialOpts(pa, pr.LocalAddr(), cfg, 5*time.Second, opts)
	if err != nil {
		t.Fatalf("Dial through relay: %v", err)
	}
	defer dialer.Close()
	rr := <-ch
	if rr.err != nil {
		t.Fatalf("Listen: %v", rr.err)
	}
	defer rr.c.Close()

	if _, err := dialer.Send([]byte("via relay")); err != nil {
		t.Fatal(err)
	}
	dialer.Flush()
	collect(t, rr.c, core.EventDelivered, 1, 5*time.Second)
	collect(t, dialer, core.EventAcked, 1, 5*time.Second)
	st := r.Stats()
	if st.Forwarded == 0 {
		t.Fatalf("relay forwarded nothing: %+v", st)
	}
	if st.ExtractedBytes == 0 {
		t.Fatalf("relay never verified a payload: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("relay dropped honest traffic: %+v", st)
	}
}

func TestUDPListenTimeout(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen(pc, core.Config{ChainLen: 8}, 200*time.Millisecond); err == nil {
		t.Fatalf("Listen with no peer should time out")
	}
}

func TestUDPSendAfterClose(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 16}
	dialer, _ := connect(t, cfg)
	dialer.Close()
	if _, err := dialer.Send([]byte("late")); err != ErrClosed {
		t.Fatalf("Send after close: %v", err)
	}
}

func TestUDPPreconfiguredWrap(t *testing.T) {
	forEachEngine(t, testUDPPreconfiguredWrap)
}

func testUDPPreconfiguredWrap(t *testing.T, opts IOOptions) {
	// §3.4 static bootstrapping over real sockets: no handshake packets,
	// traffic verified from the first datagram.
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	pi, pr, _, err := core.Provision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epA, err := core.NewPreconfiguredEndpoint(pi)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := core.NewPreconfiguredEndpoint(pr)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := udpPair(t)
	dialer := WrapOpts(pa, epA, pb.LocalAddr(), opts)
	listener := WrapOpts(pb, epB, nil, opts)
	t.Cleanup(func() { dialer.Close(); listener.Close() })
	if _, err := dialer.Send([]byte("no handshake on the wire")); err != nil {
		t.Fatal(err)
	}
	dialer.Flush()
	collect(t, listener, core.EventDelivered, 1, 5*time.Second)
	collect(t, dialer, core.EventAcked, 1, 5*time.Second)
	if epA.Stats().RecvS1 != 0 && epB.Stats().RecvS1 != 1 {
		t.Fatalf("unexpected traffic pattern")
	}
}
