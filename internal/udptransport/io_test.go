package udptransport

import (
	"net"
	"strings"
	"testing"

	"alpha/internal/udpio"
)

// TestOffloadDowngradeWarning covers the fail-fast probing contract: a node
// started with -gso/-zerocopy on a kernel that grants neither gets exactly
// one human-readable warning and keeps running on the batched engine, while
// explicitly requested downgrades (ForcePortable/ForceNoOffload) stay silent.
func TestOffloadDowngradeWarning(t *testing.T) {
	cases := []struct {
		name    string
		opts    IOOptions
		granted udpio.OffloadStatus
		want    []string // substrings of the warning; empty means no warning
	}{
		{"nothing requested", IOOptions{}, udpio.OffloadStatus{}, nil},
		{"all granted", IOOptions{GSO: true, ZeroCopy: true},
			udpio.OffloadStatus{GSO: true, GRO: true, ZeroCopy: true}, nil},
		{"all denied", IOOptions{GSO: true, ZeroCopy: true},
			udpio.OffloadStatus{}, []string{"gso", "gro", "zerocopy", "batched engine"}},
		{"gso denied only", IOOptions{GSO: true, ZeroCopy: true},
			udpio.OffloadStatus{ZeroCopy: true}, []string{"gso", "gro", "partial offload"}},
		{"force-no-offload is silent", IOOptions{GSO: true, ZeroCopy: true, ForceNoOffload: true},
			udpio.OffloadStatus{}, nil},
		{"force-portable is silent", IOOptions{GSO: true, ForcePortable: true},
			udpio.OffloadStatus{}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.opts.DowngradeWarning(tc.granted)
			if len(tc.want) == 0 {
				if w != "" {
					t.Fatalf("unexpected warning %q", w)
				}
				return
			}
			if w == "" {
				t.Fatal("expected a downgrade warning, got none")
			}
			for _, sub := range tc.want {
				if !strings.Contains(w, sub) {
					t.Errorf("warning %q missing %q", w, sub)
				}
			}
		})
	}
}

// TestForceNoOffloadPinsBatched: the test hook must bypass the offload
// probe entirely — the engine comes back batched with a zero status even
// when the flags ask for everything, mirroring ForcePortable's pin.
func TestForceNoOffloadPinsBatched(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	opts := IOOptions{GSO: true, ZeroCopy: true, ForceNoOffload: true}
	if off := opts.offload(); off.GSO || off.GRO || off.ZeroCopy {
		t.Fatalf("ForceNoOffload leaked an offload request: %+v", off)
	}
	c, st := opts.wrapStatus(pc, nil)
	defer udpio.CloseEngine(c)
	if st.Any() {
		t.Fatalf("ForceNoOffload returned offload status %+v", st)
	}
	if w := opts.DowngradeWarning(st); w != "" {
		t.Fatalf("explicit downgrade must be silent, got %q", w)
	}

	popts := IOOptions{GSO: true, ForcePortable: true}
	p, pst := popts.wrapStatus(pc, nil)
	defer udpio.CloseEngine(p)
	if pst.Any() || p.Batched() {
		t.Fatalf("ForcePortable must pin the portable engine (status %+v, batched %v)", pst, p.Batched())
	}
}
