// Tests for the transport drop counters: every datagram the server used to
// discard silently must now show up in TransportMetrics (and the tracer).

package udptransport

import (
	"net"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// dispatchRaw feeds one crafted datagram through Server.dispatch the way the
// read loop would, using a pooled buffer.
func dispatchRaw(s *Server, raw []byte) {
	bp := bufPool.Get().(*[]byte)
	n := copy(*bp, raw)
	s.dispatch(time.Now(), s.ios[0], &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9999}, bp, n)
}

func newTelemetryServer(t *testing.T, tracer *telemetry.Tracer) *Server {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(pc, core.Config{ChainLen: 16, Tracer: tracer})
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerCountsUnknownAssocDrops(t *testing.T) {
	tracer := telemetry.NewTracer(64)
	srv := newTelemetryServer(t, tracer)

	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeS2, Suite: 1, Flags: core.FlagInitiator, Assoc: 777, Seq: 1,
	}, &packet.S2{Mode: packet.ModeBase, KeyIdx: 2, Key: make([]byte, 20), Payload: []byte("stray")})
	if err != nil {
		t.Fatal(err)
	}
	dispatchRaw(srv, raw)

	m := srv.Telemetry()
	if got := m.UnknownAssocDrops.Load(); got != 1 {
		t.Fatalf("UnknownAssocDrops = %d, want 1", got)
	}
	if got := m.Datagrams.Load(); got != 1 {
		t.Fatalf("Datagrams = %d, want 1", got)
	}
	if got := m.Bytes.Load(); got != uint64(len(raw)) {
		t.Fatalf("Bytes = %d, want %d", got, len(raw))
	}
	if srv.Sessions() != 0 {
		t.Fatal("stray data packet created a session")
	}
	// The drop also left a trace with the matching reason code.
	found := false
	for _, ev := range tracer.Snapshot() {
		if ev.Kind == telemetry.TraceDrop && ev.Assoc == 777 && ev.Detail == telemetry.ReasonUnknownAssoc {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown-assoc drop left no trace event")
	}
}

func TestServerCountsShortDatagrams(t *testing.T) {
	srv := newTelemetryServer(t, nil)
	dispatchRaw(srv, []byte{1, 2, 3}) // below packet.HeaderSize
	m := srv.Telemetry()
	if got := m.ShortDatagrams.Load(); got != 1 {
		t.Fatalf("ShortDatagrams = %d, want 1", got)
	}
	if got := m.Datagrams.Load(); got != 1 {
		t.Fatalf("Datagrams = %d, want 1", got)
	}
}

func TestServerCountsInboxDrops(t *testing.T) {
	tracer := telemetry.NewTracer(256)
	srv := newTelemetryServer(t, tracer)

	// A syntactically plausible handshake datagram: dispatch only inspects
	// the type and association bytes, so a header-shaped buffer creates the
	// session (the engine itself would reject it later).
	const assoc = uint64(0x1122334455667788)
	hs := make([]byte, packet.HeaderSize)
	hs[3] = byte(packet.TypeHS1)
	for i := 0; i < 8; i++ {
		hs[6+i] = byte(assoc >> (56 - 8*i))
	}
	dispatchRaw(srv, hs)
	if got := srv.Telemetry().SessionsCreated.Load(); got != 1 {
		t.Fatalf("SessionsCreated = %d, want 1", got)
	}
	if got := srv.Telemetry().ActiveSessions.Load(); got != 1 {
		t.Fatalf("ActiveSessions = %d, want 1", got)
	}

	// Stop the session's worker so nothing drains the inbox, then overrun
	// it: the bounded hand-off must drop the excess, counted.
	sh := srv.shard(assoc)
	sh.mu.Lock()
	sess := sh.cur[assoc]
	sh.mu.Unlock()
	sess.stop()
	time.Sleep(50 * time.Millisecond) // let any in-flight owner turn finish

	const extra = 10
	for i := 0; i < inboxSize+extra; i++ {
		dispatchRaw(srv, hs)
	}
	m := srv.Telemetry()
	// Exact drop counts depend on how many datagrams the worker consumed
	// before exiting (zero, one, or the initial handshake), so allow slack
	// around the overflow count — but drops must register.
	if got := m.InboxDrops.Load(); got == 0 || got > extra+1 {
		t.Fatalf("InboxDrops = %d, want 1..%d", got, extra+1)
	}
	found := false
	for _, ev := range tracer.Snapshot() {
		if ev.Kind == telemetry.TraceInboxDrop && ev.Assoc == assoc && ev.Detail == telemetry.ReasonInboxFull {
			found = true
		}
	}
	if !found {
		t.Fatal("inbox drop left no trace event")
	}
}

func TestServerRemoveFoldsRetiredSessions(t *testing.T) {
	srv := newTelemetryServer(t, nil)
	const assoc = 42
	hs := make([]byte, packet.HeaderSize)
	hs[3] = byte(packet.TypeHS1)
	hs[13] = assoc // low byte of the big-endian association ID
	dispatchRaw(srv, hs)
	if srv.Sessions() != 1 {
		t.Fatalf("Sessions = %d, want 1", srv.Sessions())
	}

	// Removal folds the endpoint's counters into the server aggregate and
	// updates the lifecycle metrics; a second removal is a no-op.
	srv.remove(assoc)
	srv.remove(assoc)
	m := srv.Telemetry()
	if got := m.SessionsRemoved.Load(); got != 1 {
		t.Fatalf("SessionsRemoved = %d, want 1 (double remove must not double count)", got)
	}
	if got := m.ActiveSessions.Load(); got != 0 {
		t.Fatalf("ActiveSessions = %d, want 0", got)
	}
	// The aggregate view still answers after the session is gone.
	agg := srv.EndpointTelemetry()
	if agg == nil {
		t.Fatal("EndpointTelemetry returned nil")
	}
}
