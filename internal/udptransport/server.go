// Multi-association server: one socket, many peers.
//
// A Conn serves exactly one association. Real responders — sinks, home
// agents, middleback-ends — accept many initiators on one port. Server owns
// the socket's read loop and demultiplexes by the association ID every
// ALPHA packet carries, spawning a Session per handshake and routing
// subsequent traffic to it.

package udptransport

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
)

// Server accepts ALPHA associations on a shared datagram socket.
type Server struct {
	pc  net.PacketConn
	cfg core.Config

	mu       sync.Mutex
	sessions map[uint64]*Session

	accept    chan *Session
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewServer starts serving. Each arriving handshake creates a responder
// endpoint with the given config; established sessions surface via Accept.
func NewServer(pc net.PacketConn, cfg core.Config) *Server {
	s := &Server{
		pc:       pc,
		cfg:      cfg,
		sessions: make(map[uint64]*Session),
		accept:   make(chan *Session, 16),
		closed:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.readLoop()
	return s
}

// Accept blocks until the next association establishes (or the server
// closes).
func (s *Server) Accept() (*Session, error) {
	select {
	case sess := <-s.accept:
		return sess, nil
	case <-s.closed:
		return nil, ErrServerClosed
	}
}

// Sessions returns the current session count.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close stops the server, its socket, and every session.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.pc.Close()
	})
	s.wg.Wait()
	return nil
}

func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := s.pc.ReadFrom(buf)
		if err != nil {
			s.closeOnce.Do(func() { close(s.closed); s.pc.Close() })
			// Stop all session timers.
			s.mu.Lock()
			for _, sess := range s.sessions {
				sess.stop()
			}
			s.mu.Unlock()
			return
		}
		if n < packet.HeaderSize {
			continue
		}
		data := append([]byte(nil), buf[:n]...)
		assoc := binary.BigEndian.Uint64(data[6:14])
		typ := packet.Type(data[3])
		now := time.Now()

		s.mu.Lock()
		sess, known := s.sessions[assoc]
		if !known {
			if typ != packet.TypeHS1 {
				s.mu.Unlock()
				continue // data for an association we do not hold
			}
			ep, err := core.NewEndpoint(s.cfg)
			if err != nil {
				s.mu.Unlock()
				continue
			}
			sess = newSession(s, ep, from)
			s.sessions[assoc] = sess
		}
		s.mu.Unlock()

		sess.handle(now, from, data, s)
	}
}

// remove drops a session from the routing table.
func (s *Server) remove(assoc uint64) {
	s.mu.Lock()
	delete(s.sessions, assoc)
	s.mu.Unlock()
}

// Session is one association served by a Server. Its API mirrors Conn.
type Session struct {
	server *Server
	mu     sync.Mutex
	ep     *core.Endpoint
	peer   net.Addr

	events      chan core.Event
	established bool
	timerStop   chan struct{}
	stopOnce    sync.Once
}

func newSession(srv *Server, ep *core.Endpoint, peer net.Addr) *Session {
	sess := &Session{
		server:    srv,
		ep:        ep,
		peer:      peer,
		events:    make(chan core.Event, 256),
		timerStop: make(chan struct{}),
	}
	srv.wg.Add(1)
	go sess.timerLoop()
	return sess
}

// Peer returns the remote address.
func (s *Session) Peer() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer
}

// Events returns the engine event stream.
func (s *Session) Events() <-chan core.Event { return s.events }

// Endpoint exposes the engine for stats; do not call engine methods.
func (s *Session) Endpoint() *core.Endpoint { return s.ep }

// Send queues a protected message to this session's peer.
func (s *Session) Send(payload []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ep == nil {
		return 0, ErrClosed
	}
	id, err := s.ep.Send(time.Now(), payload)
	if err != nil {
		return 0, err
	}
	s.pumpLocked(time.Now())
	return id, nil
}

// Flush forces partial batches out.
func (s *Session) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ep.Flush(time.Now())
	s.pumpLocked(time.Now())
}

// Close detaches the session from the server.
func (s *Session) Close() error {
	s.stop()
	s.mu.Lock()
	assoc := uint64(0)
	if s.ep != nil {
		assoc = s.ep.Assoc()
	}
	s.mu.Unlock()
	if assoc != 0 {
		s.server.remove(assoc)
	}
	return nil
}

func (s *Session) stop() {
	s.stopOnce.Do(func() { close(s.timerStop) })
}

// handle feeds one datagram into the session's engine.
func (s *Session) handle(now time.Time, from net.Addr, data []byte, srv *Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from != nil {
		s.peer = from // track peer mobility (ALPHA identity is the chain, not the address)
	}
	evs, _ := s.ep.Handle(now, data)
	for _, ev := range evs {
		if ev.Kind == core.EventEstablished && !s.established {
			s.established = true
			select {
			case srv.accept <- s:
			default: // accept queue full: session still works, just unannounced
			}
		}
		select {
		case s.events <- ev:
		default:
		}
	}
	s.pumpLocked(now)
}

func (s *Session) pumpLocked(now time.Time) {
	out, evs := s.ep.Poll(now)
	for _, ev := range evs {
		select {
		case s.events <- ev:
		default:
		}
	}
	if s.peer == nil {
		return
	}
	for _, raw := range out {
		if _, err := s.server.pc.WriteTo(raw, s.peer); err != nil {
			return
		}
	}
}

func (s *Session) timerLoop() {
	defer s.server.wg.Done()
	timer := time.NewTimer(10 * time.Millisecond)
	defer timer.Stop()
	for {
		select {
		case <-s.timerStop:
			return
		case <-s.server.closed:
			return
		case <-timer.C:
		}
		now := time.Now()
		s.mu.Lock()
		s.pumpLocked(now)
		next, ok := s.ep.NextTimeout()
		s.mu.Unlock()
		d := 50 * time.Millisecond
		if ok {
			if until := time.Until(next); until < d {
				d = until
			}
			if d < time.Millisecond {
				d = time.Millisecond
			}
		}
		timer.Reset(d)
	}
}

// ErrServerClosed reports operations on a closed server.
var ErrServerClosed = errors.New("udptransport: server closed")
