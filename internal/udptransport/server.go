// Multi-association server: one socket (or a SO_REUSEPORT group), many
// peers.
//
// A Conn serves exactly one association. Real responders — sinks, home
// agents, middleback-ends — accept many initiators on one port. Server owns
// the socket read loops and demultiplexes by the association ID every
// ALPHA packet carries, spawning a Session per handshake and routing
// subsequent traffic to it.
//
// The read loops are batched: each drains up to a full burst of datagrams
// from its socket in one recvmmsg into a slab of pooled buffers before
// demuxing, so an ALPHA-C/M burst costs one syscall instead of one per S2.
// Dispatch stays parallel: the loops only classify datagrams and hand them
// to per-session worker goroutines over bounded channels, so one slow
// association (an expensive Merkle verification, say) cannot stall traffic
// for its neighbours. Buffers are recycled once the engine has consumed
// them — packet.Decode copies every field it returns, so a buffer is dead
// the moment Handle returns. Session replies leave through a coalescing
// writer: everything a Poll produces (the S2s of a burst plus its S1) goes
// out in one sendmmsg.

package udptransport

import (
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"sync"
	"time"

	"alpha/internal/core"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/telemetry"
	"alpha/internal/udpio"
)

// sessionShards splits the association routing table so lookups from the
// read loops do not contend with session creation and removal on one lock.
// Power of two; association IDs are random, so low bits spread evenly.
const sessionShards = 16

// inboxSize bounds each session's pending-datagram queue. When a worker
// falls behind, the read loop drops for that session only — the same
// semantics the network already imposes on UDP.
const inboxSize = 64

// bufPool recycles datagram read buffers across the read loops and session
// workers.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, packet.MaxPacketSize)
		return &b
	},
}

// datagram is one received packet en route to a session worker. buf is the
// pooled backing array; n is the valid prefix; via is the socket engine it
// arrived on, which the session adopts for replies.
type datagram struct {
	now  time.Time
	from net.Addr
	via  udpio.Conn
	buf  *[]byte
	n    int
}

type sessionShard struct {
	mu       sync.Mutex
	sessions map[uint64]*Session
}

// Server accepts ALPHA associations on a shared datagram socket, or on a
// group of SO_REUSEPORT sockets each with its own read loop.
type Server struct {
	pcs     []net.PacketConn
	ios     []udpio.Conn
	cfg     core.Config
	io      IOOptions
	offload udpio.OffloadStatus // granted on the first socket; sockets are siblings

	shards [sessionShards]sessionShard

	// Established-but-unaccepted sessions. A list rather than a bounded
	// channel: an announcement must never be dropped, or Accept would
	// wait forever for a session that already established.
	acceptMu sync.Mutex
	pending  []*Session
	acceptCh chan struct{} // signals a new pending entry; cap 1

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// tel counts transport activity (including the I/O engine's batch
	// accounting); tracer (from cfg.Tracer) records session lifecycle and
	// drop events. retired accumulates the endpoint metrics of removed
	// sessions so server-wide aggregates never shrink when an association
	// ends (see EndpointTelemetry).
	tel     telemetry.TransportMetrics
	tracer  *telemetry.Tracer
	retired telemetry.EndpointMetrics

	// flight, when set, hands each session a pooled per-association span
	// ring and receives anomaly triggers (chain-low, verify failures via
	// the ring's own drop hook). Nil disables recording at zero cost.
	flight *obs.Recorder
}

// NewServer starts serving on one socket with default I/O options. Each
// arriving handshake creates a responder endpoint with the given config;
// established sessions surface via Accept.
func NewServer(pc net.PacketConn, cfg core.Config) *Server {
	return NewServerOpts(cfg, IOOptions{}, pc)
}

// NewServerOpts starts serving across one or more sockets — typically a
// SO_REUSEPORT group — with one batched read loop per socket.
func NewServerOpts(cfg core.Config, opts IOOptions, pcs ...net.PacketConn) *Server {
	s := &Server{
		pcs:      pcs,
		cfg:      cfg,
		io:       opts,
		acceptCh: make(chan struct{}, 1),
		closed:   make(chan struct{}),
		tracer:   cfg.Tracer,
	}
	s.tel.Init()
	s.retired.Init()
	for i := range s.shards {
		s.shards[i].sessions = make(map[uint64]*Session)
	}
	s.ios = make([]udpio.Conn, len(pcs))
	for i, pc := range pcs {
		io, st := opts.wrapStatus(pc, &s.tel.IO)
		s.ios[i] = io
		if i == 0 {
			s.offload = st
		}
	}
	for _, io := range s.ios {
		s.wg.Add(1)
		go s.readLoop(io)
	}
	return s
}

// NewReusePortServer binds loops SO_REUSEPORT sockets to addr and serves a
// read loop per socket, letting the kernel shard inbound flows across
// them. loops <= 0 means GOMAXPROCS. Linux-only; elsewhere it returns the
// udpio error and the caller falls back to a single-socket NewServer.
func NewReusePortServer(network, addr string, loops int, cfg core.Config, opts IOOptions) (*Server, error) {
	if loops <= 0 {
		loops = runtime.GOMAXPROCS(0)
	}
	pcs, err := udpio.ListenReusePort(network, addr, loops)
	if err != nil {
		return nil, err
	}
	return NewServerOpts(cfg, opts, pcs...), nil
}

// SetFlightRecorder installs a flight recorder: every session created
// afterwards records its spans into rc's per-association ring, retired
// back to the pool when the session is removed. Call before serving
// traffic; existing sessions are unaffected.
func (s *Server) SetFlightRecorder(rc *obs.Recorder) { s.flight = rc }

// Accept blocks until the next association establishes (or the server
// closes).
func (s *Server) Accept() (*Session, error) {
	for {
		s.acceptMu.Lock()
		if len(s.pending) > 0 {
			sess := s.pending[0]
			s.pending = s.pending[1:]
			s.acceptMu.Unlock()
			s.tel.Accepted.Inc()
			return sess, nil
		}
		s.acceptMu.Unlock()
		select {
		case <-s.acceptCh:
		case <-s.closed:
			return nil, ErrServerClosed
		}
	}
}

// announce queues an established session for Accept.
func (s *Server) announce(sess *Session) {
	s.acceptMu.Lock()
	s.pending = append(s.pending, sess)
	s.acceptMu.Unlock()
	select {
	case s.acceptCh <- struct{}{}:
	default: // a signal is already pending; Accept re-scans the list
	}
}

// Sessions returns the current session count.
func (s *Server) Sessions() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// LocalAddr returns the address of the server's (first) socket.
func (s *Server) LocalAddr() net.Addr { return s.pcs[0].LocalAddr() }

// OffloadStatus reports which requested offload features the kernel
// granted on this server's sockets (zero when none were requested).
func (s *Server) OffloadStatus() udpio.OffloadStatus { return s.offload }

// shutdownSockets closes every socket and releases engine-owned resources;
// run under closeOnce from Close or a failing read loop.
func (s *Server) shutdownSockets() {
	close(s.closed)
	for _, pc := range s.pcs {
		pc.Close()
	}
	for _, io := range s.ios {
		udpio.CloseEngine(io)
	}
}

// Close stops the server, its sockets, and every session.
func (s *Server) Close() error {
	s.closeOnce.Do(s.shutdownSockets)
	s.wg.Wait()
	return nil
}

func (s *Server) shard(assoc uint64) *sessionShard {
	return &s.shards[assoc%sessionShards]
}

// readLoop drains one socket in bursts. Each recvmmsg fills a slab of
// pooled buffers; consumed slots are replaced from the pool before the next
// call, so buffer ownership moves to the session workers datagram by
// datagram.
func (s *Server) readLoop(io udpio.Conn) {
	defer s.wg.Done()
	batch := s.io.batch()
	ms := make([]udpio.Message, batch)
	bps := make([]*[]byte, batch)
	for i := range ms {
		bps[i] = bufPool.Get().(*[]byte)
		ms[i].Buf = *bps[i]
	}
	defer func() {
		for _, bp := range bps {
			bufPool.Put(bp)
		}
	}()
	for {
		n, err := io.ReadBatch(ms)
		if err != nil {
			s.closeOnce.Do(s.shutdownSockets)
			// Stop all session timers and workers (idempotent; every
			// failing read loop may run this).
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				for _, sess := range sh.sessions {
					sess.stop()
				}
				sh.mu.Unlock()
			}
			return
		}
		now := time.Now()
		for i := 0; i < n; i++ {
			s.dispatch(now, io, ms[i].Addr, bps[i], ms[i].N)
			bps[i] = bufPool.Get().(*[]byte)
			ms[i].Buf = *bps[i]
		}
	}
}

// dispatch classifies one datagram and hands it to its session's worker,
// creating the session for a fresh handshake. Ownership of bp transfers to
// the worker (or back to the pool on a drop). Every drop that used to be a
// silent `continue` is counted here; split from readLoop so tests can drive
// it directly.
func (s *Server) dispatch(now time.Time, via udpio.Conn, from net.Addr, bp *[]byte, n int) {
	s.tel.Datagrams.Inc()
	s.tel.Bytes.Add(uint64(n))
	if n < packet.HeaderSize {
		s.tel.ShortDatagrams.Inc()
		bufPool.Put(bp)
		return
	}
	data := (*bp)[:n]
	assoc := binary.BigEndian.Uint64(data[6:14])
	typ := packet.Type(data[3])

	sh := s.shard(assoc)
	sh.mu.Lock()
	sess, known := sh.sessions[assoc]
	if !known {
		if typ != packet.TypeHS1 {
			sh.mu.Unlock()
			s.tel.UnknownAssocDrops.Inc()
			s.tracer.Trace(now.UnixNano(), telemetry.TraceDrop, assoc, 0, telemetry.ReasonUnknownAssoc)
			bufPool.Put(bp)
			return // data for an association we do not hold
		}
		ep, err := core.NewEndpoint(s.cfg)
		if err != nil {
			sh.mu.Unlock()
			s.tel.EndpointFailures.Inc()
			s.tracer.Trace(now.UnixNano(), telemetry.TraceDrop, assoc, 0, telemetry.ReasonBadHandshake)
			bufPool.Put(bp)
			return
		}
		if s.flight != nil {
			ep.SetSpans(s.flight.Ring(assoc))
		}
		sess = newSession(s, ep, from, via)
		sh.sessions[assoc] = sess
		s.tel.SessionsCreated.Inc()
		s.tel.ActiveSessions.Inc()
		s.tracer.Trace(now.UnixNano(), telemetry.TraceSessionStart, assoc, 0, 0)
	}
	sh.mu.Unlock()

	// Bounded hand-off: a full inbox means this session's worker is
	// behind, and the datagram is dropped as the network would drop
	// it. The single reader preserves per-session arrival order.
	select {
	case sess.inbox <- datagram{now: now, from: from, via: via, buf: bp, n: n}:
	default:
		s.tel.InboxDrops.Inc()
		s.tracer.Trace(now.UnixNano(), telemetry.TraceInboxDrop, assoc, 0, telemetry.ReasonInboxFull)
		bufPool.Put(bp)
	}
}

// remove drops a session from the routing table, folding its endpoint
// counters into the retired set so server-wide aggregates survive session
// churn. Chain-pressure gauges are point-in-time, not cumulative, so they
// are zeroed before the fold — a retired chain exerts no pressure. The
// presence check makes double-removal harmless.
func (s *Server) remove(assoc uint64) {
	sh := s.shard(assoc)
	sh.mu.Lock()
	sess, ok := sh.sessions[assoc]
	if ok {
		delete(sh.sessions, assoc)
	}
	sh.mu.Unlock()
	if !ok {
		return
	}
	et := sess.ep.Telemetry()
	et.SigChainRemaining.Set(0)
	et.SigChainLen.Set(0)
	et.AckChainRemaining.Set(0)
	et.AckChainLen.Set(0)
	et.AddTo(&s.retired)
	s.flight.Retire(assoc)
	s.tel.SessionsRemoved.Inc()
	s.tel.ActiveSessions.Dec()
	s.tracer.Trace(time.Now().UnixNano(), telemetry.TraceSessionEnd, assoc, 0, 0)
}

// Telemetry returns the server's live transport metric set for export.
func (s *Server) Telemetry() *telemetry.TransportMetrics { return &s.tel }

// EndpointTelemetry sums the endpoint metrics of every session this server
// has held — live sessions plus the retired fold — into a fresh set. Call
// it at scrape time (e.g. from a telemetry.WalkerFunc) so the aggregate
// tracks session churn without the hot path paying for aggregation.
func (s *Server) EndpointTelemetry() *telemetry.EndpointMetrics {
	agg := telemetry.NewEndpointMetrics()
	s.retired.AddTo(agg)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			sess.ep.Telemetry().AddTo(agg)
		}
		sh.mu.Unlock()
	}
	return agg
}

// Session is one association served by a Server. Its API mirrors Conn.
type Session struct {
	server *Server
	mu     sync.Mutex
	ep     *core.Endpoint
	peer   net.Addr
	io     udpio.Conn // socket engine replies leave through

	wbatch []udpio.Message // coalescing scratch for pumpLocked

	inbox       chan datagram
	events      chan core.Event
	established bool
	timerStop   chan struct{}
	stopOnce    sync.Once
}

func newSession(srv *Server, ep *core.Endpoint, peer net.Addr, via udpio.Conn) *Session {
	sess := &Session{
		server:    srv,
		ep:        ep,
		peer:      peer,
		io:        via,
		inbox:     make(chan datagram, inboxSize),
		events:    make(chan core.Event, 256),
		timerStop: make(chan struct{}),
	}
	srv.wg.Add(2)
	go sess.worker()
	go sess.timerLoop()
	return sess
}

// Peer returns the remote address.
func (s *Session) Peer() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer
}

// Events returns the engine event stream.
func (s *Session) Events() <-chan core.Event { return s.events }

// Endpoint exposes the engine for stats; do not call engine methods.
func (s *Session) Endpoint() *core.Endpoint { return s.ep }

// Send queues a protected message to this session's peer.
func (s *Session) Send(payload []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ep == nil {
		return 0, ErrClosed
	}
	id, err := s.ep.Send(time.Now(), payload)
	if err != nil {
		return 0, err
	}
	s.pumpLocked(time.Now())
	return id, nil
}

// Flush forces partial batches out.
func (s *Session) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ep.Flush(time.Now())
	s.pumpLocked(time.Now())
}

// Close detaches the session from the server.
func (s *Session) Close() error {
	s.stop()
	s.mu.Lock()
	assoc := uint64(0)
	if s.ep != nil {
		assoc = s.ep.Assoc()
	}
	s.mu.Unlock()
	if assoc != 0 {
		s.server.remove(assoc)
	}
	return nil
}

func (s *Session) stop() {
	s.stopOnce.Do(func() { close(s.timerStop) })
}

// worker drains the inbox, feeding datagrams into the engine one at a
// time. The inbox is never closed — after stop, queued buffers are simply
// released back to the GC with the channel.
func (s *Session) worker() {
	defer s.server.wg.Done()
	for {
		select {
		case d := <-s.inbox:
			s.handle(d.now, d.from, d.via, (*d.buf)[:d.n], s.server)
			bufPool.Put(d.buf)
		case <-s.timerStop:
			return
		case <-s.server.closed:
			return
		}
	}
}

// handle feeds one datagram into the session's engine. The engine copies
// everything it keeps, so data may be recycled once this returns.
func (s *Session) handle(now time.Time, from net.Addr, via udpio.Conn, data []byte, srv *Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from != nil {
		s.peer = from // track peer mobility (ALPHA identity is the chain, not the address)
	}
	if via != nil {
		s.io = via // replies follow the socket the kernel picked for this flow
	}
	evs, _ := s.ep.Handle(now, data)
	for _, ev := range evs {
		if ev.Kind == core.EventEstablished && !s.established {
			s.established = true
			srv.announce(s)
		}
		s.forwardEvent(ev)
	}
	s.pumpLocked(now)
}

// forwardEvent hands one engine event to the consumer (best-effort, counted
// when the channel is full) and fires the flight recorder on chain-pressure
// anomalies. Callers hold s.mu.
func (s *Session) forwardEvent(ev core.Event) {
	if ev.Kind == core.EventChainLow && s.server.flight != nil {
		s.server.flight.Trigger(s.ep.Assoc(), obs.CauseChainLow)
	}
	select {
	case s.events <- ev:
	default:
		s.server.tel.EventDrops.Inc()
	}
}

// pumpLocked drains the engine outbox through the coalescing writer: the
// whole Poll harvest — an ALPHA-C/M burst's S2s plus its S1 — leaves in
// one WriteBatch, hence (on Linux) one sendmmsg. Callers hold s.mu.
func (s *Session) pumpLocked(now time.Time) {
	out, evs := s.ep.Poll(now)
	for _, ev := range evs {
		s.forwardEvent(ev)
	}
	if s.peer == nil || len(out) == 0 {
		return
	}
	ms := s.wbatch[:0]
	for _, raw := range out {
		ms = append(ms, udpio.Message{Buf: raw, N: len(raw), Addr: s.peer})
	}
	s.wbatch = ms
	s.io.WriteBatch(ms)
}

func (s *Session) timerLoop() {
	defer s.server.wg.Done()
	timer := time.NewTimer(10 * time.Millisecond)
	defer timer.Stop()
	for {
		select {
		case <-s.timerStop:
			return
		case <-s.server.closed:
			return
		case <-timer.C:
		}
		now := time.Now()
		s.mu.Lock()
		s.pumpLocked(now)
		next, ok := s.ep.NextTimeout()
		s.mu.Unlock()
		d := 50 * time.Millisecond
		if ok {
			if until := time.Until(next); until < d {
				d = until
			}
			if d < time.Millisecond {
				d = time.Millisecond
			}
		}
		timer.Reset(d)
	}
}

// ErrServerClosed reports operations on a closed server.
var ErrServerClosed = errors.New("udptransport: server closed")
