// Multi-association server: one socket (or a SO_REUSEPORT group), many
// peers.
//
// A Conn serves exactly one association. Real responders — sinks, home
// agents, middleback-ends — accept many initiators on one port. Server owns
// the socket read loops and demultiplexes by the association ID every
// ALPHA packet carries, spawning a Session per handshake and routing
// subsequent traffic to it.
//
// The session core is built for millions of associations on one box:
//
//   - Generation-rotated routing maps. Each shard holds a current and a
//     previous map; a rotation demotes current to previous and starts a
//     fresh current, so every lookup promotes its hit back into the
//     current generation and whatever is still sitting in the previous
//     map after a full interval is idle by construction. Expiry is
//     therefore a pointer swap plus a fold of the (few) idle sessions —
//     never a scan over the live table.
//
//   - Worker-pool dispatch. Sessions hold no goroutines. A bounded pool
//     of workers (GOMAXPROCS by default) drains per-worker intrusive run
//     queues of sessions with pending work; an atomic ownership token per
//     session guarantees no two workers ever run the same association
//     concurrently, which preserves the engine's single-threaded contract
//     while letting any worker pick up any (unowned) session. Protocol
//     timers collapse into one deadline heap driven by a single timer
//     goroutine; an idle association costs two small maps' worth of
//     entries and its buffers — no stacks, no timers.
//
//   - Stateless prefilter (opt-in, IOOptions.Prefilter). Before any map
//     lookup the dispatcher checks the fixed header's magic/version/type
//     bytes and the address-bound filter cookie (packet.Prefilter), so
//     junk floods are rejected in a handful of cycles and counted under
//     drop_prefilter without touching a shard lock or the engine.
//
// The read loops are batched: each drains up to a full burst of datagrams
// from its socket in one recvmmsg into a slab of pooled buffers before
// demuxing. Buffers are recycled once the engine has consumed them —
// packet.Decode copies every field it returns, so a buffer is dead the
// moment Handle returns. Session replies leave through a coalescing
// writer: everything a Poll produces (the S2s of a burst plus its S1) goes
// out in one sendmmsg.

package udptransport

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"alpha/internal/admission"
	"alpha/internal/core"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/telemetry"
	"alpha/internal/udpio"
)

// sessionShards splits the association routing table so lookups from the
// read loops do not contend with session creation and removal on one lock.
// Power of two; association IDs are random, so low bits spread evenly.
const sessionShards = 16

// inboxSize is the default bound on each session's pending-datagram queue.
// When the session's owner falls behind, the dispatcher drops for that
// session only — the same semantics the network already imposes on UDP.
const inboxSize = 64

// defaultEventBuffer is the default capacity of a session's event channel.
const defaultEventBuffer = 256

// defaultAcceptBacklog bounds the established-but-unaccepted session list
// unless ServerOptions says otherwise.
const defaultAcceptBacklog = 4096

// bufPool recycles datagram read buffers across the read loops and session
// workers.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, packet.MaxPacketSize)
		return &b
	},
}

// datagram is one received packet en route to a session worker. buf is the
// pooled backing array; n is the valid prefix; via is the socket engine it
// arrived on, which the session adopts for replies.
type datagram struct {
	now  time.Time
	from net.Addr
	via  udpio.Conn
	buf  *[]byte
	n    int
}

// sessionShard is one slice of the generation-rotated routing table. cur
// holds associations seen since the last rotation; old holds the previous
// generation. Lookups check cur then old, promoting old hits; a rotation
// swaps cur into old and retires whatever was still in old.
type sessionShard struct {
	mu  sync.Mutex
	cur map[uint64]*Session
	old map[uint64]*Session
}

// lookup finds a session in either generation, promoting old-generation
// hits into the current one so the next rotation sees them as live.
func (sh *sessionShard) lookup(assoc uint64) (*Session, bool) {
	sh.mu.Lock()
	sess, ok := sh.cur[assoc]
	if !ok {
		if sess, ok = sh.old[assoc]; ok {
			delete(sh.old, assoc)
			sh.cur[assoc] = sess
		}
	}
	sh.mu.Unlock()
	return sess, ok
}

// worker is one run queue of the dispatch pool: an intrusive FIFO of
// sessions holding the ownership token, plus a wake signal. The queue is
// unbounded but can never exceed the session count — the token admits each
// session at most once.
type worker struct {
	mu         sync.Mutex
	head, tail *Session
	wake       chan struct{} // cap 1
}

// ServerOptions sizes the session core. The zero value reproduces the
// defaults of NewServer.
type ServerOptions struct {
	// IO selects and sizes the datagram I/O engine (including the
	// stateless prefilter switch).
	IO IOOptions
	// Workers bounds the dispatch pool; 0 means GOMAXPROCS.
	Workers int
	// RotateInterval is the generation-rotation period: an association
	// idle for two full intervals is retired. 0 disables rotation (no
	// expiry, the historical behavior); Rotate can still be called
	// manually.
	RotateInterval time.Duration
	// AcceptBacklog caps the established-but-unaccepted session list. 0
	// means the default (4096); negative means unbounded. When the
	// backlog is full a newly established session is dropped and counted
	// under drop_accept_backlog.
	AcceptBacklog int
	// EventBuffer is the per-session event channel capacity; 0 means 256.
	// Million-association deployments that never read per-session events
	// shrink this to single digits.
	EventBuffer int
	// InboxSize is the per-session pending-datagram queue bound; 0 means
	// 64.
	InboxSize int
	// Admission, when set, gates session creation behind the stateless
	// connect-token tier (internal/admission): a session-creating HS1 must
	// pass Verifier.Admit before any endpoint state is allocated. HS1
	// retransmits into an existing session bypass the verifier, so the
	// replay filter never penalizes a legitimate retry. Nil disables the
	// stage.
	Admission *admission.Verifier
}

func (o ServerOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o ServerOptions) acceptBacklog() int {
	switch {
	case o.AcceptBacklog == 0:
		return defaultAcceptBacklog
	case o.AcceptBacklog < 0:
		return 0 // unbounded
	default:
		return o.AcceptBacklog
	}
}

func (o ServerOptions) eventBuffer() int {
	if o.EventBuffer <= 0 {
		return defaultEventBuffer
	}
	return o.EventBuffer
}

func (o ServerOptions) inboxSize() int {
	if o.InboxSize <= 0 {
		return inboxSize
	}
	return o.InboxSize
}

// Server accepts ALPHA associations on a shared datagram socket, or on a
// group of SO_REUSEPORT sockets each with its own read loop.
type Server struct {
	pcs     []net.PacketConn
	ios     []udpio.Conn
	cfg     core.Config
	opts    ServerOptions
	io      IOOptions
	offload udpio.OffloadStatus // granted on the first socket; sockets are siblings

	shards [sessionShards]sessionShard

	// Dispatch pool: per-worker run queues plus the shared deadline heap
	// replacing per-session timer goroutines.
	workers   []worker
	timerMu   sync.Mutex
	theap     timerHeap
	timerKick chan struct{} // cap 1; armTimer signals a new earliest deadline

	// Generation rotation state: lastRotate is the previous rotation's
	// timestamp (UnixNano), the idle cutoff for the generation retired by
	// the next one. rotateMu serializes rotations.
	rotateMu   sync.Mutex
	lastRotate int64

	// Outgoing filter-cookie binding (what the peer's prefilter checks
	// against): the concrete local IP when the socket has one, else
	// port-only.
	stampIP   []byte
	stampPort int

	// Established-but-unaccepted sessions, capped at acceptCap entries
	// (0 = unbounded). A list rather than a bounded channel so Accept
	// never waits for a session that was dropped at announce time: the
	// cap is enforced — and counted — at the moment of establishment.
	acceptMu  sync.Mutex
	pending   []*Session
	acceptCh  chan struct{} // signals a new pending entry; cap 1
	acceptCap int

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// tel counts transport activity (including the I/O engine's batch
	// accounting); tracer (from cfg.Tracer) records session lifecycle and
	// drop events. retired accumulates the endpoint metrics of removed
	// sessions so server-wide aggregates never shrink when an association
	// ends (see EndpointTelemetry).
	tel     telemetry.TransportMetrics
	tracer  *telemetry.Tracer
	retired telemetry.EndpointMetrics

	// flight, when set, hands each session a pooled per-association span
	// ring and receives anomaly triggers (chain-low, verify failures via
	// the ring's own drop hook). Nil disables recording at zero cost.
	flight *obs.Recorder
}

// NewServer starts serving on one socket with default I/O options. Each
// arriving handshake creates a responder endpoint with the given config;
// established sessions surface via Accept.
func NewServer(pc net.PacketConn, cfg core.Config) *Server {
	return NewServerOpts(cfg, IOOptions{}, pc)
}

// NewServerOpts starts serving across one or more sockets — typically a
// SO_REUSEPORT group — with one batched read loop per socket.
func NewServerOpts(cfg core.Config, opts IOOptions, pcs ...net.PacketConn) *Server {
	return NewServerWith(cfg, ServerOptions{IO: opts}, pcs...)
}

// NewServerWith starts serving with full control over the session core:
// worker-pool size, generation-rotation interval, accept backlog and
// per-session buffer sizing.
func NewServerWith(cfg core.Config, opts ServerOptions, pcs ...net.PacketConn) *Server {
	s := &Server{
		pcs:       pcs,
		cfg:       cfg,
		opts:      opts,
		io:        opts.IO,
		acceptCh:  make(chan struct{}, 1),
		acceptCap: opts.acceptBacklog(),
		timerKick: make(chan struct{}, 1),
		closed:    make(chan struct{}),
		tracer:    cfg.Tracer,
	}
	s.tel.Init()
	s.retired.Init()
	for i := range s.shards {
		s.shards[i].cur = make(map[uint64]*Session)
		s.shards[i].old = make(map[uint64]*Session)
	}
	s.ios = make([]udpio.Conn, len(pcs))
	for i, pc := range pcs {
		io, st := opts.IO.wrapStatus(pc, &s.tel.IO)
		s.ios[i] = io
		if i == 0 {
			s.offload = st
		}
	}
	if len(pcs) > 0 {
		s.stampIP, s.stampPort = addrIPPort(pcs[0].LocalAddr())
	}
	s.lastRotate = time.Now().UnixNano()
	s.workers = make([]worker, opts.workers())
	s.tel.Workers.Set(int64(len(s.workers)))
	for i := range s.workers {
		s.workers[i].wake = make(chan struct{}, 1)
		s.wg.Add(1)
		go s.workerLoop(&s.workers[i])
	}
	s.wg.Add(1)
	go s.timerLoop()
	if opts.RotateInterval > 0 {
		s.wg.Add(1)
		go s.rotateLoop(opts.RotateInterval)
	}
	for _, io := range s.ios {
		s.wg.Add(1)
		go s.readLoop(io)
	}
	return s
}

// NewReusePortServer binds loops SO_REUSEPORT sockets to addr and serves a
// read loop per socket, letting the kernel shard inbound flows across
// them. loops <= 0 means GOMAXPROCS. Linux-only; elsewhere it returns the
// udpio error and the caller falls back to a single-socket NewServer.
func NewReusePortServer(network, addr string, loops int, cfg core.Config, opts IOOptions) (*Server, error) {
	return NewReusePortServerWith(network, addr, loops, cfg, ServerOptions{IO: opts})
}

// NewReusePortServerWith is NewReusePortServer with full session-core
// options.
func NewReusePortServerWith(network, addr string, loops int, cfg core.Config, opts ServerOptions) (*Server, error) {
	if loops <= 0 {
		loops = runtime.GOMAXPROCS(0)
	}
	pcs, err := udpio.ListenReusePort(network, addr, loops)
	if err != nil {
		return nil, err
	}
	return NewServerWith(cfg, opts, pcs...), nil
}

// SetFlightRecorder installs a flight recorder: every session created
// afterwards records its spans into rc's per-association ring, retired
// back to the pool when the session is removed. Call before serving
// traffic; existing sessions are unaffected.
func (s *Server) SetFlightRecorder(rc *obs.Recorder) {
	s.flight = rc
	if adm := s.opts.Admission; adm != nil && rc != nil {
		// Admission storms predate any association, so they land in the
		// shared ring (association 0).
		adm.SetOnStorm(func(uint64) { rc.Trigger(0, obs.CauseAdmissionStorm) })
	}
}

// Accept blocks until the next association establishes (or the server
// closes).
func (s *Server) Accept() (*Session, error) {
	for {
		s.acceptMu.Lock()
		if len(s.pending) > 0 {
			sess := s.pending[0]
			s.pending = s.pending[1:]
			s.acceptMu.Unlock()
			s.tel.Accepted.Inc()
			return sess, nil
		}
		s.acceptMu.Unlock()
		select {
		case <-s.acceptCh:
		case <-s.closed:
			return nil, ErrServerClosed
		}
	}
}

// announce queues an established session for Accept, or reports false when
// the backlog cap is reached (the caller retires the session).
func (s *Server) announce(sess *Session) bool {
	s.acceptMu.Lock()
	if s.acceptCap > 0 && len(s.pending) >= s.acceptCap {
		s.acceptMu.Unlock()
		s.tel.AcceptBacklogDrops.Inc()
		s.tracer.Trace(time.Now().UnixNano(), telemetry.TraceDrop, sess.assoc, 0, telemetry.ReasonAcceptBacklog)
		if s.flight != nil {
			s.flight.Trigger(sess.assoc, obs.CausePoolSaturation)
		}
		return false
	}
	s.pending = append(s.pending, sess)
	s.acceptMu.Unlock()
	select {
	case s.acceptCh <- struct{}{}:
	default: // a signal is already pending; Accept re-scans the list
	}
	return true
}

// Sessions returns the current session count across both generations.
func (s *Server) Sessions() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.cur) + len(sh.old)
		sh.mu.Unlock()
	}
	return n
}

// LocalAddr returns the address of the server's (first) socket.
func (s *Server) LocalAddr() net.Addr { return s.pcs[0].LocalAddr() }

// OffloadStatus reports which requested offload features the kernel
// granted on this server's sockets (zero when none were requested).
func (s *Server) OffloadStatus() udpio.OffloadStatus { return s.offload }

// shutdownSockets closes every socket and releases engine-owned resources;
// run under closeOnce from Close or a failing read loop.
func (s *Server) shutdownSockets() {
	close(s.closed)
	for _, pc := range s.pcs {
		pc.Close()
	}
	for _, io := range s.ios {
		udpio.CloseEngine(io)
	}
}

// Close stops the server, its sockets, and every session.
func (s *Server) Close() error {
	s.closeOnce.Do(s.shutdownSockets)
	s.wg.Wait()
	return nil
}

func (s *Server) shard(assoc uint64) *sessionShard {
	return &s.shards[assoc%sessionShards]
}

// readLoop drains one socket in bursts. Each recvmmsg fills a slab of
// pooled buffers; consumed slots are replaced from the pool before the next
// call, so buffer ownership moves to the session workers datagram by
// datagram.
func (s *Server) readLoop(io udpio.Conn) {
	defer s.wg.Done()
	batch := s.io.batch()
	ms := make([]udpio.Message, batch)
	bps := make([]*[]byte, batch)
	for i := range ms {
		bps[i] = bufPool.Get().(*[]byte)
		ms[i].Buf = *bps[i]
	}
	defer func() {
		for _, bp := range bps {
			bufPool.Put(bp)
		}
	}()
	for {
		n, err := io.ReadBatch(ms)
		if err != nil {
			s.closeOnce.Do(s.shutdownSockets)
			// Stop all session timers (idempotent; every failing read
			// loop may run this). Workers exit via s.closed.
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				for _, sess := range sh.cur {
					sess.stop()
				}
				for _, sess := range sh.old {
					sess.stop()
				}
				sh.mu.Unlock()
			}
			return
		}
		now := time.Now()
		for i := 0; i < n; i++ {
			s.dispatch(now, io, ms[i].Addr, bps[i], ms[i].N)
			bps[i] = bufPool.Get().(*[]byte)
			ms[i].Buf = *bps[i]
		}
	}
}

// dispatch classifies one datagram and hands it to its session's inbox,
// creating the session for a fresh handshake and queueing the session on a
// worker. Ownership of bp transfers to the session (or back to the pool on
// a drop). Every drop that used to be a silent `continue` is counted here;
// split from readLoop so tests can drive it directly.
//
//alpha:hotpath
func (s *Server) dispatch(now time.Time, via udpio.Conn, from net.Addr, bp *[]byte, n int) {
	s.tel.Datagrams.Inc()
	s.tel.Bytes.Add(uint64(n))
	if n < packet.HeaderSize {
		s.tel.ShortDatagrams.Inc()
		bufPool.Put(bp)
		return
	}
	data := (*bp)[:n]
	if s.io.Prefilter {
		// Stateless junk rejection before any shard lock or map lookup:
		// structural header checks plus the address-bound cookie.
		ip, port := addrIPPort(from)
		if !packet.Prefilter(data, ip, port) {
			s.tel.PrefilterDrops.Inc()
			s.tracer.Trace(now.UnixNano(), telemetry.TraceDrop, 0, 0, telemetry.ReasonPrefilter)
			bufPool.Put(bp)
			return
		}
	}
	assoc := binary.BigEndian.Uint64(data[6:14])
	typ := packet.Type(data[3])

	sh := s.shard(assoc)
	sess, known := sh.lookup(assoc)
	if !known {
		if typ != packet.TypeHS1 {
			s.tel.UnknownAssocDrops.Inc()
			s.tracer.Trace(now.UnixNano(), telemetry.TraceDrop, assoc, 0, telemetry.ReasonUnknownAssoc)
			bufPool.Put(bp)
			return // data for an association we do not hold
		}
		// Stateless admission: a session-creating HS1 must clear the
		// connect-token tier before the allocating branch below runs. The
		// verifier owns the drop accounting (alpha_admission family), so
		// rejects cost one decrypt and zero allocations here.
		var admitted admission.Verdict
		var view packet.HS1View
		if adm := s.opts.Admission; adm != nil {
			var vok bool
			if view, vok = packet.ParseHS1View(data); !vok {
				admitted = adm.RejectMalformed()
			} else {
				ip, port := addrIPPort(from)
				admitted = adm.Admit(now, view.Token, ip, port, view.SigAnchor, view.AckAnchor)
			}
			if !admitted.OK {
				s.tracer.Trace(now.UnixNano(), telemetry.TraceDrop, assoc, 0, admitted.Reason)
				bufPool.Put(bp)
				return //alpha:drop-ok the admission verifier counted the refusal
			}
		}
		var ok bool
		if sess, ok = s.createSession(now, sh, assoc, from, via); !ok { //alpha:alloc-ok session birth is the cold path: one endpoint allocation per association lifetime
			bufPool.Put(bp)
			return
		}
		if admitted.AnchorsBound {
			// The token vouched for these exact anchors; let the endpoint
			// skip the §3.4 signature verification when it parses the HS1.
			sess.mu.Lock()
			sess.ep.PreAdmit(view.SigAnchor, view.AckAnchor)
			sess.mu.Unlock()
		}
	}
	sess.lastActive.Store(now.UnixNano())

	// Bounded hand-off: a full inbox means this session's owner is
	// behind, and the datagram is dropped as the network would drop
	// it. The single drainer (ownership token) preserves per-session
	// arrival order.
	select {
	case sess.inbox <- datagram{now: now, from: from, via: via, buf: bp, n: n}:
		s.schedule(sess)
	default:
		s.tel.InboxDrops.Inc()
		s.tracer.Trace(now.UnixNano(), telemetry.TraceInboxDrop, assoc, 0, telemetry.ReasonInboxFull)
		bufPool.Put(bp)
	}
}

// createSession spawns the responder endpoint and routing-table entry for
// a fresh handshake — the one allocating branch of the dispatch path.
func (s *Server) createSession(now time.Time, sh *sessionShard, assoc uint64, from net.Addr, via udpio.Conn) (*Session, bool) {
	ep, err := core.NewEndpoint(s.cfg)
	if err != nil {
		s.tel.EndpointFailures.Inc()
		s.tracer.Trace(now.UnixNano(), telemetry.TraceDrop, assoc, 0, telemetry.ReasonBadHandshake)
		return nil, false
	}
	if s.flight != nil {
		ep.SetSpans(s.flight.Ring(assoc))
	}
	sess := newSession(s, ep, assoc, from, via)
	sh.mu.Lock()
	if racing, ok := sh.cur[assoc]; ok {
		// Another read loop created the session between our lookup and
		// now; adopt theirs and discard ours.
		sh.mu.Unlock()
		return racing, true
	}
	sh.cur[assoc] = sess
	sh.mu.Unlock()
	s.tel.SessionsCreated.Inc()
	s.tel.ActiveSessions.Inc()
	s.tracer.Trace(now.UnixNano(), telemetry.TraceSessionStart, assoc, 0, 0)
	return sess, true
}

// schedule queues a session on its worker if no one owns it yet. The
// ownership token (scheduled) admits a session into exactly one run queue
// at a time, so no two workers ever run the same association concurrently.
//
//alpha:hotpath
func (s *Server) schedule(sess *Session) {
	if !sess.scheduled.CompareAndSwap(false, true) {
		return // already queued or running; the owner re-checks on exit
	}
	w := sess.wkr
	w.mu.Lock()
	if w.tail == nil {
		w.head = sess
	} else {
		w.tail.next = sess
	}
	w.tail = sess
	w.mu.Unlock()
	s.tel.RunQueueDepth.Inc()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// workerLoop drains one run queue: pop a session, run its pending work,
// repeat; sleep on the wake channel when the queue is empty. The pop and
// the sleep re-check make lost wakeups impossible: schedule always either
// finds the queue non-empty on our next scan or lands a wake signal.
func (s *Server) workerLoop(w *worker) {
	defer s.wg.Done()
	for {
		w.mu.Lock()
		sess := w.head
		if sess != nil {
			w.head = sess.next
			if w.head == nil {
				w.tail = nil
			}
			sess.next = nil
		}
		w.mu.Unlock()
		if sess == nil {
			select {
			case <-w.wake:
				continue
			case <-s.closed:
				return
			}
		}
		s.tel.RunQueueDepth.Dec()
		s.runSession(sess)
	}
}

// runSession performs one owned turn for a session: a due timer pump and a
// bounded drain of the inbox. The ownership token is released before the
// final emptiness re-check, so a dispatcher that raced our drain either
// sees the token free (and schedules) or we see its datagram (and
// reschedule ourselves) — work is never stranded.
func (s *Server) runSession(sess *Session) {
	if sess.stopped() {
		// Retired session still queued: release the token and let the
		// inbox drain to the GC with the channel (matching Close).
		sess.scheduled.Store(false)
		return
	}
	if sess.pumpDue.Swap(false) {
		now := time.Now()
		sess.mu.Lock()
		sess.pumpLocked(now)
		sess.mu.Unlock()
	}
	budget := cap(sess.inbox)
drain:
	for i := 0; i < budget; i++ {
		select {
		case d := <-sess.inbox:
			sess.handle(d.now, d.from, d.via, (*d.buf)[:d.n], s)
			s.tel.DispatchLatency.Observe(time.Since(d.now).Nanoseconds())
			bufPool.Put(d.buf)
		default:
			break drain
		}
	}
	sess.scheduled.Store(false)
	if len(sess.inbox) > 0 || sess.pumpDue.Load() {
		s.schedule(sess)
	}
}

// timerHeap is the deadline min-heap replacing per-session timer
// goroutines; guarded by Server.timerMu.
type timerHeap []*Session

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].deadline.Before(h[j].deadline) }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *timerHeap) Push(x any)        { s := x.(*Session); s.heapIdx = len(*h); *h = append(*h, s) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.heapIdx = -1
	*h = old[:n-1]
	return s
}

// armTimer (re)registers a session's next engine deadline on the shared
// heap, or removes it when the engine reports none — an idle association
// costs the timer goroutine nothing.
func (s *Server) armTimer(sess *Session, at time.Time, ok bool) {
	s.timerMu.Lock()
	switch {
	case !ok:
		if sess.heapIdx >= 0 {
			heap.Remove(&s.theap, sess.heapIdx)
		}
	case sess.heapIdx >= 0:
		if !sess.deadline.Equal(at) {
			sess.deadline = at
			heap.Fix(&s.theap, sess.heapIdx)
		}
	default:
		sess.deadline = at
		heap.Push(&s.theap, sess)
	}
	kick := len(s.theap) > 0 && s.theap[0] == sess
	s.timerMu.Unlock()
	if kick {
		select {
		case s.timerKick <- struct{}{}:
		default:
		}
	}
}

// timerLoop drives every session's engine deadlines off one heap: sleep
// until the earliest deadline (or a kick that a new earliest arrived), pop
// everything due, and queue the affected sessions for a pump on their
// workers.
func (s *Server) timerLoop() {
	defer s.wg.Done()
	const idleWait = time.Hour
	timer := time.NewTimer(idleWait)
	defer timer.Stop()
	var due []*Session
	for {
		s.timerMu.Lock()
		d := idleWait
		if len(s.theap) > 0 {
			d = time.Until(s.theap[0].deadline)
		}
		s.timerMu.Unlock()
		if d < 0 {
			d = 0
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case <-s.closed:
			return
		case <-s.timerKick:
			continue // recompute the sleep against the new earliest
		case <-timer.C:
		}
		now := time.Now()
		due = due[:0]
		s.timerMu.Lock()
		for len(s.theap) > 0 && !s.theap[0].deadline.After(now) {
			due = append(due, heap.Pop(&s.theap).(*Session))
		}
		s.timerMu.Unlock()
		for _, sess := range due {
			sess.pumpDue.Store(true)
			s.schedule(sess)
		}
	}
}

// rotateLoop swaps the generations every interval.
func (s *Server) rotateLoop(interval time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
			s.rotate(time.Now())
		}
	}
}

// Rotate swaps the session-map generations once: current becomes previous,
// and every association still in the (just-retired) previous generation —
// idle for at least one full interval, since any traffic or local send
// would have promoted or re-stamped it — is retired. The cost is a pointer
// swap per shard plus a fold per actually-idle session, independent of the
// live table size. Called automatically every ServerOptions.RotateInterval;
// exported for tests, benchmarks, and manual sweeps.
func (s *Server) Rotate() {
	s.rotate(time.Now())
}

func (s *Server) rotate(now time.Time) {
	s.rotateMu.Lock()
	defer s.rotateMu.Unlock()
	cutoff := s.lastRotate
	s.lastRotate = now.UnixNano()
	s.tel.Rotations.Inc()
	var dead []*Session
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		graves := sh.old
		sh.old = sh.cur
		sh.cur = make(map[uint64]*Session)
		for assoc, sess := range graves {
			if sess.lastActive.Load() >= cutoff {
				// Touched since the previous rotation but never promoted
				// by inbound traffic (a local-send-only association):
				// still live, give it another generation.
				sh.old[assoc] = sess
				continue
			}
			dead = append(dead, sess)
		}
		sh.mu.Unlock()
	}
	for _, sess := range dead {
		s.expire(now, sess)
	}
}

// expire retires one idle association popped off the previous generation
// by rotate: fold its telemetry like remove, mark the expiry distinctly
// (sessions_expired, ReasonExpired, a VerdictExpire span, EventExpired),
// and stop its timers. The session is already out of both maps, so a
// concurrent Close/remove finds nothing and cannot double-fold.
func (s *Server) expire(now time.Time, sess *Session) {
	sess.stop()
	s.foldRetired(sess)
	s.tel.SessionsExpired.Inc()
	s.tel.SessionsRemoved.Inc()
	s.tel.ActiveSessions.Dec()
	s.tracer.Trace(now.UnixNano(), telemetry.TraceSessionEnd, sess.assoc, 0, telemetry.ReasonExpired)
	if s.flight != nil {
		s.flight.Ring(sess.assoc).Emit(now.UnixNano(), sess.assoc, 0, 0, obs.RoleTransport, obs.StepNone, 0, obs.VerdictExpire, telemetry.ReasonExpired)
	}
	s.flight.Retire(sess.assoc)
	// The consumer (if any) learns the transport retired the session.
	select {
	case sess.events <- core.Event{Kind: core.EventExpired}:
	default:
		s.tel.EventDrops.Inc()
	}
}

// foldRetired folds a departing session's endpoint counters into the
// retired set so server-wide aggregates survive session churn.
// Chain-pressure gauges are point-in-time, not cumulative, so they are
// zeroed before the fold — a retired chain exerts no pressure.
func (s *Server) foldRetired(sess *Session) {
	et := sess.ep.Telemetry()
	et.SigChainRemaining.Set(0)
	et.SigChainLen.Set(0)
	et.AckChainRemaining.Set(0)
	et.AckChainLen.Set(0)
	et.AddTo(&s.retired)
}

// remove drops a session from the routing table (either generation),
// folding its endpoint counters into the retired set. The presence check
// makes double-removal — and a removal racing a rotation's expiry —
// harmless: whoever takes the session out of the maps does the fold.
func (s *Server) remove(assoc uint64) {
	sh := s.shard(assoc)
	sh.mu.Lock()
	sess, ok := sh.cur[assoc]
	if ok {
		delete(sh.cur, assoc)
	} else if sess, ok = sh.old[assoc]; ok {
		delete(sh.old, assoc)
	}
	sh.mu.Unlock()
	if !ok {
		return
	}
	s.foldRetired(sess)
	s.flight.Retire(assoc)
	s.tel.SessionsRemoved.Inc()
	s.tel.ActiveSessions.Dec()
	s.tracer.Trace(time.Now().UnixNano(), telemetry.TraceSessionEnd, assoc, 0, 0)
}

// Telemetry returns the server's live transport metric set for export.
func (s *Server) Telemetry() *telemetry.TransportMetrics { return &s.tel }

// EndpointTelemetry sums the endpoint metrics of every session this server
// has held — live sessions in both generations plus the retired fold —
// into a fresh set. Call it at scrape time (e.g. from a
// telemetry.WalkerFunc) so the aggregate tracks session churn without the
// hot path paying for aggregation.
func (s *Server) EndpointTelemetry() *telemetry.EndpointMetrics {
	agg := telemetry.NewEndpointMetrics()
	s.retired.AddTo(agg)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.cur {
			sess.ep.Telemetry().AddTo(agg)
		}
		for _, sess := range sh.old {
			sess.ep.Telemetry().AddTo(agg)
		}
		sh.mu.Unlock()
	}
	return agg
}

// Session is one association served by a Server. Its API mirrors Conn.
type Session struct {
	server *Server
	assoc  uint64
	mu     sync.Mutex
	ep     *core.Endpoint
	peer   net.Addr
	io     udpio.Conn // socket engine replies leave through

	wbatch []udpio.Message // coalescing scratch for pumpLocked

	inbox       chan datagram
	events      chan core.Event
	established bool
	timerStop   chan struct{}
	stopOnce    sync.Once

	// Scheduling state (see Server.schedule / runSession): the worker the
	// session has affinity to, its position in that worker's intrusive run
	// queue, the ownership token, and the pending-pump flag the timer loop
	// sets.
	wkr       *worker
	next      *Session
	scheduled atomic.Bool
	pumpDue   atomic.Bool

	// lastActive is the UnixNano of the last inbound datagram or local
	// send — what generation rotation consults before retiring an
	// association that never promoted itself via inbound traffic.
	lastActive atomic.Int64

	// Deadline-heap bookkeeping, guarded by Server.timerMu.
	deadline time.Time
	heapIdx  int
}

func newSession(srv *Server, ep *core.Endpoint, assoc uint64, peer net.Addr, via udpio.Conn) *Session {
	sess := &Session{
		server:    srv,
		assoc:     assoc,
		ep:        ep,
		peer:      peer,
		io:        via,
		inbox:     make(chan datagram, srv.opts.inboxSize()),
		events:    make(chan core.Event, srv.opts.eventBuffer()),
		timerStop: make(chan struct{}),
		heapIdx:   -1,
	}
	sess.wkr = &srv.workers[assoc%uint64(len(srv.workers))]
	sess.lastActive.Store(time.Now().UnixNano())
	return sess
}

// Peer returns the remote address.
func (s *Session) Peer() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer
}

// Events returns the engine event stream.
func (s *Session) Events() <-chan core.Event { return s.events }

// Endpoint exposes the engine for stats; do not call engine methods.
func (s *Session) Endpoint() *core.Endpoint { return s.ep }

// Send queues a protected message to this session's peer.
func (s *Session) Send(payload []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ep == nil {
		return 0, ErrClosed
	}
	now := time.Now()
	id, err := s.ep.Send(now, payload)
	if err != nil {
		return 0, err
	}
	s.lastActive.Store(now.UnixNano())
	s.pumpLocked(now)
	return id, nil
}

// Flush forces partial batches out.
func (s *Session) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	s.ep.Flush(now)
	s.lastActive.Store(now.UnixNano())
	s.pumpLocked(now)
}

// Close detaches the session from the server.
func (s *Session) Close() error {
	s.stop()
	s.server.remove(s.assoc)
	return nil
}

func (s *Session) stop() {
	s.stopOnce.Do(func() { close(s.timerStop) })
}

// stopped reports whether stop has run (Close, expiry, or server
// shutdown).
func (s *Session) stopped() bool {
	select {
	case <-s.timerStop:
		return true
	default:
		return false
	}
}

// handle feeds one datagram into the session's engine. The engine copies
// everything it keeps, so data may be recycled once this returns. Called
// only by the session's current owner (see runSession).
func (s *Session) handle(now time.Time, from net.Addr, via udpio.Conn, data []byte, srv *Server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from != nil {
		s.peer = from // track peer mobility (ALPHA identity is the chain, not the address)
	}
	if via != nil {
		s.io = via // replies follow the socket the kernel picked for this flow
	}
	evs, _ := s.ep.Handle(now, data)
	for _, ev := range evs {
		if ev.Kind == core.EventEstablished && !s.established {
			s.established = true
			if !srv.announce(s) {
				// Accept backlog full: retire immediately. The initiator
				// will see its subsequent traffic dropped as unknown.
				s.stop()
				srv.remove(s.assoc)
				return
			}
		}
		s.forwardEvent(ev)
	}
	s.pumpLocked(now)
}

// forwardEvent hands one engine event to the consumer (best-effort, counted
// when the channel is full) and fires the flight recorder on chain-pressure
// anomalies. Callers hold s.mu.
func (s *Session) forwardEvent(ev core.Event) {
	if ev.Kind == core.EventChainLow && s.server.flight != nil {
		s.server.flight.Trigger(s.assoc, obs.CauseChainLow)
	}
	select {
	case s.events <- ev:
	default:
		s.server.tel.EventDrops.Inc()
	}
}

// pumpLocked drains the engine outbox through the coalescing writer: the
// whole Poll harvest — an ALPHA-C/M burst's S2s plus its S1 — leaves in
// one WriteBatch, hence (on Linux) one sendmmsg. It then re-arms the
// session's slot on the shared deadline heap from the engine's next
// timeout. Callers hold s.mu.
func (s *Session) pumpLocked(now time.Time) {
	out, evs := s.ep.Poll(now)
	for _, ev := range evs {
		s.forwardEvent(ev)
	}
	srv := s.server
	if s.peer != nil && len(out) > 0 {
		ms := s.wbatch[:0]
		for _, raw := range out {
			if srv.io.Prefilter {
				packet.StampCookie(raw, srv.stampIP, srv.stampPort)
			}
			ms = append(ms, udpio.Message{Buf: raw, N: len(raw), Addr: s.peer})
		}
		s.wbatch = ms
		s.io.WriteBatch(ms)
	}
	next, ok := s.ep.NextTimeout()
	srv.armTimer(s, next, ok)
}

// ErrServerClosed reports operations on a closed server.
var ErrServerClosed = errors.New("udptransport: server closed")
