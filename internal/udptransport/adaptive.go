// Runtime profile control over UDP: serialized SetProfile wrappers and the
// background sampling loop that lets internal/adaptive steer a live
// connection, plus the per-association scrape-time metric families that
// make the controller observable in production.

package udptransport

import (
	"fmt"
	"time"

	"alpha/internal/adaptive"
	"alpha/internal/core"
	"alpha/internal/telemetry"
)

// SetProfile switches the association's Mode/BatchSize at the next
// exchange boundary (see core.Endpoint.SetProfile). Safe for concurrent
// use; the engine is re-pumped immediately so a re-batched queue drains
// under the new profile without waiting for the next timer tick.
func (c *Conn) SetProfile(p core.Profile) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	if err := c.ep.SetProfile(now, p); err != nil {
		return err
	}
	c.pumpLocked(now)
	return nil
}

// Profile returns the profile new exchanges currently use.
func (c *Conn) Profile() core.Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ep.Profile()
}

// SetChainLowFraction retunes the EventChainLow / auto-rekey threshold.
func (c *Conn) SetChainLowFraction(f float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ep.SetChainLowFraction(f)
}

// EnableAdaptive starts a closed-loop controller on this connection: a
// background goroutine samples the endpoint every cfg.Interval and applies
// changed decisions under the connection lock. It stops when the
// connection closes. Call at most once per connection; the returned
// controller is live (its telemetry sinks keep updating) but must not be
// fed samples by the caller.
func (c *Conn) EnableAdaptive(cfg adaptive.Config) *adaptive.Controller {
	c.mu.Lock()
	ctrl := adaptive.ForEndpoint(cfg, c.ep)
	c.mu.Unlock()
	interval := cfg.Interval
	if interval <= 0 {
		interval = adaptive.DefaultInterval
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.closed:
				return
			case <-ticker.C:
			}
			now := time.Now()
			c.mu.Lock()
			if d, err := adaptive.Drive(ctrl, c.ep, now); err == nil && d.Changed {
				c.pumpLocked(now)
			}
			c.mu.Unlock()
		}
	}()
	return ctrl
}

// SetProfile switches this session's Mode/BatchSize at the next exchange
// boundary. Safe for concurrent use.
func (s *Session) SetProfile(p core.Profile) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ep == nil {
		return ErrClosed
	}
	now := time.Now()
	if err := s.ep.SetProfile(now, p); err != nil {
		return err
	}
	s.pumpLocked(now)
	return nil
}

// Profile returns the profile new exchanges currently use.
func (s *Session) Profile() core.Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ep.Profile()
}

// SetChainLowFraction retunes the EventChainLow / auto-rekey threshold.
func (s *Session) SetChainLowFraction(f float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ep.SetChainLowFraction(f)
}

// EnableAdaptive starts a closed-loop controller on this session,
// stopping when the session or server closes. Call at most once.
func (s *Session) EnableAdaptive(cfg adaptive.Config) *adaptive.Controller {
	s.mu.Lock()
	ctrl := adaptive.ForEndpoint(cfg, s.ep)
	s.mu.Unlock()
	interval := cfg.Interval
	if interval <= 0 {
		interval = adaptive.DefaultInterval
	}
	s.server.wg.Add(1)
	go func() {
		defer s.server.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.timerStop:
				return
			case <-s.server.closed:
				return
			case <-ticker.C:
			}
			now := time.Now()
			s.mu.Lock()
			if d, err := adaptive.Drive(ctrl, s.ep, now); err == nil && d.Changed {
				s.pumpLocked(now)
			}
			s.mu.Unlock()
		}
	}()
	return ctrl
}

// SessionGroups returns a scrape-time group producer that exports every
// live session's endpoint metrics as one labeled family per association
// (prefix{assoc="<16-hex id>"}). Register it with
// Exporter.RegisterDynamic; membership follows session churn with no
// per-session registration, and the walkers are the sessions' live atomic
// sets, so a scrape costs no locking beyond the routing-table shards.
func (s *Server) SessionGroups(prefix string) telemetry.GroupFunc {
	return func(emit func(prefix, labels string, w telemetry.Walker)) {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			for assoc, sess := range sh.cur {
				emit(prefix, fmt.Sprintf("assoc=%q", fmt.Sprintf("%016x", assoc)), sess.ep.Telemetry())
			}
			for assoc, sess := range sh.old {
				emit(prefix, fmt.Sprintf("assoc=%q", fmt.Sprintf("%016x", assoc)), sess.ep.Telemetry())
			}
			sh.mu.Unlock()
		}
	}
}
