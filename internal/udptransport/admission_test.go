package udptransport

import (
	"crypto/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"alpha/internal/admission"
	"alpha/internal/core"
	"alpha/internal/packet"
)

func admissionPair(t *testing.T) (*admission.Issuer, *admission.Verifier) {
	t.Helper()
	var key admission.Key
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	issuer, err := admission.NewIssuer(1, key)
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := admission.NewVerifier(admission.VerifierConfig{
		Require: true,
		Keys:    map[uint8]admission.Key{1: key},
	})
	if err != nil {
		t.Fatal(err)
	}
	return issuer, verifier
}

// tokenSource mints a fresh anchor-bound token for the dialing socket's
// real source address — the client half of the admission handshake.
func tokenSource(issuer *admission.Issuer, pc net.PacketConn) func(sig, ack []byte) ([]byte, error) {
	ip, port := addrIPPort(pc.LocalAddr())
	return func(sig, ack []byte) ([]byte, error) {
		return issuer.Mint(time.Now(), time.Minute, ip, port, sig, ack)
	}
}

func TestUDPTokenedHandshake(t *testing.T) {
	issuer, verifier := admissionPair(t)
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	srv := NewServerWith(cfg, ServerOptions{Admission: verifier}, spc)
	defer srv.Close()

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dialCfg := cfg
	dialCfg.TokenSource = tokenSource(issuer, pc)
	c, err := Dial(pc, spc.LocalAddr(), dialCfg, 5*time.Second)
	if err != nil {
		t.Fatalf("tokened dial refused: %v", err)
	}
	defer c.Close()
	sess, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send([]byte("admitted")); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-sess.Events():
			if ev.Kind == core.EventDelivered && string(ev.Payload) == "admitted" {
				goto delivered
			}
		case <-deadline:
			t.Fatal("payload never delivered through admitted session")
		}
	}
delivered:
	m := verifier.Metrics()
	if m.TokensVerified.Load() == 0 {
		t.Fatal("handshake completed without a verified token")
	}
	// The dialer minted with real anchors, so admission also pre-bound them.
	if m.AnchorsBound.Load() == 0 {
		t.Fatal("anchor-bound token did not register anchor binding")
	}
}

func TestUDPTokenlessHS1Dropped(t *testing.T) {
	_, verifier := admissionPair(t)
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	srv := NewServerWith(cfg, ServerOptions{Admission: verifier}, spc)
	defer srv.Close()

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := Dial(pc, spc.LocalAddr(), cfg, 400*time.Millisecond); err == nil {
		t.Fatal("token-less dial succeeded against a Require verifier")
	}
	if got := verifier.Metrics().Missing.Load(); got == 0 {
		t.Fatal("drop_admission_missing never counted")
	}
	if srv.Sessions() != 0 {
		t.Fatalf("token-less HS1 allocated %d sessions", srv.Sessions())
	}
}

func TestUDPForgedTokenDropped(t *testing.T) {
	_, verifier := admissionPair(t)
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	srv := NewServerWith(cfg, ServerOptions{Admission: verifier}, spc)
	defer srv.Close()

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	dialCfg := cfg
	dialCfg.TokenSource = func(sig, ack []byte) ([]byte, error) {
		tok := make([]byte, admission.TokenLen)
		if _, err := rand.Read(tok); err != nil {
			return nil, err
		}
		tok[0] = admission.TokenVersion
		return tok, nil
	}
	if _, err := Dial(pc, spc.LocalAddr(), dialCfg, 400*time.Millisecond); err == nil {
		t.Fatal("forged token admitted")
	}
	if got := verifier.Metrics().Invalid.Load(); got == 0 {
		t.Fatal("drop_admission_invalid never counted")
	}
}

// TestUDPFloodedServerStillAdmits hammers a live server with token-less
// HS1s from a separate socket while a legitimate tokened client completes a
// handshake and a payload exchange. The flood must neither starve the
// handshake nor leak sessions; every flood datagram lands in exactly one
// drop_admission_* counter.
func TestUDPFloodedServerStillAdmits(t *testing.T) {
	issuer, verifier := admissionPair(t)
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64}
	srv := NewServerWith(cfg, ServerOptions{Admission: verifier}, spc)
	defer srv.Close()

	// Attacker: blast junk HS1s as fast as the socket allows.
	stop := make(chan struct{})
	defer close(stop)
	var flooded atomic.Uint64
	apc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer apc.Close()
	junk := make([]byte, 20)
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeHS1, Suite: 1, Flags: core.FlagInitiator, Assoc: 0xF100D,
	}, &packet.Handshake{Initiator: true, SigAnchor: junk, AckAnchor: junk, ChainLen: 64, Nonce: junk})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		hdr := append([]byte(nil), raw...)
		// ~10k pkt/s: three orders of magnitude over the legitimate
		// handshake's packet rate, but paced so the test measures the
		// admission tier rather than loopback socket starvation.
		tick := time.NewTicker(100 * time.Microsecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			// Fresh association ID per packet, like a real source-spoofed
			// flood; the admission tier must stay stateless regardless.
			hdr[10] = byte(i)
			hdr[11] = byte(i >> 8)
			if _, err := apc.WriteTo(hdr, spc.LocalAddr()); err != nil {
				return
			}
			flooded.Add(1)
		}
	}()

	// Wait until the server is demonstrably under fire before dialing, so
	// the handshake really happens mid-flood.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if verifier.Metrics().Missing.Load() > 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flood never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	// Victim-side legitimate client, dialing mid-flood.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dialCfg := cfg
	dialCfg.TokenSource = tokenSource(issuer, pc)
	c, err := Dial(pc, spc.LocalAddr(), dialCfg, 5*time.Second)
	if err != nil {
		t.Fatalf("legitimate dial failed under flood: %v", err)
	}
	defer c.Close()
	sess, err := srv.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send([]byte("under-fire")); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	deadline := time.After(5 * time.Second)
	for delivered := false; !delivered; {
		select {
		case ev := <-sess.Events():
			delivered = ev.Kind == core.EventDelivered && string(ev.Payload) == "under-fire"
		case <-deadline:
			t.Fatal("flood starved the legitimate exchange")
		}
	}

	if srv.Sessions() != 1 {
		t.Fatalf("flood leaked server sessions: %d", srv.Sessions())
	}
	m := verifier.Metrics()
	if m.Missing.Load() == 0 {
		t.Fatal("flood produced no drop_admission_missing")
	}
	sum := m.Missing.Load() + m.Invalid.Load() + m.Expired.Load() +
		m.Replayed.Load() + m.AddrMismatch.Load()
	if got := m.Dropped.Load(); got != sum {
		t.Fatalf("dropped=%d but per-reason sum=%d", got, sum)
	}
	t.Logf("flood sent=%d dropped=%d", flooded.Load(), m.Dropped.Load())
}
