// Glue between the controller and a live core.Endpoint: sampling its
// telemetry and applying decisions through SetProfile.

package adaptive

import (
	"time"

	"alpha/internal/core"
)

// SampleEndpoint builds a Sample from a live sender-side endpoint. Counter
// reads are atomic loads; QueueDepth and InFlight read engine state, so
// like every endpoint method this must run on the goroutine that owns the
// endpoint. Allocation-free.
func SampleEndpoint(ep *core.Endpoint, now time.Time) Sample {
	tel := ep.Telemetry()
	return Sample{
		Now:            now,
		SentS2:         tel.SentS2.Load(),
		Retransmits:    tel.Retransmits.Load(),
		Acked:          tel.Acked.Load(),
		Nacked:         tel.Nacked.Load(),
		PayloadBytes:   tel.PayloadBytes.Load(),
		AckLatencyNS:   tel.AckLatencyNS.Load(),
		QueueDepth:     ep.QueueLen(),
		InFlight:       ep.InFlight(),
		ChainRemaining: int(tel.SigChainRemaining.Load()),
		ChainLen:       int(tel.SigChainLen.Load()),
	}
}

// Drive runs one observe-decide-apply iteration: sample the endpoint, feed
// the controller, and commit a changed decision via SetProfile (which takes
// effect at the next exchange boundary). Call it from the endpoint's timer
// loop at roughly the controller's Interval; extra calls are cheap holds.
func Drive(c *Controller, ep *core.Endpoint, now time.Time) (Decision, error) {
	d := c.Observe(SampleEndpoint(ep, now))
	if d.Changed {
		if err := ep.SetProfile(now, core.Profile{Mode: d.Mode, BatchSize: d.BatchSize}); err != nil {
			return d, err
		}
	}
	return d, nil
}

// ForEndpoint creates a controller initialized from the endpoint's current
// profile and association, wiring the endpoint's tracer-compatible assoc id
// into cfg when unset.
func ForEndpoint(cfg Config, ep *core.Endpoint) *Controller {
	if cfg.Assoc == 0 {
		cfg.Assoc = ep.Assoc()
	}
	p := ep.Profile()
	return New(cfg, p.Mode, p.BatchSize)
}
