// Package adaptive closes ALPHA's observe-decide-apply loop: it watches a
// live association's telemetry and decides which Mode/BatchSize profile the
// link deserves right now.
//
// ALPHA's modes are points on an overhead/latency/robustness trade-off
// (§3.3 of the paper): Basic minimizes latency and per-hop state for
// interactive low-rate traffic, ALPHA-C minimizes bytes on the wire when
// loss is low, and ALPHA-M amortizes the S1/A1 round trip over a large
// batch n so lossy bulk transfer keeps its pipeline full despite RTO
// stalls. The paper picks the point at association setup; this package
// makes the choice continuous, which is the "adaptive" half of the title.
//
// The controller is deliberately boring control theory:
//
//   - Signals are EWMA-smoothed deltas of the endpoint's atomic counters —
//     retransmission ratio standing in for path loss, ack RTT, payload
//     goodput — plus instantaneous queue backlog and hash-chain depletion.
//   - Decisions pass through three dampers before they touch the endpoint:
//     hysteresis (enter/exit thresholds differ, so a signal hovering at one
//     threshold cannot oscillate the mode), confirmation (a target must win
//     Confirm consecutive samples), and cool-down (a minimum dwell time
//     between transitions). A transition that still reverses the previous
//     one within FlapWindow is counted as a flap — the controller's own
//     quality metric, expected to stay at zero in steady scenarios.
//   - Applying a decision is delegated to core.Endpoint.SetProfile, which
//     switches at the exchange boundary; the controller never needs to know
//     about wire formats or in-flight state.
//
// Observe is allocation-free: all state is fixed-size value types and all
// metric updates are atomic stores, so controllers can run per association
// at any sampling rate without disturbing the hot path.
package adaptive

import (
	"time"

	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// Default tuning. Values are deliberately conservative: the controller
// prefers staying put over chasing noise.
const (
	DefaultInterval   = 250 * time.Millisecond
	DefaultCooldown   = 2 * time.Second
	DefaultConfirm    = 2
	DefaultFlapWindow = 10 * time.Second
	DefaultLossEnterM = 0.05  // retransmit ratio that engages ALPHA-M
	DefaultLossExitM  = 0.015 // ratio below which ALPHA-M disengages
	DefaultLowRate    = 2048  // B/s under which Basic serves interactive flows
	DefaultHighRate   = 8192  // B/s above which batching re-engages
	DefaultMinBatch   = 16
	DefaultMaxBatch   = 64
	DefaultEWMAAlpha  = 0.3
)

// Config tunes one Controller. The zero value selects every default, so
// Config{} is a working configuration.
type Config struct {
	// Interval is the minimum time between accepted samples; Observe calls
	// arriving sooner return a hold without touching the estimators.
	Interval time.Duration
	// Cooldown is the minimum dwell time between applied transitions.
	Cooldown time.Duration
	// Confirm is how many consecutive samples must agree on a target
	// profile before it becomes a decision.
	Confirm int
	// FlapWindow bounds flap detection: a transition that reverses the
	// previous one within this window increments the Flaps counter.
	FlapWindow time.Duration

	// LossEnterM / LossExitM are the smoothed retransmission-ratio
	// hysteresis thresholds around ALPHA-M. Enter must exceed Exit.
	LossEnterM, LossExitM float64
	// LowRate / HighRate are the goodput hysteresis thresholds (bytes/s)
	// around Basic: below LowRate the flow is interactive and drops to
	// Basic, above HighRate batching re-engages.
	LowRate, HighRate float64
	// MinBatch / MaxBatch bound the batch size n. ALPHA-C always runs at
	// MinBatch; ALPHA-M starts at MinBatch and doubles toward MaxBatch
	// while loss persists.
	MinBatch, MaxBatch int
	// EWMAAlpha is the smoothing weight of the newest sample, in (0, 1].
	EWMAAlpha float64

	// Assoc labels trace records; Metrics and Tracer are optional sinks.
	Assoc   uint64
	Metrics *telemetry.ControllerMetrics
	Tracer  *telemetry.Tracer
	// OnFlap, if set, fires when a transition reverses the previous one
	// within FlapWindow — the hook flight recorders use to freeze the
	// association's span history around the oscillation.
	OnFlap func(assoc uint64)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.Confirm <= 0 {
		c.Confirm = DefaultConfirm
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = DefaultFlapWindow
	}
	if c.LossEnterM == 0 {
		c.LossEnterM = DefaultLossEnterM
	}
	if c.LossExitM == 0 {
		c.LossExitM = DefaultLossExitM
	}
	if c.LowRate == 0 {
		c.LowRate = DefaultLowRate
	}
	if c.HighRate == 0 {
		c.HighRate = DefaultHighRate
	}
	if c.MinBatch == 0 {
		c.MinBatch = DefaultMinBatch
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = DefaultEWMAAlpha
	}
	return c
}

// Sample is one observation of an association, taken from the sender-side
// endpoint. Counter fields are cumulative (the controller differences
// consecutive samples itself), gauge fields are instantaneous.
type Sample struct {
	Now time.Time

	// Cumulative counters, straight from telemetry.EndpointMetrics.
	SentS2       uint64
	Retransmits  uint64
	Acked        uint64
	Nacked       uint64
	PayloadBytes uint64
	AckLatencyNS uint64 // sum over all acks; mean = Δsum/Δacked

	// Instantaneous state.
	QueueDepth     int // messages queued but not yet in an exchange
	InFlight       int // open exchanges
	ChainRemaining int
	ChainLen       int
}

// Reason explains a Decision.
type Reason uint8

const (
	// ReasonHold: no change (warm-up, interval gating, cool-down,
	// confirmation pending, or the target equals the active profile).
	ReasonHold Reason = iota
	// ReasonLossHigh: smoothed loss crossed LossEnterM; ALPHA-M engaged.
	ReasonLossHigh
	// ReasonLossPersist: loss stayed high in ALPHA-M; batch size doubled.
	ReasonLossPersist
	// ReasonLossLow: smoothed loss fell under LossExitM; ALPHA-C resumed.
	ReasonLossLow
	// ReasonIdle: goodput fell under LowRate; Basic serves the flow.
	ReasonIdle
	// ReasonBulk: goodput rose over HighRate; batching re-engaged.
	ReasonBulk
	// ReasonChainPressure: chains deplete fast; larger batches stretch the
	// remaining pairs further (one pair per exchange regardless of n).
	ReasonChainPressure
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonHold:
		return "hold"
	case ReasonLossHigh:
		return "loss_high"
	case ReasonLossPersist:
		return "loss_persist"
	case ReasonLossLow:
		return "loss_low"
	case ReasonIdle:
		return "idle"
	case ReasonBulk:
		return "bulk"
	case ReasonChainPressure:
		return "chain_pressure"
	default:
		return "unknown"
	}
}

// Decision is the controller's output for one sample. When Changed is
// false the profile repeats the previous decision and Reason is
// ReasonHold; callers only need to act on Changed decisions.
type Decision struct {
	Mode      packet.Mode
	BatchSize int
	Changed   bool
	Reason    Reason
}

// Controller is a per-association feedback controller. It is a pure state
// machine — callers feed it Samples (SampleEndpoint builds one from a live
// endpoint) and apply Changed decisions via Endpoint.SetProfile. Not safe
// for concurrent use; drive it from the goroutine that owns the endpoint,
// exactly like the endpoint itself.
type Controller struct {
	cfg Config

	// Active profile (what the endpoint runs) and proposal state.
	mode     packet.Mode
	batch    int
	proposed Decision // candidate awaiting confirmation
	agree    int      // consecutive samples agreeing with proposed

	// Previous profile + transition time, for flap detection and cooldown.
	prevMode    packet.Mode
	prevBatch   int
	lastChange  time.Time
	haveChanged bool

	// Estimators.
	last     Sample // previous accepted sample
	haveLast bool
	lossEWMA float64 // retransmission ratio, 0..1
	rttEWMA  float64 // ns
	rateEWMA float64 // payload bytes/s

	decisions uint32 // ordinal for trace records
}

// New creates a controller that assumes the association currently runs the
// given profile (pass Endpoint.Profile()).
func New(cfg Config, current packet.Mode, batch int) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, mode: current, batch: batch}
	if m := cfg.Metrics; m != nil {
		m.TargetMode.Set(int64(current))
		m.TargetBatch.Set(int64(batch))
	}
	return c
}

// Profile returns the profile of the last decision.
func (c *Controller) Profile() (packet.Mode, int) { return c.mode, c.batch }

// Loss returns the smoothed retransmission ratio in [0, 1].
func (c *Controller) Loss() float64 { return c.lossEWMA }

// Rate returns the smoothed goodput estimate in bytes/s.
func (c *Controller) Rate() float64 { return c.rateEWMA }

// hold reports the unchanged profile.
func (c *Controller) hold() Decision {
	if m := c.cfg.Metrics; m != nil {
		m.Holds.Inc()
	}
	return Decision{Mode: c.mode, BatchSize: c.batch, Reason: ReasonHold}
}

// Observe feeds one sample and returns the controller's decision. The
// first sample only seeds the estimators. Allocation-free.
func (c *Controller) Observe(s Sample) Decision {
	if m := c.cfg.Metrics; m != nil {
		m.Samples.Inc()
		m.QueueDepth.Set(int64(s.QueueDepth))
	}
	if !c.haveLast {
		c.last, c.haveLast = s, true
		return c.hold()
	}
	dt := s.Now.Sub(c.last.Now)
	if dt < c.cfg.Interval {
		return c.hold() // sampled too soon; keep estimator cadence stable
	}
	c.update(s, dt)
	target, reason := c.target(s)

	// Confirmation: the same non-hold target must win Confirm consecutive
	// samples. A changing target restarts the count.
	if target.Mode == c.mode && target.BatchSize == c.batch {
		c.agree = 0
		return c.hold()
	}
	if target.Mode == c.proposed.Mode && target.BatchSize == c.proposed.BatchSize {
		c.agree++
	} else {
		c.proposed, c.agree = Decision{Mode: target.Mode, BatchSize: target.BatchSize}, 1
	}
	if c.agree < c.cfg.Confirm {
		return c.hold()
	}
	// Cool-down: recent transitions pin the profile.
	if c.haveChanged && s.Now.Sub(c.lastChange) < c.cfg.Cooldown {
		return c.hold()
	}
	return c.apply(s.Now, target.Mode, target.BatchSize, reason)
}

// update advances the EWMAs from the delta between s and the last sample.
func (c *Controller) update(s Sample, dt time.Duration) {
	a := c.cfg.EWMAAlpha
	dSent := s.SentS2 - c.last.SentS2
	dRetr := (s.Retransmits - c.last.Retransmits) + (s.Nacked - c.last.Nacked)
	if dSent+dRetr > 0 {
		loss := float64(dRetr) / float64(dSent+dRetr)
		c.lossEWMA += a * (loss - c.lossEWMA)
	}
	if dAck := s.Acked - c.last.Acked; dAck > 0 {
		rtt := float64(s.AckLatencyNS-c.last.AckLatencyNS) / float64(dAck)
		c.rttEWMA += a * (rtt - c.rttEWMA)
	}
	rate := float64(s.PayloadBytes-c.last.PayloadBytes) / dt.Seconds()
	c.rateEWMA += a * (rate - c.rateEWMA)
	c.last = s

	if m := c.cfg.Metrics; m != nil {
		m.LossPPM.Set(int64(c.lossEWMA * 1e6))
		m.AckRTTNS.Set(int64(c.rttEWMA))
		m.GoodputBps.Set(int64(c.rateEWMA))
		if s.ChainLen > 0 {
			spent := float64(s.ChainLen-s.ChainRemaining) / float64(s.ChainLen)
			m.ChainSpentPPM.Set(int64(spent * 1e6))
		}
	}
}

// target maps the current estimator state onto the profile the link
// deserves, with the reason a transition to it would carry.
//
// Hysteresis is the Schmitt-trigger form: entering a state compares the
// estimate against the outer threshold, staying in it against the inner
// one, so an estimate wandering inside the band never changes the answer —
// and a brief spike that only clears the inner band proposes nothing,
// which lets the confirmation counter reset and damp it.
func (c *Controller) target(s Sample) (Decision, Reason) {
	var quiet bool
	if c.mode == packet.ModeBase {
		quiet = c.rateEWMA <= c.cfg.HighRate && s.QueueDepth == 0
	} else {
		quiet = c.rateEWMA < c.cfg.LowRate && s.QueueDepth == 0 && s.InFlight <= 1
	}
	var lossy bool
	if c.mode == packet.ModeM {
		lossy = c.lossEWMA >= c.cfg.LossExitM
	} else {
		lossy = c.lossEWMA > c.cfg.LossEnterM
	}
	switch {
	case quiet:
		// Interactive trickle: no batch to amortize over, so Basic's
		// immediacy wins and per-hop state stays minimal.
		return Decision{Mode: packet.ModeBase, BatchSize: 1}, ReasonIdle
	case lossy:
		// Lossy bulk: ALPHA-M keeps the pipeline full through RTO stalls.
		// While loss persists above the enter threshold at the current
		// batch, grow n toward MaxBatch — each doubling halves the
		// per-payload share of the S1/A1 round trip and of the chain pair
		// the exchange consumes.
		if c.mode == packet.ModeM {
			n := c.batch * 2
			if n > c.cfg.MaxBatch {
				n = c.cfg.MaxBatch
			}
			if n != c.batch && c.lossEWMA > c.cfg.LossEnterM {
				return Decision{Mode: packet.ModeM, BatchSize: n}, ReasonLossPersist
			}
			return Decision{Mode: packet.ModeM, BatchSize: c.batch}, ReasonHold
		}
		return Decision{Mode: packet.ModeM, BatchSize: c.cfg.MinBatch}, ReasonLossHigh
	case s.ChainLen > 0 && float64(s.ChainRemaining) < float64(s.ChainLen)/4 &&
		c.mode != packet.ModeM:
		// Chains deplete one pair per exchange whatever n is, so pressure
		// on the chain argues for stretching each exchange further while
		// the rekey catches up.
		return Decision{Mode: packet.ModeM, BatchSize: c.cfg.MaxBatch}, ReasonChainPressure
	default:
		// Clean, busy link: ALPHA-C's cumulative MACs are the byte-leanest
		// way to authenticate a batch.
		reason := ReasonLossLow
		if c.mode == packet.ModeBase {
			reason = ReasonBulk
		}
		return Decision{Mode: packet.ModeC, BatchSize: c.cfg.MinBatch}, reason
	}
}

// apply commits a transition and emits its records.
func (c *Controller) apply(now time.Time, mode packet.Mode, batch int, reason Reason) Decision {
	flap := c.haveChanged && mode == c.prevMode && batch == c.prevBatch &&
		now.Sub(c.lastChange) < c.cfg.FlapWindow
	c.prevMode, c.prevBatch = c.mode, c.batch
	c.mode, c.batch = mode, batch
	c.lastChange, c.haveChanged = now, true
	c.proposed, c.agree = Decision{}, 0
	c.decisions++

	if m := c.cfg.Metrics; m != nil {
		m.Decisions.Inc()
		m.TargetMode.Set(int64(mode))
		m.TargetBatch.Set(int64(batch))
		if flap {
			m.Flaps.Inc()
		}
	}
	if flap && c.cfg.OnFlap != nil {
		c.cfg.OnFlap(c.cfg.Assoc)
	}
	c.cfg.Tracer.Trace(now.UnixNano(), telemetry.TraceAdaptiveDecision,
		c.cfg.Assoc, c.decisions, uint32(mode)<<16|uint32(batch))
	return Decision{Mode: mode, BatchSize: batch, Changed: true, Reason: reason}
}
