package adaptive

import (
	"testing"
	"time"

	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// harness feeds a controller synthetic samples with controlled deltas.
type harness struct {
	c   *Controller
	now time.Time
	s   Sample
}

func newHarness(cfg Config, mode packet.Mode, batch int) *harness {
	h := &harness{
		c:   New(cfg, mode, batch),
		now: time.Unix(1000, 0),
	}
	h.s = Sample{Now: h.now, ChainRemaining: 900, ChainLen: 1000, QueueDepth: 4}
	h.c.Observe(h.s) // seed the estimators
	return h
}

// step advances one sampling interval with the given per-interval deltas
// and returns the controller's decision.
func (h *harness) step(sent, retr, payload uint64) Decision {
	h.now = h.now.Add(250 * time.Millisecond)
	h.s.Now = h.now
	h.s.SentS2 += sent
	h.s.Retransmits += retr
	h.s.Acked += sent
	h.s.PayloadBytes += payload
	h.s.AckLatencyNS += sent * uint64(40*time.Millisecond)
	return h.c.Observe(h.s)
}

// bulk/lossy/clean are per-interval traffic shapes: 16 packets carrying
// 16 KiB per 250ms ≈ 64 KiB/s, far above the HighRate default.
func (h *harness) clean() Decision { return h.step(16, 0, 16384) }
func (h *harness) lossy() Decision { return h.step(16, 4, 16384) } // 20% retransmit ratio

func TestFirstSampleSeedsOnly(t *testing.T) {
	h := newHarness(Config{}, packet.ModeC, 16)
	if d := h.clean(); d.Changed {
		t.Fatalf("second sample changed profile: %+v", d)
	}
	if got := h.c.Rate(); got <= 0 {
		t.Fatalf("rate estimator not seeded: %v", got)
	}
}

func TestLossEngagesAndGrowsM(t *testing.T) {
	h := newHarness(Config{Cooldown: 500 * time.Millisecond}, packet.ModeC, 16)
	var d Decision
	for i := 0; i < 20 && !d.Changed; i++ {
		d = h.lossy()
	}
	if !d.Changed || d.Mode != packet.ModeM || d.BatchSize != DefaultMinBatch {
		t.Fatalf("loss did not engage ALPHA-M at min batch: %+v", d)
	}
	if d.Reason != ReasonLossHigh {
		t.Fatalf("reason = %v, want loss_high", d.Reason)
	}
	// Persisting loss doubles the batch (after cooldown + confirmation).
	d = Decision{}
	for i := 0; i < 20 && !d.Changed; i++ {
		d = h.lossy()
	}
	if !d.Changed || d.Mode != packet.ModeM || d.BatchSize != 2*DefaultMinBatch {
		t.Fatalf("persistent loss did not double batch: %+v", d)
	}
	if d.Reason != ReasonLossPersist {
		t.Fatalf("reason = %v, want loss_persist", d.Reason)
	}
	// Growth saturates at MaxBatch.
	for i := 0; i < 60; i++ {
		d = h.lossy()
	}
	if mode, batch := h.c.Profile(); mode != packet.ModeM || batch != DefaultMaxBatch {
		t.Fatalf("batch did not saturate at max: %v/%d", mode, batch)
	}
	for i := 0; i < 10; i++ {
		if d = h.lossy(); d.Changed {
			t.Fatalf("controller kept deciding at saturation: %+v", d)
		}
	}
}

func TestLossRecoveryReturnsToC(t *testing.T) {
	h := newHarness(Config{Cooldown: 500 * time.Millisecond}, packet.ModeC, 16)
	for i := 0; i < 30; i++ {
		h.lossy()
	}
	if mode, _ := h.c.Profile(); mode != packet.ModeM {
		t.Fatalf("setup: loss never engaged M (mode %v)", mode)
	}
	var d Decision
	for i := 0; i < 60 && !(d.Changed && d.Mode == packet.ModeC); i++ {
		d = h.clean()
	}
	if d.Mode != packet.ModeC || d.BatchSize != DefaultMinBatch || d.Reason != ReasonLossLow {
		t.Fatalf("recovery did not return to C/min: %+v", d)
	}
}

func TestHysteresisHoldsBetweenThresholds(t *testing.T) {
	// Alternate lossy/clean so the EWMA settles around 10% — above
	// LossExitM once lossy, and the controller must not leave M.
	h := newHarness(Config{Cooldown: 500 * time.Millisecond}, packet.ModeC, 16)
	for i := 0; i < 30; i++ {
		h.lossy()
	}
	met := &telemetry.ControllerMetrics{}
	h.c.cfg.Metrics = met
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			h.clean()
		} else {
			h.lossy()
		}
	}
	if mode, _ := h.c.Profile(); mode != packet.ModeM {
		t.Fatalf("hovering loss flapped the mode to %v", mode)
	}
	if f := met.Flaps.Load(); f != 0 {
		t.Fatalf("flaps = %d, want 0", f)
	}
}

func TestConfirmationDampsSpikes(t *testing.T) {
	// A two-sample 20% loss burst pushes the EWMA over LossEnterM and it
	// takes two further clean samples to decay back under it, so ALPHA-M
	// collects at most three agreeing proposals; Confirm=4 outlasts the
	// spike and the mode must not switch.
	h := newHarness(Config{Confirm: 4}, packet.ModeC, 16)
	h.clean()
	for i := 0; i < 2; i++ {
		if d := h.lossy(); d.Changed {
			t.Fatalf("changed before confirmation: %+v", d)
		}
	}
	// The EWMA needs a few clean samples to fall back under LossExitM;
	// the confirmation counter must reset as soon as the target reverts.
	for i := 0; i < 30; i++ {
		if d := h.clean(); d.Changed {
			t.Fatalf("spike survived confirmation: %+v", d)
		}
	}
	if mode, _ := h.c.Profile(); mode != packet.ModeC {
		t.Fatalf("mode = %v, want C", mode)
	}
}

func TestCooldownSpacesTransitions(t *testing.T) {
	h := newHarness(Config{Cooldown: 10 * time.Second}, packet.ModeC, 16)
	var d Decision
	for i := 0; i < 20 && !d.Changed; i++ {
		d = h.lossy()
	}
	changed := h.now
	// Loss persists, batch wants to double — but the cooldown pins it.
	for h.now.Sub(changed) < 9*time.Second {
		if d = h.lossy(); d.Changed {
			t.Fatalf("transition %v after previous one (cooldown 10s): %+v", h.now.Sub(changed), d)
		}
	}
	for i := 0; i < 10 && !d.Changed; i++ {
		d = h.lossy()
	}
	if !d.Changed || d.BatchSize != 2*DefaultMinBatch {
		t.Fatalf("batch growth never resumed after cooldown: %+v", d)
	}
}

func TestIdleDropsToBasicAndBulkReengages(t *testing.T) {
	h := newHarness(Config{Cooldown: 500 * time.Millisecond}, packet.ModeC, 16)
	for i := 0; i < 5; i++ {
		h.clean()
	}
	// Trickle: one tiny payload per interval, queue empty, nothing in
	// flight — interactive traffic.
	h.s.QueueDepth, h.s.InFlight = 0, 1
	var d Decision
	for i := 0; i < 40 && !d.Changed; i++ {
		d = h.step(1, 0, 64)
	}
	if d.Mode != packet.ModeBase || d.BatchSize != 1 || d.Reason != ReasonIdle {
		t.Fatalf("trickle did not select Basic: %+v", d)
	}
	// Bulk returns: queue builds, goodput jumps.
	h.s.QueueDepth, h.s.InFlight = 8, 4
	d = Decision{}
	for i := 0; i < 40 && !d.Changed; i++ {
		d = h.clean()
	}
	if d.Mode != packet.ModeC || d.Reason != ReasonBulk {
		t.Fatalf("bulk did not re-engage batching: %+v", d)
	}
}

func TestChainPressurePrefersLargeBatches(t *testing.T) {
	h := newHarness(Config{}, packet.ModeC, 16)
	for i := 0; i < 5; i++ {
		h.clean()
	}
	h.s.ChainRemaining = 100 // 10% of 1000 left
	var d Decision
	for i := 0; i < 10 && !d.Changed; i++ {
		d = h.clean()
	}
	if d.Mode != packet.ModeM || d.BatchSize != DefaultMaxBatch || d.Reason != ReasonChainPressure {
		t.Fatalf("chain pressure did not stretch batches: %+v", d)
	}
}

func TestFlapDetection(t *testing.T) {
	met := &telemetry.ControllerMetrics{}
	h := newHarness(Config{
		Cooldown:   250 * time.Millisecond,
		Confirm:    1,
		EWMAAlpha:  0.9, // deliberately twitchy: this test wants flaps
		FlapWindow: time.Minute,
		Metrics:    met,
	}, packet.ModeC, 16)
	h.clean()
	for i := 0; i < 12; i++ {
		h.lossy()
		h.clean()
		h.clean()
	}
	if met.Flaps.Load() == 0 {
		t.Fatal("twitchy controller produced no flaps — flap detection is dead")
	}
	if met.Decisions.Load() < 2 {
		t.Fatalf("decisions = %d, want several", met.Decisions.Load())
	}
}

func TestObserveAllocationFree(t *testing.T) {
	met := &telemetry.ControllerMetrics{}
	tr := telemetry.NewTracer(64)
	h := newHarness(Config{Metrics: met, Tracer: tr, Cooldown: 250 * time.Millisecond, Confirm: 1}, packet.ModeC, 16)
	h.clean()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		// Alternate shapes so decision paths (holds and transitions) are
		// both exercised.
		if i%3 == 0 {
			h.lossy()
		} else {
			h.clean()
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
}
