// Buffer accounting, used to reproduce the memory columns of Tables 2 and 3
// of the paper from live protocol state instead of trusting the formulas.

package core

// RxBufferedBytes reports the verifier-side buffer usage of all open
// exchanges: preSig counts buffered pre-signatures (MACs or Merkle roots,
// the Table 2 "Verifier" column) and ack counts the reliable-mode
// pre-(n)ack material (Table 3).
func (e *Endpoint) RxBufferedBytes() (preSig, ack int) {
	for _, rx := range e.rx {
		preSig += rx.bufferedBytes()
		ack += rx.ackBytes()
	}
	return preSig, ack
}

// TxBufferedBytes reports the signer-side buffer usage of all in-flight
// exchanges: payload bytes awaiting acknowledgment plus retained signature
// packets (the Table 2 "Signer" column, measured on encoded state).
func (e *Endpoint) TxBufferedBytes() (payload, sig int) {
	for _, x := range e.tx {
		for _, m := range x.msgs {
			payload += len(m.payload)
		}
		sig += len(x.s1)
		for _, raw := range x.s2s {
			sig += len(raw)
		}
	}
	return payload, sig
}

// RxExchanges returns the number of open receiver-side exchanges.
func (e *Endpoint) RxExchanges() int { return len(e.rx) }
