// Protected-handshake signatures (§3.4 of the paper).
//
// ALPHA limits asymmetric cryptography to bootstrapping: the anchors of a
// host's hash chains are signed once with RSA, binding the chains — and
// therefore every subsequent hash-chain disclosure — to a strong
// cryptographic identity. Everything after the handshake is pure hashing.

package core

import (
	"crypto"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"

	"alpha/internal/packet"
)

// handshakeSchemeRSA identifies RSA-PKCS#1v1.5-SHA256 anchor signatures.
const handshakeSchemeRSA = 1

// tagHandshakeV1 domain-separates handshake signature digests from every
// hash-chain computation (and from future handshake versions).
var tagHandshakeV1 = []byte("ALPHA-handshake-v1")

// handshakeDigest computes the digest a protected handshake signs: the
// association ID, chain parameters and both anchors. SHA-256 is used
// unconditionally here — the asymmetric identity should not inherit the
// possibly weaker association suite.
func handshakeDigest(assoc uint64, hs *packet.Handshake) [32]byte {
	h := sha256.New()
	h.Write(tagHandshakeV1)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], assoc)
	h.Write(b[:])
	if hs.Initiator {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	binary.BigEndian.PutUint32(b[:4], hs.ChainLen)
	h.Write(b[:4])
	h.Write(hs.SigAnchor)
	h.Write(hs.AckAnchor)
	h.Write(hs.Nonce)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// signHandshake attaches an RSA signature and public key to a handshake.
func signHandshake(key *rsa.PrivateKey, assoc uint64, hs *packet.Handshake) error {
	digest := handshakeDigest(assoc, hs)
	sig, err := rsa.SignPKCS1v15(nil, key, crypto.SHA256, digest[:])
	if err != nil {
		return fmt.Errorf("core: signing handshake: %w", err)
	}
	hs.Scheme = handshakeSchemeRSA
	hs.PubKey = x509.MarshalPKCS1PublicKey(&key.PublicKey)
	hs.Sig = sig
	return nil
}

// verifyHandshake checks a protected handshake's anchor signature and, if a
// peer-verification callback is configured, the identity behind it.
func verifyHandshake(assoc uint64, hs *packet.Handshake, verifyPeer func(*rsa.PublicKey) error) error {
	if hs.Scheme != handshakeSchemeRSA {
		return fmt.Errorf("%w: unknown signature scheme %d", ErrBadHandshake, hs.Scheme)
	}
	pub, err := x509.ParsePKCS1PublicKey(hs.PubKey)
	if err != nil {
		return fmt.Errorf("%w: bad public key: %v", ErrBadHandshake, err)
	}
	digest := handshakeDigest(assoc, hs)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], hs.Sig); err != nil {
		return fmt.Errorf("%w: anchor signature invalid", ErrBadHandshake)
	}
	if verifyPeer != nil {
		if err := verifyPeer(pub); err != nil {
			return fmt.Errorf("%w: peer rejected: %v", ErrBadHandshake, err)
		}
	}
	return nil
}
