package core

import (
	"testing"
	"time"

	"alpha/internal/packet"
	"alpha/internal/suite"
)

// harness connects two endpoints back to back with a controllable link in
// each direction, driving time manually. It is the unit-test substitute for
// the netsim package (which tests the engine over real multi-hop paths).
type harness struct {
	t    *testing.T
	a, b *Endpoint
	now  time.Time
	// dropAtoB / dropBtoA decide whether a packet is dropped in flight.
	dropAtoB func(raw []byte) bool
	dropBtoA func(raw []byte) bool
	// mangle optionally rewrites packets in flight (both directions).
	mangle func(raw []byte) []byte
	events map[*Endpoint][]Event
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	a, err := NewEndpoint(cfg)
	if err != nil {
		t.Fatalf("NewEndpoint(a): %v", err)
	}
	b, err := NewEndpoint(cfg)
	if err != nil {
		t.Fatalf("NewEndpoint(b): %v", err)
	}
	h := &harness{
		t: t, a: a, b: b,
		now:    time.Unix(1700000000, 0),
		events: make(map[*Endpoint][]Event),
	}
	return h
}

// handshake completes the association and fails the test if it does not
// establish.
func (h *harness) handshake() {
	h.t.Helper()
	hs1, err := h.a.StartHandshake(h.now)
	if err != nil {
		h.t.Fatalf("StartHandshake: %v", err)
	}
	h.deliver(h.b, hs1)
	h.run(20)
	if !h.a.Established() || !h.b.Established() {
		h.t.Fatalf("handshake did not establish: a=%v b=%v", h.a.Established(), h.b.Established())
	}
}

// deliver feeds one datagram into an endpoint and records its events.
func (h *harness) deliver(dst *Endpoint, raw []byte) {
	h.t.Helper()
	if h.mangle != nil {
		raw = h.mangle(raw)
		if raw == nil {
			return
		}
	}
	evs, err := dst.Handle(h.now, raw)
	if err != nil {
		h.t.Fatalf("Handle: %v", err)
	}
	h.events[dst] = append(h.events[dst], evs...)
}

// step polls both endpoints once and exchanges the produced packets.
func (h *harness) step() (activity bool) {
	h.t.Helper()
	outA, evA := h.a.Poll(h.now)
	h.events[h.a] = append(h.events[h.a], evA...)
	outB, evB := h.b.Poll(h.now)
	h.events[h.b] = append(h.events[h.b], evB...)
	for _, raw := range outA {
		if h.dropAtoB != nil && h.dropAtoB(raw) {
			continue
		}
		h.deliver(h.b, raw)
	}
	for _, raw := range outB {
		if h.dropBtoA != nil && h.dropBtoA(raw) {
			continue
		}
		h.deliver(h.a, raw)
	}
	return len(outA) > 0 || len(outB) > 0 || len(evA) > 0 || len(evB) > 0
}

// run steps the harness up to max rounds, advancing virtual time a little
// each round so flush timers fire.
func (h *harness) run(max int) {
	h.t.Helper()
	for i := 0; i < max; i++ {
		h.now = h.now.Add(5 * time.Millisecond)
		if !h.step() && i > 1 {
			// Two quiet rounds in a row means the exchange settled.
			h.now = h.now.Add(5 * time.Millisecond)
			if !h.step() {
				return
			}
		}
	}
}

// runFor steps the harness over a virtual duration, letting retransmission
// timers fire.
func (h *harness) runFor(d time.Duration) {
	h.t.Helper()
	end := h.now.Add(d)
	for h.now.Before(end) {
		h.now = h.now.Add(10 * time.Millisecond)
		h.step()
	}
}

// eventsOf returns (and keeps) the events an endpoint has raised.
func (h *harness) eventsOf(e *Endpoint) []Event { return h.events[e] }

// payloadsDelivered collects the payloads of Delivered events at e.
func (h *harness) payloadsDelivered(e *Endpoint) [][]byte {
	var out [][]byte
	for _, ev := range h.events[e] {
		if ev.Kind == EventDelivered {
			out = append(out, ev.Payload)
		}
	}
	return out
}

// countKind counts events of a kind at e.
func (h *harness) countKind(e *Endpoint, k EventKind) int {
	n := 0
	for _, ev := range h.events[e] {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// firstError returns the first Dropped event error at e, if any.
func (h *harness) firstDrop(e *Endpoint) *Event {
	for i, ev := range h.events[e] {
		if ev.Kind == EventDropped {
			return &h.events[e][i]
		}
	}
	return nil
}

// baseConfig returns a small, fast config for tests.
func baseConfig(mode packet.Mode, reliable bool) Config {
	return Config{
		Suite:    suite.SHA1(),
		Mode:     mode,
		Reliable: reliable,
		ChainLen: 64,
		RTO:      50 * time.Millisecond,
	}
}
