// Package core implements the ALPHA protocol engine: the signer, verifier
// and acknowledgment state machines of §3 of the paper, covering the basic
// three-way signature exchange, reliable delivery with pre-(n)acks (§3.2),
// the cumulative ALPHA-C and Merkle-tree ALPHA-M modes (§3.3), and the
// handshake that bootstraps hash chain anchors (§3.4).
//
// The engine is sans-IO: it never opens sockets, reads clocks, or sleeps.
// Callers feed it wall-clock time and received datagrams and drain encoded
// datagrams and events. The same engine therefore runs unchanged under the
// deterministic discrete-event simulator (internal/netsim), the UDP
// transport (internal/udptransport), and unit tests that hand-deliver
// packets.
//
// An Endpoint is full-duplex: it is a signer for its outgoing simplex
// channel and a verifier for the incoming one, each direction protected by
// its own signature/acknowledgment chain pair exactly as §3.1 prescribes
// ("the shared security context between two hosts A and B consists of the
// respective anchors {h^As_n, h^Aa_n, h^Bs_n, h^Ba_n}").
package core

import (
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
)

// Defaults for Config fields left zero.
const (
	DefaultChainLen       = 2048
	DefaultBatchSize      = 16
	DefaultRTO            = 200 * time.Millisecond
	DefaultMaxRetries     = 8
	DefaultMaxOutstanding = 8
	DefaultMaxRxExchanges = 128
	DefaultFlushDelay     = 2 * time.Millisecond
)

// DefaultChainLowFraction is the chain-remaining fraction below which
// EventChainLow fires when Config.ChainLowFraction is left zero.
const DefaultChainLowFraction = 1.0 / 3

// Config parameterizes an Endpoint. The zero value selects the basic
// unreliable ALPHA mode over SHA-1 with sensible defaults; see the field
// comments for the paper sections each knob corresponds to.
type Config struct {
	// Suite is the hash suite; nil selects SHA-1, the paper's default.
	Suite suite.Suite
	// Mode selects base ALPHA, ALPHA-C, or ALPHA-M (§3.3).
	Mode packet.Mode
	// Reliable enables pre-(n)ack acknowledgments (§3.2.2). With batches
	// larger than one message an Acknowledgment Merkle Tree is used
	// (§3.3.3); a single-message exchange uses the flat pre-ack pair.
	Reliable bool
	// ChainLen is the disclosable length of each hash chain; an
	// association signs ChainLen/2 exchanges per direction before it
	// must re-bootstrap. 0 selects DefaultChainLen.
	ChainLen int
	// BatchSize is the number of messages covered by one S1 in modes C,
	// M and CM ("n" throughout §3.3). Base mode ignores it.
	BatchSize int
	// CMRoots is the number of Merkle roots per S1 in mode CM ("k"): each
	// root covers ⌈BatchSize/k⌉ messages, shrinking every S2's proof by
	// log2(k) hashes at the cost of k·h bytes of relay buffer (§3.3.2's
	// combined C+M operation). 0 selects 4; other modes ignore it.
	CMRoots int
	// FlushDelay is how long a partial batch may linger before it is
	// sent anyway. 0 selects DefaultFlushDelay; negative disables the
	// timer (callers must Flush explicitly).
	FlushDelay time.Duration
	// RTO is the initial retransmission timeout for S1 and reliable S2
	// packets ("S1 and A1 packets require robust and fast
	// retransmission", §3.5). It doubles per retry.
	RTO time.Duration
	// MaxRetries bounds retransmissions before a send fails.
	MaxRetries int
	// MaxOutstanding bounds concurrent signature exchanges in flight.
	MaxOutstanding int
	// MaxRxExchanges bounds receiver-side buffered exchanges; the oldest
	// completed exchange is evicted first. This is the verifier-side
	// memory bound of Table 2.
	MaxRxExchanges int
	// CheckpointInterval selects memory-constrained chain storage: if
	// positive, chains store one element per interval and recompute the
	// rest (the sensor-node trade-off of §4.1.3). 0 stores all elements.
	CheckpointInterval int
	// ChainLowFraction is the fraction of a chain's disclosable length
	// below which EventChainLow fires (and AutoRekey engages): the rekey
	// pressure knob. 0 selects 1/3, the historical default; otherwise it
	// must lie in (0, 1). Tunable per association at runtime with
	// Endpoint.SetChainLowFraction.
	ChainLowFraction float64
	// Coalesce packs multiple outgoing packets of one Poll into bundle
	// datagrams (§3.2.1: combining A and S packets of independent simplex
	// channels), up to CoalesceLimit bytes each. Fewer datagrams means
	// fewer radio wakeups and per-packet header costs on wireless links.
	Coalesce bool
	// CoalesceLimit caps bundle size in bytes; 0 selects 1400 (a safe
	// Ethernet/Wi-Fi MTU budget).
	CoalesceLimit int
	// AutoRekey rotates the local hash chains in-band once they run low
	// (see Endpoint.Rekey), keeping the association alive indefinitely.
	// Requires Reliable mode.
	AutoRekey bool
	// Identity, if set, signs handshake anchors with RSA, upgrading the
	// unprotected handshake to the protected one of §3.4.
	Identity *rsa.PrivateKey
	// VerifyPeer, if set, is called with the peer's public key during a
	// protected handshake; returning an error aborts the association.
	// Required when the peer signs its anchors.
	VerifyPeer func(pub *rsa.PublicKey) error
	// TokenSource, if set, supplies the admission connect token stamped
	// into the initiator's HS1 (internal/admission). It is called once per
	// handshake with the local chain anchors so issuers can bind them;
	// returning an error aborts StartHandshake. Responders ignore it.
	TokenSource func(sigAnchor, ackAnchor []byte) ([]byte, error)
	// Tracer, if set, records per-association packet lifecycle events
	// (S1 announced, A1 received, S2 disclosed/verified, drops with
	// reasons). Tracing is lock-free and allocation-free; a nil Tracer
	// costs one predictable branch per event.
	Tracer *telemetry.Tracer
	// Spans, if set, receives hop-by-hop exchange spans (internal/obs):
	// one fixed-size record per protocol step this endpoint takes, keyed
	// for cross-hop correlation by the exchange's hash-chain element. Like
	// the tracer it is lock-free and allocation-free, and nil is free.
	Spans *obs.SpanRing
}

// withDefaults returns a copy of c with zero fields defaulted.
func (c Config) withDefaults() Config {
	if c.Suite == nil {
		c.Suite = suite.SHA1()
	}
	if c.ChainLen == 0 {
		c.ChainLen = DefaultChainLen
	}
	if c.BatchSize == 0 {
		if c.Mode == packet.ModeBase {
			c.BatchSize = 1
		} else {
			c.BatchSize = DefaultBatchSize
		}
	}
	// Base mode always runs one message per exchange: a larger configured
	// batch is documented as ignored. Invalid (negative) values are left
	// for validate to reject.
	if c.Mode == packet.ModeBase && c.BatchSize > 1 {
		c.BatchSize = 1
	}
	if c.CMRoots == 0 {
		c.CMRoots = 4
	}
	if c.CoalesceLimit == 0 {
		c.CoalesceLimit = 1400
	}
	if c.FlushDelay == 0 {
		c.FlushDelay = DefaultFlushDelay
	}
	if c.ChainLowFraction == 0 {
		c.ChainLowFraction = DefaultChainLowFraction
	}
	if c.RTO == 0 {
		c.RTO = DefaultRTO
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = DefaultMaxOutstanding
	}
	if c.MaxRxExchanges == 0 {
		c.MaxRxExchanges = DefaultMaxRxExchanges
	}
	return c
}

func (c Config) validate() error {
	switch c.Mode {
	case packet.ModeBase, packet.ModeC, packet.ModeM, packet.ModeCM:
	default:
		return fmt.Errorf("core: invalid mode %v", c.Mode)
	}
	if c.CMRoots < 1 || c.CMRoots > packet.MaxMACs {
		return fmt.Errorf("core: CM root count %d out of range", c.CMRoots)
	}
	if c.ChainLen < 2 || c.ChainLen%2 != 0 {
		return fmt.Errorf("core: chain length %d must be positive and even", c.ChainLen)
	}
	if c.BatchSize < 1 || c.BatchSize > packet.MaxMACs {
		return fmt.Errorf("core: batch size %d out of range", c.BatchSize)
	}
	if (c.Mode == packet.ModeM || c.Mode == packet.ModeCM) && c.BatchSize > packet.MaxLeafCount {
		return fmt.Errorf("core: batch size %d exceeds Merkle leaf limit", c.BatchSize)
	}
	if c.ChainLowFraction <= 0 || c.ChainLowFraction >= 1 {
		return fmt.Errorf("core: chain-low fraction %v outside (0, 1)", c.ChainLowFraction)
	}
	return nil
}

// EventKind enumerates endpoint events.
type EventKind int

const (
	// EventEstablished fires once the handshake completes.
	EventEstablished EventKind = iota + 1
	// EventDelivered fires when an incoming message passed verification.
	EventDelivered
	// EventAcked fires when the peer positively acknowledged a message
	// (reliable mode).
	EventAcked
	// EventNacked fires when the peer negatively acknowledged a message.
	EventNacked
	// EventSendFailed fires when retransmissions were exhausted or the
	// chain ran out before a message could be signed.
	EventSendFailed
	// EventChainLow fires once when fewer than a quarter of the local
	// signature chain's elements remain, advising re-bootstrap.
	EventChainLow
	// EventDropped fires when an incoming packet was discarded; Err says
	// why. Forged, replayed and tampered packets surface here.
	EventDropped
	// EventRekeyed fires when a local in-band rekey completed: the peer
	// acknowledged the new anchors and the endpoint now signs with fresh
	// chains.
	EventRekeyed
	// EventPeerRekeyed fires when the peer rotated its chains; the new
	// anchors were verified through the old protected channel.
	EventPeerRekeyed
	// EventModeChanged fires when a runtime profile transition
	// (SetProfile) took effect: every exchange started from now on uses
	// the Mode and Batch the event carries. Exchanges already in flight
	// finish under the profile they were created with.
	EventModeChanged
	// EventExpired fires when the transport retires an idle association
	// (generation rotation in the UDP server); the engine itself never
	// emits it. It is the last event a session's consumer sees.
	EventExpired
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventEstablished:
		return "Established"
	case EventDelivered:
		return "Delivered"
	case EventAcked:
		return "Acked"
	case EventNacked:
		return "Nacked"
	case EventSendFailed:
		return "SendFailed"
	case EventChainLow:
		return "ChainLow"
	case EventDropped:
		return "Dropped"
	case EventRekeyed:
		return "Rekeyed"
	case EventPeerRekeyed:
		return "PeerRekeyed"
	case EventModeChanged:
		return "ModeChanged"
	case EventExpired:
		return "Expired"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is something the application should know about.
type Event struct {
	Kind EventKind
	// MsgID identifies an outgoing message (as returned by Send) for
	// Acked/Nacked/SendFailed events.
	MsgID uint64
	// Seq is the exchange sequence number the event belongs to.
	Seq uint32
	// MsgIndex is the message's index within its exchange batch.
	MsgIndex uint32
	// Payload carries the verified message for Delivered events.
	Payload []byte
	// Mode and Batch carry the newly active profile for ModeChanged
	// events.
	Mode  packet.Mode
	Batch int
	// Err carries the reason for Dropped and SendFailed events.
	Err error
}

// Drop reasons surfaced in EventDropped events and relay decisions.
var (
	ErrUnknownAssoc    = errors.New("alpha: unknown association")
	ErrBadAuthElement  = errors.New("alpha: chain element verification failed")
	ErrBadMAC          = errors.New("alpha: message authentication failed")
	ErrBadProof        = errors.New("alpha: Merkle proof verification failed")
	ErrUnsolicited     = errors.New("alpha: payload without matching pre-signature")
	ErrBadAck          = errors.New("alpha: acknowledgment verification failed")
	ErrNotEstablished  = errors.New("alpha: association not established")
	ErrChainExhausted  = errors.New("alpha: hash chain exhausted")
	ErrTooManyInFlight = errors.New("alpha: too many outstanding exchanges")
	ErrBadDirection    = errors.New("alpha: packet direction flag mismatch")
	ErrBadHandshake    = errors.New("alpha: handshake verification failed")
)

// MACInput returns the canonical byte string that S1 pre-signatures
// authenticate for message idx of exchange seq on association assoc. Binding
// the association, exchange and batch position prevents a valid MAC from
// being replayed for a different message slot.
func MACInput(assoc uint64, seq uint32, idx uint32, payload []byte) []byte {
	return AppendMACInput(make([]byte, 0, 16+len(payload)), assoc, seq, idx, payload)
}

// AppendMACInput appends the canonical MAC input to dst and returns the
// extended slice, letting hot paths reuse one scratch buffer per endpoint
// instead of allocating per message.
func AppendMACInput(dst []byte, assoc uint64, seq uint32, idx uint32, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, assoc)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, idx)
	return append(dst, payload...)
}

// Pre-(n)ack domain separation: the "fixed string" of §3.2.2 that makes acks
// and nacks distinguishable.
var (
	tagPreAck  = []byte("ALPHA-ack-1")
	tagPreNack = []byte("ALPHA-ack-0")
)

// PreAckDigest computes the pre-ack value carried in an A1:
// H(key | "1" | secret) in the paper's notation.
func PreAckDigest(s suite.Suite, key, secret []byte) []byte {
	return AppendPreAckDigest(s, nil, key, secret)
}

// AppendPreAckDigest is PreAckDigest appending to dst (allocation-free when
// dst has capacity).
func AppendPreAckDigest(s suite.Suite, dst, key, secret []byte) []byte {
	sc := suite.GetScratch()
	sc.Parts[0], sc.Parts[1], sc.Parts[2] = tagPreAck, key, secret
	dst = s.HashInto(dst, sc.Parts[:3]...)
	suite.PutScratch(sc)
	return dst
}

// PreNackDigest computes the pre-nack value carried in an A1.
func PreNackDigest(s suite.Suite, key, secret []byte) []byte {
	return AppendPreNackDigest(s, nil, key, secret)
}

// AppendPreNackDigest is PreNackDigest appending to dst.
func AppendPreNackDigest(s suite.Suite, dst, key, secret []byte) []byte {
	sc := suite.GetScratch()
	sc.Parts[0], sc.Parts[1], sc.Parts[2] = tagPreNack, key, secret
	dst = s.HashInto(dst, sc.Parts[:3]...)
	suite.PutScratch(sc)
	return dst
}

// MerkleLeafInput returns the pre-image hashed into leaf idx of an ALPHA-M
// message tree. The batch position is carried by the tree structure; the
// payload is the pre-image, as in Fig. 4.
func MerkleLeafInput(payload []byte) []byte { return payload }

// CMSubSize returns the leaf capacity of each subtree when n messages are
// split across k Merkle roots (mode CM): the first k-1 subtrees are full,
// the last takes the remainder.
func CMSubSize(n, k int) int {
	if k < 1 {
		k = 1
	}
	return (n + k - 1) / k
}

// CMLocate maps global message index i of an n-message, k-root batch to its
// subtree: the root index, the leaf position within that subtree, and that
// subtree's leaf count. ok is false for out-of-range input.
func CMLocate(i, n, k int) (root, leaf, leaves int, ok bool) {
	if i < 0 || i >= n || k < 1 || k > n {
		return 0, 0, 0, false
	}
	sub := CMSubSize(n, k)
	root = i / sub
	leaf = i % sub
	leaves = sub
	if rem := n - root*sub; rem < sub {
		leaves = rem
	}
	return root, leaf, leaves, true
}
