package core

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"alpha/internal/packet"
)

func TestCMLocate(t *testing.T) {
	cases := []struct {
		i, n, k            int
		root, leaf, leaves int
		ok                 bool
	}{
		{0, 10, 4, 0, 0, 3, true},
		{2, 10, 4, 0, 2, 3, true},
		{3, 10, 4, 1, 0, 3, true},
		{8, 10, 4, 2, 2, 3, true},
		{9, 10, 4, 3, 0, 1, true}, // last partial subtree
		{0, 1, 1, 0, 0, 1, true},
		{15, 16, 4, 3, 3, 4, true},
		{-1, 10, 4, 0, 0, 0, false},
		{10, 10, 4, 0, 0, 0, false},
		{0, 10, 0, 0, 0, 0, false},
		{0, 4, 5, 0, 0, 0, false}, // more roots than messages
	}
	for _, c := range cases {
		root, leaf, leaves, ok := CMLocate(c.i, c.n, c.k)
		if ok != c.ok || (ok && (root != c.root || leaf != c.leaf || leaves != c.leaves)) {
			t.Errorf("CMLocate(%d,%d,%d) = (%d,%d,%d,%v), want (%d,%d,%d,%v)",
				c.i, c.n, c.k, root, leaf, leaves, ok, c.root, c.leaf, c.leaves, c.ok)
		}
	}
}

func TestQuickCMLocateCoversAllMessages(t *testing.T) {
	// Property: every message index maps to a unique (root, leaf) slot,
	// leaves never exceed the subtree size, and the derived root count is
	// consistent with the sender's partition.
	f := func(nSel, kSel uint8) bool {
		n := 1 + int(nSel)%200
		k := 1 + int(kSel)%n
		sub := CMSubSize(n, k)
		numRoots := (n + sub - 1) / sub
		seen := map[[2]int]bool{}
		for i := 0; i < n; i++ {
			root, leaf, leaves, ok := CMLocate(i, n, numRoots)
			if !ok || root >= numRoots || leaf >= leaves || leaves > sub {
				return false
			}
			slot := [2]int{root, leaf}
			if seen[slot] {
				return false
			}
			seen[slot] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func cmConfig(batch, roots int, reliable bool) Config {
	cfg := baseConfig(packet.ModeCM, reliable)
	cfg.BatchSize = batch
	cfg.CMRoots = roots
	cfg.ChainLen = 128
	return cfg
}

func TestCMEndToEnd(t *testing.T) {
	for _, tc := range []struct{ batch, roots int }{
		{1, 1}, {4, 2}, {10, 4}, {16, 4}, {9, 4}, {16, 16}, {7, 3},
	} {
		t.Run(fmt.Sprintf("n=%d/k=%d", tc.batch, tc.roots), func(t *testing.T) {
			h := newHarness(t, cmConfig(tc.batch, tc.roots, true))
			h.handshake()
			for i := 0; i < tc.batch; i++ {
				if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("cm-%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			h.a.Flush(h.now)
			h.run(40)
			if got := len(h.payloadsDelivered(h.b)); got != tc.batch {
				t.Fatalf("delivered %d/%d", got, tc.batch)
			}
			if got := h.countKind(h.a, EventAcked); got != tc.batch {
				t.Fatalf("acked %d/%d", got, tc.batch)
			}
			if d := h.firstDrop(h.b); d != nil {
				t.Fatalf("verifier dropped: %v", d.Err)
			}
		})
	}
}

func TestCMProofShorterThanM(t *testing.T) {
	// The point of CM: with k roots the per-S2 proof shrinks by log2(k)
	// hashes relative to plain M.
	captureProofLen := func(cfg Config) int {
		h := newHarness(t, cfg)
		h.handshake()
		proofLen := -1
		h.mangle = func(raw []byte) []byte {
			hdr, msg, err := packet.Decode(raw)
			if err == nil && hdr.Type == packet.TypeS2 && proofLen < 0 {
				proofLen = len(msg.(*packet.S2).Proof)
			}
			return raw
		}
		for i := 0; i < 16; i++ {
			if _, err := h.a.Send(h.now, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		h.a.Flush(h.now)
		h.run(40)
		if proofLen < 0 {
			t.Fatalf("no S2 observed")
		}
		return proofLen
	}
	mCfg := baseConfig(packet.ModeM, false)
	mCfg.BatchSize = 16
	mCfg.ChainLen = 128
	mLen := captureProofLen(mCfg)
	cmLen := captureProofLen(cmConfig(16, 4, false))
	if mLen != 4 { // log2(16)
		t.Fatalf("M proof length %d, want 4", mLen)
	}
	if cmLen != 2 { // log2(16/4)
		t.Fatalf("CM proof length %d, want 2", cmLen)
	}
}

func TestCMTamperDetected(t *testing.T) {
	h := newHarness(t, cmConfig(8, 4, false))
	h.handshake()
	h.mangle = func(raw []byte) []byte {
		hdr, msg, err := packet.Decode(raw)
		if err != nil || hdr.Type != packet.TypeS2 {
			return raw
		}
		s2 := msg.(*packet.S2)
		if s2.MsgIndex != 5 {
			return raw
		}
		s2.Payload = []byte("evil")
		out, _ := packet.Encode(hdr, s2)
		return out
	}
	for i := 0; i < 8; i++ {
		if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("cm-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.run(40)
	if got := len(h.payloadsDelivered(h.b)); got != 7 {
		t.Fatalf("delivered %d, want 7 (one tampered)", got)
	}
	d := h.firstDrop(h.b)
	if d == nil || !errors.Is(d.Err, ErrBadProof) {
		t.Fatalf("tampered CM S2 not dropped correctly: %+v", d)
	}
}

func TestCMCrossSubtreeProofRejected(t *testing.T) {
	// A proof valid in subtree 0 must not validate a message slot in
	// subtree 1, even with identical payloads.
	h := newHarness(t, cmConfig(8, 4, false))
	h.handshake()
	h.mangle = func(raw []byte) []byte {
		hdr, msg, err := packet.Decode(raw)
		if err != nil || hdr.Type != packet.TypeS2 {
			return raw
		}
		s2 := msg.(*packet.S2)
		if s2.MsgIndex != 0 {
			return raw
		}
		// Replay slot 0's proof and payload in slot 2 (subtree 1).
		s2.MsgIndex = 2
		out, _ := packet.Encode(hdr, s2)
		return out
	}
	for i := 0; i < 8; i++ {
		if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("distinct-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.run(40)
	// Slot 0's S2 was rewritten to claim slot 2: subtree 1's root does
	// not cover subtree 0's leaf/proof, so it must be dropped. The other
	// seven honest S2 packets (including slot 2's own) deliver normally.
	d := h.firstDrop(h.b)
	if d == nil || !errors.Is(d.Err, ErrBadProof) {
		t.Fatalf("cross-subtree replay not rejected: %+v", d)
	}
	delivered := map[uint32]bool{}
	for _, ev := range h.eventsOf(h.b) {
		if ev.Kind == EventDelivered {
			delivered[ev.MsgIndex] = true
		}
	}
	if delivered[0] {
		t.Fatalf("slot 0 delivered despite its S2 being hijacked")
	}
	if !delivered[2] || string(h.payloadsDelivered(h.b)[0]) == "distinct-0" {
		t.Fatalf("honest slots disturbed: %v", delivered)
	}
}
