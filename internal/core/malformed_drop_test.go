package core

import (
	"errors"
	"testing"
	"time"

	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// TestMalformedPacketCountedAsDrop checks the typed-error plumbing end to
// end on the endpoint side: an undecodable datagram surfaces as an
// EventDropped carrying a *packet.ParseError, bumps the Dropped counter,
// and traces with the ReasonMalformed drop code.
func TestMalformedPacketCountedAsDrop(t *testing.T) {
	cfg := baseConfig(packet.ModeC, false)
	cfg.Tracer = telemetry.NewTracer(16)
	ep, err := NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	inputs := [][]byte{
		{},                       // empty datagram
		{0xDE, 0xAD, 0xBE, 0xEF}, // bad magic
		{0xA1, 0xFA, 0x01, 0x7F}, // good magic, truncated header
	}
	for i, in := range inputs {
		evs, err := ep.Handle(now, in)
		if err != nil {
			t.Fatalf("input %d: Handle returned engine error %v for hostile input", i, err)
		}
		if len(evs) != 1 || evs[0].Kind != EventDropped {
			t.Fatalf("input %d: events = %+v, want one EventDropped", i, evs)
		}
		var pe *packet.ParseError
		if !errors.As(evs[0].Err, &pe) {
			t.Fatalf("input %d: drop error is %T, want *packet.ParseError: %v", i, evs[0].Err, evs[0].Err)
		}
	}
	if got := ep.Telemetry().Dropped.Load(); got != uint64(len(inputs)) {
		t.Fatalf("Dropped counter = %d, want %d", got, len(inputs))
	}
	drops := 0
	for _, ev := range cfg.Tracer.Snapshot() {
		if ev.Kind == telemetry.TraceDrop {
			drops++
			if ev.Detail != telemetry.ReasonMalformed {
				t.Fatalf("drop traced with reason %s, want %s",
					telemetry.ReasonString(ev.Detail), telemetry.ReasonString(telemetry.ReasonMalformed))
			}
		}
	}
	if drops != len(inputs) {
		t.Fatalf("tracer recorded %d drops, want %d", drops, len(inputs))
	}
}
