package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"alpha/internal/packet"
)

// chaosNet delivers packets between two endpoints with seeded random loss,
// delay (reordering), and duplication — the property-test substrate: under
// any such schedule, reliable mode must deliver exactly the sent payload
// multiset, with no spurious deliveries and no false acks.
type chaosNet struct {
	t    *testing.T
	rng  *rand.Rand
	a, b *Endpoint
	now  time.Time
	// in-flight packets with arrival times.
	queue []chaosPkt
	seq   int

	loss, dup float64
	maxDelay  time.Duration

	aEvents, bEvents []Event
}

type chaosPkt struct {
	at  time.Time
	seq int
	to  *Endpoint
	raw []byte
}

func newChaosNet(t *testing.T, seed int64, cfg Config, loss, dup float64, maxDelay time.Duration) *chaosNet {
	t.Helper()
	a, err := NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &chaosNet{
		t: t, rng: rand.New(rand.NewSource(seed)),
		a: a, b: b,
		now:  time.Unix(1_700_000_000, 0),
		loss: loss, dup: dup, maxDelay: maxDelay,
	}
}

// post schedules raw for chaotic delivery to dst.
func (c *chaosNet) post(dst *Endpoint, raw []byte) {
	n := 1
	if c.rng.Float64() < c.loss {
		n = 0
	} else if c.rng.Float64() < c.dup {
		n = 2
	}
	for i := 0; i < n; i++ {
		delay := time.Duration(c.rng.Int63n(int64(c.maxDelay)))
		c.seq++
		c.queue = append(c.queue, chaosPkt{at: c.now.Add(delay), seq: c.seq, to: dst, raw: raw})
	}
}

// step advances virtual time, delivering due packets and pumping engines.
func (c *chaosNet) step(dt time.Duration) {
	c.now = c.now.Add(dt)
	// Deliver everything due, in (time, seq) order for determinism.
	for {
		best := -1
		for i, p := range c.queue {
			if p.at.After(c.now) {
				continue
			}
			if best == -1 || p.at.Before(c.queue[best].at) ||
				(p.at.Equal(c.queue[best].at) && p.seq < c.queue[best].seq) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		p := c.queue[best]
		c.queue = append(c.queue[:best], c.queue[best+1:]...)
		evs, err := p.to.Handle(c.now, p.raw)
		if err != nil {
			c.t.Fatal(err)
		}
		c.record(p.to, evs)
	}
	outA, evA := c.a.Poll(c.now)
	c.record(c.a, evA)
	for _, raw := range outA {
		c.post(c.b, raw)
	}
	outB, evB := c.b.Poll(c.now)
	c.record(c.b, evB)
	for _, raw := range outB {
		c.post(c.a, raw)
	}
}

func (c *chaosNet) record(e *Endpoint, evs []Event) {
	if e == c.a {
		c.aEvents = append(c.aEvents, evs...)
	} else {
		c.bEvents = append(c.bEvents, evs...)
	}
}

// TestChaosReliableDelivery is the protocol's core liveness+safety property
// under adversarial-but-fair networks: across seeds, modes and chaos
// parameters, every message is delivered exactly once and acked, and
// nothing not sent is ever delivered.
func TestChaosReliableDelivery(t *testing.T) {
	modes := []packet.Mode{packet.ModeBase, packet.ModeC, packet.ModeM, packet.ModeCM}
	for seed := int64(1); seed <= 6; seed++ {
		mode := modes[seed%int64(len(modes))]
		t.Run(fmt.Sprintf("seed=%d/%v", seed, mode), func(t *testing.T) {
			cfg := Config{
				Mode:       mode,
				BatchSize:  3,
				Reliable:   true,
				ChainLen:   1024,
				RTO:        80 * time.Millisecond,
				MaxRetries: 40,
				Coalesce:   seed%2 == 0, // alternate bundling on/off
			}
			loss := 0.05 + 0.03*float64(seed%3) // 5-11%
			dup := 0.05 * float64(seed%2)       // 0 or 5%
			maxDelay := 30 * time.Millisecond   // heavy reordering vs 80ms RTO
			c := newChaosNet(t, seed, cfg, loss, dup, maxDelay)

			// Handshake under chaos.
			hs1, err := c.a.StartHandshake(c.now)
			if err != nil {
				t.Fatal(err)
			}
			c.post(c.b, hs1)
			for i := 0; i < 2000 && !(c.a.Established() && c.b.Established()); i++ {
				c.step(10 * time.Millisecond)
			}
			if !c.a.Established() || !c.b.Established() {
				t.Fatalf("handshake never completed under chaos")
			}

			const total = 30
			sent := map[string]int{}
			for i := 0; i < total; i++ {
				payload := fmt.Sprintf("chaos-%d-%02d", seed, i)
				sent[payload]++
				if _, err := c.a.Send(c.now, []byte(payload)); err != nil {
					t.Fatal(err)
				}
				if i%3 == 2 {
					c.step(5 * time.Millisecond)
				}
			}
			c.a.Flush(c.now)
			acked := func() int {
				n := 0
				for _, ev := range c.aEvents {
					if ev.Kind == EventAcked {
						n++
					}
				}
				return n
			}
			for i := 0; i < 6000 && acked() < total; i++ {
				c.step(10 * time.Millisecond)
			}

			// Safety: delivered exactly the sent multiset.
			got := map[string]int{}
			for _, ev := range c.bEvents {
				if ev.Kind == EventDelivered {
					got[string(ev.Payload)]++
				}
			}
			for payload, n := range sent {
				if got[payload] != n {
					t.Fatalf("payload %q delivered %d times, want %d", payload, got[payload], n)
				}
			}
			for payload := range got {
				if sent[payload] == 0 {
					t.Fatalf("spurious delivery %q", payload)
				}
			}
			// Liveness: everything acked.
			if acked() != total {
				t.Fatalf("acked %d/%d under chaos (loss=%.2f dup=%.2f)", acked(), total, loss, dup)
			}
			// No false sends reported failed.
			for _, ev := range c.aEvents {
				if ev.Kind == EventSendFailed {
					t.Fatalf("send failed under fair chaos: %v", ev.Err)
				}
			}
		})
	}
}

// TestChaosSoak is a longer randomized campaign, skipped under -short: more
// seeds, more messages, meaner networks.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	modes := []packet.Mode{packet.ModeBase, packet.ModeC, packet.ModeM, packet.ModeCM}
	for seed := int64(10); seed < 22; seed++ {
		mode := modes[seed%int64(len(modes))]
		t.Run(fmt.Sprintf("seed=%d/%v", seed, mode), func(t *testing.T) {
			cfg := Config{
				Mode:       mode,
				BatchSize:  1 + int(seed%5),
				Reliable:   true,
				ChainLen:   4096,
				RTO:        60 * time.Millisecond,
				MaxRetries: 60,
				Coalesce:   seed%3 == 0,
				AutoRekey:  seed%2 == 0,
			}
			if cfg.AutoRekey {
				cfg.ChainLen = 64 // force several rotations mid-soak
			}
			c := newChaosNet(t, seed, cfg, 0.10, 0.05, 50*time.Millisecond)
			hs1, err := c.a.StartHandshake(c.now)
			if err != nil {
				t.Fatal(err)
			}
			c.post(c.b, hs1)
			for i := 0; i < 3000 && !(c.a.Established() && c.b.Established()); i++ {
				c.step(10 * time.Millisecond)
			}
			if !c.a.Established() {
				t.Fatalf("soak handshake failed")
			}
			const total = 120
			for i := 0; i < total; i++ {
				if _, err := c.a.Send(c.now, []byte(fmt.Sprintf("soak-%d-%03d", seed, i))); err != nil {
					t.Fatal(err)
				}
				c.step(8 * time.Millisecond)
			}
			c.a.Flush(c.now)
			acked := func() int {
				n := 0
				for _, ev := range c.aEvents {
					if ev.Kind == EventAcked {
						n++
					}
				}
				return n
			}
			for i := 0; i < 30000 && acked() < total; i++ {
				c.step(10 * time.Millisecond)
			}
			if acked() != total {
				t.Fatalf("soak acked %d/%d (mode %v autorekey %v)", acked(), total, mode, cfg.AutoRekey)
			}
			delivered := map[string]bool{}
			for _, ev := range c.bEvents {
				if ev.Kind == EventDelivered {
					if delivered[string(ev.Payload)] {
						t.Fatalf("duplicate delivery %q", ev.Payload)
					}
					delivered[string(ev.Payload)] = true
				}
			}
			if len(delivered) != total {
				t.Fatalf("soak delivered %d/%d distinct", len(delivered), total)
			}
		})
	}
}
