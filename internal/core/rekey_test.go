package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"alpha/internal/packet"
)

func TestRekeyRoundTrip(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	// Some traffic on the original chains first.
	if _, err := h.a.Send(h.now, []byte("before")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(30)

	remBefore := h.a.ChainRemaining()
	id, err := h.a.Rekey(h.now)
	if err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	h.run(30)
	if h.countKind(h.a, EventRekeyed) != 1 {
		t.Fatalf("local rekey never completed: %v", h.eventsOf(h.a))
	}
	if h.countKind(h.b, EventPeerRekeyed) != 1 {
		t.Fatalf("peer never adopted the rekey: %v", h.eventsOf(h.b))
	}
	// The announcement must not surface as an application payload.
	for _, p := range h.payloadsDelivered(h.b) {
		if bytes.HasPrefix(p, []byte("AREK")) {
			t.Fatalf("rekey control payload leaked to the application")
		}
	}
	if got := h.a.ChainRemaining(); got <= remBefore {
		t.Fatalf("chain not refreshed: %d -> %d", remBefore, got)
	}
	_ = id
	// And traffic flows on the new chains, in both directions.
	if _, err := h.a.Send(h.now, []byte("after")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	if _, err := h.b.Send(h.now, []byte("reverse")); err != nil {
		t.Fatal(err)
	}
	h.b.Flush(h.now)
	h.run(40)
	if got := h.payloadsDelivered(h.b); len(got) != 2 || string(got[1]) != "after" {
		t.Fatalf("post-rekey delivery failed: %q", got)
	}
	if got := h.payloadsDelivered(h.a); len(got) != 1 || string(got[0]) != "reverse" {
		t.Fatalf("post-rekey reverse delivery failed: %q", got)
	}
}

func TestRekeyRequiresIdleAndReliable(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	if _, err := h.a.Send(h.now, []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	if _, err := h.a.Rekey(h.now); !errors.Is(err, ErrRekeyBusy) {
		t.Fatalf("busy rekey: %v", err)
	}
	h.run(30)
	if _, err := h.a.Rekey(h.now); err != nil {
		t.Fatalf("idle rekey refused: %v", err)
	}
	if _, err := h.a.Rekey(h.now); !errors.Is(err, ErrRekeyPending) {
		t.Fatalf("double rekey: %v", err)
	}

	hu := newHarness(t, baseConfig(packet.ModeBase, false))
	hu.handshake()
	if _, err := hu.a.Rekey(hu.now); err == nil {
		t.Fatalf("unreliable rekey should be refused")
	}
}

func TestRekeySurvivesPacketLoss(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	drops := 0
	h.dropBtoA = func(raw []byte) bool {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeA2 && drops < 2 {
			drops++
			return true
		}
		return false
	}
	if _, err := h.a.Rekey(h.now); err != nil {
		t.Fatal(err)
	}
	h.runFor(5 * time.Second)
	if drops != 2 {
		t.Fatalf("A2 drops %d", drops)
	}
	if h.countKind(h.a, EventRekeyed) != 1 {
		t.Fatalf("rekey did not survive ack loss")
	}
	// Traffic flows on new chains.
	if _, err := h.a.Send(h.now, []byte("post-loss")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(30)
	if got := h.payloadsDelivered(h.b); len(got) != 1 {
		t.Fatalf("post-rekey traffic lost")
	}
}

func TestRekeyAbortFallsBackToOldChain(t *testing.T) {
	// Every A2 for the rekey exchange is lost: the signer exhausts its
	// retries and aborts, but the verifier already adopted the new
	// anchors. The grace window must keep the association alive on the
	// old chains.
	cfg := baseConfig(packet.ModeBase, true)
	cfg.MaxRetries = 2
	h := newHarness(t, cfg)
	h.handshake()
	h.dropBtoA = func(raw []byte) bool {
		hdr, _, err := packet.Decode(raw)
		return err == nil && hdr.Type == packet.TypeA2
	}
	if _, err := h.a.Rekey(h.now); err != nil {
		t.Fatal(err)
	}
	h.runFor(5 * time.Second)
	if h.countKind(h.a, EventRekeyed) != 0 {
		t.Fatalf("rekey completed despite total ack loss")
	}
	if h.countKind(h.a, EventSendFailed) == 0 {
		t.Fatalf("rekey abort not surfaced")
	}
	if h.countKind(h.b, EventPeerRekeyed) != 1 {
		t.Fatalf("verifier should have adopted (and then tolerate the abort)")
	}
	// Stop dropping; the signer continues on the old chain and the
	// verifier's grace window accepts it.
	h.dropBtoA = nil
	if _, err := h.a.Send(h.now, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.runFor(3 * time.Second)
	if got := h.payloadsDelivered(h.b); len(got) != 1 || string(got[0]) != "still alive" {
		t.Fatalf("association died after aborted rekey: %q", got)
	}
	if h.countKind(h.a, EventAcked) != 1 {
		t.Fatalf("old-chain exchange not acked after aborted rekey")
	}
}

func TestAutoRekeyKeepsAssociationAlive(t *testing.T) {
	cfg := baseConfig(packet.ModeBase, true)
	cfg.ChainLen = 16 // 8 exchanges per generation
	cfg.AutoRekey = true
	h := newHarness(t, cfg)
	h.handshake()
	const total = 40 // far beyond one generation
	for i := 0; i < total; i++ {
		if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
		h.a.Flush(h.now)
		h.run(30)
	}
	h.runFor(2 * time.Second)
	if got := len(h.payloadsDelivered(h.b)); got != total {
		t.Fatalf("delivered %d/%d across rekeys", got, total)
	}
	if h.countKind(h.a, EventRekeyed) < 2 {
		t.Fatalf("expected multiple auto-rekeys, got %d", h.countKind(h.a, EventRekeyed))
	}
	if h.countKind(h.a, EventSendFailed) != 0 {
		t.Fatalf("sends failed despite auto-rekey: %v", h.eventsOf(h.a))
	}
}

func TestRekeyBothDirections(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	if _, err := h.a.Rekey(h.now); err != nil {
		t.Fatal(err)
	}
	h.run(30)
	if _, err := h.b.Rekey(h.now); err != nil {
		t.Fatal(err)
	}
	h.run(30)
	if h.countKind(h.a, EventRekeyed) != 1 || h.countKind(h.b, EventRekeyed) != 1 {
		t.Fatalf("both sides should rekey independently")
	}
	if _, err := h.a.Send(h.now, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.b.Send(h.now, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.b.Flush(h.now)
	h.run(40)
	if len(h.payloadsDelivered(h.a)) != 1 || len(h.payloadsDelivered(h.b)) != 1 {
		t.Fatalf("traffic broken after dual rekey")
	}
}

func TestRekeyPayloadCodec(t *testing.T) {
	p := RekeyPayload{
		SigAnchor: bytes.Repeat([]byte{1}, 20),
		AckAnchor: bytes.Repeat([]byte{2}, 20),
		ChainLen:  512,
	}
	enc := EncodeRekey(p)
	if !IsRekeyPayload(enc) {
		t.Fatalf("IsRekeyPayload false on encoded payload")
	}
	got, ok := DecodeRekey(enc, 20)
	if !ok {
		t.Fatalf("decode failed")
	}
	if got.ChainLen != 512 || !bytes.Equal(got.SigAnchor, p.SigAnchor) || !bytes.Equal(got.AckAnchor, p.AckAnchor) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if _, ok := DecodeRekey(enc[:len(enc)-1], 20); ok {
		t.Fatalf("truncated payload decoded")
	}
	if _, ok := DecodeRekey([]byte("ordinary message"), 20); ok {
		t.Fatalf("ordinary payload decoded as rekey")
	}
	if IsRekeyPayload([]byte("AR")) {
		t.Fatalf("short payload misidentified")
	}
}
