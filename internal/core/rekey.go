// In-band chain rekeying.
//
// A hash chain is a finite resource: after ChainLen/2 exchanges the owner
// has disclosed everything and the association dies (§3.4 of the paper
// requires a fresh bootstrap). Rather than forcing a new handshake — which
// would need asymmetric crypto again in protected deployments — this
// implementation refreshes chains *in-band*: the owner generates new chains
// and announces their anchors in a control message protected by the old
// chains, exactly like any other signed payload. Verifier and relays check
// it hop-by-hop (it is just an S1/S2 exchange), then atomically switch
// their walkers to the new anchors. The old chain authenticates the new
// one, preserving the identity continuity that re-authentication is built
// on (§2.1).
//
// The control message travels as a normal payload with a magic prefix, so
// relays can recognize it through their existing extraction path (§3.5's
// secure middlebox signaling, applied to the protocol itself).

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"alpha/internal/hashchain"
	"alpha/internal/suite"
)

// rekeyMagic prefixes in-band rekey announcements.
var rekeyMagic = []byte("AREK\x01")

// ErrRekeyBusy is returned when a rekey is requested while exchanges are
// still in flight; the old chain must finish its business first so that
// walkers never need two generations at once.
var ErrRekeyBusy = errors.New("alpha: rekey requires an idle association")

// ErrRekeyPending is returned when a rekey is already in progress.
var ErrRekeyPending = errors.New("alpha: rekey already in progress")

// rekeyState tracks an in-flight local rekey.
type rekeyState struct {
	msgID    uint64
	newSig   hashchain.Owner
	newAck   hashchain.Owner
	chainLen int
}

// RekeyPayload is a decoded rekey announcement, exported so relays can
// parse extracted control payloads with the same code the endpoint uses.
type RekeyPayload struct {
	SigAnchor []byte
	AckAnchor []byte
	ChainLen  uint32
}

// EncodeRekey builds the control payload announcing new chain anchors.
func EncodeRekey(p RekeyPayload) []byte {
	out := make([]byte, 0, len(rekeyMagic)+4+len(p.SigAnchor)+len(p.AckAnchor))
	out = append(out, rekeyMagic...)
	out = binary.BigEndian.AppendUint32(out, p.ChainLen)
	out = append(out, p.SigAnchor...)
	return append(out, p.AckAnchor...)
}

// DecodeRekey parses a control payload; ok is false when the payload is
// not a rekey announcement for the given digest size.
func DecodeRekey(payload []byte, digestSize int) (RekeyPayload, bool) {
	if len(payload) != len(rekeyMagic)+4+2*digestSize {
		return RekeyPayload{}, false
	}
	for i, b := range rekeyMagic {
		if payload[i] != b {
			return RekeyPayload{}, false
		}
	}
	off := len(rekeyMagic)
	p := RekeyPayload{ChainLen: binary.BigEndian.Uint32(payload[off:])}
	off += 4
	p.SigAnchor = append([]byte(nil), payload[off:off+digestSize]...)
	p.AckAnchor = append([]byte(nil), payload[off+digestSize:]...)
	return p, true
}

// IsRekeyPayload reports whether an extracted payload is a rekey
// announcement (used by relays before attempting a full decode).
func IsRekeyPayload(payload []byte) bool {
	if len(payload) < len(rekeyMagic) {
		return false
	}
	for i, b := range rekeyMagic {
		if payload[i] != b {
			return false
		}
	}
	return true
}

// Rekey generates fresh local chains and announces their anchors through
// the protected channel. It requires reliable mode (the chain swap commits
// on the peer's verifiable ack) and an idle association. The returned
// message ID identifies the announcement; once it is Acked the endpoint
// signs with the new chains, and EventRekeyed fires.
func (e *Endpoint) Rekey(now time.Time) (uint64, error) {
	if !e.established {
		return 0, ErrNotEstablished
	}
	if !e.cfg.Reliable {
		return 0, errors.New("alpha: rekey requires reliable mode")
	}
	if e.rekey != nil {
		return 0, ErrRekeyPending
	}
	// Only in-flight exchanges block a rekey: they pin old-chain state on
	// the path. Queued messages have consumed nothing yet — they simply
	// wait out the rotation and ride the new chain.
	if len(e.tx) > 0 {
		return 0, ErrRekeyBusy
	}
	if e.sigChain.Remaining() < 2 || e.ackChain.Remaining() < 2 {
		return 0, fmt.Errorf("%w: too few elements left to sign the rekey", ErrChainExhausted)
	}
	newSig, err := newOwner(e.cfg, hashchain.TagS1, hashchain.TagS2)
	if err != nil {
		return 0, err
	}
	newAck, err := newOwner(e.cfg, hashchain.TagA1, hashchain.TagA2)
	if err != nil {
		return 0, err
	}
	payload := EncodeRekey(RekeyPayload{
		SigAnchor: newSig.Anchor(),
		AckAnchor: newAck.Anchor(),
		ChainLen:  uint32(e.cfg.ChainLen),
	})
	// The announcement bypasses the send queue: queued application
	// messages may themselves be waiting for this rotation.
	e.nextMsgID++
	m := &outMsg{id: e.nextMsgID, payload: payload}
	if err := e.startExchange(now, []*outMsg{m}); err != nil {
		return 0, err
	}
	e.rekey = &rekeyState{msgID: m.id, newSig: newSig, newAck: newAck, chainLen: e.cfg.ChainLen}
	return m.id, nil
}

// maybeCompleteRekey commits the local chain swap when the announcement is
// acknowledged. Called from the A2 path.
func (e *Endpoint) maybeCompleteRekey(msgID uint64) {
	if e.rekey == nil || e.rekey.msgID != msgID {
		return
	}
	e.sigChain = e.rekey.newSig
	e.ackChain = e.rekey.newAck
	e.rekey = nil
	e.chainLow = false
	e.noteChainGauges()
	e.emit(Event{Kind: EventRekeyed, MsgID: msgID})
}

// abortRekey drops a failed rekey attempt (announcement never delivered).
func (e *Endpoint) abortRekey(msgID uint64) {
	if e.rekey != nil && e.rekey.msgID == msgID {
		e.rekey = nil
	}
}

// adoptPeerRekey installs new walkers for the peer's announced chains. The
// announcement arrived through the old, verified channel, so the new
// anchors inherit its authenticity. The old walkers stay around as a grace
// fallback: the peer only commits to the new chains once it has seen our
// acknowledgment, and that acknowledgment can be lost.
func (e *Endpoint) adoptPeerRekey(p RekeyPayload) error {
	if len(p.SigAnchor) != e.suite.Size() || len(p.AckAnchor) != e.suite.Size() {
		return fmt.Errorf("%w: rekey anchor size", ErrBadHandshake)
	}
	sig, err := hashchain.NewSignatureWalker(e.suite, p.SigAnchor)
	if err != nil {
		return err
	}
	ack, err := hashchain.NewAcknowledgmentWalker(e.suite, p.AckAnchor)
	if err != nil {
		return err
	}
	// If a previous rotation is still in its grace window and its new
	// generation was never used (the peer aborted and re-announced), the
	// unused generation is replaced rather than promoted — the live old
	// chain in prev* must survive.
	if e.prevPeerSig == nil || e.peerSig.Index() > 0 || e.peerAck.Index() > 0 {
		e.prevPeerSig, e.prevPeerAck = e.peerSig, e.peerAck
	}
	e.peerSig, e.peerAck = sig, ack
	return nil
}

// verifyPeerSig verifies a signature-chain element against the current
// walker, falling back to the pre-rekey generation. Both generations stay
// live until the next rotation replaces the older one: exchanges that
// started before a rotation legitimately keep using the old chain for their
// entire lifetime, and if the peer aborts a rekey (our ack lost past all
// retries) the old generation simply remains the working one. Payload and
// acknowledgment openings (S2/A2) never reach these walkers at all — they
// verify against their own exchange's pinned S1/A1 element.
func (e *Endpoint) verifyPeerSig(elem []byte, idx uint32) error {
	err := e.peerSig.Verify(elem, idx)
	if err == nil {
		return nil
	}
	if e.prevPeerSig == nil {
		return err
	}
	if prevErr := e.prevPeerSig.Verify(elem, idx); prevErr == nil {
		return nil
	}
	return err
}

// verifyPeerAck is verifyPeerSig for the peer's acknowledgment chain.
func (e *Endpoint) verifyPeerAck(elem []byte, idx uint32) error {
	err := e.peerAck.Verify(elem, idx)
	if err == nil {
		return nil
	}
	if e.prevPeerAck == nil {
		return err
	}
	if prevErr := e.prevPeerAck.Verify(elem, idx); prevErr == nil {
		return nil
	}
	return err
}

// UpdateAnchors lets a relay flow adopt a verified rekey announcement; it
// returns the new walkers for the announcing direction.
func UpdateAnchors(st suite.Suite, p RekeyPayload) (sig, ack *hashchain.Walker, err error) {
	if len(p.SigAnchor) != st.Size() || len(p.AckAnchor) != st.Size() {
		return nil, nil, errors.New("alpha: rekey anchor size mismatch")
	}
	if sig, err = hashchain.NewSignatureWalker(st, p.SigAnchor); err != nil {
		return nil, nil, err
	}
	if ack, err = hashchain.NewAcknowledgmentWalker(st, p.AckAnchor); err != nil {
		return nil, nil, err
	}
	return sig, ack, nil
}
