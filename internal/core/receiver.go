// Receiver half: processing S1/S2 packets, building A1/A2 responses.

package core

import (
	"crypto/rand"
	"fmt"
	"time"

	"alpha/internal/hashchain"
	"alpha/internal/merkle"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
)

// rxExchange is the verifier-side state for one signature exchange: the
// buffered pre-signatures from the S1 and, in reliable mode, the pre-(n)ack
// material whose secrets will be opened in A2 packets. Its size is exactly
// the "Verifier" column of Tables 2 and 3.
type rxExchange struct {
	seq      uint32
	mode     packet.Mode
	reliable bool
	keyIdx   uint32 // expected disclosure index of the signer's MAC key
	// auth is the S1's verified chain element: the exchange's own trust
	// anchor. The S2's key element must hash to it, which keeps payload
	// verification independent of walker state (and of chain rekeys).
	auth []byte
	// key caches the verified MAC-key element after the first valid S2,
	// so duplicates verify by equality.
	key []byte

	// Pre-signatures buffered from the S1.
	macs      [][]byte // modes base and C
	root      []byte   // mode M
	roots     [][]byte // mode CM
	leafCount int

	// Reliable-mode acknowledgment material.
	ackPair hashchain.Pair // our acknowledgment-chain elements
	sack    []byte         // base: secret opened for a positive ack
	snack   []byte         // base: secret opened for a negative ack
	amt     *merkle.AckTree

	a1        []byte // encoded A1 for retransmission on duplicate S1
	delivered []bool
	doneCount int
}

// bufferedBytes reports how much pre-signature state the exchange pins,
// reproducing the verifier column of Table 2 empirically.
func (rx *rxExchange) bufferedBytes() int {
	n := 0
	for _, m := range rx.macs {
		n += len(m)
	}
	n += len(rx.root)
	for _, r := range rx.roots {
		n += len(r)
	}
	return n
}

// ackBytes reports the additional reliable-mode state (Table 3).
func (rx *rxExchange) ackBytes() int {
	n := len(rx.sack) + len(rx.snack)
	if rx.amt != nil {
		// The AMT retains 2n leaf secrets plus the tree nodes
		// (≈ 4n-1 digests counting both subtrees), matching the
		// paper's n·s + (4n-1)·h verifier entry.
		h := len(rx.amt.Root())
		n += 2*rx.amt.Messages()*h + (4*rx.amt.Messages()-1)*h
	}
	return n
}

// handleS1 verifies a pre-signature announcement and answers with an A1.
func (e *Endpoint) handleS1(now time.Time, hdr packet.Header, s1 *packet.S1) []Event {
	e.tel.RecvS1.Inc()
	if rx, ok := e.rx[hdr.Seq]; ok {
		// Duplicate S1 (our A1 was probably lost): resend the stored
		// A1 rather than re-verifying; the paper calls for robust and
		// fast S1/A1 retransmission (§3.5).
		if rx.a1 != nil {
			e.outbox = append(e.outbox, rx.a1)
			e.tel.BytesSent.Add(uint64(len(rx.a1)))
			e.tel.Retransmits.Inc()
		}
		return e.takeEvents()
	}
	if s1.AuthIdx%2 != 1 || s1.KeyIdx != s1.AuthIdx+1 {
		return e.drop(hdr.Seq, ErrBadAuthElement)
	}
	if err := e.verifyPeerSig(s1.Auth, s1.AuthIdx); err != nil {
		return e.drop(hdr.Seq, fmt.Errorf("%w: %v", ErrBadAuthElement, err))
	}
	e.spanKey = obs.Key(s1.Auth)
	e.tracer.Trace(e.tnow, telemetry.TraceS1Recv, e.assoc, hdr.Seq, 0)
	reliable := hdr.Flags&packet.FlagReliable != 0
	rx := &rxExchange{
		seq:      hdr.Seq,
		mode:     s1.Mode,
		reliable: reliable,
		keyIdx:   s1.KeyIdx,
		auth:     append([]byte(nil), s1.Auth...),
	}
	var batch int
	switch s1.Mode {
	case packet.ModeBase, packet.ModeC:
		rx.macs = s1.MACs
		batch = len(s1.MACs)
	case packet.ModeM:
		rx.root = s1.Root
		rx.leafCount = int(s1.LeafCount)
		batch = rx.leafCount
	case packet.ModeCM:
		rx.roots = s1.Roots
		rx.leafCount = int(s1.LeafCount)
		batch = rx.leafCount
		// The root count must be consistent with the subtree partition
		// both sides derive from (n, k).
		sub := CMSubSize(batch, len(s1.Roots))
		if (batch+sub-1)/sub != len(s1.Roots) {
			return e.drop(hdr.Seq, fmt.Errorf("inconsistent CM root count %d for %d messages", len(s1.Roots), batch))
		}
	default:
		return e.drop(hdr.Seq, fmt.Errorf("unknown mode %v", s1.Mode))
	}
	rx.delivered = make([]bool, batch)

	a1 := &packet.A1{}
	pair, err := e.ackChain.NextPair()
	if err != nil {
		return e.drop(hdr.Seq, fmt.Errorf("%w: %v", ErrChainExhausted, err))
	}
	rx.ackPair = pair
	e.noteChainGauges()
	// The acknowledgment chain depletes as fast as the peer sends; warn
	// (and auto-rekey, if configured) from the verifier side too.
	if !e.chainLow && e.ackChainIsLow() {
		e.chainLow = true
		e.emit(Event{Kind: EventChainLow})
	}
	a1.AuthIdx = pair.AuthIdx
	a1.Auth = pair.Auth
	a1.KeyIdx = pair.KeyIdx
	if reliable {
		if batch == 1 {
			// Flat pre-ack/pre-nack pair (§3.2.2, Fig. 3).
			rx.sack = make([]byte, e.suite.Size())
			rx.snack = make([]byte, e.suite.Size())
			if _, err := rand.Read(rx.sack); err != nil {
				return e.drop(hdr.Seq, err)
			}
			if _, err := rand.Read(rx.snack); err != nil {
				return e.drop(hdr.Seq, err)
			}
			a1.PreAck = PreAckDigest(e.suite, pair.Key, rx.sack)
			a1.PreNack = PreNackDigest(e.suite, pair.Key, rx.snack)
		} else {
			// Acknowledgment Merkle Tree (§3.3.3, Fig. 7).
			amt, err := merkle.NewAckTree(e.suite, pair.Key, batch)
			if err != nil {
				return e.drop(hdr.Seq, err)
			}
			rx.amt = amt
			a1.AMTRoot = amt.Root()
			a1.AMTLeaves = uint32(batch)
		}
	}
	raw, err := packet.Encode(e.header(packet.TypeA1, hdr.Seq), a1)
	if err != nil {
		return e.drop(hdr.Seq, err)
	}
	rx.a1 = raw
	e.storeRx(rx)
	e.outbox = append(e.outbox, raw)
	e.tel.BytesSent.Add(uint64(len(raw)))
	e.tel.SentA1.Inc()
	e.spans.Emit(e.tnow, e.assoc, obs.Key(rx.auth), hdr.Seq, obs.RoleReceiver, obs.StepS1, uint8(rx.mode), obs.VerdictRecv, uint32(batch))
	e.spans.Emit(e.tnow, e.assoc, obs.Key(rx.auth), hdr.Seq, obs.RoleReceiver, obs.StepA1, uint8(rx.mode), obs.VerdictSent, 0)
	return e.takeEvents()
}

// storeRx registers a receiver exchange, evicting the oldest one beyond the
// configured memory bound.
func (e *Endpoint) storeRx(rx *rxExchange) {
	e.rx[rx.seq] = rx
	e.rxOrder = append(e.rxOrder, rx.seq)
	for len(e.rxOrder) > e.cfg.MaxRxExchanges {
		old := e.rxOrder[0]
		e.rxOrder = e.rxOrder[1:]
		delete(e.rx, old)
	}
}

// handleS2 verifies a disclosed message against its buffered pre-signature
// and delivers it; in reliable mode it opens the matching pre-(n)ack.
func (e *Endpoint) handleS2(now time.Time, hdr packet.Header, s2 *packet.S2) []Event {
	e.tel.RecvS2.Inc()
	rx, ok := e.rx[hdr.Seq]
	if !ok {
		return e.drop(hdr.Seq, ErrUnsolicited)
	}
	e.spanKey = obs.Key(rx.auth)
	if s2.Mode != rx.mode || s2.KeyIdx != rx.keyIdx {
		return e.drop(hdr.Seq, ErrUnsolicited)
	}
	idx := int(s2.MsgIndex)
	if idx >= len(rx.delivered) {
		return e.drop(hdr.Seq, ErrUnsolicited)
	}
	// The S2's key element must be the pre-image of this exchange's S1
	// element — verification is pinned to the exchange itself, immune to
	// walker movement and chain rekeys (the paper's "recomputing the
	// MAC" against "the tamper-proof MAC from the S1 packet").
	if rx.key == nil {
		if !hashchain.VerifyLink(e.suite, hashchain.TagS1, hashchain.TagS2, rx.auth, s2.Key, s2.KeyIdx) {
			return e.drop(hdr.Seq, ErrBadAuthElement)
		}
		rx.key = append([]byte(nil), s2.Key...)
	} else if !suite.Equal(rx.key, s2.Key) {
		return e.drop(hdr.Seq, ErrBadAuthElement)
	}
	// The key element is genuine; now check the message against the
	// buffered pre-signature. A mismatch here means the payload was
	// tampered with in transit: in reliable mode that is worth a
	// verifiable nack so the signer retransmits.
	valid := e.verifyS2Payload(rx, hdr, s2)
	if !valid {
		if rx.reliable && !rx.delivered[idx] {
			e.sendA2(rx, idx, false)
		}
		reason := ErrBadMAC
		if rx.mode == packet.ModeM || rx.mode == packet.ModeCM {
			reason = ErrBadProof
		}
		return e.drop(hdr.Seq, reason)
	}
	if rx.delivered[idx] {
		// Duplicate S2 (our A2 was probably lost): re-open the ack.
		if rx.reliable {
			e.sendA2(rx, idx, true)
		}
		return e.takeEvents()
	}
	rx.delivered[idx] = true
	rx.doneCount++
	// In-band rekey announcements are consumed by the protocol layer:
	// the payload carries the peer's fresh anchors, already authenticated
	// by the old chain like any other message.
	if p, ok := DecodeRekey(s2.Payload, e.suite.Size()); ok {
		if err := e.adoptPeerRekey(p); err != nil {
			rx.delivered[idx] = false
			rx.doneCount--
			return e.drop(hdr.Seq, err)
		}
		e.emit(Event{Kind: EventPeerRekeyed, Seq: hdr.Seq, MsgIndex: s2.MsgIndex})
		if rx.reliable {
			e.sendA2(rx, idx, true)
		}
		return e.takeEvents()
	}
	e.tel.Delivered.Inc()
	e.tel.PayloadBytes.Add(uint64(len(s2.Payload)))
	e.tel.PayloadSize.Observe(int64(len(s2.Payload)))
	e.tracer.Trace(e.tnow, telemetry.TraceS2Verified, e.assoc, hdr.Seq, s2.MsgIndex)
	e.spans.Emit(e.tnow, e.assoc, obs.Key(rx.auth), hdr.Seq, obs.RoleReceiver, obs.StepS2, uint8(rx.mode), obs.VerdictDeliver, s2.MsgIndex)
	e.emit(Event{Kind: EventDelivered, Seq: hdr.Seq, MsgIndex: s2.MsgIndex, Payload: s2.Payload})
	if rx.reliable {
		e.sendA2(rx, idx, true)
	}
	return e.takeEvents()
}

// verifyS2Payload checks an S2's payload against the exchange's buffered
// pre-signature material.
//
//alpha:hotpath
func (e *Endpoint) verifyS2Payload(rx *rxExchange, hdr packet.Header, s2 *packet.S2) bool {
	switch rx.mode {
	case packet.ModeBase, packet.ModeC:
		want := rx.macs[s2.MsgIndex]
		e.macIn = AppendMACInput(e.macIn[:0], e.assoc, hdr.Seq, s2.MsgIndex, s2.Payload)
		e.parts[0] = e.macIn
		e.macOut = e.suite.MACInto(e.macOut[:0], s2.Key, e.parts[:1]...)
		return suite.Equal(want, e.macOut)
	case packet.ModeM:
		if int(s2.LeafCount) != rx.leafCount {
			return false //alpha:drop-ok verdict helper: handleS2 counts the drop on false
		}
		return merkle.Verify(e.suite, s2.Key, rx.root, MerkleLeafInput(s2.Payload), int(s2.MsgIndex), rx.leafCount, s2.Proof)
	case packet.ModeCM:
		if int(s2.LeafCount) != rx.leafCount {
			return false //alpha:drop-ok verdict helper: handleS2 counts the drop on false
		}
		root, leaf, leaves, ok := CMLocate(int(s2.MsgIndex), rx.leafCount, len(rx.roots))
		if !ok || root >= len(rx.roots) {
			return false //alpha:drop-ok verdict helper: handleS2 counts the drop on false
		}
		return merkle.Verify(e.suite, s2.Key, rx.roots[root], MerkleLeafInput(s2.Payload), leaf, leaves, s2.Proof)
	default:
		return false
	}
}

// sendA2 opens the pre-ack (ack=true) or pre-nack for message idx.
func (e *Endpoint) sendA2(rx *rxExchange, idx int, ack bool) {
	a2 := &packet.A2{
		Mode:     rx.mode,
		KeyIdx:   rx.ackPair.KeyIdx,
		Key:      rx.ackPair.Key,
		MsgIndex: uint32(idx),
		Ack:      ack,
	}
	if rx.amt != nil {
		o, err := rx.amt.Open(idx, ack)
		if err != nil {
			// An unopenable acknowledgment is an internal-state error, not
			// hostile input, but it must not vanish silently: the peer will
			// retransmit the S2 and land on the duplicate-delivery path.
			e.noteAckFailure(rx, telemetry.ReasonBadAck)
			return
		}
		a2.Mode = rx.mode
		a2.Secret = o.Secret
		a2.Proof = o.Proof
		a2.Other = o.Other
		a2.AMTLeaves = uint32(rx.amt.Messages())
		if a2.Mode != packet.ModeM {
			// The AMT is also used for multi-message ALPHA-C
			// batches; its opening travels in mode-M A2 framing.
			a2.Mode = packet.ModeM
		}
	} else {
		if ack {
			a2.Secret = rx.sack
		} else {
			a2.Secret = rx.snack
		}
		a2.Mode = packet.ModeBase
	}
	if err := e.send(e.header(packet.TypeA2, rx.seq), a2); err != nil {
		// Encoding failure: the ack this exchange owes never left. Counted
		// for the same reason as above.
		e.noteAckFailure(rx, telemetry.ReasonMalformed)
		return
	}
	e.tel.SentA2.Inc()
	e.spans.Emit(e.tnow, e.assoc, obs.Key(rx.auth), rx.seq, obs.RoleReceiver, obs.StepA2, uint8(rx.mode), obs.VerdictSent, uint32(idx))
}

// noteAckFailure accounts a failed A2 emission: previously a silent return,
// now a reason-coded drop plus a trace line and a drop-verdict span, so the
// I3/I4 conservation invariants see every discarded acknowledgment.
func (e *Endpoint) noteAckFailure(rx *rxExchange, code uint32) {
	e.tel.NoteDrop(code)
	e.tracer.Trace(e.tnow, telemetry.TraceDrop, e.assoc, rx.seq, code)
	e.spans.Emit(e.tnow, e.assoc, obs.Key(rx.auth), rx.seq, obs.RoleReceiver, obs.StepA2, uint8(rx.mode), obs.VerdictDrop, code)
}
