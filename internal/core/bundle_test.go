package core

import (
	"fmt"
	"testing"
	"time"

	"alpha/internal/packet"
)

// coalesceConfig enables bundling with a small batch for visible effect.
func coalesceConfig(reliable bool) Config {
	cfg := baseConfig(packet.ModeC, reliable)
	cfg.BatchSize = 8
	cfg.ChainLen = 128
	cfg.Coalesce = true
	return cfg
}

func TestCoalescedBatchDelivers(t *testing.T) {
	h := newHarness(t, coalesceConfig(true))
	h.handshake()
	for i := 0; i < 8; i++ {
		if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("bundled-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.run(40)
	if got := len(h.payloadsDelivered(h.b)); got != 8 {
		t.Fatalf("delivered %d/8 over bundles", got)
	}
	if got := h.countKind(h.a, EventAcked); got != 8 {
		t.Fatalf("acked %d/8 over bundles", got)
	}
}

func TestCoalesceReducesDatagrams(t *testing.T) {
	countDatagrams := func(coalesce bool) (datagrams int, bundles int) {
		cfg := coalesceConfig(true)
		cfg.Coalesce = coalesce
		h := newHarness(t, cfg)
		h.handshake()
		h.mangle = func(raw []byte) []byte {
			datagrams++
			if hdr, _, err := packet.Decode(raw); err == nil && hdr.Type == packet.TypeBundle {
				bundles++
			}
			return raw
		}
		for i := 0; i < 8; i++ {
			if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		h.a.Flush(h.now)
		h.run(40)
		if len(h.payloadsDelivered(h.b)) != 8 {
			t.Fatalf("setup: delivery failed (coalesce=%v)", coalesce)
		}
		return datagrams, bundles
	}
	plain, noBundles := countDatagrams(false)
	packed, bundles := countDatagrams(true)
	if noBundles != 0 {
		t.Fatalf("bundles emitted with Coalesce off")
	}
	if bundles == 0 {
		t.Fatalf("no bundles emitted with Coalesce on")
	}
	if packed >= plain {
		t.Fatalf("coalescing did not reduce datagrams: %d -> %d", plain, packed)
	}
}

func TestCoalesceRespectsLimit(t *testing.T) {
	cfg := coalesceConfig(false)
	cfg.CoalesceLimit = 600
	h := newHarness(t, cfg)
	h.handshake()
	maxSeen := 0
	h.mangle = func(raw []byte) []byte {
		if len(raw) > maxSeen {
			maxSeen = len(raw)
		}
		return raw
	}
	for i := 0; i < 8; i++ {
		if _, err := h.a.Send(h.now, make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.run(40)
	if len(h.payloadsDelivered(h.b)) != 8 {
		t.Fatalf("delivery failed under size limit")
	}
	if maxSeen > 600 {
		t.Fatalf("bundle of %d bytes exceeds CoalesceLimit 600", maxSeen)
	}
}

func TestBidirectionalPiggyback(t *testing.T) {
	// The paper's §3.2.1 scenario: both directions active, A and S packets
	// of independent channels sharing datagrams.
	cfg := coalesceConfig(true)
	h := newHarness(t, cfg)
	h.handshake()
	for i := 0; i < 4; i++ {
		if _, err := h.a.Send(h.now, []byte("a->b")); err != nil {
			t.Fatal(err)
		}
		if _, err := h.b.Send(h.now, []byte("b->a")); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.b.Flush(h.now)
	h.runFor(2 * time.Second)
	if got := len(h.payloadsDelivered(h.b)); got != 4 {
		t.Fatalf("b delivered %d/4", got)
	}
	if got := len(h.payloadsDelivered(h.a)); got != 4 {
		t.Fatalf("a delivered %d/4", got)
	}
	if h.countKind(h.a, EventAcked) != 4 || h.countKind(h.b, EventAcked) != 4 {
		t.Fatalf("acks incomplete under piggybacking")
	}
}

func TestNestedBundleRejected(t *testing.T) {
	h := newHarness(t, coalesceConfig(false))
	h.handshake()
	inner, err := packet.Encode(packet.Header{
		Type: packet.TypeA1, Suite: h.a.suite.ID(),
		Flags: FlagInitiator, Assoc: h.a.Assoc(), Seq: 1,
	}, &packet.A1{AuthIdx: 1, Auth: make([]byte, 20), KeyIdx: 2})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := packet.EncodeBundle(h.a.suite.ID(), h.a.Assoc(), FlagInitiator, [][]byte{inner, inner})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := packet.EncodeBundle(h.a.suite.ID(), h.a.Assoc(), FlagInitiator, [][]byte{bundle, inner}); err == nil {
		t.Fatalf("nested bundle encoded")
	}
}
