package core

import (
	"fmt"
	"testing"

	"alpha/internal/packet"
)

func sendAll(h *harness, n int, tag string) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("%s-%d", tag, i))); err != nil {
			h.t.Fatalf("Send(%s-%d): %v", tag, i, err)
		}
	}
	h.run(60)
}

func TestSetProfileAppliesAtExchangeBoundary(t *testing.T) {
	cfg := baseConfig(packet.ModeC, true)
	cfg.BatchSize = 4
	h := newHarness(t, cfg)
	h.handshake()

	sendAll(h, 4, "c")
	if err := h.a.SetProfile(h.now, Profile{Mode: packet.ModeM, BatchSize: 2}); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	if p := h.a.Profile(); p.Mode != packet.ModeM || p.BatchSize != 2 {
		t.Fatalf("profile = %+v after SetProfile", p)
	}
	sendAll(h, 4, "m")

	if got := len(h.payloadsDelivered(h.b)); got != 8 {
		t.Fatalf("delivered %d payloads, want 8", got)
	}
	if drops := h.countKind(h.b, EventDropped); drops != 0 {
		t.Fatalf("receiver dropped %d packets across the transition: %v", drops, h.firstDrop(h.b))
	}
	// The transition surfaces as exactly one ModeChanged event with the
	// new profile, and moves the mode/batch gauges.
	var changed []Event
	for _, ev := range h.eventsOf(h.a) {
		if ev.Kind == EventModeChanged {
			changed = append(changed, ev)
		}
	}
	if len(changed) != 1 || changed[0].Mode != packet.ModeM || changed[0].Batch != 2 {
		t.Fatalf("ModeChanged events = %+v, want one M/2", changed)
	}
	tel := h.a.Telemetry()
	if tel.Mode.Load() != int64(packet.ModeM) || tel.BatchSize.Load() != 2 {
		t.Fatalf("gauges = mode %d batch %d", tel.Mode.Load(), tel.BatchSize.Load())
	}
	if tel.ModeChanges.Load() != 1 {
		t.Fatalf("mode_changes = %d, want 1", tel.ModeChanges.Load())
	}
}

func TestSetProfileMidExchangeStaysPinned(t *testing.T) {
	// An ALPHA-M exchange is announced, then the profile switches to C
	// before the A1 returns. The S2s must still go out in M — the mode the
	// S1 announced — or the receiver's per-exchange verifier rejects them.
	cfg := baseConfig(packet.ModeM, true)
	cfg.BatchSize = 4
	h := newHarness(t, cfg)
	h.handshake()

	for i := 0; i < 4; i++ {
		if _, err := h.a.Send(h.now, []byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	outA, _ := h.a.Poll(h.now) // S1 for the full batch
	if h.a.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", h.a.InFlight())
	}
	for _, raw := range outA {
		h.deliver(h.b, raw)
	}
	outB, _ := h.b.Poll(h.now) // A1

	// The exchange is mid-flight: S1 sent, A1 not yet processed. Switch.
	if err := h.a.SetProfile(h.now, Profile{Mode: packet.ModeC, BatchSize: 8}); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	for _, raw := range outB {
		h.deliver(h.a, raw) // triggers sendS2s under the pinned mode
	}
	h.run(60)

	if got := len(h.payloadsDelivered(h.b)); got != 4 {
		t.Fatalf("delivered %d payloads, want 4", got)
	}
	if drops := h.countKind(h.b, EventDropped); drops != 0 {
		t.Fatalf("mid-flight transition broke verification: %v", h.firstDrop(h.b))
	}
	if acked := h.countKind(h.a, EventAcked); acked != 4 {
		t.Fatalf("acked %d, want 4", acked)
	}
}

func TestSetProfileAtRekeyBoundary(t *testing.T) {
	// A profile transition issued while a rekey announcement is in flight:
	// the rekey exchange finishes under its pinned profile, the chains
	// swap, and traffic continues under the new profile on fresh chains.
	cfg := baseConfig(packet.ModeC, true)
	cfg.BatchSize = 2
	h := newHarness(t, cfg)
	h.handshake()

	sendAll(h, 2, "pre")
	if _, err := h.a.Rekey(h.now); err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	if err := h.a.SetProfile(h.now, Profile{Mode: packet.ModeM, BatchSize: 4}); err != nil {
		t.Fatalf("SetProfile during rekey: %v", err)
	}
	h.run(80)
	if got := h.countKind(h.a, EventRekeyed); got != 1 {
		t.Fatalf("rekeyed %d times, want 1 (profile change broke the rekey)", got)
	}
	sendAll(h, 4, "post")
	if got := len(h.payloadsDelivered(h.b)); got != 6 {
		t.Fatalf("delivered %d payloads, want 6", got)
	}
	if drops := h.countKind(h.b, EventDropped); drops != 0 {
		t.Fatalf("drops after rekey+transition: %v", h.firstDrop(h.b))
	}
}

func TestSetProfileValidation(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeC, true))
	h.handshake()

	if err := h.a.SetProfile(h.now, Profile{Mode: packet.Mode(99), BatchSize: 4}); err == nil {
		t.Fatal("invalid mode accepted")
	}
	if err := h.a.SetProfile(h.now, Profile{Mode: packet.ModeC, BatchSize: -1}); err == nil {
		t.Fatal("negative batch accepted")
	}
	if p := h.a.Profile(); p.Mode != packet.ModeC || p.BatchSize != DefaultBatchSize {
		t.Fatalf("rejected profile leaked into config: %+v", p)
	}
	// Basic clamps to one message per exchange; batch 0 selects defaults.
	if err := h.a.SetProfile(h.now, Profile{Mode: packet.ModeBase, BatchSize: 64}); err != nil {
		t.Fatalf("SetProfile(Base): %v", err)
	}
	if p := h.a.Profile(); p.Mode != packet.ModeBase || p.BatchSize != 1 {
		t.Fatalf("Base profile = %+v, want batch 1", p)
	}
	if err := h.a.SetProfile(h.now, Profile{Mode: packet.ModeM}); err != nil {
		t.Fatalf("SetProfile(M, default batch): %v", err)
	}
	if p := h.a.Profile(); p.BatchSize != DefaultBatchSize {
		t.Fatalf("defaulted batch = %d", p.BatchSize)
	}
	// A no-op transition emits no event and moves no counter.
	before := h.a.Telemetry().ModeChanges.Load()
	if err := h.a.SetProfile(h.now, Profile{Mode: packet.ModeM, BatchSize: DefaultBatchSize}); err != nil {
		t.Fatalf("no-op SetProfile: %v", err)
	}
	if got := h.a.Telemetry().ModeChanges.Load(); got != before {
		t.Fatalf("no-op transition counted: %d -> %d", before, got)
	}
}

func TestSetChainLowFraction(t *testing.T) {
	cfg := baseConfig(packet.ModeBase, false)
	cfg.ChainLen = 16
	h := newHarness(t, cfg)
	h.handshake()

	if err := h.a.SetChainLowFraction(0); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if err := h.a.SetChainLowFraction(1); err == nil {
		t.Fatal("fraction 1 accepted")
	}
	// At 0.99 the very first consumed pair puts the chain "low".
	if err := h.a.SetChainLowFraction(0.99); err != nil {
		t.Fatal(err)
	}
	sendAll(h, 1, "one")
	if got := h.countKind(h.a, EventChainLow); got != 1 {
		t.Fatalf("ChainLow events = %d, want 1", got)
	}
	// Lowering the threshold re-arms the warning: it must fire again when
	// the chain crosses the new, deeper watermark.
	if err := h.a.SetChainLowFraction(0.2); err != nil {
		t.Fatal(err)
	}
	if got := h.a.ChainLowFraction(); got != 0.2 {
		t.Fatalf("ChainLowFraction = %v", got)
	}
	sendAll(h, 6, "more") // 7 exchanges total: remaining 2 of 16 < 0.2*16
	if got := h.countKind(h.a, EventChainLow); got != 2 {
		t.Fatalf("ChainLow events = %d, want 2 (re-armed warning)", got)
	}
}
