// Static bootstrapping (§3.4 of the paper): "For pre-configured scenarios,
// such as static wireless sensor networks, base stations can provide nodes
// with pair-wise anchors."
//
// A Provisioner plays the base station: it mints matching endpoint halves
// for a pair of nodes — each side gets its own chains plus the peer's
// anchors — so associations come up with zero on-air handshake packets and
// zero asymmetric cryptography. Relays that should verify the pair's
// traffic are provisioned with the anchor set (RelaySeed) instead of
// learning it from an observed handshake.

package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"alpha/internal/hashchain"
	"alpha/internal/suite"
)

// AnchorSet is everything a third party (a relay) needs to verify one
// association: the association ID, the suite, and all four chain anchors.
type AnchorSet struct {
	Assoc uint64
	// Suite is the wire ID of the association's hash suite.
	Suite uint8
	// InitSig/InitAck anchor the initiator-role host's chains;
	// RespSig/RespAck the responder's.
	InitSig, InitAck []byte
	RespSig, RespAck []byte
}

// Provisioned is one node's half of a preconfigured association.
type Provisioned struct {
	cfg       Config
	assoc     uint64
	initiator bool
	sig, ack  hashchain.Owner
	// sigSecret/ackSecret are the chain seeds, retained so the half can
	// be serialized (Record) and rebuilt on another machine.
	sigSecret, ackSecret []byte
	peerSig              []byte // peer anchors
	peerAck              []byte
}

// Provision mints a matched endpoint pair: feed each Provisioned half to
// NewPreconfiguredEndpoint on its node. Both halves share cfg (suite, mode,
// chain length); the association ID is drawn at random.
func Provision(cfg Config) (initiator, responder *Provisioned, anchors AnchorSet, err error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, nil, AnchorSet{}, err
	}
	var aid [8]byte
	if _, err := rand.Read(aid[:]); err != nil {
		return nil, nil, AnchorSet{}, fmt.Errorf("core: generating association id: %w", err)
	}
	assoc := binary.BigEndian.Uint64(aid[:])
	if assoc == 0 {
		assoc = 1
	}
	mk := func() (secret []byte, sig, ack hashchain.Owner, err error) {
		secret = make([]byte, 2*c.Suite.Size())
		if _, err := rand.Read(secret); err != nil {
			return nil, nil, nil, err
		}
		if sig, ack, err = ownersFromSecret(c, secret); err != nil {
			return nil, nil, nil, err
		}
		return secret, sig, ack, nil
	}
	iSecret, iSig, iAck, err := mk()
	if err != nil {
		return nil, nil, AnchorSet{}, err
	}
	rSecret, rSig, rAck, err := mk()
	if err != nil {
		return nil, nil, AnchorSet{}, err
	}
	anchors = AnchorSet{
		Assoc:   assoc,
		Suite:   uint8(c.Suite.ID()),
		InitSig: iSig.Anchor(), InitAck: iAck.Anchor(),
		RespSig: rSig.Anchor(), RespAck: rAck.Anchor(),
	}
	initiator = &Provisioned{
		cfg: c, assoc: assoc, initiator: true,
		sig: iSig, ack: iAck,
		sigSecret: iSecret[:c.Suite.Size()], ackSecret: iSecret[c.Suite.Size():],
		peerSig: rSig.Anchor(), peerAck: rAck.Anchor(),
	}
	responder = &Provisioned{
		cfg: c, assoc: assoc, initiator: false,
		sig: rSig, ack: rAck,
		sigSecret: rSecret[:c.Suite.Size()], ackSecret: rSecret[c.Suite.Size():],
		peerSig: iSig.Anchor(), peerAck: iAck.Anchor(),
	}
	return initiator, responder, anchors, nil
}

// ownersFromSecret derives the sig/ack chain pair from a combined secret
// (first half signature seed, second half acknowledgment seed).
func ownersFromSecret(c Config, secret []byte) (sig, ack hashchain.Owner, err error) {
	h := c.Suite.Size()
	if len(secret) != 2*h {
		return nil, nil, fmt.Errorf("core: provisioning secret must be %d bytes", 2*h)
	}
	build := func(tagOdd, tagEven, seed []byte) (hashchain.Owner, error) {
		if c.CheckpointInterval > 0 {
			return hashchain.NewCheckpoint(c.Suite, tagOdd, tagEven, seed, c.ChainLen, c.CheckpointInterval)
		}
		return hashchain.New(c.Suite, tagOdd, tagEven, seed, c.ChainLen)
	}
	if sig, err = build(hashchain.TagS1, hashchain.TagS2, secret[:h]); err != nil {
		return nil, nil, err
	}
	if ack, err = build(hashchain.TagA1, hashchain.TagA2, secret[h:]); err != nil {
		return nil, nil, err
	}
	return sig, ack, nil
}

// ProvisionRecord is the JSON-serializable form of a Provisioned half, for
// distribution to nodes before deployment. It contains the chain seeds:
// treat it like a private key.
type ProvisionRecord struct {
	Assoc     uint64 `json:"assoc"`
	Initiator bool   `json:"initiator"`
	Suite     uint8  `json:"suite"`
	ChainLen  int    `json:"chain_len"`
	// Secret concatenates the signature and acknowledgment chain seeds.
	Secret        []byte `json:"secret"`
	PeerSigAnchor []byte `json:"peer_sig_anchor"`
	PeerAckAnchor []byte `json:"peer_ack_anchor"`
}

// Record serializes the half for distribution.
func (p *Provisioned) Record() ProvisionRecord {
	return ProvisionRecord{
		Assoc:         p.assoc,
		Initiator:     p.initiator,
		Suite:         uint8(p.cfg.Suite.ID()),
		ChainLen:      p.cfg.ChainLen,
		Secret:        append(append([]byte(nil), p.sigSecret...), p.ackSecret...),
		PeerSigAnchor: p.peerSig,
		PeerAckAnchor: p.peerAck,
	}
}

// FromRecord rebuilds a Provisioned half on the target node. cfg supplies
// the runtime knobs (mode, batching, timers); the record overrides suite
// and chain length so both halves always agree on the cryptography.
func FromRecord(cfg Config, rec ProvisionRecord) (*Provisioned, error) {
	st, err := suite.ByID(suite.ID(rec.Suite))
	if err != nil {
		return nil, err
	}
	cfg.Suite = st
	cfg.ChainLen = rec.ChainLen
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if rec.Assoc == 0 {
		return nil, errors.New("core: provisioning record has no association id")
	}
	if len(rec.PeerSigAnchor) != st.Size() || len(rec.PeerAckAnchor) != st.Size() {
		return nil, errors.New("core: provisioning record peer anchors malformed")
	}
	sig, ack, err := ownersFromSecret(c, rec.Secret)
	if err != nil {
		return nil, err
	}
	h := st.Size()
	return &Provisioned{
		cfg: c, assoc: rec.Assoc, initiator: rec.Initiator,
		sig: sig, ack: ack,
		sigSecret: rec.Secret[:h], ackSecret: rec.Secret[h:],
		peerSig: rec.PeerSigAnchor, peerAck: rec.PeerAckAnchor,
	}, nil
}

// NewPreconfiguredEndpoint builds an established endpoint from provisioned
// material: no handshake packets are ever sent; the association is usable
// immediately (§3.4's static bootstrapping).
func NewPreconfiguredEndpoint(p *Provisioned) (*Endpoint, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil provisioning")
	}
	e := &Endpoint{
		cfg:         p.cfg,
		suite:       p.cfg.Suite,
		assoc:       p.assoc,
		initiator:   p.initiator,
		established: true,
		sigChain:    p.sig,
		ackChain:    p.ack,
		nextSeq:     1,
		tx:          make(map[uint32]*txExchange),
		rx:          make(map[uint32]*rxExchange),
		tracer:      p.cfg.Tracer,
	}
	e.tel.Init()
	var err error
	if e.peerSig, err = hashchain.NewSignatureWalker(e.suite, p.peerSig); err != nil {
		return nil, err
	}
	if e.peerAck, err = hashchain.NewAcknowledgmentWalker(e.suite, p.peerAck); err != nil {
		return nil, err
	}
	e.nonce = make([]byte, e.suite.Size())
	if _, err := rand.Read(e.nonce); err != nil {
		return nil, err
	}
	e.noteChainGauges()
	return e, nil
}
