package core

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"testing"
	"time"

	"alpha/internal/packet"
	"alpha/internal/suite"
)

func TestHandshakeEstablishes(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	h.handshake()
	if h.a.Assoc() == 0 || h.a.Assoc() != h.b.Assoc() {
		t.Fatalf("association ids diverge: %x vs %x", h.a.Assoc(), h.b.Assoc())
	}
	if h.countKind(h.a, EventEstablished) != 1 || h.countKind(h.b, EventEstablished) != 1 {
		t.Fatalf("expected exactly one Established event per side")
	}
	if !h.a.Initiator() || h.b.Initiator() {
		t.Fatalf("initiator roles wrong")
	}
}

func TestHandshakeRetransmitsLostHS2(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	// Drop the first HS2 from b to a.
	dropped := false
	h.dropBtoA = func(raw []byte) bool {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeHS2 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	hs1, err := h.a.StartHandshake(h.now)
	if err != nil {
		t.Fatal(err)
	}
	h.deliver(h.b, hs1)
	h.runFor(2 * time.Second)
	if !dropped {
		t.Fatalf("test did not exercise the HS2 drop")
	}
	if !h.a.Established() {
		t.Fatalf("initiator never established after HS2 loss")
	}
}

func TestBasicUnreliableExchange(t *testing.T) {
	for _, mode := range []packet.Mode{packet.ModeBase, packet.ModeC, packet.ModeM} {
		t.Run(mode.String(), func(t *testing.T) {
			h := newHarness(t, baseConfig(mode, false))
			h.handshake()
			want := []byte("attack at dawn")
			if _, err := h.a.Send(h.now, want); err != nil {
				t.Fatalf("Send: %v", err)
			}
			h.a.Flush(h.now)
			h.run(20)
			got := h.payloadsDelivered(h.b)
			if len(got) != 1 || !bytes.Equal(got[0], want) {
				t.Fatalf("delivered %q, want [%q]", got, want)
			}
			if d := h.firstDrop(h.b); d != nil {
				t.Fatalf("unexpected drop at verifier: %v", d.Err)
			}
		})
	}
}

func TestReliableExchangeAcks(t *testing.T) {
	for _, mode := range []packet.Mode{packet.ModeBase, packet.ModeC, packet.ModeM} {
		t.Run(mode.String(), func(t *testing.T) {
			h := newHarness(t, baseConfig(mode, true))
			h.handshake()
			id, err := h.a.Send(h.now, []byte("hello"))
			if err != nil {
				t.Fatal(err)
			}
			h.a.Flush(h.now)
			h.run(30)
			var acked bool
			for _, ev := range h.eventsOf(h.a) {
				if ev.Kind == EventAcked && ev.MsgID == id {
					acked = true
				}
			}
			if !acked {
				t.Fatalf("message %d never acked; events: %+v", id, h.eventsOf(h.a))
			}
			if h.a.InFlight() != 0 {
				t.Fatalf("exchange still in flight after full ack")
			}
		})
	}
}

func TestBatchDeliveryAllModes(t *testing.T) {
	const n = 9
	for _, mode := range []packet.Mode{packet.ModeC, packet.ModeM} {
		for _, reliable := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/reliable=%v", mode, reliable), func(t *testing.T) {
				cfg := baseConfig(mode, reliable)
				cfg.BatchSize = n
				h := newHarness(t, cfg)
				h.handshake()
				var want [][]byte
				for i := 0; i < n; i++ {
					p := []byte(fmt.Sprintf("message-%02d", i))
					want = append(want, p)
					if _, err := h.a.Send(h.now, p); err != nil {
						t.Fatal(err)
					}
				}
				h.a.Flush(h.now)
				h.run(40)
				got := h.payloadsDelivered(h.b)
				if len(got) != n {
					t.Fatalf("delivered %d messages, want %d", len(got), n)
				}
				seen := make(map[string]bool)
				for _, g := range got {
					seen[string(g)] = true
				}
				for _, w := range want {
					if !seen[string(w)] {
						t.Fatalf("message %q never delivered", w)
					}
				}
				if reliable && h.countKind(h.a, EventAcked) != n {
					t.Fatalf("acked %d, want %d", h.countKind(h.a, EventAcked), n)
				}
			})
		}
	}
}

func TestS1LossRecovers(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	drops := 0
	h.dropAtoB = func(raw []byte) bool {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeS1 && drops < 2 {
			drops++
			return true
		}
		return false
	}
	if _, err := h.a.Send(h.now, []byte("survives S1 loss")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.runFor(3 * time.Second)
	if drops != 2 {
		t.Fatalf("expected 2 S1 drops, got %d", drops)
	}
	if got := h.payloadsDelivered(h.b); len(got) != 1 {
		t.Fatalf("message not delivered after S1 loss: %d", len(got))
	}
	if h.countKind(h.a, EventAcked) != 1 {
		t.Fatalf("message not acked after S1 loss")
	}
}

func TestS2LossRecoversReliably(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	drops := 0
	h.dropAtoB = func(raw []byte) bool {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeS2 && drops < 2 {
			drops++
			return true
		}
		return false
	}
	if _, err := h.a.Send(h.now, []byte("survives S2 loss")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.runFor(3 * time.Second)
	if got := h.payloadsDelivered(h.b); len(got) != 1 {
		t.Fatalf("message not delivered after S2 loss: %d", len(got))
	}
	if h.countKind(h.a, EventAcked) != 1 {
		t.Fatalf("message not acked after S2 loss")
	}
}

func TestA1LossTriggersS1Retransmit(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	drops := 0
	h.dropBtoA = func(raw []byte) bool {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeA1 && drops < 1 {
			drops++
			return true
		}
		return false
	}
	if _, err := h.a.Send(h.now, []byte("survives A1 loss")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.runFor(3 * time.Second)
	if got := h.payloadsDelivered(h.b); len(got) != 1 {
		t.Fatalf("message not delivered after A1 loss")
	}
	if h.countKind(h.a, EventAcked) != 1 {
		t.Fatalf("message not acked after A1 loss")
	}
}

func TestTamperedS2Dropped(t *testing.T) {
	for _, mode := range []packet.Mode{packet.ModeBase, packet.ModeC, packet.ModeM} {
		t.Run(mode.String(), func(t *testing.T) {
			h := newHarness(t, baseConfig(mode, false))
			h.handshake()
			h.mangle = func(raw []byte) []byte {
				hdr, msg, err := packet.Decode(raw)
				if err != nil || hdr.Type != packet.TypeS2 {
					return raw
				}
				s2 := msg.(*packet.S2)
				s2.Payload = []byte("evil substitute")
				out, err := packet.Encode(hdr, s2)
				if err != nil {
					t.Fatalf("re-encode: %v", err)
				}
				return out
			}
			if _, err := h.a.Send(h.now, []byte("original message")); err != nil {
				t.Fatal(err)
			}
			h.a.Flush(h.now)
			h.run(20)
			if got := h.payloadsDelivered(h.b); len(got) != 0 {
				t.Fatalf("tampered payload delivered: %q", got)
			}
			d := h.firstDrop(h.b)
			if d == nil {
				t.Fatalf("no drop event for tampered S2")
			}
			wantErr := ErrBadMAC
			if mode == packet.ModeM {
				wantErr = ErrBadProof
			}
			if !errors.Is(d.Err, wantErr) {
				t.Fatalf("drop reason %v, want %v", d.Err, wantErr)
			}
		})
	}
}

func TestTamperedS2NackedAndRecovered(t *testing.T) {
	// With reliable delivery, a tampered S2 produces a verifiable nack and
	// the signer retransmits; if the attacker then leaves the path, the
	// retransmission goes through.
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	tampered := 0
	h.mangle = func(raw []byte) []byte {
		hdr, msg, err := packet.Decode(raw)
		if err != nil || hdr.Type != packet.TypeS2 || tampered >= 1 {
			return raw
		}
		tampered++
		s2 := msg.(*packet.S2)
		s2.Payload = []byte("evil substitute")
		out, _ := packet.Encode(hdr, s2)
		return out
	}
	if _, err := h.a.Send(h.now, []byte("original")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.runFor(3 * time.Second)
	if h.countKind(h.a, EventNacked) == 0 {
		t.Fatalf("signer never saw the nack")
	}
	got := h.payloadsDelivered(h.b)
	if len(got) != 1 || string(got[0]) != "original" {
		t.Fatalf("original message not recovered: %q", got)
	}
	if h.countKind(h.a, EventAcked) != 1 {
		t.Fatalf("recovered message not acked")
	}
}

func TestForgedS1Dropped(t *testing.T) {
	// A third endpoint with its own chains forges S1 packets for the
	// victim association; the verifier must reject them because the chain
	// elements do not extend the trusted anchor.
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	h.handshake()
	attacker, err := NewEndpoint(baseConfig(packet.ModeBase, false))
	if err != nil {
		t.Fatal(err)
	}
	// Splice the attacker's chain elements into a forged S1 for the real
	// association.
	pair, err := attacker.sigChain.NextPair()
	if err != nil {
		t.Fatal(err)
	}
	forged := &packet.S1{
		Mode:    packet.ModeBase,
		AuthIdx: pair.AuthIdx,
		Auth:    pair.Auth,
		KeyIdx:  pair.KeyIdx,
		MACs:    [][]byte{make([]byte, suite.SHA1().Size())},
	}
	hdr := packet.Header{
		Type:  packet.TypeS1,
		Suite: suite.IDSHA1,
		Flags: FlagInitiator,
		Assoc: h.a.Assoc(),
		Seq:   99,
	}
	raw, err := packet.Encode(hdr, forged)
	if err != nil {
		t.Fatal(err)
	}
	h.deliver(h.b, raw)
	d := h.firstDrop(h.b)
	if d == nil || !errors.Is(d.Err, ErrBadAuthElement) {
		t.Fatalf("forged S1 not rejected correctly: %+v", d)
	}
}

func TestReplayedS2Ignored(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	h.handshake()
	var capturedS2 []byte
	h.mangle = func(raw []byte) []byte {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeS2 && capturedS2 == nil {
			capturedS2 = append([]byte(nil), raw...)
		}
		return raw
	}
	if _, err := h.a.Send(h.now, []byte("once only")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(20)
	if capturedS2 == nil {
		t.Fatalf("no S2 captured")
	}
	before := h.countKind(h.b, EventDelivered)
	h.deliver(h.b, capturedS2)
	h.deliver(h.b, capturedS2)
	if after := h.countKind(h.b, EventDelivered); after != before {
		t.Fatalf("replayed S2 delivered again: %d -> %d", before, after)
	}
}

func TestUnsolicitedS2Dropped(t *testing.T) {
	// An S2 with no preceding S1 must be dropped: this is the on-path
	// filtering property that suppresses unsolicited traffic (§3.5).
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	h.handshake()
	s2 := &packet.S2{
		Mode:     packet.ModeBase,
		KeyIdx:   2,
		Key:      make([]byte, suite.SHA1().Size()),
		MsgIndex: 0,
		Payload:  []byte("unsolicited"),
	}
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeS2, Suite: suite.IDSHA1,
		Flags: FlagInitiator, Assoc: h.a.Assoc(), Seq: 42,
	}, s2)
	if err != nil {
		t.Fatal(err)
	}
	h.deliver(h.b, raw)
	d := h.firstDrop(h.b)
	if d == nil || !errors.Is(d.Err, ErrUnsolicited) {
		t.Fatalf("unsolicited S2 not dropped: %+v", d)
	}
}

func TestWrongAssociationDropped(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	h.handshake()
	var s1raw []byte
	h.mangle = func(raw []byte) []byte {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeS1 && s1raw == nil {
			s1raw = append([]byte(nil), raw...)
		}
		return raw
	}
	if _, err := h.a.Send(h.now, []byte("x")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(20)
	hdr, msg, err := packet.Decode(s1raw)
	if err != nil {
		t.Fatal(err)
	}
	hdr.Assoc ^= 0xdeadbeef
	raw, err := packet.Encode(hdr, msg)
	if err != nil {
		t.Fatal(err)
	}
	h.deliver(h.b, raw)
	d := h.firstDrop(h.b)
	if d == nil || !errors.Is(d.Err, ErrUnknownAssoc) {
		t.Fatalf("foreign-association packet not dropped: %+v", d)
	}
}

func TestDirectionFlagEnforced(t *testing.T) {
	// Reflecting an initiator packet back at the initiator must fail the
	// direction check rather than confuse the state machines.
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	h.handshake()
	var s1raw []byte
	h.mangle = func(raw []byte) []byte {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeS1 && s1raw == nil {
			s1raw = append([]byte(nil), raw...)
		}
		return raw
	}
	if _, err := h.a.Send(h.now, []byte("x")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(20)
	h.deliver(h.a, s1raw) // reflect back to sender
	d := h.firstDrop(h.a)
	if d == nil || !errors.Is(d.Err, ErrBadDirection) {
		t.Fatalf("reflected packet not dropped: %+v", d)
	}
}

func TestChainExhaustionSurfacesError(t *testing.T) {
	cfg := baseConfig(packet.ModeBase, false)
	cfg.ChainLen = 8 // 4 exchanges
	h := newHarness(t, cfg)
	h.handshake()
	for i := 0; i < 6; i++ {
		if _, err := h.a.Send(h.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		h.a.Flush(h.now)
		h.run(20)
	}
	if h.countKind(h.a, EventSendFailed) == 0 {
		t.Fatalf("chain exhaustion did not surface a SendFailed event")
	}
	if h.countKind(h.a, EventChainLow) == 0 {
		t.Fatalf("no ChainLow warning before exhaustion")
	}
	if got := len(h.payloadsDelivered(h.b)); got != 4 {
		t.Fatalf("delivered %d messages before exhaustion, want 4", got)
	}
}

func TestProtectedHandshake(t *testing.T) {
	keyA, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(packet.ModeBase, false)
	cfgA := cfg
	cfgA.Identity = keyA
	cfgA.VerifyPeer = func(pub *rsa.PublicKey) error {
		if pub.N.Cmp(keyB.PublicKey.N) != 0 {
			return errors.New("unexpected peer key")
		}
		return nil
	}
	cfgB := cfg
	cfgB.Identity = keyB
	cfgB.VerifyPeer = func(pub *rsa.PublicKey) error {
		if pub.N.Cmp(keyA.PublicKey.N) != 0 {
			return errors.New("unexpected peer key")
		}
		return nil
	}
	a, err := NewEndpoint(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, a: a, b: b, now: time.Unix(1700000000, 0), events: make(map[*Endpoint][]Event)}
	h.handshake()
	// And a message flows.
	if _, err := h.a.Send(h.now, []byte("signed bootstrap")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(20)
	if len(h.payloadsDelivered(h.b)) != 1 {
		t.Fatalf("message not delivered over protected association")
	}
}

func TestProtectedHandshakeRejectsImpostor(t *testing.T) {
	keyA, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	keyWanted, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := baseConfig(packet.ModeBase, false)
	cfgA.Identity = keyA // signs with keyA...
	cfgB := baseConfig(packet.ModeBase, false)
	cfgB.VerifyPeer = func(pub *rsa.PublicKey) error {
		if pub.N.Cmp(keyWanted.PublicKey.N) != 0 {
			return errors.New("impostor") // ...but B pins keyWanted
		}
		return nil
	}
	a, err := NewEndpoint(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, a: a, b: b, now: time.Unix(1700000000, 0), events: make(map[*Endpoint][]Event)}
	hs1, err := a.StartHandshake(h.now)
	if err != nil {
		t.Fatal(err)
	}
	h.deliver(b, hs1)
	if b.Established() {
		t.Fatalf("responder accepted impostor")
	}
	d := h.firstDrop(b)
	if d == nil || !errors.Is(d.Err, ErrBadHandshake) {
		t.Fatalf("expected handshake rejection, got %+v", d)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	if _, err := h.a.Send(h.now, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.b.Send(h.now, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.b.Flush(h.now)
	h.run(40)
	if got := h.payloadsDelivered(h.b); len(got) != 1 || string(got[0]) != "ping" {
		t.Fatalf("b delivered %q", got)
	}
	if got := h.payloadsDelivered(h.a); len(got) != 1 || string(got[0]) != "pong" {
		t.Fatalf("a delivered %q", got)
	}
	if h.countKind(h.a, EventAcked) != 1 || h.countKind(h.b, EventAcked) != 1 {
		t.Fatalf("both directions should ack")
	}
}

func TestManySequentialExchanges(t *testing.T) {
	cfg := baseConfig(packet.ModeC, true)
	cfg.ChainLen = 512
	cfg.BatchSize = 4
	h := newHarness(t, cfg)
	h.handshake()
	const total = 80
	for i := 0; i < total; i++ {
		if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
		if i%4 == 3 {
			h.run(20)
		}
	}
	h.a.Flush(h.now)
	h.runFor(2 * time.Second)
	if got := len(h.payloadsDelivered(h.b)); got != total {
		t.Fatalf("delivered %d, want %d", got, total)
	}
	if acked := h.countKind(h.a, EventAcked); acked != total {
		t.Fatalf("acked %d, want %d", acked, total)
	}
}

func TestCheckpointChainEndpointInterops(t *testing.T) {
	cfgA := baseConfig(packet.ModeBase, true)
	cfgA.CheckpointInterval = 8
	a, err := NewEndpoint(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(baseConfig(packet.ModeBase, true))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, a: a, b: b, now: time.Unix(1700000000, 0), events: make(map[*Endpoint][]Event)}
	h.handshake()
	for i := 0; i < 5; i++ {
		if _, err := h.a.Send(h.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		h.a.Flush(h.now)
		h.run(20)
	}
	if got := len(h.payloadsDelivered(h.b)); got != 5 {
		t.Fatalf("delivered %d, want 5", got)
	}
}

func TestStatsProgress(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	if _, err := h.a.Send(h.now, []byte("counted")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(30)
	sa, sb := h.a.Stats(), h.b.Stats()
	if sa.SentS1 != 1 || sa.SentS2 != 1 || sa.RecvA1 != 1 || sa.RecvA2 != 1 {
		t.Fatalf("sender stats off: %+v", sa)
	}
	if sb.RecvS1 != 1 || sb.RecvS2 != 1 || sb.SentA1 != 1 || sb.SentA2 != 1 || sb.Delivered != 1 {
		t.Fatalf("receiver stats off: %+v", sb)
	}
	if sa.BytesSent == 0 || sb.BytesReceived == 0 {
		t.Fatalf("byte counters never moved")
	}
}
