// Endpoint construction, handshake handling, datagram dispatch and timers.

package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"alpha/internal/hashchain"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
)

// FlagInitiator marks packets sent by the association's initiator so that
// responders and relays can attribute them to the correct chain set without
// relying on network addresses.
const FlagInitiator = 1 << 2

// Endpoint is one end of an ALPHA association. It is not safe for
// concurrent use; transports serialize access.
type Endpoint struct {
	cfg   Config
	suite suite.Suite

	assoc       uint64
	initiator   bool
	established bool
	hsRetries   int
	hsDeadline  time.Time
	hsPacket    []byte // encoded local HS for retransmission

	// Local chains: signing our outgoing channel, acknowledging our
	// incoming one.
	sigChain hashchain.Owner
	ackChain hashchain.Owner

	// Walkers over the peer's chains. The prev* walkers are retained
	// during a rekey grace window so that a peer that announced new
	// anchors but failed to commit (lost ack, exhausted retries) can
	// still be verified; see verifyPeerSig.
	peerSig     *hashchain.Walker
	peerAck     *hashchain.Walker
	prevPeerSig *hashchain.Walker
	prevPeerAck *hashchain.Walker

	// rekey tracks an in-flight local chain rotation.
	rekey *rekeyState

	// Sender half.
	nextSeq   uint32
	nextMsgID uint64
	queue     []*outMsg
	queuedAt  time.Time
	tx        map[uint32]*txExchange
	txOrder   []uint32

	// Receiver half.
	rx      map[uint32]*rxExchange
	rxOrder []uint32

	outbox   [][]byte
	events   []Event
	chainLow bool
	nonce    []byte

	// Pre-admitted peer anchors: installed by the transport when an
	// admission token bound the initiator's anchors, letting adoptPeer
	// skip the §3.4 signature verification for exactly those anchors.
	preSig, preAck []byte

	// Hot-path scratch: MAC inputs and computed MACs are assembled here
	// instead of freshly allocated per message. Valid only within one
	// MAC-build-or-verify step; the endpoint is single-threaded by
	// contract so no locking is needed.
	macIn  []byte
	macOut []byte
	parts  [4][]byte

	// tel holds the atomic counters behind Stats(): the endpoint's owning
	// goroutine increments while exporters and Stats() read concurrently.
	// tracer is the optional lifecycle tracer from Config; tnow caches the
	// caller-supplied clock of the current entry point (the engine is
	// sans-IO, so traces carry whatever clock the caller runs on).
	tel    telemetry.EndpointMetrics
	tracer *telemetry.Tracer
	tnow   int64

	// Hop-by-hop span state: spans is the optional ring from Config;
	// spanKey/spanStep/spanRole are per-packet scratch set at dispatch so
	// the central drop path can attribute a discard to the exchange and
	// step it belonged to (spanKey stays 0 until a chain element of the
	// current packet's exchange has been seen).
	spans    *obs.SpanRing
	spanKey  uint32
	spanStep uint8
	spanRole uint8
}

// Stats counts endpoint activity, exported for experiments and examples.
type Stats struct {
	SentS1, SentA1, SentS2, SentA2     uint64
	RecvS1, RecvA1, RecvS2, RecvA2     uint64
	Retransmits                        uint64
	Delivered, Acked, Nacked, Dropped  uint64
	BytesSent, BytesReceived, Payloads uint64
	// AckLatencySum/Max track Send-to-verified-ack time (reliable mode);
	// mean latency = AckLatencySum / Acked.
	AckLatencySum time.Duration
	AckLatencyMax time.Duration
}

// MeanAckLatency returns the average Send-to-ack latency, or 0 before the
// first acknowledgment.
func (s Stats) MeanAckLatency() time.Duration {
	if s.Acked == 0 {
		return 0
	}
	return s.AckLatencySum / time.Duration(s.Acked)
}

// Stats returns a snapshot of the endpoint's counters. All fields are read
// atomically, so Stats is safe to call from any goroutine while the
// endpoint is live (individual counters may be from slightly different
// instants, the usual metric-snapshot semantics).
func (e *Endpoint) Stats() Stats {
	m := &e.tel
	return Stats{
		SentS1:        m.SentS1.Load(),
		SentA1:        m.SentA1.Load(),
		SentS2:        m.SentS2.Load(),
		SentA2:        m.SentA2.Load(),
		RecvS1:        m.RecvS1.Load(),
		RecvA1:        m.RecvA1.Load(),
		RecvS2:        m.RecvS2.Load(),
		RecvA2:        m.RecvA2.Load(),
		Retransmits:   m.Retransmits.Load(),
		Delivered:     m.Delivered.Load(),
		Acked:         m.Acked.Load(),
		Nacked:        m.Nacked.Load(),
		Dropped:       m.Dropped.Load(),
		BytesSent:     m.BytesSent.Load(),
		BytesReceived: m.BytesReceived.Load(),
		Payloads:      m.PayloadBytes.Load(),
		AckLatencySum: time.Duration(m.AckLatencyNS.Load()),
		AckLatencyMax: time.Duration(m.AckLatencyMaxNS.Load()),
	}
}

// Telemetry returns the endpoint's live metric set for export (e.g.
// Exporter.Register("alpha_endpoint", ep.Telemetry())). The returned set
// keeps counting as the endpoint runs.
func (e *Endpoint) Telemetry() *telemetry.EndpointMetrics { return &e.tel }

// SetSpans installs (or replaces) the hop-by-hop span ring. Transports use
// this to rebind an endpoint to its association's flight-recorder ring once
// the association ID is known. Must be called from the endpoint's owning
// goroutine.
func (e *Endpoint) SetSpans(r *obs.SpanRing) { e.spans = r }

// NewEndpoint creates an endpoint with fresh hash chains. The endpoint
// becomes usable after a handshake: initiators call StartHandshake and feed
// the HS2 response to Handle; responders simply Handle the incoming HS1.
func NewEndpoint(cfg Config) (*Endpoint, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Endpoint{
		cfg:     cfg,
		suite:   cfg.Suite,
		nextSeq: 1,
		tx:      make(map[uint32]*txExchange),
		rx:      make(map[uint32]*rxExchange),
		tracer:  cfg.Tracer,
		spans:   cfg.Spans,
	}
	e.tel.Init()
	e.tel.Mode.Set(int64(cfg.Mode))
	e.tel.BatchSize.Set(int64(cfg.BatchSize))
	var err error
	if e.sigChain, err = newOwner(cfg, hashchain.TagS1, hashchain.TagS2); err != nil {
		return nil, err
	}
	if e.ackChain, err = newOwner(cfg, hashchain.TagA1, hashchain.TagA2); err != nil {
		return nil, err
	}
	e.nonce = make([]byte, cfg.Suite.Size())
	if _, err := rand.Read(e.nonce); err != nil {
		return nil, fmt.Errorf("core: generating nonce: %w", err)
	}
	e.noteChainGauges()
	return e, nil
}

// noteChainGauges refreshes the chain-pressure gauges from the live chain
// state. Called wherever a chain element is consumed or a chain is swapped,
// so exporters watch depletion approach long before EventChainLow fires.
func (e *Endpoint) noteChainGauges() {
	e.tel.SigChainRemaining.Set(int64(e.sigChain.Remaining()))
	e.tel.SigChainLen.Set(int64(e.sigChain.Len()))
	e.tel.AckChainRemaining.Set(int64(e.ackChain.Remaining()))
	e.tel.AckChainLen.Set(int64(e.ackChain.Len()))
}

func newOwner(cfg Config, tagOdd, tagEven []byte) (hashchain.Owner, error) {
	secret := make([]byte, cfg.Suite.Size())
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("core: generating chain secret: %w", err)
	}
	if cfg.CheckpointInterval > 0 {
		return hashchain.NewCheckpoint(cfg.Suite, tagOdd, tagEven, secret, cfg.ChainLen, cfg.CheckpointInterval)
	}
	return hashchain.New(cfg.Suite, tagOdd, tagEven, secret, cfg.ChainLen)
}

// Assoc returns the association identifier (0 before the handshake).
func (e *Endpoint) Assoc() uint64 { return e.assoc }

// Established reports whether the handshake has completed.
func (e *Endpoint) Established() bool { return e.established }

// Initiator reports whether this endpoint started the handshake.
func (e *Endpoint) Initiator() bool { return e.initiator }

// ChainRemaining returns how many signature-chain elements are undisclosed.
func (e *Endpoint) ChainRemaining() int { return e.sigChain.Remaining() }

// StartHandshake begins an association as initiator. The returned HS1
// packet must be delivered to the responder; it is also queued internally
// for retransmission until the HS2 arrives.
func (e *Endpoint) StartHandshake(now time.Time) ([]byte, error) {
	if e.established || e.assoc != 0 {
		return nil, fmt.Errorf("core: handshake already started")
	}
	var aid [8]byte
	if _, err := rand.Read(aid[:]); err != nil {
		return nil, fmt.Errorf("core: generating association id: %w", err)
	}
	e.assoc = binary.BigEndian.Uint64(aid[:])
	if e.assoc == 0 {
		e.assoc = 1
	}
	e.initiator = true
	hs, err := e.buildHandshake(true)
	if err != nil {
		return nil, err
	}
	hdr := e.header(packet.TypeHS1, 0)
	if hs.HasToken {
		hdr.Flags |= packet.FlagToken
	}
	raw, err := packet.Encode(hdr, hs)
	if err != nil {
		return nil, err
	}
	e.hsPacket = raw
	e.hsDeadline = now.Add(e.cfg.RTO)
	e.tel.BytesSent.Add(uint64(len(raw)))
	return raw, nil
}

// header builds the common header for an outgoing packet.
func (e *Endpoint) header(t packet.Type, seq uint32) packet.Header {
	var flags uint8
	if e.initiator {
		flags |= FlagInitiator
	}
	if e.cfg.Reliable {
		flags |= packet.FlagReliable
	}
	if e.cfg.Identity != nil {
		flags |= packet.FlagProtected
	}
	return packet.Header{
		Type:  t,
		Suite: e.suite.ID(),
		Flags: flags,
		Assoc: e.assoc,
		Seq:   seq,
	}
}

// buildHandshake assembles the local HS body, signing the anchors when a
// protected handshake is configured.
func (e *Endpoint) buildHandshake(initiator bool) (*packet.Handshake, error) {
	hs := &packet.Handshake{
		Initiator: initiator,
		SigAnchor: e.sigChain.Anchor(),
		AckAnchor: e.ackChain.Anchor(),
		ChainLen:  uint32(e.cfg.ChainLen),
		Nonce:     e.nonce,
	}
	if e.cfg.Identity != nil {
		if err := signHandshake(e.cfg.Identity, e.assoc, hs); err != nil {
			return nil, err
		}
	}
	if initiator && e.cfg.TokenSource != nil {
		token, err := e.cfg.TokenSource(hs.SigAnchor, hs.AckAnchor)
		if err != nil {
			return nil, fmt.Errorf("core: token source: %w", err)
		}
		hs.HasToken = true
		hs.Token = token
	}
	return hs, nil
}

// Handle processes one received datagram, appending any response packets to
// the internal outbox (drained by Poll) and returning events for the
// application. Malformed or unverifiable packets are reported as
// EventDropped; Handle only returns an error for misuse, never for hostile
// input.
func (e *Endpoint) Handle(now time.Time, datagram []byte) ([]Event, error) {
	e.tnow = now.UnixNano()
	e.tel.BytesReceived.Add(uint64(len(datagram)))
	return e.handleRaw(now, datagram, true), nil
}

// handleRaw decodes and dispatches one packet; allowBundle guards against
// nested bundles (the codec rejects them too, belt and braces).
func (e *Endpoint) handleRaw(now time.Time, datagram []byte, allowBundle bool) []Event {
	e.spanStep, e.spanRole, e.spanKey = 0, 0, 0
	hdr, msg, err := packet.Decode(datagram)
	if err != nil {
		return e.drop(0, fmt.Errorf("undecodable packet: %w", err))
	}
	if hdr.Suite != e.suite.ID() {
		return e.drop(hdr.Seq, fmt.Errorf("%w: %d", errSuiteMismatch, hdr.Suite))
	}
	switch m := msg.(type) {
	case *packet.Bundle:
		if !allowBundle {
			return e.drop(hdr.Seq, packet.ErrBadType)
		}
		var evs []Event
		for _, raw := range m.Packets {
			evs = append(evs, e.handleRaw(now, raw, false)...)
		}
		return evs
	case *packet.Handshake:
		e.noteSpanStep(obs.StepHS, 0)
		return e.handleHandshake(now, hdr, m)
	case *packet.S1:
		e.noteSpanStep(obs.StepS1, obs.RoleReceiver)
		return e.handleDataPacket(now, hdr, func() []Event { return e.handleS1(now, hdr, m) })
	case *packet.A1:
		e.noteSpanStep(obs.StepA1, obs.RoleSender)
		return e.handleDataPacket(now, hdr, func() []Event { return e.handleA1(now, hdr, m) })
	case *packet.S2:
		e.noteSpanStep(obs.StepS2, obs.RoleReceiver)
		return e.handleDataPacket(now, hdr, func() []Event { return e.handleS2(now, hdr, m) })
	case *packet.A2:
		e.noteSpanStep(obs.StepA2, obs.RoleSender)
		return e.handleDataPacket(now, hdr, func() []Event { return e.handleA2(now, hdr, m) })
	default:
		return e.drop(hdr.Seq, packet.ErrBadType)
	}
}

// noteSpanStep records which protocol step (and which of the endpoint's two
// halves) the packet being dispatched belongs to, so a drop span names the
// step it interrupted. The correlation key resets until the exchange is
// identified. A role of 0 means "whichever half"; the drop path substitutes
// the receiver role, which is where unattributable packets die.
func (e *Endpoint) noteSpanStep(step, role uint8) {
	e.spanStep, e.spanRole, e.spanKey = step, role, 0
}

// handleDataPacket performs the checks common to S1/A1/S2/A2 before
// dispatching.
func (e *Endpoint) handleDataPacket(now time.Time, hdr packet.Header, dispatch func() []Event) []Event {
	if !e.established {
		return e.drop(hdr.Seq, ErrNotEstablished)
	}
	if hdr.Assoc != e.assoc {
		return e.drop(hdr.Seq, ErrUnknownAssoc)
	}
	// A packet must come from the opposite side of the association.
	if (hdr.Flags&FlagInitiator != 0) == e.initiator {
		return e.drop(hdr.Seq, ErrBadDirection)
	}
	return dispatch()
}

var errSuiteMismatch = errors.New("alpha: suite mismatch")

// reasonCode maps a drop error onto the telemetry reason code carried in
// TraceDrop events, so trace lines and counters name failures identically.
func reasonCode(err error) uint32 {
	var parseErr *packet.ParseError
	switch {
	case err == nil:
		return telemetry.ReasonNone
	case errors.As(err, &parseErr):
		return telemetry.ReasonMalformed
	case errors.Is(err, ErrUnknownAssoc):
		return telemetry.ReasonUnknownAssoc
	case errors.Is(err, ErrBadAuthElement):
		return telemetry.ReasonBadElement
	case errors.Is(err, ErrBadMAC), errors.Is(err, ErrBadProof):
		return telemetry.ReasonBadPayload
	case errors.Is(err, ErrUnsolicited):
		return telemetry.ReasonUnsolicited
	case errors.Is(err, ErrBadAck):
		return telemetry.ReasonBadAck
	case errors.Is(err, ErrNotEstablished):
		return telemetry.ReasonNotEstablished
	case errors.Is(err, ErrChainExhausted):
		return telemetry.ReasonChainExhausted
	case errors.Is(err, ErrBadDirection):
		return telemetry.ReasonBadDirection
	case errors.Is(err, ErrBadHandshake):
		return telemetry.ReasonBadHandshake
	case errors.Is(err, errSuiteMismatch):
		return telemetry.ReasonSuiteMismatch
	default:
		return telemetry.ReasonMalformed
	}
}

// drop records a dropped packet and returns the corresponding event slice.
func (e *Endpoint) drop(seq uint32, reason error) []Event {
	code := reasonCode(reason)
	e.tel.NoteDrop(code)
	e.tracer.Trace(e.tnow, telemetry.TraceDrop, e.assoc, seq, code)
	role := e.spanRole
	if role == 0 {
		role = obs.RoleReceiver
	}
	e.spans.Emit(e.tnow, e.assoc, e.spanKey, seq, role, e.spanStep, uint8(e.cfg.Mode), obs.VerdictDrop, code)
	e.spanStep, e.spanRole, e.spanKey = 0, 0, 0
	ev := Event{Kind: EventDropped, Seq: seq, Err: reason}
	e.events = append(e.events, ev)
	evs := e.events
	e.events = nil
	return evs
}

// emit queues an event to be returned from the current Handle/Poll call.
func (e *Endpoint) emit(ev Event) { e.events = append(e.events, ev) }

// send encodes and queues a packet on the outbox.
func (e *Endpoint) send(hdr packet.Header, msg packet.Message) error {
	raw, err := packet.Encode(hdr, msg)
	if err != nil {
		return err
	}
	e.outbox = append(e.outbox, raw)
	e.tel.BytesSent.Add(uint64(len(raw)))
	return nil
}

// takeEvents returns and clears the pending event queue.
func (e *Endpoint) takeEvents() []Event {
	evs := e.events
	e.events = nil
	return evs
}

// handleHandshake processes HS1 (as responder) and HS2 (as initiator).
func (e *Endpoint) handleHandshake(now time.Time, hdr packet.Header, hs *packet.Handshake) []Event {
	switch {
	case hdr.Type == packet.TypeHS1 && !e.initiator:
		if e.established {
			// Duplicate HS1: retransmit our HS2 so a lost response
			// does not deadlock the initiator.
			if hdr.Assoc == e.assoc && e.hsPacket != nil {
				e.outbox = append(e.outbox, e.hsPacket)
				e.tel.BytesSent.Add(uint64(len(e.hsPacket)))
			}
			return e.takeEvents()
		}
		if err := e.adoptPeer(hdr, hs); err != nil {
			return e.drop(0, err)
		}
		e.assoc = hdr.Assoc
		resp, err := e.buildHandshake(false)
		if err != nil {
			return e.drop(0, err)
		}
		raw, err := packet.Encode(e.header(packet.TypeHS2, 0), resp)
		if err != nil {
			return e.drop(0, err)
		}
		e.hsPacket = raw
		e.outbox = append(e.outbox, raw)
		e.tel.BytesSent.Add(uint64(len(raw)))
		e.established = true
		e.emit(Event{Kind: EventEstablished})
		return e.takeEvents()

	case hdr.Type == packet.TypeHS2 && e.initiator:
		if e.established {
			return e.takeEvents() // duplicate HS2
		}
		if hdr.Assoc != e.assoc {
			return e.drop(0, ErrUnknownAssoc)
		}
		if err := e.adoptPeer(hdr, hs); err != nil {
			return e.drop(0, err)
		}
		e.established = true
		e.hsPacket = nil
		e.emit(Event{Kind: EventEstablished})
		return e.takeEvents()

	default:
		return e.drop(0, fmt.Errorf("%w: unexpected %v", ErrBadHandshake, hdr.Type))
	}
}

// PreAdmit records anchors an admission token has already authenticated
// for this association's initiator. A subsequent HS1 carrying exactly
// these anchors skips the §3.4 signature verification (the token bound
// them to the client out of band). Must be called from the endpoint's
// owning goroutine before the HS1 is handled.
func (e *Endpoint) PreAdmit(sigAnchor, ackAnchor []byte) {
	e.preSig = append(e.preSig[:0], sigAnchor...)
	e.preAck = append(e.preAck[:0], ackAnchor...)
}

// preAdmitted reports whether the handshake's anchors are exactly the
// pre-admitted ones.
func (e *Endpoint) preAdmitted(hs *packet.Handshake) bool {
	return len(e.preSig) > 0 &&
		suite.Equal(e.preSig, hs.SigAnchor) && suite.Equal(e.preAck, hs.AckAnchor)
}

// adoptPeer validates a peer handshake body and installs walkers over the
// peer's chains.
func (e *Endpoint) adoptPeer(hdr packet.Header, hs *packet.Handshake) error {
	if len(hs.SigAnchor) != e.suite.Size() || len(hs.AckAnchor) != e.suite.Size() {
		return fmt.Errorf("%w: anchor size", ErrBadHandshake)
	}
	if hs.ChainLen == 0 || hs.ChainLen > 1<<24 {
		return fmt.Errorf("%w: chain length %d", ErrBadHandshake, hs.ChainLen)
	}
	switch {
	case e.preAdmitted(hs):
		// The admission token already bound exactly these anchors to the
		// client (one symmetric decrypt at the transport), so the §3.4
		// asymmetric verification would re-prove what the token proved.
	case hdr.Flags&packet.FlagProtected != 0 || hs.Scheme != 0:
		if err := verifyHandshake(hdr.Assoc, hs, e.cfg.VerifyPeer); err != nil {
			return err
		}
	case e.cfg.VerifyPeer != nil:
		return fmt.Errorf("%w: peer did not sign anchors", ErrBadHandshake)
	}
	var err error
	if e.peerSig, err = hashchain.NewSignatureWalker(e.suite, hs.SigAnchor); err != nil {
		return err
	}
	if e.peerAck, err = hashchain.NewAcknowledgmentWalker(e.suite, hs.AckAnchor); err != nil {
		return err
	}
	return nil
}

// Poll drives timers and flushes batched work. It returns the datagrams to
// transmit and any events raised since the last call.
func (e *Endpoint) Poll(now time.Time) ([][]byte, []Event) {
	e.tnow = now.UnixNano()
	// Handshake retransmission (initiator only: responder HS2 resends
	// are triggered by duplicate HS1s).
	if !e.established && e.initiator && e.hsPacket != nil && !e.hsDeadline.IsZero() && !now.Before(e.hsDeadline) {
		if e.hsRetries < e.cfg.MaxRetries {
			e.hsRetries++
			e.tel.Retransmits.Inc()
			e.outbox = append(e.outbox, e.hsPacket)
			e.tel.BytesSent.Add(uint64(len(e.hsPacket)))
			e.hsDeadline = now.Add(backoff(e.cfg.RTO, e.hsRetries))
		}
	}
	if e.established {
		e.flushQueue(now, false)
		e.pollExchanges(now)
		if e.cfg.AutoRekey && e.cfg.Reliable && e.chainLow && e.rekey == nil &&
			len(e.tx) == 0 {
			if _, err := e.Rekey(now); err != nil {
				// A failed attempt (e.g. too few elements left to
				// sign the announcement) will not get better;
				// surface it once and stop retrying.
				e.chainLow = false
				e.emit(Event{Kind: EventSendFailed, Err: fmt.Errorf("alpha: auto-rekey: %w", err)})
			}
		}
	}
	out := e.outbox
	e.outbox = nil
	if e.cfg.Coalesce && len(out) > 1 {
		out = e.coalesce(out)
	}
	return out, e.takeEvents()
}

// coalesce greedily packs consecutive outgoing packets into bundles of at
// most CoalesceLimit bytes (§3.2.1's combined transmissions). Handshake
// packets travel alone: the responder may not know the association yet.
func (e *Endpoint) coalesce(raws [][]byte) [][]byte {
	result := make([][]byte, 0, len(raws))
	var group [][]byte
	size := packet.HeaderSize + 1
	flush := func() {
		switch len(group) {
		case 0:
		case 1:
			result = append(result, group[0])
		default:
			b, err := packet.EncodeBundle(e.suite.ID(), e.assoc, e.header(packet.TypeBundle, 0).Flags, group)
			if err != nil {
				result = append(result, group...)
			} else {
				result = append(result, b)
			}
		}
		group = nil
		size = packet.HeaderSize + 1
	}
	for _, raw := range raws {
		if len(raw) >= packet.HeaderSize && (packet.Type(raw[3]) == packet.TypeHS1 || packet.Type(raw[3]) == packet.TypeHS2) {
			flush()
			result = append(result, raw)
			continue
		}
		if len(group) == packet.MaxBundlePackets || (len(group) > 0 && size+2+len(raw) > e.cfg.CoalesceLimit) {
			flush()
		}
		group = append(group, raw)
		size += 2 + len(raw)
	}
	flush()
	return result
}

// NextTimeout returns the earliest deadline the caller should Poll at.
func (e *Endpoint) NextTimeout() (time.Time, bool) {
	var min time.Time
	add := func(t time.Time) {
		if t.IsZero() {
			return
		}
		if min.IsZero() || t.Before(min) {
			min = t
		}
	}
	if !e.established && e.initiator {
		add(e.hsDeadline)
	}
	// The flush deadline only matters while an exchange slot is free and
	// no rekey is serializing the queue; otherwise the queue drains on
	// exchange completions and timers instead.
	if len(e.queue) > 0 && e.cfg.FlushDelay >= 0 && !e.queuedAt.IsZero() &&
		len(e.tx) < e.cfg.MaxOutstanding && e.rekey == nil &&
		!(e.cfg.AutoRekey && e.cfg.Reliable && e.sigChain.Remaining() < 4) {
		add(e.queuedAt.Add(e.cfg.FlushDelay))
	}
	for _, seq := range e.txOrder {
		if x, ok := e.tx[seq]; ok {
			add(x.deadline)
		}
	}
	return min, !min.IsZero()
}
