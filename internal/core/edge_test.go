package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"alpha/internal/packet"
	"alpha/internal/suite"
)

func TestSendBeforeEstablished(t *testing.T) {
	e, err := NewEndpoint(baseConfig(packet.ModeBase, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Send(time.Now(), []byte("early")); !errors.Is(err, ErrNotEstablished) {
		t.Fatalf("Send before handshake: %v", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	h.handshake()
	if _, err := h.a.Send(h.now, make([]byte, packet.MaxPayload+1)); err == nil {
		t.Fatalf("oversized payload accepted")
	}
	// The boundary itself is fine.
	if _, err := h.a.Send(h.now, make([]byte, packet.MaxPayload)); err != nil {
		t.Fatalf("boundary payload rejected: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Mode: 7},
		{ChainLen: 3},   // odd
		{ChainLen: -2},  // negative
		{BatchSize: -1}, // negative batch
		{Mode: packet.ModeC, BatchSize: packet.MaxMACs + 1}, // oversized batch
	}
	for i, cfg := range cases {
		if _, err := NewEndpoint(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestMaxOutstandingQueues(t *testing.T) {
	cfg := baseConfig(packet.ModeBase, true)
	cfg.MaxOutstanding = 2
	h := newHarness(t, cfg)
	h.handshake()
	// Queue 6 messages without letting any packets flow.
	for i := 0; i < 6; i++ {
		if _, err := h.a.Send(h.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	if got := h.a.InFlight(); got != 2 {
		t.Fatalf("in flight %d, want MaxOutstanding=2", got)
	}
	if got := h.a.QueueLen(); got != 4 {
		t.Fatalf("queued %d, want 4", got)
	}
	// Now let everything drain: the queue feeds the freed slots.
	h.runFor(3 * time.Second)
	if got := len(h.payloadsDelivered(h.b)); got != 6 {
		t.Fatalf("delivered %d/6", got)
	}
}

func TestFlushDelayTimerFlushesPartialBatch(t *testing.T) {
	cfg := baseConfig(packet.ModeC, false)
	cfg.BatchSize = 8
	cfg.FlushDelay = 20 * time.Millisecond
	h := newHarness(t, cfg)
	h.handshake()
	if _, err := h.a.Send(h.now, []byte("lone message")); err != nil {
		t.Fatal(err)
	}
	// Without Flush: nothing yet...
	out, _ := h.a.Poll(h.now)
	if len(out) != 0 {
		t.Fatalf("partial batch flushed immediately")
	}
	// ...until the linger timer expires.
	h.runFor(200 * time.Millisecond)
	if got := len(h.payloadsDelivered(h.b)); got != 1 {
		t.Fatalf("linger flush never happened: %d", got)
	}
}

func TestNegativeFlushDelayNeverAutoFlushes(t *testing.T) {
	cfg := baseConfig(packet.ModeC, false)
	cfg.BatchSize = 8
	cfg.FlushDelay = -1
	h := newHarness(t, cfg)
	h.handshake()
	if _, err := h.a.Send(h.now, []byte("waiting")); err != nil {
		t.Fatal(err)
	}
	h.runFor(2 * time.Second)
	if got := len(h.payloadsDelivered(h.b)); got != 0 {
		t.Fatalf("auto-flush happened despite FlushDelay<0")
	}
	h.a.Flush(h.now)
	h.run(20)
	if got := len(h.payloadsDelivered(h.b)); got != 1 {
		t.Fatalf("explicit Flush failed: %d", got)
	}
}

func TestTamperedBatchMessageNackedIndividually(t *testing.T) {
	// In a reliable ALPHA-M batch, tampering with exactly one S2 must
	// nack exactly that message (AMT selective repeat) while its
	// siblings are acked and delivered.
	cfg := baseConfig(packet.ModeM, true)
	cfg.BatchSize = 4
	h := newHarness(t, cfg)
	h.handshake()
	tampered := false
	h.mangle = func(raw []byte) []byte {
		hdr, msg, err := packet.Decode(raw)
		if err != nil || hdr.Type != packet.TypeS2 {
			return raw
		}
		s2 := msg.(*packet.S2)
		if s2.MsgIndex != 2 || tampered {
			return raw
		}
		tampered = true
		s2.Payload = []byte("evil")
		out, _ := packet.Encode(hdr, s2)
		return out
	}
	for i := 0; i < 4; i++ {
		if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("batch-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.runFor(3 * time.Second)
	if !tampered {
		t.Fatalf("tamper never applied")
	}
	if got := h.countKind(h.a, EventNacked); got != 1 {
		t.Fatalf("nacks %d, want exactly 1", got)
	}
	if got := h.countKind(h.a, EventAcked); got != 4 {
		t.Fatalf("acked %d, want all 4 after selective repeat", got)
	}
	got := h.payloadsDelivered(h.b)
	if len(got) != 4 {
		t.Fatalf("delivered %d/4", len(got))
	}
	seen := map[string]bool{}
	for _, p := range got {
		seen[string(p)] = true
	}
	if !seen["batch-2"] {
		t.Fatalf("tampered slot never recovered: %q", got)
	}
}

func TestDuplicateA2Ignored(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	var a2raw []byte
	h.mangle = func(raw []byte) []byte {
		hdr, _, err := packet.Decode(raw)
		if err == nil && hdr.Type == packet.TypeA2 && a2raw == nil {
			a2raw = append([]byte(nil), raw...)
		}
		return raw
	}
	if _, err := h.a.Send(h.now, []byte("once")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(30)
	if a2raw == nil {
		t.Fatal("no A2 captured")
	}
	if h.countKind(h.a, EventAcked) != 1 {
		t.Fatal("setup: not acked")
	}
	h.deliver(h.a, a2raw)
	h.deliver(h.a, a2raw)
	if got := h.countKind(h.a, EventAcked); got != 1 {
		t.Fatalf("duplicate A2 produced extra acks: %d", got)
	}
}

func TestNextTimeoutReflectsState(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	if _, ok := h.a.NextTimeout(); ok {
		t.Fatalf("fresh endpoint should have no deadline")
	}
	if _, err := h.a.StartHandshake(h.now); err != nil {
		t.Fatal(err)
	}
	if ddl, ok := h.a.NextTimeout(); !ok || !ddl.After(h.now) {
		t.Fatalf("handshake deadline missing: %v %v", ddl, ok)
	}
}

func TestModeMSingleMessageBatch(t *testing.T) {
	// A Merkle tree of one leaf must still work end to end.
	cfg := baseConfig(packet.ModeM, true)
	cfg.BatchSize = 4
	h := newHarness(t, cfg)
	h.handshake()
	if _, err := h.a.Send(h.now, []byte("lonely leaf")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now) // batch of 1 despite BatchSize 4
	h.run(30)
	if got := h.payloadsDelivered(h.b); len(got) != 1 || string(got[0]) != "lonely leaf" {
		t.Fatalf("single-leaf batch failed: %q", got)
	}
	if h.countKind(h.a, EventAcked) != 1 {
		t.Fatalf("single-leaf batch not acked")
	}
}

func TestEmptyPayloadMessage(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	if _, err := h.a.Send(h.now, nil); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(30)
	if got := h.payloadsDelivered(h.b); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty payload mishandled: %q", got)
	}
}

func TestLargePayloadAllModes(t *testing.T) {
	big := bytes.Repeat([]byte{0xAB}, 32<<10)
	for _, mode := range []packet.Mode{packet.ModeBase, packet.ModeC, packet.ModeM} {
		t.Run(mode.String(), func(t *testing.T) {
			h := newHarness(t, baseConfig(mode, true))
			h.handshake()
			if _, err := h.a.Send(h.now, big); err != nil {
				t.Fatal(err)
			}
			h.a.Flush(h.now)
			h.run(30)
			got := h.payloadsDelivered(h.b)
			if len(got) != 1 || !bytes.Equal(got[0], big) {
				t.Fatalf("32 KiB payload corrupted or lost")
			}
		})
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventEstablished, EventDelivered, EventAcked, EventNacked,
		EventSendFailed, EventChainLow, EventDropped, EventRekeyed, EventPeerRekeyed,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate event name %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() == "" {
		t.Fatalf("unknown kind has empty name")
	}
}

func TestSuiteMismatchDropped(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, false))
	h.handshake()
	// Re-encode an S1 under a different suite ID.
	s1 := &packet.S1{
		Mode: packet.ModeBase, AuthIdx: 1,
		Auth:   make([]byte, suite.SHA256().Size()),
		KeyIdx: 2,
		MACs:   [][]byte{make([]byte, suite.SHA256().Size())},
	}
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeS1, Suite: suite.IDSHA256,
		Flags: FlagInitiator, Assoc: h.a.Assoc(), Seq: 1,
	}, s1)
	if err != nil {
		t.Fatal(err)
	}
	h.deliver(h.b, raw)
	if d := h.firstDrop(h.b); d == nil {
		t.Fatalf("suite-mismatched packet accepted")
	}
}
