// Runtime profile transitions: switching Mode/BatchSize on a live
// association.
//
// ALPHA's modes trade per-packet overhead, latency and relay buffer against
// the batch size n (§3.3, Tables 4-6), but which trade is right depends on
// the link: Basic minimizes latency and state for interactive low-rate
// traffic, ALPHA-C minimizes bytes when loss is low, ALPHA-M amortizes the
// S1/A1 round trip over large n for lossy bulk transfer. A deployment that
// pins the mode at association setup pays the wrong overhead whenever the
// link changes — so the engine supports switching at runtime.
//
// Why the exchange boundary is a safe transition point, with no wire-format
// or handshake support needed:
//
//   - Every S1 carries its exchange's mode; verifiers (receiver.go) and
//     relays (internal/relay) copy it into their per-exchange state and
//     verify all subsequent S2s of that seq against it. Neither ever
//     consults an association-wide mode.
//   - Sender-side exchanges pin their mode at startExchange (txExchange.mode)
//     and build S2s from the pinned copy, so an exchange that is mid-flight
//     during a transition finishes exactly as announced.
//   - Chain usage is purpose-bound but mode-agnostic: every exchange consumes
//     one signature pair on the sender and one acknowledgment pair on the
//     verifier regardless of mode, so walkers never need re-derivation.
//   - Reliable-mode acknowledgment material is already negotiated per
//     exchange from the S1's batch size (flat pre-ack pair for n=1, AMT for
//     n>1), so it follows the new profile automatically.
//
// SetProfile therefore takes effect at the next startExchange: queued
// messages not yet assigned to an exchange are re-batched under the new
// profile, and nothing in flight is disturbed. This is the "apply at a safe
// boundary" half of the observe-decide-apply loop that internal/adaptive
// closes.

package core

import (
	"fmt"
	"time"

	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// Profile is the runtime-switchable part of an association's configuration:
// the operational mode and the batch size n it covers per S1.
type Profile struct {
	Mode      packet.Mode
	BatchSize int
}

// Profile returns the profile new exchanges are currently started with.
func (e *Endpoint) Profile() Profile {
	return Profile{Mode: e.cfg.Mode, BatchSize: e.cfg.BatchSize}
}

// SetProfile switches the association to a new Mode/BatchSize. The change
// applies at the exchange boundary: every exchange started after the call
// uses the new profile, while exchanges already in flight (including an
// in-flight rekey announcement) finish under the profile they pinned at
// start. Queued messages that have not been assigned to an exchange yet are
// re-batched under the new profile.
//
// BatchSize 0 selects the mode's default (1 for Basic, DefaultBatchSize for
// C/M/CM); Basic clamps any larger batch to 1, mirroring Config. A no-op
// call (profile already active) returns nil without emitting an event.
// Invalid profiles are rejected with an error and the active profile is
// unchanged.
//
// Like every engine method, SetProfile must be called from the goroutine
// that owns the endpoint; transports expose their own serialized wrappers.
func (e *Endpoint) SetProfile(now time.Time, p Profile) error {
	next := e.cfg
	next.Mode = p.Mode
	next.BatchSize = p.BatchSize
	if next.BatchSize == 0 {
		if next.Mode == packet.ModeBase {
			next.BatchSize = 1
		} else {
			next.BatchSize = DefaultBatchSize
		}
	}
	if next.Mode == packet.ModeBase && next.BatchSize > 1 {
		next.BatchSize = 1
	}
	if err := next.validate(); err != nil {
		return fmt.Errorf("core: profile rejected: %w", err)
	}
	if next.Mode == e.cfg.Mode && next.BatchSize == e.cfg.BatchSize {
		return nil // already active
	}
	e.cfg = next
	e.tnow = now.UnixNano()
	e.tel.ModeChanges.Inc()
	e.tel.Mode.Set(int64(next.Mode))
	e.tel.BatchSize.Set(int64(next.BatchSize))
	e.tracer.Trace(e.tnow, telemetry.TraceModeChange, e.assoc, e.nextSeq,
		uint32(next.Mode)<<16|uint32(next.BatchSize))
	e.emit(Event{Kind: EventModeChanged, Mode: next.Mode, Batch: next.BatchSize})
	return nil
}

// SetChainLowFraction retunes the EventChainLow threshold at runtime: the
// event fires (and AutoRekey engages) once fewer than fraction×len elements
// remain on a local chain. If the new threshold no longer classifies the
// chains as low, a previously fired warning re-arms so depletion warns
// again at the new level.
func (e *Endpoint) SetChainLowFraction(f float64) error {
	if f <= 0 || f >= 1 {
		return fmt.Errorf("core: chain-low fraction %v outside (0, 1)", f)
	}
	e.cfg.ChainLowFraction = f
	if e.chainLow && !e.sigChainIsLow() && !e.ackChainIsLow() {
		e.chainLow = false
	}
	return nil
}

// ChainLowFraction returns the active EventChainLow threshold.
func (e *Endpoint) ChainLowFraction() float64 { return e.cfg.ChainLowFraction }

// sigChainIsLow reports whether the signature chain is below the
// configured low-water fraction.
func (e *Endpoint) sigChainIsLow() bool {
	return float64(e.sigChain.Remaining()) < e.cfg.ChainLowFraction*float64(e.sigChain.Len())
}

// ackChainIsLow is sigChainIsLow for the acknowledgment chain.
func (e *Endpoint) ackChainIsLow() bool {
	return float64(e.ackChain.Remaining()) < e.cfg.ChainLowFraction*float64(e.ackChain.Len())
}
