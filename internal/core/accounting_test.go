package core

import (
	"bytes"
	"testing"

	"alpha/internal/packet"
)

// freezeAtS1 sends a batch and withholds the A1 so both sides sit at their
// buffer peak.
func freezeAtS1(t *testing.T, mode packet.Mode, n, msgSize int) *harness {
	t.Helper()
	cfg := baseConfig(mode, true)
	cfg.BatchSize = n
	cfg.ChainLen = 128
	cfg.MaxOutstanding = 1
	h := newHarness(t, cfg)
	h.handshake()
	h.dropBtoA = func(raw []byte) bool {
		hdr, _, err := packet.Decode(raw)
		return err == nil && hdr.Type == packet.TypeA1
	}
	for i := 0; i < n; i++ {
		if _, err := h.a.Send(h.now, bytes.Repeat([]byte{byte(i)}, msgSize)); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.run(5)
	return h
}

func TestBufferAccountingMatchesTable2(t *testing.T) {
	const n, msgSize = 8, 512
	h := freezeAtS1(t, packet.ModeC, n, msgSize)
	payload, sig := h.a.TxBufferedBytes()
	if payload != n*msgSize {
		t.Fatalf("signer payload bytes %d, want %d", payload, n*msgSize)
	}
	if sig == 0 {
		t.Fatalf("signer retains no signature state")
	}
	vSig, vAck := h.b.RxBufferedBytes()
	if vSig != n*20 {
		t.Fatalf("verifier pre-signature bytes %d, want n·h=%d", vSig, n*20)
	}
	// Reliable multi-message batch: AMT state present.
	if vAck == 0 {
		t.Fatalf("verifier holds no acknowledgment state in reliable mode")
	}
	if h.b.RxExchanges() != 1 {
		t.Fatalf("rx exchanges %d", h.b.RxExchanges())
	}
}

func TestBufferAccountingModeM(t *testing.T) {
	h := freezeAtS1(t, packet.ModeM, 16, 256)
	vSig, _ := h.b.RxBufferedBytes()
	if vSig != 20 {
		t.Fatalf("ALPHA-M verifier buffers %d, want a single digest (20)", vSig)
	}
}

func TestBufferAccountingDrainsAfterCompletion(t *testing.T) {
	cfg := baseConfig(packet.ModeC, true)
	cfg.BatchSize = 4
	h := newHarness(t, cfg)
	h.handshake()
	for i := 0; i < 4; i++ {
		if _, err := h.a.Send(h.now, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.run(40)
	payload, sig := h.a.TxBufferedBytes()
	if payload != 0 || sig != 0 {
		t.Fatalf("signer still buffers %d+%d bytes after full ack", payload, sig)
	}
}

func TestUpdateAnchorsHelper(t *testing.T) {
	st := baseConfig(packet.ModeBase, false).withDefaults().Suite
	p := RekeyPayload{
		SigAnchor: make([]byte, st.Size()),
		AckAnchor: make([]byte, st.Size()),
		ChainLen:  64,
	}
	sig, ack, err := UpdateAnchors(st, p)
	if err != nil || sig == nil || ack == nil {
		t.Fatalf("UpdateAnchors: %v", err)
	}
	bad := p
	bad.SigAnchor = []byte("short")
	if _, _, err := UpdateAnchors(st, bad); err == nil {
		t.Fatalf("short anchor accepted")
	}
}

func TestRxExchangeEviction(t *testing.T) {
	cfg := baseConfig(packet.ModeBase, false)
	cfg.MaxRxExchanges = 2
	cfg.MaxOutstanding = 8
	cfg.ChainLen = 64
	h := newHarness(t, cfg)
	h.handshake()
	// Complete several exchanges; the receiver must retain at most 2.
	for i := 0; i < 5; i++ {
		if _, err := h.a.Send(h.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		h.a.Flush(h.now)
		h.run(20)
	}
	if got := h.b.RxExchanges(); got > 2 {
		t.Fatalf("receiver retains %d exchanges, cap is 2", got)
	}
	if got := len(h.payloadsDelivered(h.b)); got != 5 {
		t.Fatalf("delivered %d/5", got)
	}
}

func TestAckLatencyTracked(t *testing.T) {
	h := newHarness(t, baseConfig(packet.ModeBase, true))
	h.handshake()
	if _, err := h.a.Send(h.now, []byte("timed")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(30)
	st := h.a.Stats()
	if st.Acked != 1 {
		t.Fatalf("not acked")
	}
	// The harness advances 5 ms per round and the exchange needs at
	// least two round trips' worth of steps.
	if st.MeanAckLatency() <= 0 || st.AckLatencyMax < st.MeanAckLatency() {
		t.Fatalf("latency stats implausible: mean=%v max=%v", st.MeanAckLatency(), st.AckLatencyMax)
	}
	if (Stats{}).MeanAckLatency() != 0 {
		t.Fatalf("zero-value latency not zero")
	}
}
