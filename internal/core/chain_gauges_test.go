package core

import (
	"fmt"
	"testing"

	"alpha/internal/packet"
)

// TestChainGaugesTrackDepletion checks the chain-pressure gauges: fresh
// endpoints report full chains, every exchange moves the sender's signature
// gauge and the receiver's acknowledgment gauge, and a rekey restores them.
func TestChainGaugesTrackDepletion(t *testing.T) {
	cfg := baseConfig(packet.ModeBase, true)
	h := newHarness(t, cfg)
	h.handshake()

	am, bm := h.a.Telemetry(), h.b.Telemetry()
	if got := am.SigChainLen.Load(); got != int64(cfg.ChainLen) {
		t.Fatalf("SigChainLen = %d, want %d", got, cfg.ChainLen)
	}
	full := am.SigChainRemaining.Load()
	if full <= 0 || full > int64(cfg.ChainLen) {
		t.Fatalf("fresh SigChainRemaining = %d, want 1..%d", full, cfg.ChainLen)
	}
	bFullAck := bm.AckChainRemaining.Load()

	const sends = 5
	for i := 0; i < sends; i++ {
		if _, err := h.a.Send(h.now, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		h.a.Flush(h.now)
		h.run(20)
	}
	// Each exchange consumes at least one pair per side (reliable mode may
	// consume more); the gauges must have moved by at least that much.
	depleted := am.SigChainRemaining.Load()
	if depleted > full-sends {
		t.Fatalf("after %d exchanges SigChainRemaining = %d, want <= %d", sends, depleted, full-sends)
	}
	if got := bm.AckChainRemaining.Load(); got > bFullAck-sends {
		t.Fatalf("after %d exchanges peer AckChainRemaining = %d, want <= %d", sends, got, bFullAck-sends)
	}

	// A rekey swaps in fresh chains; the gauges must snap back up.
	if _, err := h.a.Rekey(h.now); err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	h.run(40)
	if h.countKind(h.a, EventRekeyed) == 0 {
		t.Fatal("rekey never completed")
	}
	if got := am.SigChainRemaining.Load(); got <= depleted {
		t.Fatalf("post-rekey SigChainRemaining = %d, want > %d", got, depleted)
	}
}
