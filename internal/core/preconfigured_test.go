package core

import (
	"testing"
	"time"

	"alpha/internal/packet"
)

func preconfiguredHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	pi, pr, _, err := Provision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPreconfiguredEndpoint(pi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPreconfiguredEndpoint(pr)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, a: a, b: b, now: time.Unix(1_700_000_000, 0), events: make(map[*Endpoint][]Event)}
}

func TestPreconfiguredNoHandshakeNeeded(t *testing.T) {
	h := preconfiguredHarness(t, baseConfig(packet.ModeBase, true))
	if !h.a.Established() || !h.b.Established() {
		t.Fatalf("provisioned endpoints not established")
	}
	if h.a.Assoc() == 0 || h.a.Assoc() != h.b.Assoc() {
		t.Fatalf("association ids diverge")
	}
	if !h.a.Initiator() || h.b.Initiator() {
		t.Fatalf("roles wrong")
	}
	// Traffic flows immediately, zero handshake packets on the wire.
	if _, err := h.a.Send(h.now, []byte("no handshake")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(30)
	if got := h.payloadsDelivered(h.b); len(got) != 1 || string(got[0]) != "no handshake" {
		t.Fatalf("delivery failed: %q", got)
	}
	if h.countKind(h.a, EventAcked) != 1 {
		t.Fatalf("not acked")
	}
	sa := h.a.Stats()
	if sa.SentS1 != 1 {
		t.Fatalf("unexpected extra packets: %+v", sa)
	}
}

func TestPreconfiguredBidirectional(t *testing.T) {
	h := preconfiguredHarness(t, baseConfig(packet.ModeC, true))
	for i := 0; i < 3; i++ {
		if _, err := h.a.Send(h.now, []byte("i->r")); err != nil {
			t.Fatal(err)
		}
		if _, err := h.b.Send(h.now, []byte("r->i")); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.b.Flush(h.now)
	h.runFor(2 * time.Second)
	if len(h.payloadsDelivered(h.a)) != 3 || len(h.payloadsDelivered(h.b)) != 3 {
		t.Fatalf("bidirectional preconfigured traffic failed: %d/%d",
			len(h.payloadsDelivered(h.a)), len(h.payloadsDelivered(h.b)))
	}
}

func TestProvisionHalvesAreDistinct(t *testing.T) {
	pi, pr, anchors, err := Provision(baseConfig(packet.ModeBase, false))
	if err != nil {
		t.Fatal(err)
	}
	if anchors.Assoc != pi.assoc || anchors.Assoc != pr.assoc {
		t.Fatalf("anchor set association mismatch")
	}
	if string(anchors.InitSig) == string(anchors.RespSig) {
		t.Fatalf("both halves share a signature chain")
	}
	// Two provisioned pairs never collide.
	_, _, anchors2, err := Provision(baseConfig(packet.ModeBase, false))
	if err != nil {
		t.Fatal(err)
	}
	if anchors.Assoc == anchors2.Assoc || string(anchors.InitSig) == string(anchors2.InitSig) {
		t.Fatalf("provisioning is not randomized")
	}
}

func TestPreconfiguredMismatchedHalvesFail(t *testing.T) {
	// Crossing halves from different provisionings must not verify.
	pi1, _, _, err := Provision(baseConfig(packet.ModeBase, false))
	if err != nil {
		t.Fatal(err)
	}
	_, pr2, _, err := Provision(baseConfig(packet.ModeBase, false))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPreconfiguredEndpoint(pi1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPreconfiguredEndpoint(pr2)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, a: a, b: b, now: time.Unix(1_700_000_000, 0), events: make(map[*Endpoint][]Event)}
	if _, err := h.a.Send(h.now, []byte("crossed")); err != nil {
		t.Fatal(err)
	}
	h.a.Flush(h.now)
	h.run(20)
	if len(h.payloadsDelivered(h.b)) != 0 {
		t.Fatalf("crossed provisioning delivered traffic")
	}
}

func TestProvisionRecordRoundTrip(t *testing.T) {
	cfg := baseConfig(packet.ModeC, true)
	cfg.BatchSize = 4
	pi, pr, _, err := Provision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize both halves and rebuild them as a deployment would.
	ri, rr := pi.Record(), pr.Record()
	if !ri.Initiator || rr.Initiator {
		t.Fatalf("record roles wrong")
	}
	if ri.Assoc != rr.Assoc || ri.Assoc == 0 {
		t.Fatalf("record association ids wrong")
	}
	pi2, err := FromRecord(cfg, ri)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := FromRecord(cfg, rr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPreconfiguredEndpoint(pi2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPreconfiguredEndpoint(pr2)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, a: a, b: b, now: time.Unix(1_700_000_000, 0), events: make(map[*Endpoint][]Event)}
	for i := 0; i < 4; i++ {
		if _, err := h.a.Send(h.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	h.a.Flush(h.now)
	h.run(30)
	if got := len(h.payloadsDelivered(h.b)); got != 4 {
		t.Fatalf("rebuilt-from-record association delivered %d/4", got)
	}
	if h.countKind(h.a, EventAcked) != 4 {
		t.Fatalf("rebuilt association not acking")
	}
}

func TestFromRecordValidation(t *testing.T) {
	cfg := baseConfig(packet.ModeBase, false)
	pi, _, _, err := Provision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := pi.Record()
	bad := rec
	bad.Secret = rec.Secret[:5]
	if _, err := FromRecord(cfg, bad); err == nil {
		t.Fatalf("truncated secret accepted")
	}
	bad = rec
	bad.Suite = 99
	if _, err := FromRecord(cfg, bad); err == nil {
		t.Fatalf("unknown suite accepted")
	}
	bad = rec
	bad.Assoc = 0
	if _, err := FromRecord(cfg, bad); err == nil {
		t.Fatalf("zero association accepted")
	}
	bad = rec
	bad.PeerSigAnchor = []byte("short")
	if _, err := FromRecord(cfg, bad); err == nil {
		t.Fatalf("malformed peer anchor accepted")
	}
}
