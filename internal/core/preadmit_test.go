package core

import (
	"crypto/rsa"
	"errors"
	"testing"
	"time"

	"alpha/internal/packet"
)

// pinAnyPeer accepts any signing key — what matters for these tests is
// that VerifyPeer being set makes unsigned anchors a handshake error.
func pinAnyPeer(pub *rsa.PublicKey) error { return nil }

func newHarnessAB(t *testing.T, cfgA, cfgB Config) *harness {
	t.Helper()
	a, err := NewEndpoint(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, a: a, b: b, now: time.Unix(1700000000, 0), events: make(map[*Endpoint][]Event)}
}

func TestTokenSourceStampsHS1(t *testing.T) {
	var gotSig, gotAck []byte
	token := make([]byte, 88)
	for i := range token {
		token[i] = byte(i)
	}
	cfgA := baseConfig(packet.ModeBase, false)
	cfgA.TokenSource = func(sig, ack []byte) ([]byte, error) {
		gotSig = append([]byte(nil), sig...)
		gotAck = append([]byte(nil), ack...)
		return token, nil
	}
	h := newHarnessAB(t, cfgA, baseConfig(packet.ModeBase, false))
	hs1, err := h.a.StartHandshake(h.now)
	if err != nil {
		t.Fatal(err)
	}
	hdr, msg, err := packet.Decode(hs1)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Flags&packet.FlagToken == 0 {
		t.Fatal("HS1 missing FlagToken")
	}
	hs := msg.(*packet.Handshake)
	if !hs.HasToken || string(hs.Token) != string(token) {
		t.Fatal("token not stamped into HS1")
	}
	// The source saw the real anchors, so an issuer can bind them.
	if string(gotSig) != string(hs.SigAnchor) || string(gotAck) != string(hs.AckAnchor) {
		t.Fatal("TokenSource saw different anchors than the HS1 carries")
	}
	// And the tokened handshake still establishes end to end.
	h.deliver(h.b, hs1)
	h.run(20)
	if !h.a.Established() || !h.b.Established() {
		t.Fatal("tokened handshake failed")
	}
}

func TestTokenSourceFailureAbortsHandshake(t *testing.T) {
	cfgA := baseConfig(packet.ModeBase, false)
	cfgA.TokenSource = func(sig, ack []byte) ([]byte, error) {
		return nil, errors.New("issuer unreachable")
	}
	a, err := NewEndpoint(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.StartHandshake(time.Unix(1700000000, 0)); err == nil {
		t.Fatal("handshake started without a token from a configured source")
	}
}

// TestPreAdmitSkipsSignatureVerify pins the §3.4 interplay: a responder
// that insists on signed anchors (VerifyPeer set) normally rejects an
// unsigned HS1, but anchors the admission token already authenticated are
// adopted without the asymmetric verify.
func TestPreAdmitSkipsSignatureVerify(t *testing.T) {
	mkPair := func(preAdmit bool) (*harness, []byte) {
		cfgB := baseConfig(packet.ModeBase, false)
		cfgB.VerifyPeer = pinAnyPeer
		h := newHarnessAB(t, baseConfig(packet.ModeBase, false), cfgB)
		hs1, err := h.a.StartHandshake(h.now)
		if err != nil {
			t.Fatal(err)
		}
		if preAdmit {
			_, msg, err := packet.Decode(hs1)
			if err != nil {
				t.Fatal(err)
			}
			hs := msg.(*packet.Handshake)
			h.b.PreAdmit(hs.SigAnchor, hs.AckAnchor)
		}
		return h, hs1
	}

	// Without pre-admission the unsigned HS1 is refused.
	h, hs1 := mkPair(false)
	if evs, err := h.b.Handle(h.now, hs1); err != nil {
		t.Fatal(err)
	} else {
		dropped := false
		for _, ev := range evs {
			dropped = dropped || ev.Kind == EventDropped
		}
		if !dropped || h.b.Established() {
			t.Fatal("unsigned HS1 accepted by a verifying responder")
		}
	}

	// With pre-admission the same HS1 establishes.
	h, hs1 = mkPair(true)
	h.deliver(h.b, hs1)
	h.run(20)
	if !h.a.Established() || !h.b.Established() {
		t.Fatal("pre-admitted anchors still forced a signature")
	}
	// And wrong anchors do not ride along on the pre-admission.
	h2, hs1b := mkPair(true)
	other, err := NewEndpoint(baseConfig(packet.ModeBase, false))
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.StartHandshake(h2.now)
	if err != nil {
		t.Fatal(err)
	}
	_ = hs1b
	if evs, err := h2.b.Handle(h2.now, foreign); err != nil {
		t.Fatal(err)
	} else {
		dropped := false
		for _, ev := range evs {
			dropped = dropped || ev.Kind == EventDropped
		}
		if !dropped || h2.b.Established() {
			t.Fatal("pre-admission leaked to foreign anchors")
		}
	}
}
