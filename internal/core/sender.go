// Sender half: queuing messages, building S1/S2 packets, processing A1/A2.

package core

import (
	"fmt"
	"time"

	"alpha/internal/hashchain"
	"alpha/internal/merkle"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
)

// outMsg is a queued outgoing message.
type outMsg struct {
	id      uint64
	payload []byte
	sentAt  time.Time // when Send accepted it; basis for ack latency
}

// txState is the sender-side exchange state machine.
type txState int

const (
	txAwaitA1 txState = iota // S1 sent, waiting for the acknowledgment
	txAwaitA2                // S2s sent, waiting for (n)acks (reliable)
	txDone
)

// txExchange tracks one in-flight signature exchange (one S1/A1 round plus
// its S2 payload packets).
type txExchange struct {
	seq   uint32
	state txState
	// mode is pinned at startExchange: an exchange runs its whole lifetime
	// under the profile it was created with, so a runtime SetProfile never
	// mixes modes within one S1/S2 round (the S2s must match what the S1
	// announced).
	mode  packet.Mode
	msgs  []*outMsg
	pair  hashchain.Pair // our signature-chain elements for this exchange
	trees []*merkle.Tree // modes M (one tree) and CM (k subtrees)

	s1  []byte   // encoded S1 for retransmission
	s2s [][]byte // encoded S2 packets, indexed by message

	// Acknowledgment material learned from the A1 (reliable mode).
	// ackAuth is the A1's verified element; the A2's key must hash to it.
	ackAuth   []byte
	ackKeyIdx uint32
	preAck    []byte
	preNack   []byte
	amtRoot   []byte
	amtLeaves int

	acked    []bool
	ackCount int

	retries  int
	deadline time.Time
}

// Send queues payload for integrity-protected transmission and returns a
// message ID that Acked/Nacked/SendFailed events will reference. Messages
// are batched per the configured mode; Poll (or Flush) turns full or
// lingering batches into signature exchanges.
func (e *Endpoint) Send(now time.Time, payload []byte) (uint64, error) {
	if !e.established {
		return 0, ErrNotEstablished
	}
	if len(payload) > packet.MaxPayload {
		return 0, fmt.Errorf("core: payload of %d bytes exceeds %d", len(payload), packet.MaxPayload)
	}
	e.tnow = now.UnixNano()
	e.nextMsgID++
	m := &outMsg{id: e.nextMsgID, payload: append([]byte(nil), payload...), sentAt: now}
	if len(e.queue) == 0 {
		e.queuedAt = now
	}
	e.queue = append(e.queue, m)
	e.flushQueue(now, false)
	return m.id, nil
}

// Flush forces any partially filled batch into an exchange immediately.
func (e *Endpoint) Flush(now time.Time) {
	e.tnow = now.UnixNano()
	e.flushQueue(now, true)
}

// QueueLen returns the number of messages waiting for a batch slot.
func (e *Endpoint) QueueLen() int { return len(e.queue) }

// InFlight returns the number of open signature exchanges.
func (e *Endpoint) InFlight() int { return len(e.tx) }

// flushQueue starts exchanges for queued messages. Unless force is set,
// a partial batch is only flushed after FlushDelay has elapsed. While a
// rekey announcement is in flight no new exchanges start: serializing the
// generation change means verifiers and relays never see two chain
// generations interleaved, which keeps their grace-window logic trivial.
func (e *Endpoint) flushQueue(now time.Time, force bool) {
	if e.rekey != nil {
		return
	}
	for len(e.queue) > 0 && len(e.tx) < e.cfg.MaxOutstanding {
		// Under AutoRekey, the final chain pair is reserved for signing
		// the rekey announcement itself; queued messages wait out the
		// rotation instead of exhausting the chain.
		if e.cfg.AutoRekey && e.cfg.Reliable && e.sigChain.Remaining() < 4 {
			return
		}
		if len(e.queue) < e.cfg.BatchSize && !force {
			if e.cfg.FlushDelay < 0 || now.Sub(e.queuedAt) < e.cfg.FlushDelay {
				return
			}
		}
		n := len(e.queue)
		if n > e.cfg.BatchSize {
			n = e.cfg.BatchSize
		}
		batch := e.queue[:n:n]
		e.queue = e.queue[n:]
		if len(e.queue) > 0 {
			e.queuedAt = now
		}
		if err := e.startExchange(now, batch); err != nil {
			for _, m := range batch {
				e.emit(Event{Kind: EventSendFailed, MsgID: m.id, Err: err})
				e.abortRekey(m.id)
			}
		}
	}
}

// startExchange consumes a signature-chain pair and emits the S1 for a
// batch of messages.
func (e *Endpoint) startExchange(now time.Time, batch []*outMsg) error {
	pair, err := e.sigChain.NextPair()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrChainExhausted, err)
	}
	e.noteChainGauges()
	if !e.chainLow && e.sigChainIsLow() {
		e.chainLow = true
		e.emit(Event{Kind: EventChainLow})
	}
	seq := e.nextSeq
	e.nextSeq++
	x := &txExchange{
		seq:   seq,
		mode:  e.cfg.Mode,
		msgs:  batch,
		pair:  pair,
		acked: make([]bool, len(batch)),
	}
	s1 := &packet.S1{
		Mode:    x.mode,
		AuthIdx: pair.AuthIdx,
		Auth:    pair.Auth,
		KeyIdx:  pair.KeyIdx,
	}
	switch x.mode {
	case packet.ModeBase, packet.ModeC:
		// One slab holds the batch's MACs; the MAC input is assembled in
		// the endpoint's scratch buffer instead of per-message slices.
		size := e.suite.Size()
		s1.MACs = make([][]byte, len(batch))
		slab := make([]byte, 0, len(batch)*size)
		for i, m := range batch {
			e.macIn = AppendMACInput(e.macIn[:0], e.assoc, seq, uint32(i), m.payload)
			e.parts[0] = e.macIn
			off := len(slab)
			slab = e.suite.MACInto(slab, pair.Key, e.parts[:1]...)
			s1.MACs[i] = slab[off : off+size : off+size]
		}
	case packet.ModeM:
		msgs := make([][]byte, len(batch))
		for i, m := range batch {
			msgs[i] = MerkleLeafInput(m.payload)
		}
		tree, err := merkle.Build(e.suite, pair.Key, msgs)
		if err != nil {
			return err
		}
		x.trees = []*merkle.Tree{tree}
		s1.LeafCount = uint32(len(batch))
		s1.Root = tree.Root()
	case packet.ModeCM:
		n := len(batch)
		k := e.cfg.CMRoots
		if k > n {
			k = n
		}
		sub := CMSubSize(n, k)
		for off := 0; off < n; off += sub {
			end := off + sub
			if end > n {
				end = n
			}
			msgs := make([][]byte, end-off)
			for i := off; i < end; i++ {
				msgs[i-off] = MerkleLeafInput(batch[i].payload)
			}
			tree, err := merkle.Build(e.suite, pair.Key, msgs)
			if err != nil {
				return err
			}
			x.trees = append(x.trees, tree)
			s1.Roots = append(s1.Roots, tree.Root())
		}
		s1.LeafCount = uint32(n)
	}
	raw, err := packet.Encode(e.header(packet.TypeS1, seq), s1)
	if err != nil {
		return err
	}
	x.s1 = raw
	x.deadline = now.Add(e.cfg.RTO)
	e.tx[seq] = x
	e.txOrder = append(e.txOrder, seq)
	e.outbox = append(e.outbox, raw)
	e.tel.BytesSent.Add(uint64(len(raw)))
	e.tel.SentS1.Inc()
	e.tracer.Trace(e.tnow, telemetry.TraceS1Sent, e.assoc, seq, uint32(len(batch)))
	e.spans.Emit(e.tnow, e.assoc, obs.Key(pair.Auth), seq, obs.RoleSender, obs.StepS1, uint8(x.mode), obs.VerdictSent, uint32(len(batch)))
	return nil
}

// handleA1 processes the verifier's acknowledgment of an S1: it validates
// the acknowledgment-chain element, records the pre-(n)ack material, and
// releases the exchange's S2 packets.
func (e *Endpoint) handleA1(now time.Time, hdr packet.Header, a1 *packet.A1) []Event {
	e.tel.RecvA1.Inc()
	x, ok := e.tx[hdr.Seq]
	if !ok {
		return e.drop(hdr.Seq, ErrUnsolicited)
	}
	e.spanKey = obs.Key(x.pair.Auth)
	if x.state != txAwaitA1 {
		// §3.2.2: after sending S2 the signer must discard pre-(n)acks
		// arriving in further A1 packets to preserve the temporal
		// separation between pre-ack creation and key disclosure.
		return e.takeEvents()
	}
	if a1.AuthIdx%2 != 1 || a1.KeyIdx != a1.AuthIdx+1 {
		return e.drop(hdr.Seq, ErrBadAuthElement)
	}
	if err := e.verifyPeerAck(a1.Auth, a1.AuthIdx); err != nil {
		return e.drop(hdr.Seq, fmt.Errorf("%w: %v", ErrBadAuthElement, err))
	}
	e.tracer.Trace(e.tnow, telemetry.TraceA1Recv, e.assoc, hdr.Seq, 0)
	e.spans.Emit(e.tnow, e.assoc, obs.Key(x.pair.Auth), hdr.Seq, obs.RoleSender, obs.StepA1, uint8(x.mode), obs.VerdictRecv, 0)
	if e.cfg.Reliable {
		x.ackAuth = append([]byte(nil), a1.Auth...)
		x.ackKeyIdx = a1.KeyIdx
		switch {
		case a1.PreAck != nil && a1.PreNack != nil && len(x.msgs) == 1:
			x.preAck = a1.PreAck
			x.preNack = a1.PreNack
		case a1.AMTRoot != nil && int(a1.AMTLeaves) == len(x.msgs):
			x.amtRoot = a1.AMTRoot
			x.amtLeaves = int(a1.AMTLeaves)
		default:
			return e.drop(hdr.Seq, fmt.Errorf("%w: missing pre-acknowledgment material", ErrBadAck))
		}
	}
	if err := e.sendS2s(now, x); err != nil {
		return e.drop(hdr.Seq, err)
	}
	return e.takeEvents()
}

// sendS2s encodes and transmits every S2 packet of the exchange.
func (e *Endpoint) sendS2s(now time.Time, x *txExchange) error {
	x.s2s = make([][]byte, len(x.msgs))
	for i, m := range x.msgs {
		s2 := &packet.S2{
			Mode:     x.mode,
			KeyIdx:   x.pair.KeyIdx,
			Key:      x.pair.Key,
			MsgIndex: uint32(i),
			Payload:  m.payload,
		}
		switch x.mode {
		case packet.ModeM:
			proof, err := x.trees[0].Proof(i)
			if err != nil {
				return err
			}
			s2.LeafCount = uint32(x.trees[0].Leaves())
			s2.Proof = proof
		case packet.ModeCM:
			root, leaf, _, ok := CMLocate(i, len(x.msgs), len(x.trees))
			if !ok {
				return fmt.Errorf("core: CM locate failed for message %d", i)
			}
			proof, err := x.trees[root].Proof(leaf)
			if err != nil {
				return err
			}
			s2.LeafCount = uint32(len(x.msgs))
			s2.Proof = proof
		}
		raw, err := packet.Encode(e.header(packet.TypeS2, x.seq), s2)
		if err != nil {
			return err
		}
		x.s2s[i] = raw
		e.outbox = append(e.outbox, raw)
		e.tel.BytesSent.Add(uint64(len(raw)))
		e.tel.SentS2.Inc()
	}
	e.tracer.Trace(e.tnow, telemetry.TraceS2Sent, e.assoc, x.seq, uint32(len(x.msgs)))
	e.spans.Emit(e.tnow, e.assoc, obs.Key(x.pair.Auth), x.seq, obs.RoleSender, obs.StepS2, uint8(x.mode), obs.VerdictSent, uint32(len(x.msgs)))
	if e.cfg.Reliable {
		x.state = txAwaitA2
		x.retries = 0
		x.deadline = now.Add(e.cfg.RTO)
	} else {
		e.finishExchange(x)
	}
	return nil
}

// finishExchange retires a completed exchange.
func (e *Endpoint) finishExchange(x *txExchange) {
	x.state = txDone
	x.deadline = time.Time{}
	delete(e.tx, x.seq)
	for i, seq := range e.txOrder {
		if seq == x.seq {
			e.txOrder = append(e.txOrder[:i], e.txOrder[i+1:]...)
			break
		}
	}
}

// handleA2 processes a pre-(n)ack opening from the verifier.
func (e *Endpoint) handleA2(now time.Time, hdr packet.Header, a2 *packet.A2) []Event {
	e.tel.RecvA2.Inc()
	x, ok := e.tx[hdr.Seq]
	if !ok || x.state != txAwaitA2 {
		return e.drop(hdr.Seq, ErrUnsolicited)
	}
	e.spanKey = obs.Key(x.pair.Auth)
	if int(a2.MsgIndex) >= len(x.msgs) {
		return e.drop(hdr.Seq, fmt.Errorf("%w: message index out of range", ErrBadAck))
	}
	if a2.KeyIdx != x.ackKeyIdx || a2.KeyIdx%2 != 0 {
		return e.drop(hdr.Seq, fmt.Errorf("%w: key index mismatch", ErrBadAck))
	}
	// The A2's key element must be the pre-image of this exchange's A1
	// element: verification pinned to the exchange, immune to rekeys.
	if x.ackAuth == nil || !hashchain.VerifyLink(e.suite, hashchain.TagA1, hashchain.TagA2, x.ackAuth, a2.Key, a2.KeyIdx) {
		return e.drop(hdr.Seq, fmt.Errorf("%w: key element does not extend the exchange's A1", ErrBadAck))
	}
	if !e.verifyAckOpening(x, a2) {
		return e.drop(hdr.Seq, ErrBadAck)
	}
	if x.acked[a2.MsgIndex] {
		return e.takeEvents() // duplicate A2
	}
	e.spans.Emit(e.tnow, e.assoc, obs.Key(x.pair.Auth), hdr.Seq, obs.RoleSender, obs.StepA2, uint8(x.mode), obs.VerdictRecv, a2.MsgIndex)
	x.acked[a2.MsgIndex] = true
	x.ackCount++
	m := x.msgs[a2.MsgIndex]
	if a2.Ack {
		// The rekey announcement is protocol-internal: its verified ack
		// commits the chain swap and surfaces as EventRekeyed, not as an
		// application acknowledgment.
		if e.rekey != nil && e.rekey.msgID == m.id {
			e.maybeCompleteRekey(m.id)
			if x.ackCount == len(x.msgs) {
				e.finishExchange(x)
			}
			return e.takeEvents()
		}
		e.tel.Acked.Inc()
		if !m.sentAt.IsZero() {
			lat := now.Sub(m.sentAt)
			e.tel.AckLatencyNS.Add(uint64(lat))
			e.tel.AckLatencyMaxNS.SetMax(uint64(lat))
			e.tel.AckLatency.Observe(int64(lat))
		}
		e.emit(Event{Kind: EventAcked, MsgID: m.id, Seq: x.seq, MsgIndex: a2.MsgIndex})
	} else {
		e.tel.Nacked.Inc()
		e.emit(Event{Kind: EventNacked, MsgID: m.id, Seq: x.seq, MsgIndex: a2.MsgIndex})
		// A verified nack means the S2 arrived damaged or not at all;
		// retransmit it immediately (selective repeat, §3.3.3).
		x.acked[a2.MsgIndex] = false
		x.ackCount--
		e.retransmitS2(x, int(a2.MsgIndex))
	}
	if x.ackCount == len(x.msgs) {
		e.finishExchange(x)
	}
	return e.takeEvents()
}

// verifyAckOpening checks an A2 against the pre-(n)ack material buffered
// from the exchange's A1.
func (e *Endpoint) verifyAckOpening(x *txExchange, a2 *packet.A2) bool {
	switch {
	case x.preAck != nil:
		if a2.MsgIndex != 0 {
			return false
		}
		if a2.Ack {
			e.macOut = AppendPreAckDigest(e.suite, e.macOut[:0], a2.Key, a2.Secret)
			return equalDigest(e.macOut, x.preAck)
		}
		e.macOut = AppendPreNackDigest(e.suite, e.macOut[:0], a2.Key, a2.Secret)
		return equalDigest(e.macOut, x.preNack)
	case x.amtRoot != nil:
		o := &merkle.Opening{
			Index:  a2.MsgIndex,
			Ack:    a2.Ack,
			Secret: a2.Secret,
			Proof:  a2.Proof,
			Other:  a2.Other,
		}
		return merkle.VerifyOpening(e.suite, a2.Key, x.amtRoot, x.amtLeaves, o)
	default:
		return false
	}
}

// retransmitS2 re-queues one S2 packet.
func (e *Endpoint) retransmitS2(x *txExchange, i int) {
	if x.s2s == nil || i >= len(x.s2s) {
		return
	}
	e.outbox = append(e.outbox, x.s2s[i])
	e.tel.BytesSent.Add(uint64(len(x.s2s[i])))
	e.tel.Retransmits.Inc()
}

// pollExchanges fires retransmission timers.
func (e *Endpoint) pollExchanges(now time.Time) {
	for _, seq := range append([]uint32(nil), e.txOrder...) {
		x, ok := e.tx[seq]
		if !ok || x.deadline.IsZero() || now.Before(x.deadline) {
			continue
		}
		if x.retries >= e.cfg.MaxRetries {
			for i, m := range x.msgs {
				if !x.acked[i] {
					e.emit(Event{Kind: EventSendFailed, MsgID: m.id, Seq: x.seq, MsgIndex: uint32(i), Err: fmt.Errorf("alpha: retransmission limit reached")})
					e.abortRekey(m.id)
				}
			}
			e.finishExchange(x)
			continue
		}
		x.retries++
		x.deadline = now.Add(backoff(e.cfg.RTO, x.retries))
		switch x.state {
		case txAwaitA1:
			e.outbox = append(e.outbox, x.s1)
			e.tel.BytesSent.Add(uint64(len(x.s1)))
			e.tel.Retransmits.Inc()
		case txAwaitA2:
			for i := range x.msgs {
				if !x.acked[i] {
					e.retransmitS2(x, i)
				}
			}
		}
	}
}

// backoff doubles the retransmission timeout per retry, capped at 16×RTO:
// the paper calls for "robust and fast retransmission" of the small control
// packets (§3.5), so unbounded exponential backoff would be wrong for the
// lossy networks ALPHA targets.
func backoff(rto time.Duration, retries int) time.Duration {
	if retries > 4 {
		retries = 4
	}
	return rto << uint(retries)
}

// equalDigest compares two digests in constant time.
func equalDigest(a, b []byte) bool {
	return len(a) > 0 && suite.Equal(a, b)
}
