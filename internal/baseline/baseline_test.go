package baseline

import (
	"testing"

	"alpha/internal/suite"
)

func TestRSASignVerify(t *testing.T) {
	s, err := NewRSASigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("per-packet signature baseline")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(msg, sig); err != nil {
		t.Fatalf("genuine signature rejected: %v", err)
	}
	if err := s.Verify([]byte("other message"), sig); err == nil {
		t.Fatalf("signature verified for the wrong message")
	}
	sig[0] ^= 1
	if err := s.Verify(msg, sig); err == nil {
		t.Fatalf("corrupted signature verified")
	}
}

func TestDSASignVerify(t *testing.T) {
	s, err := NewDSASigner()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("dsa baseline")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(msg, sig); err != nil {
		t.Fatalf("genuine signature rejected: %v", err)
	}
	if err := s.Verify([]byte("forged"), sig); err == nil {
		t.Fatalf("signature verified for the wrong message")
	}
}

func TestHMACChannel(t *testing.T) {
	c, err := NewHMACChannel(suite.SHA1())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("end-to-end only")
	tag := c.Seal(msg)
	if err := c.Open(msg, tag); err != nil {
		t.Fatalf("genuine tag rejected: %v", err)
	}
	if err := c.Open([]byte("tampered"), tag); err == nil {
		t.Fatalf("tampered message accepted")
	}
	// The structural point of the baseline: relays cannot verify.
	if c.RelayCanVerify() {
		t.Fatalf("shared-secret HMAC must not be relay-verifiable")
	}
}

func TestHMACChannelsIndependent(t *testing.T) {
	c1, _ := NewHMACChannel(suite.SHA1())
	c2, _ := NewHMACChannel(suite.SHA1())
	msg := []byte("cross-channel")
	if err := c2.Open(msg, c1.Seal(msg)); err == nil {
		t.Fatalf("tag from one channel verified on another")
	}
}
