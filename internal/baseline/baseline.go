// Package baseline implements the comparison points of the paper's
// evaluation: RSA-1024 and DSA-1024 per-packet signatures (Table 4), plain
// hashing (Table 5), and conventional shared-secret end-to-end HMAC
// protection — the scheme ALPHA replaces because relays cannot verify it
// (§1). The package exists so the benchmark harness compares ALPHA against
// real implementations of the alternatives rather than against citations.
package baseline

import (
	"crypto"
	"crypto/dsa" //lint:ignore SA1019 the paper benchmarks DSA-1024; this is the baseline, not a recommendation
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"errors"
	"fmt"
	"math/big"

	"alpha/internal/suite"
)

// RSASigner signs and verifies packets with RSA-PKCS#1v1.5 over SHA-1,
// mirroring the HIP configuration measured in Table 4.
type RSASigner struct {
	key *rsa.PrivateKey
}

// NewRSASigner generates an RSA signer with the given modulus size.
func NewRSASigner(bits int) (*RSASigner, error) {
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("baseline: generating RSA key: %w", err)
	}
	return &RSASigner{key: key}, nil
}

// Sign produces a signature over msg.
func (s *RSASigner) Sign(msg []byte) ([]byte, error) {
	digest := sha1.Sum(msg)
	return rsa.SignPKCS1v15(nil, s.key, crypto.SHA1, digest[:])
}

// Verify checks a signature over msg.
func (s *RSASigner) Verify(msg, sig []byte) error {
	digest := sha1.Sum(msg)
	return rsa.VerifyPKCS1v15(&s.key.PublicKey, crypto.SHA1, digest[:], sig)
}

// DSASigner signs and verifies with DSA (L1024/N160), the second public-key
// baseline of Table 4.
type DSASigner struct {
	key dsa.PrivateKey
}

// NewDSASigner generates DSA parameters and a key. Parameter generation is
// slow by design; callers should reuse the signer.
func NewDSASigner() (*DSASigner, error) {
	s := &DSASigner{}
	if err := dsa.GenerateParameters(&s.key.Parameters, rand.Reader, dsa.L1024N160); err != nil {
		return nil, fmt.Errorf("baseline: generating DSA parameters: %w", err)
	}
	if err := dsa.GenerateKey(&s.key, rand.Reader); err != nil {
		return nil, fmt.Errorf("baseline: generating DSA key: %w", err)
	}
	return s, nil
}

// Signature is a DSA signature pair.
type Signature struct{ R, S *big.Int }

// Sign produces a DSA signature over msg.
func (s *DSASigner) Sign(msg []byte) (Signature, error) {
	digest := sha1.Sum(msg)
	r, sv, err := dsa.Sign(rand.Reader, &s.key, digest[:])
	if err != nil {
		return Signature{}, err
	}
	return Signature{R: r, S: sv}, nil
}

// Verify checks a DSA signature over msg.
func (s *DSASigner) Verify(msg []byte, sig Signature) error {
	digest := sha1.Sum(msg)
	if !dsa.Verify(&s.key.PublicKey, digest[:], sig.R, sig.S) {
		return errors.New("baseline: DSA signature invalid")
	}
	return nil
}

// HMACChannel is conventional shared-secret end-to-end integrity
// protection: both hosts know the key, every packet carries an HMAC, and —
// the limitation motivating ALPHA — any relay shown the key could forge
// traffic, so relays are shown nothing and can verify nothing.
type HMACChannel struct {
	st  suite.Suite
	key []byte
}

// NewHMACChannel creates a channel with a fresh random key.
func NewHMACChannel(st suite.Suite) (*HMACChannel, error) {
	key := make([]byte, st.Size())
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	return &HMACChannel{st: st, key: key}, nil
}

// Seal returns msg's authentication tag.
func (c *HMACChannel) Seal(msg []byte) []byte {
	return c.st.MAC(c.key, msg)
}

// Open verifies a tag produced by Seal.
func (c *HMACChannel) Open(msg, tag []byte) error {
	if !suite.Equal(tag, c.st.MAC(c.key, msg)) {
		return errors.New("baseline: HMAC tag invalid")
	}
	return nil
}

// RelayCanVerify reports whether an on-path relay (which by construction
// has no key material) can verify a packet. It always returns false: this
// is the structural deficit of the shared-secret baseline, stated as code.
func (c *HMACChannel) RelayCanVerify() bool { return false }
