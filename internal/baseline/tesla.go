// A simplified TESLA implementation (Perrig et al., the paper's [18]):
// time-based hash chain signatures, adapted to unicast.
//
// TESLA divides time into fixed epochs. Epoch i's packets carry a MAC keyed
// with k_i, an element of a one-way key chain; k_i itself is disclosed d
// epochs later, so receivers buffer packets until the key arrives. Security
// rests on a *time* safety condition: a packet claiming epoch i is only
// acceptable while the receiver can be certain (given loose clock
// synchronization) that the sender has not yet disclosed k_i. ALPHA's §2.1.1
// argues this makes time-based schemes brittle exactly where wireless
// multi-hop networks hurt: "jitter may lead to packets being delivered to a
// verifier after the corresponding hash-chain link was disclosed. The
// verifier consequently discards such packets." This implementation exists
// so the benchmark harness can demonstrate that trade-off against ALPHA's
// interaction-based signatures on the same simulated paths.

package baseline

import (
	"crypto/rand"
	"errors"
	"fmt"
	"time"

	"alpha/internal/suite"
)

// TESLAPacket is one authenticated message plus the piggybacked key
// disclosure of an earlier epoch.
type TESLAPacket struct {
	Epoch   uint32 // epoch whose (undisclosed) key signs this packet
	MAC     []byte
	Payload []byte
	// DisclosedEpoch/DisclosedKey reveal the key of an older epoch
	// (Epoch - lag); DisclosedKey is nil for the first lag epochs.
	DisclosedEpoch uint32
	DisclosedKey   []byte
}

// TESLASender signs packets against a pre-generated key chain.
type TESLASender struct {
	st     suite.Suite
	start  time.Time
	epoch  time.Duration
	lag    uint32
	keys   [][]byte // keys[i] = k_i; derived k_i = H(k_{i+1})
	epochs int
}

// NewTESLASender creates a sender whose epoch 0 begins at start. The key
// chain supports `epochs` epochs; lag is the disclosure delay d.
func NewTESLASender(st suite.Suite, start time.Time, epoch time.Duration, lag uint32, epochs int) (*TESLASender, error) {
	if epochs < 1 || epoch <= 0 || lag < 1 {
		return nil, errors.New("baseline: invalid TESLA parameters")
	}
	keys := make([][]byte, epochs)
	last := make([]byte, st.Size())
	if _, err := rand.Read(last); err != nil {
		return nil, err
	}
	keys[epochs-1] = st.Hash([]byte("TESLA-seed"), last)
	for i := epochs - 2; i >= 0; i-- {
		keys[i] = st.Hash([]byte("TESLA-key"), keys[i+1])
	}
	return &TESLASender{st: st, start: start, epoch: epoch, lag: lag, keys: keys, epochs: epochs}, nil
}

// Commitment returns k_0's hash image — the value receivers are
// bootstrapped with (TESLA's analogue of ALPHA's anchor).
func (s *TESLASender) Commitment() []byte {
	return s.st.Hash([]byte("TESLA-key"), s.keys[0])
}

// EpochAt maps a wall-clock instant to an epoch number.
func (s *TESLASender) EpochAt(now time.Time) int {
	if now.Before(s.start) {
		return -1
	}
	return int(now.Sub(s.start) / s.epoch)
}

// Seal authenticates payload for transmission at time now.
func (s *TESLASender) Seal(now time.Time, payload []byte) (*TESLAPacket, error) {
	i := s.EpochAt(now)
	if i < 0 || i >= s.epochs {
		return nil, fmt.Errorf("baseline: time outside TESLA key chain (epoch %d)", i)
	}
	pkt := &TESLAPacket{
		Epoch:   uint32(i),
		MAC:     s.st.MAC(s.keys[i], payload),
		Payload: payload,
	}
	if uint32(i) >= s.lag {
		j := uint32(i) - s.lag
		pkt.DisclosedEpoch = j
		pkt.DisclosedKey = s.keys[j]
	}
	return pkt, nil
}

// KeyFor exposes an epoch key after it is disclosable; used to flush
// receiver buffers at stream end (a real deployment would keep sending).
func (s *TESLASender) KeyFor(now time.Time, epoch uint32) ([]byte, bool) {
	if s.EpochAt(now) < int(epoch+s.lag) || int(epoch) >= s.epochs {
		return nil, false
	}
	return s.keys[epoch], true
}

// TESLAReceiver verifies a unicast TESLA stream under loose time
// synchronization.
type TESLAReceiver struct {
	st    suite.Suite
	start time.Time
	epoch time.Duration
	lag   uint32
	// skew bounds |receiver clock - sender clock|.
	skew time.Duration

	// commitment is the hash image of the newest verified key, walking
	// toward older epochs; keyEpoch is that key's epoch (-1: only k_0's
	// commitment known).
	commitment []byte
	keyEpoch   int
	keys       map[uint32][]byte

	pending map[uint32][]*TESLAPacket

	// Stats.
	Accepted, Unsafe, BadMAC, BadKey uint64
	delivered                        [][]byte
}

// NewTESLAReceiver mirrors the sender's parameters plus the clock skew
// bound.
func NewTESLAReceiver(st suite.Suite, start time.Time, epoch time.Duration, lag uint32, skew time.Duration, commitment []byte) *TESLAReceiver {
	return &TESLAReceiver{
		st: st, start: start, epoch: epoch, lag: lag, skew: skew,
		commitment: append([]byte(nil), commitment...),
		keyEpoch:   -1,
		keys:       make(map[uint32][]byte),
		pending:    make(map[uint32][]*TESLAPacket),
	}
}

// ErrTESLAUnsafe marks packets that failed the time safety condition: by
// the receiver's (skew-padded) clock the sender may already have disclosed
// the signing key, so authenticity can no longer be established.
var ErrTESLAUnsafe = errors.New("baseline: TESLA safety condition violated (key may already be public)")

// Receive processes one packet at receiver-clock time now. Safe packets are
// buffered until their key arrives; key disclosures trigger verification of
// buffered packets (collect results with Delivered).
func (r *TESLAReceiver) Receive(now time.Time, pkt *TESLAPacket) error {
	// Safety condition: the sender discloses k_i at epoch i+lag. The
	// sender's clock could be ahead of ours by up to skew, so the packet
	// is only safe if even that pessimistic clock has not reached the
	// disclosure epoch.
	senderLatest := now.Add(r.skew)
	discloseAt := r.start.Add(time.Duration(pkt.Epoch+r.lag) * r.epoch)
	if !senderLatest.Before(discloseAt) {
		r.Unsafe++
		return ErrTESLAUnsafe
	}
	r.pending[pkt.Epoch] = append(r.pending[pkt.Epoch], pkt)
	r.Accepted++
	if pkt.DisclosedKey != nil {
		r.learnKey(pkt.DisclosedEpoch, pkt.DisclosedKey)
	}
	return nil
}

// LearnKey ingests an out-of-band key disclosure (stream-end flush).
func (r *TESLAReceiver) LearnKey(epoch uint32, key []byte) { r.learnKey(epoch, key) }

func (r *TESLAReceiver) learnKey(epoch uint32, key []byte) {
	if _, known := r.keys[epoch]; known {
		return
	}
	// Authenticate the key against the newest verified commitment by
	// hashing toward it.
	steps := int(epoch) - r.keyEpoch
	if steps <= 0 {
		return
	}
	cur := key
	for s := 0; s < steps; s++ {
		cur = r.st.Hash([]byte("TESLA-key"), cur)
	}
	if !suite.Equal(cur, r.commitment) {
		r.BadKey++
		return
	}
	// Key genuine: derive and record every epoch key it reveals.
	cur = key
	for e := int(epoch); e > r.keyEpoch; e-- {
		r.keys[uint32(e)] = cur
		cur = r.st.Hash([]byte("TESLA-key"), cur)
	}
	r.commitment = append(r.commitment[:0], key...)
	r.keyEpoch = int(epoch)
	// Verify everything the new keys unlock.
	for e, pkts := range r.pending {
		k, ok := r.keys[e]
		if !ok {
			continue
		}
		for _, p := range pkts {
			if suite.Equal(p.MAC, r.st.MAC(k, p.Payload)) {
				r.delivered = append(r.delivered, p.Payload)
			} else {
				r.BadMAC++
			}
		}
		delete(r.pending, e)
	}
}

// Delivered drains the verified payloads.
func (r *TESLAReceiver) Delivered() [][]byte {
	out := r.delivered
	r.delivered = nil
	return out
}

// PendingPackets reports how many packets await key disclosure — TESLA's
// receiver-side buffering cost, which ALPHA's pre-signatures avoid.
func (r *TESLAReceiver) PendingPackets() int {
	n := 0
	for _, pkts := range r.pending {
		n += len(pkts)
	}
	return n
}
