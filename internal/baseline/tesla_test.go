package baseline

import (
	"fmt"
	"testing"
	"time"

	"alpha/internal/suite"
)

func teslaPair(t *testing.T, epoch time.Duration, lag uint32, skew time.Duration) (*TESLASender, *TESLAReceiver, time.Time) {
	t.Helper()
	start := time.Unix(1_700_000_000, 0)
	s, err := NewTESLASender(suite.SHA1(), start, epoch, lag, 64)
	if err != nil {
		t.Fatal(err)
	}
	r := NewTESLAReceiver(suite.SHA1(), start, epoch, lag, skew, s.Commitment())
	return s, r, start
}

func TestTESLAHappyPath(t *testing.T) {
	epoch := 100 * time.Millisecond
	s, r, start := teslaPair(t, epoch, 1, 5*time.Millisecond)
	// Send one packet per epoch for 5 epochs with small delay.
	for i := 0; i < 5; i++ {
		at := start.Add(time.Duration(i)*epoch + 10*time.Millisecond)
		pkt, err := s.Seal(at, []byte(fmt.Sprintf("epoch-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Receive(at.Add(5*time.Millisecond), pkt); err != nil {
			t.Fatalf("packet %d rejected: %v", i, err)
		}
	}
	// Packets 0..3 were unlocked by the disclosures piggybacked on 1..4;
	// flush the last key to deliver packet 4.
	flushAt := start.Add(6 * epoch)
	if k, ok := s.KeyFor(flushAt, 4); ok {
		r.LearnKey(4, k)
	} else {
		t.Fatal("key 4 not disclosable")
	}
	got := r.Delivered()
	if len(got) != 5 {
		t.Fatalf("delivered %d/5: %q", len(got), got)
	}
	if r.BadMAC != 0 || r.BadKey != 0 || r.Unsafe != 0 {
		t.Fatalf("unexpected failures: %+v", r)
	}
}

func TestTESLASafetyConditionDiscardsLatePackets(t *testing.T) {
	// The §2.1.1 critique: a packet delayed past its key's disclosure
	// time must be discarded even though it is genuine.
	epoch := 50 * time.Millisecond
	s, r, start := teslaPair(t, epoch, 1, 0)
	pkt, err := s.Seal(start.Add(10*time.Millisecond), []byte("too slow"))
	if err != nil {
		t.Fatal(err)
	}
	// Arrives after epoch 0+lag began: key k_0 is already public.
	late := start.Add(1*epoch + 10*time.Millisecond)
	if err := r.Receive(late, pkt); err != ErrTESLAUnsafe {
		t.Fatalf("late genuine packet not discarded: %v", err)
	}
	if r.Unsafe != 1 {
		t.Fatalf("unsafe counter %d", r.Unsafe)
	}
}

func TestTESLAClockSkewTightensTheWindow(t *testing.T) {
	epoch := 50 * time.Millisecond
	_, rTight, start := teslaPair(t, epoch, 1, 0)
	s, rSkewed, _ := teslaPair(t, epoch, 1, 20*time.Millisecond)
	pkt, err := s.Seal(start.Add(5*time.Millisecond), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Arrival at 40ms: fine with perfect clocks, unsafe with 20ms skew
	// (the pessimistic sender clock reads 60ms ≥ 50ms disclosure time).
	at := start.Add(40 * time.Millisecond)
	if err := rTight.Receive(at, pkt); err != nil {
		t.Fatalf("zero-skew receiver rejected safe packet: %v", err)
	}
	if err := rSkewed.Receive(at, pkt); err != ErrTESLAUnsafe {
		t.Fatalf("skewed receiver accepted unsafe packet: %v", err)
	}
}

func TestTESLARejectsForgery(t *testing.T) {
	epoch := 100 * time.Millisecond
	s, r, start := teslaPair(t, epoch, 1, 0)
	pkt, err := s.Seal(start.Add(10*time.Millisecond), []byte("real"))
	if err != nil {
		t.Fatal(err)
	}
	pkt.Payload = []byte("forged")
	if err := r.Receive(start.Add(20*time.Millisecond), pkt); err != nil {
		t.Fatal(err) // buffered: cannot verify yet
	}
	if k, ok := s.KeyFor(start.Add(3*epoch), 0); ok {
		r.LearnKey(0, k)
	}
	if got := r.Delivered(); len(got) != 0 {
		t.Fatalf("forged payload delivered: %q", got)
	}
	if r.BadMAC != 1 {
		t.Fatalf("BadMAC %d", r.BadMAC)
	}
}

func TestTESLARejectsForgedKey(t *testing.T) {
	epoch := 100 * time.Millisecond
	s, r, start := teslaPair(t, epoch, 1, 0)
	pkt, _ := s.Seal(start.Add(10*time.Millisecond), []byte("m"))
	r.Receive(start.Add(20*time.Millisecond), pkt)
	r.LearnKey(0, suite.SHA1().Hash([]byte("not the key")))
	if got := r.Delivered(); len(got) != 0 {
		t.Fatalf("forged key unlocked delivery")
	}
	if r.BadKey != 1 {
		t.Fatalf("BadKey %d", r.BadKey)
	}
}

func TestTESLAKeyGapRecovery(t *testing.T) {
	// Losing the packets of several epochs must not break the key chain:
	// a later disclosure authenticates across the gap.
	epoch := 100 * time.Millisecond
	s, r, start := teslaPair(t, epoch, 1, 0)
	// Packet in epoch 0, then nothing until epoch 5.
	p0, _ := s.Seal(start.Add(10*time.Millisecond), []byte("early"))
	r.Receive(start.Add(20*time.Millisecond), p0)
	p5, _ := s.Seal(start.Add(5*epoch+10*time.Millisecond), []byte("late"))
	if err := r.Receive(start.Add(5*epoch+20*time.Millisecond), p5); err != nil {
		t.Fatal(err)
	}
	// p5 disclosed k_4, which authenticates down to k_0 and unlocks p0.
	got := r.Delivered()
	if len(got) != 1 || string(got[0]) != "early" {
		t.Fatalf("gap recovery failed: %q", got)
	}
}

func TestTESLABuffering(t *testing.T) {
	// Until keys are disclosed the receiver buffers whole packets —
	// exactly the memory cost ALPHA's pre-signatures avoid (Table 2).
	epoch := time.Second
	s, r, start := teslaPair(t, epoch, 2, 0)
	for i := 0; i < 8; i++ {
		pkt, err := s.Seal(start.Add(time.Duration(i)*10*time.Millisecond), []byte("buffered payload"))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Receive(start.Add(time.Duration(i)*10*time.Millisecond), pkt); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.PendingPackets(); got != 8 {
		t.Fatalf("pending %d, want 8 full packets buffered", got)
	}
}
