package stats

import (
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	samples := []time.Duration{5, 1, 3, 2, 4}
	got := Summarize(samples)
	if got.N != 5 || got.Min != 1 || got.Max != 5 || got.Mean != 3 || got.Median != 3 {
		t.Fatalf("summary wrong: %+v", got)
	}
	if got.StdDev == 0 {
		t.Fatalf("stddev of spread samples should be nonzero")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); got.N != 0 || got.Mean != 0 {
		t.Fatalf("empty summary: %+v", got)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	samples := []time.Duration{3, 1, 2}
	Summarize(samples)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Fatalf("input mutated: %v", samples)
	}
}

func TestMeasureCounts(t *testing.T) {
	calls := 0
	got := Measure(10, 3, func() { calls++ })
	if calls != 13 {
		t.Fatalf("fn called %d times, want 13 (10 + 3 warmup)", calls)
	}
	if got.N != 10 {
		t.Fatalf("N = %d", got.N)
	}
}

func TestMeasureBatchDivides(t *testing.T) {
	got := MeasureBatch(5, 0, 1000, func() { time.Sleep(time.Millisecond) })
	if got.Mean > 100*time.Microsecond || got.Mean == 0 {
		t.Fatalf("per-op mean %v, expected ~1µs", got.Mean)
	}
}

func TestFormatting(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != "1.500 ms" {
		t.Fatalf("Ms: %q", got)
	}
	if got := Us(2500 * time.Nanosecond); got != "2.5 µs" {
		t.Fatalf("Us: %q", got)
	}
	if got := Rate(250_000); got != "250.00 Kbit/s" {
		t.Fatalf("Rate: %q", got)
	}
	if got := Rate(20_000_000); got != "20.00 Mbit/s" {
		t.Fatalf("Rate: %q", got)
	}
	if got := Rate(12); got != "12 bit/s" {
		t.Fatalf("Rate: %q", got)
	}
	if got := Bytes(2048); got != "2.00 KiB" {
		t.Fatalf("Bytes: %q", got)
	}
	if got := Bytes(100); got != "100 B" {
		t.Fatalf("Bytes: %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Demo", Headers: []string{"col", "value"}}
	tb.Add("alpha", 42)
	tb.Add("longer-name", "x")
	tb.Note("footnote %d", 1)
	out := tb.String()
	for _, want := range []string{"Demo", "col", "alpha", "42", "longer-name", "footnote 1", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// Columns align: header and rows share the first column width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}
