// Package stats provides the small measurement toolkit used by the
// benchmark harness: repeated-timing helpers with warmup, summary
// statistics, and plain-text table rendering for the experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Timing summarizes repeated measurements of one operation.
type Timing struct {
	N              int
	Mean, Min, Max time.Duration
	Median, P95    time.Duration
	StdDev         time.Duration
}

// Measure runs fn n times (after warmup iterations) and summarizes the
// per-iteration durations.
func Measure(n, warmup int, fn func()) Timing {
	for i := 0; i < warmup; i++ {
		fn()
	}
	if n <= 0 {
		n = 1
	}
	samples := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		samples[i] = time.Since(start)
	}
	return Summarize(samples)
}

// MeasureBatch runs fn (which performs `batch` operations internally) n
// times and reports per-operation timings; use it when a single operation
// is too fast to time individually.
func MeasureBatch(n, warmup, batch int, fn func()) Timing {
	for i := 0; i < warmup; i++ {
		fn()
	}
	if n <= 0 {
		n = 1
	}
	if batch <= 0 {
		batch = 1
	}
	samples := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		samples[i] = time.Since(start) / time.Duration(batch)
	}
	return Summarize(samples)
}

// Summarize computes summary statistics over raw samples.
func Summarize(samples []time.Duration) Timing {
	if len(samples) == 0 {
		return Timing{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, sqsum float64
	for _, s := range sorted {
		f := float64(s)
		sum += f
		sqsum += f * f
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sqsum/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Timing{
		N:      len(sorted),
		Mean:   time.Duration(mean),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: sorted[len(sorted)/2],
		P95:    sorted[(len(sorted)*95)/100],
		StdDev: time.Duration(math.Sqrt(variance)),
	}
}

// Ms renders a duration as fractional milliseconds, the unit of the
// paper's Tables 4 and 5.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d)/float64(time.Millisecond))
}

// Us renders a duration as microseconds (Table 6's unit).
func Us(d time.Duration) string {
	return fmt.Sprintf("%.1f µs", float64(d)/float64(time.Microsecond))
}

// Table renders rows as a fixed-width plain-text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "  %s\n", note)
	}
	return b.String()
}

// Rate formats a bits-per-second value with an adaptive unit.
func Rate(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.2f Gbit/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.2f Mbit/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2f Kbit/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0f bit/s", bps)
	}
}

// Bytes formats a byte count with an adaptive unit.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
