package suite

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha1"
	"testing"
	"testing/quick"
)

func allSuites() []Suite {
	return []Suite{SHA1(), SHA256(), MMO()}
}

func TestSuiteIdentity(t *testing.T) {
	cases := []struct {
		s    Suite
		id   ID
		size int
	}{
		{SHA1(), IDSHA1, 20},
		{SHA256(), IDSHA256, 32},
		{MMO(), IDMMO, 16},
	}
	for _, c := range cases {
		if c.s.ID() != c.id {
			t.Errorf("%s: ID %d, want %d", c.s.Name(), c.s.ID(), c.id)
		}
		if c.s.Size() != c.size {
			t.Errorf("%s: size %d, want %d", c.s.Name(), c.s.Size(), c.size)
		}
		if got := len(c.s.Hash([]byte("x"))); got != c.size {
			t.Errorf("%s: digest length %d, want %d", c.s.Name(), got, c.size)
		}
	}
}

func TestByID(t *testing.T) {
	for _, s := range allSuites() {
		got, err := ByID(s.ID())
		if err != nil {
			t.Fatalf("ByID(%d): %v", s.ID(), err)
		}
		if got.ID() != s.ID() {
			t.Fatalf("ByID round-trip mismatch")
		}
	}
	if _, err := ByID(IDInvalid); err == nil {
		t.Fatalf("ByID(0) should fail")
	}
	if _, err := ByID(200); err == nil {
		t.Fatalf("ByID(200) should fail")
	}
}

func TestHashConcatenation(t *testing.T) {
	for _, s := range allSuites() {
		a := s.Hash([]byte("hello "), []byte("world"))
		b := s.Hash([]byte("hello world"))
		if !bytes.Equal(a, b) {
			t.Errorf("%s: multi-part hash differs from concatenated", s.Name())
		}
	}
}

func TestHashPartitionInvariance(t *testing.T) {
	f := func(data []byte, cut uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := int(cut) % len(data)
		for _, s := range allSuites() {
			if !bytes.Equal(s.Hash(data), s.Hash(data[:i], data[i:])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMACMatchesStdlibHMAC(t *testing.T) {
	key := []byte("0123456789abcdefghij")
	msg := []byte("message to authenticate")
	got := SHA1().MAC(key, msg)
	m := hmac.New(sha1.New, key)
	m.Write(msg)
	want := m.Sum(nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("SHA1 MAC %x != stdlib HMAC %x", got, want)
	}
}

func TestMACKeySeparation(t *testing.T) {
	for _, s := range allSuites() {
		m1 := s.MAC([]byte("key-one"), []byte("payload"))
		m2 := s.MAC([]byte("key-two"), []byte("payload"))
		if bytes.Equal(m1, m2) {
			t.Errorf("%s: different keys produced equal MACs", s.Name())
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]byte{1, 2, 3}, []byte{1, 2, 3}) {
		t.Fatalf("Equal on equal slices = false")
	}
	if Equal([]byte{1, 2, 3}, []byte{1, 2, 4}) {
		t.Fatalf("Equal on different slices = true")
	}
	if Equal([]byte{1, 2}, []byte{1, 2, 3}) {
		t.Fatalf("Equal on different lengths = true")
	}
}

func TestCountingCounts(t *testing.T) {
	c := NewCounting(SHA1())
	if c.ID() != IDSHA1 || c.Size() != 20 {
		t.Fatalf("counting wrapper changed identity")
	}
	c.Hash([]byte("abcd"))
	c.Hash([]byte("ab"), []byte("cd"))
	c.MAC([]byte("key"), []byte("12345678"))
	got := c.Snapshot()
	want := Counts{Hashes: 2, MACs: 1, HashBytes: 8, MACBytes: 8}
	if got != want {
		t.Fatalf("counts %+v, want %+v", got, want)
	}
	if got.Total() != 3 {
		t.Fatalf("Total %d, want 3", got.Total())
	}
	c.Reset()
	if got := c.Snapshot(); got != (Counts{}) {
		t.Fatalf("Reset left %+v", got)
	}
}

func TestCountingTransparent(t *testing.T) {
	c := NewCounting(SHA256())
	plain := SHA256()
	if !bytes.Equal(c.Hash([]byte("x")), plain.Hash([]byte("x"))) {
		t.Fatalf("counting wrapper altered Hash output")
	}
	if !bytes.Equal(c.MAC([]byte("k"), []byte("m")), plain.MAC([]byte("k"), []byte("m"))) {
		t.Fatalf("counting wrapper altered MAC output")
	}
}

func TestCountsSub(t *testing.T) {
	a := Counts{Hashes: 10, MACs: 4, HashBytes: 100, MACBytes: 40}
	b := Counts{Hashes: 7, MACs: 1, HashBytes: 60, MACBytes: 10}
	got := a.Sub(b)
	want := Counts{Hashes: 3, MACs: 3, HashBytes: 40, MACBytes: 30}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}

func TestSuitesProduceDistinctDigests(t *testing.T) {
	in := []byte("same input everywhere")
	d1 := SHA1().Hash(in)
	d2 := SHA256().Hash(in)
	d3 := MMO().Hash(in)
	if bytes.Equal(d1, d2[:len(d1)]) || bytes.Equal(d1[:16], d3) || bytes.Equal(d2[:16], d3) {
		t.Fatalf("suites suspiciously collide")
	}
}
