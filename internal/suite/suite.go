// Package suite abstracts the cryptographic hash primitive that every other
// ALPHA component builds on. The paper deliberately leaves the hash function
// open ("e.g., SHA-1 or a block-cipher-based hash function", §2.1): internet
// hosts use SHA-1, sensor nodes use the AES-based MMO hash (§4.1.3). A Suite
// bundles the hash with its digest size and provides the two derived
// operations ALPHA needs: keyed MACs and fixed-input-length chain steps.
//
// The Counting wrapper instruments any suite with operation counters, which
// is how the reproduction of Table 1 (hash computations per message) counts
// real protocol runs instead of trusting the analytic formulas.
package suite

import (
	"crypto/hmac"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"

	"alpha/internal/mmo"
)

// ID identifies a hash suite on the wire. The zero value is invalid so that
// a forgotten field in a packet codec cannot silently select a suite.
type ID uint8

const (
	// IDInvalid is the zero, invalid suite ID.
	IDInvalid ID = 0
	// IDSHA1 selects SHA-1 with 20-byte digests (the paper's default for
	// mobile devices and mesh routers, Tables 4-6).
	IDSHA1 ID = 1
	// IDSHA256 selects SHA-256 with 32-byte digests (a modern default; not
	// in the paper but a drop-in suite the design explicitly allows).
	IDSHA256 ID = 2
	// IDMMO selects the Matyas-Meyer-Oseas AES-128 hash with 16-byte
	// digests (the paper's WSN suite, §4.1.3).
	IDMMO ID = 3
)

// Suite is a cryptographic hash suite: everything ALPHA derives (chain
// steps, MACs, Merkle nodes) is expressed through this interface so that
// protocol code is generic over the underlying primitive.
type Suite interface {
	// ID returns the wire identifier of the suite.
	ID() ID
	// Name returns a human-readable suite name.
	Name() string
	// Size returns the digest size in bytes.
	Size() int
	// Hash computes the digest of the concatenation of the given byte
	// slices. Concatenation-by-argument avoids building temporary buffers
	// in the hot path.
	Hash(parts ...[]byte) []byte
	// HashInto appends the digest of the concatenated parts to dst and
	// returns the extended slice. It never allocates when dst has Size()
	// spare capacity. parts may alias dst: every part is consumed before
	// the digest is appended.
	HashInto(dst []byte, parts ...[]byte) []byte
	// MAC computes a keyed message authentication code (HMAC) over msg.
	MAC(key []byte, msg ...[]byte) []byte
	// MACInto appends the HMAC of msg under key to dst and returns the
	// extended slice. Repeated calls with the same key reuse a cached
	// HMAC state (precomputed inner/outer pads), so after the first call
	// per key it never allocates when dst has Size() spare capacity.
	MACInto(dst, key []byte, msg ...[]byte) []byte
}

// macCacheSize bounds the per-suite cache of keyed HMAC states. ALPHA MAC
// keys are per-exchange chain elements used a batch's worth of times in
// quick succession on at most a handful of live exchanges, so a small
// recency cache captures nearly all reuse.
const macCacheSize = 8

// keyedMAC is one cached HMAC instance with its precomputed pad states.
type keyedMAC struct {
	key []byte
	mac hash.Hash
}

// macCache is a checkout-style LRU of keyed HMAC states: get removes the
// entry so that concurrent MACs under the same key never share a hash
// state; put returns it, evicting the least recently used entry when full.
type macCache struct {
	mu      sync.Mutex
	entries []*keyedMAC
}

func (c *macCache) get(key []byte) *keyedMAC {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.entries) - 1; i >= 0; i-- {
		e := c.entries[i]
		// The cache is keyed by disclosed chain elements, i.e. secrets: a
		// timing-dependent lookup would leak how many leading bytes of a
		// probe key match a cached real key.
		if subtle.ConstantTimeCompare(e.key, key) == 1 {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			return e
		}
	}
	return nil
}

func (c *macCache) put(e *keyedMAC) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= macCacheSize {
		copy(c.entries, c.entries[1:])
		c.entries[len(c.entries)-1] = e
		return
	}
	c.entries = append(c.entries, e)
}

type hashSuite struct {
	id   ID
	name string
	size int
	fn   func() hash.Hash
	// oneShot, if set, computes the whole digest without a pooled hash
	// state (used by MMO, whose digest state fits on the stack).
	oneShot func(dst []byte, parts ...[]byte) []byte
	states  sync.Pool // idle hash.Hash instances for HashInto
	macs    macCache
}

func (s *hashSuite) ID() ID       { return s.id }
func (s *hashSuite) Name() string { return s.name }
func (s *hashSuite) Size() int    { return s.size }

func (s *hashSuite) Hash(parts ...[]byte) []byte {
	return s.HashInto(nil, parts...)
}

// HashInto is the chain-step primitive every verification path funnels
// through; it must stay allocation-free.
//
//alpha:hotpath
func (s *hashSuite) HashInto(dst []byte, parts ...[]byte) []byte {
	if s.oneShot != nil {
		return s.oneShot(dst, parts...)
	}
	h, _ := s.states.Get().(hash.Hash)
	if h == nil {
		h = s.fn()
	} else {
		h.Reset()
	}
	for _, p := range parts {
		h.Write(p)
	}
	dst = h.Sum(dst)
	s.states.Put(h)
	return dst
}

func (s *hashSuite) MAC(key []byte, msg ...[]byte) []byte {
	return s.MACInto(nil, key, msg...)
}

// MACInto computes the per-packet MAC; the keyed-state cache keeps the
// steady-state path allocation-free.
//
//alpha:hotpath
func (s *hashSuite) MACInto(dst, key []byte, msg ...[]byte) []byte {
	e := s.macs.get(key)
	if e == nil {
		e = &keyedMAC{key: append([]byte(nil), key...), mac: hmac.New(s.fn, key)} //alpha:alloc-ok cache miss, amortized across a chain element's lifetime
	} else {
		// Reset restores the precomputed after-key (inner pad) state
		// without rehashing the key for marshalable hashes (SHA-1,
		// SHA-256).
		e.mac.Reset()
	}
	for _, p := range msg {
		e.mac.Write(p)
	}
	dst = e.mac.Sum(dst)
	s.macs.put(e)
	return dst
}

var (
	sha1Suite   = &hashSuite{id: IDSHA1, name: "SHA-1", size: sha1.Size, fn: sha1.New}
	sha256Suite = &hashSuite{id: IDSHA256, name: "SHA-256", size: sha256.Size, fn: sha256.New}
	mmoSuite    = &hashSuite{id: IDMMO, name: "MMO-AES128", size: mmo.Size, fn: mmo.New, oneShot: mmo.SumInto}
)

// SHA1 returns the SHA-1 suite (20-byte digests).
func SHA1() Suite { return sha1Suite }

// SHA256 returns the SHA-256 suite (32-byte digests).
func SHA256() Suite { return sha256Suite }

// MMO returns the MMO-AES128 suite (16-byte digests).
func MMO() Suite { return mmoSuite }

// ByID resolves a wire suite ID to its Suite implementation.
func ByID(id ID) (Suite, error) {
	switch id {
	case IDSHA1:
		return sha1Suite, nil
	case IDSHA256:
		return sha256Suite, nil
	case IDMMO:
		return mmoSuite, nil
	default:
		return nil, fmt.Errorf("suite: unknown suite id %d", id)
	}
}

// SizeByID returns the digest size of a suite without constructing an
// error for unknown IDs (0 when the ID is unknown). Allocation-free, for
// hot paths that size-check hostile input before full parsing.
//
//alpha:hotpath
func SizeByID(id ID) int {
	switch id {
	case IDSHA1:
		return sha1Suite.size
	case IDSHA256:
		return sha256Suite.size
	case IDMMO:
		return mmoSuite.size
	default:
		return 0
	}
}

// Equal reports whether two digests are equal in constant time. Callers
// must use this (or subtle.ConstantTimeCompare directly) for every MAC,
// digest, and chain-element comparison; the ctcompare analyzer in
// tools/alphavet enforces it.
func Equal(a, b []byte) bool { return subtle.ConstantTimeCompare(a, b) == 1 }

// Scratch is pooled working memory for hot-path hashing in free functions
// that have no owning struct to park buffers on (Merkle proof verification,
// chain link checks). Buf receives digests via HashInto/MACInto; Parts is a
// reusable input vector so that variadic calls do not allocate a fresh
// [][]byte per hash. Obtain with GetScratch, return with PutScratch.
type Scratch struct {
	Buf   []byte
	Parts [4][]byte
	// Tmp holds tiny encoded integers (indices, counters) that must live
	// somewhere heap-stable while referenced from Parts.
	Tmp [8]byte
}

var scratchPool = sync.Pool{New: func() any { return &Scratch{Buf: make([]byte, 0, 64)} }}

// GetScratch returns a pooled Scratch whose Buf is empty with at least one
// digest of spare capacity for any suite.
func GetScratch() *Scratch {
	sc := scratchPool.Get().(*Scratch)
	sc.Buf = sc.Buf[:0]
	return sc
}

// PutScratch recycles sc. It clears the Parts vector so pooled scratch never
// retains references to caller data.
func PutScratch(sc *Scratch) {
	sc.Parts = [4][]byte{}
	scratchPool.Put(sc)
}

// Counting wraps a Suite and counts primitive operations. It is safe for
// concurrent use. Wrapping preserves the wire ID so counted runs remain
// interoperable with uncounted peers.
type Counting struct {
	inner Suite
	// Hashes counts Hash invocations, MACs counts MAC invocations and
	// HashBytes/MACBytes the total input volume, because the paper's
	// Table 1 footnotes distinguish fixed-length chain/tree hashing from
	// variable-length MAC computation (the entries marked with *).
	hashes, macs, hashBytes, macBytes atomic.Uint64
}

// NewCounting returns a counting wrapper around inner.
func NewCounting(inner Suite) *Counting { return &Counting{inner: inner} }

// ID returns the wrapped suite's wire identifier.
func (c *Counting) ID() ID { return c.inner.ID() }

// Name returns the wrapped suite's name annotated as counted.
func (c *Counting) Name() string { return c.inner.Name() + "+count" }

// Size returns the wrapped suite's digest size.
func (c *Counting) Size() int { return c.inner.Size() }

// Hash counts and forwards to the wrapped suite.
func (c *Counting) Hash(parts ...[]byte) []byte {
	return c.HashInto(nil, parts...)
}

// HashInto counts and forwards to the wrapped suite.
func (c *Counting) HashInto(dst []byte, parts ...[]byte) []byte {
	c.hashes.Add(1)
	for _, p := range parts {
		c.hashBytes.Add(uint64(len(p)))
	}
	return c.inner.HashInto(dst, parts...)
}

// MAC counts and forwards to the wrapped suite.
func (c *Counting) MAC(key []byte, msg ...[]byte) []byte {
	return c.MACInto(nil, key, msg...)
}

// MACInto counts and forwards to the wrapped suite.
func (c *Counting) MACInto(dst, key []byte, msg ...[]byte) []byte {
	c.macs.Add(1)
	for _, p := range msg {
		c.macBytes.Add(uint64(len(p)))
	}
	return c.inner.MACInto(dst, key, msg...)
}

// Counts is a snapshot of the counters of a Counting suite.
type Counts struct {
	Hashes    uint64 // fixed-length hash operations
	MACs      uint64 // MAC operations over message payloads
	HashBytes uint64 // total bytes fed to Hash
	MACBytes  uint64 // total bytes fed to MAC
}

// Snapshot returns the current counter values.
func (c *Counting) Snapshot() Counts {
	return Counts{
		Hashes:    c.hashes.Load(),
		MACs:      c.macs.Load(),
		HashBytes: c.hashBytes.Load(),
		MACBytes:  c.macBytes.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counting) Reset() {
	c.hashes.Store(0)
	c.macs.Store(0)
	c.hashBytes.Store(0)
	c.macBytes.Store(0)
}

// Sub returns the element-wise difference n - o, for measuring a window.
func (n Counts) Sub(o Counts) Counts {
	return Counts{
		Hashes:    n.Hashes - o.Hashes,
		MACs:      n.MACs - o.MACs,
		HashBytes: n.HashBytes - o.HashBytes,
		MACBytes:  n.MACBytes - o.MACBytes,
	}
}

// Total returns the total number of primitive operations (hashes + MACs).
func (n Counts) Total() uint64 { return n.Hashes + n.MACs }
