// Adapters connecting the sans-IO ALPHA engine to the simulator.

package netsim

import (
	"time"

	"alpha/internal/adaptive"
	"alpha/internal/core"
)

// EndpointNode drives a core.Endpoint inside the simulation: received
// packets are handed to the engine, engine output is transmitted toward the
// peer, and the engine's timer requests become simulator events.
type EndpointNode struct {
	Name string
	Peer string // destination node name of all engine output
	EP   *core.Endpoint

	net    *Network
	events []core.Event
	// OnEvent, if set, observes every engine event as it happens.
	OnEvent func(now time.Time, ev core.Event)

	timerGen uint64 // invalidates stale timer events
	ctrlGen  uint64 // invalidates a detached controller's tick chain
}

// NewEndpointNode wraps an endpoint and registers it on the network.
func NewEndpointNode(net *Network, name, peer string, ep *core.Endpoint) *EndpointNode {
	en := &EndpointNode{Name: name, Peer: peer, EP: ep, net: net}
	net.AddNode(name, en)
	return en
}

// Receive implements Handler.
func (en *EndpointNode) Receive(net *Network, now time.Time, pkt Packet) {
	evs, err := en.EP.Handle(now, pkt.Data)
	if err == nil {
		en.record(now, evs)
	}
	en.pump(now)
}

// Start begins the handshake (initiator side) and pumps the engine.
func (en *EndpointNode) Start(now time.Time) error {
	hs1, err := en.EP.StartHandshake(now)
	if err != nil {
		return err
	}
	en.transmit(hs1)
	en.arm(now)
	return nil
}

// Send queues an application payload and pumps the engine.
func (en *EndpointNode) Send(now time.Time, payload []byte) (uint64, error) {
	id, err := en.EP.Send(now, payload)
	if err != nil {
		return 0, err
	}
	en.pump(now)
	return id, nil
}

// Flush forces partial batches out.
func (en *EndpointNode) Flush(now time.Time) {
	en.EP.Flush(now)
	en.pump(now)
}

// Events returns every engine event recorded so far.
func (en *EndpointNode) Events() []core.Event { return en.events }

// CountEvents counts recorded events of one kind.
func (en *EndpointNode) CountEvents(kind core.EventKind) int {
	c := 0
	for _, ev := range en.events {
		if ev.Kind == kind {
			c++
		}
	}
	return c
}

// DeliveredPayloads returns the payloads of all Delivered events.
func (en *EndpointNode) DeliveredPayloads() [][]byte {
	var out [][]byte
	for _, ev := range en.events {
		if ev.Kind == core.EventDelivered {
			out = append(out, ev.Payload)
		}
	}
	return out
}

// pump drains the engine's outbox and events, then re-arms the timer.
func (en *EndpointNode) pump(now time.Time) {
	out, evs := en.EP.Poll(now)
	en.record(now, evs)
	for _, raw := range out {
		en.transmit(raw)
	}
	en.arm(now)
}

func (en *EndpointNode) record(now time.Time, evs []core.Event) {
	for _, ev := range evs {
		en.events = append(en.events, ev)
		if en.OnEvent != nil {
			en.OnEvent(now, ev)
		}
	}
}

func (en *EndpointNode) transmit(raw []byte) {
	_ = en.net.Inject(en.Name, en.Peer, raw)
}

// AttachAdaptive runs an adaptive controller against this node's endpoint:
// every cfg.Interval of virtual time it samples the endpoint, feeds the
// controller, applies changed decisions via SetProfile and re-pumps the
// engine. The tick chain keeps the event queue non-empty, so scenarios
// using an attached controller should run with Run/RunFor deadlines, not
// RunUntilIdle. Returns the controller for inspection.
func (en *EndpointNode) AttachAdaptive(cfg adaptive.Config) *adaptive.Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = adaptive.DefaultInterval
	}
	ctrl := adaptive.ForEndpoint(cfg, en.EP)
	en.ctrlGen++
	gen := en.ctrlGen
	var tick func(t time.Time)
	tick = func(t time.Time) {
		if gen != en.ctrlGen {
			return // detached or replaced
		}
		if d, err := adaptive.Drive(ctrl, en.EP, t); err == nil && d.Changed {
			en.pump(t) // a new profile may change flush deadlines
		}
		en.net.Schedule(t.Add(cfg.Interval), tick)
	}
	en.net.Schedule(en.net.Now().Add(cfg.Interval), tick)
	return ctrl
}

// DetachAdaptive stops the attached controller's tick chain.
func (en *EndpointNode) DetachAdaptive() { en.ctrlGen++ }

// arm schedules the engine's next timeout as a simulator event.
func (en *EndpointNode) arm(now time.Time) {
	deadline, ok := en.EP.NextTimeout()
	if !ok {
		return
	}
	if deadline.Before(now) {
		deadline = now
	}
	en.timerGen++
	gen := en.timerGen
	en.net.Schedule(deadline, func(t time.Time) {
		if gen != en.timerGen {
			return // superseded by newer activity
		}
		en.pump(t)
	})
}
