package netsim

import (
	"testing"
	"time"
)

func TestEventOrderingDeterministic(t *testing.T) {
	n := New(1)
	var got []int
	base := n.Now()
	n.Schedule(base.Add(3*time.Millisecond), func(time.Time) { got = append(got, 3) })
	n.Schedule(base.Add(1*time.Millisecond), func(time.Time) { got = append(got, 1) })
	n.Schedule(base.Add(2*time.Millisecond), func(time.Time) { got = append(got, 2) })
	n.Schedule(base.Add(1*time.Millisecond), func(time.Time) { got = append(got, 11) }) // same time: insertion order
	n.RunFor(10 * time.Millisecond)
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestLinkDelivery(t *testing.T) {
	n := New(1)
	var delivered []Packet
	var at time.Time
	n.AddNode("B", HandlerFunc(func(net *Network, now time.Time, pkt Packet) {
		delivered = append(delivered, pkt)
		at = now
	}))
	n.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
	n.AddLink("A", "B", LinkConfig{Latency: 5 * time.Millisecond})
	start := n.Now()
	if err := n.Inject("A", "B", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)
	if len(delivered) != 1 || string(delivered[0].Data) != "hi" {
		t.Fatalf("delivered %v", delivered)
	}
	if got := at.Sub(start); got != 5*time.Millisecond {
		t.Fatalf("latency %v, want 5ms", got)
	}
	stats, _ := n.Link("A", "B")
	if stats.Sent != 1 || stats.Delivered != 1 || stats.Bytes != 2 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestLinkLossIsSeeded(t *testing.T) {
	run := func(seed int64) int {
		n := New(seed)
		got := 0
		n.AddNode("B", HandlerFunc(func(*Network, time.Time, Packet) { got++ }))
		n.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
		n.AddLink("A", "B", LinkConfig{Latency: time.Millisecond, Loss: 0.5})
		for i := 0; i < 100; i++ {
			n.Inject("A", "B", []byte{byte(i)})
		}
		n.RunFor(time.Second)
		return got
	}
	a1, a2 := run(7), run(7)
	if a1 != a2 {
		t.Fatalf("same seed, different outcomes: %d vs %d", a1, a2)
	}
	if a1 == 0 || a1 == 100 {
		t.Fatalf("loss 0.5 delivered %d/100", a1)
	}
	if b := run(8); b == a1 {
		t.Logf("different seeds coincided (%d) — possible but unlikely", b)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 8000 bit/s, 1000-byte packet => 1s serialization each; two packets
	// queue behind each other.
	n := New(1)
	var times []time.Duration
	start := n.Now()
	n.AddNode("B", HandlerFunc(func(_ *Network, now time.Time, _ Packet) {
		times = append(times, now.Sub(start))
	}))
	n.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
	n.AddLink("A", "B", LinkConfig{Bandwidth: 8000})
	data := make([]byte, 1000)
	n.Inject("A", "B", data)
	n.Inject("A", "B", data)
	n.RunFor(time.Minute)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("arrival times %v, want [1s 2s]", times)
	}
}

func TestMTUDrop(t *testing.T) {
	n := New(1)
	got := 0
	n.AddNode("B", HandlerFunc(func(*Network, time.Time, Packet) { got++ }))
	n.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
	n.AddLink("A", "B", LinkConfig{MTU: 100})
	n.Inject("A", "B", make([]byte, 100))
	n.Inject("A", "B", make([]byte, 101))
	n.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	stats, _ := n.Link("A", "B")
	if stats.MTUDrops != 1 {
		t.Fatalf("MTUDrops %d", stats.MTUDrops)
	}
}

func TestAutoRouteMultiHop(t *testing.T) {
	n := New(1)
	var path []string
	mk := func(name string) {
		n.AddNode(name, HandlerFunc(func(net *Network, now time.Time, pkt Packet) {
			path = append(path, name)
			if pkt.Dest != name {
				net.Forward(name, pkt)
			}
		}))
	}
	for _, name := range []string{"A", "r1", "r2", "r3", "B"} {
		mk(name)
	}
	n.AddDuplexLink("A", "r1", LinkConfig{Latency: time.Millisecond})
	n.AddDuplexLink("r1", "r2", LinkConfig{Latency: time.Millisecond})
	n.AddDuplexLink("r2", "r3", LinkConfig{Latency: time.Millisecond})
	n.AddDuplexLink("r3", "B", LinkConfig{Latency: time.Millisecond})
	n.AutoRoute()
	if hop, ok := n.NextHop("A", "B"); !ok || hop != "r1" {
		t.Fatalf("NextHop(A,B) = %q, %v", hop, ok)
	}
	if err := n.Inject("A", "B", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)
	want := []string{"r1", "r2", "r3", "B"}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestAutoRoutePicksShortestPath(t *testing.T) {
	// A - r1 - B and A - r2 - r3 - B: the 2-hop branch must win.
	n := New(1)
	noop := HandlerFunc(func(*Network, time.Time, Packet) {})
	for _, name := range []string{"A", "r1", "r2", "r3", "B"} {
		n.AddNode(name, noop)
	}
	n.AddDuplexLink("A", "r1", LinkConfig{})
	n.AddDuplexLink("r1", "B", LinkConfig{})
	n.AddDuplexLink("A", "r2", LinkConfig{})
	n.AddDuplexLink("r2", "r3", LinkConfig{})
	n.AddDuplexLink("r3", "B", LinkConfig{})
	n.AutoRoute()
	if hop, _ := n.NextHop("A", "B"); hop != "r1" {
		t.Fatalf("NextHop(A,B) = %q, want r1", hop)
	}
}

func TestInjectNoRoute(t *testing.T) {
	n := New(1)
	n.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
	if err := n.Inject("A", "nowhere", []byte("x")); err != ErrNoRoute {
		t.Fatalf("got %v, want ErrNoRoute", err)
	}
}

func TestDataIsCopiedInFlight(t *testing.T) {
	n := New(1)
	var got []byte
	n.AddNode("B", HandlerFunc(func(_ *Network, _ time.Time, pkt Packet) { got = pkt.Data }))
	n.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
	n.AddLink("A", "B", LinkConfig{Latency: time.Millisecond})
	buf := []byte("original")
	n.Inject("A", "B", buf)
	copy(buf, "mutated!")
	n.RunFor(time.Second)
	if string(got) != "original" {
		t.Fatalf("in-flight data aliased sender buffer: %q", got)
	}
}

func TestRunUntilIdleCap(t *testing.T) {
	n := New(1)
	count := 0
	var again func(time.Time)
	again = func(time.Time) {
		count++
		n.Schedule(n.Now().Add(time.Millisecond), again)
	}
	n.Schedule(n.Now(), again)
	if got := n.RunUntilIdle(50); got != 50 {
		t.Fatalf("processed %d, want cap 50", got)
	}
}

func TestNodeRadioSerializesAcrossLinks(t *testing.T) {
	// Node A has two infinite-bandwidth links but one 8000 bit/s radio:
	// two 1000-byte packets to different neighbors must serialize.
	n := New(1)
	var times []time.Duration
	start := n.Now()
	sink := HandlerFunc(func(_ *Network, now time.Time, _ Packet) {
		times = append(times, now.Sub(start))
	})
	n.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
	n.AddNode("B", sink)
	n.AddNode("C", sink)
	n.AddLink("A", "B", LinkConfig{})
	n.AddLink("A", "C", LinkConfig{})
	n.SetNodeRadio("A", 8000)
	data := make([]byte, 1000)
	n.Inject("A", "B", data)
	n.Inject("A", "C", data)
	n.RunFor(time.Minute)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("radio did not serialize: %v", times)
	}
	// Without the radio, both depart immediately.
	n2 := New(1)
	times = nil
	start = n2.Now()
	n2.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
	n2.AddNode("B", sink)
	n2.AddNode("C", sink)
	n2.AddLink("A", "B", LinkConfig{})
	n2.AddLink("A", "C", LinkConfig{})
	n2.Inject("A", "B", data)
	n2.Inject("A", "C", data)
	n2.RunFor(time.Minute)
	if len(times) != 2 || times[0] != 0 || times[1] != 0 {
		t.Fatalf("baseline without radio wrong: %v", times)
	}
}

func TestNodeRadioRemoval(t *testing.T) {
	n := New(1)
	n.AddNode("A", HandlerFunc(func(*Network, time.Time, Packet) {}))
	n.SetNodeRadio("A", 1000)
	n.SetNodeRadio("A", 0)
	if len(n.radios) != 0 {
		t.Fatalf("radio not removed")
	}
}
