package netsim_test

import (
	"fmt"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
	"alpha/internal/relay"
)

// TestBundlesThroughVerifyingRelays runs coalesced traffic across the mesh:
// relays must verify every sub-packet and extraction must be complete.
func TestBundlesThroughVerifyingRelays(t *testing.T) {
	cfg := core.Config{
		Mode: packet.ModeC, BatchSize: 8, Reliable: true,
		ChainLen: 256, RTO: 100 * time.Millisecond, Coalesce: true,
	}
	net, s, v, relays := mesh(t, cfg, quickLink(), relay.Config{})
	establish(t, net, s)
	const total = 24
	for i := 0; i < total; i++ {
		if _, err := s.Send(net.Now(), []byte(fmt.Sprintf("bundled-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush(net.Now())
	net.RunFor(5 * time.Second)
	if got := len(v.DeliveredPayloads()); got != total {
		t.Fatalf("delivered %d/%d via bundles", got, total)
	}
	if s.CountEvents(core.EventAcked) != total {
		t.Fatalf("acked %d/%d via bundles", s.CountEvents(core.EventAcked), total)
	}
	for _, rn := range relays {
		if len(rn.Extracted) != total {
			t.Fatalf("relay %s extracted %d/%d from bundles", rn.Name, len(rn.Extracted), total)
		}
	}
}

// TestRelayStripsTamperedSubPacket builds a bundle with one tampered S2 by
// hand and checks the relay forwards a re-framed bundle without it.
func TestRelayStripsTamperedSubPacket(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeC, BatchSize: 4, ChainLen: 64, FlushDelay: -1}
	// Drive two endpoints directly to harvest one exchange's packets.
	a, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	r := relay.New(relay.Config{})
	hs1, err := a.StartHandshake(now)
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Process(now, hs1); d.Verdict != relay.Forward {
		t.Fatal("relay dropped HS1")
	}
	b.Handle(now, hs1)
	hs2, _ := b.Poll(now)
	for _, raw := range hs2 {
		r.Process(now, raw)
		a.Handle(now, raw)
	}
	for i := 0; i < 4; i++ {
		if _, err := a.Send(now, []byte(fmt.Sprintf("sub-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush(now)
	s1, _ := a.Poll(now)
	for _, raw := range s1 {
		r.Process(now, raw)
		b.Handle(now, raw)
	}
	a1, _ := b.Poll(now)
	for _, raw := range a1 {
		r.Process(now, raw)
		a.Handle(now, raw)
	}
	s2s, _ := a.Poll(now)
	if len(s2s) != 4 {
		t.Fatalf("expected 4 S2 packets, got %d", len(s2s))
	}
	// Tamper with sub-packet 2, then bundle all four.
	hdr, msg, err := packet.Decode(s2s[2])
	if err != nil {
		t.Fatal(err)
	}
	evil := msg.(*packet.S2)
	evil.Payload = []byte("evil")
	s2s[2], err = packet.Encode(hdr, evil)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := packet.EncodeBundle(hdr.Suite, hdr.Assoc, hdr.Flags, s2s)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Process(now, bundle)
	if d.Verdict != relay.Forward {
		t.Fatalf("bundle with 3 honest packets dropped entirely: %v", d.Reason)
	}
	if d.Rewritten == nil {
		t.Fatalf("tampered sub-packet not stripped")
	}
	if got := len(d.Extractions()); got != 3 {
		t.Fatalf("extracted %d payloads, want 3", got)
	}
	// The re-framed bundle decodes and holds exactly the 3 survivors.
	_, remsg, err := packet.Decode(d.Rewritten)
	if err != nil {
		t.Fatalf("rewritten bundle undecodable: %v", err)
	}
	rb, ok := remsg.(*packet.Bundle)
	if !ok || len(rb.Packets) != 3 {
		t.Fatalf("rewritten bundle malformed: %T", remsg)
	}
	// The verifier accepts the stripped bundle: 3 deliveries, no drops.
	evs, err := b.Handle(now, d.Rewritten)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, ev := range evs {
		if ev.Kind == core.EventDelivered {
			delivered++
		}
		if ev.Kind == core.EventDropped {
			t.Fatalf("verifier dropped from stripped bundle: %v", ev.Err)
		}
	}
	if delivered != 3 {
		t.Fatalf("verifier delivered %d/3 from stripped bundle", delivered)
	}
}

// TestWSNBundlingSavesDatagrams quantifies the §3.2.1 benefit on a radio
// link: same workload, fewer transmissions.
func TestWSNBundlingSavesDatagrams(t *testing.T) {
	run := func(coalesce bool) uint64 {
		cfg := core.Config{
			Mode: packet.ModeC, BatchSize: 5, Reliable: true,
			ChainLen: 128, RTO: 200 * time.Millisecond,
			Coalesce: coalesce, CoalesceLimit: 1000,
		}
		net, s, v, _ := mesh(t, cfg, netsim.LinkConfig{Latency: 4 * time.Millisecond, Bandwidth: 250_000}, relay.Config{})
		establish(t, net, s)
		for i := 0; i < 20; i++ {
			if _, err := s.Send(net.Now(), make([]byte, 60)); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush(net.Now())
		net.RunFor(20 * time.Second)
		if len(v.DeliveredPayloads()) != 20 {
			t.Fatalf("delivery failed (coalesce=%v): %d", coalesce, len(v.DeliveredPayloads()))
		}
		st, _ := net.Link("s", "r1")
		return st.Sent
	}
	plain := run(false)
	packed := run(true)
	if packed >= plain {
		t.Fatalf("bundling did not reduce radio transmissions: %d -> %d", plain, packed)
	}
}
