package netsim_test

import (
	"fmt"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/relay"
)

// TestRekeyAcrossVerifyingRelays proves that an in-band rekey rotates the
// walkers of every on-path relay: traffic keeps verifying (and being
// extracted) hop-by-hop after multiple chain generations.
func TestRekeyAcrossVerifyingRelays(t *testing.T) {
	cfg := core.Config{
		Mode:      packet.ModeBase,
		Reliable:  true,
		ChainLen:  16, // 8 exchanges per generation
		AutoRekey: true,
		RTO:       50 * time.Millisecond,
	}
	net, s, v, relays := mesh(t, cfg, quickLink(), relay.Config{})
	establish(t, net, s)

	const total = 30 // spans several chain generations
	for i := 0; i < total; i++ {
		if _, err := s.Send(net.Now(), []byte(fmt.Sprintf("gen-msg-%02d", i))); err != nil {
			t.Fatal(err)
		}
		s.Flush(net.Now())
		net.RunFor(300 * time.Millisecond)
	}
	net.RunFor(3 * time.Second)

	if got := len(v.DeliveredPayloads()); got != total {
		t.Fatalf("delivered %d/%d across rekeys", got, total)
	}
	if s.CountEvents(core.EventRekeyed) < 2 {
		t.Fatalf("expected multiple rekeys, got %d", s.CountEvents(core.EventRekeyed))
	}
	// Every relay kept verifying: all application payloads extracted,
	// none dropped for bad elements after the rotations.
	for _, rn := range relays {
		if len(rn.Extracted) < total {
			t.Fatalf("relay %s extracted %d/%d after rekeys", rn.Name, len(rn.Extracted), total)
		}
		st := rn.R.Stats()
		if st.BadElement != 0 || st.BadPayload != 0 {
			t.Fatalf("relay %s rejected honest post-rekey traffic: %+v", rn.Name, st)
		}
	}
}

// TestRekeyUnderLossAcrossMesh combines chain rotation with a lossy path.
func TestRekeyUnderLossAcrossMesh(t *testing.T) {
	cfg := core.Config{
		Mode:       packet.ModeC,
		BatchSize:  2,
		Reliable:   true,
		ChainLen:   16,
		AutoRekey:  true,
		RTO:        60 * time.Millisecond,
		MaxRetries: 25,
	}
	link := quickLink()
	link.Loss = 0.08
	net, s, v, _ := mesh(t, cfg, link, relay.Config{})
	establish(t, net, s)
	const total = 24
	for i := 0; i < total; i++ {
		if _, err := s.Send(net.Now(), []byte(fmt.Sprintf("lossy-rekey-%02d", i))); err != nil {
			t.Fatal(err)
		}
		s.Flush(net.Now())
		net.RunFor(400 * time.Millisecond)
	}
	net.RunFor(20 * time.Second)
	if got := len(v.DeliveredPayloads()); got != total {
		t.Fatalf("delivered %d/%d with loss + rekey", got, total)
	}
	if s.CountEvents(core.EventRekeyed) == 0 {
		t.Fatalf("no rekey happened; test not exercising rotation")
	}
}
