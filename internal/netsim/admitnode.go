// Admission-gated forwarding for simulated topologies: the connect-token
// tier of internal/admission, dropped into a netsim path the way the UDP
// server mounts it in front of session creation.

package netsim

import (
	"hash/fnv"
	"time"

	"alpha/internal/admission"
	"alpha/internal/packet"
)

// SimAddr derives a deterministic pseudo client address from a node name,
// so admission tokens can bind simulated sources the way they bind real UDP
// ones. Issuers mint for SimAddr(client); the gate checks against
// SimAddr(pkt.Origin).
func SimAddr(name string) (ip []byte, port int) {
	h := fnv.New32a()
	h.Write([]byte(name))
	s := h.Sum32()
	return []byte{10, byte(s >> 16), byte(s >> 8), byte(s)}, 1024 + int(s>>17)%40000
}

// AdmissionGate is a netsim node applying the connect-token tier to every
// HS1 passing through it — the simulator stand-in for the UDP server's
// dispatch-stage verifier. Rejected handshakes die at the gate (counted by
// the verifier's own metrics); everything else forwards toward its
// destination.
type AdmissionGate struct {
	Name string
	V    *admission.Verifier
	// Admitted and Rejected count HS1 verdicts at this gate.
	Admitted, Rejected uint64
}

// NewAdmissionGate registers an admission gate on the network.
func NewAdmissionGate(n *Network, name string, v *admission.Verifier) *AdmissionGate {
	g := &AdmissionGate{Name: name, V: v}
	n.AddNode(name, g)
	return g
}

// Receive implements Handler.
func (g *AdmissionGate) Receive(n *Network, now time.Time, pkt Packet) {
	if len(pkt.Data) > 3 && packet.Type(pkt.Data[3]) == packet.TypeHS1 {
		var verdict admission.Verdict
		if view, ok := packet.ParseHS1View(pkt.Data); ok {
			ip, port := SimAddr(pkt.Origin)
			verdict = g.V.Admit(now, view.Token, ip, port, view.SigAnchor, view.AckAnchor)
		} else {
			verdict = g.V.RejectMalformed()
		}
		if !verdict.OK {
			g.Rejected++
			return
		}
		g.Admitted++
	}
	_ = n.Forward(g.Name, pkt)
}
