// Topology builders: common multi-hop layouts for experiments.

package netsim

import (
	"fmt"
	"math/rand"
)

// Line connects the named nodes in a chain with duplex links and returns
// the names. Nodes must already be registered.
func (n *Network) Line(cfg LinkConfig, names ...string) {
	for i := 0; i+1 < len(names); i++ {
		n.AddDuplexLink(names[i], names[i+1], cfg)
	}
}

// Ring connects the named nodes in a cycle.
func (n *Network) Ring(cfg LinkConfig, names ...string) {
	n.Line(cfg, names...)
	if len(names) > 2 {
		n.AddDuplexLink(names[len(names)-1], names[0], cfg)
	}
}

// Grid lays out rows×cols nodes named fmt.Sprintf(nameFmt, row, col) and
// connects 4-neighbors. All nodes must already be registered under those
// names. It returns the generated names in row-major order.
func (n *Network) Grid(cfg LinkConfig, rows, cols int, nameFmt string) []string {
	names := make([]string, 0, rows*cols)
	at := func(r, c int) string { return fmt.Sprintf(nameFmt, r, c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			names = append(names, at(r, c))
			if c+1 < cols {
				n.AddDuplexLink(at(r, c), at(r, c+1), cfg)
			}
			if r+1 < rows {
				n.AddDuplexLink(at(r, c), at(r+1, c), cfg)
			}
		}
	}
	return names
}

// RandomMesh connects the named nodes with a random connected topology:
// first a random spanning tree (guaranteeing connectivity), then extra
// random edges for path diversity. Determinism comes from the seed.
func (n *Network) RandomMesh(seed int64, cfg LinkConfig, extraEdges int, names ...string) {
	if len(names) < 2 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	order := append([]string(nil), names...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	// Random spanning tree: each node links to a random earlier node.
	for i := 1; i < len(order); i++ {
		n.AddDuplexLink(order[i], order[rng.Intn(i)], cfg)
	}
	for e := 0; e < extraEdges; e++ {
		a := order[rng.Intn(len(order))]
		b := order[rng.Intn(len(order))]
		if a != b {
			n.AddDuplexLink(a, b, cfg)
		}
	}
}
