// Relay adapter: runs a relay.Relay as a forwarding node in the simulator.

package netsim

import (
	"time"

	"alpha/internal/relay"
)

// RelayNode is a forwarding node that applies ALPHA hop-by-hop verification
// to everything it relays.
type RelayNode struct {
	Name string
	R    *relay.Relay
	// OnDecision, if set, observes every verdict (for tests and demos).
	OnDecision func(now time.Time, pkt Packet, d relay.Decision)
	// Extracted accumulates verified payloads the relay could act on.
	Extracted [][]byte
}

// NewRelayNode registers a verifying relay on the network.
func NewRelayNode(net *Network, name string, cfg relay.Config) *RelayNode {
	rn := &RelayNode{Name: name, R: relay.New(cfg)}
	net.AddNode(name, rn)
	return rn
}

// Receive implements Handler: verify, then forward or drop. Bundles may be
// re-framed in flight when some of their sub-packets fail verification.
func (rn *RelayNode) Receive(net *Network, now time.Time, pkt Packet) {
	d := rn.R.Process(now, pkt.Data)
	if rn.OnDecision != nil {
		rn.OnDecision(now, pkt, d)
	}
	if d.Verdict != relay.Forward {
		return
	}
	rn.Extracted = append(rn.Extracted, d.Extractions()...)
	if d.Rewritten != nil {
		pkt.Data = d.Rewritten
	}
	_ = net.Forward(rn.Name, pkt)
}

// PlainRelayNode forwards everything unverified: an ALPHA-unaware router,
// used to demonstrate incremental deployment (§3.5).
type PlainRelayNode struct {
	Name      string
	Forwarded uint64
}

// NewPlainRelayNode registers a dumb forwarding node on the network.
func NewPlainRelayNode(net *Network, name string) *PlainRelayNode {
	pn := &PlainRelayNode{Name: name}
	net.AddNode(name, pn)
	return pn
}

// Receive implements Handler.
func (pn *PlainRelayNode) Receive(net *Network, now time.Time, pkt Packet) {
	pn.Forwarded++
	_ = net.Forward(pn.Name, pkt)
}
