package netsim_test

import (
	"bytes"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
	"alpha/internal/relay"
)

// FuzzModeEquivalence is a differential fuzz target over the two batched
// ALPHA modes: the same payload sequence pushed through a verifying-relay
// mesh must come out identical whether the sender runs ALPHA-C (MAC lists
// in the S1) or ALPHA-M (Merkle proofs in the S2s). The modes differ only
// in how pre-authentication is encoded, never in what is delivered — any
// divergence (missing, reordered, or corrupted payloads, or verification
// failures at a relay or the verifier) is a protocol bug. Without -fuzz it
// replays the seed schedules as a regression test; with
// `go test -fuzz=FuzzModeEquivalence` it explores mutated schedules.
func FuzzModeEquivalence(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte("alpha-mode-equivalence"))
	f.Add([]byte{7, 0xff, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{0xAB, 0x00}, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Derive a bounded, deterministic schedule from the fuzz input:
		// message count, sender batch size, and per-message payloads.
		count := 1 + int(data[0])%12
		batch := 1 + int(data[len(data)-1])%8
		payloads := make([][]byte, count)
		for i := range payloads {
			size := 1 + int(data[(i+1)%len(data)])%96
			p := make([]byte, size)
			for j := range p {
				p[j] = data[(i+j)%len(data)] ^ byte(i)
			}
			payloads[i] = p
		}

		// run pushes the schedule through a fresh s-r1-r2-r3-v mesh in one
		// mode and returns the verifier-side delivered sequence. Clean,
		// jitter-free links: equivalence must hold exactly, so the transport
		// is kept deterministic and loss-free.
		run := func(mode packet.Mode) [][]byte {
			cfg := core.Config{
				Mode:      mode,
				Reliable:  true,
				ChainLen:  512,
				BatchSize: batch,
				RTO:       100 * time.Millisecond,
			}
			link := netsim.LinkConfig{Latency: 2 * time.Millisecond}
			net, s, v, relays := mesh(t, cfg, link, relay.Config{})
			establish(t, net, s)
			for _, p := range payloads {
				if _, err := s.Send(net.Now(), p); err != nil {
					t.Fatalf("%v: Send: %v", mode, err)
				}
			}
			s.Flush(net.Now())
			net.RunFor(10 * time.Second)
			for _, rn := range relays {
				st := rn.R.Stats()
				if st.BadPayload != 0 || st.Unsolicited != 0 || st.Malformed != 0 {
					t.Fatalf("%v: relay %s rejected honest traffic: %+v", mode, rn.Name, st)
				}
			}
			if d := v.EP.Stats().Dropped; d != 0 {
				t.Fatalf("%v: verifier dropped %d packets of honest traffic", mode, d)
			}
			return v.DeliveredPayloads()
		}

		gotC := run(packet.ModeC)
		gotM := run(packet.ModeM)
		if len(gotC) != count || len(gotM) != count {
			t.Fatalf("delivered C=%d M=%d, want %d", len(gotC), len(gotM), count)
		}
		for i := range payloads {
			if !bytes.Equal(gotC[i], payloads[i]) {
				t.Fatalf("ALPHA-C payload %d diverged from the sent sequence", i)
			}
			if !bytes.Equal(gotM[i], payloads[i]) {
				t.Fatalf("ALPHA-M payload %d diverged from the sent sequence", i)
			}
		}
	})
}
