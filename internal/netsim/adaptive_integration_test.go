package netsim_test

import (
	"fmt"
	"testing"
	"time"

	"alpha/internal/adaptive"
	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// The shifting-loss scenario: a closed-loop bulk sender over one duplex
// link whose loss steps 0% -> lossPeak -> 0% across three equal segments,
// with jitter high enough to reorder packets within a burst. A closed-loop
// source (fixed window of unacknowledged messages, topped up as acks
// arrive) makes per-segment goodput reflect what the current profile can
// carry right now, not a backlog draining later.
// The window is sized for pipelining (two full ALPHA-M max-batch
// exchanges in flight) but below the link's RTO headroom: 128 KiB
// serializes in ~102ms at 10 Mbit/s, keeping worst-case queueing RTT
// (~142ms) well under the 250ms RTO so clean segments produce no spurious
// retransmissions (which would pollute the controller's loss signal).
const (
	scenarioPayload = 1024
	scenarioWindow  = 128 // closed-loop window, messages
	scenarioSeed    = 42
)

func scenarioLink(loss float64) netsim.LinkConfig {
	return netsim.LinkConfig{
		Latency:   20 * time.Millisecond,
		Jitter:    4 * time.Millisecond,
		Loss:      loss,
		Bandwidth: 10_000_000,
	}
}

type scenarioResult struct {
	// goodput is bytes/s of verified deliveries per segment, measured over
	// the last 3/4 of each segment (the first quarter is the settling
	// window the controller is allowed for convergence).
	goodput   [3]float64
	delivered int
	// badCrypto counts receiver drops that indicate broken verification
	// (bad MAC/proof/chain element) — must be zero; loss-induced drops and
	// duplicates are not counted.
	badCrypto   int
	modeChanges int
	flaps       uint64
	decisions   uint64
	finalMode   packet.Mode
}

// runShiftingLoss drives one sender/receiver pair through the three loss
// segments and returns per-segment goodput. adapt selects the closed-loop
// controller; otherwise the static profile runs unchanged.
func runShiftingLoss(tb testing.TB, adapt bool, mode packet.Mode, batch int, segDur time.Duration, lossPeak float64) scenarioResult {
	tb.Helper()
	cfg := core.Config{
		Mode:      mode,
		BatchSize: batch,
		Reliable:  true,
		ChainLen:  1 << 16,
		RTO:       250 * time.Millisecond,
	}
	net := netsim.New(scenarioSeed)
	epS, err := core.NewEndpoint(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	epV, err := core.NewEndpoint(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	s := netsim.NewEndpointNode(net, "s", "v", epS)
	v := netsim.NewEndpointNode(net, "v", "s", epV)
	net.AddDuplexLink("s", "v", scenarioLink(0))
	net.AutoRoute()

	if err := s.Start(net.Now()); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 40 && !epS.Established(); i++ {
		net.RunFor(50 * time.Millisecond)
	}
	if !epS.Established() {
		tb.Fatal("no association")
	}

	met := &telemetry.ControllerMetrics{}
	if adapt {
		// Cooldown 600ms (vs the 2s production default) lets the batch ramp
		// C/16 -> M/16 -> M/32 -> M/64 complete inside the settling quarter
		// of a segment while still spacing decisions beyond two samples.
		s.AttachAdaptive(adaptive.Config{
			Interval: 250 * time.Millisecond,
			Cooldown: 600 * time.Millisecond,
			Metrics:  met,
		})
		defer s.DetachAdaptive()
	}

	start := net.Now()
	end := start.Add(3 * segDur)
	if err := net.VaryDuplexLink("s", "v",
		netsim.LinkPhase{Start: segDur, Config: scenarioLink(lossPeak)},
		netsim.LinkPhase{Start: 2 * segDur, Config: scenarioLink(0)},
	); err != nil {
		tb.Fatal(err)
	}

	res := scenarioResult{}
	var segBytes [3]uint64
	v.OnEvent = func(now time.Time, ev core.Event) {
		switch ev.Kind {
		case core.EventDelivered:
			res.delivered++
			since := now.Sub(start)
			seg := int(since / segDur)
			if seg >= 0 && seg < 3 && since-time.Duration(seg)*segDur >= segDur/4 {
				segBytes[seg] += uint64(len(ev.Payload))
			}
		case core.EventDropped:
			switch {
			case ev.Err == nil:
			case isBadCrypto(ev.Err):
				res.badCrypto++
			}
		}
	}

	// Closed-loop source: keep scenarioWindow messages unacknowledged.
	outstanding := 0
	s.OnEvent = func(now time.Time, ev core.Event) {
		switch ev.Kind {
		case core.EventAcked, core.EventNacked, core.EventSendFailed:
			outstanding--
		}
	}
	payload := make([]byte, scenarioPayload)
	var topUp func(now time.Time)
	topUp = func(now time.Time) {
		if !now.Before(end) {
			return
		}
		for outstanding < scenarioWindow {
			if _, err := s.Send(now, payload); err != nil {
				break
			}
			outstanding++
		}
		net.Schedule(now.Add(5*time.Millisecond), topUp)
	}
	net.Schedule(start, topUp)
	net.Run(end)

	window := (segDur * 3 / 4).Seconds()
	for i := range segBytes {
		res.goodput[i] = float64(segBytes[i]) / window
	}
	res.modeChanges = s.CountEvents(core.EventModeChanged)
	res.flaps = met.Flaps.Load()
	res.decisions = met.Decisions.Load()
	res.finalMode = epS.Profile().Mode
	return res
}

func isBadCrypto(err error) bool {
	for _, bad := range []error{core.ErrBadMAC, core.ErrBadProof, core.ErrBadAuthElement, core.ErrBadAck} {
		if err == bad {
			return true
		}
	}
	// errors.Is without importing errors twice: the engine wraps with %w.
	s := err.Error()
	for _, bad := range []string{core.ErrBadMAC.Error(), core.ErrBadProof.Error(), core.ErrBadAuthElement.Error()} {
		if len(s) >= len(bad) && s[len(s)-len(bad):] == bad {
			return true
		}
	}
	return false
}

// TestAdaptiveConvergesUnderShiftingLoss is the deterministic controller
// acceptance test: under 0% -> 10% -> 0% loss the adaptive endpoint must
// engage ALPHA-M during the lossy segment, return to ALPHA-C after, never
// flap, and never break verification.
func TestAdaptiveConvergesUnderShiftingLoss(t *testing.T) {
	segDur := 8 * time.Second
	if testing.Short() {
		segDur = 4 * time.Second
	}
	res := runShiftingLoss(t, true, packet.ModeC, 16, segDur, 0.10)

	if res.badCrypto != 0 {
		t.Fatalf("verification failures during transitions: %d", res.badCrypto)
	}
	if res.delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.modeChanges < 2 {
		t.Fatalf("mode changes = %d, want >= 2 (into ALPHA-M and back)", res.modeChanges)
	}
	if res.finalMode != packet.ModeC {
		t.Fatalf("final mode = %v, want ALPHA-C after loss clears", res.finalMode)
	}
	// Two condition changes happen (loss onset, loss clearing); the
	// acceptance bound is at most one flap per condition change.
	if res.flaps > 2 {
		t.Fatalf("flaps = %d, want <= 2", res.flaps)
	}
	// The lossy segment must not collapse: the controller's job is to keep
	// goodput within reach of the clean segments despite 10% loss.
	if res.goodput[1] < res.goodput[0]/4 {
		t.Fatalf("lossy-segment goodput collapsed: %.0f vs clean %.0f B/s", res.goodput[1], res.goodput[0])
	}
	t.Logf("goodput B/s per segment: clean=%.0f lossy=%.0f recovered=%.0f (decisions=%d flaps=%d)",
		res.goodput[0], res.goodput[1], res.goodput[2], res.decisions, res.flaps)
}

// TestAdaptiveTransitionOnRekeyBoundary lands a profile transition exactly
// on the rekey boundary: the moment the chain-low warning fires (which is
// also the moment AutoRekey starts an in-band rekey), the profile switches.
// The rekey must complete, traffic must continue on fresh chains under the
// new profile, and nothing may fail verification. Jitter keeps packets
// reordering throughout.
func TestAdaptiveTransitionOnRekeyBoundary(t *testing.T) {
	cfg := core.Config{
		Mode:      packet.ModeC,
		BatchSize: 4,
		Reliable:  true,
		AutoRekey: true,
		ChainLen:  64,
		RTO:       100 * time.Millisecond,
	}
	net := netsim.New(7)
	epS, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epV, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.NewEndpointNode(net, "s", "v", epS)
	v := netsim.NewEndpointNode(net, "v", "s", epV)
	net.AddDuplexLink("s", "v", netsim.LinkConfig{
		Latency: 5 * time.Millisecond, Jitter: 3 * time.Millisecond, Loss: 0.02, Bandwidth: 10_000_000,
	})
	net.AutoRoute()
	if err := s.Start(net.Now()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && !epS.Established(); i++ {
		net.RunFor(50 * time.Millisecond)
	}
	if !epS.Established() {
		t.Fatal("no association")
	}

	// The transition rides the rekey boundary itself.
	s.OnEvent = func(now time.Time, ev core.Event) {
		if ev.Kind == core.EventChainLow {
			if err := epS.SetProfile(now, core.Profile{Mode: packet.ModeM, BatchSize: 8}); err != nil {
				t.Errorf("SetProfile at rekey boundary: %v", err)
			}
		}
	}
	badCrypto := 0
	v.OnEvent = func(now time.Time, ev core.Event) {
		if ev.Kind == core.EventDropped && ev.Err != nil && isBadCrypto(ev.Err) {
			badCrypto++
		}
	}

	const total = 120 // far beyond ChainLen/2 exchanges at batch 4: forces a rekey mid-run
	sent := 0
	var feed func(now time.Time)
	feed = func(now time.Time) {
		if sent >= total {
			return
		}
		if _, err := s.Send(now, []byte(fmt.Sprintf("rk-%03d", sent))); err == nil {
			sent++
		}
		net.Schedule(now.Add(10*time.Millisecond), feed)
	}
	net.Schedule(net.Now(), feed)
	net.RunFor(30 * time.Second)

	if got := s.CountEvents(core.EventRekeyed); got < 1 {
		t.Fatalf("rekeys = %d, want >= 1", got)
	}
	if got := s.CountEvents(core.EventModeChanged); got != 1 {
		t.Fatalf("mode changes = %d, want exactly 1", got)
	}
	if epS.Profile().Mode != packet.ModeM {
		t.Fatalf("final mode = %v, want ALPHA-M", epS.Profile().Mode)
	}
	if badCrypto != 0 {
		t.Fatalf("verification failures across rekey+transition: %d", badCrypto)
	}
	if got := len(v.DeliveredPayloads()); got != total {
		t.Fatalf("delivered %d/%d", got, total)
	}
}

// BenchmarkAdaptive compares static profiles against the adaptive
// controller under the shifting-loss scenario. The metrics of record are
// per-segment goodput (clean / lossy / recovered), exported as
// goodput_seg{0,1,2}_B/s; BENCH_adaptive.json holds a measured run.
func BenchmarkAdaptive(b *testing.B) {
	segDur := 10 * time.Second
	cases := []struct {
		name  string
		adapt bool
		mode  packet.Mode
		batch int
	}{
		{"static/Basic", false, packet.ModeBase, 1},
		{"static/C-16", false, packet.ModeC, 16},
		{"static/M-16", false, packet.ModeM, 16},
		{"static/M-64", false, packet.ModeM, 64},
		{"adaptive", true, packet.ModeC, 16},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var res scenarioResult
			for i := 0; i < b.N; i++ {
				res = runShiftingLoss(b, tc.adapt, tc.mode, tc.batch, segDur, 0.10)
			}
			if res.badCrypto != 0 {
				b.Fatalf("verification failures: %d", res.badCrypto)
			}
			b.ReportMetric(res.goodput[0], "goodput_seg0_B/s")
			b.ReportMetric(res.goodput[1], "goodput_seg1_B/s")
			b.ReportMetric(res.goodput[2], "goodput_seg2_B/s")
			b.ReportMetric(float64(res.flaps), "flaps")
			b.ReportMetric(float64(res.decisions), "decisions")
		})
	}
}
