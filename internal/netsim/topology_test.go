package netsim

import (
	"fmt"
	"testing"
	"time"
)

func noopNodes(n *Network, names ...string) {
	for _, name := range names {
		n.AddNode(name, HandlerFunc(func(*Network, time.Time, Packet) {}))
	}
}

// forwarderNodes register nodes that relay toward the destination.
func forwarderNodes(n *Network, names ...string) {
	for _, name := range names {
		name := name
		n.AddNode(name, HandlerFunc(func(net *Network, now time.Time, pkt Packet) {
			if pkt.Dest != name {
				net.Forward(name, pkt)
			}
		}))
	}
}

func TestLineTopology(t *testing.T) {
	n := New(1)
	names := []string{"a", "b", "c", "d"}
	noopNodes(n, names...)
	n.Line(LinkConfig{}, names...)
	if _, ok := n.NextHop("a", "b"); !ok {
		t.Fatalf("line missing edge a-b")
	}
	if _, ok := n.NextHop("a", "d"); ok {
		t.Fatalf("line should not connect a-d directly before AutoRoute")
	}
	n.AutoRoute()
	if hop, _ := n.NextHop("a", "d"); hop != "b" {
		t.Fatalf("route a->d via %q, want b", hop)
	}
}

func TestRingTopology(t *testing.T) {
	n := New(1)
	names := []string{"a", "b", "c", "d", "e"}
	noopNodes(n, names...)
	n.Ring(LinkConfig{}, names...)
	n.AutoRoute()
	// Ring gives a shortcut: a->e is one hop around the back.
	if hop, _ := n.NextHop("a", "e"); hop != "e" {
		t.Fatalf("ring closure missing: a->e via %q", hop)
	}
	// And a->c goes forward.
	if hop, _ := n.NextHop("a", "c"); hop != "b" {
		t.Fatalf("a->c via %q, want b", hop)
	}
}

func TestGridTopology(t *testing.T) {
	n := New(1)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			noopNodes(n, fmt.Sprintf("g%d_%d", r, c))
		}
	}
	names := n.Grid(LinkConfig{Latency: time.Millisecond}, 3, 3, "g%d_%d")
	if len(names) != 9 {
		t.Fatalf("grid returned %d names", len(names))
	}
	n.AutoRoute()
	// Corner to corner is 4 hops; a shortest path exists.
	hop, ok := n.NextHop("g0_0", "g2_2")
	if !ok || (hop != "g0_1" && hop != "g1_0") {
		t.Fatalf("grid route g0_0->g2_2 via %q", hop)
	}
	// Delivery works corner to corner.
	delivered := false
	n.AddNode("g2_2", HandlerFunc(func(_ *Network, _ time.Time, pkt Packet) {
		if pkt.Dest == "g2_2" {
			delivered = true
		}
	}))
	forwarderNodes(n, "g0_1", "g1_0", "g1_1", "g0_2", "g2_0", "g1_2", "g2_1")
	if err := n.Inject("g0_0", "g2_2", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)
	if !delivered {
		t.Fatalf("grid never delivered corner to corner")
	}
}

func TestRandomMeshConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		n := New(seed)
		var names []string
		for i := 0; i < 12; i++ {
			names = append(names, fmt.Sprintf("n%02d", i))
		}
		noopNodes(n, names...)
		n.RandomMesh(seed, LinkConfig{}, 4, names...)
		n.AutoRoute()
		// Every pair must be routable (spanning tree guarantees it).
		for _, a := range names {
			for _, b := range names {
				if a == b {
					continue
				}
				if _, ok := n.NextHop(a, b); !ok {
					t.Fatalf("seed %d: no route %s -> %s", seed, a, b)
				}
			}
		}
	}
}

func TestRandomMeshDeterministic(t *testing.T) {
	build := func() *Network {
		n := New(7)
		names := []string{"a", "b", "c", "d", "e", "f"}
		noopNodes(n, names...)
		n.RandomMesh(7, LinkConfig{}, 3, names...)
		n.AutoRoute()
		return n
	}
	n1, n2 := build(), build()
	for _, a := range []string{"a", "b", "c", "d", "e", "f"} {
		for _, b := range []string{"a", "b", "c", "d", "e", "f"} {
			h1, ok1 := n1.NextHop(a, b)
			h2, ok2 := n2.NextHop(a, b)
			if ok1 != ok2 || h1 != h2 {
				t.Fatalf("same seed produced different meshes at %s->%s", a, b)
			}
		}
	}
}
