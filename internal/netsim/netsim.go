// Package netsim is a deterministic discrete-event simulator for multi-hop
// networks. It substitutes for the paper's physical testbeds (mobile
// devices, mesh routers, and IEEE 802.15.4 sensor networks) as the substrate
// ALPHA runs over: nodes exchange datagrams across directed links with
// configurable latency, jitter, loss and bandwidth, all under a virtual
// clock with seeded randomness, so every run is exactly reproducible.
//
// The simulator is intentionally protocol-agnostic: a node is anything
// implementing Handler. Adapters in this package connect the sans-IO ALPHA
// engine (internal/core) and relays (internal/relay) to the event loop.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Packet is one datagram on one hop of its journey.
type Packet struct {
	// From and To are the link endpoints of the current hop.
	From, To string
	// Origin and Dest are the end-to-end addresses.
	Origin, Dest string
	// Data is the raw datagram.
	Data []byte
}

// Handler consumes packets delivered to a node.
type Handler interface {
	// Receive is called when a packet arrives at the node. It may call
	// back into the Network to transmit packets or schedule work.
	Receive(net *Network, now time.Time, pkt Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, now time.Time, pkt Packet)

// Receive implements Handler.
func (f HandlerFunc) Receive(net *Network, now time.Time, pkt Packet) { f(net, now, pkt) }

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// Latency is the fixed propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the independent drop probability in [0, 1).
	Loss float64
	// Bandwidth in bits per second; 0 means infinite (no serialization
	// delay, no queueing).
	Bandwidth int64
	// MTU drops packets larger than this many bytes; 0 means unlimited.
	MTU int
}

// DefaultLink returns a LinkConfig resembling one 802.11 mesh hop.
func DefaultLink() LinkConfig {
	return LinkConfig{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Bandwidth: 20_000_000}
}

// link is the runtime state of one directed link.
type link struct {
	cfg       LinkConfig
	busyUntil time.Time

	// Stats.
	Sent, Delivered, Lost, MTUDrops uint64
	Bytes                           uint64
}

// LinkStats is a snapshot of a directed link's counters.
type LinkStats struct {
	Sent, Delivered, Lost, MTUDrops uint64
	Bytes                           uint64
}

type linkKey struct{ from, to string }

// event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-break for determinism
	fn  func(now time.Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Network is the simulation: nodes, links, routes and the event loop.
type Network struct {
	now    time.Time
	queue  eventQueue
	seq    uint64
	nodes  map[string]Handler
	links  map[linkKey]*link
	routes map[linkKey]string // (at, dest) -> next hop
	rng    *rand.Rand
	// radios holds per-node shared-medium state: wireless nodes have one
	// half-duplex transmitter, not one per link.
	radios map[string]*radio
}

// radio models a node's single half-duplex transmitter.
type radio struct {
	bandwidth int64
	busyUntil time.Time
}

// New creates an empty network with the given random seed. Identical seeds
// and identical operation sequences produce identical simulations.
func New(seed int64) *Network {
	return &Network{
		now:    time.Unix(1_700_000_000, 0),
		nodes:  make(map[string]Handler),
		links:  make(map[linkKey]*link),
		routes: make(map[linkKey]string),
		rng:    rand.New(rand.NewSource(seed)),
		radios: make(map[string]*radio),
	}
}

// SetNodeRadio gives a node a single shared half-duplex transmitter of the
// given bandwidth: all transmissions originating at the node serialize
// through it, whichever link they use — the wireless reality that per-link
// bandwidth alone does not capture. Pass 0 to remove the radio.
func (n *Network) SetNodeRadio(name string, bitsPerSecond int64) {
	if bitsPerSecond <= 0 {
		delete(n.radios, name)
		return
	}
	n.radios[name] = &radio{bandwidth: bitsPerSecond}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.now }

// AddNode registers a node. Adding an existing name replaces its handler.
func (n *Network) AddNode(name string, h Handler) {
	n.nodes[name] = h
}

// AddLink creates a directed link.
func (n *Network) AddLink(from, to string, cfg LinkConfig) {
	n.links[linkKey{from, to}] = &link{cfg: cfg}
}

// AddDuplexLink creates both directions of a link with the same config.
func (n *Network) AddDuplexLink(a, b string, cfg LinkConfig) {
	n.AddLink(a, b, cfg)
	n.AddLink(b, a, cfg)
}

// Link returns a directed link's statistics.
func (n *Network) Link(from, to string) (LinkStats, bool) {
	l, ok := n.links[linkKey{from, to}]
	if !ok {
		return LinkStats{}, false
	}
	return LinkStats{Sent: l.Sent, Delivered: l.Delivered, Lost: l.Lost, MTUDrops: l.MTUDrops, Bytes: l.Bytes}, true
}

// SetLoss changes a directed link's loss rate mid-simulation.
func (n *Network) SetLoss(from, to string, loss float64) error {
	l, ok := n.links[linkKey{from, to}]
	if !ok {
		return fmt.Errorf("netsim: no link %s->%s", from, to)
	}
	l.cfg.Loss = loss
	return nil
}

// SetLinkConfig replaces a directed link's whole configuration
// mid-simulation; queued transmissions keep the serialization they were
// scheduled with, new ones see the new link.
func (n *Network) SetLinkConfig(from, to string, cfg LinkConfig) error {
	l, ok := n.links[linkKey{from, to}]
	if !ok {
		return fmt.Errorf("netsim: no link %s->%s", from, to)
	}
	l.cfg = cfg
	return nil
}

// LinkPhase is one segment of a time-varying link profile.
type LinkPhase struct {
	// Start is the phase's onset, relative to the moment VaryLink is
	// called.
	Start time.Duration
	// Config is the link configuration that takes effect at Start.
	Config LinkConfig
}

// VaryLink schedules a time-varying profile on a directed link: each
// phase's configuration is applied at its Start offset. This is how
// scenarios model links that change underfoot — a mesh hop degrading as a
// node moves, then recovering — which is exactly the condition an adaptive
// mode controller exists for.
func (n *Network) VaryLink(from, to string, phases ...LinkPhase) error {
	if _, ok := n.links[linkKey{from, to}]; !ok {
		return fmt.Errorf("netsim: no link %s->%s", from, to)
	}
	for _, p := range phases {
		cfg := p.Config
		n.Schedule(n.now.Add(p.Start), func(time.Time) {
			n.links[linkKey{from, to}].cfg = cfg
		})
	}
	return nil
}

// VaryDuplexLink applies the same phase schedule to both directions.
func (n *Network) VaryDuplexLink(a, b string, phases ...LinkPhase) error {
	if err := n.VaryLink(a, b, phases...); err != nil {
		return err
	}
	return n.VaryLink(b, a, phases...)
}

// SetRoute pins the next hop used at node `at` for destination `dest`.
func (n *Network) SetRoute(at, dest, nextHop string) {
	n.routes[linkKey{at, dest}] = nextHop
}

// NextHop resolves the next hop from `at` toward `dest`, preferring pinned
// routes and falling back to a direct link.
func (n *Network) NextHop(at, dest string) (string, bool) {
	if hop, ok := n.routes[linkKey{at, dest}]; ok {
		return hop, true
	}
	if _, ok := n.links[linkKey{at, dest}]; ok {
		return dest, true
	}
	return "", false
}

// AutoRoute computes shortest-path (hop count) routes between all node
// pairs with BFS and installs them. Links are assumed symmetric for path
// discovery; only existing directed links produce routes.
func (n *Network) AutoRoute() {
	adj := make(map[string][]string)
	for k := range n.links {
		adj[k.from] = append(adj[k.from], k.to)
	}
	// Deterministic neighbor order.
	for _, v := range adj {
		sortStrings(v)
	}
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	sortStrings(names)
	for _, src := range names {
		// BFS from src recording first hop toward every destination.
		type qe struct{ node, first string }
		visited := map[string]bool{src: true}
		var queue []qe
		for _, nb := range adj[src] {
			queue = append(queue, qe{nb, nb})
			visited[nb] = true
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			n.routes[linkKey{src, cur.node}] = cur.first
			for _, nb := range adj[cur.node] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, qe{nb, cur.first})
				}
			}
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Schedule runs fn at the given virtual time (or immediately if in the
// past).
func (n *Network) Schedule(at time.Time, fn func(now time.Time)) {
	if at.Before(n.now) {
		at = n.now
	}
	n.seq++
	heap.Push(&n.queue, &event{at: at, seq: n.seq, fn: fn})
}

// ErrNoRoute is returned when a packet cannot be forwarded.
var ErrNoRoute = errors.New("netsim: no route to destination")

// Inject originates a datagram at origin toward dest, using origin's routes.
func (n *Network) Inject(origin, dest string, data []byte) error {
	hop, ok := n.NextHop(origin, dest)
	if !ok {
		return ErrNoRoute
	}
	n.Transmit(Packet{From: origin, To: hop, Origin: origin, Dest: dest, Data: data})
	return nil
}

// Forward relays pkt from node `at` toward its destination.
func (n *Network) Forward(at string, pkt Packet) error {
	hop, ok := n.NextHop(at, pkt.Dest)
	if !ok {
		return ErrNoRoute
	}
	n.Transmit(Packet{From: at, To: hop, Origin: pkt.Origin, Dest: pkt.Dest, Data: pkt.Data})
	return nil
}

// Transmit puts a packet on the link pkt.From -> pkt.To, applying MTU,
// serialization, queueing, loss and latency.
func (n *Network) Transmit(pkt Packet) {
	l, ok := n.links[linkKey{pkt.From, pkt.To}]
	if !ok {
		return // no link: silently dropped, like a radio with no peer
	}
	l.Sent++
	if l.cfg.MTU > 0 && len(pkt.Data) > l.cfg.MTU {
		l.MTUDrops++
		return
	}
	depart := n.now
	if l.cfg.Bandwidth > 0 {
		if l.busyUntil.After(depart) {
			depart = l.busyUntil
		}
		ser := time.Duration(float64(len(pkt.Data)*8) / float64(l.cfg.Bandwidth) * float64(time.Second))
		depart = depart.Add(ser)
		l.busyUntil = depart
	}
	// A node with a shared radio additionally serializes all its
	// transmissions through the one transmitter.
	if r, ok := n.radios[pkt.From]; ok {
		if r.busyUntil.After(depart) {
			depart = r.busyUntil
		}
		ser := time.Duration(float64(len(pkt.Data)*8) / float64(r.bandwidth) * float64(time.Second))
		depart = depart.Add(ser)
		r.busyUntil = depart
	}
	if l.cfg.Loss > 0 && n.rng.Float64() < l.cfg.Loss {
		l.Lost++
		return
	}
	delay := l.cfg.Latency
	if l.cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(l.cfg.Jitter)))
	}
	arrive := depart.Add(delay)
	data := append([]byte(nil), pkt.Data...)
	n.Schedule(arrive, func(now time.Time) {
		l.Delivered++
		l.Bytes += uint64(len(data))
		if h, ok := n.nodes[pkt.To]; ok {
			h.Receive(n, now, Packet{From: pkt.From, To: pkt.To, Origin: pkt.Origin, Dest: pkt.Dest, Data: data})
		}
	})
}

// Run processes events until the queue empties or the virtual deadline
// passes, and returns the number of events processed.
func (n *Network) Run(until time.Time) int {
	processed := 0
	for n.queue.Len() > 0 {
		e := n.queue[0]
		if e.at.After(until) {
			break
		}
		heap.Pop(&n.queue)
		n.now = e.at
		e.fn(n.now)
		processed++
	}
	if n.now.Before(until) {
		n.now = until
	}
	return processed
}

// RunFor advances the simulation by a virtual duration.
func (n *Network) RunFor(d time.Duration) int {
	return n.Run(n.now.Add(d))
}

// RunUntilIdle processes every pending event (with a safety cap) and
// returns the number processed.
func (n *Network) RunUntilIdle(maxEvents int) int {
	processed := 0
	for n.queue.Len() > 0 && processed < maxEvents {
		e := heap.Pop(&n.queue).(*event)
		n.now = e.at
		e.fn(n.now)
		processed++
	}
	return processed
}
