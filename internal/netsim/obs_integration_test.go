// Observability integration: hop-by-hop span correlation across a simulated
// multi-relay path, and the telemetry invariant checker run against live
// scenario metrics (DESIGN.md §5i).

package netsim_test

import (
	"fmt"
	"testing"
	"time"

	"alpha/internal/adaptive"
	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/relay"
	"alpha/internal/telemetry"
)

// obsMesh builds s - r1 - r2 - v with a span ring on every hop.
type obsMesh struct {
	net     *netsim.Network
	s, v    *netsim.EndpointNode
	relays  []*netsim.RelayNode
	rings   []*obs.SpanRing // sender, r1, r2, receiver
	ringFor map[string]*obs.SpanRing
}

func newObsMesh(t *testing.T, cfg core.Config, link netsim.LinkConfig) *obsMesh {
	t.Helper()
	m := &obsMesh{net: netsim.New(7), ringFor: make(map[string]*obs.SpanRing)}
	for i := 0; i < 4; i++ {
		m.rings = append(m.rings, obs.NewSpanRing(8192))
	}
	sCfg, vCfg := cfg, cfg
	sCfg.Spans, vCfg.Spans = m.rings[0], m.rings[3]
	epS, err := core.NewEndpoint(sCfg)
	if err != nil {
		t.Fatal(err)
	}
	epV, err := core.NewEndpoint(vCfg)
	if err != nil {
		t.Fatal(err)
	}
	m.s = netsim.NewEndpointNode(m.net, "s", "v", epS)
	m.v = netsim.NewEndpointNode(m.net, "v", "s", epV)
	for i, name := range []string{"r1", "r2"} {
		m.relays = append(m.relays, netsim.NewRelayNode(m.net, name, relay.Config{Spans: m.rings[1+i]}))
	}
	hops := []string{"s", "r1", "r2", "v"}
	for i := 0; i+1 < len(hops); i++ {
		m.net.AddDuplexLink(hops[i], hops[i+1], link)
	}
	m.net.AutoRoute()
	for i, h := range hops {
		m.ringFor[h] = m.rings[i]
	}
	return m
}

func (m *obsMesh) hopSpans() []obs.HopSpans {
	hops := []string{"s", "r1", "r2", "v"}
	out := make([]obs.HopSpans, 0, len(hops))
	for _, h := range hops {
		out = append(out, obs.HopSpans{Hop: h, Spans: m.ringFor[h].Snapshot()})
	}
	return out
}

// TestTwoRelayLossyTimeline reconstructs, from the four per-hop span rings
// alone (no wire change), a complete sender→r1→r2→receiver timeline for
// every exchange the receiver delivered — on a 10%-lossy path where
// retransmissions and relay drops interleave with the survivors.
func TestTwoRelayLossyTimeline(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeC, Reliable: true, ChainLen: 512, BatchSize: 4,
		RTO: 60 * time.Millisecond, MaxRetries: 30}
	link := netsim.LinkConfig{Latency: 2 * time.Millisecond, Loss: 0.10}
	m := newObsMesh(t, cfg, link)
	establish(t, m.net, m.s)

	const total = 16
	for i := 0; i < total; i++ {
		if _, err := m.s.Send(m.net.Now(), []byte(fmt.Sprintf("tl-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	m.s.Flush(m.net.Now())
	m.net.RunFor(30 * time.Second)
	if got := len(m.v.DeliveredPayloads()); got != total {
		t.Fatalf("delivered %d/%d under loss", got, total)
	}

	timelines := obs.Reconstruct(m.hopSpans())
	if len(timelines) == 0 {
		t.Fatal("no exchange timelines reconstructed")
	}

	// Index: which exchanges did the receiver actually deliver payloads of?
	delivered := 0
	for id, entries := range timelines {
		sawDeliver := false
		for _, e := range entries {
			if e.Hop == "v" && e.Span.Step == obs.StepS2 && e.Span.Verdict == obs.VerdictDeliver {
				sawDeliver = true
			}
		}
		if !sawDeliver {
			continue // exchange died in flight; its partial timeline is expected
		}
		delivered++
		// A delivered exchange must have crossed every hop: S1 sent at the
		// sender, forwarded by both relays, received at the receiver; then
		// at least one S2 with the same fate.
		type hopStep struct {
			hop     string
			step    uint8
			verdict uint8
		}
		want := []hopStep{
			{"s", obs.StepS1, obs.VerdictSent},
			{"r1", obs.StepS1, obs.VerdictForward},
			{"r2", obs.StepS1, obs.VerdictForward},
			{"v", obs.StepS1, obs.VerdictRecv},
			{"s", obs.StepS2, obs.VerdictSent},
			{"r1", obs.StepS2, obs.VerdictForward},
			{"r2", obs.StepS2, obs.VerdictForward},
			{"v", obs.StepS2, obs.VerdictDeliver},
		}
		for _, w := range want {
			found := false
			for _, e := range entries {
				if e.Hop == w.hop && e.Span.Step == w.step && e.Span.Verdict == w.verdict {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("exchange %04x/%d: no span hop=%s step=%s verdict=%s in timeline",
					id.Key, id.Seq, w.hop, obs.StepString(w.step), obs.VerdictString(w.verdict))
			}
		}
		// Entries arrive time-ordered; the virtual clock must never run
		// backwards inside one exchange.
		for i := 1; i < len(entries); i++ {
			if entries[i].Span.Time < entries[i-1].Span.Time {
				t.Errorf("exchange %04x/%d: timeline out of order at %d", id.Key, id.Seq, i)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no delivered exchange found in reconstructed timelines")
	}
}

// scenarioExporter registers every hop's live metric families the way the
// CLIs do, so the invariant checker sees the same sample names production
// scrapes produce.
func scenarioExporter(m *obsMesh) *telemetry.Exporter {
	exp := telemetry.NewExporter()
	exp.Register("alpha_sender", m.s.EP.Telemetry())
	exp.Register("alpha_receiver", m.v.EP.Telemetry())
	for i, rn := range m.relays {
		exp.Register(fmt.Sprintf("alpha_relay%d", i+1), rn.R.Telemetry())
	}
	return exp
}

func checkInvariants(t *testing.T, name string, exp *telemetry.Exporter, inv obs.Invariants) {
	t.Helper()
	snap, _, err := obs.Collect(exp)
	if err != nil {
		t.Fatalf("%s: collect: %v", name, err)
	}
	for _, v := range inv.Check(snap) {
		t.Errorf("%s: %s", name, v)
	}
}

// TestInvariantsScenarios runs the standing netsim schedules — benign
// lossless, benign lossy, and adaptive under a loss phase — and holds each
// final metric state to the I1–I4 catalog.
func TestInvariantsScenarios(t *testing.T) {
	t.Run("benign-lossless", func(t *testing.T) {
		cfg := core.Config{Mode: packet.ModeC, Reliable: true, ChainLen: 256, BatchSize: 4, RTO: 100 * time.Millisecond}
		m := newObsMesh(t, cfg, netsim.LinkConfig{Latency: 2 * time.Millisecond})
		establish(t, m.net, m.s)
		exp := scenarioExporter(m)
		prev, counters, err := obs.Collect(exp)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if _, err := m.s.Send(m.net.Now(), []byte(fmt.Sprintf("clean-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		m.s.Flush(m.net.Now())
		m.net.RunFor(5 * time.Second)
		// I2 + I4: benign and lossless means zero verification failures and
		// zero drops anywhere, with flow conservation on top.
		checkInvariants(t, "lossless", exp, obs.Invariants{Benign: true, Offered: 200, Loss: 0})
		// I1 across the run: nothing moved backwards.
		cur, _, err := obs.Collect(exp)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range obs.Monotonic(prev, cur, counters) {
			t.Errorf("lossless: %s", v)
		}
	})

	t.Run("benign-lossy", func(t *testing.T) {
		cfg := core.Config{Mode: packet.ModeC, Reliable: true, ChainLen: 512, BatchSize: 4,
			RTO: 60 * time.Millisecond, MaxRetries: 30}
		m := newObsMesh(t, cfg, netsim.LinkConfig{Latency: 2 * time.Millisecond, Loss: 0.15})
		establish(t, m.net, m.s)
		for i := 0; i < 20; i++ {
			if _, err := m.s.Send(m.net.Now(), []byte(fmt.Sprintf("lossy-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		m.s.Flush(m.net.Now())
		m.net.RunFor(30 * time.Second)
		st := m.s.EP.Stats()
		offered := st.SentS1 + st.SentS2 + st.Retransmits + 200 // plus acks and handshake slack
		checkInvariants(t, "lossy", exp15(m), obs.Invariants{Benign: true, Offered: offered, Loss: 0.15, Hops: 3})
	})

	t.Run("adaptive", func(t *testing.T) {
		cfg := core.Config{Mode: packet.ModeC, Reliable: true, ChainLen: 1024, BatchSize: 4,
			RTO: 60 * time.Millisecond, MaxRetries: 30}
		m := newObsMesh(t, cfg, netsim.LinkConfig{Latency: 2 * time.Millisecond})
		establish(t, m.net, m.s)
		ctrl := m.s.AttachAdaptive(adaptive.Config{
			Interval: 100 * time.Millisecond,
			Cooldown: 500 * time.Millisecond,
		})
		// Clean phase, then a loss phase the controller should react to.
		deadline := m.net.Now().Add(8 * time.Second)
		phase := 0
		for m.net.Now().Before(deadline) {
			if phase == 0 && m.net.Now().Add(4*time.Second).After(deadline) {
				phase = 1
				if err := m.net.SetLoss("r1", "r2", 0.20); err != nil {
					t.Fatal(err)
				}
				if err := m.net.SetLoss("r2", "r1", 0.20); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := m.s.Send(m.net.Now(), []byte("adaptive-payload-xxxxxxxxxxxxxxxx")); err != nil {
				t.Fatal(err)
			}
			m.s.Flush(m.net.Now())
			m.net.RunFor(50 * time.Millisecond)
		}
		m.net.SetLoss("r1", "r2", 0)
		m.net.SetLoss("r2", "r1", 0)
		m.net.RunFor(10 * time.Second)
		_ = ctrl
		st := m.s.EP.Stats()
		offered := st.SentS1 + st.SentS2 + st.Retransmits + 400
		checkInvariants(t, "adaptive", exp15(m), obs.Invariants{Benign: true, Offered: offered, Loss: 0.20, Hops: 3})
	})
}

// exp15 builds the exporter late so the Offered estimate can come from the
// endpoint's own counters.
func exp15(m *obsMesh) *telemetry.Exporter { return scenarioExporter(m) }
