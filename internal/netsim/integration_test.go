package netsim_test

import (
	"fmt"
	"testing"
	"time"

	"alpha/internal/attack"
	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
	"alpha/internal/relay"
	"alpha/internal/suite"
)

// mesh builds the paper's Figure 1 topology: s - r1 - r2 - r3 - v with
// verifying relays, returning the network and the two endpoint nodes.
func mesh(t *testing.T, cfg core.Config, link netsim.LinkConfig, relayCfg relay.Config) (*netsim.Network, *netsim.EndpointNode, *netsim.EndpointNode, []*netsim.RelayNode) {
	t.Helper()
	net := netsim.New(42)
	epS, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epV, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.NewEndpointNode(net, "s", "v", epS)
	v := netsim.NewEndpointNode(net, "v", "s", epV)
	var relays []*netsim.RelayNode
	names := []string{"r1", "r2", "r3"}
	for _, name := range names {
		relays = append(relays, netsim.NewRelayNode(net, name, relayCfg))
	}
	hops := append([]string{"s"}, append(names, "v")...)
	for i := 0; i+1 < len(hops); i++ {
		net.AddDuplexLink(hops[i], hops[i+1], link)
	}
	net.AutoRoute()
	return net, s, v, relays
}

func quickLink() netsim.LinkConfig {
	return netsim.LinkConfig{Latency: 2 * time.Millisecond, Jitter: time.Millisecond}
}

func establish(t *testing.T, net *netsim.Network, s *netsim.EndpointNode) {
	t.Helper()
	if err := s.Start(net.Now()); err != nil {
		t.Fatal(err)
	}
	// Lossy paths may need several handshake retransmissions.
	for i := 0; i < 120 && !s.EP.Established(); i++ {
		net.RunFor(250 * time.Millisecond)
	}
	if !s.EP.Established() {
		t.Fatalf("association did not establish over the mesh")
	}
}

func TestMeshEndToEndAllModes(t *testing.T) {
	for _, mode := range []packet.Mode{packet.ModeBase, packet.ModeC, packet.ModeM, packet.ModeCM} {
		for _, reliable := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/reliable=%v", mode, reliable), func(t *testing.T) {
				cfg := core.Config{Mode: mode, Reliable: reliable, ChainLen: 256, BatchSize: 4, RTO: 100 * time.Millisecond}
				net, s, v, relays := mesh(t, cfg, quickLink(), relay.Config{})
				establish(t, net, s)
				const total = 12
				for i := 0; i < total; i++ {
					if _, err := s.Send(net.Now(), []byte(fmt.Sprintf("msg-%02d", i))); err != nil {
						t.Fatal(err)
					}
				}
				s.Flush(net.Now())
				net.RunFor(3 * time.Second)
				if got := len(v.DeliveredPayloads()); got != total {
					t.Fatalf("delivered %d/%d", got, total)
				}
				if reliable && s.CountEvents(core.EventAcked) != total {
					t.Fatalf("acked %d/%d", s.CountEvents(core.EventAcked), total)
				}
				// Relays verified and extracted every payload.
				for _, rn := range relays {
					if len(rn.Extracted) != total {
						t.Fatalf("relay %s extracted %d/%d payloads", rn.Name, len(rn.Extracted), total)
					}
					st := rn.R.Stats()
					if st.BadPayload != 0 || st.Unsolicited != 0 {
						t.Fatalf("relay %s saw unexpected bad traffic: %+v", rn.Name, st)
					}
				}
			})
		}
	}
}

func TestMeshSurvivesLoss(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeC, Reliable: true, ChainLen: 512, BatchSize: 4, RTO: 60 * time.Millisecond, MaxRetries: 30}
	link := quickLink()
	link.Loss = 0.15 // 15% loss per hop, both directions
	net, s, v, _ := mesh(t, cfg, link, relay.Config{})
	establish(t, net, s)
	const total = 20
	for i := 0; i < total; i++ {
		if _, err := s.Send(net.Now(), []byte(fmt.Sprintf("lossy-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush(net.Now())
	net.RunFor(30 * time.Second)
	if got := len(v.DeliveredPayloads()); got != total {
		t.Fatalf("delivered %d/%d under loss", got, total)
	}
	if s.CountEvents(core.EventAcked) != total {
		t.Fatalf("acked %d/%d under loss", s.CountEvents(core.EventAcked), total)
	}
	if s.EP.Stats().Retransmits == 0 {
		t.Fatalf("no retransmissions under 15%% loss — drop logic suspicious")
	}
}

func TestTamperDroppedAtFirstHonestRelay(t *testing.T) {
	// Topology: s - evil - r2 - r3 - v. The tamperer rewrites S2 payloads;
	// r2 (the first honest relay) must drop them, so nothing tampered
	// reaches r3 or v.
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 128, RTO: 100 * time.Millisecond}
	net := netsim.New(7)
	epS, _ := core.NewEndpoint(cfg)
	epV, _ := core.NewEndpoint(cfg)
	s := netsim.NewEndpointNode(net, "s", "v", epS)
	v := netsim.NewEndpointNode(net, "v", "s", epV)
	attack.NewTamperNode(net, "evil", []byte("evil payload"))
	r2 := netsim.NewRelayNode(net, "r2", relay.Config{})
	r3 := netsim.NewRelayNode(net, "r3", relay.Config{})
	for _, pair := range [][2]string{{"s", "evil"}, {"evil", "r2"}, {"r2", "r3"}, {"r3", "v"}} {
		net.AddDuplexLink(pair[0], pair[1], quickLink())
	}
	net.AutoRoute()
	establish(t, net, s)
	for i := 0; i < 5; i++ {
		if _, err := s.Send(net.Now(), []byte("honest message")); err != nil {
			t.Fatal(err)
		}
		s.Flush(net.Now())
		net.RunFor(200 * time.Millisecond)
	}
	net.RunFor(2 * time.Second)
	if got := len(v.DeliveredPayloads()); got != 0 {
		t.Fatalf("verifier delivered %d tampered messages", got)
	}
	if r2.R.Stats().BadPayload == 0 {
		t.Fatalf("first honest relay never dropped tampered S2s: %+v", r2.R.Stats())
	}
	if r3.R.Stats().BadPayload != 0 {
		t.Fatalf("tampered packets leaked past the first honest relay")
	}
}

func TestFloodSuppressedAtFirstRelay(t *testing.T) {
	// A flooding attacker injects forged S2s for the victim association
	// through r1. The relay drops them all as unsolicited; the victim
	// sees none, and legitimate traffic still flows.
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 128, RTO: 100 * time.Millisecond}
	net, s, v, relays := mesh(t, cfg, quickLink(), relay.Config{})
	establish(t, net, s)

	flood := attack.NewFloodNode(net, "mallory", "v", s.EP.Assoc())
	net.AddDuplexLink("mallory", "r1", quickLink())
	net.AutoRoute()
	flood.FloodFor(net, net.Now(), time.Second, 200)

	if _, err := s.Send(net.Now(), []byte("legit")); err != nil {
		t.Fatal(err)
	}
	s.Flush(net.Now())
	net.RunFor(5 * time.Second)

	if flood.Sent != 200 {
		t.Fatalf("flood sent %d", flood.Sent)
	}
	r1 := relays[0]
	if got := r1.R.Stats().Unsolicited; got != 200 {
		t.Fatalf("r1 dropped %d unsolicited, want 200", got)
	}
	// Nothing forged reached deeper relays or the victim.
	if relays[1].R.Stats().Unsolicited != 0 {
		t.Fatalf("forged packets leaked past r1")
	}
	vd := v.DeliveredPayloads()
	if len(vd) != 1 || string(vd[0]) != "legit" {
		t.Fatalf("legitimate traffic disturbed: %q", vd)
	}
}

func TestS1RateLimiting(t *testing.T) {
	// Even S1 packets — the only unconditionally forwarded type — are
	// rate-limited per flow (§3.5).
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 128, RTO: 100 * time.Millisecond}
	relayCfg := relay.Config{S1Rate: 5, S1Burst: 5}
	net, s, _, relays := mesh(t, cfg, quickLink(), relayCfg)
	establish(t, net, s)
	// Burst far above the rate limit.
	for i := 0; i < 50; i++ {
		if _, err := s.Send(net.Now(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		s.Flush(net.Now())
	}
	net.RunFor(300 * time.Millisecond)
	if got := relays[0].R.Stats().RateLimited; got == 0 {
		t.Fatalf("rate limiter never fired")
	}
}

func TestReplayAcrossMeshRejected(t *testing.T) {
	// Capture an entire exchange at r2, then replay it. Every replayed
	// packet must be dropped or ignored: the verifier delivers nothing
	// new and relays count replays as unsolicited/stale.
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 128, RTO: 100 * time.Millisecond}
	net := netsim.New(11)
	epS, _ := core.NewEndpoint(cfg)
	epV, _ := core.NewEndpoint(cfg)
	s := netsim.NewEndpointNode(net, "s", "v", epS)
	v := netsim.NewEndpointNode(net, "v", "s", epV)
	cap := attack.NewReplayNode(net, "tap")
	r2 := netsim.NewRelayNode(net, "r2", relay.Config{})
	for _, pair := range [][2]string{{"s", "tap"}, {"tap", "r2"}, {"r2", "v"}} {
		net.AddDuplexLink(pair[0], pair[1], quickLink())
	}
	net.AutoRoute()
	establish(t, net, s)
	if _, err := s.Send(net.Now(), []byte("captured once")); err != nil {
		t.Fatal(err)
	}
	s.Flush(net.Now())
	net.RunFor(time.Second)
	if len(v.DeliveredPayloads()) != 1 {
		t.Fatalf("setup: message not delivered")
	}
	deliveredBefore := len(v.DeliveredPayloads())
	cap.ReplayAll(net)
	net.RunFor(2 * time.Second)
	if got := len(v.DeliveredPayloads()); got != deliveredBefore {
		t.Fatalf("replay caused %d extra deliveries", got-deliveredBefore)
	}
	_ = r2
}

func TestIncrementalDeploymentUnawareRelays(t *testing.T) {
	// Only r2 verifies; r1 and r3 are plain forwarders. Traffic flows and
	// the single ALPHA-aware relay still performs per-packet filtering.
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 128, RTO: 100 * time.Millisecond}
	net := netsim.New(3)
	epS, _ := core.NewEndpoint(cfg)
	epV, _ := core.NewEndpoint(cfg)
	s := netsim.NewEndpointNode(net, "s", "v", epS)
	v := netsim.NewEndpointNode(net, "v", "s", epV)
	netsim.NewPlainRelayNode(net, "r1")
	r2 := netsim.NewRelayNode(net, "r2", relay.Config{})
	netsim.NewPlainRelayNode(net, "r3")
	for _, pair := range [][2]string{{"s", "r1"}, {"r1", "r2"}, {"r2", "r3"}, {"r3", "v"}} {
		net.AddDuplexLink(pair[0], pair[1], quickLink())
	}
	net.AutoRoute()
	establish(t, net, s)
	if _, err := s.Send(net.Now(), []byte("mixed deployment")); err != nil {
		t.Fatal(err)
	}
	s.Flush(net.Now())
	net.RunFor(2 * time.Second)
	if len(v.DeliveredPayloads()) != 1 {
		t.Fatalf("message lost in mixed deployment")
	}
	if len(r2.Extracted) != 1 {
		t.Fatalf("aware relay did not verify/extract")
	}
}

func TestStrictRelayBlocksUnknownAssociations(t *testing.T) {
	// Under the strict policy, a relay that never saw the handshake drops
	// the flow's traffic.
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 128, RTO: 50 * time.Millisecond}
	net := netsim.New(5)
	epS, _ := core.NewEndpoint(cfg)
	epV, _ := core.NewEndpoint(cfg)
	s := netsim.NewEndpointNode(net, "s", "v", epS)
	netsim.NewEndpointNode(net, "v", "s", epV)
	// Handshake goes over a direct path, then we reroute via the strict
	// relay which missed it.
	net.AddDuplexLink("s", "v", quickLink())
	r := netsim.NewRelayNode(net, "strict", relay.Config{Strict: true})
	net.AddDuplexLink("s", "strict", quickLink())
	net.AddDuplexLink("strict", "v", quickLink())
	establish(t, net, s) // direct link used (shortest)
	// Now force the path through the strict relay.
	net.SetRoute("s", "v", "strict")
	if _, err := s.Send(net.Now(), []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	s.Flush(net.Now())
	net.RunFor(200 * time.Millisecond)
	if got := r.R.Stats().Unknown; got == 0 {
		t.Fatalf("strict relay never saw unknown traffic")
	}
	if got := r.R.Stats().Dropped; got == 0 {
		t.Fatalf("strict relay forwarded unknown traffic")
	}
}

func TestBypassAttackStalenessDetected(t *testing.T) {
	// §3.1.1: colluding attackers divert S1/A1 around a victim relay.
	// The victim's chain walkers go stale: when it later sees S2 traffic
	// it cannot match it to a buffered pre-signature and refuses to
	// extract data (it drops rather than trusting unverifiable payloads).
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 128, RTO: 100 * time.Millisecond}
	net := netsim.New(13)
	epS, _ := core.NewEndpoint(cfg)
	epV, _ := core.NewEndpoint(cfg)
	s := netsim.NewEndpointNode(net, "s", "v", epS)
	v := netsim.NewEndpointNode(net, "v", "s", epV)
	bp := attack.NewBypassPair(net, "acc1", "victim", "acc2")
	victim := netsim.NewRelayNode(net, "victim", relay.Config{})
	netsim.NewPlainRelayNode(net, "acc2")
	for _, pair := range [][2]string{{"s", "acc1"}, {"acc1", "victim"}, {"victim", "acc2"}, {"acc2", "v"}} {
		net.AddDuplexLink(pair[0], pair[1], quickLink())
	}
	net.AddLink("acc1", "acc2", quickLink()) // the bypass tunnel
	net.AutoRoute()
	// Don't divert the handshake, only exchange traffic afterwards.
	bp.Divert = false
	establish(t, net, s)
	bp.Divert = true
	if _, err := s.Send(net.Now(), []byte("diverted exchange")); err != nil {
		t.Fatal(err)
	}
	s.Flush(net.Now())
	net.RunFor(2 * time.Second)
	if bp.Diverted == 0 {
		t.Fatalf("bypass never diverted anything")
	}
	// End-to-end integrity survives (the paper's point: only on-path
	// extraction at the victim suffers)...
	if len(v.DeliveredPayloads()) != 1 {
		t.Fatalf("end-to-end delivery broken by bypass: %d", len(v.DeliveredPayloads()))
	}
	// ...while the bypassed victim relay extracted nothing: the secure
	// data extraction function is what the attack degrades (§3.1.1).
	if len(victim.Extracted) != 0 {
		t.Fatalf("victim relay extracted data despite bypass")
	}
	// Once the attackers stop diverting, the victim recovers on the next
	// exchange: the walker re-authenticates across the gap (§2.1) and
	// on-path extraction resumes. This is why the paper can keep the
	// countermeasure (pinning the relay set) optional.
	bp.Divert = false
	if _, err := s.Send(net.Now(), []byte("post-bypass exchange")); err != nil {
		t.Fatal(err)
	}
	s.Flush(net.Now())
	net.RunFor(2 * time.Second)
	if len(v.DeliveredPayloads()) != 2 {
		t.Fatalf("post-bypass delivery failed: %d", len(v.DeliveredPayloads()))
	}
	if len(victim.Extracted) != 1 {
		t.Fatalf("victim relay did not recover after bypass: extracted %d", len(victim.Extracted))
	}
}

func TestWSNLinkProfile(t *testing.T) {
	// An 802.15.4-ish profile: 250 kbit/s, 100-byte MTU payloads would be
	// exceeded by large packets, so use MMO + small payloads (§4.1.3).
	cfg := core.Config{
		Suite:     suite.MMO(),
		Mode:      packet.ModeC,
		Reliable:  false,
		ChainLen:  128,
		BatchSize: 5,
		RTO:       250 * time.Millisecond,
	}
	link := netsim.LinkConfig{Latency: 4 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 250_000, MTU: 1024}
	net, s, v, _ := mesh(t, cfg, link, relay.Config{})
	establish(t, net, s)
	const total = 15
	for i := 0; i < total; i++ {
		payload := make([]byte, 60) // small sensor readings
		payload[0] = byte(i)
		if _, err := s.Send(net.Now(), payload); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush(net.Now())
	net.RunFor(10 * time.Second)
	if got := len(v.DeliveredPayloads()); got != total {
		t.Fatalf("delivered %d/%d over WSN profile", got, total)
	}
}
