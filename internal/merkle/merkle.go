// Package merkle implements the Merkle trees behind ALPHA-M (§3.3.2 of the
// paper) and the Acknowledgment Merkle Trees (AMTs) behind its reliable mode
// (§3.3.3, Fig. 7).
//
// A message tree covers a batch of n messages: leaf j is the hash of
// pre-image m_j, internal nodes hash the concatenation of their children,
// and the root additionally absorbs the signer's next undisclosed hash chain
// element,
//
//	r = H(h^{Ss}_{i-1} | b0 | b1),
//
// so the root doubles as a pre-signature: only the chain owner could have
// produced it, and it cannot be verified until the element is disclosed.
// Each payload packet then carries its message together with the set of
// complementary branches {Bc} — the sibling of every node on the path from
// the leaf to the root — making every packet independently verifiable with
// ⌈log2 n⌉ fixed-length hash operations and O(1) buffered state on relays.
//
// All hashing is domain-separated: leaves, internal nodes and roots use
// distinct prefixes so that no tree node can be replayed in another role.
package merkle

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"alpha/internal/suite"
)

// Domain-separation prefixes for the three node roles.
var (
	tagLeaf = []byte("ALPHA-MT-leaf")
	tagNode = []byte("ALPHA-MT-node")
	tagRoot = []byte("ALPHA-MT-root")
	tagPad  = []byte("ALPHA-MT-pad")
)

// MaxLeaves bounds tree size; 2^20 leaves is far beyond the paper's largest
// evaluated configuration (1024, Table 6) and keeps proof allocation sane.
const MaxLeaves = 1 << 20

// ErrLeafRange is returned when a leaf index is outside the tree.
var ErrLeafRange = errors.New("merkle: leaf index out of range")

// LeafDigest computes the leaf digest of a message pre-image.
func LeafDigest(s suite.Suite, m []byte) []byte {
	return s.Hash(tagLeaf, m)
}

// Depth returns the tree depth (proof length in sibling hashes) for n
// leaves: 0 for a single leaf, ⌈log2 n⌉ otherwise.
func Depth(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Tree is a keyed Merkle tree over a batch of leaf digests. Trees are
// immutable after construction.
type Tree struct {
	s      suite.Suite
	key    []byte
	depth  int
	n      int        // real (unpadded) leaf count
	levels [][][]byte // levels[0] = padded leaves ... levels[depth] = [combined top]
	root   []byte
}

// New builds a keyed tree over the given leaf digests. key is the signer's
// next undisclosed chain element (or the verifier's for AMTs); it is copied.
// The leaf count is padded to the next power of two with a fixed pad digest.
func New(s suite.Suite, key []byte, leaves [][]byte) (*Tree, error) {
	n := len(leaves)
	if n == 0 {
		return nil, errors.New("merkle: no leaves")
	}
	if n > MaxLeaves {
		return nil, fmt.Errorf("merkle: %d leaves exceeds maximum %d", n, MaxLeaves)
	}
	for i, l := range leaves {
		if len(l) != s.Size() {
			return nil, fmt.Errorf("merkle: leaf %d has size %d, want %d", i, len(l), s.Size())
		}
	}
	depth := Depth(n)
	padded := 1 << depth
	level := make([][]byte, padded)
	copy(level, leaves)
	if padded > n {
		pad := s.Hash(tagPad)
		for i := n; i < padded; i++ {
			level[i] = pad
		}
	}
	t := &Tree{s: s, key: append([]byte(nil), key...), depth: depth, n: n}
	t.levels = make([][][]byte, depth+1)
	t.levels[0] = level
	// All internal nodes and the root share one slab: building an n-leaf
	// tree costs O(log n) allocations (level headers) instead of one per
	// node. Proof slices alias the slab, which lives as long as the tree.
	size := s.Size()
	slab := make([]byte, 0, padded*size)
	var parts [4][]byte
	for d := 1; d <= depth; d++ {
		prev := t.levels[d-1]
		cur := make([][]byte, len(prev)/2)
		for i := range cur {
			parts[0], parts[1], parts[2] = tagNode, prev[2*i], prev[2*i+1]
			off := len(slab)
			slab = s.HashInto(slab, parts[:3]...)
			cur[i] = slab[off : off+size : off+size]
		}
		t.levels[d] = cur
	}
	top := t.levels[depth]
	off := len(slab)
	if depth == 0 {
		parts[0], parts[1], parts[2] = tagRoot, t.key, top[0]
		slab = s.HashInto(slab, parts[:3]...)
	} else {
		// The root absorbs the two topmost children directly, matching
		// the paper's r = H(h|b0|b1): levels[depth] has one node which
		// already combines b0 and b1, so recompute from depth-1.
		parts[0], parts[1], parts[2], parts[3] = tagRoot, t.key, t.levels[depth-1][0], t.levels[depth-1][1]
		slab = s.HashInto(slab, parts[:4]...)
	}
	t.root = slab[off : off+size : off+size]
	return t, nil
}

// Build hashes the message pre-images and constructs their keyed tree.
func Build(s suite.Suite, key []byte, msgs [][]byte) (*Tree, error) {
	size := s.Size()
	leaves := make([][]byte, len(msgs))
	slab := make([]byte, 0, len(msgs)*size)
	var parts [2][]byte
	for i, m := range msgs {
		parts[0], parts[1] = tagLeaf, m
		off := len(slab)
		slab = s.HashInto(slab, parts[:]...)
		leaves[i] = slab[off : off+size : off+size]
	}
	return New(s, key, leaves)
}

// Root returns the keyed root digest (the ALPHA-M pre-signature).
func (t *Tree) Root() []byte { return t.root }

// Leaves returns the real (unpadded) leaf count.
func (t *Tree) Leaves() int { return t.n }

// ProofDepth returns the number of sibling digests in each proof.
func (t *Tree) ProofDepth() int { return t.depth }

// Proof returns the complementary branch set {Bc} for leaf j, ordered from
// the leaf level upward. The returned slices alias tree storage and must not
// be mutated.
func (t *Tree) Proof(j int) ([][]byte, error) {
	if j < 0 || j >= t.n {
		return nil, ErrLeafRange
	}
	proof := make([][]byte, t.depth)
	idx := j
	for d := 0; d < t.depth; d++ {
		proof[d] = t.levels[d][idx^1]
		idx >>= 1
	}
	return proof, nil
}

// Verify checks a message against a keyed root: it recomputes the path from
// m's leaf digest through the complementary branches to the root, unlocking
// the root with the disclosed chain element key. n is the batch's real leaf
// count (needed to derive the padded depth). Verification is allocation-free:
// intermediate digests live in pooled scratch.
//alpha:hotpath
func Verify(s suite.Suite, key, root []byte, m []byte, j, n int, proof [][]byte) bool {
	sc := suite.GetScratch()
	sc.Parts[0], sc.Parts[1] = tagLeaf, m
	sc.Buf = s.HashInto(sc.Buf, sc.Parts[:2]...)
	ok := VerifyLeaf(s, key, root, sc.Buf, j, n, proof)
	suite.PutScratch(sc)
	return ok
}

// VerifyLeaf is Verify for a precomputed leaf digest.
//
//alpha:hotpath
func VerifyLeaf(s suite.Suite, key, root []byte, leaf []byte, j, n int, proof [][]byte) bool {
	if j < 0 || j >= n || n < 1 || n > MaxLeaves {
		return false
	}
	depth := Depth(n)
	if len(proof) != depth {
		return false
	}
	sc := suite.GetScratch()
	defer suite.PutScratch(sc)
	if depth == 0 {
		sc.Parts[0], sc.Parts[1], sc.Parts[2] = tagRoot, key, leaf
		sc.Buf = s.HashInto(sc.Buf, sc.Parts[:3]...)
		return suite.Equal(root, sc.Buf)
	}
	cur := leaf
	idx := j
	// Combine up to (but not including) the final level: the last sibling
	// pair feeds the keyed root computation directly. HashInto consumes
	// inputs before appending, so cur may keep pointing at sc.Buf.
	for d := 0; d < depth-1; d++ {
		sc.Parts[0] = tagNode
		if idx&1 == 0 {
			sc.Parts[1], sc.Parts[2] = cur, proof[d]
		} else {
			sc.Parts[1], sc.Parts[2] = proof[d], cur
		}
		sc.Buf = s.HashInto(sc.Buf[:0], sc.Parts[:3]...)
		cur = sc.Buf
		idx >>= 1
	}
	sc.Parts[0], sc.Parts[1] = tagRoot, key
	if idx&1 == 0 {
		sc.Parts[2], sc.Parts[3] = cur, proof[depth-1]
	} else {
		sc.Parts[2], sc.Parts[3] = proof[depth-1], cur
	}
	sc.Buf = s.HashInto(sc.Buf[:0], sc.Parts[:4]...)
	return suite.Equal(root, sc.Buf)
}

// AMT domain-separation prefixes (Fig. 7).
var (
	tagAckLeaf = []byte("ALPHA-AMT-leaf")
	tagAckRoot = []byte("ALPHA-AMT-root")
)

// AckTree is an Acknowledgment Merkle Tree: 2n leaves, the left half
// pre-acknowledging and the right half pre-negative-acknowledging each of n
// messages. Leaf i contains H(x_i | s_i) with x_i the packet index and s_i a
// per-leaf secret; the root absorbs the verifier's next undisclosed
// acknowledgment-chain element:
//
//	root = H(ackRoot | nackRoot | h^{Va}_{i-1}).
//
// The verifier builds an AckTree after receiving an S1, sends the root in
// its A1, and later opens exactly one leaf per message in A2 packets:
// disclosing the ack leaf's secret confirms receipt, the nack leaf's secret
// denies it, and no third party can compute either before disclosure.
type AckTree struct {
	s       suite.Suite
	key     []byte
	n       int
	acks    *Tree
	nacks   *Tree
	secrets [][]byte // 2n secrets: [0,n) ack, [n,2n) nack
	root    []byte
}

// ackLeaf computes the digest of AMT leaf x with secret s.
func ackLeaf(st suite.Suite, x uint32, secret []byte) []byte {
	var xb [4]byte
	binary.BigEndian.PutUint32(xb[:], x)
	return st.Hash(tagAckLeaf, xb[:], secret)
}

// NewAckTree builds an AMT for n messages keyed with the verifier's next
// undisclosed acknowledgment-chain element, drawing fresh random secrets.
func NewAckTree(s suite.Suite, key []byte, n int) (*AckTree, error) {
	if n < 1 || n > MaxLeaves/2 {
		return nil, fmt.Errorf("merkle: invalid AMT message count %d", n)
	}
	// One slab and one rand.Read for all 2n secrets.
	size := s.Size()
	slab := make([]byte, 2*n*size)
	if _, err := rand.Read(slab); err != nil {
		return nil, fmt.Errorf("merkle: generating AMT secret: %w", err)
	}
	secrets := make([][]byte, 2*n)
	for i := range secrets {
		secrets[i] = slab[i*size : (i+1)*size : (i+1)*size]
	}
	return newAckTree(s, key, n, secrets)
}

// newAckTree builds an AMT from caller-supplied secrets (used by tests for
// determinism).
func newAckTree(s suite.Suite, key []byte, n int, secrets [][]byte) (*AckTree, error) {
	size := s.Size()
	ackLeaves := make([][]byte, n)
	nackLeaves := make([][]byte, n)
	slab := make([]byte, 0, 2*n*size)
	sc := suite.GetScratch()
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(sc.Tmp[:4], uint32(i))
		sc.Parts[0], sc.Parts[1], sc.Parts[2] = tagAckLeaf, sc.Tmp[:4], secrets[i]
		off := len(slab)
		slab = s.HashInto(slab, sc.Parts[:3]...)
		ackLeaves[i] = slab[off : off+size : off+size]
		sc.Parts[2] = secrets[n+i]
		off = len(slab)
		slab = s.HashInto(slab, sc.Parts[:3]...)
		nackLeaves[i] = slab[off : off+size : off+size]
	}
	suite.PutScratch(sc)
	// Subtrees are unkeyed (nil key is absorbed as empty); only the
	// combined root is keyed, matching Fig. 7.
	acks, err := New(s, nil, ackLeaves)
	if err != nil {
		return nil, err
	}
	nacks, err := New(s, nil, nackLeaves)
	if err != nil {
		return nil, err
	}
	t := &AckTree{
		s: s, key: append([]byte(nil), key...), n: n,
		acks: acks, nacks: nacks, secrets: secrets,
	}
	t.root = s.Hash(tagAckRoot, acks.Root(), nacks.Root(), t.key)
	return t, nil
}

// Root returns the keyed AMT root carried in the A1 packet.
func (t *AckTree) Root() []byte { return t.root }

// Messages returns n, the number of messages the AMT can acknowledge.
func (t *AckTree) Messages() int { return t.n }

// Opening is a disclosed AMT leaf: everything a signer or relay needs to
// verify one (n)ack against a buffered AMT root.
type Opening struct {
	Index  uint32   // packet index x_i
	Ack    bool     // true: positive acknowledgment, false: negative
	Secret []byte   // the leaf secret s_i
	Proof  [][]byte // complementary branches inside the ack or nack subtree
	Other  []byte   // root of the opposite subtree
}

// Open discloses the (n)ack leaf for message index j.
func (t *AckTree) Open(j int, ack bool) (*Opening, error) {
	if j < 0 || j >= t.n {
		return nil, ErrLeafRange
	}
	sub, other, off := t.acks, t.nacks, 0
	if !ack {
		sub, other, off = t.nacks, t.acks, t.n
	}
	proof, err := sub.Proof(j)
	if err != nil {
		return nil, err
	}
	return &Opening{
		Index:  uint32(j),
		Ack:    ack,
		Secret: t.secrets[off+j],
		Proof:  proof,
		Other:  other.Root(),
	}, nil
}

// VerifyOpening checks a disclosed (n)ack against a buffered AMT root, using
// the by-now-disclosed acknowledgment-chain element key. n is the message
// count of the batch. Like Verify, it does not allocate.
//
//alpha:hotpath
func VerifyOpening(s suite.Suite, key, root []byte, n int, o *Opening) bool {
	if o == nil || int(o.Index) >= n || n < 1 {
		return false
	}
	sc := suite.GetScratch()
	defer suite.PutScratch(sc)
	binary.BigEndian.PutUint32(sc.Tmp[:4], o.Index)
	sc.Parts[0], sc.Parts[1], sc.Parts[2] = tagAckLeaf, sc.Tmp[:4], o.Secret
	sc.Buf = s.HashInto(sc.Buf, sc.Parts[:3]...)
	// Recompute the subtree root from the opening. The subtrees are
	// unkeyed, so we recompute against a synthetic root, then absorb it
	// into the combined keyed root; all chaining values stay in sc.Buf.
	subRoot := subtreeRoot(s, sc, sc.Buf, int(o.Index), n, o.Proof)
	if subRoot == nil {
		return false
	}
	sc.Parts[0], sc.Parts[3] = tagAckRoot, key
	if o.Ack {
		sc.Parts[1], sc.Parts[2] = subRoot, o.Other
	} else {
		sc.Parts[1], sc.Parts[2] = o.Other, subRoot
	}
	sc.Buf = s.HashInto(sc.Buf[:0], sc.Parts[:4]...)
	return suite.Equal(root, sc.Buf)
}

// subtreeRoot recomputes an unkeyed subtree root from a leaf and its proof,
// returning nil on malformed input. Unkeyed trees still finish with the
// keyed-root step (key = nil), mirroring New with a nil key. The result
// lives in sc.Buf; leaf may already point there.
func subtreeRoot(s suite.Suite, sc *suite.Scratch, leaf []byte, j, n int, proof [][]byte) []byte {
	depth := Depth(n)
	if j < 0 || j >= n || len(proof) != depth {
		return nil
	}
	if depth == 0 {
		sc.Parts[0], sc.Parts[1], sc.Parts[2] = tagRoot, nil, leaf
		sc.Buf = s.HashInto(sc.Buf[:0], sc.Parts[:3]...)
		return sc.Buf
	}
	cur := leaf
	idx := j
	for d := 0; d < depth-1; d++ {
		sc.Parts[0] = tagNode
		if idx&1 == 0 {
			sc.Parts[1], sc.Parts[2] = cur, proof[d]
		} else {
			sc.Parts[1], sc.Parts[2] = proof[d], cur
		}
		sc.Buf = s.HashInto(sc.Buf[:0], sc.Parts[:3]...)
		cur = sc.Buf
		idx >>= 1
	}
	sc.Parts[0], sc.Parts[1] = tagRoot, nil
	if idx&1 == 0 {
		sc.Parts[2], sc.Parts[3] = cur, proof[depth-1]
	} else {
		sc.Parts[2], sc.Parts[3] = proof[depth-1], cur
	}
	sc.Buf = s.HashInto(sc.Buf[:0], sc.Parts[:4]...)
	return sc.Buf
}
