package merkle

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"alpha/internal/suite"
)

func msgsFor(n int) [][]byte {
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("payload chunk %04d", i))
	}
	return msgs
}

func TestDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 1024: 10}
	for n, want := range cases {
		if got := Depth(n); got != want {
			t.Errorf("Depth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBuildAndVerifyAllLeaves(t *testing.T) {
	s := suite.SHA1()
	key := s.Hash([]byte("chain element"))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			msgs := msgsFor(n)
			tree, err := Build(s, key, msgs)
			if err != nil {
				t.Fatal(err)
			}
			if tree.Leaves() != n {
				t.Fatalf("Leaves() = %d", tree.Leaves())
			}
			if tree.ProofDepth() != Depth(n) {
				t.Fatalf("ProofDepth %d, want %d", tree.ProofDepth(), Depth(n))
			}
			for j := 0; j < n; j++ {
				proof, err := tree.Proof(j)
				if err != nil {
					t.Fatalf("Proof(%d): %v", j, err)
				}
				if len(proof) != Depth(n) {
					t.Fatalf("proof length %d, want %d", len(proof), Depth(n))
				}
				if !Verify(s, key, tree.Root(), msgs[j], j, n, proof) {
					t.Fatalf("genuine leaf %d rejected", j)
				}
			}
		})
	}
}

func TestVerifyRejectsMutations(t *testing.T) {
	s := suite.SHA1()
	key := s.Hash([]byte("k"))
	n := 8
	msgs := msgsFor(n)
	tree, err := Build(s, key, msgs)
	if err != nil {
		t.Fatal(err)
	}
	proof, _ := tree.Proof(3)
	root := tree.Root()

	if Verify(s, key, root, []byte("forged message"), 3, n, proof) {
		t.Fatalf("forged message accepted")
	}
	if Verify(s, key, root, msgs[3], 4, n, proof) {
		t.Fatalf("wrong index accepted")
	}
	wrongKey := s.Hash([]byte("other element"))
	if Verify(s, wrongKey, root, msgs[3], 3, n, proof) {
		t.Fatalf("wrong key accepted — root is not actually keyed")
	}
	badRoot := append([]byte(nil), root...)
	badRoot[0] ^= 1
	if Verify(s, key, badRoot, msgs[3], 3, n, proof) {
		t.Fatalf("wrong root accepted")
	}
	badProof := make([][]byte, len(proof))
	copy(badProof, proof)
	badProof[1] = s.Hash([]byte("junk"))
	if Verify(s, key, root, msgs[3], 3, n, badProof) {
		t.Fatalf("corrupted proof accepted")
	}
	if Verify(s, key, root, msgs[3], 3, n, proof[:len(proof)-1]) {
		t.Fatalf("truncated proof accepted")
	}
	if Verify(s, key, root, msgs[3], 3, n+1, proof) {
		t.Fatalf("wrong leaf count accepted")
	}
}

func TestCrossLeafProofRejected(t *testing.T) {
	// A proof for leaf i must not validate leaf j's message.
	s := suite.SHA1()
	key := s.Hash([]byte("k"))
	msgs := msgsFor(8)
	tree, _ := Build(s, key, msgs)
	p2, _ := tree.Proof(2)
	if Verify(s, key, tree.Root(), msgs[5], 2, 8, p2) {
		t.Fatalf("message 5 verified with leaf 2's slot")
	}
	if Verify(s, key, tree.Root(), msgs[2], 5, 8, p2) {
		t.Fatalf("leaf 2 proof verified at position 5")
	}
}

func TestTreeInputValidation(t *testing.T) {
	s := suite.SHA1()
	if _, err := New(s, nil, nil); err == nil {
		t.Fatalf("empty tree accepted")
	}
	if _, err := New(s, nil, [][]byte{[]byte("short")}); err == nil {
		t.Fatalf("wrong-size leaf accepted")
	}
	tree, err := Build(s, nil, msgsFor(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Proof(4); !errors.Is(err, ErrLeafRange) {
		t.Fatalf("out-of-range proof: %v", err)
	}
	if _, err := tree.Proof(-1); !errors.Is(err, ErrLeafRange) {
		t.Fatalf("negative proof index: %v", err)
	}
}

func TestRootMatchesPaperStructure(t *testing.T) {
	// For two leaves the root must be H(tagRoot|key|b0|b1) with b0, b1
	// the leaf digests — the r = H(h|b0|b1) shape of §3.3.2.
	s := suite.SHA1()
	key := s.Hash([]byte("h_i-1"))
	m0, m1 := []byte("m0"), []byte("m1")
	tree, err := Build(s, key, [][]byte{m0, m1})
	if err != nil {
		t.Fatal(err)
	}
	want := s.Hash(tagRoot, key, LeafDigest(s, m0), LeafDigest(s, m1))
	if !bytes.Equal(tree.Root(), want) {
		t.Fatalf("root structure mismatch")
	}
}

func TestDeterministicAcrossConstructions(t *testing.T) {
	s := suite.SHA256()
	key := s.Hash([]byte("k"))
	t1, _ := Build(s, key, msgsFor(10))
	t2, _ := Build(s, key, msgsFor(10))
	if !bytes.Equal(t1.Root(), t2.Root()) {
		t.Fatalf("same inputs, different roots")
	}
	// Changing a single message changes the root.
	msgs := msgsFor(10)
	msgs[7] = []byte("different")
	t3, _ := Build(s, key, msgs)
	if bytes.Equal(t1.Root(), t3.Root()) {
		t.Fatalf("message change did not change root")
	}
}

func TestQuickProofRoundTrip(t *testing.T) {
	s := suite.SHA1()
	f := func(seed []byte, nSel, jSel uint8) bool {
		n := 1 + int(nSel)%20
		j := int(jSel) % n
		key := s.Hash([]byte{byte(len(seed))}, seed)
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = append([]byte{byte(i)}, seed...)
		}
		tree, err := Build(s, key, msgs)
		if err != nil {
			return false
		}
		proof, err := tree.Proof(j)
		if err != nil {
			return false
		}
		if !Verify(s, key, tree.Root(), msgs[j], j, n, proof) {
			return false
		}
		// And mutating the message must fail.
		mut := append([]byte("x"), msgs[j]...)
		return !Verify(s, key, tree.Root(), mut, j, n, proof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAckTreeOpenVerify(t *testing.T) {
	s := suite.SHA1()
	key := s.Hash([]byte("hVa_i-1"))
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			amt, err := NewAckTree(s, key, n)
			if err != nil {
				t.Fatal(err)
			}
			if amt.Messages() != n {
				t.Fatalf("Messages() = %d", amt.Messages())
			}
			for j := 0; j < n; j++ {
				for _, ack := range []bool{true, false} {
					o, err := amt.Open(j, ack)
					if err != nil {
						t.Fatalf("Open(%d,%v): %v", j, ack, err)
					}
					if !VerifyOpening(s, key, amt.Root(), n, o) {
						t.Fatalf("genuine opening (%d,%v) rejected", j, ack)
					}
				}
			}
		})
	}
}

func TestAckTreeAckNackDistinct(t *testing.T) {
	// An ack opening must not verify as a nack and vice versa — the
	// §3.2.2/§3.3.3 requirement that the two are distinguishable and
	// non-forgeable from one another.
	s := suite.SHA1()
	key := s.Hash([]byte("k"))
	amt, err := NewAckTree(s, key, 4)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := amt.Open(2, true)
	flipped := *o
	flipped.Ack = false
	if VerifyOpening(s, key, amt.Root(), 4, &flipped) {
		t.Fatalf("ack opening verified as nack")
	}
	// Using the ack secret in the nack slot must fail too.
	on, _ := amt.Open(2, false)
	cross := *on
	cross.Secret = o.Secret
	if VerifyOpening(s, key, amt.Root(), 4, &cross) {
		t.Fatalf("cross-secret opening verified")
	}
}

func TestAckTreeRejectsForgery(t *testing.T) {
	s := suite.SHA1()
	key := s.Hash([]byte("k"))
	amt, _ := NewAckTree(s, key, 8)
	o, _ := amt.Open(3, true)

	bad := *o
	bad.Secret = s.Hash([]byte("guessed secret"))
	if VerifyOpening(s, key, amt.Root(), 8, &bad) {
		t.Fatalf("guessed secret accepted")
	}
	wrongIdx := *o
	wrongIdx.Index = 4
	if VerifyOpening(s, key, amt.Root(), 8, &wrongIdx) {
		t.Fatalf("shifted index accepted")
	}
	wrongKey := s.Hash([]byte("other chain element"))
	if VerifyOpening(s, wrongKey, amt.Root(), 8, o) {
		t.Fatalf("wrong chain element accepted — AMT root not keyed")
	}
	if VerifyOpening(s, key, amt.Root(), 8, nil) {
		t.Fatalf("nil opening accepted")
	}
	if VerifyOpening(s, key, amt.Root(), 2, o) {
		t.Fatalf("out-of-range index accepted")
	}
}

func TestAckTreeDistinctSecrets(t *testing.T) {
	s := suite.SHA1()
	amt, _ := NewAckTree(s, s.Hash([]byte("k")), 16)
	seen := map[string]bool{}
	for j := 0; j < 16; j++ {
		for _, ack := range []bool{true, false} {
			o, _ := amt.Open(j, ack)
			if seen[string(o.Secret)] {
				t.Fatalf("duplicate AMT secret at (%d,%v)", j, ack)
			}
			seen[string(o.Secret)] = true
		}
	}
}

func TestAckTreeInputValidation(t *testing.T) {
	s := suite.SHA1()
	if _, err := NewAckTree(s, nil, 0); err == nil {
		t.Fatalf("n=0 accepted")
	}
	amt, _ := NewAckTree(s, s.Hash([]byte("k")), 4)
	if _, err := amt.Open(4, true); !errors.Is(err, ErrLeafRange) {
		t.Fatalf("out-of-range open: %v", err)
	}
}

func TestQuickAMTRoundTrip(t *testing.T) {
	s := suite.MMO()
	f := func(keySeed []byte, nSel, jSel uint8, ack bool) bool {
		n := 1 + int(nSel)%12
		j := int(jSel) % n
		key := s.Hash([]byte("key"), keySeed)
		amt, err := NewAckTree(s, key, n)
		if err != nil {
			return false
		}
		o, err := amt.Open(j, ack)
		if err != nil {
			return false
		}
		if !VerifyOpening(s, key, amt.Root(), n, o) {
			return false
		}
		mut := *o
		mut.Ack = !mut.Ack
		return !VerifyOpening(s, key, amt.Root(), n, &mut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild64(b *testing.B)   { benchBuild(b, 64) }
func BenchmarkBuild1024(b *testing.B) { benchBuild(b, 1024) }

func benchBuild(b *testing.B, n int) {
	s := suite.SHA1()
	key := s.Hash([]byte("k"))
	msgs := msgsFor(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(s, key, msgs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify1024(b *testing.B) {
	s := suite.SHA1()
	key := s.Hash([]byte("k"))
	msgs := msgsFor(1024)
	tree, _ := Build(s, key, msgs)
	proof, _ := tree.Proof(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(s, key, tree.Root(), msgs[512], 512, 1024, proof) {
			b.Fatal("verify failed")
		}
	}
}
