package merkle

import (
	"testing"

	"alpha/internal/suite"
)

// FuzzMerkleVerify is a structured property fuzzer for the ALPHA-M proof
// verifiers. From fuzzer-chosen shape parameters it builds a real tree and
// checks three invariants: a genuine proof always verifies, any single-bit
// mutation of the proof, root, message or index is rejected, and Verify /
// VerifyOpening never panic on arbitrary proof material (they parse input
// from unauthenticated packets).
func FuzzMerkleVerify(f *testing.F) {
	f.Add([]byte("seed"), uint8(4), uint8(1), uint16(0), []byte("junk"))
	f.Add([]byte(""), uint8(1), uint8(0), uint16(7), []byte(""))
	f.Add([]byte("batch"), uint8(13), uint8(12), uint16(130), []byte("\x00\x01"))
	f.Fuzz(func(t *testing.T, data []byte, nRaw, jRaw uint8, flip uint16, junk []byte) {
		s := suite.SHA1()
		h := s.Size()
		n := int(nRaw)%16 + 1
		j := int(jRaw) % n
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = append(append([]byte(nil), data...), byte(i))
		}
		key := append(append([]byte(nil), data...), 0xA5)
		tree, err := Build(s, key, msgs)
		if err != nil {
			t.Fatalf("Build(n=%d): %v", n, err)
		}
		proof, err := tree.Proof(j)
		if err != nil {
			t.Fatalf("Proof(%d): %v", j, err)
		}
		root := tree.Root()
		if !Verify(s, key, root, msgs[j], j, n, proof) {
			t.Fatalf("genuine proof rejected (n=%d j=%d)", n, j)
		}

		// Single-bit mutations must all be rejected: flipping any bit of
		// the proof, the root, or the message changes the recomputed
		// root (else the hash would have a trivial second preimage).
		if len(proof) > 0 {
			mp := make([][]byte, len(proof))
			for i := range proof {
				mp[i] = append([]byte(nil), proof[i]...)
			}
			el := int(flip) % len(mp)
			mp[el][int(flip)%h] ^= 1 << (flip % 8)
			if Verify(s, key, root, msgs[j], j, n, mp) {
				t.Fatal("bit-flipped proof accepted")
			}
		}
		mroot := append([]byte(nil), root...)
		mroot[int(flip)%len(mroot)] ^= 0x80
		if Verify(s, key, mroot, msgs[j], j, n, proof) {
			t.Fatal("bit-flipped root accepted")
		}
		mmsg := append([]byte(nil), msgs[j]...)
		mmsg[int(flip)%len(mmsg)] ^= 1
		if Verify(s, key, root, mmsg, j, n, proof) {
			t.Fatal("bit-flipped message accepted")
		}
		if n > 1 && Verify(s, key, root, msgs[j], (j+1)%n, n, proof) {
			t.Fatal("proof accepted at the wrong leaf index")
		}

		// Hostile-input safety: arbitrary proof shapes (wrong counts,
		// wrong digest sizes, nils) must return false, never panic.
		hostile := [][]byte{nil, junk, data}
		Verify(s, key, root, msgs[j], j, n, hostile)
		Verify(s, key, root, msgs[j], j, n, nil)
		Verify(s, key, root, msgs[j], -1, n, proof)
		Verify(s, key, root, msgs[j], j, MaxLeaves+1, proof)

		// The same properties for the acknowledgment Merkle tree.
		at, err := NewAckTree(s, key, n)
		if err != nil {
			t.Fatalf("NewAckTree(n=%d): %v", n, err)
		}
		o, err := at.Open(j, flip%2 == 0)
		if err != nil {
			t.Fatalf("Open(%d): %v", j, err)
		}
		if !VerifyOpening(s, key, at.Root(), n, o) {
			t.Fatalf("genuine opening rejected (n=%d j=%d)", n, j)
		}
		ms := append([]byte(nil), o.Secret...)
		ms[int(flip)%len(ms)] ^= 1
		mo := *o
		mo.Secret = ms
		if VerifyOpening(s, key, at.Root(), n, &mo) {
			t.Fatal("bit-flipped opening secret accepted")
		}
		no := *o
		no.Ack = !no.Ack
		if VerifyOpening(s, key, at.Root(), n, &no) {
			t.Fatal("opening accepted with inverted ack polarity")
		}
		jo := *o
		jo.Proof = hostile
		VerifyOpening(s, key, at.Root(), n, &jo)
		VerifyOpening(s, key, at.Root(), n, nil)
	})
}
