package merkle_test

import (
	"fmt"

	"alpha/internal/merkle"
	"alpha/internal/suite"
)

// Example builds an ALPHA-M message tree: the keyed root is the
// pre-signature carried in the S1, and each message travels with its
// complementary branch set so it can be verified independently.
func Example() {
	s := suite.SHA1()
	key := s.Hash([]byte("undisclosed chain element"))
	msgs := [][]byte{
		[]byte("packet 0"), []byte("packet 1"),
		[]byte("packet 2"), []byte("packet 3"),
	}
	tree, err := merkle.Build(s, key, msgs)
	if err != nil {
		panic(err)
	}
	proof, _ := tree.Proof(2)
	fmt.Println("proof hashes:", len(proof))
	fmt.Println("genuine verifies:", merkle.Verify(s, key, tree.Root(), msgs[2], 2, 4, proof))
	fmt.Println("forged verifies: ", merkle.Verify(s, key, tree.Root(), []byte("forged"), 2, 4, proof))
	// Output:
	// proof hashes: 2
	// genuine verifies: true
	// forged verifies:  false
}

// ExampleAckTree shows Fig. 7's acknowledgment tree: the verifier commits
// to an ack AND a nack for every message, then opens exactly one.
func ExampleAckTree() {
	s := suite.SHA1()
	key := s.Hash([]byte("acknowledgment chain element"))
	amt, err := merkle.NewAckTree(s, key, 4)
	if err != nil {
		panic(err)
	}
	// Message 1 arrived intact: open its positive acknowledgment.
	opening, _ := amt.Open(1, true)
	fmt.Println("ack verifies:", merkle.VerifyOpening(s, key, amt.Root(), 4, opening))
	// The same secret cannot be passed off as a nack.
	flipped := *opening
	flipped.Ack = false
	fmt.Println("flipped verifies:", merkle.VerifyOpening(s, key, amt.Root(), 4, &flipped))
	// Output:
	// ack verifies: true
	// flipped verifies: false
}
