package packet

import (
	"errors"
	"strings"
	"testing"

	"alpha/internal/suite"
)

// negS1 returns a valid encoded ModeC S1 under SHA-1 to corrupt. Body
// layout behind the 19-byte header: mode(1) authIdx(4) auth(20) keyIdx(4)
// macCount(2) macs(20 each).
func negS1(t *testing.T) []byte {
	t.Helper()
	s := suite.SHA1()
	d := func(seed byte) []byte {
		b := make([]byte, s.Size())
		for i := range b {
			b[i] = seed + byte(i)
		}
		return b
	}
	raw, err := Encode(
		Header{Type: TypeS1, Suite: s.ID(), Flags: FlagReliable, Assoc: 9, Seq: 3},
		&S1{Mode: ModeC, AuthIdx: 1, Auth: d(1), KeyIdx: 2, MACs: [][]byte{d(2), d(3)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// negA1 returns a valid encoded reliable-mode A1 (pre-ack pair) to corrupt.
// Body layout behind the header: flags(1) authIdx(4) auth(20) keyIdx(4)
// preAck(20) preNack(20).
func negA1(t *testing.T) []byte {
	t.Helper()
	s := suite.SHA1()
	d := func(seed byte) []byte {
		b := make([]byte, s.Size())
		for i := range b {
			b[i] = seed + byte(i)
		}
		return b
	}
	raw, err := Encode(
		Header{Type: TypeA1, Suite: s.ID(), Flags: FlagReliable, Assoc: 9, Seq: 3},
		&A1{AuthIdx: 1, Auth: d(1), KeyIdx: 2, PreAck: d(2), PreNack: d(3)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDecodeRejectsMalformed feeds the parser hostile inputs — truncated
// headers, bad magic, wrong digest sizes, out-of-range counts, flag
// combinations the modes forbid — and checks each is rejected with a typed
// *ParseError carrying the right sentinel, packet type and offset.
func TestDecodeRejectsMalformed(t *testing.T) {
	mut := func(base []byte, edit func([]byte)) []byte {
		b := append([]byte(nil), base...)
		edit(b)
		return b
	}
	s1 := negS1(t)
	a1 := negA1(t)
	cases := []struct {
		name string
		in   []byte
		// wantIs, when non-nil, must match via errors.Is.
		wantIs error
		// wantSub, when non-empty, must appear in the error text.
		wantSub string
		// wantType is the expected ParseError.PacketType.
		wantType Type
	}{
		{"empty", nil, ErrTruncated, "", TypeInvalid},
		{"one magic byte", []byte{0xA1}, ErrTruncated, "", TypeInvalid},
		{"bad magic", mut(s1, func(b []byte) { b[0] = 0xDE }), ErrBadMagic, "", TypeInvalid},
		{"bad version", mut(s1, func(b []byte) { b[2] = 99 }), ErrBadVersion, "", TypeInvalid},
		{"unknown type", mut(s1, func(b []byte) { b[3] = 0x7F }), ErrBadType, "", TypeInvalid},
		{"unknown suite", mut(s1, func(b []byte) { b[4] = 0xEE }), nil, "suite", TypeInvalid},
		{"header only", s1[:HeaderSize], ErrTruncated, "", TypeS1},
		{"body truncated", s1[:len(s1)-1], ErrTruncated, "", TypeS1},
		{"trailing byte", append(append([]byte(nil), s1...), 0), ErrTrailing, "", TypeS1},
		{"oversize", make([]byte, MaxPacketSize+1), ErrOversize, "", TypeInvalid},
		{"S1 unknown mode", mut(s1, func(b []byte) { b[HeaderSize] = 9 }), nil, "unknown mode", TypeS1},
		// Digest size mismatch: claim SHA-256 over a body built with
		// 20-byte SHA-1 digests, so a declared field overruns the body.
		{"suite digest size mismatch", mut(s1, func(b []byte) { b[4] = uint8(suite.SHA256().ID()) }), ErrTruncated, "", TypeS1},
		// MAC count 0 violates the §3.3 batch invariant (1..MaxMACs).
		{"S1 zero MAC count", mut(s1, func(b []byte) { b[HeaderSize+29] = 0; b[HeaderSize+30] = 0 }), nil, "MAC count 0", TypeS1},
		// A1 may carry a pre-(n)ack pair or an AMT root, never both.
		{"A1 conflicting flags", mut(a1, func(b []byte) { b[HeaderSize] = 0x03 }), nil, "A1 flags", TypeA1},
		{"A1 undefined flag bit", mut(a1, func(b []byte) { b[HeaderSize] = 0x80 }), nil, "A1 flags", TypeA1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(tc.in)
			if err == nil {
				t.Fatal("malformed packet decoded without error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *ParseError: %v", err, err)
			}
			if tc.wantIs != nil && !errors.Is(err, tc.wantIs) {
				t.Fatalf("error %v does not wrap %v", err, tc.wantIs)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
			if pe.PacketType != tc.wantType {
				t.Fatalf("ParseError.PacketType = %v, want %v", pe.PacketType, tc.wantType)
			}
			if pe.Offset < 0 || pe.Offset > len(tc.in) {
				t.Fatalf("ParseError.Offset = %d outside input of %d bytes", pe.Offset, len(tc.in))
			}
		})
	}
}

// TestDecodeTruncationSweep cuts every valid packet type at every byte
// boundary: each proper prefix must fail cleanly with a *ParseError (and
// must never panic or succeed, since every field is load-bearing).
func TestDecodeTruncationSweep(t *testing.T) {
	s := suite.SHA1()
	d := func(seed byte) []byte {
		b := make([]byte, s.Size())
		for i := range b {
			b[i] = seed + byte(i)
		}
		return b
	}
	hdr := func(ty Type) Header {
		return Header{Type: ty, Suite: s.ID(), Flags: FlagReliable, Assoc: 42, Seq: 7}
	}
	msgs := []Message{
		&Handshake{Initiator: true, SigAnchor: d(1), AckAnchor: d(2), ChainLen: 8, Nonce: d(3)},
		&S1{Mode: ModeC, AuthIdx: 1, Auth: d(1), KeyIdx: 2, MACs: [][]byte{d(2), d(3)}},
		&S1{Mode: ModeM, AuthIdx: 1, Auth: d(1), KeyIdx: 2, LeafCount: 8, Root: d(4)},
		&S1{Mode: ModeCM, AuthIdx: 1, Auth: d(1), KeyIdx: 2, LeafCount: 8, Roots: [][]byte{d(5), d(6)}},
		&A1{AuthIdx: 1, Auth: d(1), KeyIdx: 2, PreAck: d(2), PreNack: d(3)},
		&A1{AuthIdx: 1, Auth: d(1), KeyIdx: 2, AMTRoot: d(5), AMTLeaves: 4},
		&S2{Mode: ModeM, KeyIdx: 2, Key: d(1), MsgIndex: 3, LeafCount: 8, Proof: [][]byte{d(2), d(3)}, Payload: []byte("payload")},
		&A2{Mode: ModeM, KeyIdx: 2, Key: d(1), MsgIndex: 1, Ack: true, Secret: d(2), Proof: [][]byte{d(3)}, Other: d(4), AMTLeaves: 2},
	}
	for _, m := range msgs {
		raw, err := Encode(hdr(m.Type()), m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(raw); cut++ {
			if _, _, err := Decode(raw[:cut]); err == nil {
				t.Fatalf("%v truncated to %d/%d bytes decoded without error", m.Type(), cut, len(raw))
			} else {
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Fatalf("%v truncated to %d bytes: error is %T, want *ParseError", m.Type(), cut, err)
				}
			}
		}
	}
}
