package packet

import (
	"bytes"
	"testing"
)

var (
	filterIP   = []byte{127, 0, 0, 1}
	otherIP    = []byte{10, 0, 0, 7}
	filterPort = 40001
)

// TestPrefilterStructural pins tier 1: a canonical packet passes, and every
// corruption Decode would reject at the fixed-header stage is rejected
// without touching the cookie.
func TestPrefilterStructural(t *testing.T) {
	raw := negS1(t)
	if !PrefilterOK(raw) {
		t.Fatal("canonical S1 rejected by structural prefilter")
	}
	mut := func(edit func([]byte)) []byte {
		b := append([]byte(nil), raw...)
		edit(b)
		return b
	}
	bad := [][]byte{
		nil,
		raw[:HeaderSize-1],
		mut(func(b []byte) { b[0] = 0xDE }),
		mut(func(b []byte) { b[1] = 0xAD }),
		mut(func(b []byte) { b[2] = 99 }),
		mut(func(b []byte) { b[3] = 0 }),
		mut(func(b []byte) { b[3] = 0x7F }),
		make([]byte, MaxPacketSize+1),
	}
	for i, b := range bad {
		if PrefilterOK(b) {
			t.Errorf("case %d: structurally invalid datagram passed the prefilter", i)
		}
		if _, _, err := Decode(b); err == nil {
			t.Errorf("case %d: prefilter test vector unexpectedly decodes", i)
		}
	}
}

// TestCookieRoundTrip pins tier 2: a stamped packet passes from the address
// it was stamped for (and the port-only wildcard binding), and fails from
// anywhere else.
func TestCookieRoundTrip(t *testing.T) {
	raw := negS1(t)
	b := append([]byte(nil), raw...)
	StampCookie(b, filterIP, filterPort)
	if b[CookieOffset] == 0 {
		t.Fatal("stamp produced the unstamped sentinel")
	}
	if !Prefilter(b, filterIP, filterPort) {
		t.Fatal("stamped packet rejected from its own source address")
	}
	if Prefilter(b, otherIP, filterPort+1) {
		t.Fatal("stamped packet accepted from an unrelated address")
	}

	// Wildcard-bound sender: port-only stamp must pass from any source IP
	// carrying that port.
	w := append([]byte(nil), raw...)
	StampCookie(w, nil, filterPort)
	if !Prefilter(w, otherIP, filterPort) {
		t.Fatal("port-only stamp rejected despite matching port")
	}
	if Prefilter(w, otherIP, filterPort+1) {
		t.Fatal("port-only stamp accepted with the wrong port")
	}

	// Unstamped (cookie zero, what Encode emits) always passes tier 2.
	if raw[CookieOffset] != 0 {
		t.Fatal("Encode no longer zeroes the cookie slot")
	}
	if !Prefilter(raw, otherIP, 1) {
		t.Fatal("unstamped packet rejected")
	}
}

// TestCookieNeverZero walks the sequence space a little to check the stamp
// never collides with the unstamped sentinel.
func TestCookieNeverZero(t *testing.T) {
	raw := negS1(t)
	b := append([]byte(nil), raw...)
	for seq := 0; seq < 4096; seq++ {
		b[14] = byte(seq >> 8)
		b[15] = byte(seq)
		StampCookie(b, filterIP, seq)
		if b[CookieOffset] == 0 {
			t.Fatalf("zero cookie at seq %d", seq)
		}
	}
}

// TestDecodeIgnoresCookie pins the wire-format relaxation the prefilter
// depends on: a stamped packet decodes identically to its unstamped form.
func TestDecodeIgnoresCookie(t *testing.T) {
	raw := negS1(t)
	h1, m1, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	st := append([]byte(nil), raw...)
	st[CookieOffset] = 0x7F
	h2, m2, err := Decode(st)
	if err != nil {
		t.Fatalf("stamped packet no longer decodes: %v", err)
	}
	if h1 != h2 {
		t.Fatalf("header changed under the stamp: %+v vs %+v", h1, h2)
	}
	e1, err := Encode(h1, m1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Encode(h2, m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatal("body changed under the stamp")
	}
}

// TestPrefilterAllocs pins the 0 allocs/op contract on both tiers — the
// property that makes the prefilter safe to run on every datagram of a
// flood.
func TestPrefilterAllocs(t *testing.T) {
	raw := negS1(t)
	stamped := append([]byte(nil), raw...)
	StampCookie(stamped, filterIP, filterPort)
	junk := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if n := testing.AllocsPerRun(200, func() {
		if Prefilter(junk, filterIP, filterPort) {
			t.Error("junk passed")
		}
		if !Prefilter(stamped, filterIP, filterPort) {
			t.Error("stamped rejected")
		}
		StampCookie(stamped, filterIP, filterPort)
	}); n != 0 {
		t.Fatalf("prefilter allocates %.1f per run, want 0", n)
	}
}

// FuzzPrefilter proves the zero-false-negative contract: for any input the
// full parse path accepts, (1) the structural tier accepts it, (2) its
// Encode-canonical unstamped form passes both tiers from any address, and
// (3) stamping it for a source address yields a packet that still passes
// and decodes to the very same packet. Seeded from the netsim-captured
// corpus (see corpus_test.go).
func FuzzPrefilter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xA1, 0xFA, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Derive a deterministic source address from the input so every
		// corpus entry exercises a different binding.
		var ip [4]byte
		port := len(data) % 65536
		for i, c := range data {
			ip[i%4] ^= c
		}
		hdr, msg, err := Decode(data)
		if err != nil {
			return // prefilter may accept or reject; only false negatives matter
		}
		if !PrefilterOK(data) {
			t.Fatalf("structural prefilter rejected a decodable packet: % x", data[:HeaderSize])
		}
		canonical, err := Encode(hdr, msg)
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		if !Prefilter(canonical, ip[:], port) {
			t.Fatal("prefilter rejected a canonical unstamped packet")
		}
		stamped := append([]byte(nil), canonical...)
		StampCookie(stamped, ip[:], port)
		if !Prefilter(stamped, ip[:], port) {
			t.Fatal("prefilter rejected a packet stamped for this very address")
		}
		h2, m2, err := Decode(stamped)
		if err != nil {
			t.Fatalf("stamped packet no longer decodes: %v", err)
		}
		if h2 != hdr {
			t.Fatalf("stamp changed the parsed header: %+v vs %+v", hdr, h2)
		}
		e2, err := Encode(h2, m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e2, canonical) {
			t.Fatal("stamp changed the parsed body")
		}
	})
}
