// Bundles: several ALPHA packets in one datagram.
//
// §3.2.1 of the paper observes that "a host that acts as signer and
// verifier can combine the packet transmissions of both directions and send
// A and S packets of independent simplex channels in the same packet."
// A Bundle is that container: an outer frame carrying whole encoded ALPHA
// packets, each with its own header, so acknowledgments of the incoming
// channel ride along with signatures of the outgoing one (and, under
// ALPHA-C/M, the many S2 packets of one batch share datagrams).

package packet

import (
	"errors"
	"fmt"

	"alpha/internal/suite"
)

// TypeBundle identifies the aggregate container.
const TypeBundle Type = 7

// MaxBundlePackets bounds the sub-packets of one bundle.
const MaxBundlePackets = 64

// Bundle is a list of encoded ALPHA packets traveling as one datagram.
// Bundles must not nest.
type Bundle struct {
	Packets [][]byte
}

// Type implements Message.
func (*Bundle) Type() Type { return TypeBundle }

func (b *Bundle) encodeBody(w *writer, h int) error {
	if len(b.Packets) < 2 || len(b.Packets) > MaxBundlePackets {
		return fmt.Errorf("bundle of %d packets, want 2..%d", len(b.Packets), MaxBundlePackets)
	}
	w.u8(uint8(len(b.Packets)))
	for i, raw := range b.Packets {
		if len(raw) < HeaderSize {
			return fmt.Errorf("bundle packet %d too short", i)
		}
		if Type(raw[3]) == TypeBundle {
			return errors.New("bundles must not nest")
		}
		if err := w.bytes16(raw); err != nil {
			return err
		}
	}
	return nil
}

func (b *Bundle) decodeBody(r *reader, h int) error {
	count, err := r.u8()
	if err != nil {
		return err
	}
	if count < 2 || int(count) > MaxBundlePackets {
		return fmt.Errorf("bundle count %d out of range", count)
	}
	b.Packets = make([][]byte, count)
	for i := range b.Packets {
		raw, err := r.bytes16()
		if err != nil {
			return err
		}
		if len(raw) < HeaderSize {
			return ErrTruncated
		}
		if Type(raw[3]) == TypeBundle {
			return errors.New("bundles must not nest")
		}
		b.Packets[i] = raw
	}
	return nil
}

// EncodeBundle wraps already-encoded packets into one datagram. The header
// needs only the association and suite; sub-packets carry their own full
// headers.
func EncodeBundle(sid suite.ID, assoc uint64, flags uint8, raws [][]byte) ([]byte, error) {
	hdr := Header{Type: TypeBundle, Suite: sid, Flags: flags, Assoc: assoc}
	return Encode(hdr, &Bundle{Packets: raws})
}

// BundleOverhead is the fixed wire cost of bundling: the outer header, the
// count byte, plus a per-packet length prefix.
func BundleOverhead(n int) int { return HeaderSize + 1 + 2*n }
