// Binary codec helpers: a growing writer and a bounds-checked reader.
//
// The codecs are deliberately boring: fixed-width big-endian integers,
// digests whose length is implied by the association's hash suite, and
// explicit counts for anything repeated. Every read is bounds-checked and a
// failed parse returns an error rather than panicking, because relays parse
// packets from unauthenticated sources by design.

package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a packet ends before a declared field.
var ErrTruncated = errors.New("packet: truncated packet")

// writer accumulates an encoded packet.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// digest appends a fixed-size digest, validating its length.
func (w *writer) digest(d []byte, size int) error {
	if len(d) != size {
		return fmt.Errorf("packet: digest length %d, want %d", len(d), size)
	}
	w.buf = append(w.buf, d...)
	return nil
}

// bytes32 appends a u32 length prefix followed by the raw bytes.
func (w *writer) bytes32(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// bytes16 appends a u16 length prefix followed by the raw bytes.
func (w *writer) bytes16(b []byte) error {
	if len(b) > 0xFFFF {
		return fmt.Errorf("packet: field of %d bytes exceeds 16-bit length prefix", len(b))
	}
	w.u16(uint16(len(b)))
	w.buf = append(w.buf, b...)
	return nil
}

// reader consumes an encoded packet.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) u8() (uint8, error) {
	if r.remaining() < 1 {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// digest reads a fixed-size digest. The returned slice is a copy so parsed
// packets do not alias transport buffers that may be reused.
func (r *reader) digest(size int) ([]byte, error) {
	if r.remaining() < size {
		return nil, ErrTruncated
	}
	d := make([]byte, size)
	copy(d, r.buf[r.off:])
	r.off += size
	return d, nil
}

// bytes32 reads a u32-length-prefixed byte field, enforcing a sanity cap.
func (r *reader) bytes32(maxLen int) ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > maxLen || int(n) > r.remaining() {
		return nil, ErrTruncated
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:])
	r.off += int(n)
	return b, nil
}

// bytes16 reads a u16-length-prefixed byte field. A zero-length field
// decodes as nil so that encode/decode round-trips are exact.
func (r *reader) bytes16() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if int(n) > r.remaining() {
		return nil, ErrTruncated
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:])
	r.off += int(n)
	return b, nil
}

// digests reads count fixed-size digests.
func (r *reader) digests(count, size int) ([][]byte, error) {
	if count < 0 || r.remaining() < count*size {
		return nil, ErrTruncated
	}
	out := make([][]byte, count)
	for i := range out {
		d, err := r.digest(size)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}
