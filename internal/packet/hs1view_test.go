package packet

import (
	"bytes"
	"testing"

	"alpha/internal/suite"
)

func tokenHS1(t *testing.T, withToken bool) ([]byte, *Handshake, Header) {
	t.Helper()
	s := suite.SHA1()
	d := func(seed byte) []byte {
		b := make([]byte, s.Size())
		for i := range b {
			b[i] = seed + byte(i)
		}
		return b
	}
	hs := &Handshake{Initiator: true, SigAnchor: d(1), AckAnchor: d(2), ChainLen: 64, Nonce: d(3)}
	h := Header{Type: TypeHS1, Suite: s.ID(), Flags: 0x01, Assoc: 0xDEADBEEF, Seq: 0}
	if withToken {
		tok := make([]byte, 88)
		for i := range tok {
			tok[i] = byte(0x40 + i)
		}
		hs.HasToken, hs.Token = true, tok
		h.Flags |= FlagToken
	}
	raw, err := Encode(h, hs)
	if err != nil {
		t.Fatal(err)
	}
	return raw, hs, h
}

func TestHandshakeTokenRoundtrip(t *testing.T) {
	raw, hs, _ := tokenHS1(t, true)
	hdr, msg, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Handshake)
	if !got.HasToken || !bytes.Equal(got.Token, hs.Token) {
		t.Fatalf("token did not round-trip: has=%v token=%x", got.HasToken, got.Token)
	}
	re, err := Encode(hdr, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, raw) {
		t.Fatal("re-encoding differs")
	}
}

func TestTokenlessWireFormUnchanged(t *testing.T) {
	// The token field is flag-gated: a tokenless HS1 must keep the exact
	// pre-admission wire form, so old and new nodes interoperate.
	raw, _, h := tokenHS1(t, false)
	if h.Flags&FlagToken != 0 {
		t.Fatal("tokenless encode set FlagToken")
	}
	hdr, msg, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := msg.(*Handshake)
	if got.HasToken || got.Token != nil {
		t.Fatalf("tokenless decode produced a token: %+v", got)
	}
	re, err := Encode(hdr, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, raw) {
		t.Fatal("re-encoding differs")
	}
}

func TestHandshakeTokenEncodingErrors(t *testing.T) {
	s := suite.SHA1()
	d := make([]byte, s.Size())
	hs := &Handshake{Initiator: true, SigAnchor: d, AckAnchor: d, ChainLen: 1, Nonce: d}
	h := Header{Type: TypeHS1, Suite: s.ID()}

	// Token bytes without the gating field is a caller bug, not silently
	// dropped payload.
	hs.Token = []byte{1, 2, 3}
	if _, err := Encode(h, hs); err == nil {
		t.Fatal("token without HasToken encoded")
	}
	// Oversized token.
	hs.HasToken = true
	hs.Token = make([]byte, MaxKeyBlob+1)
	h.Flags |= FlagToken
	if _, err := Encode(h, hs); err == nil {
		t.Fatal("oversized token encoded")
	}
}

func TestParseHS1ViewAgreesWithDecode(t *testing.T) {
	for _, withToken := range []bool{false, true} {
		raw, hs, h := tokenHS1(t, withToken)
		view, ok := ParseHS1View(raw)
		if !ok {
			t.Fatalf("view rejected a valid HS1 (token=%v)", withToken)
		}
		if view.Suite != h.Suite || view.Flags != h.Flags || view.Assoc != h.Assoc {
			t.Fatalf("header mismatch: %+v vs %+v", view, h)
		}
		if !bytes.Equal(view.SigAnchor, hs.SigAnchor) || !bytes.Equal(view.AckAnchor, hs.AckAnchor) {
			t.Fatal("anchor mismatch")
		}
		if view.ChainLen != hs.ChainLen {
			t.Fatalf("chain length %d != %d", view.ChainLen, hs.ChainLen)
		}
		if !bytes.Equal(view.Token, hs.Token) {
			t.Fatalf("token mismatch: %x vs %x", view.Token, hs.Token)
		}
	}
}

func TestParseHS1ViewRejects(t *testing.T) {
	raw, _, _ := tokenHS1(t, true)
	if _, ok := ParseHS1View(nil); ok {
		t.Fatal("accepted nil")
	}
	if _, ok := ParseHS1View(raw[:HeaderSize-1]); ok {
		t.Fatal("accepted short datagram")
	}
	// Truncations anywhere in the body must be rejected or at least not
	// yield out-of-bounds anchors (no panic is the hard requirement).
	for n := HeaderSize; n < len(raw); n++ {
		ParseHS1View(raw[:n])
	}
	bad := append([]byte(nil), raw...)
	bad[3] = byte(TypeHS2)
	if _, ok := ParseHS1View(bad); ok {
		t.Fatal("accepted HS2")
	}
	bad = append(bad[:0], raw...)
	bad[4] = 0x7F // unknown suite
	if _, ok := ParseHS1View(bad); ok {
		t.Fatal("accepted unknown suite")
	}
}

func TestParseHS1ViewZeroAlloc(t *testing.T) {
	raw, _, _ := tokenHS1(t, true)
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := ParseHS1View(raw); !ok {
			t.Fatal("rejected")
		}
	}); n != 0 {
		t.Fatalf("ParseHS1View allocates %.1f/op", n)
	}
}
