package packet_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
)

// fuzzCorpusDir is FuzzParsePacket's seed corpus. The netsim-* entries in
// it are written by TestNetsimCorpusSeeds below (run with
// ALPHA_WRITE_CORPUS=1) so the fuzzer starts from real protocol traffic —
// handshakes, S1/A1/S2/A2 in every mode — rather than hand-built packets.
const fuzzCorpusDir = "testdata/fuzz/FuzzParsePacket"

// prefilterCorpusDir is FuzzPrefilter's seed corpus: the same netsim
// traffic, so the zero-false-negative fuzz starts from every packet type
// and mode the protocol actually emits.
const prefilterCorpusDir = "testdata/fuzz/FuzzPrefilter"

// captureNetsimTraffic runs one exchange over an s — tap — v line in the
// simulator and returns every datagram crossing the tap, in arrival order.
func captureNetsimTraffic(t *testing.T, mode packet.Mode, reliable bool) [][]byte {
	t.Helper()
	net := netsim.New(7)
	cfg := core.Config{Mode: mode, Reliable: reliable, ChainLen: 64, BatchSize: 4, RTO: 100 * time.Millisecond}
	epS, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epV, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sender := netsim.NewEndpointNode(net, "s", "v", epS)
	netsim.NewEndpointNode(net, "v", "s", epV)
	var captured [][]byte
	net.AddNode("tap", netsim.HandlerFunc(func(n *netsim.Network, now time.Time, pkt netsim.Packet) {
		captured = append(captured, append([]byte(nil), pkt.Data...))
		if err := n.Forward("tap", pkt); err != nil {
			t.Errorf("tap forward: %v", err)
		}
	}))
	link := netsim.LinkConfig{Latency: time.Millisecond}
	net.AddDuplexLink("s", "tap", link)
	net.AddDuplexLink("tap", "v", link)
	net.AutoRoute()
	if err := sender.Start(net.Now()); err != nil {
		t.Fatal(err)
	}
	net.RunFor(500 * time.Millisecond)
	if !sender.EP.Established() {
		t.Fatal("association did not establish through the tap")
	}
	for i := 0; i < 8; i++ {
		if _, err := sender.Send(net.Now(), []byte(fmt.Sprintf("corpus-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sender.Flush(net.Now())
	net.RunFor(2 * time.Second)
	return captured
}

// TestNetsimCorpusSeeds taps simulated protocol runs in every mode and
// checks two things about the traffic: each datagram survives the
// canonical Decode→Encode roundtrip, and a representative per-mode,
// per-type sample is committed as FuzzParsePacket seeds. Run with
// ALPHA_WRITE_CORPUS=1 to (re)write the seed files after a wire-format
// change.
func TestNetsimCorpusSeeds(t *testing.T) {
	write := os.Getenv("ALPHA_WRITE_CORPUS") != ""
	scenarios := []struct {
		mode     packet.Mode
		reliable bool
	}{
		{packet.ModeBase, true},
		{packet.ModeC, true},
		{packet.ModeM, true},
		{packet.ModeCM, false},
	}
	for _, sc := range scenarios {
		t.Run(fmt.Sprintf("%v/reliable=%v", sc.mode, sc.reliable), func(t *testing.T) {
			caught := captureNetsimTraffic(t, sc.mode, sc.reliable)
			if len(caught) == 0 {
				t.Fatal("tap captured no traffic")
			}
			// Sample the first seedsPerType datagrams of each packet type.
			const seedsPerType = 2
			perType := map[packet.Type]int{}
			for _, raw := range caught {
				hdr, msg, err := packet.Decode(raw)
				if err != nil {
					t.Fatalf("simulator emitted undecodable packet: %v", err)
				}
				re, err := packet.Encode(hdr, msg)
				if err != nil {
					t.Fatalf("captured %v failed to re-encode: %v", hdr.Type, err)
				}
				if string(re) != string(raw) {
					t.Fatalf("captured %v is not in canonical form", hdr.Type)
				}
				i := perType[hdr.Type]
				if i >= seedsPerType {
					continue
				}
				perType[hdr.Type] = i + 1
				name := fmt.Sprintf("netsim-%v-%v-%d", sc.mode, hdr.Type, i)
				for _, dir := range []string{fuzzCorpusDir, prefilterCorpusDir} {
					path := filepath.Join(dir, name)
					if write {
						entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", raw)
						if err := os.MkdirAll(dir, 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
							t.Fatal(err)
						}
						continue
					}
					if _, err := os.Stat(path); err != nil {
						t.Errorf("seed %s missing from the committed corpus; regenerate with ALPHA_WRITE_CORPUS=1: %v", filepath.Join(dir, name), err)
					}
				}
			}
			// A protocol run must at least produce a handshake and the
			// S1/S2 data path; acks require an established exchange.
			for _, want := range []packet.Type{packet.TypeHS1, packet.TypeHS2, packet.TypeS1, packet.TypeS2} {
				if perType[want] == 0 {
					t.Errorf("capture saw no %v packets", want)
				}
			}
		})
	}
}
