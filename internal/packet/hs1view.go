// Allocation-free HS1 field extraction for the admission stage.
//
// The UDP server must read an unadmitted HS1's anchors and connect token
// before deciding whether the packet deserves any state at all — and it
// must do so without allocating, because rejection is the hot path under a
// handshake flood. HS1View walks the same wire layout Handshake.decodeBody
// parses, but returns subslices of the input instead of copies and never
// constructs an error. It is strictly weaker than Decode: a packet Decode
// would reject may still yield a view (trailing bytes, oversize blobs),
// which is fine because every admitted HS1 goes through the full parser
// inside the endpoint anyway.

package packet

import (
	"encoding/binary"

	"alpha/internal/suite"
)

// HS1View is a zero-copy view of an HS1 datagram's admission-relevant
// fields. All byte slices alias the input buffer and are only valid until
// the transport reuses it.
type HS1View struct {
	Suite suite.ID
	Flags uint8
	Assoc uint64
	// SigAnchor and AckAnchor are the initiator's chain anchors (§3.4).
	SigAnchor []byte
	AckAnchor []byte
	ChainLen  uint32
	// Token is the connect token (nil when FlagToken is clear or the field
	// is empty).
	Token []byte
}

// ParseHS1View extracts the admission fields from a raw datagram. It
// returns ok=false for anything that is not structurally an HS1 with a
// known suite and intact anchor/token framing. Zero allocations on every
// path.
//
//alpha:hotpath
func ParseHS1View(b []byte) (HS1View, bool) {
	var v HS1View
	if len(b) < HeaderSize || len(b) > MaxPacketSize {
		return v, false
	}
	if b[0] != Magic>>8 || b[1] != Magic&0xFF || b[2] != Version || Type(b[3]) != TypeHS1 {
		return v, false
	}
	h := suite.SizeByID(suite.ID(b[4]))
	if h == 0 {
		return v, false
	}
	v.Suite = suite.ID(b[4])
	v.Flags = b[5]
	v.Assoc = binary.BigEndian.Uint64(b[6:14])

	// Body: sigAnchor(h) ackAnchor(h) chainLen(4) nonce(h) scheme(1)
	// pubKey(bytes16) sig(bytes16) [token(bytes16) if FlagToken].
	off := HeaderSize
	if len(b)-off < 3*h+5 {
		return v, false
	}
	v.SigAnchor = b[off : off+h]
	off += h
	v.AckAnchor = b[off : off+h]
	off += h
	v.ChainLen = binary.BigEndian.Uint32(b[off:])
	off += 4 + h + 1 // chainLen, nonce, scheme
	var ok bool
	if off, ok = skip16(b, off); !ok { // pubKey
		return v, false
	}
	if off, ok = skip16(b, off); !ok { // sig
		return v, false
	}
	if v.Flags&FlagToken != 0 {
		if len(b)-off < 2 {
			return v, false
		}
		n := int(binary.BigEndian.Uint16(b[off:]))
		off += 2
		if len(b)-off < n {
			return v, false
		}
		if n > 0 {
			v.Token = b[off : off+n]
		}
	}
	return v, true
}

// skip16 advances past one u16-length-prefixed field.
//
//alpha:hotpath
func skip16(b []byte, off int) (int, bool) {
	if len(b)-off < 2 {
		return off, false
	}
	n := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if len(b)-off < n {
		return off, false
	}
	return off + n, true
}
