// Stateless per-packet prefilter: the checks a transport can run over a
// raw datagram before any session-map lookup, chain walk or MAC — the
// Pittle/Chonkle idea from high-scale UDP servers adapted to ALPHA's fixed
// header. Junk traffic (port scans, reflection backscatter, random floods)
// is rejected in a handful of cycles at the very top of the receive path,
// so the expensive machinery only ever sees datagrams that at least look
// like ALPHA packets from the address they claim to come from.
//
// Two tiers:
//
//  1. Structural: magic, version and a known packet type. Strictly weaker
//     than Decode by construction — every check here is a prefix of a check
//     Decode performs — so a packet the full parse path would accept is
//     never rejected (the zero-false-negative property FuzzPrefilter pins).
//
//  2. Cookie: a 1-byte hash over the 15 variable header bytes [3:18) —
//     type, suite, flags, association, sequence — bound to the sender's
//     source address and stamped into the trailing header byte (the former
//     reserved byte) by the sending transport. The receiver recomputes it
//     from the observed source address before touching any state. A zero
//     cookie means "unstamped" and passes tier 1 only, so prefiltering
//     interoperates with peers that do not stamp; a nonzero cookie must
//     match, which rejects replayed-to-the-wrong-hop and blindly spoofed
//     headers with probability 254/255.
//
// The cookie is a checksum, not a MAC: it carries no secret and defends
// against noise and misdirection, not a targeted attacker (ALPHA's hash
// chains do that). Address translation between stamper and checker breaks
// the binding — acceptable because ALPHA is hop-by-hop and every relay
// restamps for the next hop. A sender bound to a wildcard address cannot
// know which source IP the kernel will pick, so it stamps with the port
// alone (nil ip) and the checker accepts either binding.

package packet

// CookieOffset is the index of the filter-cookie byte in the fixed header
// (the trailing byte, ignored by Decode).
const CookieOffset = 18

// The cookie covers header bytes [cookieFrom:cookieTo): type, suite,
// flags, assoc(8), seq(4) — 15 bytes, everything variable except the
// cookie slot itself and the constant magic/version prefix.
const (
	cookieFrom = 3
	cookieTo   = 18
)

// FNV-1a parameters; the fold below adds the avalanche FNV lacks in its
// low byte.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// PrefilterOK is the structural tier: length bounds, magic, version, known
// type. Every rejection here is one Decode would also make, so it never
// drops a parseable packet.
//
//alpha:hotpath
func PrefilterOK(b []byte) bool {
	if len(b) < HeaderSize || len(b) > MaxPacketSize {
		return false
	}
	if b[0] != Magic>>8 || b[1] != Magic&0xFF || b[2] != Version {
		return false
	}
	t := Type(b[3])
	return t >= TypeHS1 && t <= TypeBundle
}

// cookie hashes the 15 variable header bytes and the source address into
// one byte, never zero (zero is the "unstamped" sentinel).
//
//alpha:hotpath
func cookie(b []byte, ip []byte, port int) byte {
	h := uint64(fnvOffset64)
	for _, c := range b[cookieFrom:cookieTo] {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	for _, c := range ip {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	h = (h ^ uint64(uint16(port))) * fnvPrime64
	h ^= h >> 32
	h ^= h >> 16
	h ^= h >> 8
	c := byte(h)
	if c == 0 {
		return 0xA5
	}
	return c
}

// StampCookie writes the address-bound filter cookie for the given source
// address into b's cookie slot. Callers own b; the stamp changes no byte
// Decode reads. A sender that does not know its concrete source IP (a
// wildcard bind) passes a nil or empty ip.
//
//alpha:hotpath
func StampCookie(b []byte, ip []byte, port int) {
	if len(b) < HeaderSize {
		return
	}
	b[CookieOffset] = cookie(b, ip, port)
}

// Prefilter runs both tiers against a datagram observed from the given
// source address. It returns false only for datagrams the full parse path
// would reject (structural tier) or whose nonzero cookie does not match
// the observed source (cookie tier); unstamped packets pass tier 1 alone.
//
//alpha:hotpath
func Prefilter(b []byte, ip []byte, port int) bool {
	if !PrefilterOK(b) {
		return false
	}
	switch c := b[CookieOffset]; c {
	case 0:
		return true // unstamped peer: structural tier only
	case cookie(b, ip, port), cookie(b, nil, port):
		return true // bound to the full source address, or port-only (wildcard-bound sender)
	}
	return false
}
