// Typed packet bodies and their encodings.

package packet

import (
	"errors"
	"fmt"
)

// Limits on repeated fields, enforced on both encode and decode.
const (
	// MaxMACs bounds the cumulative pre-signatures in one ALPHA-C S1.
	MaxMACs = 4096
	// MaxProofDepth bounds Merkle proof length (2^32 leaves would be 32).
	MaxProofDepth = 32
	// MaxLeafCount bounds the advertised Merkle tree size.
	MaxLeafCount = 1 << 20
	// MaxPayload bounds a single S2 payload.
	MaxPayload = 60 << 10
	// MaxKeyBlob bounds handshake public keys and signatures.
	MaxKeyBlob = 8 << 10
)

// Handshake is the body of HS1 and HS2: it carries the sender's hash chain
// anchors (§3.4). In a protected handshake the anchors are additionally
// signed with an asymmetric key, binding the chains to a strong identity.
type Handshake struct {
	// Initiator distinguishes HS1 from HS2; it is carried by the packet
	// type, not the body.
	Initiator bool
	// SigAnchor is the anchor of the sender's signature chain.
	SigAnchor []byte
	// AckAnchor is the anchor of the sender's acknowledgment chain.
	AckAnchor []byte
	// ChainLen is the disclosable length of both chains.
	ChainLen uint32
	// Nonce is a fresh random value mixed into the association identity.
	Nonce []byte
	// Scheme identifies the asymmetric scheme of a protected handshake;
	// 0 means unprotected.
	Scheme uint8
	// PubKey is the sender's encoded public key (protected only).
	PubKey []byte
	// Sig is the signature over the anchors (protected only).
	Sig []byte
	// HasToken gates the trailing Token field. It mirrors the header's
	// FlagToken bit: Decode sets it from the header, and encoders must set
	// the flag and this field together. Gating on a flag instead of always
	// emitting the field keeps the pre-admission wire form byte-identical.
	HasToken bool
	// Token is the admission connect token (HS1 only; opaque to the codec).
	Token []byte
}

// Type implements Message.
func (hs *Handshake) Type() Type {
	if hs.Initiator {
		return TypeHS1
	}
	return TypeHS2
}

func (hs *Handshake) encodeBody(w *writer, h int) error {
	if err := w.digest(hs.SigAnchor, h); err != nil {
		return fmt.Errorf("sig anchor: %w", err)
	}
	if err := w.digest(hs.AckAnchor, h); err != nil {
		return fmt.Errorf("ack anchor: %w", err)
	}
	w.u32(hs.ChainLen)
	if err := w.digest(hs.Nonce, h); err != nil {
		return fmt.Errorf("nonce: %w", err)
	}
	w.u8(hs.Scheme)
	if len(hs.PubKey) > MaxKeyBlob || len(hs.Sig) > MaxKeyBlob {
		return errors.New("handshake key material too large")
	}
	if err := w.bytes16(hs.PubKey); err != nil {
		return err
	}
	if err := w.bytes16(hs.Sig); err != nil {
		return err
	}
	if hs.HasToken {
		if len(hs.Token) > MaxKeyBlob {
			return errors.New("handshake token too large")
		}
		return w.bytes16(hs.Token)
	}
	if len(hs.Token) != 0 {
		return errors.New("handshake token present without FlagToken")
	}
	return nil
}

func (hs *Handshake) decodeBody(r *reader, h int) error {
	var err error
	if hs.SigAnchor, err = r.digest(h); err != nil {
		return err
	}
	if hs.AckAnchor, err = r.digest(h); err != nil {
		return err
	}
	if hs.ChainLen, err = r.u32(); err != nil {
		return err
	}
	if hs.Nonce, err = r.digest(h); err != nil {
		return err
	}
	if hs.Scheme, err = r.u8(); err != nil {
		return err
	}
	if hs.PubKey, err = r.bytes16(); err != nil {
		return err
	}
	if hs.Sig, err = r.bytes16(); err != nil {
		return err
	}
	if hs.HasToken {
		if hs.Token, err = r.bytes16(); err != nil {
			return err
		}
	}
	if len(hs.PubKey) > MaxKeyBlob || len(hs.Sig) > MaxKeyBlob || len(hs.Token) > MaxKeyBlob {
		return errors.New("handshake key material too large")
	}
	return nil
}

// S1 announces one exchange's pre-signatures. The auth element identifies
// the signer; the MACs (base/C) or Merkle root (M) are keyed with the next,
// still-undisclosed element at KeyIdx.
type S1 struct {
	Mode Mode
	// AuthIdx/Auth are the signer's freshly disclosed signature-chain
	// element (odd disclosure index).
	AuthIdx uint32
	Auth    []byte
	// KeyIdx is the disclosure index of the undisclosed MAC-key element
	// (AuthIdx+1); it is carried explicitly so verifiers need not infer.
	KeyIdx uint32
	// MACs holds one pre-signature per message (modes base and C; base
	// always has exactly one).
	MACs [][]byte
	// LeafCount and Root describe the Merkle tree of mode M. In mode CM,
	// LeafCount is the total message count and Roots holds the k subtree
	// roots, each covering ⌈LeafCount/k⌉ consecutive messages.
	LeafCount uint32
	Root      []byte
	Roots     [][]byte
}

// Type implements Message.
func (*S1) Type() Type { return TypeS1 }

func (p *S1) encodeBody(w *writer, h int) error {
	w.u8(uint8(p.Mode))
	w.u32(p.AuthIdx)
	if err := w.digest(p.Auth, h); err != nil {
		return fmt.Errorf("auth element: %w", err)
	}
	w.u32(p.KeyIdx)
	switch p.Mode {
	case ModeBase, ModeC:
		if len(p.MACs) == 0 || len(p.MACs) > MaxMACs {
			return fmt.Errorf("S1 carries %d MACs, want 1..%d", len(p.MACs), MaxMACs)
		}
		if p.Mode == ModeBase && len(p.MACs) != 1 {
			return fmt.Errorf("base-mode S1 carries %d MACs, want exactly 1", len(p.MACs))
		}
		w.u16(uint16(len(p.MACs)))
		for i, m := range p.MACs {
			if err := w.digest(m, h); err != nil {
				return fmt.Errorf("MAC %d: %w", i, err)
			}
		}
	case ModeM:
		if p.LeafCount == 0 || p.LeafCount > MaxLeafCount {
			return fmt.Errorf("S1 leaf count %d out of range", p.LeafCount)
		}
		w.u32(p.LeafCount)
		if err := w.digest(p.Root, h); err != nil {
			return fmt.Errorf("root: %w", err)
		}
	case ModeCM:
		if p.LeafCount == 0 || p.LeafCount > MaxLeafCount {
			return fmt.Errorf("S1 leaf count %d out of range", p.LeafCount)
		}
		if len(p.Roots) == 0 || len(p.Roots) > MaxMACs || uint32(len(p.Roots)) > p.LeafCount {
			return fmt.Errorf("S1 carries %d roots for %d messages", len(p.Roots), p.LeafCount)
		}
		w.u32(p.LeafCount)
		w.u16(uint16(len(p.Roots)))
		for i, rt := range p.Roots {
			if err := w.digest(rt, h); err != nil {
				return fmt.Errorf("root %d: %w", i, err)
			}
		}
	default:
		return fmt.Errorf("unknown mode %v", p.Mode)
	}
	return nil
}

func (p *S1) decodeBody(r *reader, h int) error {
	m, err := r.u8()
	if err != nil {
		return err
	}
	p.Mode = Mode(m)
	if p.AuthIdx, err = r.u32(); err != nil {
		return err
	}
	if p.Auth, err = r.digest(h); err != nil {
		return err
	}
	if p.KeyIdx, err = r.u32(); err != nil {
		return err
	}
	switch p.Mode {
	case ModeBase, ModeC:
		count, err := r.u16()
		if err != nil {
			return err
		}
		if count == 0 || int(count) > MaxMACs {
			return fmt.Errorf("S1 MAC count %d out of range", count)
		}
		if p.Mode == ModeBase && count != 1 {
			return fmt.Errorf("base-mode S1 MAC count %d, want 1", count)
		}
		if p.MACs, err = r.digests(int(count), h); err != nil {
			return err
		}
	case ModeM:
		if p.LeafCount, err = r.u32(); err != nil {
			return err
		}
		if p.LeafCount == 0 || p.LeafCount > MaxLeafCount {
			return fmt.Errorf("S1 leaf count %d out of range", p.LeafCount)
		}
		if p.Root, err = r.digest(h); err != nil {
			return err
		}
	case ModeCM:
		if p.LeafCount, err = r.u32(); err != nil {
			return err
		}
		if p.LeafCount == 0 || p.LeafCount > MaxLeafCount {
			return fmt.Errorf("S1 leaf count %d out of range", p.LeafCount)
		}
		count, err := r.u16()
		if err != nil {
			return err
		}
		if count == 0 || int(count) > MaxMACs || uint32(count) > p.LeafCount {
			return fmt.Errorf("S1 root count %d out of range", count)
		}
		if p.Roots, err = r.digests(int(count), h); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %d", m)
	}
	return nil
}

// A1 acknowledges an S1 and expresses the verifier's willingness to receive
// the exchange's payload. In reliable mode it additionally carries the
// pre-acknowledgment material: a pre-ack/pre-nack hash pair (base/C, §3.2.2)
// or an Acknowledgment Merkle Tree root (M, §3.3.3).
type A1 struct {
	// AuthIdx/Auth are the verifier's freshly disclosed acknowledgment-
	// chain element (odd disclosure index).
	AuthIdx uint32
	Auth    []byte
	// KeyIdx is the index of the verifier's undisclosed element keying
	// the pre-(n)acks (reliable mode only; AuthIdx+1).
	KeyIdx uint32
	// PreAck/PreNack are H(h|1|s_ack) and H(h|0|s_nack) (base/C reliable).
	PreAck  []byte
	PreNack []byte
	// AMTRoot/AMTLeaves describe the acknowledgment Merkle tree (M
	// reliable).
	AMTRoot   []byte
	AMTLeaves uint32
}

// Type implements Message.
func (*A1) Type() Type { return TypeA1 }

// a1 body presence flags.
const (
	a1HasPrePair uint8 = 1 << 0
	a1HasAMT     uint8 = 1 << 1
)

func (p *A1) encodeBody(w *writer, h int) error {
	var flags uint8
	if p.PreAck != nil || p.PreNack != nil {
		flags |= a1HasPrePair
	}
	if p.AMTRoot != nil {
		flags |= a1HasAMT
	}
	if flags == a1HasPrePair|a1HasAMT {
		return errors.New("A1 cannot carry both a pre-(n)ack pair and an AMT root")
	}
	w.u8(flags)
	w.u32(p.AuthIdx)
	if err := w.digest(p.Auth, h); err != nil {
		return fmt.Errorf("auth element: %w", err)
	}
	w.u32(p.KeyIdx)
	if flags&a1HasPrePair != 0 {
		if err := w.digest(p.PreAck, h); err != nil {
			return fmt.Errorf("pre-ack: %w", err)
		}
		if err := w.digest(p.PreNack, h); err != nil {
			return fmt.Errorf("pre-nack: %w", err)
		}
	}
	if flags&a1HasAMT != 0 {
		if p.AMTLeaves == 0 || p.AMTLeaves > MaxLeafCount {
			return fmt.Errorf("A1 AMT leaf count %d out of range", p.AMTLeaves)
		}
		if err := w.digest(p.AMTRoot, h); err != nil {
			return fmt.Errorf("AMT root: %w", err)
		}
		w.u32(p.AMTLeaves)
	}
	return nil
}

func (p *A1) decodeBody(r *reader, h int) error {
	flags, err := r.u8()
	if err != nil {
		return err
	}
	if flags&^(a1HasPrePair|a1HasAMT) != 0 || flags == a1HasPrePair|a1HasAMT {
		return fmt.Errorf("A1 flags %#x invalid", flags)
	}
	if p.AuthIdx, err = r.u32(); err != nil {
		return err
	}
	if p.Auth, err = r.digest(h); err != nil {
		return err
	}
	if p.KeyIdx, err = r.u32(); err != nil {
		return err
	}
	if flags&a1HasPrePair != 0 {
		if p.PreAck, err = r.digest(h); err != nil {
			return err
		}
		if p.PreNack, err = r.digest(h); err != nil {
			return err
		}
	}
	if flags&a1HasAMT != 0 {
		if p.AMTRoot, err = r.digest(h); err != nil {
			return err
		}
		if p.AMTLeaves, err = r.u32(); err != nil {
			return err
		}
		if p.AMTLeaves == 0 || p.AMTLeaves > MaxLeafCount {
			return fmt.Errorf("A1 AMT leaf count %d out of range", p.AMTLeaves)
		}
	}
	return nil
}

// S2 discloses the MAC key element and carries one message of the exchange.
// In mode M it additionally carries the complementary branch set {Bc} that
// lets the message be verified against the buffered root independently of
// its siblings.
type S2 struct {
	Mode Mode
	// KeyIdx/Key disclose the signature-chain element that keyed the
	// exchange's MACs or Merkle root (even disclosure index).
	KeyIdx uint32
	Key    []byte
	// MsgIndex is the message's index within the exchange batch.
	MsgIndex uint32
	// LeafCount repeats the batch's Merkle leaf count (mode M).
	LeafCount uint32
	// Proof is the complementary branch set, leaf level first (mode M).
	Proof [][]byte
	// Payload is the protected message m.
	Payload []byte
}

// Type implements Message.
func (*S2) Type() Type { return TypeS2 }

func (p *S2) encodeBody(w *writer, h int) error {
	w.u8(uint8(p.Mode))
	w.u32(p.KeyIdx)
	if err := w.digest(p.Key, h); err != nil {
		return fmt.Errorf("key element: %w", err)
	}
	w.u32(p.MsgIndex)
	switch p.Mode {
	case ModeBase, ModeC:
		if len(p.Proof) != 0 {
			return errors.New("proof present outside mode M")
		}
	case ModeM, ModeCM:
		if p.LeafCount == 0 || p.LeafCount > MaxLeafCount {
			return fmt.Errorf("S2 leaf count %d out of range", p.LeafCount)
		}
		if len(p.Proof) > MaxProofDepth {
			return fmt.Errorf("S2 proof depth %d exceeds %d", len(p.Proof), MaxProofDepth)
		}
		w.u32(p.LeafCount)
		w.u8(uint8(len(p.Proof)))
		for i, d := range p.Proof {
			if err := w.digest(d, h); err != nil {
				return fmt.Errorf("proof node %d: %w", i, err)
			}
		}
	default:
		return fmt.Errorf("unknown mode %v", p.Mode)
	}
	if len(p.Payload) > MaxPayload {
		return fmt.Errorf("payload of %d bytes exceeds %d", len(p.Payload), MaxPayload)
	}
	w.bytes32(p.Payload)
	return nil
}

func (p *S2) decodeBody(r *reader, h int) error {
	m, err := r.u8()
	if err != nil {
		return err
	}
	p.Mode = Mode(m)
	if p.KeyIdx, err = r.u32(); err != nil {
		return err
	}
	if p.Key, err = r.digest(h); err != nil {
		return err
	}
	if p.MsgIndex, err = r.u32(); err != nil {
		return err
	}
	switch p.Mode {
	case ModeBase, ModeC:
	case ModeM, ModeCM:
		if p.LeafCount, err = r.u32(); err != nil {
			return err
		}
		if p.LeafCount == 0 || p.LeafCount > MaxLeafCount {
			return fmt.Errorf("S2 leaf count %d out of range", p.LeafCount)
		}
		depth, err := r.u8()
		if err != nil {
			return err
		}
		if int(depth) > MaxProofDepth {
			return fmt.Errorf("S2 proof depth %d exceeds %d", depth, MaxProofDepth)
		}
		if p.Proof, err = r.digests(int(depth), h); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %d", m)
	}
	if p.Payload, err = r.bytes32(MaxPayload); err != nil {
		return err
	}
	return nil
}

// A2 opens a pre-acknowledgment: it discloses the verifier's even-index
// acknowledgment-chain element together with either the base-mode secret
// (s_ack or s_nack) or an AMT leaf opening (mode M).
type A2 struct {
	Mode Mode
	// KeyIdx/Key disclose the acknowledgment-chain element that keyed the
	// pre-(n)acks.
	KeyIdx uint32
	Key    []byte
	// MsgIndex is the acknowledged message's index within the batch.
	MsgIndex uint32
	// Ack is true for a positive acknowledgment.
	Ack bool
	// Secret is s_ack or s_nack (base/C) or the AMT leaf secret (M).
	Secret []byte
	// Proof and Other carry the AMT opening (mode M): the complementary
	// branches within the chosen subtree and the opposite subtree's root.
	Proof [][]byte
	Other []byte
	// AMTLeaves repeats the AMT's message count (mode M).
	AMTLeaves uint32
}

// Type implements Message.
func (*A2) Type() Type { return TypeA2 }

func (p *A2) encodeBody(w *writer, h int) error {
	w.u8(uint8(p.Mode))
	w.u32(p.KeyIdx)
	if err := w.digest(p.Key, h); err != nil {
		return fmt.Errorf("key element: %w", err)
	}
	w.u32(p.MsgIndex)
	if p.Ack {
		w.u8(1)
	} else {
		w.u8(0)
	}
	if err := w.digest(p.Secret, h); err != nil {
		return fmt.Errorf("secret: %w", err)
	}
	switch p.Mode {
	case ModeBase, ModeC:
		if len(p.Proof) != 0 || p.Other != nil {
			return errors.New("AMT opening present outside mode M")
		}
	case ModeM:
		if p.AMTLeaves == 0 || p.AMTLeaves > MaxLeafCount {
			return fmt.Errorf("A2 AMT leaf count %d out of range", p.AMTLeaves)
		}
		if len(p.Proof) > MaxProofDepth {
			return fmt.Errorf("A2 proof depth %d exceeds %d", len(p.Proof), MaxProofDepth)
		}
		w.u32(p.AMTLeaves)
		w.u8(uint8(len(p.Proof)))
		for i, d := range p.Proof {
			if err := w.digest(d, h); err != nil {
				return fmt.Errorf("proof node %d: %w", i, err)
			}
		}
		if err := w.digest(p.Other, h); err != nil {
			return fmt.Errorf("other subtree root: %w", err)
		}
	default:
		return fmt.Errorf("unknown mode %v", p.Mode)
	}
	return nil
}

func (p *A2) decodeBody(r *reader, h int) error {
	m, err := r.u8()
	if err != nil {
		return err
	}
	p.Mode = Mode(m)
	if p.KeyIdx, err = r.u32(); err != nil {
		return err
	}
	if p.Key, err = r.digest(h); err != nil {
		return err
	}
	if p.MsgIndex, err = r.u32(); err != nil {
		return err
	}
	ack, err := r.u8()
	if err != nil {
		return err
	}
	if ack > 1 {
		return fmt.Errorf("A2 ack flag %d invalid", ack)
	}
	p.Ack = ack == 1
	if p.Secret, err = r.digest(h); err != nil {
		return err
	}
	switch p.Mode {
	case ModeBase, ModeC:
	case ModeM:
		if p.AMTLeaves, err = r.u32(); err != nil {
			return err
		}
		if p.AMTLeaves == 0 || p.AMTLeaves > MaxLeafCount {
			return fmt.Errorf("A2 AMT leaf count %d out of range", p.AMTLeaves)
		}
		depth, err := r.u8()
		if err != nil {
			return err
		}
		if int(depth) > MaxProofDepth {
			return fmt.Errorf("A2 proof depth %d exceeds %d", depth, MaxProofDepth)
		}
		if p.Proof, err = r.digests(int(depth), h); err != nil {
			return err
		}
		if p.Other, err = r.digest(h); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %d", m)
	}
	return nil
}
