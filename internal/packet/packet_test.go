package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"alpha/internal/suite"
)

func d(s suite.Suite, seed byte) []byte {
	b := make([]byte, s.Size())
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func hdr(t Type, s suite.Suite) Header {
	return Header{Type: t, Suite: s.ID(), Flags: FlagReliable, Assoc: 0xDEADBEEFCAFE, Seq: 7}
}

// roundTrip encodes and decodes a message, failing on any mismatch.
func roundTrip(t *testing.T, h Header, msg Message) Message {
	t.Helper()
	raw, err := Encode(h, msg)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	gh, gm, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gh != h {
		t.Fatalf("header round-trip: got %+v, want %+v", gh, h)
	}
	if !reflect.DeepEqual(gm, msg) {
		t.Fatalf("body round-trip:\n got  %#v\n want %#v", gm, msg)
	}
	return gm
}

func TestHandshakeRoundTrip(t *testing.T) {
	for _, s := range []suite.Suite{suite.SHA1(), suite.SHA256(), suite.MMO()} {
		hs := &Handshake{
			Initiator: true,
			SigAnchor: d(s, 1),
			AckAnchor: d(s, 2),
			ChainLen:  2048,
			Nonce:     d(s, 3),
		}
		roundTrip(t, hdr(TypeHS1, s), hs)
	}
}

func TestProtectedHandshakeRoundTrip(t *testing.T) {
	s := suite.SHA1()
	hs := &Handshake{
		Initiator: false,
		SigAnchor: d(s, 1),
		AckAnchor: d(s, 2),
		ChainLen:  64,
		Nonce:     d(s, 3),
		Scheme:    1,
		PubKey:    bytes.Repeat([]byte{0xAB}, 140),
		Sig:       bytes.Repeat([]byte{0xCD}, 128),
	}
	h := hdr(TypeHS2, s)
	h.Flags |= FlagProtected
	roundTrip(t, h, hs)
}

func TestS1RoundTripBase(t *testing.T) {
	s := suite.SHA1()
	roundTrip(t, hdr(TypeS1, s), &S1{
		Mode: ModeBase, AuthIdx: 5, Auth: d(s, 9), KeyIdx: 6,
		MACs: [][]byte{d(s, 4)},
	})
}

func TestS1RoundTripCumulative(t *testing.T) {
	s := suite.MMO()
	macs := make([][]byte, 20)
	for i := range macs {
		macs[i] = d(s, byte(i))
	}
	roundTrip(t, hdr(TypeS1, s), &S1{
		Mode: ModeC, AuthIdx: 11, Auth: d(s, 7), KeyIdx: 12, MACs: macs,
	})
}

func TestS1RoundTripMerkle(t *testing.T) {
	s := suite.SHA256()
	roundTrip(t, hdr(TypeS1, s), &S1{
		Mode: ModeM, AuthIdx: 3, Auth: d(s, 1), KeyIdx: 4,
		LeafCount: 128, Root: d(s, 2),
	})
}

func TestS1RoundTripCombined(t *testing.T) {
	s := suite.SHA1()
	roundTrip(t, hdr(TypeS1, s), &S1{
		Mode: ModeCM, AuthIdx: 3, Auth: d(s, 1), KeyIdx: 4,
		LeafCount: 64, Roots: [][]byte{d(s, 2), d(s, 3), d(s, 4), d(s, 5)},
	})
	// An S2 in mode CM uses the M framing.
	roundTrip(t, hdr(TypeS2, s), &S2{
		Mode: ModeCM, KeyIdx: 4, Key: d(s, 1), MsgIndex: 17,
		LeafCount: 64, Proof: [][]byte{d(s, 6), d(s, 7)},
		Payload: []byte("combined mode payload"),
	})
	// Root count may not exceed the message count.
	if _, err := Encode(hdr(TypeS1, s), &S1{
		Mode: ModeCM, AuthIdx: 3, Auth: d(s, 1), KeyIdx: 4,
		LeafCount: 2, Roots: [][]byte{d(s, 2), d(s, 3), d(s, 4)},
	}); err == nil {
		t.Fatalf("more roots than messages accepted")
	}
}

func TestA1RoundTrips(t *testing.T) {
	s := suite.SHA1()
	t.Run("plain", func(t *testing.T) {
		roundTrip(t, hdr(TypeA1, s), &A1{AuthIdx: 1, Auth: d(s, 1), KeyIdx: 2})
	})
	t.Run("prepair", func(t *testing.T) {
		roundTrip(t, hdr(TypeA1, s), &A1{
			AuthIdx: 1, Auth: d(s, 1), KeyIdx: 2,
			PreAck: d(s, 2), PreNack: d(s, 3),
		})
	})
	t.Run("amt", func(t *testing.T) {
		roundTrip(t, hdr(TypeA1, s), &A1{
			AuthIdx: 1, Auth: d(s, 1), KeyIdx: 2,
			AMTRoot: d(s, 4), AMTLeaves: 16,
		})
	})
}

func TestA1RejectsBothAckForms(t *testing.T) {
	s := suite.SHA1()
	_, err := Encode(hdr(TypeA1, s), &A1{
		AuthIdx: 1, Auth: d(s, 1), KeyIdx: 2,
		PreAck: d(s, 2), PreNack: d(s, 3), AMTRoot: d(s, 4), AMTLeaves: 4,
	})
	if err == nil {
		t.Fatalf("A1 with both pre-pair and AMT accepted")
	}
}

func TestS2RoundTrips(t *testing.T) {
	s := suite.SHA1()
	t.Run("base", func(t *testing.T) {
		roundTrip(t, hdr(TypeS2, s), &S2{
			Mode: ModeBase, KeyIdx: 2, Key: d(s, 1), MsgIndex: 0,
			Payload: []byte("hello world"),
		})
	})
	t.Run("empty-payload", func(t *testing.T) {
		roundTrip(t, hdr(TypeS2, s), &S2{
			Mode: ModeC, KeyIdx: 2, Key: d(s, 1), MsgIndex: 3,
			Payload: []byte{},
		})
	})
	t.Run("merkle", func(t *testing.T) {
		roundTrip(t, hdr(TypeS2, s), &S2{
			Mode: ModeM, KeyIdx: 2, Key: d(s, 1), MsgIndex: 5,
			LeafCount: 8, Proof: [][]byte{d(s, 2), d(s, 3), d(s, 4)},
			Payload: bytes.Repeat([]byte{0x11}, 999),
		})
	})
}

func TestA2RoundTrips(t *testing.T) {
	s := suite.SHA1()
	t.Run("base-ack", func(t *testing.T) {
		roundTrip(t, hdr(TypeA2, s), &A2{
			Mode: ModeBase, KeyIdx: 2, Key: d(s, 1), MsgIndex: 0,
			Ack: true, Secret: d(s, 5),
		})
	})
	t.Run("base-nack", func(t *testing.T) {
		roundTrip(t, hdr(TypeA2, s), &A2{
			Mode: ModeBase, KeyIdx: 2, Key: d(s, 1), MsgIndex: 0,
			Ack: false, Secret: d(s, 5),
		})
	})
	t.Run("amt-opening", func(t *testing.T) {
		roundTrip(t, hdr(TypeA2, s), &A2{
			Mode: ModeM, KeyIdx: 2, Key: d(s, 1), MsgIndex: 6,
			Ack: true, Secret: d(s, 5),
			Proof: [][]byte{d(s, 6), d(s, 7)}, Other: d(s, 8), AMTLeaves: 8,
		})
	})
}

func TestEncodeValidation(t *testing.T) {
	s := suite.SHA1()
	cases := []struct {
		name string
		h    Header
		m    Message
	}{
		{"type mismatch", hdr(TypeS2, s), &S1{Mode: ModeBase, Auth: d(s, 1), MACs: [][]byte{d(s, 2)}}},
		{"bad suite", Header{Type: TypeS1, Suite: 99}, &S1{Mode: ModeBase, Auth: d(s, 1), MACs: [][]byte{d(s, 2)}}},
		{"wrong digest size", hdr(TypeS1, s), &S1{Mode: ModeBase, Auth: []byte("short"), MACs: [][]byte{d(s, 2)}}},
		{"no MACs", hdr(TypeS1, s), &S1{Mode: ModeBase, Auth: d(s, 1)}},
		{"base multi-MAC", hdr(TypeS1, s), &S1{Mode: ModeBase, Auth: d(s, 1), MACs: [][]byte{d(s, 2), d(s, 3)}}},
		{"bad mode", hdr(TypeS1, s), &S1{Mode: 9, Auth: d(s, 1), MACs: [][]byte{d(s, 2)}}},
		{"M zero leaves", hdr(TypeS1, s), &S1{Mode: ModeM, Auth: d(s, 1), Root: d(s, 2)}},
		{"proof outside M", hdr(TypeS2, s), &S2{Mode: ModeBase, Key: d(s, 1), Proof: [][]byte{d(s, 2)}}},
		{"oversize payload", hdr(TypeS2, s), &S2{Mode: ModeBase, Key: d(s, 1), Payload: make([]byte, MaxPayload+1)}},
		{"A2 opening outside M", hdr(TypeA2, s), &A2{Mode: ModeBase, Key: d(s, 1), Secret: d(s, 2), Other: d(s, 3)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Encode(c.h, c.m); err == nil {
				t.Fatalf("Encode accepted invalid input")
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	s := suite.SHA1()
	raw, err := Encode(hdr(TypeS1, s), &S1{Mode: ModeBase, AuthIdx: 1, Auth: d(s, 1), KeyIdx: 2, MACs: [][]byte{d(s, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("empty", func(t *testing.T) {
		if _, _, err := Decode(nil); err == nil {
			t.Fatalf("nil decoded")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[0] = 0
		if _, _, err := Decode(b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[2] = 99
		if _, _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[3] = 200
		if _, _, err := Decode(b); !errors.Is(err, ErrBadType) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad suite", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[4] = 77
		if _, _, err := Decode(b); err == nil {
			t.Fatalf("unknown suite decoded")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for i := 1; i < len(raw); i++ {
			if _, _, err := Decode(raw[:i]); err == nil {
				t.Fatalf("truncation at %d decoded", i)
			}
		}
	})
	t.Run("trailing", func(t *testing.T) {
		b := append(append([]byte(nil), raw...), 0x00)
		if _, _, err := Decode(b); !errors.Is(err, ErrTrailing) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("oversize", func(t *testing.T) {
		if _, _, err := Decode(make([]byte, MaxPacketSize+1)); !errors.Is(err, ErrOversize) {
			t.Fatalf("oversize accepted")
		}
	})
}

// TestDecodeNeverPanics fuzzes the parser with random mutations of valid
// packets and pure noise; it must return errors, never panic.
func TestDecodeNeverPanics(t *testing.T) {
	s := suite.SHA1()
	seedPackets := [][]byte{}
	enc := func(h Header, m Message) {
		raw, err := Encode(h, m)
		if err != nil {
			t.Fatal(err)
		}
		seedPackets = append(seedPackets, raw)
	}
	enc(hdr(TypeHS1, s), &Handshake{Initiator: true, SigAnchor: d(s, 1), AckAnchor: d(s, 2), ChainLen: 16, Nonce: d(s, 3)})
	enc(hdr(TypeS1, s), &S1{Mode: ModeC, AuthIdx: 1, Auth: d(s, 1), KeyIdx: 2, MACs: [][]byte{d(s, 2), d(s, 3)}})
	enc(hdr(TypeA1, s), &A1{AuthIdx: 1, Auth: d(s, 1), KeyIdx: 2, PreAck: d(s, 2), PreNack: d(s, 3)})
	enc(hdr(TypeS2, s), &S2{Mode: ModeM, KeyIdx: 2, Key: d(s, 1), MsgIndex: 1, LeafCount: 4, Proof: [][]byte{d(s, 2), d(s, 3)}, Payload: []byte("p")})
	enc(hdr(TypeA2, s), &A2{Mode: ModeM, KeyIdx: 2, Key: d(s, 1), Ack: true, Secret: d(s, 2), Proof: [][]byte{d(s, 3)}, Other: d(s, 4), AMTLeaves: 2})

	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 5000; round++ {
		var b []byte
		if round%3 == 0 {
			b = make([]byte, rng.Intn(200))
			rng.Read(b)
		} else {
			seed := seedPackets[rng.Intn(len(seedPackets))]
			b = append([]byte(nil), seed...)
			for k := 0; k < 1+rng.Intn(8); k++ {
				b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
			}
			if rng.Intn(4) == 0 {
				b = b[:rng.Intn(len(b)+1)]
			}
		}
		// Must not panic; errors are fine. If it decodes, re-encoding
		// must succeed (parsed packets are well-formed by
		// construction).
		h, m, err := Decode(b)
		if err == nil {
			if _, err := Encode(h, m); err != nil {
				t.Fatalf("decoded packet failed to re-encode: %v", err)
			}
		}
	}
}

// TestQuickS2RoundTrip checks codec round-trips over randomized S2 fields.
func TestQuickS2RoundTrip(t *testing.T) {
	s := suite.SHA1()
	f := func(keyIdx, msgIdx uint32, payload []byte, seq uint32) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		h := Header{Type: TypeS2, Suite: s.ID(), Assoc: 1, Seq: seq}
		in := &S2{Mode: ModeBase, KeyIdx: keyIdx, Key: d(s, 1), MsgIndex: msgIdx, Payload: payload}
		raw, err := Encode(h, in)
		if err != nil {
			return false
		}
		gh, gm, err := Decode(raw)
		if err != nil {
			return false
		}
		out := gm.(*S2)
		if gh.Seq != seq || out.KeyIdx != keyIdx || out.MsgIndex != msgIdx {
			return false
		}
		if len(payload) == 0 {
			return len(out.Payload) == 0
		}
		return bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeAndModeStrings(t *testing.T) {
	if TypeS1.String() != "S1" || TypeA2.String() != "A2" || Type(99).String() == "" {
		t.Fatalf("Type.String broken")
	}
	if ModeBase.String() != "ALPHA" || ModeC.String() != "ALPHA-C" || ModeM.String() != "ALPHA-M" {
		t.Fatalf("Mode.String broken")
	}
}

func TestHeaderSizeConstant(t *testing.T) {
	s := suite.SHA1()
	raw, err := Encode(hdr(TypeA1, s), &A1{AuthIdx: 1, Auth: d(s, 1), KeyIdx: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Body of a plain A1: flags(1)+authIdx(4)+auth(20)+keyIdx(4) = 29.
	if len(raw) != HeaderSize+29 {
		t.Fatalf("encoded length %d, want %d", len(raw), HeaderSize+29)
	}
}

func BenchmarkEncodeS2(b *testing.B) {
	s := suite.SHA1()
	h := hdr(TypeS2, s)
	msg := &S2{Mode: ModeBase, KeyIdx: 2, Key: d(s, 1), Payload: bytes.Repeat([]byte{7}, 1024)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(h, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeS2(b *testing.B) {
	s := suite.SHA1()
	raw, _ := Encode(hdr(TypeS2, s), &S2{Mode: ModeBase, KeyIdx: 2, Key: d(s, 1), Payload: bytes.Repeat([]byte{7}, 1024)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
