// Package packet defines ALPHA's wire format: the handshake packets (HS1,
// HS2) that exchange hash chain anchors (§3.4 of the paper) and the four
// protocol packets of the signature exchange (§3.1-§3.3):
//
//	S1  announces pre-signatures keyed with an undisclosed chain element
//	A1  acknowledges the S1 and, in reliable mode, carries pre-(n)acks
//	S2  discloses the MAC key and the message(s)
//	A2  opens a pre-ack or pre-nack (reliable mode)
//
// Every packet starts with a fixed 20-byte header carrying the association
// identifier, the hash suite, and the exchange sequence number. Digest
// fields have no length prefix: their size is implied by the suite, which
// the decoder resolves from the header before parsing the body. Everything
// else is explicitly counted and bounds-checked.
package packet

import (
	"errors"
	"fmt"

	"alpha/internal/suite"
)

// Magic identifies ALPHA packets on the wire.
const Magic = 0xA1FA

// Version is the wire format version this package implements.
const Version = 1

// HeaderSize is the encoded size of the fixed header in bytes:
// magic(2) version(1) type(1) suite(1) flags(1) assoc(8) seq(4) reserved(1).
const HeaderSize = 19

// MaxPacketSize caps the size of any encoded packet the codec will emit or
// accept; generous enough for jumbo frames, small enough to bound parsing.
const MaxPacketSize = 64 << 10

// Type enumerates the ALPHA packet types.
type Type uint8

const (
	// TypeInvalid is the zero, invalid packet type.
	TypeInvalid Type = 0
	// TypeHS1 is the handshake initiator packet (anchors I → R).
	TypeHS1 Type = 1
	// TypeHS2 is the handshake responder packet (anchors R → I).
	TypeHS2 Type = 2
	// TypeS1 is the pre-signature announcement packet.
	TypeS1 Type = 3
	// TypeA1 is the acknowledgment of an S1.
	TypeA1 Type = 4
	// TypeS2 is the payload/disclosure packet.
	TypeS2 Type = 5
	// TypeA2 is the pre-(n)ack opening packet.
	TypeA2 Type = 6
)

// String returns the conventional packet-type name from the paper.
func (t Type) String() string {
	switch t {
	case TypeHS1:
		return "HS1"
	case TypeHS2:
		return "HS2"
	case TypeS1:
		return "S1"
	case TypeA1:
		return "A1"
	case TypeS2:
		return "S2"
	case TypeA2:
		return "A2"
	case TypeBundle:
		return "Bundle"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Mode selects the operational mode of a signature exchange (§3.3).
type Mode uint8

const (
	// ModeBase is the basic three-way exchange: one message per S1.
	ModeBase Mode = 0
	// ModeC is ALPHA-C: one S1 carries n cumulative pre-signatures.
	ModeC Mode = 1
	// ModeM is ALPHA-M: one S1 carries a Merkle tree root over n messages.
	ModeM Mode = 2
	// ModeCM combines C and M (§3.3.2, last paragraph): one S1 carries k
	// Merkle roots, each over n/k messages, trading k·h bytes of relay
	// buffer for log2(k) fewer proof hashes in every S2.
	ModeCM Mode = 3
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "ALPHA"
	case ModeC:
		return "ALPHA-C"
	case ModeM:
		return "ALPHA-M"
	case ModeCM:
		return "ALPHA-CM"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Header flags.
const (
	// FlagReliable requests pre-(n)acks for the exchange (§3.2.2).
	FlagReliable uint8 = 1 << 0
	// FlagProtected marks a handshake whose anchors carry an asymmetric
	// signature (§3.4).
	FlagProtected uint8 = 1 << 1
	// FlagToken marks a handshake whose body ends with a connect-token
	// field (the admission tier's versioned encoding: the flag gates the
	// field, so tokenless packets keep the original wire form).
	FlagToken uint8 = 1 << 3
)

// Header is the fixed per-packet header.
type Header struct {
	Type  Type
	Suite suite.ID
	Flags uint8
	// Assoc identifies the security association the packet belongs to.
	Assoc uint64
	// Seq is the exchange (batch) sequence number: every S1 opens a new
	// exchange, and the matching A1/S2/A2 packets echo its Seq.
	Seq uint32
}

// Message is any packet body that can be encoded under a Header.
type Message interface {
	// Type returns the packet type the body encodes as.
	Type() Type
	// encodeBody appends the body; h is the suite digest size.
	encodeBody(w *writer, h int) error
	// decodeBody parses the body; h is the suite digest size.
	decodeBody(r *reader, h int) error
}

// Errors returned by the top-level codec.
var (
	ErrBadMagic   = errors.New("packet: bad magic")
	ErrBadVersion = errors.New("packet: unsupported version")
	ErrBadType    = errors.New("packet: unknown packet type")
	ErrTrailing   = errors.New("packet: trailing bytes after body")
	ErrOversize   = errors.New("packet: exceeds maximum packet size")
)

// ParseError is the error type every failed Decode returns. It records
// which body the parser was inside (TypeInvalid while still in the fixed
// header) and how many bytes it had consumed, and wraps the underlying
// cause so errors.Is against the sentinels above keeps working. Endpoints
// and relays map any *ParseError onto the ReasonMalformed drop code, which
// is what ties hostile-input parse failures to the telemetry counters.
type ParseError struct {
	// PacketType is the body being parsed when decoding failed, or
	// TypeInvalid for failures in (or before) the fixed header.
	PacketType Type
	// Offset is the number of input bytes consumed before the failure.
	Offset int
	// Err is the underlying cause.
	Err error
}

func (e *ParseError) Error() string {
	if e.PacketType == TypeInvalid {
		return fmt.Sprintf("%v (offset %d)", e.Err, e.Offset)
	}
	return fmt.Sprintf("packet: decoding %v body: %v (offset %d)", e.PacketType, e.Err, e.Offset)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Encode serializes a header and body into a fresh buffer.
func Encode(hdr Header, msg Message) ([]byte, error) {
	if hdr.Type != msg.Type() {
		return nil, fmt.Errorf("packet: header type %v does not match body type %v", hdr.Type, msg.Type())
	}
	st, err := suite.ByID(hdr.Suite)
	if err != nil {
		return nil, err
	}
	w := &writer{buf: make([]byte, 0, 256)}
	w.u16(Magic)
	w.u8(Version)
	w.u8(uint8(hdr.Type))
	w.u8(uint8(hdr.Suite))
	w.u8(hdr.Flags)
	w.u64(hdr.Assoc)
	w.u32(hdr.Seq)
	// Filter cookie slot; zero until a transport stamps it (filter.go).
	w.u8(0)
	if err := msg.encodeBody(w, st.Size()); err != nil {
		return nil, err
	}
	if len(w.buf) > MaxPacketSize {
		return nil, ErrOversize
	}
	return w.buf, nil
}

// Decode parses a raw packet into its header and typed body. Every failure
// is reported as a *ParseError wrapping one of the sentinel errors (or a
// suite/body-level cause), so callers can both classify with errors.Is and
// extract parse position with errors.As.
func Decode(b []byte) (Header, Message, error) {
	if len(b) > MaxPacketSize {
		return Header{}, nil, &ParseError{Offset: 0, Err: ErrOversize}
	}
	r := &reader{buf: b}
	fail := func(t Type, err error) (Header, Message, error) {
		return Header{}, nil, &ParseError{PacketType: t, Offset: r.off, Err: err}
	}
	magic, err := r.u16()
	if err != nil {
		return fail(TypeInvalid, err)
	}
	if magic != Magic {
		return fail(TypeInvalid, ErrBadMagic)
	}
	ver, err := r.u8()
	if err != nil {
		return fail(TypeInvalid, err)
	}
	if ver != Version {
		return fail(TypeInvalid, ErrBadVersion)
	}
	var hdr Header
	t, err := r.u8()
	if err != nil {
		return fail(TypeInvalid, err)
	}
	hdr.Type = Type(t)
	sid, err := r.u8()
	if err != nil {
		return fail(TypeInvalid, err)
	}
	hdr.Suite = suite.ID(sid)
	if hdr.Flags, err = r.u8(); err != nil {
		return fail(TypeInvalid, err)
	}
	if hdr.Assoc, err = r.u64(); err != nil {
		return fail(TypeInvalid, err)
	}
	if hdr.Seq, err = r.u32(); err != nil {
		return fail(TypeInvalid, err)
	}
	// The trailing header byte is the filter cookie slot (see filter.go):
	// transports may overwrite it in flight with an address-bound hash, so
	// the decoder ignores its value. Encode still writes zero.
	if _, err = r.u8(); err != nil {
		return fail(TypeInvalid, err)
	}
	st, err := suite.ByID(hdr.Suite)
	if err != nil {
		return fail(TypeInvalid, err)
	}
	var msg Message
	switch hdr.Type {
	case TypeHS1:
		msg = &Handshake{Initiator: true, HasToken: hdr.Flags&FlagToken != 0}
	case TypeHS2:
		msg = &Handshake{HasToken: hdr.Flags&FlagToken != 0}
	case TypeS1:
		msg = &S1{}
	case TypeA1:
		msg = &A1{}
	case TypeS2:
		msg = &S2{}
	case TypeA2:
		msg = &A2{}
	case TypeBundle:
		msg = &Bundle{}
	default:
		return fail(TypeInvalid, ErrBadType)
	}
	if err := msg.decodeBody(r, st.Size()); err != nil {
		return fail(hdr.Type, err)
	}
	if r.remaining() != 0 {
		return fail(hdr.Type, ErrTrailing)
	}
	return hdr, msg, nil
}
