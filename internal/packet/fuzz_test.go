package packet

import (
	"errors"
	"testing"

	"alpha/internal/suite"
)

// FuzzParsePacket drives the wire parser with arbitrary bytes. Without
// -fuzz it runs the seed corpus (hand-built seeds below plus the netsim
// captures committed under testdata/fuzz/FuzzParsePacket) as a regression
// test; with `go test -fuzz=FuzzParsePacket` it explores mutations. The
// invariants: never panic, never accept trailing garbage, report every
// failure as a typed *ParseError, and anything that decodes must re-encode
// to exactly the input bytes (the wire form is canonical).
func FuzzParsePacket(f *testing.F) {
	s := suite.SHA1()
	d := func(seed byte) []byte {
		b := make([]byte, s.Size())
		for i := range b {
			b[i] = seed + byte(i)
		}
		return b
	}
	hdr := func(t Type) Header {
		return Header{Type: t, Suite: s.ID(), Flags: FlagReliable, Assoc: 42, Seq: 7}
	}
	seed := func(h Header, m Message) {
		raw, err := Encode(h, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	seed(hdr(TypeHS1), &Handshake{Initiator: true, SigAnchor: d(1), AckAnchor: d(2), ChainLen: 8, Nonce: d(3)})
	tokHdr := hdr(TypeHS1)
	tokHdr.Flags |= FlagToken
	tok := make([]byte, 88) // admission.TokenLen
	for i := range tok {
		tok[i] = byte(i * 3)
	}
	seed(tokHdr, &Handshake{Initiator: true, SigAnchor: d(1), AckAnchor: d(2), ChainLen: 8, Nonce: d(3), HasToken: true, Token: tok})
	seed(hdr(TypeS1), &S1{Mode: ModeC, AuthIdx: 1, Auth: d(1), KeyIdx: 2, MACs: [][]byte{d(2), d(3)}})
	seed(hdr(TypeS1), &S1{Mode: ModeM, AuthIdx: 1, Auth: d(1), KeyIdx: 2, LeafCount: 8, Root: d(4)})
	seed(hdr(TypeA1), &A1{AuthIdx: 1, Auth: d(1), KeyIdx: 2, PreAck: d(2), PreNack: d(3)})
	seed(hdr(TypeA1), &A1{AuthIdx: 1, Auth: d(1), KeyIdx: 2, AMTRoot: d(5), AMTLeaves: 4})
	seed(hdr(TypeS2), &S2{Mode: ModeM, KeyIdx: 2, Key: d(1), MsgIndex: 3, LeafCount: 8, Proof: [][]byte{d(2), d(3), d(4)}, Payload: []byte("payload")})
	seed(hdr(TypeA2), &A2{Mode: ModeM, KeyIdx: 2, Key: d(1), MsgIndex: 1, Ack: true, Secret: d(2), Proof: [][]byte{d(3)}, Other: d(4), AMTLeaves: 2})
	f.Add([]byte{})
	f.Add([]byte{0xA1, 0xFA})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, m, err := Decode(data)
		if err != nil {
			// The typed-error contract: every parse failure is a
			// *ParseError whose offset stays inside the input.
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Decode error is not a *ParseError: %T %v", err, err)
			}
			if pe.Offset < 0 || pe.Offset > len(data) {
				t.Fatalf("ParseError offset %d outside input of %d bytes", pe.Offset, len(data))
			}
			return
		}
		re, err := Encode(h, m)
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		// Canonical wire form: re-encoding a decoded packet reproduces
		// the input exactly (no redundant encodings survive Decode) —
		// except the filter-cookie byte, which transports stamp in flight
		// and Encode always zeroes (see filter.go).
		if len(re) != len(data) {
			t.Fatalf("re-encoded length %d != original %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] && i != CookieOffset {
				t.Fatalf("re-encoding differs at byte %d", i)
			}
		}
	})
}
