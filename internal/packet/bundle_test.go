package packet

import (
	"bytes"
	"testing"

	"alpha/internal/suite"
)

func encodedA1(t *testing.T, seq uint32) []byte {
	t.Helper()
	s := suite.SHA1()
	raw, err := Encode(Header{Type: TypeA1, Suite: s.ID(), Assoc: 9, Seq: seq},
		&A1{AuthIdx: 1, Auth: d(s, byte(seq)), KeyIdx: 2})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestBundleRoundTrip(t *testing.T) {
	raws := [][]byte{encodedA1(t, 1), encodedA1(t, 2), encodedA1(t, 3)}
	b, err := EncodeBundle(suite.IDSHA1, 9, FlagReliable, raws)
	if err != nil {
		t.Fatal(err)
	}
	hdr, msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type != TypeBundle || hdr.Assoc != 9 {
		t.Fatalf("header %+v", hdr)
	}
	got, ok := msg.(*Bundle)
	if !ok || len(got.Packets) != 3 {
		t.Fatalf("decoded %T with %d packets", msg, len(got.Packets))
	}
	for i := range raws {
		if !bytes.Equal(got.Packets[i], raws[i]) {
			t.Fatalf("sub-packet %d differs", i)
		}
		// Each sub-packet decodes on its own.
		if _, _, err := Decode(got.Packets[i]); err != nil {
			t.Fatalf("sub-packet %d undecodable: %v", i, err)
		}
	}
}

func TestBundleValidation(t *testing.T) {
	one := encodedA1(t, 1)
	if _, err := EncodeBundle(suite.IDSHA1, 9, 0, [][]byte{one}); err == nil {
		t.Fatalf("single-packet bundle accepted (pointless framing)")
	}
	if _, err := EncodeBundle(suite.IDSHA1, 9, 0, nil); err == nil {
		t.Fatalf("empty bundle accepted")
	}
	many := make([][]byte, MaxBundlePackets+1)
	for i := range many {
		many[i] = one
	}
	if _, err := EncodeBundle(suite.IDSHA1, 9, 0, many); err == nil {
		t.Fatalf("oversized bundle accepted")
	}
	if _, err := EncodeBundle(suite.IDSHA1, 9, 0, [][]byte{one, []byte("tiny")}); err == nil {
		t.Fatalf("truncated sub-packet accepted")
	}
	nested, err := EncodeBundle(suite.IDSHA1, 9, 0, [][]byte{one, one})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeBundle(suite.IDSHA1, 9, 0, [][]byte{nested, one}); err == nil {
		t.Fatalf("nested bundle accepted on encode")
	}
	// And a hand-crafted nested bundle must fail decode: splice the
	// nested bundle bytes into a frame.
	w := &writer{}
	w.u16(Magic)
	w.u8(Version)
	w.u8(uint8(TypeBundle))
	w.u8(uint8(suite.IDSHA1))
	w.u8(0)
	w.u64(9)
	w.u32(0)
	w.u8(0)
	w.u8(2)
	w.bytes16(nested)
	w.bytes16(one)
	if _, _, err := Decode(w.buf); err == nil {
		t.Fatalf("nested bundle accepted on decode")
	}
}

func TestBundleOverhead(t *testing.T) {
	raws := [][]byte{encodedA1(t, 1), encodedA1(t, 2)}
	b, err := EncodeBundle(suite.IDSHA1, 9, 0, raws)
	if err != nil {
		t.Fatal(err)
	}
	want := len(raws[0]) + len(raws[1]) + BundleOverhead(2)
	if len(b) != want {
		t.Fatalf("bundle size %d, want %d", len(b), want)
	}
}
