// Package attack provides adversary models for exercising ALPHA's security
// properties inside the simulator: on-path tampering, packet forgery,
// replay, reformatting, flooding, and the colluding bypass attack of §3.1.1
// of the paper. Each adversary is a netsim node that can be dropped into a
// topology in place of (or alongside) an honest relay.
//
// These are test instruments for evaluating a defensive protocol inside a
// closed simulation; they act only on simulated traffic.
package attack

import (
	"math/rand"
	"time"

	"alpha/internal/admission"
	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
)

// TamperNode is an on-path adversary that rewrites S2 payloads while
// forwarding everything else untouched — the packet-manipulation insider of
// §1 that end-to-end symmetric schemes cannot expose to relays.
type TamperNode struct {
	Name string
	// Replacement is the payload written into tampered S2 packets.
	Replacement []byte
	// Tampered counts rewritten packets.
	Tampered uint64
	// Limit stops tampering after this many packets when positive.
	Limit int
}

// NewTamperNode registers a tampering relay on the network.
func NewTamperNode(net *netsim.Network, name string, replacement []byte) *TamperNode {
	tn := &TamperNode{Name: name, Replacement: replacement}
	net.AddNode(name, tn)
	return tn
}

// Receive implements netsim.Handler.
func (tn *TamperNode) Receive(net *netsim.Network, now time.Time, pkt netsim.Packet) {
	hdr, msg, err := packet.Decode(pkt.Data)
	if err == nil && hdr.Type == packet.TypeS2 && (tn.Limit <= 0 || int(tn.Tampered) < tn.Limit) {
		s2 := msg.(*packet.S2)
		s2.Payload = append([]byte(nil), tn.Replacement...)
		if raw, err := packet.Encode(hdr, s2); err == nil {
			tn.Tampered++
			pkt.Data = raw
		}
	}
	_ = net.Forward(tn.Name, pkt)
}

// ReplayNode records passing packets and can replay them later.
type ReplayNode struct {
	Name     string
	Captured []netsim.Packet
	// Filter selects which packet types are captured; nil captures all.
	Filter map[packet.Type]bool
}

// NewReplayNode registers a capturing relay on the network.
func NewReplayNode(net *netsim.Network, name string, types ...packet.Type) *ReplayNode {
	rn := &ReplayNode{Name: name}
	if len(types) > 0 {
		rn.Filter = make(map[packet.Type]bool)
		for _, t := range types {
			rn.Filter[t] = true
		}
	}
	net.AddNode(name, rn)
	return rn
}

// Receive implements netsim.Handler: capture, then forward faithfully.
func (rn *ReplayNode) Receive(net *netsim.Network, now time.Time, pkt netsim.Packet) {
	hdr, _, err := packet.Decode(pkt.Data)
	if err == nil && (rn.Filter == nil || rn.Filter[hdr.Type]) {
		cp := pkt
		cp.Data = append([]byte(nil), pkt.Data...)
		rn.Captured = append(rn.Captured, cp)
	}
	_ = net.Forward(rn.Name, pkt)
}

// ReplayAll re-injects every captured packet toward its destination.
func (rn *ReplayNode) ReplayAll(net *netsim.Network) {
	for _, pkt := range rn.Captured {
		_ = net.Forward(rn.Name, pkt)
	}
}

// FloodNode injects forged traffic toward a victim at a configurable rate:
// the resource-exhaustion attacker of §1/§3.5.
type FloodNode struct {
	Name   string
	Victim string
	// Assoc is the association ID to forge packets for (0 = random junk).
	Assoc uint64
	// Kind selects the forged packet type (TypeS2 by default: unsolicited
	// payloads, the expensive kind).
	Kind packet.Type
	// PayloadSize sizes forged payloads.
	PayloadSize int
	// Sent counts injected packets.
	Sent uint64

	rng *rand.Rand
}

// NewFloodNode registers a flooding source.
func NewFloodNode(net *netsim.Network, name, victim string, assoc uint64) *FloodNode {
	fn := &FloodNode{Name: name, Victim: victim, Assoc: assoc, Kind: packet.TypeS2, PayloadSize: 512, rng: rand.New(rand.NewSource(0xF100D))}
	net.AddNode(name, fn)
	return fn
}

// Receive implements netsim.Handler (floods ignore incoming traffic).
func (fn *FloodNode) Receive(net *netsim.Network, now time.Time, pkt netsim.Packet) {}

// FloodFor schedules count forged packets spread over the given window.
func (fn *FloodNode) FloodFor(net *netsim.Network, start time.Time, window time.Duration, count int) {
	if count <= 0 {
		return
	}
	step := window / time.Duration(count)
	for i := 0; i < count; i++ {
		at := start.Add(time.Duration(i) * step)
		net.Schedule(at, func(now time.Time) {
			raw := fn.forge()
			fn.Sent++
			_ = net.Inject(fn.Name, fn.Victim, raw)
		})
	}
}

// forge builds a syntactically valid but cryptographically worthless packet.
func (fn *FloodNode) forge() []byte {
	h := packet.Header{
		Type:  fn.Kind,
		Suite: 1, // SHA-1
		Flags: core.FlagInitiator,
		Assoc: fn.Assoc,
		Seq:   fn.rng.Uint32(),
	}
	junk := make([]byte, 20)
	fn.rng.Read(junk)
	payload := make([]byte, fn.PayloadSize)
	fn.rng.Read(payload)
	var msg packet.Message
	switch fn.Kind {
	case packet.TypeS1:
		msg = &packet.S1{Mode: packet.ModeBase, AuthIdx: 1, Auth: junk, KeyIdx: 2, MACs: [][]byte{junk}}
	default:
		h.Type = packet.TypeS2
		msg = &packet.S2{Mode: packet.ModeBase, KeyIdx: 2, Key: junk, Payload: payload}
	}
	raw, err := packet.Encode(h, msg)
	if err != nil {
		return junk
	}
	return raw
}

// HSFloodMode selects the admission-evasion strategy of a handshake flood.
type HSFloodMode int

const (
	// HSTokenless sends HS1s carrying no connect token at all.
	HSTokenless HSFloodMode = iota
	// HSForgedToken attaches random bytes of the right token length.
	HSForgedToken
	// HSReplayedToken re-sends one captured legitimate token verbatim.
	HSReplayedToken
)

// HSFloodNode is the handshake-flood attacker the admission tier exists to
// stop: it sprays HS1 packets with fresh association IDs at a victim,
// trying to force per-handshake state (or signature verifications) into
// existence. Its three modes cover the evasion ladder — no token, a forged
// token, and a replayed legitimate token.
type HSFloodNode struct {
	Name   string
	Victim string
	Mode   HSFloodMode
	// Token is the captured token re-sent verbatim in HSReplayedToken mode.
	Token []byte
	// Sent counts injected handshakes.
	Sent uint64

	rng *rand.Rand
}

// NewHSFloodNode registers a handshake-flooding source.
func NewHSFloodNode(net *netsim.Network, name, victim string, mode HSFloodMode) *HSFloodNode {
	fn := &HSFloodNode{Name: name, Victim: victim, Mode: mode, rng: rand.New(rand.NewSource(0x45F100D))}
	net.AddNode(name, fn)
	return fn
}

// Receive implements netsim.Handler (floods ignore incoming traffic).
func (fn *HSFloodNode) Receive(net *netsim.Network, now time.Time, pkt netsim.Packet) {}

// FloodFor schedules count forged handshakes spread over the given window.
func (fn *HSFloodNode) FloodFor(net *netsim.Network, start time.Time, window time.Duration, count int) {
	if count <= 0 {
		return
	}
	step := window / time.Duration(count)
	for i := 0; i < count; i++ {
		at := start.Add(time.Duration(i) * step)
		net.Schedule(at, func(now time.Time) {
			raw := fn.forgeHS1()
			fn.Sent++
			_ = net.Inject(fn.Name, fn.Victim, raw)
		})
	}
}

// forgeHS1 builds a syntactically valid HS1 with junk anchors, a fresh
// association ID, and the mode's token (if any).
func (fn *HSFloodNode) forgeHS1() []byte {
	junk := make([]byte, 60)
	fn.rng.Read(junk)
	hs := &packet.Handshake{
		Initiator: true,
		SigAnchor: junk[:20],
		AckAnchor: junk[20:40],
		ChainLen:  64,
		Nonce:     junk[40:60],
	}
	h := packet.Header{
		Type:  packet.TypeHS1,
		Suite: 1, // SHA-1
		Flags: core.FlagInitiator,
		Assoc: fn.rng.Uint64(),
	}
	switch fn.Mode {
	case HSForgedToken:
		tok := make([]byte, admission.TokenLen)
		fn.rng.Read(tok)
		tok[0] = admission.TokenVersion
		hs.HasToken, hs.Token = true, tok
		h.Flags |= packet.FlagToken
	case HSReplayedToken:
		hs.HasToken, hs.Token = true, fn.Token
		h.Flags |= packet.FlagToken
	}
	raw, err := packet.Encode(h, hs)
	if err != nil {
		return junk
	}
	return raw
}

// BypassPair models the colluding bypass attack of §3.1.1: the upstream
// accomplice diverts signature traffic around a victim relay to a downstream
// accomplice, so the victim's view of the hash chain goes stale and it can
// later be fed replayed or forged exchange state. Install Upstream in the
// path before the victim; it tunnels selected packets directly to the node
// named Downstream (requires a link Upstream->Downstream in the topology).
type BypassPair struct {
	Name       string
	Victim     string // next hop on the honest path
	Downstream string // accomplice past the victim
	// Divert selects whether exchange traffic (S1/A1/S2/A2) is diverted;
	// handshakes always travel the honest path to stay inconspicuous.
	Divert   bool
	Diverted uint64
}

// NewBypassPair registers the upstream accomplice.
func NewBypassPair(net *netsim.Network, name, victim, downstream string) *BypassPair {
	bp := &BypassPair{Name: name, Victim: victim, Downstream: downstream, Divert: true}
	net.AddNode(name, bp)
	return bp
}

// Receive implements netsim.Handler: divert signature packets around the
// victim, forward everything else honestly. Traffic heading away from the
// victim (e.g. acknowledgments flowing back to the signer) is routed
// normally so the accomplice stays inconspicuous.
func (bp *BypassPair) Receive(net *netsim.Network, now time.Time, pkt netsim.Packet) {
	hop, ok := net.NextHop(bp.Name, pkt.Dest)
	if !ok {
		return
	}
	if hop != bp.Victim && hop != bp.Downstream {
		// Reverse-direction traffic: not our target, forward honestly.
		net.Transmit(netsim.Packet{From: bp.Name, To: hop, Origin: pkt.Origin, Dest: pkt.Dest, Data: pkt.Data})
		return
	}
	hdr, _, err := packet.Decode(pkt.Data)
	if err == nil && bp.Divert && hdr.Type != packet.TypeHS1 && hdr.Type != packet.TypeHS2 {
		bp.Diverted++
		net.Transmit(netsim.Packet{From: bp.Name, To: bp.Downstream, Origin: pkt.Origin, Dest: pkt.Dest, Data: pkt.Data})
		return
	}
	net.Transmit(netsim.Packet{From: bp.Name, To: bp.Victim, Origin: pkt.Origin, Dest: pkt.Dest, Data: pkt.Data})
}
