package attack

import (
	"testing"
	"time"

	"alpha/internal/admission"
	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
)

func admissionKey(b byte) admission.Key {
	var k admission.Key
	for i := range k {
		k[i] = b
	}
	return k
}

// floodRun builds s - gate - v with a bandwidth-limited gate->v hop, runs a
// fixed send schedule from s, and optionally aims an HS1 flood at v at ten
// times the legitimate packet rate. It returns the number of payloads v
// actually delivered in the window (the goodput figure the admission tier
// must keep flat) plus the gate for drop accounting.
func floodRun(t *testing.T, flood, admit bool) (goodput int, gate *netsim.AdmissionGate) {
	t.Helper()
	n := netsim.New(77)

	key := admissionKey(0x6C)
	issuer, err := admission.NewIssuer(1, key)
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := admission.NewVerifier(admission.VerifierConfig{
		Require: admit,
		Keys:    map[uint8]admission.Key{1: key},
		Window:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 256, RTO: 50 * time.Millisecond, FlushDelay: -1}
	dialCfg := cfg
	ip, port := netsim.SimAddr("s")
	dialCfg.TokenSource = func(sig, ack []byte) ([]byte, error) {
		return issuer.Mint(n.Now(), time.Minute, ip, port, sig, ack)
	}
	epS, err := core.NewEndpoint(dialCfg)
	if err != nil {
		t.Fatal(err)
	}
	epV, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.NewEndpointNode(n, "s", "v", epS)
	v := netsim.NewEndpointNode(n, "v", "s", epV)
	gate = netsim.NewAdmissionGate(n, "gate", verifier)

	n.AddDuplexLink("s", "gate", netsim.LinkConfig{Latency: time.Millisecond})
	// The victim-side hop is the scarce resource: enough for legitimate
	// traffic with headroom, nowhere near enough for a 10x flood.
	n.AddDuplexLink("gate", "v", netsim.LinkConfig{Latency: time.Millisecond, Bandwidth: 256_000})
	if flood {
		mal := NewHSFloodNode(n, "mallory", "v", HSTokenless)
		n.AddLink("mallory", "gate", netsim.LinkConfig{Latency: time.Millisecond})
		n.AddLink("gate", "mallory", netsim.LinkConfig{Latency: time.Millisecond})
		// Legitimate load below is ~100 gate->v packets over 2s; 10x that.
		mal.FloodFor(n, n.Now().Add(100*time.Millisecond), 2*time.Second, 2000)
	}
	n.AutoRoute()

	if err := s.Start(n.Now()); err != nil {
		t.Fatal(err)
	}
	n.RunFor(500 * time.Millisecond)
	if !epS.Established() {
		t.Fatal("handshake failed")
	}

	const sends = 50
	start := n.Now()
	for i := 0; i < sends; i++ {
		at := start.Add(time.Duration(i) * 40 * time.Millisecond)
		payload := []byte{byte(i)}
		n.Schedule(at, func(now time.Time) {
			if _, err := s.Send(now, payload); err != nil {
				return
			}
			s.Flush(now)
		})
	}
	n.RunFor(2*time.Second + 500*time.Millisecond)
	return len(v.DeliveredPayloads()), gate
}

func TestHSFloodGoodputFlatUnderAdmission(t *testing.T) {
	baseline, _ := floodRun(t, false, true)
	if baseline < 40 {
		t.Fatalf("baseline goodput %d too low for a meaningful flood comparison", baseline)
	}
	flooded, gate := floodRun(t, true, true)
	if gate.Rejected == 0 {
		t.Fatal("flood never reached the admission gate")
	}
	// The acceptance bar: legitimate goodput stays flat (within 10%) while
	// the victim is under a 10x token-less HS1 flood.
	low := baseline * 9 / 10
	if flooded < low {
		t.Fatalf("goodput degraded under flood: baseline=%d flooded=%d (floor %d)", baseline, flooded, low)
	}
	t.Logf("goodput baseline=%d flooded=%d rejected=%d", baseline, flooded, gate.Rejected)
}

func TestHSFloodCollapsesWithoutAdmission(t *testing.T) {
	// Control experiment: with the verifier waving token-less HS1s through
	// (Require=false), the same flood saturates the victim-side hop and
	// goodput craters. This is the damage the tentpole exists to prevent.
	baseline, _ := floodRun(t, false, true)
	open, _ := floodRun(t, true, false)
	if open >= baseline*9/10 {
		t.Fatalf("flood had no effect without admission (baseline=%d open=%d); the goodput-flat test proves nothing", baseline, open)
	}
	t.Logf("goodput baseline=%d without-admission=%d", baseline, open)
}

func TestHSFloodModesAllAccounted(t *testing.T) {
	n := netsim.New(31)
	key := admissionKey(0x2D)
	issuer, err := admission.NewIssuer(4, key)
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := admission.NewVerifier(admission.VerifierConfig{
		Require: true,
		Keys:    map[uint8]admission.Key{4: key},
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := netsim.NewAdmissionGate(n, "gate", verifier)
	victimHS1 := 0
	n.AddNode("v", netsim.HandlerFunc(func(_ *netsim.Network, _ time.Time, pkt netsim.Packet) {
		if len(pkt.Data) > 3 && packet.Type(pkt.Data[3]) == packet.TypeHS1 {
			victimHS1++
		}
	}))

	link := netsim.LinkConfig{Latency: time.Millisecond}
	none := NewHSFloodNode(n, "mal-none", "v", HSTokenless)
	forge := NewHSFloodNode(n, "mal-forge", "v", HSForgedToken)
	replay := NewHSFloodNode(n, "mal-replay", "v", HSReplayedToken)
	// The replayed token really is valid for the replaying node's address:
	// only the replay filter stands between it and admission.
	rip, rport := netsim.SimAddr("mal-replay")
	tok, err := issuer.Mint(n.Now(), time.Hour, rip, rport, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	replay.Token = tok
	for _, name := range []string{"mal-none", "mal-forge", "mal-replay"} {
		n.AddLink(name, "gate", link)
	}
	n.AddDuplexLink("gate", "v", link)
	n.AutoRoute()

	const each = 100
	none.FloodFor(n, n.Now(), time.Second, each)
	forge.FloodFor(n, n.Now(), time.Second, each)
	replay.FloodFor(n, n.Now(), time.Second, each)
	n.RunFor(2 * time.Second)

	m := verifier.Metrics()
	if got := m.Missing.Load(); got != each {
		t.Fatalf("drop_admission_missing = %d, want %d", got, each)
	}
	if got := m.Invalid.Load(); got != each {
		t.Fatalf("drop_admission_invalid = %d, want %d", got, each)
	}
	// The first replayed HS1 legitimately admits (valid token, right
	// address, first use); every later copy is a replay.
	if got := m.Replayed.Load(); got != each-1 {
		t.Fatalf("drop_admission_replayed = %d, want %d", got, each-1)
	}
	if gate.Admitted != 1 || victimHS1 != 1 {
		t.Fatalf("admitted %d, victim saw %d HS1s; want exactly the first replay", gate.Admitted, victimHS1)
	}
	// I3: the aggregate equals the sum of the per-reason counters, exactly.
	sum := m.Missing.Load() + m.Invalid.Load() + m.Expired.Load() +
		m.Replayed.Load() + m.AddrMismatch.Load()
	if got := m.Dropped.Load(); got != sum {
		t.Fatalf("dropped=%d but per-reason sum=%d", got, sum)
	}
}
