package attack

import (
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
)

// line builds s - mid - v with mid being the node under test.
func line(t *testing.T, seed int64, mid func(n *netsim.Network)) (*netsim.Network, *netsim.EndpointNode, *netsim.EndpointNode) {
	t.Helper()
	n := netsim.New(seed)
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 64, RTO: 50 * time.Millisecond}
	epS, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epV, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := netsim.NewEndpointNode(n, "s", "v", epS)
	v := netsim.NewEndpointNode(n, "v", "s", epV)
	mid(n)
	link := netsim.LinkConfig{Latency: time.Millisecond}
	n.AddDuplexLink("s", "mid", link)
	n.AddDuplexLink("mid", "v", link)
	n.AutoRoute()
	if err := s.Start(n.Now()); err != nil {
		t.Fatal(err)
	}
	n.RunFor(time.Second)
	if !epS.Established() {
		t.Fatal("no association")
	}
	return n, s, v
}

func TestTamperNodeRewritesS2(t *testing.T) {
	var tn *TamperNode
	n, s, v := line(t, 1, func(n *netsim.Network) {
		tn = NewTamperNode(n, "mid", []byte("evil"))
	})
	if _, err := s.Send(n.Now(), []byte("honest")); err != nil {
		t.Fatal(err)
	}
	s.Flush(n.Now())
	n.RunFor(time.Second)
	if tn.Tampered != 1 {
		t.Fatalf("tampered %d packets", tn.Tampered)
	}
	// The endpoint (verifier) detects the tamper end-to-end.
	if got := len(v.DeliveredPayloads()); got != 0 {
		t.Fatalf("tampered payload delivered")
	}
	if v.CountEvents(core.EventDropped) == 0 {
		t.Fatalf("verifier never flagged the tampered packet")
	}
}

func TestTamperNodeLimit(t *testing.T) {
	var tn *TamperNode
	n, s, v := line(t, 2, func(n *netsim.Network) {
		tn = NewTamperNode(n, "mid", []byte("evil"))
		tn.Limit = 1
	})
	for i := 0; i < 3; i++ {
		if _, err := s.Send(n.Now(), []byte("m")); err != nil {
			t.Fatal(err)
		}
		s.Flush(n.Now())
		n.RunFor(500 * time.Millisecond)
	}
	if tn.Tampered != 1 {
		t.Fatalf("limit ignored: %d", tn.Tampered)
	}
	if got := len(v.DeliveredPayloads()); got != 2 {
		t.Fatalf("delivered %d, want 2 (one tampered)", got)
	}
}

func TestReplayNodeCapturesAndFilters(t *testing.T) {
	var rn *ReplayNode
	n, s, _ := line(t, 3, func(n *netsim.Network) {
		rn = NewReplayNode(n, "mid", packet.TypeS2)
	})
	if _, err := s.Send(n.Now(), []byte("captured")); err != nil {
		t.Fatal(err)
	}
	s.Flush(n.Now())
	n.RunFor(time.Second)
	if len(rn.Captured) != 1 {
		t.Fatalf("captured %d packets, want 1 (S2 filter)", len(rn.Captured))
	}
	hdr, _, err := packet.Decode(rn.Captured[0].Data)
	if err != nil || hdr.Type != packet.TypeS2 {
		t.Fatalf("captured wrong type: %v", hdr.Type)
	}
}

func TestFloodNodeForgesParseablePackets(t *testing.T) {
	n := netsim.New(4)
	fn := NewFloodNode(n, "mallory", "victim", 0x1234)
	raw := fn.forge()
	hdr, _, err := packet.Decode(raw)
	if err != nil {
		t.Fatalf("forged packet must parse (it attacks the verifier, not the codec): %v", err)
	}
	if hdr.Assoc != 0x1234 {
		t.Fatalf("forged assoc %x", hdr.Assoc)
	}
}

func TestFloodForSchedulesCount(t *testing.T) {
	n := netsim.New(5)
	got := 0
	n.AddNode("victim", netsim.HandlerFunc(func(*netsim.Network, time.Time, netsim.Packet) { got++ }))
	fn := NewFloodNode(n, "mallory", "victim", 7)
	n.AddLink("mallory", "victim", netsim.LinkConfig{Latency: time.Millisecond})
	fn.FloodFor(n, n.Now(), time.Second, 50)
	n.RunFor(2 * time.Second)
	if fn.Sent != 50 || got != 50 {
		t.Fatalf("sent %d, delivered %d", fn.Sent, got)
	}
}

func TestBypassPairDivertsOnlyTargetTraffic(t *testing.T) {
	// Topology: s -> bp -> victim -> acc2 -> v, with a bp->acc2 tunnel.
	n := netsim.New(9)
	var victimSaw []packet.Type
	n.AddNode("s", netsim.HandlerFunc(func(*netsim.Network, time.Time, netsim.Packet) {}))
	n.AddNode("v", netsim.HandlerFunc(func(*netsim.Network, time.Time, netsim.Packet) {}))
	bp := NewBypassPair(n, "bp", "victim", "acc2")
	n.AddNode("victim", netsim.HandlerFunc(func(net *netsim.Network, now time.Time, pkt netsim.Packet) {
		if hdr, _, err := packet.Decode(pkt.Data); err == nil {
			victimSaw = append(victimSaw, hdr.Type)
		}
		net.Forward("victim", pkt)
	}))
	n.AddNode("acc2", netsim.HandlerFunc(func(net *netsim.Network, now time.Time, pkt netsim.Packet) {
		net.Forward("acc2", pkt)
	}))
	link := netsim.LinkConfig{Latency: time.Millisecond}
	for _, pair := range [][2]string{{"s", "bp"}, {"bp", "victim"}, {"victim", "acc2"}, {"acc2", "v"}} {
		n.AddDuplexLink(pair[0], pair[1], link)
	}
	n.AddLink("bp", "acc2", link)
	n.AutoRoute()

	// Craft one handshake-type and one S1-type packet toward v.
	cfg := core.Config{Mode: packet.ModeBase, ChainLen: 16}
	ep, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1, err := ep.StartHandshake(n.Now())
	if err != nil {
		t.Fatal(err)
	}
	n.Inject("s", "v", hs1)
	s1 := forgedS1(t, ep.Assoc())
	n.Inject("s", "v", s1)
	n.RunFor(time.Second)

	if bp.Diverted != 1 {
		t.Fatalf("diverted %d, want 1 (only the S1)", bp.Diverted)
	}
	// The victim saw the handshake but never the S1.
	sawHS, sawS1 := false, false
	for _, ty := range victimSaw {
		if ty == packet.TypeHS1 {
			sawHS = true
		}
		if ty == packet.TypeS1 {
			sawS1 = true
		}
	}
	if !sawHS || sawS1 {
		t.Fatalf("victim saw HS=%v S1=%v, want true/false", sawHS, sawS1)
	}
}

func forgedS1(t *testing.T, assoc uint64) []byte {
	t.Helper()
	junk := make([]byte, 20)
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeS1, Suite: 1, Flags: core.FlagInitiator, Assoc: assoc, Seq: 1,
	}, &packet.S1{Mode: packet.ModeBase, AuthIdx: 1, Auth: junk, KeyIdx: 2, MACs: [][]byte{junk}})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
