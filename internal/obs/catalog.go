package obs

import "alpha/internal/telemetry"

// ReasonEntry classifies one telemetry drop-reason code for the invariant
// checker: which exported counter accounts packets dropped for that reason,
// and whether a nonzero value is compatible with a benign schedule.
type ReasonEntry struct {
	// Code is the telemetry.Reason* constant.
	Code uint32
	// Name must equal telemetry.ReasonString(Code).
	Name string
	// Counter is the exported counter sample (sans family prefix) that
	// accounts this reason; empty means the conventional "drop_"+Name.
	Counter string
	// Hostile marks reasons that can only fire under attack or corruption:
	// I2 asserts their counters stay zero on benign schedules.
	Hostile bool
}

// CounterName resolves the entry's exported counter sample name.
func (e ReasonEntry) CounterName() string {
	if e.Counter != "" {
		return e.Counter
	}
	return "drop_" + e.Name
}

// ReasonCatalog is the single authoritative map from telemetry drop-reason
// codes to exported counters and benign/hostile classification. The I2 and
// I3 invariants derive from it, and the alphavet reasonsync analyzer keeps
// it in lockstep with the telemetry package: every Reason* constant must
// appear here (and in ReasonString), every entry must point at a counter
// some metric family actually exports, and names must agree — drift in
// either direction is a build failure in CI.
var ReasonCatalog = []ReasonEntry{
	// Endpoint reasons (codes 1–15, EndpointMetrics.DropReasons).
	{Code: telemetry.ReasonMalformed, Name: "malformed", Hostile: true},
	{Code: telemetry.ReasonUnknownAssoc, Name: "unknown_assoc"},
	{Code: telemetry.ReasonRateLimited, Name: "rate_limited"},
	{Code: telemetry.ReasonBadElement, Name: "bad_element", Hostile: true},
	{Code: telemetry.ReasonBadPayload, Name: "bad_payload", Hostile: true},
	{Code: telemetry.ReasonBadAck, Name: "bad_ack", Hostile: true},
	{Code: telemetry.ReasonUnsolicited, Name: "unsolicited"},
	{Code: telemetry.ReasonOversized, Name: "oversized"},
	{Code: telemetry.ReasonStrictPolicy, Name: "strict_policy"},
	{Code: telemetry.ReasonNotEstablished, Name: "not_established"},
	{Code: telemetry.ReasonBadDirection, Name: "bad_direction"},
	// A garbled handshake can result from benign reordering across a
	// rekey, so bad_handshake is not hostile.
	{Code: telemetry.ReasonBadHandshake, Name: "bad_handshake"},
	{Code: telemetry.ReasonSuiteMismatch, Name: "suite_mismatch"},
	{Code: telemetry.ReasonChainExhausted, Name: "chain_exhausted"},
	{Code: telemetry.ReasonInboxFull, Name: "inbox_full"},

	// Transport reasons (pre-endpoint drop paths of the UDP server).
	{Code: telemetry.ReasonPrefilter, Name: "prefilter"},
	{Code: telemetry.ReasonAcceptBacklog, Name: "accept_backlog"},
	// Generation rotation retires idle associations; this is lifecycle,
	// not a drop_ family, so the counter name is irregular.
	{Code: telemetry.ReasonExpired, Name: "expired", Counter: "sessions_expired"},
	{Code: telemetry.ReasonS1RateLimit, Name: "s1_ratelimit"},

	// Admission reasons (connect-token stage). Missing and expired are
	// excluded from the hostile set: clock skew or a Require rollout can
	// produce them benignly.
	{Code: telemetry.ReasonAdmissionMissing, Name: "admission_missing"},
	{Code: telemetry.ReasonAdmissionInvalid, Name: "admission_invalid", Hostile: true},
	{Code: telemetry.ReasonAdmissionExpired, Name: "admission_expired"},
	{Code: telemetry.ReasonAdmissionReplayed, Name: "admission_replayed", Hostile: true},
	{Code: telemetry.ReasonAdmissionAddrMismatch, Name: "admission_addr_mismatch", Hostile: true},
}
