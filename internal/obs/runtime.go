// Go runtime health in the alpha namespace: GC pauses, scheduler latency,
// heap size and goroutine count read from runtime/metrics at scrape time.

package obs

import (
	"math"
	"runtime/metrics"

	"alpha/internal/telemetry"
)

// runtimeSamples is the fixed sample set walkRuntime reads. Declared once
// so a scrape allocates only the runtime's own snapshot storage.
var runtimeSamples = []string{
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/gc/cycles/total:gc-cycles",
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
}

// RegisterRuntime adds an "alpha_go" metric group to the exporter: GC
// pause p50/p99 and totals, scheduler latency p50/p99, heap bytes, and
// goroutine count. Reading happens at scrape time only — the hot path is
// untouched.
func RegisterRuntime(exp *telemetry.Exporter) {
	exp.Register("alpha_go", telemetry.WalkerFunc(walkRuntime))
}

func walkRuntime(v telemetry.Visitor) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/gc/pauses:seconds":
			emitLatency(v, "gc_pause", s.Value)
		case "/sched/latencies:seconds":
			emitLatency(v, "sched_latency", s.Value)
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				v.Counter("gc_cycles", s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				v.Gauge("heap_objects_bytes", int64(s.Value.Uint64()))
			}
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				v.Gauge("goroutines", int64(s.Value.Uint64()))
			}
		}
	}
}

// emitLatency renders a runtime float-seconds histogram as count plus
// p50/p99 nanosecond gauges.
func emitLatency(v telemetry.Visitor, name string, val metrics.Value) {
	if val.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := val.Float64Histogram()
	var count uint64
	for _, c := range h.Counts {
		count += c
	}
	v.Counter(name+"_count", count)
	v.Gauge(name+"_p50_ns", int64(histQuantile(h, 0.50)*1e9))
	v.Gauge(name+"_p99_ns", int64(histQuantile(h, 0.99)*1e9))
}

// histQuantile approximates a quantile of a runtime float histogram by the
// upper bound of the bucket the quantile falls in (0 for an empty
// histogram; the largest finite bound when the quantile lands in the +Inf
// overflow bucket).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
