package obs

import (
	"testing"
	"time"

	"alpha/internal/admission"
	"alpha/internal/telemetry"
)

// TestAdmissionFamilySatisfiesI3 drives a real verifier through every
// rejection reason plus a flood of token-less HS1s, exports the family the
// way alphanode does, and runs the invariant checker: the aggregate drop
// counter must equal the per-reason sum exactly (I3), with no I2 noise
// since hostile traffic is not a benign run.
func TestAdmissionFamilySatisfiesI3(t *testing.T) {
	var key admission.Key
	for i := range key {
		key[i] = 0x31
	}
	issuer, err := admission.NewIssuer(2, key)
	if err != nil {
		t.Fatal(err)
	}
	v, err := admission.NewVerifier(admission.VerifierConfig{
		Require: true,
		Keys:    map[uint8]admission.Key{2: key},
	})
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(9000, 0)
	ip := []byte{192, 0, 2, 7}
	tok, err := issuer.Mint(now, time.Minute, ip, 4242, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One accept, then one rejection of every kind.
	if !v.Admit(now, tok, ip, 4242, nil, nil).OK {
		t.Fatal("minted token rejected")
	}
	v.Admit(now, nil, ip, 4242, nil, nil)                        // missing
	v.Admit(now, tok, ip, 4242, nil, nil)                        // replayed
	v.Admit(now, tok[:admission.TokenLen-1], ip, 4242, nil, nil) // invalid
	tok2, err := issuer.Mint(now, time.Second, ip, 4242, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.Admit(now.Add(time.Hour), tok2, ip, 4242, nil, nil) // expired
	tok3, err := issuer.Mint(now, time.Minute, ip, 4242, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.Admit(now, tok3, []byte{192, 0, 2, 8}, 4242, nil, nil) // addr mismatch
	// A token-less flood on top, to make the aggregate interesting.
	for i := 0; i < 500; i++ {
		v.Admit(now, nil, ip, 4242, nil, nil)
	}

	exp := telemetry.NewExporter()
	exp.Register("alpha_admission", v.Metrics())
	snap, counters, err := Collect(exp)
	if err != nil {
		t.Fatal(err)
	}
	if !counters["alpha_admission_dropped"] {
		t.Fatal("alpha_admission_dropped not exported as a counter")
	}
	for _, reason := range []string{"missing", "invalid", "expired", "replayed", "addr_mismatch"} {
		name := "alpha_admission_drop_admission_" + reason
		if got, ok := snap[name]; !ok || got == 0 {
			t.Fatalf("%s missing or zero in scrape: %d", name, got)
		}
	}
	if v := (Invariants{}).Check(snap); len(v) != 0 {
		t.Fatalf("admission family under flood violates invariants: %+v", v)
	}
	// And the checker has teeth for this family: understate one reason
	// counter and I3 must fire.
	snap["alpha_admission_drop_admission_missing"] -= 1
	violations := (Invariants{}).Check(snap)
	found := false
	for _, violation := range violations {
		if violation.Rule == "I3-drop-budget" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tampered admission snapshot passed I3: %+v", violations)
	}
}

// TestI2CatalogsHostileAdmissionReasons pins which admission drop reasons
// count as verify failures for the benign-run invariant: forged, replayed
// and wrong-address tokens can only come from hostile traffic, while
// missing and expired tokens happen in healthy deployments (rollouts,
// clock skew) and must not trip I2.
func TestI2CatalogsHostileAdmissionReasons(t *testing.T) {
	hostile := []string{"invalid", "replayed", "addr_mismatch"}
	for _, reason := range hostile {
		snap := MetricSnapshot{
			"alpha_admission_dropped":                  1,
			"alpha_admission_drop_admission_" + reason: 1,
		}
		violations := (Invariants{Benign: true}).Check(snap)
		found := false
		for _, v := range violations {
			if v.Rule == "I2-benign-clean" {
				found = true
			}
		}
		if !found {
			t.Fatalf("benign run with drop_admission_%s did not violate I2", reason)
		}
	}
	for _, reason := range []string{"missing", "expired"} {
		snap := MetricSnapshot{
			"alpha_admission_dropped":                  1,
			"alpha_admission_drop_admission_" + reason: 1,
		}
		for _, v := range (Invariants{Benign: true}).Check(snap) {
			if v.Rule == "I2-benign-clean" {
				t.Fatalf("drop_admission_%s wrongly catalogued as hostile-only", reason)
			}
		}
	}
}
