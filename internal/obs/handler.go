// HTTP surface: the telemetry exporter's /metrics and /trace plus the
// flight recorder's /flight and the Go runtime's /debug/pprof, in one
// handler for the CLIs' -metrics-addr listener.

package obs

import (
	"net/http"
	"net/http/pprof"

	"alpha/internal/telemetry"
)

// Handler serves the full observability surface:
//
//	/metrics       Prometheus text (?format=json for expvar-style JSON)
//	/trace         packet-lifecycle trace ring
//	/flight        flight-recorder index (?assoc= for one association)
//	/debug/pprof/  the standard Go profiling endpoints
//
// rec may be nil (no /flight route).
func Handler(exp *telemetry.Exporter, rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", exp.Handler())
	if rec != nil {
		mux.Handle("/flight", rec)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
