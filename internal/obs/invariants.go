// Telemetry invariant checker: the metric families of PRs 2–6 turned into
// enforced contracts. Netsim scenarios, the fuzzers' companion tests, and
// the CI live-smoke job all run the same checks against either a live
// exporter or a scraped /metrics body.
//
// Invariant catalog (DESIGN.md §5i):
//
//	I1 monotonicity   counters never decrease between snapshots
//	I2 benign-clean   under benign schedules no verification ever fails
//	I3 drop-budget    every dropped packet carries a reason: for each
//	                  family, dropped == Σ drop_<reason>
//	I4 conservation   flow accounting holds: delivered ≤ recv_s2,
//	                  transport datagrams cover their classified drops,
//	                  and total drops stay within the offered×loss bound
package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"alpha/internal/telemetry"
)

// MetricSnapshot is a flat scrape: full sample name (labels included) to
// value. Gauges that happened to be negative at scrape time are omitted —
// no invariant consumes them.
type MetricSnapshot map[string]uint64

// Violation is one failed invariant.
type Violation struct {
	Rule   string // I1..I4 plus a short slug
	Metric string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Rule, v.Metric, v.Detail)
}

// ParsePrometheus parses a Prometheus text exposition into a snapshot plus
// the set of counter-semantics sample names (counters, and histogram
// _bucket/_count/_sum series, which are cumulative too) for monotonicity
// checking.
func ParsePrometheus(r io.Reader) (MetricSnapshot, map[string]bool, error) {
	snap := make(MetricSnapshot)
	counters := make(map[string]bool)
	types := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad sample %q: %v", line, err)
		}
		if val < 0 {
			continue
		}
		snap[name] = uint64(val)
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		switch {
		case types[base] == "counter":
			counters[name] = true
		case types[base] == "histogram",
			types[strings.TrimSuffix(base, "_bucket")] == "histogram",
			types[strings.TrimSuffix(base, "_count")] == "histogram",
			types[strings.TrimSuffix(base, "_sum")] == "histogram":
			counters[name] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return snap, counters, nil
}

// Collect renders the exporter as Prometheus text and parses it back —
// one code path whether the checker runs in-process or against a scrape.
func Collect(exp *telemetry.Exporter) (MetricSnapshot, map[string]bool, error) {
	var b bytes.Buffer
	if err := exp.WritePrometheus(&b); err != nil {
		return nil, nil, err
	}
	return ParsePrometheus(&b)
}

// Invariants configures a check run. The zero value checks only the
// structural rules (I3, I4 flow accounting); set Benign for attack-free
// schedules and Offered/Loss/Hops to bound total drops.
type Invariants struct {
	// Benign asserts the schedule contained no attacker: any
	// verification-failure counter > 0 is a violation (I2).
	Benign bool
	// Offered is the number of protocol packets offered to the path. With
	// Loss and Hops it bounds total counted drops (I4); 0 disables the
	// bound.
	Offered uint64
	// Loss is the per-hop loss probability of the schedule.
	Loss float64
	// Hops is the number of links on the path (sender→receiver).
	Hops int
	// MaxDrops, when nonzero, overrides the derived drop bound.
	MaxDrops uint64
}

// verifyFailSuffixes are the counters that must stay zero under benign
// schedules: a nonzero value means some hop saw cryptographically invalid
// traffic. The set is derived from the Hostile entries of ReasonCatalog, so
// classifying a reason there is the single switch that arms I2 for it.
var verifyFailSuffixes = hostileSuffixes()

func hostileSuffixes() []string {
	var out []string
	for _, e := range ReasonCatalog {
		if e.Hostile {
			out = append(out, "_"+e.CounterName())
		}
	}
	return out
}

// dropBound derives the I4 ceiling on counted drops. Each lost packet can
// cost more than one counted drop downstream (a lost A1 forces an S1
// retransmit whose duplicate is dropped on arrival), so the bound is
// deliberately loose: 4 counted drops per expected loss event, plus slack
// for boundary effects on lossy schedules.
func (inv Invariants) dropBound() (uint64, bool) {
	if inv.MaxDrops != 0 {
		return inv.MaxDrops, true
	}
	if inv.Offered == 0 {
		return 0, false
	}
	if inv.Loss == 0 {
		// Lossless: nothing should ever be dropped.
		return 0, true
	}
	hops := inv.Hops
	if hops < 1 {
		hops = 1
	}
	expected := float64(inv.Offered) * inv.Loss * float64(hops)
	return uint64(expected*4) + 32, true
}

// Check runs the single-snapshot rules (I2, I3, I4) and returns every
// violation found. An empty result means the snapshot honours its
// contracts.
func (inv Invariants) Check(snap MetricSnapshot) []Violation {
	var out []Violation
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)

	// I2: benign schedules never fail verification.
	if inv.Benign {
		for _, n := range names {
			for _, suf := range verifyFailSuffixes {
				if sampleBase(n) != "" && strings.HasSuffix(sampleBase(n), suf) && snap[n] > 0 {
					out = append(out, Violation{
						Rule:   "I2-benign-clean",
						Metric: n,
						Detail: fmt.Sprintf("%d verification failures under a benign schedule", snap[n]),
					})
				}
			}
		}
	}

	// I3: for every family exposing reason-coded drop counters, the
	// aggregate dropped counter equals the sum of its reasons.
	for _, n := range names {
		base, labels := splitSample(n)
		if !strings.HasSuffix(base, "_dropped") {
			continue
		}
		family := strings.TrimSuffix(base, "_dropped")
		var sum uint64
		var reasons int
		for _, m := range names {
			mb, ml := splitSample(m)
			if ml == labels && strings.HasPrefix(mb, family+"_drop_") {
				sum += snap[m]
				reasons++
			}
		}
		if reasons > 0 && sum != snap[n] {
			out = append(out, Violation{
				Rule:   "I3-drop-budget",
				Metric: n,
				Detail: fmt.Sprintf("dropped=%d but Σ drop_<reason>=%d across %d reasons", snap[n], sum, reasons),
			})
		}
	}

	// I4a: an endpoint cannot deliver more than it received.
	for _, n := range names {
		base, labels := splitSample(n)
		if !strings.HasSuffix(base, "_delivered") {
			continue
		}
		family := strings.TrimSuffix(base, "_delivered")
		if recv, ok := snap[joinSample(family+"_recv_s2", labels)]; ok && snap[n] > recv {
			out = append(out, Violation{
				Rule:   "I4-conservation",
				Metric: n,
				Detail: fmt.Sprintf("delivered=%d exceeds recv_s2=%d", snap[n], recv),
			})
		}
	}

	// I4b: transport datagram counts cover the drops they classified.
	for _, n := range names {
		base, labels := splitSample(n)
		if !strings.HasSuffix(base, "_datagrams") {
			continue
		}
		family := strings.TrimSuffix(base, "_datagrams")
		var classified uint64
		for _, suf := range []string{"_inbox_drops", "_unknown_assoc_drops", "_short_datagrams", "_unknown_peer_drops"} {
			classified += snap[joinSample(family+suf, labels)]
		}
		if classified > snap[n] {
			out = append(out, Violation{
				Rule:   "I4-conservation",
				Metric: n,
				Detail: fmt.Sprintf("classified drops %d exceed datagrams %d", classified, snap[n]),
			})
		}
	}

	// I4c: total counted drops stay within the offered×loss bound.
	if bound, ok := inv.dropBound(); ok {
		var total uint64
		for _, n := range names {
			base, _ := splitSample(n)
			if strings.HasSuffix(base, "_dropped") || strings.HasSuffix(base, "_inbox_drops") {
				total += snap[n]
			}
		}
		if total > bound {
			out = append(out, Violation{
				Rule:   "I4-drop-bound",
				Metric: "(total)",
				Detail: fmt.Sprintf("%d counted drops exceed bound %d (offered=%d loss=%.3f hops=%d)", total, bound, inv.Offered, inv.Loss, inv.Hops),
			})
		}
	}
	return out
}

// Monotonic runs I1 between two snapshots of the same process: no
// counter-semantics sample may decrease. counters comes from
// ParsePrometheus/Collect on the *current* snapshot; samples absent from
// either snapshot are skipped (labeled families come and go with churn).
func Monotonic(prev, cur MetricSnapshot, counters map[string]bool) []Violation {
	var out []Violation
	names := make([]string, 0, len(prev))
	for n := range prev {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !counters[n] {
			continue
		}
		c, ok := cur[n]
		if !ok {
			continue
		}
		if c < prev[n] {
			out = append(out, Violation{
				Rule:   "I1-monotonic",
				Metric: n,
				Detail: fmt.Sprintf("counter went backwards: %d -> %d", prev[n], c),
			})
		}
	}
	return out
}

// splitSample separates a sample name into its unlabeled base and label
// block ("" when unlabeled).
func splitSample(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

func sampleBase(name string) string {
	base, _ := splitSample(name)
	return base
}

func joinSample(base, labels string) string { return base + labels }
