package obs

import (
	"strings"
	"testing"

	"alpha/internal/telemetry"
)

const sampleScrape = `# HELP alpha_endpoint_sent_s1 cumulative count
# TYPE alpha_endpoint_sent_s1 counter
alpha_endpoint_sent_s1 10
# TYPE alpha_endpoint_dropped counter
alpha_endpoint_dropped 3
# TYPE alpha_endpoint_drop_malformed counter
alpha_endpoint_drop_malformed 1
# TYPE alpha_endpoint_drop_unsolicited counter
alpha_endpoint_drop_unsolicited 2
# TYPE alpha_endpoint_chain_remaining gauge
alpha_endpoint_chain_remaining 42
# TYPE alpha_endpoint_verify_ns histogram
alpha_endpoint_verify_ns_bucket{le="1000"} 5
alpha_endpoint_verify_ns_sum 2048
alpha_endpoint_verify_ns_count 5
`

func TestParsePrometheus(t *testing.T) {
	snap, counters, err := ParsePrometheus(strings.NewReader(sampleScrape))
	if err != nil {
		t.Fatal(err)
	}
	if snap["alpha_endpoint_sent_s1"] != 10 {
		t.Fatalf("sent_s1 = %d", snap["alpha_endpoint_sent_s1"])
	}
	if snap["alpha_endpoint_dropped"] != 3 {
		t.Fatalf("dropped = %d", snap["alpha_endpoint_dropped"])
	}
	if !counters["alpha_endpoint_sent_s1"] {
		t.Fatal("counter TYPE not tracked")
	}
	if counters["alpha_endpoint_chain_remaining"] {
		t.Fatal("gauge must not have counter semantics")
	}
	if !counters[`alpha_endpoint_verify_ns_bucket{le="1000"}`] || !counters["alpha_endpoint_verify_ns_count"] {
		t.Fatal("histogram series are cumulative and must count as counters")
	}
}

func TestCheckCleanSnapshot(t *testing.T) {
	snap, _, err := ParsePrometheus(strings.NewReader(sampleScrape))
	if err != nil {
		t.Fatal(err)
	}
	inv := Invariants{Benign: false}
	if v := inv.Check(snap); len(v) != 0 {
		t.Fatalf("clean snapshot violated: %+v", v)
	}
}

func TestCheckI2BenignVerifyFail(t *testing.T) {
	snap := MetricSnapshot{
		"alpha_endpoint_dropped":          1,
		"alpha_endpoint_drop_bad_payload": 1,
	}
	v := (Invariants{Benign: true}).Check(snap)
	if len(v) == 0 {
		t.Fatal("benign run with verify failures must violate I2")
	}
	if v[0].Rule != "I2-benign-clean" {
		t.Fatalf("rule = %s, want I2-benign-clean", v[0].Rule)
	}
	// The same snapshot under an adversarial schedule is fine.
	if v := (Invariants{Benign: false}).Check(snap); len(v) != 0 {
		t.Fatalf("adversarial schedule should accept verify fails: %+v", v)
	}
}

func TestCheckI3DropBudget(t *testing.T) {
	// drop_ sum (4) != dropped (3).
	snap := MetricSnapshot{
		"alpha_relay_dropped":          3,
		"alpha_relay_drop_malformed":   2,
		"alpha_relay_drop_unsolicited": 2,
	}
	v := (Invariants{}).Check(snap)
	if len(v) != 1 || v[0].Rule != "I3-drop-budget" {
		t.Fatalf("unbalanced drop family: got %+v, want one I3-drop-budget", v)
	}
	// Labeled families are matched label-for-label, not cross-bled.
	labeled := MetricSnapshot{
		`alpha_relay_dropped{assoc="a"}`:        2,
		`alpha_relay_drop_malformed{assoc="a"}`: 2,
		`alpha_relay_dropped{assoc="b"}`:        1,
		`alpha_relay_drop_malformed{assoc="b"}`: 1,
	}
	if v := (Invariants{}).Check(labeled); len(v) != 0 {
		t.Fatalf("labeled families flagged: %+v", v)
	}
}

func TestCheckI4Conservation(t *testing.T) {
	snap := MetricSnapshot{
		"alpha_endpoint_delivered": 9,
		"alpha_endpoint_recv_s2":   5,
	}
	v := (Invariants{}).Check(snap)
	if len(v) != 1 || v[0].Rule != "I4-conservation" {
		t.Fatalf("delivered > recv_s2: got %+v, want one I4-conservation", v)
	}
	snap["alpha_endpoint_recv_s2"] = 9
	if v := (Invariants{}).Check(snap); len(v) != 0 {
		t.Fatalf("balanced flow flagged: %+v", v)
	}

	transport := MetricSnapshot{
		"alpha_transport_datagrams":   10,
		"alpha_transport_inbox_drops": 20,
	}
	v = (Invariants{}).Check(transport)
	if len(v) != 1 || v[0].Rule != "I4-conservation" {
		t.Fatalf("classified drops > datagrams: got %+v", v)
	}
}

func TestCheckI4DropBound(t *testing.T) {
	snap := MetricSnapshot{
		"alpha_relay_dropped":          500,
		"alpha_relay_drop_unsolicited": 500,
	}
	inv := Invariants{Offered: 100, Loss: 0.1, Hops: 2, Benign: false}
	v := inv.Check(snap)
	if len(v) != 1 || v[0].Rule != "I4-drop-bound" {
		t.Fatalf("500 drops on 100 offered at 10%% loss: got %+v, want I4-drop-bound", v)
	}
	// Within budget passes.
	snap["alpha_relay_dropped"] = 50
	snap["alpha_relay_drop_unsolicited"] = 50
	if v := inv.Check(snap); len(v) != 0 {
		t.Fatalf("within-budget drops flagged: %+v", v)
	}
	// Lossless schedules allow no drops at all.
	lossless := Invariants{Offered: 100, Loss: 0}
	if v := lossless.Check(snap); len(v) != 1 {
		t.Fatalf("drops on a lossless schedule must violate: %+v", v)
	}
	// MaxDrops overrides the derived bound.
	if v := (Invariants{Offered: 100, Loss: 0, MaxDrops: 1000}).Check(snap); len(v) != 0 {
		t.Fatalf("MaxDrops override ignored: %+v", v)
	}
}

func TestMonotonic(t *testing.T) {
	counters := map[string]bool{"alpha_endpoint_sent_s1": true, "alpha_endpoint_dropped": true}
	prev := MetricSnapshot{"alpha_endpoint_sent_s1": 5, "alpha_endpoint_dropped": 1}
	cur := MetricSnapshot{"alpha_endpoint_sent_s1": 9, "alpha_endpoint_dropped": 1}
	if v := Monotonic(prev, cur, counters); len(v) != 0 {
		t.Fatalf("nondecreasing counters flagged: %+v", v)
	}
	cur["alpha_endpoint_sent_s1"] = 4
	v := Monotonic(prev, cur, counters)
	if len(v) != 1 || v[0].Rule != "I1-monotonic" {
		t.Fatalf("regressed counter must violate I1, got %+v", v)
	}
	// Gauges may regress freely; vanished labeled samples are skipped.
	cur["alpha_endpoint_gauge"] = 0
	prev["alpha_endpoint_gauge"] = 10
	delete(cur, "alpha_endpoint_dropped")
	if v := Monotonic(prev, cur, counters); len(v) != 1 {
		t.Fatalf("only the counter regression should flag: %+v", v)
	}
}

func TestCollect(t *testing.T) {
	exp := telemetry.NewExporter()
	m := telemetry.NewEndpointMetrics()
	m.SentS1.Add(7)
	m.NoteDrop(telemetry.ReasonMalformed)
	exp.Register("alpha_endpoint", m)
	snap, counters, err := Collect(exp)
	if err != nil {
		t.Fatal(err)
	}
	if snap["alpha_endpoint_sent_s1"] != 7 {
		t.Fatalf("collected sent_s1 = %d", snap["alpha_endpoint_sent_s1"])
	}
	if !counters["alpha_endpoint_dropped"] {
		t.Fatal("collected counter set missing dropped")
	}
	// Live exporter honours I3 exactly: NoteDrop bumps both families.
	if v := (Invariants{}).Check(snap); len(v) != 0 {
		t.Fatalf("live exporter snapshot violated: %+v", v)
	}
}
