// Package obs is the hop-by-hop observability layer built on top of
// internal/telemetry: fixed-size exchange span records emitted at every
// core/relay/udptransport decision point, a per-association flight
// recorder with dump-on-anomaly triggers, a telemetry invariant checker,
// and (behind the alpha_otlp build tag) an OTLP export bridge.
//
// ALPHA's security argument is per-hop — every relay verifies before
// forwarding (§3) — but flat process-wide counters cannot say *which* hop
// ate a stalled exchange. Spans close that gap without any wire change:
// every hop that verifies an exchange already holds the same hash-chain
// element, so the first four bytes of that element plus the exchange
// sequence form a correlation key shared by sender, every relay, and the
// receiver. Collect the span rings of each hop after a run and
// Reconstruct stitches the full sender→relay(s)→receiver timeline of any
// exchange.
//
// The emission path follows the telemetry package's discipline exactly:
// recording a span is a cursor fetch-add plus four atomic stores into
// preallocated memory — no locks, no allocation (TestSpanZeroAlloc pins
// it), and a nil *SpanRing is valid and free so call sites need no
// guards. Timestamps come from the caller's clock (the engine is sans-IO)
// so simulated time records as faithfully as wall time.
package obs

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"alpha/internal/telemetry"
)

// Hop roles. A span records which side of the protocol observed the step.
const (
	RoleSender uint8 = iota + 1
	RoleRelay
	RoleReceiver
	// RoleTransport marks socket-level decisions taken before (or instead
	// of) protocol processing: inbox drops, unknown associations, short
	// datagrams.
	RoleTransport
)

// RoleString names a hop role.
func RoleString(r uint8) string {
	switch r {
	case RoleSender:
		return "sender"
	case RoleRelay:
		return "relay"
	case RoleReceiver:
		return "receiver"
	case RoleTransport:
		return "transport"
	default:
		return "unknown"
	}
}

// Protocol steps a span can describe.
const (
	StepS1 uint8 = iota + 1
	StepA1
	StepS2
	StepA2
	StepHS
	// StepNone marks spans with no step context (transport-level drops).
	StepNone uint8 = 0
)

// StepString names a protocol step.
func StepString(s uint8) string {
	switch s {
	case StepS1:
		return "S1"
	case StepA1:
		return "A1"
	case StepS2:
		return "S2"
	case StepA2:
		return "A2"
	case StepHS:
		return "HS"
	default:
		return "-"
	}
}

// Span verdicts: what the hop did with the packet.
const (
	VerdictSent uint8 = iota + 1
	VerdictRecv
	VerdictVerified
	VerdictForward
	VerdictDrop
	VerdictDeliver
	// VerdictExpire: the hop retired the association as idle (generation
	// rotation in the UDP server).
	VerdictExpire
)

// VerdictString names a verdict.
func VerdictString(v uint8) string {
	switch v {
	case VerdictSent:
		return "sent"
	case VerdictRecv:
		return "recv"
	case VerdictVerified:
		return "verified"
	case VerdictForward:
		return "forward"
	case VerdictDrop:
		return "drop"
	case VerdictDeliver:
		return "deliver"
	case VerdictExpire:
		return "expire"
	default:
		return "unknown"
	}
}

// Span is one decoded ring entry: a single hop's observation of one
// protocol step of one exchange.
type Span struct {
	// Time is the caller-supplied timestamp in nanoseconds.
	Time int64
	// Assoc is the association the exchange belongs to (0 when unknown).
	Assoc uint64
	// Key is the hop-correlation key: the first four bytes of the
	// exchange's hash-chain element, shared by every hop that verified it.
	// 0 when the hop could not attribute the packet to an exchange.
	Key uint32
	// Seq is the exchange sequence number.
	Seq uint32
	// Role, Step, Mode and Verdict classify the observation. Mode is the
	// wire mode byte (packet.Mode).
	Role, Step, Mode, Verdict uint8
	// Detail is verdict-specific: a telemetry Reason code for drops, the
	// batch or message count for sends, the message index for verifies.
	Detail uint32
}

// spanSlot is one ring entry: a per-slot seqlock. The fields are stored as
// atomics so concurrent writers and snapshot readers never race (the race
// detector sees only atomic accesses); the sequence word makes torn reads
// detectable on top of that — it is odd while a write is in progress and
// bumped again when the record is complete, so a reader that observes a
// stable even sequence got a consistent record.
type spanSlot struct {
	seq    atomic.Uint64 // seqlock word: odd = write in progress
	ts     atomic.Uint64
	assoc  atomic.Uint64
	keySeq atomic.Uint64 // key<<32 | seq
	meta   atomic.Uint64 // role<<56 | step<<48 | mode<<40 | verdict<<32 | detail
}

// write publishes one record into the slot. This is the seqlock write
// section: nothing inside may block or allocate — a stalled writer would
// leave the sequence odd and spin every concurrent Snapshot reader. The
// alphavet lockscope analyzer enforces that.
//
//alpha:seqlock-write
func (s *spanSlot) write(ts, assoc, keySeq, meta uint64) {
	s.seq.Add(1) // odd: record under construction
	s.ts.Store(ts)
	s.assoc.Store(assoc)
	s.keySeq.Store(keySeq)
	s.meta.Store(meta)
	s.seq.Add(1) // even: record published
}

// read returns a consistent record, retrying a bounded number of times if a
// writer raced. After the retry budget it returns the possibly mixed record
// anyway: liveness over perfect consistency, same contract as the tracer,
// and each field is still individually atomic (memory-safe).
func (s *spanSlot) read() (ts, assoc, keySeq, meta uint64) {
	for attempt := 0; ; attempt++ {
		seq := s.seq.Load()
		ts, assoc, keySeq, meta = s.ts.Load(), s.assoc.Load(), s.keySeq.Load(), s.meta.Load()
		if seq&1 == 0 && s.seq.Load() == seq {
			return
		}
		if attempt == 8 {
			return
		}
	}
}

// SpanRing records exchange spans into a fixed lock-free ring. A nil
// *SpanRing is valid and records nothing. One ring may be shared by many
// emitters (the spans carry the association); the flight recorder keeps
// one per association instead, so an anomaly dump holds only the victim's
// history.
type SpanRing struct {
	mask   uint64
	cursor atomic.Uint64
	// anomaly, when set, observes every drop-verdict span. The flight
	// recorder installs its dump trigger here; the callback must not
	// allocate or block (it runs on the emit path, but only for drops).
	anomaly func(assoc uint64, seq, detail uint32)
	slots   []spanSlot
}

// DefaultSpanRingSize is the per-association flight-recorder depth when
// none is configured.
const DefaultSpanRingSize = 256

// NewSpanRing creates a ring holding the most recent size spans (rounded
// up to a power of two, minimum 16). size <= 0 selects
// DefaultSpanRingSize.
func NewSpanRing(size int) *SpanRing {
	if size <= 0 {
		size = DefaultSpanRingSize
	}
	n := 16
	for n < size {
		n <<= 1
	}
	return &SpanRing{mask: uint64(n - 1), slots: make([]spanSlot, n)}
}

// Emit records one span. Safe for concurrent use; zero allocations.
//
//alpha:hotpath
func (r *SpanRing) Emit(ts int64, assoc uint64, key, seq uint32, role, step, mode, verdict uint8, detail uint32) {
	if r == nil {
		return
	}
	i := r.cursor.Add(1) - 1
	r.slots[i&r.mask].write(uint64(ts), assoc,
		uint64(key)<<32|uint64(seq),
		uint64(role)<<56|uint64(step)<<48|uint64(mode)<<40|
			uint64(verdict)<<32|uint64(detail))
	if verdict == VerdictDrop && r.anomaly != nil {
		r.anomaly(assoc, seq, detail)
	}
}

// Key derives the hop-correlation key from an exchange's hash-chain
// element. Every hop that verified the exchange holds the same element,
// so the same key falls out at sender, relays, and receiver with no wire
// change. Zero allocations.
//
//alpha:hotpath
func Key(auth []byte) uint32 {
	if len(auth) < 4 {
		return 0
	}
	return binary.BigEndian.Uint32(auth)
}

// Len returns the number of spans currently retrievable (at most the ring
// size).
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns the retained spans oldest-first. Each slot reads
// through its seqlock, so records racing a writer come back consistent
// (the reader retries) rather than mixed; only sustained writer pressure
// on one slot — more than the bounded retry budget — can still yield a
// mixed record, and even then every field was read atomically.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	cur := r.cursor.Load()
	start := uint64(0)
	if n := uint64(len(r.slots)); cur > n {
		start = cur - n
	}
	out := make([]Span, 0, cur-start)
	for i := start; i < cur; i++ {
		ts, assoc, ks, meta := r.slots[i&r.mask].read()
		out = append(out, Span{
			Time:    int64(ts),
			Assoc:   assoc,
			Key:     uint32(ks >> 32),
			Seq:     uint32(ks),
			Role:    uint8(meta >> 56),
			Step:    uint8(meta >> 48),
			Mode:    uint8(meta >> 40),
			Verdict: uint8(meta >> 32),
			Detail:  uint32(meta),
		})
	}
	return out
}

// reset clears the ring for reuse under a new association (flight-recorder
// pooling). Not safe concurrently with Emit; the recorder only resets
// rings it has already unpublished.
func (r *SpanRing) reset() {
	r.cursor.Store(0)
	for i := range r.slots {
		r.slots[i].seq.Store(0)
		r.slots[i].ts.Store(0)
		r.slots[i].assoc.Store(0)
		r.slots[i].keySeq.Store(0)
		r.slots[i].meta.Store(0)
	}
}

// ExchangeID correlates one exchange across hops: the shared chain-element
// key plus the exchange sequence.
type ExchangeID struct {
	Key uint32
	Seq uint32
}

// HopSpans is one hop's collected spans, named for timeline output.
type HopSpans struct {
	Hop   string
	Spans []Span
}

// TimelineEntry is one hop's observation inside a reconstructed exchange
// timeline.
type TimelineEntry struct {
	Hop  string
	Span Span
}

// Reconstruct stitches per-hop span collections into per-exchange
// timelines keyed by (chain-element key, exchange seq). Entries sort by
// timestamp, then by the hop order given (stable for simultaneous
// simulated timestamps). Spans without a correlation key (Key == 0) are
// skipped — they could not be attributed to an exchange.
func Reconstruct(hops []HopSpans) map[ExchangeID][]TimelineEntry {
	out := make(map[ExchangeID][]TimelineEntry)
	for _, h := range hops {
		for _, sp := range h.Spans {
			if sp.Key == 0 {
				continue
			}
			id := ExchangeID{Key: sp.Key, Seq: sp.Seq}
			out[id] = append(out[id], TimelineEntry{Hop: h.Hop, Span: sp})
		}
	}
	hopOrder := make(map[string]int, len(hops))
	for i, h := range hops {
		hopOrder[h.Hop] = i
	}
	for _, tl := range out {
		sort.SliceStable(tl, func(i, j int) bool {
			if tl[i].Span.Time != tl[j].Span.Time {
				return tl[i].Span.Time < tl[j].Span.Time
			}
			return hopOrder[tl[i].Hop] < hopOrder[tl[j].Hop]
		})
	}
	return out
}

// DetailString renders a span's Detail field for humans: the reason name
// for drops, the raw number otherwise.
func (s Span) DetailString() string {
	if s.Verdict == VerdictDrop {
		return telemetry.ReasonString(s.Detail)
	}
	return ""
}
