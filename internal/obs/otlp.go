//go:build alpha_otlp

// OTLP/HTTP export bridge. Built only under the alpha_otlp tag so the
// default build stays stdlib-only; the protobuf wire format is small
// enough to hand-roll (varint-keyed length-delimited messages), which
// keeps the tagged build dependency-free too.
//
// Wire shapes follow opentelemetry-proto v1:
//
//	ExportMetricsServiceRequest{ resource_metrics = 1 }
//	ResourceMetrics{ resource = 1, scope_metrics = 2 }
//	ScopeMetrics{ scope = 1, metrics = 2 }
//	Metric{ name = 1, sum = 7, gauge = 5 }
//	Sum{ data_points = 1, aggregation_temporality = 2, is_monotonic = 3 }
//	Gauge{ data_points = 1 }
//	NumberDataPoint{ time_unix_nano = 3, as_int = 6 (sfixed64), attributes = 7 }
//
//	ExportTraceServiceRequest{ resource_spans = 1 }
//	ResourceSpans{ resource = 1, scope_spans = 2 }
//	ScopeSpans{ scope = 1, spans = 2 }
//	Span{ trace_id = 1, span_id = 2, name = 5, kind = 6,
//	      start_time_unix_nano = 7, end_time_unix_nano = 8, attributes = 9 }
//	KeyValue{ key = 1, value = 2 }  AnyValue{ string_value = 1, int_value = 3 }
//	Resource{ attributes = 1 }  InstrumentationScope{ name = 1 }
package obs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"alpha/internal/telemetry"
)

// OTLPEnabled reports whether this binary carries the OTLP bridge.
const OTLPEnabled = true

// OTLPExporter pushes telemetry walks as OTLP metrics and finished spans
// as OTLP traces to an OTLP/HTTP collector endpoint.
type OTLPExporter struct {
	// Endpoint is the collector base URL, e.g. "http://localhost:4318".
	// The standard /v1/metrics and /v1/traces paths are appended.
	Endpoint string
	// Service names the OTLP resource (service.name); defaults to "alpha".
	Service string
	// Client defaults to a 5-second-timeout http.Client.
	Client *http.Client
}

// NewOTLPExporter creates an exporter for the given collector base URL.
func NewOTLPExporter(endpoint string) *OTLPExporter {
	return &OTLPExporter{Endpoint: endpoint}
}

func (o *OTLPExporter) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (o *OTLPExporter) service() string {
	if o.Service != "" {
		return o.Service
	}
	return "alpha"
}

// protobuf primitives ------------------------------------------------------

func pbKey(b []byte, field int, wire int) []byte {
	return binary.AppendUvarint(b, uint64(field)<<3|uint64(wire))
}

func pbBytes(b []byte, field int, v []byte) []byte {
	b = pbKey(b, field, 2)
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func pbString(b []byte, field int, v string) []byte {
	b = pbKey(b, field, 2)
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func pbVarint(b []byte, field int, v uint64) []byte {
	b = pbKey(b, field, 0)
	return binary.AppendUvarint(b, v)
}

func pbFixed64(b []byte, field int, v uint64) []byte {
	b = pbKey(b, field, 1)
	return binary.LittleEndian.AppendUint64(b, v)
}

// pbKV encodes a KeyValue with a string AnyValue.
func pbKV(b []byte, field int, key, val string) []byte {
	var any []byte
	any = pbString(any, 1, val) // AnyValue.string_value
	var kv []byte
	kv = pbString(kv, 1, key)
	kv = pbBytes(kv, 2, any)
	return pbBytes(b, field, kv)
}

// pbKVInt encodes a KeyValue with an int AnyValue.
func pbKVInt(b []byte, field int, key string, val int64) []byte {
	var any []byte
	any = pbKey(any, 3, 0) // AnyValue.int_value
	any = binary.AppendUvarint(any, uint64(val))
	var kv []byte
	kv = pbString(kv, 1, key)
	kv = pbBytes(kv, 2, any)
	return pbBytes(b, field, kv)
}

func (o *OTLPExporter) resource() []byte {
	var res []byte
	res = pbKV(res, 1, "service.name", o.service())
	return res
}

var otlpScope = func() []byte {
	var s []byte
	s = pbString(s, 1, "alpha/internal/obs")
	return s
}()

// metrics ------------------------------------------------------------------

// numberPoint encodes a NumberDataPoint carrying an integer value, with an
// optional "labels" attribute for labeled telemetry groups.
func numberPoint(now, val uint64, labels string) []byte {
	var dp []byte
	dp = pbFixed64(dp, 3, now) // time_unix_nano
	dp = pbKey(dp, 6, 1)       // as_int (sfixed64)
	dp = binary.LittleEndian.AppendUint64(dp, val)
	if labels != "" {
		dp = pbKV(dp, 7, "labels", labels)
	}
	return dp
}

// sumMetric encodes a monotonic cumulative Sum metric.
func sumMetric(name string, now, val uint64, labels string) []byte {
	var sum []byte
	sum = pbBytes(sum, 1, numberPoint(now, val, labels))
	sum = pbVarint(sum, 2, 2) // AGGREGATION_TEMPORALITY_CUMULATIVE
	sum = pbVarint(sum, 3, 1) // is_monotonic
	var m []byte
	m = pbString(m, 1, name)
	m = pbBytes(m, 7, sum)
	return m
}

// gaugeMetric encodes a Gauge metric.
func gaugeMetric(name string, now uint64, val int64, labels string) []byte {
	var g []byte
	g = pbBytes(g, 1, numberPoint(now, uint64(val), labels))
	var m []byte
	m = pbString(m, 1, name)
	m = pbBytes(m, 5, g)
	return m
}

// PushMetrics snapshots the telemetry exporter and POSTs one
// ExportMetricsServiceRequest to <endpoint>/v1/metrics. Label blocks from
// per-association groups become a "labels" data-point attribute.
// nowUnixNano is caller-supplied (the bridge is poll-based and sans-IO
// about time, like everything else).
func (o *OTLPExporter) PushMetrics(exp *telemetry.Exporter, nowUnixNano int64) error {
	snap := exp.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	now := uint64(nowUnixNano)
	var metrics [][]byte
	for _, full := range names {
		name, labels := full, ""
		if i := strings.IndexByte(full, '{'); i >= 0 {
			name = full[:i]
			labels = strings.Trim(full[i:], "{}")
		}
		switch v := snap[full].(type) {
		case uint64:
			metrics = append(metrics, sumMetric(name, now, v, labels))
		case int64:
			metrics = append(metrics, gaugeMetric(name, now, v, labels))
		case telemetry.HistogramSnapshot:
			// Exported as the count/sum pair; OTLP histogram buckets are
			// not worth the encoding surface for a poll-based bridge.
			metrics = append(metrics, sumMetric(name+"_count", now, v.Count, labels))
			metrics = append(metrics, sumMetric(name+"_sum", now, uint64(v.Sum), labels))
		}
	}
	var scoped []byte
	scoped = pbBytes(scoped, 1, otlpScope)
	for _, m := range metrics {
		scoped = pbBytes(scoped, 2, m)
	}
	var rm []byte
	rm = pbBytes(rm, 1, o.resource())
	rm = pbBytes(rm, 2, scoped)
	var req []byte
	req = pbBytes(req, 1, rm)
	return o.post("/v1/metrics", req)
}

// traces -------------------------------------------------------------------

// traceID derives a 16-byte OTLP trace id from the exchange identity, so
// every hop's span of one exchange lands in the same trace: association
// (8 bytes) | correlation key (4) | exchange seq (4).
func traceID(sp Span) []byte {
	id := make([]byte, 16)
	binary.BigEndian.PutUint64(id[0:8], sp.Assoc)
	binary.BigEndian.PutUint32(id[8:12], sp.Key)
	binary.BigEndian.PutUint32(id[12:16], sp.Seq)
	return id
}

// spanID derives a unique-enough 8-byte span id from the span's identity
// plus its position in the pushed batch.
func spanID(sp Span, i int) []byte {
	id := make([]byte, 8)
	h := uint64(sp.Time)*0x9e3779b97f4a7c15 + uint64(i)<<32 +
		uint64(sp.Role)<<24 + uint64(sp.Step)<<16 + uint64(sp.Verdict)<<8 + uint64(sp.Seq)
	if h == 0 {
		h = 1
	}
	binary.BigEndian.PutUint64(id, h)
	return id
}

// PushSpans POSTs finished spans (e.g. a SpanRing or Recorder snapshot) as
// one ExportTraceServiceRequest to <endpoint>/v1/traces.
func (o *OTLPExporter) PushSpans(spans []Span) error {
	if len(spans) == 0 {
		return nil
	}
	var scoped []byte
	scoped = pbBytes(scoped, 1, otlpScope)
	for i, sp := range spans {
		var s []byte
		s = pbBytes(s, 1, traceID(sp))
		s = pbBytes(s, 2, spanID(sp, i))
		s = pbString(s, 5, fmt.Sprintf("%s %s %s", RoleString(sp.Role), StepString(sp.Step), VerdictString(sp.Verdict)))
		s = pbVarint(s, 6, 1) // SPAN_KIND_INTERNAL
		s = pbFixed64(s, 7, uint64(sp.Time))
		s = pbFixed64(s, 8, uint64(sp.Time))
		s = pbKV(s, 9, "alpha.role", RoleString(sp.Role))
		s = pbKV(s, 9, "alpha.step", StepString(sp.Step))
		s = pbKV(s, 9, "alpha.verdict", VerdictString(sp.Verdict))
		s = pbKVInt(s, 9, "alpha.seq", int64(sp.Seq))
		s = pbKVInt(s, 9, "alpha.mode", int64(sp.Mode))
		if sp.Verdict == VerdictDrop {
			s = pbKV(s, 9, "alpha.reason", telemetry.ReasonString(sp.Detail))
		} else if sp.Detail != 0 {
			s = pbKVInt(s, 9, "alpha.detail", int64(sp.Detail))
		}
		scoped = pbBytes(scoped, 2, s)
	}
	var rs []byte
	rs = pbBytes(rs, 1, o.resource())
	rs = pbBytes(rs, 2, scoped)
	var req []byte
	req = pbBytes(req, 1, rs)
	return o.post("/v1/traces", req)
}

func (o *OTLPExporter) post(path string, body []byte) error {
	resp, err := o.client().Post(o.Endpoint+path, "application/x-protobuf", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("obs: otlp push %s: %s", path, resp.Status)
	}
	return nil
}
