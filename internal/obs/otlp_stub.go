//go:build !alpha_otlp

// Stub for the default (stdlib-only) build: the OTLP bridge compiles away
// to nil, so CLI wiring needs no build-tag awareness of its own. Build
// with -tags alpha_otlp for the real exporter.
package obs

import "alpha/internal/telemetry"

// OTLPEnabled reports whether this binary carries the OTLP bridge.
const OTLPEnabled = false

// OTLPExporter is inert in untagged builds.
type OTLPExporter struct {
	Endpoint string
	Service  string
}

// NewOTLPExporter returns nil in untagged builds: callers keep a nil
// exporter and every method is a nil-safe no-op.
func NewOTLPExporter(endpoint string) *OTLPExporter { return nil }

// PushMetrics is a no-op without the alpha_otlp tag.
func (o *OTLPExporter) PushMetrics(exp *telemetry.Exporter, nowUnixNano int64) error { return nil }

// PushSpans is a no-op without the alpha_otlp tag.
func (o *OTLPExporter) PushSpans(spans []Span) error { return nil }
