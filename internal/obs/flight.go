// Per-association flight recorder: a pool of span rings keyed by
// association, dump-on-anomaly capture, and the /flight HTTP endpoint.

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"alpha/internal/telemetry"
)

// Anomaly causes recognised by the dump triggers.
const (
	CauseVerifyFail       = "verify_fail"
	CauseOffloadDowngrade = "offload_downgrade"
	CauseAdaptiveFlap     = "adaptive_flap"
	CauseChainLow         = "chain_low"
	CausePoolSaturation   = "pool_saturation"
	CauseAdmissionStorm   = "admission_storm"
)

// Dump is one captured anomaly: the victim association's recent span
// history frozen at trigger time.
type Dump struct {
	Assoc uint64 `json:"assoc"`
	Cause string `json:"cause"`
	// Time is the timestamp of the newest span at capture (0 for an empty
	// ring) — deterministic under simulated clocks.
	Time  int64  `json:"time"`
	Spans []Span `json:"spans"`
}

const (
	maxDumps         = 32 // global bound on retained dumps
	maxDumpsPerAssoc = 4  // per-association bound, keeps one noisy peer from evicting the rest
)

// Recorder owns the per-association span rings. Rings are pooled: an
// association's ring returns to the pool when the association retires
// (after a reset), so steady-state churn allocates nothing — the same
// churn-safety discipline as the UDP server's retired-session metric
// aggregation. Lookup happens once per association at session setup, not
// per packet: callers hold the *SpanRing and emit through it directly.
type Recorder struct {
	size int

	mu      sync.RWMutex
	rings   map[uint64]*SpanRing
	dumps   []Dump
	byAssoc map[uint64]int // live dump count per association

	pool sync.Pool
}

// NewRecorder creates a flight recorder whose per-association rings hold
// size spans each (<= 0 selects DefaultSpanRingSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultSpanRingSize
	}
	rc := &Recorder{
		size:    size,
		rings:   make(map[uint64]*SpanRing),
		byAssoc: make(map[uint64]int),
	}
	rc.pool.New = func() any { return NewSpanRing(rc.size) }
	return rc
}

// Ring returns the association's span ring, creating (or reusing a pooled)
// one on first sight. The returned ring carries the recorder's
// verification-failure dump trigger. Resolve once per association and keep
// the pointer; the map lookup is not meant for the per-packet path. A nil
// recorder returns a nil ring, which is valid and free to emit into.
func (rc *Recorder) Ring(assoc uint64) *SpanRing {
	if rc == nil {
		return nil
	}
	rc.mu.RLock()
	r := rc.rings[assoc]
	rc.mu.RUnlock()
	if r != nil {
		return r
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if r = rc.rings[assoc]; r != nil {
		return r
	}
	r = rc.pool.Get().(*SpanRing)
	r.anomaly = rc.onDrop
	rc.rings[assoc] = r
	return r
}

// Shared returns the pre-association ring (key 0): the home for decisions
// taken before an exchange or association is identified — relay verdicts
// on unattributable packets, transport-level drops.
func (rc *Recorder) Shared() *SpanRing { return rc.Ring(0) }

// Retire unpublishes an association's ring and returns it to the pool
// after a reset, so the next association to appear reuses its memory with
// no history bleed-through.
func (rc *Recorder) Retire(assoc uint64) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	r := rc.rings[assoc]
	delete(rc.rings, assoc)
	rc.mu.Unlock()
	if r != nil {
		r.reset()
		r.anomaly = nil
		rc.pool.Put(r)
	}
}

// onDrop is the span-ring anomaly hook: verification failures freeze the
// association's history. Other drop reasons (loss artifacts, back
// pressure) are normal operation and do not trigger dumps.
func (rc *Recorder) onDrop(assoc uint64, seq, detail uint32) {
	switch detail {
	case telemetry.ReasonBadElement, telemetry.ReasonBadPayload, telemetry.ReasonBadAck:
		rc.Trigger(assoc, CauseVerifyFail)
	}
}

// Trigger captures the association's current span history under the given
// cause. Callers wire the non-span anomaly sources here: offload
// downgrades, adaptive flaps, chain-low warnings. Bounded: at most
// maxDumpsPerAssoc dumps per association and maxDumps total are retained
// (oldest evicted first), so a flapping peer cannot grow memory. Safe for
// concurrent use; a nil recorder ignores the trigger.
func (rc *Recorder) Trigger(assoc uint64, cause string) {
	if rc == nil {
		return
	}
	rc.mu.RLock()
	r := rc.rings[assoc]
	rc.mu.RUnlock()
	spans := r.Snapshot() // nil-safe
	var ts int64
	if len(spans) > 0 {
		ts = spans[len(spans)-1].Time
	}
	d := Dump{Assoc: assoc, Cause: cause, Time: ts, Spans: spans}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.byAssoc[assoc] >= maxDumpsPerAssoc {
		// Replace the association's oldest dump instead of growing.
		for i := range rc.dumps {
			if rc.dumps[i].Assoc == assoc {
				rc.dumps = append(rc.dumps[:i], rc.dumps[i+1:]...)
				rc.byAssoc[assoc]--
				break
			}
		}
	}
	if len(rc.dumps) >= maxDumps {
		rc.byAssoc[rc.dumps[0].Assoc]--
		rc.dumps = rc.dumps[1:]
	}
	rc.dumps = append(rc.dumps, d)
	rc.byAssoc[assoc]++
}

// Dumps returns the retained anomaly dumps, oldest first.
func (rc *Recorder) Dumps() []Dump {
	if rc == nil {
		return nil
	}
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return append([]Dump(nil), rc.dumps...)
}

// Assocs lists the associations with live rings, sorted.
func (rc *Recorder) Assocs() []uint64 {
	if rc == nil {
		return nil
	}
	rc.mu.RLock()
	out := make([]uint64, 0, len(rc.rings))
	for a := range rc.rings {
		out = append(out, a)
	}
	rc.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns an association's current span history (nil when the
// association has no ring).
func (rc *Recorder) Snapshot(assoc uint64) []Span {
	if rc == nil {
		return nil
	}
	rc.mu.RLock()
	r := rc.rings[assoc]
	rc.mu.RUnlock()
	return r.Snapshot()
}

// spanJSON is the decoded wire form served by /flight.
type spanJSON struct {
	Time    int64  `json:"time"`
	Assoc   string `json:"assoc"`
	Key     uint32 `json:"key"`
	Seq     uint32 `json:"seq"`
	Role    string `json:"role"`
	Step    string `json:"step"`
	Mode    uint8  `json:"mode"`
	Verdict string `json:"verdict"`
	Detail  uint32 `json:"detail"`
	Reason  string `json:"reason,omitempty"`
}

func decodeSpans(spans []Span) []spanJSON {
	out := make([]spanJSON, 0, len(spans))
	for _, s := range spans {
		j := spanJSON{
			Time:    s.Time,
			Assoc:   fmt.Sprintf("%016x", s.Assoc),
			Key:     s.Key,
			Seq:     s.Seq,
			Role:    RoleString(s.Role),
			Step:    StepString(s.Step),
			Mode:    s.Mode,
			Verdict: VerdictString(s.Verdict),
			Detail:  s.Detail,
		}
		if s.Verdict == VerdictDrop {
			j.Reason = telemetry.ReasonString(s.Detail)
		}
		out = append(out, j)
	}
	return out
}

// ServeHTTP implements the /flight endpoint. Without parameters it lists
// live associations and retained anomaly dumps; ?assoc=<hex|dec> returns
// one association's decoded span history.
func (rc *Recorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if q := r.URL.Query().Get("assoc"); q != "" {
		assoc, err := strconv.ParseUint(q, 16, 64)
		if err != nil {
			if assoc, err = strconv.ParseUint(q, 10, 64); err != nil {
				http.Error(w, "bad assoc: "+q, http.StatusBadRequest)
				return
			}
		}
		enc.Encode(map[string]any{
			"assoc": fmt.Sprintf("%016x", assoc),
			"spans": decodeSpans(rc.Snapshot(assoc)),
		})
		return
	}
	assocs := make([]string, 0)
	for _, a := range rc.Assocs() {
		assocs = append(assocs, fmt.Sprintf("%016x", a))
	}
	type dumpJSON struct {
		Assoc string     `json:"assoc"`
		Cause string     `json:"cause"`
		Time  int64      `json:"time"`
		Spans []spanJSON `json:"spans"`
	}
	dumps := make([]dumpJSON, 0)
	for _, d := range rc.Dumps() {
		dumps = append(dumps, dumpJSON{
			Assoc: fmt.Sprintf("%016x", d.Assoc),
			Cause: d.Cause,
			Time:  d.Time,
			Spans: decodeSpans(d.Spans),
		})
	}
	enc.Encode(map[string]any{"assocs": assocs, "dumps": dumps})
}
