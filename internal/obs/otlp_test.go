//go:build alpha_otlp

package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"alpha/internal/telemetry"
)

// TestOTLPPush exercises the hand-rolled protobuf encoding end to end
// against a capturing collector: both signals must POST to the standard
// OTLP/HTTP paths with protobuf bodies that embed the expected names
// (protobuf stores strings verbatim, so substring checks see through the
// framing without a decoder).
func TestOTLPPush(t *testing.T) {
	type capture struct {
		path string
		body []byte
	}
	var got []capture
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/x-protobuf" {
			t.Errorf("content type %q", ct)
		}
		body, _ := io.ReadAll(r.Body)
		got = append(got, capture{r.URL.Path, body})
	}))
	defer srv.Close()

	if !OTLPEnabled {
		t.Fatal("alpha_otlp build must set OTLPEnabled")
	}
	o := NewOTLPExporter(srv.URL)

	exp := telemetry.NewExporter()
	em := telemetry.NewEndpointMetrics()
	em.SentS1.Add(7)
	em.NoteDrop(telemetry.ReasonBadPayload)
	exp.Register("alpha_endpoint", em)
	if err := o.PushMetrics(exp, 1_000_000_000); err != nil {
		t.Fatalf("PushMetrics: %v", err)
	}

	ring := NewSpanRing(16)
	ring.Emit(100, 0xabcd, 0x1234, 9, RoleRelay, StepS2, 1, VerdictDrop, telemetry.ReasonBadPayload)
	if err := o.PushSpans(ring.Snapshot()); err != nil {
		t.Fatalf("PushSpans: %v", err)
	}

	if len(got) != 2 {
		t.Fatalf("collector saw %d requests, want 2", len(got))
	}
	if got[0].path != "/v1/metrics" || got[1].path != "/v1/traces" {
		t.Fatalf("paths %q, %q", got[0].path, got[1].path)
	}
	for _, want := range [][]byte{[]byte("alpha_endpoint_sent_s1"), []byte("alpha_endpoint_drop_bad_payload")} {
		if !bytes.Contains(got[0].body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
	for _, want := range [][]byte{[]byte("relay S2 drop"), []byte("alpha.reason"), []byte("bad_payload")} {
		if !bytes.Contains(got[1].body, want) {
			t.Errorf("traces body missing %q", want)
		}
	}

	// PushSpans with nothing to say must not POST at all.
	before := len(got)
	if err := o.PushSpans(nil); err != nil {
		t.Fatalf("PushSpans(nil): %v", err)
	}
	if len(got) != before {
		t.Fatal("empty span push still reached the collector")
	}
}
