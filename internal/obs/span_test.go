package obs

import (
	"testing"

	"alpha/internal/telemetry"
)

func TestSpanRingBasics(t *testing.T) {
	r := NewSpanRing(16)
	if r.Len() != 0 {
		t.Fatalf("empty ring Len = %d", r.Len())
	}
	r.Emit(100, 0xabc, 0xdeadbeef, 7, RoleSender, StepS1, 1, VerdictSent, 3)
	r.Emit(200, 0xabc, 0xdeadbeef, 7, RoleSender, StepS2, 1, VerdictSent, 3)
	spans := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(spans))
	}
	first := spans[0]
	if first.Time != 100 || first.Assoc != 0xabc || first.Key != 0xdeadbeef ||
		first.Seq != 7 || first.Role != RoleSender || first.Step != StepS1 ||
		first.Mode != 1 || first.Verdict != VerdictSent || first.Detail != 3 {
		t.Fatalf("first span corrupted: %+v", first)
	}
	if spans[1].Step != StepS2 {
		t.Fatalf("order wrong: %+v", spans)
	}
}

func TestSpanRingWraps(t *testing.T) {
	r := NewSpanRing(16)
	for i := 0; i < 40; i++ {
		r.Emit(int64(i), 1, 2, uint32(i), RoleRelay, StepS2, 0, VerdictForward, 0)
	}
	if r.Len() != 16 {
		t.Fatalf("Len after wrap = %d, want 16", r.Len())
	}
	spans := r.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(spans))
	}
	if spans[0].Seq != 24 || spans[15].Seq != 39 {
		t.Fatalf("oldest-first order broken: first seq %d last seq %d", spans[0].Seq, spans[15].Seq)
	}
}

func TestSpanRingNilSafe(t *testing.T) {
	var r *SpanRing
	r.Emit(1, 2, 3, 4, RoleSender, StepS1, 0, VerdictSent, 0) // must not panic
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring must be empty")
	}
}

func TestSpanRingSizing(t *testing.T) {
	if n := len(NewSpanRing(0).slots); n != DefaultSpanRingSize {
		t.Fatalf("default size = %d", n)
	}
	if n := len(NewSpanRing(3).slots); n != 16 {
		t.Fatalf("minimum size = %d, want 16", n)
	}
	if n := len(NewSpanRing(100).slots); n != 128 {
		t.Fatalf("rounding = %d, want 128", n)
	}
}

func TestKey(t *testing.T) {
	if k := Key([]byte{0x12, 0x34, 0x56, 0x78, 0x9a}); k != 0x12345678 {
		t.Fatalf("Key = %#x", k)
	}
	if k := Key([]byte{1, 2}); k != 0 {
		t.Fatalf("short Key = %#x, want 0", k)
	}
	if k := Key(nil); k != 0 {
		t.Fatalf("nil Key = %#x, want 0", k)
	}
}

// TestSpanZeroAlloc pins the emission path at zero allocations per span:
// the same discipline the telemetry counters and tracer live under.
func TestSpanZeroAlloc(t *testing.T) {
	r := NewSpanRing(64)
	auth := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if n := testing.AllocsPerRun(1000, func() {
		r.Emit(42, 7, Key(auth), 9, RoleRelay, StepS2, 1, VerdictForward, 0)
	}); n != 0 {
		t.Errorf("SpanRing.Emit allocates %.1f/op", n)
	}

	// The flight-recorder append path: ring resolved once, then pure Emit.
	rc := NewRecorder(64)
	ring := rc.Ring(7)
	if n := testing.AllocsPerRun(1000, func() {
		ring.Emit(42, 7, Key(auth), 9, RoleReceiver, StepS2, 1, VerdictDeliver, 0)
	}); n != 0 {
		t.Errorf("flight-recorder Emit allocates %.1f/op", n)
	}
}

func TestReconstruct(t *testing.T) {
	sender := NewSpanRing(16)
	relay := NewSpanRing(16)
	recv := NewSpanRing(16)
	// Exchange (key=5, seq=1) crosses all three hops; a keyless span is
	// skipped.
	sender.Emit(10, 1, 5, 1, RoleSender, StepS1, 0, VerdictSent, 1)
	relay.Emit(20, 1, 5, 1, RoleRelay, StepS1, 0, VerdictForward, 0)
	recv.Emit(30, 1, 5, 1, RoleReceiver, StepS1, 0, VerdictRecv, 1)
	relay.Emit(25, 1, 0, 9, RoleRelay, StepNone, 0, VerdictDrop, telemetry.ReasonMalformed)
	sender.Emit(40, 1, 5, 1, RoleSender, StepS2, 0, VerdictSent, 1)
	recv.Emit(50, 1, 5, 1, RoleReceiver, StepS2, 0, VerdictDeliver, 0)

	tl := Reconstruct([]HopSpans{
		{Hop: "sender", Spans: sender.Snapshot()},
		{Hop: "relay", Spans: relay.Snapshot()},
		{Hop: "receiver", Spans: recv.Snapshot()},
	})
	if len(tl) != 1 {
		t.Fatalf("timelines = %d, want 1 (keyless spans skipped)", len(tl))
	}
	entries := tl[ExchangeID{Key: 5, Seq: 1}]
	if len(entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(entries))
	}
	wantHops := []string{"sender", "relay", "receiver", "sender", "receiver"}
	for i, e := range entries {
		if e.Hop != wantHops[i] {
			t.Fatalf("entry %d hop = %s, want %s (timeline %+v)", i, e.Hop, wantHops[i], entries)
		}
	}
	// Timestamps must be nondecreasing.
	for i := 1; i < len(entries); i++ {
		if entries[i].Span.Time < entries[i-1].Span.Time {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
}

func TestDetailString(t *testing.T) {
	s := Span{Verdict: VerdictDrop, Detail: telemetry.ReasonBadPayload}
	if s.DetailString() != "bad_payload" {
		t.Fatalf("DetailString = %q", s.DetailString())
	}
	if (Span{Verdict: VerdictSent, Detail: 3}).DetailString() != "" {
		t.Fatal("non-drop DetailString must be empty")
	}
}

// TestSpanSeqlockConsistency hammers one ring with a writer whose record
// fields are all derived from the same value, while a reader snapshots
// concurrently: the per-slot seqlock must hand back internally consistent
// records (a mixed record would show fields from two different writes).
func TestSpanSeqlockConsistency(t *testing.T) {
	r := NewSpanRing(64)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := uint32(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			// Key and Detail both carry v; Time carries it too.
			r.Emit(int64(v), uint64(v), v, v, RoleRelay, StepS2, 1, VerdictForward, v)
		}
	}()
	for i := 0; i < 200; i++ {
		for _, sp := range r.Snapshot() {
			if sp.Time == 0 {
				continue // slot not yet written
			}
			v := uint32(sp.Time)
			if sp.Assoc != uint64(v) || sp.Key != v || sp.Seq != v || sp.Detail != v {
				t.Fatalf("torn span: time=%d assoc=%d key=%d seq=%d detail=%d",
					sp.Time, sp.Assoc, sp.Key, sp.Seq, sp.Detail)
			}
		}
	}
	close(stop)
	<-done
}
