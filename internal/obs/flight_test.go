package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"alpha/internal/telemetry"
)

func TestRecorderRingLifecycle(t *testing.T) {
	rc := NewRecorder(32)
	r1 := rc.Ring(1)
	if r1 == nil {
		t.Fatal("Ring returned nil")
	}
	if rc.Ring(1) != r1 {
		t.Fatal("Ring not stable per association")
	}
	r1.Emit(5, 1, 9, 1, RoleReceiver, StepS1, 0, VerdictRecv, 0)
	if got := rc.Snapshot(1); len(got) != 1 {
		t.Fatalf("Snapshot = %d spans", len(got))
	}
	rc.Retire(1)
	if got := rc.Snapshot(1); got != nil {
		t.Fatalf("retired association still has %d spans", len(got))
	}
	// The pooled ring returns blank for the next association.
	r2 := rc.Ring(2)
	if r2.Len() != 0 {
		t.Fatalf("pooled ring not reset: %d spans bleed through", r2.Len())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rc *Recorder
	if rc.Ring(1) != nil || rc.Shared() != nil {
		t.Fatal("nil recorder must hand out nil rings")
	}
	rc.Retire(1)
	rc.Trigger(1, CauseChainLow)
	if rc.Dumps() != nil || rc.Assocs() != nil {
		t.Fatal("nil recorder must be empty")
	}
}

func TestVerifyFailTriggersDump(t *testing.T) {
	rc := NewRecorder(32)
	r := rc.Ring(7)
	r.Emit(1, 7, 5, 1, RoleReceiver, StepS1, 0, VerdictRecv, 0)
	// Loss-artifact drops do not trigger dumps.
	r.Emit(2, 7, 5, 1, RoleReceiver, StepS2, 0, VerdictDrop, telemetry.ReasonUnsolicited)
	if len(rc.Dumps()) != 0 {
		t.Fatal("unsolicited drop must not dump")
	}
	// A verification failure freezes the history.
	r.Emit(3, 7, 5, 1, RoleReceiver, StepS2, 0, VerdictDrop, telemetry.ReasonBadPayload)
	dumps := rc.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Assoc != 7 || d.Cause != CauseVerifyFail || d.Time != 3 || len(d.Spans) != 3 {
		t.Fatalf("dump = %+v", d)
	}
}

func TestDumpBounds(t *testing.T) {
	rc := NewRecorder(16)
	// One association cannot hold more than its per-assoc quota.
	rc.Ring(1).Emit(1, 1, 2, 3, RoleSender, StepS1, 0, VerdictSent, 0)
	for i := 0; i < maxDumpsPerAssoc+3; i++ {
		rc.Trigger(1, CauseAdaptiveFlap)
	}
	if got := len(rc.Dumps()); got != maxDumpsPerAssoc {
		t.Fatalf("per-assoc dumps = %d, want %d", got, maxDumpsPerAssoc)
	}
	// The global cap evicts oldest-first across associations.
	for a := uint64(2); a < uint64(2+maxDumps); a++ {
		rc.Trigger(a, CauseChainLow)
	}
	if got := len(rc.Dumps()); got != maxDumps {
		t.Fatalf("global dumps = %d, want %d", got, maxDumps)
	}
}

func TestFlightHTTP(t *testing.T) {
	rc := NewRecorder(16)
	r := rc.Ring(0xabcd)
	r.Emit(10, 0xabcd, 7, 1, RoleReceiver, StepS2, 0, VerdictDrop, telemetry.ReasonBadPayload)

	// Index view.
	rec := httptest.NewRecorder()
	rc.ServeHTTP(rec, httptest.NewRequest("GET", "/flight", nil))
	var idx struct {
		Assocs []string `json:"assocs"`
		Dumps  []struct {
			Cause string `json:"cause"`
		} `json:"dumps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("index not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(idx.Assocs) != 1 || idx.Assocs[0] != "000000000000abcd" {
		t.Fatalf("assocs = %v", idx.Assocs)
	}
	if len(idx.Dumps) != 1 || idx.Dumps[0].Cause != CauseVerifyFail {
		t.Fatalf("dumps = %+v", idx.Dumps)
	}

	// Single-association view, hex key.
	rec = httptest.NewRecorder()
	rc.ServeHTTP(rec, httptest.NewRequest("GET", "/flight?assoc=abcd", nil))
	if !strings.Contains(rec.Body.String(), `"reason": "bad_payload"`) {
		t.Fatalf("span view missing decoded reason:\n%s", rec.Body.String())
	}

	// Bad key.
	rec = httptest.NewRecorder()
	rc.ServeHTTP(rec, httptest.NewRequest("GET", "/flight?assoc=zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad assoc code = %d", rec.Code)
	}
}

func TestHandlerRoutes(t *testing.T) {
	exp := telemetry.NewExporter()
	m := telemetry.NewEndpointMetrics()
	m.SentS1.Add(4)
	exp.Register("alpha_endpoint", m)
	rc := NewRecorder(16)
	h := Handler(exp, rc)

	for _, tc := range []struct{ path, want string }{
		{"/metrics", "alpha_endpoint_sent_s1 4"},
		{"/flight", `"assocs"`},
		{"/debug/pprof/cmdline", ""},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s -> %d", tc.path, rec.Code)
		}
		if tc.want != "" && !strings.Contains(rec.Body.String(), tc.want) {
			t.Fatalf("%s missing %q:\n%s", tc.path, tc.want, rec.Body.String())
		}
	}
}

func TestRegisterRuntime(t *testing.T) {
	exp := telemetry.NewExporter()
	RegisterRuntime(exp)
	snap := exp.Snapshot()
	for _, want := range []string{"alpha_go_gc_cycles", "alpha_go_goroutines", "alpha_go_heap_objects_bytes", "alpha_go_gc_pause_p99_ns", "alpha_go_sched_latency_p50_ns"} {
		if _, ok := snap[want]; !ok {
			t.Fatalf("runtime group missing %s (have %v)", want, snap)
		}
	}
}
