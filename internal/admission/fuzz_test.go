package admission

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// Fuzz fixture: one verifier and one known-good minted token, shared across
// iterations. The replay filter makes repeated OK verdicts on the same
// bytes impossible, so the invariant below is one-directional.
var fuzzFix struct {
	once sync.Once
	v    *Verifier
	tok  []byte
	now  time.Time
}

// fixedReader makes the fixture issuer's nonce deterministic: fuzz workers
// run in separate processes, and every process must agree on the one token
// that may legitimately authenticate.
type fixedReader struct{}

func (fixedReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(0xB0 + i)
	}
	return len(p), nil
}

func fuzzSetup(f *testing.F) (*Verifier, []byte, time.Time) {
	fuzzFix.once.Do(func() {
		key := testKey(0x5A)
		is, err := NewIssuer(3, key)
		if err != nil {
			panic(err)
		}
		is.rand = fixedReader{}
		v, err := NewVerifier(VerifierConfig{Require: true, Keys: map[uint8]Key{3: key}})
		if err != nil {
			panic(err)
		}
		now := time.Unix(5000, 0)
		tok, err := is.Mint(now, time.Hour, clientIP, clientPort, nil, nil)
		if err != nil {
			panic(err)
		}
		fuzzFix.v, fuzzFix.tok, fuzzFix.now = v, tok, now
	})
	return fuzzFix.v, fuzzFix.tok, fuzzFix.now
}

// FuzzTokenDecode feeds hostile bytes to the verifier: whatever the input,
// Admit must neither panic nor authenticate anything except the one token
// the issuer really minted. The corpus seeds with issuer-minted tokens and
// systematic mutations of them.
func FuzzTokenDecode(f *testing.F) {
	v, tok, now := fuzzSetup(f)

	f.Add([]byte{})
	f.Add(tok)
	for i := 0; i < TokenLen; i += 7 {
		mut := append([]byte(nil), tok...)
		mut[i] ^= 0xA5
		f.Add(mut)
	}
	f.Add(tok[:TokenLen-1])
	f.Add(append(append([]byte(nil), tok...), 0))
	f.Add(bytes.Repeat([]byte{0xFF}, TokenLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		verdict := v.Admit(now, data, clientIP, clientPort, nil, nil)
		if verdict.OK && !bytes.Equal(data, tok) {
			t.Fatalf("hostile bytes authenticated: %x", data)
		}
		// Wrong address must never authenticate, minted token included.
		if v.Admit(now, data, []byte{203, 0, 113, 1}, 1, nil, nil).OK {
			t.Fatalf("token authenticated from the wrong address: %x", data)
		}
	})
}
