package admission

import (
	"bytes"
	"testing"
	"time"

	"alpha/internal/telemetry"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b ^ byte(i)
	}
	return k
}

func newPair(t testing.TB, cfg VerifierConfig) (*Issuer, *Verifier) {
	t.Helper()
	key := testKey(0x42)
	if cfg.Keys == nil {
		cfg.Keys = map[uint8]Key{7: key}
	}
	is, err := NewIssuer(7, key)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return is, v
}

var (
	clientIP   = []byte{192, 0, 2, 10}
	clientPort = 40000
)

func TestMintAdmitRoundtrip(t *testing.T) {
	is, v := newPair(t, VerifierConfig{Require: true})
	now := time.Unix(1000, 0)

	tok, err := is.Mint(now, time.Minute, clientIP, clientPort, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tok) != TokenLen {
		t.Fatalf("token length %d, want %d", len(tok), TokenLen)
	}
	verdict := v.Admit(now.Add(time.Second), tok, clientIP, clientPort, nil, nil)
	if !verdict.OK || verdict.AnchorsBound {
		t.Fatalf("address-only token: %+v", verdict)
	}

	sig := bytes.Repeat([]byte{1}, 20)
	ack := bytes.Repeat([]byte{2}, 20)
	tok2, err := is.Mint(now, time.Minute, clientIP, clientPort, sig, ack)
	if err != nil {
		t.Fatal(err)
	}
	verdict = v.Admit(now.Add(time.Second), tok2, clientIP, clientPort, sig, ack)
	if !verdict.OK || !verdict.AnchorsBound {
		t.Fatalf("anchor-bound token: %+v", verdict)
	}
	m := v.Metrics()
	if m.TokensVerified.Load() != 2 || m.AnchorsBound.Load() != 1 {
		t.Fatalf("verified=%d bound=%d", m.TokensVerified.Load(), m.AnchorsBound.Load())
	}
}

func TestAdmitRejections(t *testing.T) {
	is, v := newPair(t, VerifierConfig{Require: true})
	now := time.Unix(1000, 0)
	sig := bytes.Repeat([]byte{1}, 20)
	ack := bytes.Repeat([]byte{2}, 20)
	mint := func() []byte {
		tok, err := is.Mint(now, time.Minute, clientIP, clientPort, sig, ack)
		if err != nil {
			t.Fatal(err)
		}
		return tok
	}

	cases := []struct {
		name   string
		run    func() Verdict
		reason uint32
	}{
		{"missing", func() Verdict {
			return v.Admit(now, nil, clientIP, clientPort, nil, nil)
		}, telemetry.ReasonAdmissionMissing},
		{"truncated", func() Verdict {
			return v.Admit(now, mint()[:TokenLen-1], clientIP, clientPort, sig, ack)
		}, telemetry.ReasonAdmissionInvalid},
		{"bad-version", func() Verdict {
			tok := mint()
			tok[0] = 9
			return v.Admit(now, tok, clientIP, clientPort, sig, ack)
		}, telemetry.ReasonAdmissionInvalid},
		{"unknown-key", func() Verdict {
			tok := mint()
			tok[1] ^= 0xFF
			return v.Admit(now, tok, clientIP, clientPort, sig, ack)
		}, telemetry.ReasonAdmissionInvalid},
		{"expired", func() Verdict {
			return v.Admit(now.Add(2*time.Minute), mint(), clientIP, clientPort, sig, ack)
		}, telemetry.ReasonAdmissionExpired},
		{"wrong-ip", func() Verdict {
			return v.Admit(now, mint(), []byte{192, 0, 2, 99}, clientPort, sig, ack)
		}, telemetry.ReasonAdmissionAddrMismatch},
		{"wrong-port", func() Verdict {
			return v.Admit(now, mint(), clientIP, clientPort+1, sig, ack)
		}, telemetry.ReasonAdmissionAddrMismatch},
		{"wrong-anchors", func() Verdict {
			return v.Admit(now, mint(), clientIP, clientPort, ack, sig)
		}, telemetry.ReasonAdmissionInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			verdict := tc.run()
			if verdict.OK {
				t.Fatalf("admitted")
			}
			if verdict.Reason != tc.reason {
				t.Fatalf("reason %d, want %d", verdict.Reason, tc.reason)
			}
		})
	}

	// Every single-bit flip anywhere in the token must be rejected.
	tok := mint()
	for i := 0; i < len(tok)*8; i++ {
		mut := append([]byte(nil), tok...)
		mut[i/8] ^= 1 << (i % 8)
		if v.Admit(now, mut, clientIP, clientPort, sig, ack).OK {
			t.Fatalf("bit flip %d authenticated", i)
		}
	}

	// Expiry skew sweep: valid right up to the deadline, dead after it.
	for _, skew := range []time.Duration{0, time.Second, time.Minute - time.Nanosecond} {
		if !v.Admit(now.Add(skew), mint(), clientIP, clientPort, sig, ack).OK {
			t.Fatalf("rejected at skew %v inside ttl", skew)
		}
	}
	for _, skew := range []time.Duration{time.Minute + time.Nanosecond, time.Hour} {
		verdict := v.Admit(now.Add(skew), mint(), clientIP, clientPort, sig, ack)
		if verdict.OK || verdict.Reason != telemetry.ReasonAdmissionExpired {
			t.Fatalf("skew %v: %+v", skew, verdict)
		}
	}

	// The I3 drop budget holds: dropped == sum of the reason counters.
	m := v.Metrics()
	sum := m.Missing.Load() + m.Invalid.Load() + m.Expired.Load() +
		m.Replayed.Load() + m.AddrMismatch.Load()
	if m.Dropped.Load() != sum || m.Dropped.Load() == 0 {
		t.Fatalf("dropped=%d sum=%d", m.Dropped.Load(), sum)
	}
}

func TestReplayFilter(t *testing.T) {
	is, v := newPair(t, VerifierConfig{Require: true, Window: 10 * time.Second})
	now := time.Unix(1000, 0)
	tok, err := is.Mint(now, time.Hour, clientIP, clientPort, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Admit(now, tok, clientIP, clientPort, nil, nil).OK {
		t.Fatal("first use rejected")
	}
	verdict := v.Admit(now.Add(time.Second), tok, clientIP, clientPort, nil, nil)
	if verdict.OK || verdict.Reason != telemetry.ReasonAdmissionReplayed {
		t.Fatalf("replay: %+v", verdict)
	}
	// One window later the nonce is still in the previous generation.
	verdict = v.Admit(now.Add(11*time.Second), tok, clientIP, clientPort, nil, nil)
	if verdict.OK || verdict.Reason != telemetry.ReasonAdmissionReplayed {
		t.Fatalf("replay across one rotation: %+v", verdict)
	}
	// A replay attempt re-marks the nonce, so the block expires two windows
	// after the LAST attempt. Drive two more rotations with unrelated
	// tokens, then the original nonce has left both generations.
	for i, at := range []time.Duration{22 * time.Second, 33 * time.Second} {
		other, err := is.Mint(now, time.Hour, clientIP, clientPort, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Admit(now.Add(at), other, clientIP, clientPort, nil, nil).OK {
			t.Fatalf("fresh token %d rejected", i)
		}
	}
	if !v.Admit(now.Add(34*time.Second), tok, clientIP, clientPort, nil, nil).OK {
		t.Fatal("nonce still blocked after both generations rotated")
	}
	if v.Metrics().WindowRotations.Load() == 0 {
		t.Fatal("no window rotations recorded")
	}
}

func TestRejectedTokenStaysUsable(t *testing.T) {
	// A token replayed by an off-path attacker from the wrong address must
	// not burn the rightful client's nonce.
	is, v := newPair(t, VerifierConfig{Require: true})
	now := time.Unix(1000, 0)
	tok, err := is.Mint(now, time.Minute, clientIP, clientPort, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Admit(now, tok, []byte{10, 0, 0, 1}, clientPort, nil, nil).OK {
		t.Fatal("wrong address admitted")
	}
	if !v.Admit(now, tok, clientIP, clientPort, nil, nil).OK {
		t.Fatal("rightful client rejected after attacker's attempt")
	}
}

func TestDegradedModeWithoutIssuer(t *testing.T) {
	// Require=false: token-less handshakes pass (no issuer deployed yet),
	// but a token that fails validation still rejects.
	is, v := newPair(t, VerifierConfig{Require: false})
	now := time.Unix(1000, 0)
	if !v.Admit(now, nil, clientIP, clientPort, nil, nil).OK {
		t.Fatal("token-less HS1 rejected in degraded mode")
	}
	tok, err := is.Mint(now, time.Minute, clientIP, clientPort, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tok[20] ^= 1
	if v.Admit(now, tok, clientIP, clientPort, nil, nil).OK {
		t.Fatal("corrupted token admitted in degraded mode")
	}
}

func TestKeyRotation(t *testing.T) {
	oldKey, newKey := testKey(0x11), testKey(0x22)
	oldIs, err := NewIssuer(1, oldKey)
	if err != nil {
		t.Fatal(err)
	}
	newIs, err := NewIssuer(2, newKey)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(VerifierConfig{Require: true, Keys: map[uint8]Key{1: oldKey, 2: newKey}})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	for _, is := range []*Issuer{oldIs, newIs} {
		tok, err := is.Mint(now, time.Minute, clientIP, clientPort, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Admit(now, tok, clientIP, clientPort, nil, nil).OK {
			t.Fatalf("key ID %d rejected during rotation", is.keyID)
		}
	}
	// Cross-key forgery: a token sealed under the old key but claiming the
	// new key ID fails (the key ID is authenticated as additional data).
	tok, err := oldIs.Mint(now, time.Minute, clientIP, clientPort, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tok[1] = 2
	if v.Admit(now, tok, clientIP, clientPort, nil, nil).OK {
		t.Fatal("cross-key token admitted")
	}
}

func TestStormDetection(t *testing.T) {
	var storms int
	var lastDrops uint64
	_, v := newPair(t, VerifierConfig{
		Require:        true,
		Window:         10 * time.Second,
		StormThreshold: 5,
		OnStorm:        func(d uint64) { storms++; lastDrops = d },
	})
	now := time.Unix(1000, 0)
	for i := 0; i < 20; i++ {
		v.Admit(now, nil, clientIP, clientPort, nil, nil)
	}
	if storms != 1 || lastDrops != 5 {
		t.Fatalf("storms=%d drops=%d (want one firing at the threshold)", storms, lastDrops)
	}
	if v.Metrics().Storms.Load() != 1 {
		t.Fatalf("storm counter %d", v.Metrics().Storms.Load())
	}
	// The next window re-arms the trigger.
	for i := 0; i < 20; i++ {
		v.Admit(now.Add(11*time.Second), nil, clientIP, clientPort, nil, nil)
	}
	if storms != 2 {
		t.Fatalf("storms=%d after window rotation", storms)
	}
}

func TestMintValidation(t *testing.T) {
	is, _ := newPair(t, VerifierConfig{})
	now := time.Unix(1000, 0)
	sig := bytes.Repeat([]byte{1}, 20)
	if _, err := is.Mint(now, 0, clientIP, clientPort, nil, nil); err == nil {
		t.Fatal("zero ttl minted")
	}
	if _, err := is.Mint(now, time.Minute, []byte{1, 2, 3}, clientPort, nil, nil); err == nil {
		t.Fatal("3-byte ip minted")
	}
	if _, err := is.Mint(now, time.Minute, clientIP, clientPort, sig, nil); err == nil {
		t.Fatal("one-sided anchors minted")
	}
	if _, err := is.Mint(now, time.Minute, clientIP, clientPort, sig, bytes.Repeat([]byte{2}, 33)); err == nil {
		t.Fatal("oversized anchor minted")
	}
}

// TestAdmissionZeroAlloc pins the verify path — accept and reject alike —
// at zero allocations per operation, the property that makes rejection
// flood-proof.
func TestAdmissionZeroAlloc(t *testing.T) {
	is, v := newPair(t, VerifierConfig{Require: true})
	now := time.Unix(1000, 0)
	sig := bytes.Repeat([]byte{1}, 20)
	ack := bytes.Repeat([]byte{2}, 20)

	const runs = 200
	// Accept path: each run consumes a fresh pre-minted token.
	tokens := make([][]byte, runs+10)
	for i := range tokens {
		tok, err := is.Mint(now, time.Hour, clientIP, clientPort, sig, ack)
		if err != nil {
			t.Fatal(err)
		}
		tokens[i] = tok
	}
	// The replay bitmap is probabilistic: distinct nonces can collide in
	// the default window, so count accepts instead of requiring all.
	idx, accepted := 0, 0
	if n := testing.AllocsPerRun(runs, func() {
		if v.Admit(now, tokens[idx], clientIP, clientPort, sig, ack).OK {
			accepted++
		}
		idx++
	}); n != 0 {
		t.Fatalf("accept path allocates %.1f/op", n)
	}
	if accepted < runs*9/10 {
		t.Fatalf("only %d/%d fresh tokens accepted", accepted, runs)
	}

	forged := append([]byte(nil), tokens[0]...)
	forged[30] ^= 1
	replayed := tokens[0]
	for name, tok := range map[string][]byte{"forged": forged, "replayed": replayed, "missing": nil} {
		if n := testing.AllocsPerRun(runs, func() {
			if v.Admit(now, tok, clientIP, clientPort, sig, ack).OK {
				t.Fatalf("%s token admitted", name)
			}
		}); n != 0 {
			t.Fatalf("%s reject path allocates %.1f/op", name, n)
		}
	}
}

// BenchmarkAdmitReject measures the flood-rejection hot path: a forged
// token that fails AEAD authentication. Must report 0 allocs/op.
func BenchmarkAdmitReject(b *testing.B) {
	is, v := newPair(b, VerifierConfig{Require: true})
	now := time.Unix(1000, 0)
	tok, err := is.Mint(now, time.Hour, clientIP, clientPort, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	tok[30] ^= 1 // break the tag
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Admit(now, tok, clientIP, clientPort, nil, nil).OK {
			b.Fatal("forged token admitted")
		}
	}
}

// BenchmarkAdmitMissing measures rejection of token-less HS1s under
// Require — no decrypt at all, the cheapest refusal.
func BenchmarkAdmitMissing(b *testing.B) {
	_, v := newPair(b, VerifierConfig{Require: true})
	now := time.Unix(1000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Admit(now, nil, clientIP, clientPort, nil, nil).OK {
			b.Fatal("token-less admitted")
		}
	}
}

// BenchmarkAdmitAccept measures a successful verification (the replay mark
// makes each op use a distinct pre-minted token).
func BenchmarkAdmitAccept(b *testing.B) {
	// A short replay window plus an advancing clock keeps the bitmap
	// sparse at any b.N: long benchtimes would otherwise saturate the
	// filter with accumulated nonces and measure false replays instead.
	is, v := newPair(b, VerifierConfig{Require: true, Window: time.Second})
	start := time.Unix(1000, 0)
	tokens := make([][]byte, b.N)
	for i := range tokens {
		tok, err := is.Mint(start.Add(time.Duration(i)*100*time.Microsecond), time.Hour, clientIP, clientPort, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		tokens[i] = tok
	}
	b.ReportAllocs()
	b.ResetTimer()
	accepted := 0
	for i := 0; i < b.N; i++ {
		now := start.Add(time.Duration(i) * 100 * time.Microsecond)
		if v.Admit(now, tokens[i], clientIP, clientPort, nil, nil).OK {
			accepted++
		}
	}
	b.StopTimer()
	// Distinct nonces can collide in the replay bitmap; near-total
	// acceptance is the property, not perfection.
	if accepted < b.N*9/10 {
		b.Fatalf("only %d/%d fresh tokens accepted", accepted, b.N)
	}
}
