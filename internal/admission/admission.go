// Package admission implements the stateless connect-token tier in front
// of session creation: the udpx-style gateway/server split adapted to
// ALPHA's handshake (ROADMAP item 1).
//
// An out-of-band issuer mints short-lived AEAD tokens binding the client's
// address, an expiry, and (optionally) the client's hash-chain anchors
// (§3.4). The UDP server admits an HS1 only when the token decrypts,
// validates, and matches the observed source — one symmetric decrypt and
// zero allocations, with no server-side state until the token checks out.
// A rotating seen-nonce bitmap rejects respray of a captured token.
//
// Token wire format (TokenLen = 88 bytes):
//
//	version(1) | keyID(1) | nonce(12) | AES-256-GCM(claims)(58+16)
//
// with the version and key ID authenticated as additional data, and claims
//
//	expiry_unixnano(8) | client_ip(16) | client_port(2) | anchor_hash(32)
//
// where anchor_hash is SHA-256(sigAnchor || ackAnchor), or all zeros for
// an address-only token (minted before the client derives its chains; the
// handshake then still runs the §3.4 signature verify).
package admission

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"alpha/internal/telemetry"
)

// Token layout.
const (
	// TokenVersion is the only token format this package mints or accepts.
	TokenVersion = 1
	// KeySize is the AES-256 token key size.
	KeySize   = 32
	nonceLen  = 12
	claimsLen = 8 + 16 + 2 + 32 // expiry | ip | port | anchor hash
	tagLen    = 16
	// TokenLen is the exact encoded token size.
	TokenLen = 2 + nonceLen + claimsLen + tagLen
)

// Key is one symmetric token key.
type Key [KeySize]byte

var (
	// ErrBadKey reports a malformed key configuration.
	ErrBadKey = errors.New("admission: bad token key")
	// ErrAnchors reports anchors unsuitable for binding.
	ErrAnchors = errors.New("admission: bad anchors")
)

// zeroBinding is the anchor-hash claim of an address-only token.
var zeroBinding [32]byte

// AnchorBinding hashes a client's chain anchors into the token's binding
// claim. Anchor sizes follow the hash suite, so the binding hash is fixed
// at SHA-256 regardless of suite.
func AnchorBinding(sigAnchor, ackAnchor []byte) [32]byte {
	var buf [64]byte
	n := copy(buf[:], sigAnchor)
	n += copy(buf[n:], ackAnchor)
	return sha256.Sum256(buf[:n])
}

func newAEAD(key Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// pad16 writes ip into dst in 16-byte form (IPv4 as a v4-mapped v6
// address, the same normalization both minting and verification use).
//
//alpha:hotpath
func pad16(dst *[16]byte, ip []byte) bool {
	switch len(ip) {
	case 4:
		dst[10], dst[11] = 0xFF, 0xFF
		copy(dst[12:], ip)
		return true
	case 16:
		copy(dst[:], ip)
		return true
	default:
		return false
	}
}

// Issuer mints connect tokens under one key. Safe for concurrent use.
type Issuer struct {
	keyID uint8
	aead  cipher.AEAD
	rand  io.Reader
}

// NewIssuer creates an issuer minting under the given key ID.
func NewIssuer(keyID uint8, key Key) (*Issuer, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return &Issuer{keyID: keyID, aead: aead, rand: rand.Reader}, nil
}

// Mint issues a token for the client at ip:port, valid until now+ttl. Pass
// nil anchors for an address-only token; otherwise both anchors bind and
// the admitting server may skip the §3.4 signature verification.
func (is *Issuer) Mint(now time.Time, ttl time.Duration, ip []byte, port int, sigAnchor, ackAnchor []byte) ([]byte, error) {
	if ttl <= 0 {
		return nil, errors.New("admission: non-positive ttl")
	}
	var addr [16]byte
	if !pad16(&addr, ip) {
		return nil, fmt.Errorf("admission: client ip length %d", len(ip))
	}
	if (sigAnchor == nil) != (ackAnchor == nil) {
		return nil, ErrAnchors
	}
	var claims [claimsLen]byte
	binary.BigEndian.PutUint64(claims[0:8], uint64(now.Add(ttl).UnixNano()))
	copy(claims[8:24], addr[:])
	binary.BigEndian.PutUint16(claims[24:26], uint16(port))
	if sigAnchor != nil {
		if len(sigAnchor) == 0 || len(sigAnchor) > 32 || len(ackAnchor) == 0 || len(ackAnchor) > 32 {
			return nil, ErrAnchors
		}
		binding := AnchorBinding(sigAnchor, ackAnchor)
		copy(claims[26:58], binding[:])
	}
	out := make([]byte, 2, TokenLen)
	out[0], out[1] = TokenVersion, is.keyID
	nonce := make([]byte, nonceLen)
	if _, err := io.ReadFull(is.rand, nonce); err != nil {
		return nil, err
	}
	out = append(out, nonce...)
	return is.aead.Seal(out, nonce, claims[:], out[:2]), nil
}

// VerifierConfig configures an admission verifier.
type VerifierConfig struct {
	// Keys are the accepted token keys by key ID — typically the current
	// key plus the previous one during rotation. At least one is required.
	Keys map[uint8]Key
	// Require rejects token-less HS1s. When false the verifier waves
	// token-less handshakes through (degraded mode for clients without an
	// issuer) but still rejects any token that fails validation.
	Require bool
	// Window is the replay-filter rotation period; a token nonce is
	// remembered for at least one full window after first use, so Window
	// should be >= the issuer's longest TTL. <= 0 selects 30s.
	Window time.Duration
	// WindowBits sizes each replay generation's bitmap in bits (rounded up
	// to a power of two, minimum 1<<12). <= 0 selects 1<<20 (128 KiB per
	// generation).
	WindowBits int
	// StormThreshold fires OnStorm when a single replay window rejects
	// this many HS packets (0 disables).
	StormThreshold uint64
	// OnStorm observes admission storms (at most once per window). Called
	// from the dispatch path; keep it cheap.
	OnStorm func(drops uint64)
}

// Verifier validates connect tokens on the server's receive path. All
// methods are safe for concurrent use; Admit allocates nothing.
type Verifier struct {
	keys    map[uint8]cipher.AEAD
	require bool
	window  time.Duration
	tel     telemetry.AdmissionMetrics

	stormThreshold uint64
	onStorm        func(uint64)

	// Replay filter: two bitmap generations. A nonce is marked in cur on
	// first successful use and checked against both, so it stays blocked
	// for one to two windows. rotateNS is the unixnano of the last swap;
	// windowDrops and stormFired reset with it. mu serializes rotation
	// only; the admit path reads the generation pointers atomically.
	mu          sync.Mutex
	cur, prev   atomic.Pointer[bitset]
	rotateNS    atomic.Int64
	windowDrops atomic.Uint64
	stormFired  atomic.Bool

	scratch sync.Pool
}

// NewVerifier creates a verifier accepting the configured keys.
func NewVerifier(cfg VerifierConfig) (*Verifier, error) {
	if len(cfg.Keys) == 0 {
		return nil, ErrBadKey
	}
	v := &Verifier{
		keys:           make(map[uint8]cipher.AEAD, len(cfg.Keys)),
		require:        cfg.Require,
		window:         cfg.Window,
		stormThreshold: cfg.StormThreshold,
		onStorm:        cfg.OnStorm,
	}
	for id, key := range cfg.Keys {
		aead, err := newAEAD(key)
		if err != nil {
			return nil, err
		}
		v.keys[id] = aead
	}
	if v.window <= 0 {
		v.window = 30 * time.Second
	}
	bits := cfg.WindowBits
	if bits <= 0 {
		bits = 1 << 20
	}
	v.cur.Store(newBitset(bits))
	v.prev.Store(newBitset(bits))
	v.scratch.New = func() any {
		b := make([]byte, 0, claimsLen)
		return &b
	}
	return v, nil
}

// Metrics exposes the verifier's counters for export.
func (v *Verifier) Metrics() *telemetry.AdmissionMetrics { return &v.tel }

// SetOnStorm installs (or replaces) the storm observer — the transport uses
// this to hook the flight recorder in after construction. Call before
// serving traffic.
func (v *Verifier) SetOnStorm(fn func(drops uint64)) { v.onStorm = fn }

// RejectMalformed counts an HS1 the dispatcher refused before a token could
// even be read (structural parse failure), with the same drop accounting
// and storm detection as a failed token.
func (v *Verifier) RejectMalformed() Verdict {
	return v.reject(telemetry.ReasonAdmissionInvalid)
}

// Verdict is one admission decision.
type Verdict struct {
	// OK admits the handshake.
	OK bool
	// AnchorsBound reports that the token bound the client's anchors, so
	// the §3.4 signature verification may be skipped.
	AnchorsBound bool
	// Reason is the telemetry drop code when !OK.
	Reason uint32
}

// Admit decides one HS1: token is the packet's connect token (nil when
// the flag was absent), ip/port the observed source, sigAnchor/ackAnchor
// the anchors the packet carries. Counters move inside; zero allocations
// on every path.
//
//alpha:hotpath
func (v *Verifier) Admit(now time.Time, token []byte, ip []byte, port int, sigAnchor, ackAnchor []byte) Verdict {
	v.maybeRotate(now)
	if len(token) == 0 {
		if v.require {
			return v.reject(telemetry.ReasonAdmissionMissing)
		}
		return Verdict{OK: true}
	}
	if len(token) != TokenLen || token[0] != TokenVersion {
		return v.reject(telemetry.ReasonAdmissionInvalid)
	}
	aead, ok := v.keys[token[1]]
	if !ok {
		return v.reject(telemetry.ReasonAdmissionInvalid)
	}
	dst := v.scratch.Get().(*[]byte)
	defer v.scratch.Put(dst)
	claims, err := aead.Open((*dst)[:0], token[2:2+nonceLen], token[2+nonceLen:], token[:2])
	if err != nil {
		return v.reject(telemetry.ReasonAdmissionInvalid)
	}
	if uint64(now.UnixNano()) > binary.BigEndian.Uint64(claims[0:8]) {
		return v.reject(telemetry.ReasonAdmissionExpired)
	}
	var want [18]byte
	if !pad16((*[16]byte)(want[0:16]), ip) {
		return v.reject(telemetry.ReasonAdmissionAddrMismatch)
	}
	binary.BigEndian.PutUint16(want[16:18], uint16(port))
	if subtle.ConstantTimeCompare(claims[8:26], want[:]) != 1 {
		return v.reject(telemetry.ReasonAdmissionAddrMismatch)
	}
	bound := false
	if subtle.ConstantTimeCompare(claims[26:58], zeroBinding[:]) != 1 {
		binding := AnchorBinding(sigAnchor, ackAnchor)
		if subtle.ConstantTimeCompare(claims[26:58], binding[:]) != 1 {
			return v.reject(telemetry.ReasonAdmissionInvalid)
		}
		bound = true
	}
	// Replay marking comes last so invalid floods cannot poison the
	// window and a rejected token stays usable from its rightful address.
	if v.seen(binary.BigEndian.Uint64(token[2 : 2+8])) {
		return v.reject(telemetry.ReasonAdmissionReplayed)
	}
	v.tel.TokensVerified.Inc()
	if bound {
		v.tel.AnchorsBound.Inc()
	}
	return Verdict{OK: true, AnchorsBound: bound}
}

// reject counts one refusal and handles storm detection.
//
//alpha:hotpath
func (v *Verifier) reject(reason uint32) Verdict {
	v.tel.NoteDrop(reason)
	drops := v.windowDrops.Add(1)
	if v.stormThreshold > 0 && drops >= v.stormThreshold && v.stormFired.CompareAndSwap(false, true) {
		v.tel.Storms.Inc()
		if v.onStorm != nil {
			v.onStorm(drops)
		}
	}
	return Verdict{Reason: reason}
}

// seen test-and-sets the nonce key in the current generation and checks
// the previous one.
//
//alpha:hotpath
func (v *Verifier) seen(key uint64) bool {
	// Reading a just-retired generation during a concurrent rotation is
	// harmless: at worst one admission lands in the outgoing bitmap, which
	// the two-generation check still covers for a full window.
	if v.cur.Load().testSet(key) {
		return true
	}
	return v.prev.Load().test(key)
}

// maybeRotate swaps replay generations once per window.
func (v *Verifier) maybeRotate(now time.Time) {
	ns := now.UnixNano()
	last := v.rotateNS.Load()
	if last == 0 {
		// First call pins the window origin.
		v.rotateNS.CompareAndSwap(0, ns)
		return
	}
	if ns-last < int64(v.window) {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ns-v.rotateNS.Load() < int64(v.window) {
		return // lost the race to another rotator
	}
	cur, prev := v.cur.Load(), v.prev.Load()
	prev.clear()
	v.prev.Store(cur)
	v.cur.Store(prev)
	v.rotateNS.Store(ns)
	v.windowDrops.Store(0)
	v.stormFired.Store(false)
	v.tel.WindowRotations.Inc()
}

// bitset is a fixed-size concurrent bitmap.
type bitset struct {
	mask  uint64
	words []atomic.Uint64
}

func newBitset(bits int) *bitset {
	n := 1 << 12
	for n < bits {
		n <<= 1
	}
	return &bitset{mask: uint64(n - 1), words: make([]atomic.Uint64, n/64)}
}

// testSet sets the key's bit and reports whether it was already set.
// CAS loop instead of atomic Or: the result is needed, and the Go 1.22
// atomics have no fetch-or.
//
//alpha:hotpath
func (b *bitset) testSet(key uint64) bool {
	i := key & b.mask
	w := &b.words[i/64]
	bit := uint64(1) << (i % 64)
	for {
		old := w.Load()
		if old&bit != 0 {
			return true
		}
		if w.CompareAndSwap(old, old|bit) {
			return false
		}
	}
}

// test reports whether the key's bit is set.
//
//alpha:hotpath
func (b *bitset) test(key uint64) bool {
	i := key & b.mask
	return b.words[i/64].Load()&(uint64(1)<<(i%64)) != 0
}

// clear zeroes every word (cold path, under the verifier's mutex).
func (b *bitset) clear() {
	for i := range b.words {
		b.words[i].Store(0)
	}
}
