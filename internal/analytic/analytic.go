// Package analytic implements the closed-form models of the paper's
// evaluation: Equation (1) and the series behind Figures 5 and 6, the
// per-message operation counts of Table 1, the memory formulas of Tables 2
// and 3, and the estimation procedures behind Table 6 and the WSN numbers
// of §4.1.3. The benchmark harness prints these side by side with measured
// values from real protocol runs, so disagreement between model and
// implementation is visible immediately.
package analytic

import (
	"math"
	"time"
)

// Ceil2Log returns ⌈log2(n)⌉ for n ≥ 1.
func Ceil2Log(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// STotal is Equation (1): the payload bytes coverable by a single
// pre-signature when n S2 packets of spacket bytes carry Merkle proofs of
// sh-byte hashes:
//
//	s_total = n · (s_packet − s_h·(⌈log2 n⌉ + 1))
//
// It returns 0 when the signature data alone overflows the packet.
func STotal(n int, spacket, sh int) int64 {
	per := PerPacketPayload(n, spacket, sh)
	if per <= 0 {
		return 0
	}
	return int64(n) * int64(per)
}

// PerPacketPayload is the payload space left in one S2 packet after the
// ALPHA-M signature data: s_packet − s_h·(⌈log2 n⌉+1). The +1 term is the
// disclosed chain element that travels in every S2.
func PerPacketPayload(n, spacket, sh int) int {
	return spacket - sh*(Ceil2Log(n)+1)
}

// OverheadRatio is Figure 6's series: total transferred bytes per signed
// payload byte for an ALPHA-M batch of n packets of spacket bytes. The
// numerator counts the n S2 packets in full; S1/A1 bytes are amortized to
// negligibility at the figure's scales, matching the paper's curves. It
// returns +Inf when no payload fits.
func OverheadRatio(n, spacket, sh int) float64 {
	signed := STotal(n, spacket, sh)
	if signed <= 0 {
		return math.Inf(1)
	}
	transferred := int64(n) * int64(spacket)
	return float64(transferred) / float64(signed)
}

// Fig5Point is one (n, bytes) sample of Figure 5.
type Fig5Point struct {
	N           int
	SignedBytes int64
}

// Fig5Series evaluates Figure 5 for one packet size over geometrically
// spaced n up to maxN.
func Fig5Series(spacket, sh, maxN int) []Fig5Point {
	var out []Fig5Point
	for n := 1; n <= maxN; n *= 2 {
		out = append(out, Fig5Point{N: n, SignedBytes: STotal(n, spacket, sh)})
	}
	return out
}

// Fig6Point is one (n, ratio) sample of Figure 6.
type Fig6Point struct {
	N     int
	Ratio float64
}

// Fig6Series evaluates Figure 6 for one packet size.
func Fig6Series(spacket, sh, maxN int) []Fig6Point {
	var out []Fig6Point
	for n := 1; n <= maxN; n *= 2 {
		out = append(out, Fig6Point{N: n, Ratio: OverheadRatio(n, spacket, sh)})
	}
	return out
}

// Ops holds Table 1's per-message hash-operation counts for one role.
// Fractional values arise because ALPHA-C and ALPHA-M amortize per-exchange
// work over n messages.
type Ops struct {
	Signature float64 // pre-signature create/verify (MAC or tree work)
	HCCreate  float64 // hash chain creation (off-line computable)
	HCVerify  float64 // hash chain element verification
	AckNack   float64 // acknowledgment-related hashing
}

// Total sums all components.
func (o Ops) Total() float64 { return o.Signature + o.HCCreate + o.HCVerify + o.AckNack }

// Role identifies a column of Table 1.
type Role int

// Table 1 roles.
const (
	Signer Role = iota
	Verifier
	RelayRole
)

// ModeName identifies a row group of Table 1.
type ModeName int

// Table 1 mode groups.
const (
	ALPHA ModeName = iota
	ALPHAC
	ALPHAM
)

// Table1 returns the paper's Table 1 entry for a mode, role and batch size
// n (n is 1 for base ALPHA).
func Table1(m ModeName, r Role, n int) Ops {
	fn := float64(n)
	log2n := math.Log2(fn)
	if n <= 1 {
		log2n = 0
	}
	switch m {
	case ALPHA:
		switch r {
		case Signer:
			return Ops{Signature: 1, HCCreate: 2, HCVerify: 1, AckNack: 1}
		case Verifier:
			return Ops{Signature: 1, HCCreate: 2, HCVerify: 1, AckNack: 2}
		default:
			return Ops{Signature: 1, HCVerify: 1, AckNack: 1}
		}
	case ALPHAC:
		switch r {
		case Signer:
			return Ops{Signature: 1, HCCreate: 2 / fn, HCVerify: 1 / fn, AckNack: 1}
		case Verifier:
			return Ops{Signature: 1, HCCreate: 2 / fn, HCVerify: 1 / fn, AckNack: 2}
		default:
			return Ops{Signature: 1, HCVerify: 1 / fn, AckNack: 1}
		}
	default: // ALPHAM
		switch r {
		case Signer:
			return Ops{Signature: 1 + 2 - 1/fn, HCCreate: 2 / fn, HCVerify: 1 / fn, AckNack: 2 + log2n}
		case Verifier:
			return Ops{Signature: 1 + log2n, HCCreate: 2 / fn, HCVerify: 1 / fn, AckNack: 4 - 1/fn}
		default:
			return Ops{Signature: 1 + log2n, HCVerify: 1 / fn, AckNack: 2 + log2n}
		}
	}
}

// Mem holds Table 2/3 byte counts for the three roles.
type Mem struct {
	Signer, Verifier, Relay int64
}

// Table2 returns the buffering memory for n messages in flight: message
// size m bytes, hash size h bytes (Table 2 of the paper).
func Table2(mode ModeName, n, m, h int) Mem {
	N, M, H := int64(n), int64(m), int64(h)
	switch mode {
	case ALPHA, ALPHAC:
		return Mem{Signer: N * (M + H), Verifier: N * H, Relay: N * H}
	default: // ALPHAM
		return Mem{Signer: N*M + (2*N-1)*H, Verifier: H, Relay: H}
	}
}

// Table3 returns the additional memory for n parallel acknowledgments:
// secret size s bytes, hash size h bytes (Table 3 of the paper).
func Table3(mode ModeName, n, s, h int) Mem {
	N, S, H := int64(n), int64(s), int64(h)
	switch mode {
	case ALPHA, ALPHAC:
		return Mem{Signer: 2 * N * H, Verifier: 2 * N * H, Relay: 2 * N * H}
	default: // ALPHAM
		return Mem{Signer: H, Verifier: N*S + (4*N-1)*H, Relay: H}
	}
}

// Table6Row reproduces one row of Table 6: ALPHA-M estimates for a relay
// verifying a stream of full-size packets, given the measured cost of one
// fixed-input hash operation and one full-packet hash.
type Table6Row struct {
	Leaves int
	// Processing is the estimated per-packet verification time.
	Processing time.Duration
	// Payload is the per-packet payload after signature data.
	Payload int
	// Throughput is the verifiable payload rate.
	ThroughputBitPerS float64
	// DataPerS1 is the total payload covered by one S1.
	DataPerS1 int64
}

// Table6 computes the estimate rows. spacket is the packet budget (1024 B
// of payload space in the paper), sh the hash size, hashFixed the measured
// cost of hashing one or two digests, hashPacket the measured cost of
// hashing a full packet (the MAC-equivalent leaf hash).
func Table6(leaves []int, spacket, sh int, hashFixed, hashPacket time.Duration) []Table6Row {
	rows := make([]Table6Row, 0, len(leaves))
	for _, n := range leaves {
		// Verifying one S2: hash the payload into its leaf, then
		// ⌈log2 n⌉ fixed-length node hashes up to the root (the root
		// step absorbs the chain element), plus one amortized chain
		// verification.
		steps := float64(Ceil2Log(n)) + 1
		proc := hashPacket + time.Duration(steps*float64(hashFixed))
		payload := PerPacketPayload(n, spacket, sh)
		if payload < 0 {
			payload = 0
		}
		var tput float64
		if proc > 0 {
			tput = float64(payload) * 8 / proc.Seconds()
		}
		rows = append(rows, Table6Row{
			Leaves:            n,
			Processing:        proc,
			Payload:           payload,
			ThroughputBitPerS: tput,
			DataPerS1:         int64(n) * int64(payload),
		})
	}
	return rows
}

// WSNEstimate reproduces §4.1.3's arithmetic: ALPHA-C on an IEEE 802.15.4
// sensor link with payload-sized packets, given measured MMO hash costs.
type WSNEstimate struct {
	// PayloadPerPacket is the usable payload after ALPHA overhead.
	PayloadPerPacket int
	// PacketsPerSecond is how many S2 packets the relay CPU can verify.
	PacketsPerSecond float64
	// VerifiableKbps is the resulting authenticated throughput.
	VerifiableKbps float64
}

// WSN computes the §4.1.3 estimate. payload is the radio packet payload
// (100 B in the paper), h the hash size (16), nPreSigs the ALPHA-C batch
// (5), hashSmall the measured cost of hashing ~2 digests, hashPacket the
// cost of MACing a full payload, withPreAcks adds the pre-ack verification
// work of §3.2.2.
func WSN(payload, h, nPreSigs int, hashSmall, hashPacket time.Duration, withPreAcks bool) WSNEstimate {
	// Per-packet signature overhead: the disclosed chain element plus the
	// MAC, and the amortized share of this exchange's pre-signature data
	// in the S1.
	overhead := h + h + h/nPreSigs
	usable := payload - overhead
	if usable < 0 {
		usable = 0
	}
	// Relay work per S2: one MAC over the packet plus amortized chain
	// verification; pre-acks add hashing the (n)ack pair per message.
	per := hashPacket + time.Duration(float64(hashSmall)/float64(nPreSigs))
	if withPreAcks {
		per += 2 * hashSmall
	}
	pps := 0.0
	if per > 0 {
		pps = 1 / per.Seconds()
	}
	return WSNEstimate{
		PayloadPerPacket: usable,
		PacketsPerSecond: pps,
		VerifiableKbps:   pps * float64(usable) * 8 / 1000,
	}
}
