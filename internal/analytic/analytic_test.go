package analytic

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCeil2Log(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Ceil2Log(n); got != want {
			t.Errorf("Ceil2Log(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSTotalEquation1(t *testing.T) {
	// Hand-checked points of Eq. (1) with 20 B hashes.
	cases := []struct {
		n, spacket int
		want       int64
	}{
		{1, 1280, 1260},            // 1280 - 20·(0+1)
		{2, 1280, 2 * (1280 - 40)}, // depth 1
		{8, 1280, 8 * (1280 - 80)}, // depth 3
		{1, 128, 108},
		{64, 128, 0},  // proof alone (6+1)·20=140 > 128
		{128, 128, 0}, // negative payload clamps to 0
	}
	for _, c := range cases {
		if got := STotal(c.n, c.spacket, 20); got != c.want {
			t.Errorf("STotal(%d,%d) = %d, want %d", c.n, c.spacket, got, c.want)
		}
	}
}

func TestSTotalSeeSaw(t *testing.T) {
	// Fig. 5's see-saw: crossing a power of two adds a tree level and
	// shrinks the per-packet payload.
	per8 := PerPacketPayload(8, 512, 20)
	per9 := PerPacketPayload(9, 512, 20)
	if per9 != per8-20 {
		t.Fatalf("payload at n=9 should drop one hash: %d vs %d", per9, per8)
	}
	// But total still grows in the long run.
	if STotal(16, 512, 20) <= STotal(8, 512, 20) {
		t.Fatalf("total signed bytes should keep growing past the dip")
	}
}

func TestOverheadRatioShape(t *testing.T) {
	// Fig. 6: ratios grow with n and are worse for small packets.
	if OverheadRatio(1024, 128, 20) <= OverheadRatio(1024, 1280, 20) {
		t.Fatalf("small packets must pay higher overhead")
	}
	if OverheadRatio(1<<16, 1280, 20) <= OverheadRatio(2, 1280, 20) {
		t.Fatalf("overhead must grow with tree depth")
	}
	if !math.IsInf(OverheadRatio(1024, 128, 20), 1) {
		t.Fatalf("ratio must be +Inf when no payload fits")
	}
	// At n=1 and big packets the ratio approaches 1 from above.
	r := OverheadRatio(1, 1280, 20)
	if r < 1 || r > 1.05 {
		t.Fatalf("n=1 ratio %f out of expected band", r)
	}
}

func TestQuickSTotalInvariants(t *testing.T) {
	f := func(nSel, spSel uint16) bool {
		n := 1 + int(nSel)%100000
		sp := 64 + int(spSel)%4096
		got := STotal(n, sp, 20)
		if got < 0 {
			return false
		}
		// Total never exceeds n × packet budget.
		if got > int64(n)*int64(sp) {
			return false
		}
		// And equals n × per-packet payload when positive.
		per := PerPacketPayload(n, sp, 20)
		if per > 0 && got != int64(n)*int64(per) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFigSeriesMonotoneN(t *testing.T) {
	pts := Fig5Series(1280, 20, 1<<20)
	for i := 1; i < len(pts); i++ {
		if pts[i].N != pts[i-1].N*2 {
			t.Fatalf("series spacing broken at %d", i)
		}
	}
	ratios := Fig6Series(1280, 20, 1<<20)
	for i := 1; i < len(ratios); i++ {
		if ratios[i].Ratio+1e-9 < ratios[i-1].Ratio {
			t.Fatalf("Fig6 ratio decreased at n=%d: %f -> %f", ratios[i].N, ratios[i-1].Ratio, ratios[i].Ratio)
		}
	}
}

func TestTable1ModelValues(t *testing.T) {
	// Spot-check against the paper's printed Table 1.
	base := Table1(ALPHA, Signer, 1)
	if base.Signature != 1 || base.HCCreate != 2 || base.HCVerify != 1 || base.AckNack != 1 {
		t.Fatalf("ALPHA signer row wrong: %+v", base)
	}
	relay := Table1(ALPHA, RelayRole, 1)
	if relay.HCCreate != 0 {
		t.Fatalf("relays never create chains: %+v", relay)
	}
	c := Table1(ALPHAC, Verifier, 16)
	if c.HCVerify != 1.0/16 || c.AckNack != 2 {
		t.Fatalf("ALPHA-C verifier row wrong: %+v", c)
	}
	m := Table1(ALPHAM, Verifier, 16)
	if m.Signature != 1+4 { // 1* + log2(16)
		t.Fatalf("ALPHA-M verifier signature ops: %+v", m)
	}
	if got := Table1(ALPHAM, Signer, 16).Signature; math.Abs(got-(3-1.0/16)) > 1e-9 {
		t.Fatalf("ALPHA-M signer signature ops: %v", got)
	}
}

func TestTable2ModelValues(t *testing.T) {
	// Paper Table 2 with n=16, m=1024, h=20.
	got := Table2(ALPHA, 16, 1024, 20)
	if got.Signer != 16*(1024+20) || got.Verifier != 16*20 || got.Relay != 16*20 {
		t.Fatalf("ALPHA row: %+v", got)
	}
	m := Table2(ALPHAM, 16, 1024, 20)
	if m.Signer != 16*1024+31*20 || m.Verifier != 20 || m.Relay != 20 {
		t.Fatalf("ALPHA-M row: %+v", m)
	}
	// The paper's headline: ALPHA-M relay state is independent of n.
	if Table2(ALPHAM, 1024, 1024, 20).Relay != Table2(ALPHAM, 1, 1024, 20).Relay {
		t.Fatalf("ALPHA-M relay memory must not grow with n")
	}
}

func TestTable3ModelValues(t *testing.T) {
	got := Table3(ALPHA, 8, 20, 20)
	if got.Signer != 2*8*20 || got.Verifier != 2*8*20 || got.Relay != 2*8*20 {
		t.Fatalf("ALPHA row: %+v", got)
	}
	m := Table3(ALPHAM, 8, 20, 20)
	if m.Signer != 20 || m.Verifier != 8*20+31*20 || m.Relay != 20 {
		t.Fatalf("ALPHA-M row: %+v", m)
	}
}

func TestTable6Shape(t *testing.T) {
	rows := Table6([]int{16, 32, 64, 128, 256, 512, 1024}, 1024, 20, time.Microsecond, 10*time.Microsecond)
	if len(rows) != 7 {
		t.Fatalf("rows %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if cur.Processing <= prev.Processing {
			t.Fatalf("processing must grow with leaves: %v -> %v", prev.Processing, cur.Processing)
		}
		if cur.Payload != prev.Payload-20 {
			t.Fatalf("payload must shrink one hash per level: %d -> %d", prev.Payload, cur.Payload)
		}
		if cur.ThroughputBitPerS >= prev.ThroughputBitPerS {
			t.Fatalf("throughput must decline with leaves")
		}
		if cur.DataPerS1 <= prev.DataPerS1 {
			t.Fatalf("data per S1 must grow with leaves")
		}
		// Roughly doubling per row, as in the paper's rightmost column.
		ratio := float64(cur.DataPerS1) / float64(prev.DataPerS1)
		if ratio < 1.7 || ratio > 2.1 {
			t.Fatalf("data-per-S1 growth ratio %f outside ~2x", ratio)
		}
	}
}

func TestWSNEstimateShape(t *testing.T) {
	// With the paper's CC2430-ish constants (0.78 ms small, 2.01 ms for
	// an 84 B input ≈ a 100 B MAC), the estimate must land near the
	// published 244 / 156.56 Kbit/s split.
	plain := WSN(100, 16, 5, 780*time.Microsecond, 2010*time.Microsecond, false)
	acked := WSN(100, 16, 5, 780*time.Microsecond, 2010*time.Microsecond, true)
	if plain.VerifiableKbps < 150 || plain.VerifiableKbps > 350 {
		t.Fatalf("plain estimate %f Kbit/s implausible vs paper's 244", plain.VerifiableKbps)
	}
	if acked.VerifiableKbps >= plain.VerifiableKbps {
		t.Fatalf("pre-acks must cost throughput")
	}
	ratio := plain.VerifiableKbps / acked.VerifiableKbps
	if ratio < 1.2 || ratio > 2.2 {
		t.Fatalf("pre-ack cost ratio %f far from paper's ~1.56", ratio)
	}
	if plain.PayloadPerPacket <= 0 || plain.PayloadPerPacket >= 100 {
		t.Fatalf("payload per packet %d out of range", plain.PayloadPerPacket)
	}
}
