//go:build linux && (amd64 || arm64)

// The segmentation-offload engine tier: UDP GSO sends (one kernel traversal
// per same-size run), UDP GRO receives (split coalesced datagrams back into
// segments), and an opt-in MSG_ZEROCOPY send path with an errqueue
// completion reaper. Everything is probed per feature at socket setup and
// self-disables at runtime when the kernel pushes back, so the tier only
// ever narrows toward the plain batched engine it embeds.

package udpio

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"alpha/internal/telemetry"
)

// Linux UAPI numbers the syscall package predates. All frozen ABI.
const (
	solUDP     = 17  // SOL_UDP
	udpSegment = 103 // UDP_SEGMENT: cmsg carries the uint16 segment size
	udpGRO     = 104 // UDP_GRO: setsockopt enables coalesced delivery
	soZeroCopy = 60  // SO_ZEROCOPY at SOL_SOCKET

	msgZeroCopy = 0x4000000 // MSG_ZEROCOPY send flag
	msgErrqueue = 0x2000    // MSG_ERRQUEUE recv flag

	solIP       = 0  // SOL_IP: errqueue cmsg level on IPv4 sockets
	ipRecvErr   = 11 // IP_RECVERR cmsg type
	solIPv6     = 41 // SOL_IPV6
	ipv6RecvErr = 25 // IPV6_RECVERR

	soEEOriginZerocopy     = 5 // sock_extended_err.ee_origin
	soEECodeZerocopyCopied = 1 // ee_code: the kernel copied after all
)

// GSO packing limits: the kernel refuses more than 64 segments per send,
// and the packed run must still fit one UDP payload.
const (
	gsoMaxSegs  = 64
	gsoMaxBytes = 65507
)

// cmsgSpace is CMSG_SPACE for both offload cmsgs on the supported 64-bit
// ABIs: align(sizeof cmsghdr)=16 plus align(2 or 4 data bytes)=8.
const cmsgSpace = 24

// groSlot sizes one coalesced-receive slab slot: a maximally coalesced
// datagram is one full UDP payload.
const groSlot = 64 << 10

// Zero-copy send tuning. The slab ring bounds in-flight completions; below
// zcMinBytes page pinning costs more than the copy it avoids.
const (
	zcSlots      = 16
	zcSlotSize   = 64 << 10
	zcMinBytes   = 4096
	zcMaxENOBUFS = 3 // consecutive ENOBUFS before the path disables itself
	zcMaxCopied  = 8 // consecutive copied completions before giving up
)

var (
	errOffloadUnsupported = errors.New("udpio: no requested offload feature supported")
	errNoProgress         = errors.New("udpio: sendmmsg made no progress")
	// errGSOFallback is internal: GSO sends were rejected at runtime, the
	// burst was not transmitted, and the caller must re-send through the
	// plain batched path.
	errGSOFallback = errors.New("udpio: gso rejected, falling back")
)

// sockExtendedErr mirrors struct sock_extended_err from <linux/errqueue.h>;
// zero-copy completions carry ee_origin SO_EE_ORIGIN_ZEROCOPY and the
// completed id range in [ee_info, ee_data].
type sockExtendedErr struct {
	Errno  uint32
	Origin uint8
	Type   uint8
	Code   uint8
	Pad    uint8
	Info   uint32
	Data   uint32
}

// groPend is one received (possibly coalesced) datagram waiting in the
// receive slab to be handed out segment by segment.
type groPend struct {
	off, end int // live window into rslab
	seg      int // segment size from the UDP_GRO cmsg; 0 = not coalesced
	addr     net.Addr
}

// offloadConn layers GSO/GRO/zero-copy over the batched engine it embeds,
// reusing its header/iovec/sockaddr scratch, its locks, and its address
// intern cache. Features degrade independently: a runtime rejection turns
// just that feature off and the rest keep running.
type offloadConn struct {
	*batchConn
	st OffloadStatus

	// GSO send state (wmu). gsoOn is atomic so a runtime EINVAL can turn
	// the feature off without widening the lock.
	gsoOn uint32
	wctrl []byte // one cmsgSpace-sized UDP_SEGMENT slot per header
	wruns []int  // datagrams packed per header in the burst being built

	// GRO receive state (rmu): a small slab of full-payload slots the
	// kernel fills, split lazily into caller buffers.
	gro       bool
	groN      int
	rslab     []byte
	gctrl     []byte
	rpends    []groPend
	rpendHead int
	rpendN    int

	// Zero-copy send state. Ids are sequential per socket: issued under
	// wmu, completed by the reaper; slot index is id mod zcSlots, so
	// capacity gating on issued-completed keeps slot reuse safe.
	zcOn        uint32 // atomic
	zcIssued    uint32 // atomic (written under wmu)
	zcCompleted uint32 // atomic (written by the reaper)
	zcCopiedRun uint32 // atomic: consecutive copied completions
	zcENOBUFS   int    // under wmu
	zcSlab      []byte
	zcWriteFn   func(fd uintptr) bool
	zcKick      chan struct{}
	zcDone      chan struct{}
	zcPad       [64]byte
	zcOOB       [256]byte
	closeOnce   sync.Once
}

// newOffloadConn builds the offload tier over uc, probing each requested
// feature with a setsockopt and keeping whatever sticks. It fails (so
// WrapOffload can fall back to the batched engine) only when nothing was
// granted or the socket is unusable.
func newOffloadConn(uc *net.UDPConn, batch int, opts OffloadOptions, m *telemetry.IOMetrics) (Conn, OffloadStatus, error) {
	bc, err := newBatchConn(uc, batch, m)
	if err != nil {
		return nil, OffloadStatus{}, err
	}
	var st OffloadStatus
	cerr := bc.rc.Control(func(fd uintptr) {
		if opts.GSO {
			// Value 0 clears any socket-wide segment size (runs are tagged
			// per send via cmsg); success proves kernel support (≥ 4.18).
			st.GSO = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
		}
		if opts.GRO {
			st.GRO = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil
		}
		if opts.ZeroCopy {
			st.ZeroCopy = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soZeroCopy, 1) == nil
		}
	})
	if cerr != nil {
		return nil, OffloadStatus{}, cerr
	}
	if !st.GSO && !st.GRO && !st.ZeroCopy {
		return nil, OffloadStatus{}, errOffloadUnsupported
	}
	c := &offloadConn{batchConn: bc, st: st}
	if st.GSO || st.ZeroCopy {
		c.wruns = make([]int, len(bc.whdrs))
	}
	if st.GSO {
		atomic.StoreUint32(&c.gsoOn, 1)
		c.wctrl = make([]byte, len(bc.whdrs)*cmsgSpace)
	}
	if st.GRO {
		c.gro = true
		n := batch / 8
		if n < 1 {
			n = 1
		}
		if n > 8 {
			n = 8
		}
		c.groN = n
		c.rslab = make([]byte, n*groSlot)
		c.gctrl = make([]byte, n*cmsgSpace)
		c.rpends = make([]groPend, n)
	}
	if st.ZeroCopy {
		atomic.StoreUint32(&c.zcOn, 1)
		c.zcSlab = make([]byte, zcSlots*zcSlotSize)
		c.zcWriteFn = c.zcSendmmsg
		c.zcKick = make(chan struct{}, 1)
		c.zcDone = make(chan struct{})
		go c.reapLoop()
	}
	return c, st, nil
}

// Offload reports the feature set granted at setup (runtime self-disables
// are not reflected here; they only narrow behavior, not capability).
func (c *offloadConn) Offload() OffloadStatus { return c.st }

// Close stops the zero-copy completion reaper. The underlying socket stays
// open — the engine never owns it.
func (c *offloadConn) Close() error {
	c.closeOnce.Do(func() {
		if c.zcDone != nil {
			close(c.zcDone)
		}
	})
	return nil
}

// zcSendmmsg is the MSG_ZEROCOPY variant of the sendmmsg RawConn callback.
func (c *offloadConn) zcSendmmsg(fd uintptr) bool {
	r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&c.whdrs[0])), uintptr(c.wn),
		syscall.MSG_DONTWAIT|msgZeroCopy, 0, 0)
	switch errno {
	case 0:
		c.wgot = int(r)
	case syscall.EAGAIN, syscall.EINTR:
		return false
	default:
		c.werrno = errno
	}
	return true
}

// WriteBatch sends ms through the offload path while GSO or zero-copy is
// live, and otherwise delegates straight to the batched engine.
//
//alpha:hotpath
func (c *offloadConn) WriteBatch(ms []Message) (int, error) {
	if atomic.LoadUint32(&c.gsoOn) == 0 && atomic.LoadUint32(&c.zcOn) == 0 {
		return c.batchConn.WriteBatch(ms)
	}
	c.wmu.Lock()
	sent := 0
	for sent < len(ms) {
		n, err := c.sendBurst(ms[sent:])
		sent += n
		if err == errGSOFallback {
			// The kernel rejected UDP_SEGMENT at send time (offload probe
			// passed but the path refuses, e.g. some virtual devices).
			// Nothing from this burst was transmitted; re-send plainly.
			c.wmu.Unlock()
			m, merr := c.batchConn.WriteBatch(ms[sent:])
			return sent + m, merr
		}
		if err != nil {
			c.wmu.Unlock()
			return sent, err
		}
	}
	c.wmu.Unlock()
	return sent, nil
}

// sendBurst packs one sendmmsg burst from the front of ms — GSO runs of
// same-destination, equal-size datagrams become single headers — and sends
// it, optionally through the zero-copy slab ring. Returns datagrams
// consumed. Caller holds wmu.
//
//alpha:hotpath
func (c *offloadConn) sendBurst(ms []Message) (int, error) {
	gso := atomic.LoadUint32(&c.gsoOn) == 1
	nh, iv, used, bytes := 0, 0, 0, 0
	anyGSO := false
	for used < len(ms) && nh < len(c.whdrs) && iv < len(c.wiovs) {
		// A run: consecutive messages to the same destination with equal
		// size; one smaller tail segment may close it (kernel rule).
		sz := ms[used].N
		run := 1
		if gso && sz > 0 && sz <= gsoMaxBytes {
			maxRun := len(c.wiovs) - iv
			if maxRun > gsoMaxSegs {
				maxRun = gsoMaxSegs
			}
			if maxRun > len(ms)-used {
				maxRun = len(ms) - used
			}
			total := sz
			for run < maxRun {
				nxt := &ms[used+run]
				if nxt.Addr != ms[used].Addr || nxt.N <= 0 || nxt.N > sz || total+nxt.N > gsoMaxBytes {
					break
				}
				total += nxt.N
				run++
				if nxt.N < sz {
					break
				}
			}
		}
		nl, err := c.destAddr(ms[used].Addr, &c.wnames[nh])
		if err != nil {
			if nh > 0 {
				break // flush what is packed; the retry surfaces the error
			}
			return 0, err
		}
		h := &c.whdrs[nh].hdr
		h.Name = (*byte)(unsafe.Pointer(&c.wnames[nh]))
		h.Namelen = nl
		h.Iov = &c.wiovs[iv]
		h.Iovlen = uint64(run)
		h.Control = nil
		h.Controllen = 0
		h.Flags = 0
		c.whdrs[nh].n = 0
		for k := 0; k < run; k++ {
			msg := &ms[used+k]
			if msg.N > 0 {
				c.wiovs[iv+k].Base = &msg.Buf[0]
			} else {
				c.wiovs[iv+k].Base = nil
			}
			c.wiovs[iv+k].SetLen(msg.N)
			bytes += msg.N
		}
		if run > 1 {
			ctrl := c.wctrl[nh*cmsgSpace : nh*cmsgSpace+cmsgSpace]
			cm := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
			cm.Level = solUDP
			cm.Type = udpSegment
			cm.Len = uint64(syscall.CmsgLen(2))
			*(*uint16)(unsafe.Pointer(&ctrl[syscall.CmsgLen(0)])) = uint16(sz)
			h.Control = &ctrl[0]
			h.Controllen = cmsgSpace
			anyGSO = true
		}
		c.wruns[nh] = run
		nh++
		iv += run
		used += run
	}
	if nh == 0 {
		return 0, nil
	}

	// Zero-copy pass: MSG_ZEROCOPY pins the pages until the completion
	// arrives, but §5e promises callers their buffers back at return — so
	// the payload moves into stable ring slots first. Worth it only for
	// bursts big enough to beat the copy.
	zc := false
	if atomic.LoadUint32(&c.zcOn) == 1 && bytes >= zcMinBytes {
		free := zcSlots - int(atomic.LoadUint32(&c.zcIssued)-atomic.LoadUint32(&c.zcCompleted))
		if free >= nh {
			zc = true
			ivc := 0
			for i := 0; i < nh; i++ {
				slot := int(atomic.LoadUint32(&c.zcIssued)+uint32(i)) % zcSlots
				dst := c.zcSlab[slot*zcSlotSize : slot*zcSlotSize+zcSlotSize]
				n := 0
				for k := 0; k < c.wruns[i]; k++ {
					iov := &c.wiovs[ivc+k]
					if iov.Base != nil {
						n += copy(dst[n:], unsafe.Slice(iov.Base, int(iov.Len)))
					}
				}
				h := &c.whdrs[i].hdr
				if n > 0 {
					c.wiovs[ivc].Base = &dst[0]
				} else {
					c.wiovs[ivc].Base = nil
				}
				c.wiovs[ivc].SetLen(n)
				h.Iov = &c.wiovs[ivc]
				h.Iovlen = 1
				ivc += c.wruns[i]
			}
		} else {
			c.m.NoteZeroCopyDowngrade()
		}
	}

	c.wn, c.wgot, c.werrno = nh, 0, 0
	fn := c.writeFn
	if zc {
		fn = c.zcWriteFn
	}
	if err := c.rc.Write(fn); err != nil {
		return 0, err
	}
	if c.werrno == syscall.ENOBUFS && zc {
		// Page-pinning budget exhausted. The slots already hold stable
		// copies, so the same headers re-send plainly; repeated ENOBUFS
		// disables the path for good.
		c.m.NoteZeroCopyDowngrade()
		c.zcENOBUFS++
		if c.zcENOBUFS >= zcMaxENOBUFS {
			atomic.StoreUint32(&c.zcOn, 0)
		}
		zc = false
		c.wgot, c.werrno = 0, 0
		if err := c.rc.Write(c.writeFn); err != nil {
			return 0, err
		}
	} else if zc {
		c.zcENOBUFS = 0
	}
	if c.werrno != 0 {
		if anyGSO && (c.werrno == syscall.EINVAL || c.werrno == syscall.EIO ||
			c.werrno == syscall.EOPNOTSUPP || c.werrno == syscall.EMSGSIZE) {
			atomic.StoreUint32(&c.gsoOn, 0)
			return 0, errGSOFallback
		}
		return 0, c.werrno
	}
	got := c.wgot
	if got == 0 {
		return 0, errNoProgress
	}
	dgrams := 0
	for i := 0; i < got; i++ {
		dgrams += c.wruns[i]
		if c.wruns[i] > 1 {
			c.m.NoteGSOWrite(c.wruns[i])
		}
	}
	c.m.NoteWrite(dgrams)
	if zc {
		atomic.AddUint32(&c.zcIssued, uint32(got))
		for i := 0; i < got; i++ {
			c.m.NoteZeroCopySend()
		}
		select {
		case c.zcKick <- struct{}{}:
		default:
		}
	}
	return dgrams, nil
}

// ReadBatch serves segments split out of coalesced datagrams while GRO is
// live, refilling the receive slab with one recvmmsg when the pending
// queue drains; without GRO it is the plain batched read.
//
//alpha:hotpath
func (c *offloadConn) ReadBatch(ms []Message) (int, error) {
	if !c.gro {
		return c.batchConn.ReadBatch(ms)
	}
	if len(ms) == 0 {
		return 0, nil
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		if out := c.servePend(ms); out > 0 {
			return out, nil
		}
		if err := c.fillPend(); err != nil {
			return 0, err
		}
	}
}

// servePend copies pending segments into caller buffers: seg-sized chunks
// of each coalesced datagram (the last may be smaller), whole datagrams
// when not coalesced. Caller holds rmu.
//
//alpha:hotpath
func (c *offloadConn) servePend(ms []Message) int {
	out := 0
	for c.rpendHead < c.rpendN && out < len(ms) {
		p := &c.rpends[c.rpendHead]
		chunk := p.end - p.off
		if p.seg > 0 && chunk > p.seg {
			chunk = p.seg
		}
		n := copy(ms[out].Buf, c.rslab[p.off:p.off+chunk])
		ms[out].N, ms[out].Addr = n, p.addr
		p.off += chunk
		if p.off >= p.end {
			c.rpendHead++
		}
		out++
	}
	return out
}

// fillPend issues one recvmmsg into the GRO slab and queues every received
// datagram (split metadata included) for servePend. Caller holds rmu.
//
//alpha:hotpath
func (c *offloadConn) fillPend() error {
	n := c.groN
	for i := 0; i < n; i++ {
		base := i * groSlot
		c.riovs[i].Base = &c.rslab[base]
		c.riovs[i].SetLen(groSlot)
		h := &c.rhdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&c.rnames[i]))
		h.Namelen = syscall.SizeofSockaddrInet6
		h.Iov = &c.riovs[i]
		h.Iovlen = 1
		h.Control = &c.gctrl[i*cmsgSpace]
		h.Controllen = cmsgSpace
		h.Flags = 0
		c.rhdrs[i].n = 0
	}
	c.rn, c.rgot, c.rerrno = n, 0, 0
	if err := c.rc.Read(c.readFn); err != nil {
		return err
	}
	if c.rerrno != 0 {
		return c.rerrno
	}
	got := c.rgot
	total := 0
	for i := 0; i < got; i++ {
		dl := int(c.rhdrs[i].n)
		seg := c.groSegSize(i)
		base := i * groSlot
		c.rpends[i] = groPend{off: base, end: base + dl, seg: seg, addr: c.sourceAddr(&c.rnames[i])}
		segs := 1
		if seg > 0 && dl > seg {
			segs = (dl + seg - 1) / seg
			c.m.NoteGRORead(segs)
		}
		total += segs
	}
	c.rpendHead, c.rpendN = 0, got
	if got > 0 {
		c.m.NoteRead(total)
	}
	return nil
}

// groSegSize extracts the UDP_GRO segment size the kernel attached to
// header i, or 0 when the datagram arrived un-coalesced.
//
//alpha:hotpath
func (c *offloadConn) groSegSize(i int) int {
	h := &c.rhdrs[i].hdr
	if int(h.Controllen) < syscall.CmsgLen(4) {
		return 0
	}
	ctrl := c.gctrl[i*cmsgSpace:]
	cm := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
	if cm.Level == solUDP && cm.Type == udpGRO && int(cm.Len) >= syscall.CmsgLen(4) {
		return int(*(*int32)(unsafe.Pointer(&ctrl[syscall.CmsgLen(0)])))
	}
	return 0
}

// reapLoop drains MSG_ZEROCOPY completion notifications off the error
// queue. It parks on zcKick between bursts and polls briefly while
// completions are outstanding (notifications trail the send by the NIC's
// actual transmit). Exits on Close or when the socket dies under it.
func (c *offloadConn) reapLoop() {
	for {
		select {
		case <-c.zcDone:
			return
		case <-c.zcKick:
		}
		for {
			n, err := c.reap()
			if err != nil {
				return
			}
			if atomic.LoadUint32(&c.zcCompleted) >= atomic.LoadUint32(&c.zcIssued) {
				break
			}
			if n == 0 {
				select {
				case <-c.zcDone:
					return
				case <-time.After(100 * time.Microsecond):
				}
			}
		}
	}
}

// reap drains the errqueue until EAGAIN, returning completions processed.
func (c *offloadConn) reap() (int, error) {
	reaped := 0
	var rerr error
	err := c.rc.Control(func(fd uintptr) {
		for {
			_, oobn, _, _, err := syscall.Recvmsg(int(fd), c.zcPad[:], c.zcOOB[:], msgErrqueue|syscall.MSG_DONTWAIT)
			if err != nil {
				if err != syscall.EAGAIN && err != syscall.EINTR {
					rerr = err
				}
				return
			}
			reaped += c.parseCompletions(c.zcOOB[:oobn])
		}
	})
	if err != nil {
		return reaped, err
	}
	return reaped, rerr
}

// parseCompletions walks the raw cmsg block of one errqueue message and
// credits every SO_EE_ORIGIN_ZEROCOPY id range back to the slab ring. A
// run of completions the kernel had to copy anyway (ee_code COPIED —
// loopback always does) disables the path: it is pure overhead there.
func (c *offloadConn) parseCompletions(oob []byte) int {
	done := 0
	for len(oob) >= syscall.SizeofCmsghdr {
		cm := (*syscall.Cmsghdr)(unsafe.Pointer(&oob[0]))
		l := int(cm.Len)
		if l < syscall.SizeofCmsghdr || l > len(oob) {
			break
		}
		isErr := (cm.Level == solIP && cm.Type == ipRecvErr) ||
			(cm.Level == solIPv6 && cm.Type == ipv6RecvErr)
		if isErr && l >= syscall.CmsgLen(0)+int(unsafe.Sizeof(sockExtendedErr{})) {
			ee := (*sockExtendedErr)(unsafe.Pointer(&oob[syscall.CmsgLen(0)]))
			if ee.Origin == soEEOriginZerocopy && ee.Data >= ee.Info {
				n := int(ee.Data - ee.Info + 1)
				copied := ee.Code == soEECodeZerocopyCopied
				atomic.AddUint32(&c.zcCompleted, uint32(n))
				for i := 0; i < n; i++ {
					c.m.NoteZeroCopyCompletion(copied)
				}
				if copied {
					run := atomic.AddUint32(&c.zcCopiedRun, uint32(n))
					if run >= zcMaxCopied && atomic.CompareAndSwapUint32(&c.zcOn, 1, 0) {
						c.m.NoteZeroCopyDowngrade()
					}
				} else {
					atomic.StoreUint32(&c.zcCopiedRun, 0)
				}
				done += n
			}
		}
		adv := (l + 7) &^ 7 // CMSG_ALIGN on 64-bit
		if adv <= 0 || adv > len(oob) {
			break
		}
		oob = oob[adv:]
	}
	return done
}
