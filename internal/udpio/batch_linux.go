//go:build linux && (amd64 || arm64)

// The Linux batched engine: recvmmsg/sendmmsg issued through SyscallConn,
// so batched syscalls still park goroutines on the runtime netpoller
// instead of spinning on EAGAIN. Built with the standard syscall package
// only; the mmsghdr layout and the syscall numbers (frozen out of stdlib
// before sendmmsg existed) are spelled out here.

package udpio

import (
	"errors"
	"net"
	"sync"
	"syscall"
	"unsafe"

	"alpha/internal/telemetry"
)

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>: one msghdr plus the
// kernel-filled datagram length. Go's implicit trailing padding matches the
// C layout on the supported 64-bit ABIs.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// addrKey indexes the source-address intern cache. IPv4 sources use the
// 4-in-6 mapped layout so one key space covers both families.
type addrKey struct {
	ip   [16]byte
	port uint16
}

// addrCacheLimit bounds the intern cache; a source-address flood past it
// resets the map (live sessions keep their own *net.UDPAddr pointers, so a
// reset only costs future lookups one allocation each).
const addrCacheLimit = 1 << 16

// batchConn implements Conn with recvmmsg/sendmmsg. All per-call scratch —
// header and iovec arrays, sockaddr slots, the callback closures handed to
// RawConn — is preallocated, so warm ReadBatch/WriteBatch calls perform
// zero heap allocations.
type batchConn struct {
	uc *net.UDPConn
	rc syscall.RawConn
	m  *telemetry.IOMetrics
	v6 bool // socket family: encode destinations as AF_INET6

	// Read side, guarded by rmu. rn/rgot/rerrno carry the in-flight call's
	// state so readFn (created once) captures nothing per call.
	rmu    sync.Mutex
	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrInet6
	addrs  map[addrKey]*net.UDPAddr
	rn     int
	rgot   int
	rerrno syscall.Errno
	readFn func(fd uintptr) bool

	// Write side, guarded by wmu; same single-closure discipline.
	wmu    sync.Mutex
	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames []syscall.RawSockaddrInet6
	wn     int
	wgot   int
	werrno syscall.Errno
	writeFn func(fd uintptr) bool
}

func newBatchConn(uc *net.UDPConn, batch int, m *telemetry.IOMetrics) (*batchConn, error) {
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil, err
	}
	la, ok := uc.LocalAddr().(*net.UDPAddr)
	if !ok {
		return nil, errors.New("udpio: not a bound UDP socket")
	}
	c := &batchConn{
		uc: uc, rc: rc, m: m,
		v6:     la.IP.To4() == nil,
		rhdrs:  make([]mmsghdr, batch),
		riovs:  make([]syscall.Iovec, batch),
		rnames: make([]syscall.RawSockaddrInet6, batch),
		addrs:  make(map[addrKey]*net.UDPAddr),
		whdrs:  make([]mmsghdr, batch),
		wiovs:  make([]syscall.Iovec, batch),
		wnames: make([]syscall.RawSockaddrInet6, batch),
	}
	c.readFn = c.recvmmsg
	c.writeFn = c.sendmmsg
	return c, nil
}

func (c *batchConn) Batched() bool { return true }

// recvmmsg is the RawConn.Read callback: one non-blocking batched receive,
// false on EAGAIN so the netpoller parks us until the socket is readable.
func (c *batchConn) recvmmsg(fd uintptr) bool {
	r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&c.rhdrs[0])), uintptr(c.rn),
		syscall.MSG_DONTWAIT, 0, 0)
	switch errno {
	case 0:
		c.rgot = int(r)
	case syscall.EAGAIN, syscall.EINTR:
		return false
	default:
		c.rerrno = errno
	}
	return true
}

// ReadBatch drains up to len(ms) datagrams in one recvmmsg syscall.
//
//alpha:hotpath
func (c *batchConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	n := len(ms)
	if n > len(c.rhdrs) {
		n = len(c.rhdrs)
	}
	for i := 0; i < n; i++ {
		c.riovs[i].Base = &ms[i].Buf[0]
		c.riovs[i].SetLen(len(ms[i].Buf))
		h := &c.rhdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&c.rnames[i]))
		h.Namelen = syscall.SizeofSockaddrInet6
		h.Iov = &c.riovs[i]
		h.Iovlen = 1
		c.rhdrs[i].n = 0
	}
	c.rn, c.rgot, c.rerrno = n, 0, 0
	if err := c.rc.Read(c.readFn); err != nil {
		return 0, err
	}
	if c.rerrno != 0 {
		return 0, c.rerrno
	}
	got := c.rgot
	for i := 0; i < got; i++ {
		ms[i].N = int(c.rhdrs[i].n)
		ms[i].Addr = c.sourceAddr(&c.rnames[i])
	}
	c.m.NoteRead(got)
	return got, nil
}

// sourceAddr interns a raw source sockaddr as a *net.UDPAddr. Datagram
// floods repeat a small peer set, so the cache keeps the steady-state read
// path allocation-free.
func (c *batchConn) sourceAddr(sa *syscall.RawSockaddrInet6) net.Addr {
	var key addrKey
	v4 := false
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		key.ip[10], key.ip[11] = 0xff, 0xff
		copy(key.ip[12:], sa4.Addr[:])
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		key.port = uint16(p[0])<<8 | uint16(p[1])
		v4 = true
	case syscall.AF_INET6:
		key.ip = sa.Addr
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		key.port = uint16(p[0])<<8 | uint16(p[1])
	default:
		return nil
	}
	if a, ok := c.addrs[key]; ok {
		return a
	}
	if len(c.addrs) >= addrCacheLimit {
		clear(c.addrs)
	}
	a := &net.UDPAddr{Port: int(key.port)}
	if v4 {
		a.IP = make(net.IP, 4)
		copy(a.IP, key.ip[12:])
	} else {
		a.IP = make(net.IP, 16)
		copy(a.IP, key.ip[:])
	}
	c.addrs[key] = a
	return a
}

// sendmmsg is the RawConn.Write callback, the mirror of recvmmsg.
func (c *batchConn) sendmmsg(fd uintptr) bool {
	r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&c.whdrs[0])), uintptr(c.wn),
		syscall.MSG_DONTWAIT, 0, 0)
	switch errno {
	case 0:
		c.wgot = int(r)
	case syscall.EAGAIN, syscall.EINTR:
		return false
	default:
		c.werrno = errno
	}
	return true
}

// WriteBatch pushes the messages out in sendmmsg bursts.
//
//alpha:hotpath
func (c *batchConn) WriteBatch(ms []Message) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	sent := 0
	for sent < len(ms) {
		n := len(ms) - sent
		if n > len(c.whdrs) {
			n = len(c.whdrs)
		}
		for i := 0; i < n; i++ {
			msg := &ms[sent+i]
			nl, err := c.destAddr(msg.Addr, &c.wnames[i])
			if err != nil {
				return sent, err
			}
			if msg.N > 0 {
				c.wiovs[i].Base = &msg.Buf[0]
			} else {
				c.wiovs[i].Base = nil
			}
			c.wiovs[i].SetLen(msg.N)
			h := &c.whdrs[i].hdr
			h.Name = (*byte)(unsafe.Pointer(&c.wnames[i]))
			h.Namelen = nl
			h.Iov = &c.wiovs[i]
			h.Iovlen = 1
			c.whdrs[i].n = 0
		}
		c.wn, c.wgot, c.werrno = n, 0, 0
		if err := c.rc.Write(c.writeFn); err != nil {
			return sent, err
		}
		if c.werrno != 0 {
			return sent, c.werrno
		}
		if c.wgot == 0 {
			// sendmmsg reported readiness but accepted nothing; bail out
			// rather than livelock.
			return sent, errors.New("udpio: sendmmsg made no progress")
		}
		c.m.NoteWrite(c.wgot)
		sent += c.wgot
	}
	return sent, nil
}

// destAddr encodes one destination into a preallocated sockaddr slot,
// matching the socket family (IPv4 destinations become v4-mapped IPv6 on
// dual-stack sockets). Zones are not supported on the batched path.
func (c *batchConn) destAddr(addr net.Addr, out *syscall.RawSockaddrInet6) (uint32, error) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return 0, errors.New("udpio: non-UDP destination address")
	}
	ip4 := ua.IP.To4()
	if c.v6 {
		*out = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		switch {
		case ip4 != nil:
			out.Addr[10], out.Addr[11] = 0xff, 0xff
			copy(out.Addr[12:], ip4)
		case len(ua.IP) == net.IPv6len:
			copy(out.Addr[:], ua.IP)
		default:
			return 0, errors.New("udpio: invalid destination IP")
		}
		p := (*[2]byte)(unsafe.Pointer(&out.Port))
		p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
		return syscall.SizeofSockaddrInet6, nil
	}
	if ip4 == nil {
		return 0, errors.New("udpio: IPv6 destination on an IPv4 socket")
	}
	out4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(out))
	*out4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	copy(out4.Addr[:], ip4)
	p := (*[2]byte)(unsafe.Pointer(&out4.Port))
	p[0], p[1] = byte(ua.Port>>8), byte(ua.Port)
	return syscall.SizeofSockaddrInet4, nil
}
