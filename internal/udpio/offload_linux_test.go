//go:build linux && (amd64 || arm64)

package udpio

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"alpha/internal/telemetry"
)

// offloadPair builds a sender/receiver pair over loopback with the given
// feature requests, skipping the test when the kernel grants nothing.
func offloadPair(t *testing.T, sOpts, rOpts OffloadOptions, sm, rm *telemetry.IOMetrics) (Conn, Conn, *net.UDPConn, *net.UDPConn) {
	t.Helper()
	apc, bpc := listenUDP(t), listenUDP(t)
	a, ast := WrapOffload(apc, 32, sOpts, sm)
	b, bst := WrapOffload(bpc, 32, rOpts, rm)
	if sOpts.GSO && !ast.GSO {
		t.Skip("kernel lacks UDP_SEGMENT")
	}
	if rOpts.GRO && !bst.GRO {
		t.Skip("kernel lacks UDP_GRO")
	}
	if sOpts.ZeroCopy && !ast.ZeroCopy {
		t.Skip("kernel lacks SO_ZEROCOPY")
	}
	t.Cleanup(func() {
		CloseEngine(a)
		CloseEngine(b)
	})
	return a, b, apc, bpc
}

// readAll drains exactly want datagrams from c into fresh buffers.
func readAll(t *testing.T, c Conn, want int) []Message {
	t.Helper()
	in := make([]Message, want)
	for i := range in {
		in[i].Buf = make([]byte, 4096)
	}
	got := 0
	for got < want {
		n, err := c.ReadBatch(in[got:])
		if err != nil {
			t.Fatalf("ReadBatch after %d: %v", got, err)
		}
		got += n
	}
	return in
}

// TestOffloadGSORoundTrip sends an ALPHA-M-shaped burst — one odd-size S1
// plus 16 equal-size S2s — through the GSO writer to a GRO reader and
// checks every datagram survives, in order, with the send packed into one
// syscall and at most two kernel traversals.
func TestOffloadGSORoundTrip(t *testing.T) {
	var sm, rm telemetry.IOMetrics
	a, b, _, bpc := offloadPair(t,
		OffloadOptions{GSO: true}, OffloadOptions{GRO: true},
		sm.Init(), rm.Init())

	const s2s = 16
	const s2len = 64
	out := make([]Message, 0, s2s+1)
	s1 := []byte("S1-signature-packet-shorter")
	out = append(out, Message{Buf: s1, N: len(s1), Addr: bpc.LocalAddr()})
	for i := 0; i < s2s; i++ {
		p := make([]byte, s2len)
		copy(p, fmt.Sprintf("S2-%02d", i))
		out = append(out, Message{Buf: p, N: s2len, Addr: bpc.LocalAddr()})
	}
	bpc.SetReadDeadline(time.Now().Add(5 * time.Second))
	sent, err := a.WriteBatch(out)
	if err != nil || sent != len(out) {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, len(out))
	}

	in := readAll(t, b, s2s+1)
	for i := range out {
		if !bytes.Equal(in[i].Buf[:in[i].N], out[i].Buf[:out[i].N]) {
			t.Fatalf("datagram %d corrupted: got %d bytes %q, want %d bytes",
				i, in[i].N, in[i].Buf[:in[i].N], out[i].N)
		}
	}

	if got := sm.WriteBatches.Load(); got != 1 {
		t.Errorf("send syscalls = %d; want 1 (S1 + packed S2 run in one sendmmsg)", got)
	}
	if got := sm.GSOSegments.Load(); got != s2s {
		t.Errorf("GSO segments = %d; want %d", got, s2s)
	}
	if got := sm.GSOSends.Load(); got != 1 {
		t.Errorf("GSO sends = %d; want 1 (the equal-size run)", got)
	}
	if got := sm.DatagramsWritten.Load(); got != s2s+1 {
		t.Errorf("datagrams written = %d; want %d", got, s2s+1)
	}
	if rm.DatagramsRead.Load() != s2s+1 {
		t.Errorf("datagrams read = %d; want %d", rm.DatagramsRead.Load(), s2s+1)
	}
}

// TestOffloadRaggedRun: a smaller trailing datagram may close a GSO run
// (kernel rule), but a larger one must start a new header.
func TestOffloadRaggedRun(t *testing.T) {
	var sm, rm telemetry.IOMetrics
	a, b, _, bpc := offloadPair(t,
		OffloadOptions{GSO: true}, OffloadOptions{GRO: true},
		sm.Init(), rm.Init())

	sizes := []int{100, 100, 60, 200}
	out := make([]Message, len(sizes))
	for i, sz := range sizes {
		p := make([]byte, sz)
		for j := range p {
			p[j] = byte('a' + i)
		}
		out[i] = Message{Buf: p, N: sz, Addr: bpc.LocalAddr()}
	}
	bpc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if sent, err := a.WriteBatch(out); err != nil || sent != len(out) {
		t.Fatalf("WriteBatch = %d, %v", sent, err)
	}
	in := readAll(t, b, len(sizes))
	for i := range out {
		if !bytes.Equal(in[i].Buf[:in[i].N], out[i].Buf[:out[i].N]) {
			t.Fatalf("datagram %d corrupted (%d bytes, want %d)", i, in[i].N, out[i].N)
		}
	}
	// [100 100 60] packs into one header (60 is the legal smaller tail);
	// 200 rides alone as a plain header in the same sendmmsg.
	if got := sm.GSOSends.Load(); got != 1 {
		t.Errorf("GSO sends = %d; want 1", got)
	}
	if got := sm.GSOSegments.Load(); got != 3 {
		t.Errorf("GSO segments = %d; want 3", got)
	}
	if got := sm.WriteBatches.Load(); got != 1 {
		t.Errorf("send syscalls = %d; want 1", got)
	}
}

// TestOffloadZeroCopy pushes a large burst through the MSG_ZEROCOPY path
// and checks delivery plus completion accounting. On loopback the kernel
// copies anyway (COPIED completions), which must eventually downgrade the
// path rather than break it.
func TestOffloadZeroCopy(t *testing.T) {
	var sm, rm telemetry.IOMetrics
	a, b, _, bpc := offloadPair(t,
		OffloadOptions{ZeroCopy: true}, OffloadOptions{},
		sm.Init(), rm.Init())

	const n = 8
	const sz = 1200
	out := make([]Message, n)
	for i := range out {
		p := make([]byte, sz)
		for j := range p {
			p[j] = byte(i)
		}
		out[i] = Message{Buf: p, N: sz, Addr: bpc.LocalAddr()}
	}
	bpc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if sent, err := a.WriteBatch(out); err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v", sent, err)
	}
	in := readAll(t, b, n)
	for i := range out {
		if in[i].N != sz || in[i].Buf[0] != byte(i) {
			t.Fatalf("datagram %d corrupted", i)
		}
	}
	if sm.ZeroCopySends.Load() == 0 {
		t.Fatal("no sends took the zero-copy path")
	}
	deadline := time.Now().Add(5 * time.Second)
	for sm.ZeroCopyCompletions.Load() < sm.ZeroCopySends.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("reaper stuck: %d completions for %d zero-copy sends",
				sm.ZeroCopyCompletions.Load(), sm.ZeroCopySends.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOffloadZeroAlloc is the hot-path acceptance check for the offload
// tier: a warm GSO write / GRO read cycle must not allocate.
func TestOffloadZeroAlloc(t *testing.T) {
	var sm, rm telemetry.IOMetrics
	a, b, _, bpc := offloadPair(t,
		OffloadOptions{GSO: true}, OffloadOptions{GRO: true},
		sm.Init(), rm.Init())
	bpc.SetReadDeadline(time.Now().Add(10 * time.Second))

	const n = 8
	out := make([]Message, n)
	for i := range out {
		out[i] = Message{Buf: make([]byte, 256), N: 256, Addr: bpc.LocalAddr()}
	}
	in := make([]Message, n)
	for i := range in {
		in[i].Buf = make([]byte, 2048)
	}
	cycle := func() {
		if _, err := a.WriteBatch(out); err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		got := 0
		for got < n {
			r, err := b.ReadBatch(in[:])
			if err != nil {
				t.Fatalf("ReadBatch: %v", err)
			}
			got += r
		}
	}
	cycle() // warm the intern cache and slab state
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("offload read/write cycle allocates %.1f times per run; want 0", allocs)
	}
}

// TestWrapOffloadDisabledByKernelFallsBack: the probe hook path — when the
// engine grants nothing, WrapOffload must hand back the batched engine and
// a zero status (the signal transports turn into one downgrade warning).
func TestWrapOffloadStatus(t *testing.T) {
	pc := listenUDP(t)
	c, st := WrapOffload(pc, 8, OffloadOptions{}, nil)
	if st.Any() {
		t.Fatalf("no features requested but status = %+v", st)
	}
	if !c.Batched() {
		t.Fatal("WrapOffload with no requests must still return the batched engine")
	}
}
