//go:build !linux || (!amd64 && !arm64)

package udpio

import (
	"errors"
	"net"

	"alpha/internal/telemetry"
)

// newBatchConn reports that the OS batched path is unavailable here; Wrap
// falls back to the portable engine.
func newBatchConn(*net.UDPConn, int, *telemetry.IOMetrics) (Conn, error) {
	return nil, errors.New("udpio: batched I/O unsupported on this platform")
}
