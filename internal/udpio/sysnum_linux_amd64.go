//go:build linux && amd64

package udpio

// Raw syscall numbers for the batched datagram ops. sendmmsg (Linux 3.0)
// postdates the standard library's frozen syscall tables, so both numbers
// are spelled out per architecture.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
