//go:build linux

package udpio

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT, absent from the frozen stdlib syscall
// tables. It is 15 on every Linux ABI the batched path supports (mips and
// sparc renumber it, and are not batched targets).
const soReusePort = 0xf

// ReusePortSupported reports whether ListenReusePort works on this
// platform.
func ReusePortSupported() bool { return true }

// ListenReusePort opens n UDP sockets bound to the same local address with
// SO_REUSEPORT, so the kernel shards inbound flows across them and each
// socket can run its own read loop on its own core. addr may carry port 0:
// the first socket picks the port and the rest join it.
func ListenReusePort(network, addr string, n int) ([]net.PacketConn, error) {
	if n < 1 {
		n = 1
	}
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	pcs := make([]net.PacketConn, 0, n)
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, addr)
		if err != nil {
			for _, p := range pcs {
				p.Close()
			}
			return nil, fmt.Errorf("udpio: reuseport socket %d: %w", i, err)
		}
		pcs = append(pcs, pc)
		if i == 0 {
			// Subsequent sockets must join the concrete port the kernel
			// picked, not re-roll port 0.
			addr = pc.LocalAddr().String()
		}
	}
	return pcs, nil
}
