// Package udpio is the batched datagram I/O engine beneath the UDP
// transport. On Linux it drains and fills the socket with recvmmsg and
// sendmmsg — one syscall moves up to a whole ALPHA-C/M burst of datagrams —
// and everywhere else it degrades to a portable one-datagram-at-a-time shim
// behind the same interface, so the transport code above it never branches
// on platform.
//
// Buffer ownership follows one rule (DESIGN.md §5e): the caller owns every
// Message.Buf. ReadBatch writes into caller-provided buffers and never
// retains them past the call; WriteBatch reads from them and returns only
// after the kernel has copied the data out, so a buffer may be recycled the
// moment either call returns.
//
// Deadlines set on the underlying socket (SetReadDeadline and friends)
// apply to both engines: the batched path waits for readiness through the
// runtime netpoller, exactly like net.PacketConn reads.
package udpio

import (
	"io"
	"net"

	"alpha/internal/telemetry"
)

// DefaultBatch is the batch size transports use when none is configured:
// large enough to carry an entire ALPHA-C/M burst (the S1 plus BatchSize
// S2s) in one syscall, small enough that a slab of MaxPacketSize read
// buffers stays modest.
const DefaultBatch = 64

// Message is one datagram in a batch: its buffer, the valid length, and
// the source (after ReadBatch) or destination (for WriteBatch) address.
type Message struct {
	Buf  []byte
	N    int
	Addr net.Addr
}

// Conn is a datagram socket with batched read and write paths.
//
// ReadBatch blocks until at least one datagram is available, then fills as
// many of ms as the socket can supply without blocking again and returns
// the count; every ms[i].Buf must be non-empty. WriteBatch transmits all
// messages (ms[i].Buf[:ms[i].N] to ms[i].Addr) and returns the number sent,
// short only on error. Both are safe for concurrent use.
type Conn interface {
	ReadBatch(ms []Message) (int, error)
	WriteBatch(ms []Message) (int, error)
	// Batched reports whether the OS batched path (recvmmsg/sendmmsg) is
	// live rather than the portable fallback.
	Batched() bool
}

// Wrap returns the best Conn for pc: the recvmmsg/sendmmsg engine when pc
// is a *net.UDPConn on a supported platform, the portable shim otherwise.
// batch caps the datagrams moved per syscall (0 means DefaultBatch); m
// receives I/O accounting and may be nil.
func Wrap(pc net.PacketConn, batch int, m *telemetry.IOMetrics) Conn {
	if batch <= 0 {
		batch = DefaultBatch
	}
	if m == nil {
		m = new(telemetry.IOMetrics)
	}
	if uc, ok := pc.(*net.UDPConn); ok {
		if c, err := newBatchConn(uc, batch, m); err == nil {
			return c
		}
	}
	return &portableConn{pc: pc, m: m}
}

// OffloadOptions requests segmentation-offload features on top of the
// batched engine. Each one is a request, not a demand: setup probes the
// kernel per feature and keeps whatever sticks.
type OffloadOptions struct {
	// GSO packs same-destination, equal-size runs into one UDP_SEGMENT-
	// tagged send — one kernel UDP traversal per run (Linux ≥ 4.18).
	GSO bool
	// GRO enables UDP_GRO so the kernel may deliver coalesced datagrams,
	// which the engine splits back out by the segment-size cmsg (≥ 5.0).
	GRO bool
	// ZeroCopy opts sends into MSG_ZEROCOPY with an errqueue completion
	// reaper; the engine downgrades itself on ENOBUFS or copied
	// completions (≥ 4.14 for UDP).
	ZeroCopy bool
}

// enabled reports whether any offload feature is requested.
func (o OffloadOptions) enabled() bool { return o.GSO || o.GRO || o.ZeroCopy }

// OffloadStatus reports which requested offload features the kernel
// actually granted. The zero value means the offload tier is not live.
type OffloadStatus struct {
	GSO      bool
	GRO      bool
	ZeroCopy bool
}

// Any reports whether at least one offload feature is live.
func (s OffloadStatus) Any() bool { return s.GSO || s.GRO || s.ZeroCopy }

// WrapOffload returns the best Conn for pc with the requested offload
// features, degrading feature-by-feature: offload engine with whatever the
// kernel grants, then the batched engine, then the portable shim. The
// returned status says what is live so callers can log one downgrade
// warning and move on.
func WrapOffload(pc net.PacketConn, batch int, opts OffloadOptions, m *telemetry.IOMetrics) (Conn, OffloadStatus) {
	if batch <= 0 {
		batch = DefaultBatch
	}
	if m == nil {
		m = new(telemetry.IOMetrics)
	}
	if uc, ok := pc.(*net.UDPConn); ok && opts.enabled() {
		if c, st, err := newOffloadConn(uc, batch, opts, m); err == nil {
			return c, st
		}
	}
	return Wrap(pc, batch, m), OffloadStatus{}
}

// CloseEngine releases engine-owned resources (the zero-copy completion
// reaper, offload slabs) without closing the underlying socket. Engines
// with nothing to release are a no-op.
func CloseEngine(c Conn) error {
	if cl, ok := c.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Portable wraps pc with the one-datagram-at-a-time fallback regardless of
// platform — the reference implementation the batched engine must agree
// with, and the switch for exercising the portable path on Linux.
func Portable(pc net.PacketConn, m *telemetry.IOMetrics) Conn {
	if m == nil {
		m = new(telemetry.IOMetrics)
	}
	return &portableConn{pc: pc, m: m}
}

// portableConn implements Conn over any net.PacketConn with one datagram
// per socket operation: ReadBatch fills exactly one message, WriteBatch
// loops WriteTo.
type portableConn struct {
	pc net.PacketConn
	m  *telemetry.IOMetrics
}

func (c *portableConn) Batched() bool { return false }

func (c *portableConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := c.pc.ReadFrom(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N, ms[0].Addr = n, addr
	c.m.NoteRead(1)
	return 1, nil
}

func (c *portableConn) WriteBatch(ms []Message) (int, error) {
	for i := range ms {
		if _, err := c.pc.WriteTo(ms[i].Buf[:ms[i].N], ms[i].Addr); err != nil {
			return i, err
		}
		c.m.NoteWrite(1)
	}
	return len(ms), nil
}
