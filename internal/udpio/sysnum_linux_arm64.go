//go:build linux && arm64

package udpio

// Raw syscall numbers for the batched datagram ops on the arm64 ABI.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
