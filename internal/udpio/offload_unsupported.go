//go:build !linux || (!amd64 && !arm64)

package udpio

import (
	"errors"
	"net"

	"alpha/internal/telemetry"
)

// newOffloadConn reports that segmentation offload is unavailable here;
// WrapOffload falls back to the batched engine (itself a stub on this
// platform) and then the portable shim.
func newOffloadConn(*net.UDPConn, int, OffloadOptions, *telemetry.IOMetrics) (Conn, OffloadStatus, error) {
	return nil, OffloadStatus{}, errors.New("udpio: segmentation offload unsupported on this platform")
}
