package udpio

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"alpha/internal/telemetry"
)

func listenUDP(t *testing.T) *net.UDPConn {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { pc.Close() })
	return pc.(*net.UDPConn)
}

// engines returns both implementations over fresh sockets so every test
// runs against the batched and the portable path.
func engines(t *testing.T) map[string]func(pc *net.UDPConn, m *telemetry.IOMetrics) Conn {
	t.Helper()
	e := map[string]func(pc *net.UDPConn, m *telemetry.IOMetrics) Conn{
		"portable": func(pc *net.UDPConn, m *telemetry.IOMetrics) Conn {
			return Portable(pc, m)
		},
	}
	if c, err := newBatchConn(listenUDP(t), 4, new(telemetry.IOMetrics)); err == nil && c.Batched() {
		e["batched"] = func(pc *net.UDPConn, m *telemetry.IOMetrics) Conn {
			return Wrap(pc, 8, m)
		}
	}
	return e
}

func TestRoundTripBothEngines(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			apc, bpc := listenUDP(t), listenUDP(t)
			var am, bm telemetry.IOMetrics
			a, b := mk(apc, &am), mk(bpc, &bm)

			const burst = 6
			out := make([]Message, burst)
			for i := range out {
				payload := []byte(fmt.Sprintf("datagram-%d", i))
				out[i] = Message{Buf: payload, N: len(payload), Addr: bpc.LocalAddr()}
			}
			sent, err := a.WriteBatch(out)
			if err != nil || sent != burst {
				t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, burst)
			}

			bpc.SetReadDeadline(time.Now().Add(2 * time.Second))
			in := make([]Message, burst)
			for i := range in {
				in[i].Buf = make([]byte, 2048)
			}
			got := 0
			for got < burst {
				n, err := b.ReadBatch(in[got:])
				if err != nil {
					t.Fatalf("ReadBatch after %d: %v", got, err)
				}
				got += n
			}
			seen := map[string]bool{}
			for i := 0; i < burst; i++ {
				seen[string(in[i].Buf[:in[i].N])] = true
				ra, ok := in[i].Addr.(*net.UDPAddr)
				if !ok || ra.Port != apc.LocalAddr().(*net.UDPAddr).Port {
					t.Fatalf("message %d source = %v; want sender %v", i, in[i].Addr, apc.LocalAddr())
				}
			}
			for i := 0; i < burst; i++ {
				if !seen[fmt.Sprintf("datagram-%d", i)] {
					t.Fatalf("payload datagram-%d missing; got %v", i, seen)
				}
			}
			if dw := bm.DatagramsRead.Load(); dw != burst {
				t.Fatalf("DatagramsRead = %d; want %d", dw, burst)
			}
			if dw := am.DatagramsWritten.Load(); dw != burst {
				t.Fatalf("DatagramsWritten = %d; want %d", dw, burst)
			}
		})
	}
}

// TestWriteBatchChunking sends more messages than the configured batch size
// so the batched engine must loop sendmmsg.
func TestWriteBatchChunking(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			apc, bpc := listenUDP(t), listenUDP(t)
			a := mk(apc, nil)

			const total = 19 // > batch of 8, not a multiple
			out := make([]Message, total)
			for i := range out {
				p := []byte{byte(i)}
				out[i] = Message{Buf: p, N: 1, Addr: bpc.LocalAddr()}
			}
			if sent, err := a.WriteBatch(out); err != nil || sent != total {
				t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, total)
			}

			bpc.SetReadDeadline(time.Now().Add(2 * time.Second))
			buf := make([]byte, 64)
			seen := map[byte]bool{}
			for len(seen) < total {
				n, _, err := bpc.ReadFrom(buf)
				if err != nil {
					t.Fatalf("read after %d datagrams: %v", len(seen), err)
				}
				if n != 1 {
					t.Fatalf("datagram length = %d; want 1", n)
				}
				seen[buf[0]] = true
			}
		})
	}
}

func TestReadBatchDrainsMultiple(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("batched engine is Linux-only")
	}
	apc, bpc := listenUDP(t), listenUDP(t)
	b := Wrap(bpc, 8, nil)
	if !b.Batched() {
		t.Skip("batched engine unavailable on this arch")
	}
	for i := 0; i < 5; i++ {
		if _, err := apc.WriteTo([]byte{byte(i)}, bpc.LocalAddr()); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	bpc.SetReadDeadline(time.Now().Add(2 * time.Second))
	in := make([]Message, 8)
	for i := range in {
		in[i].Buf = make([]byte, 64)
	}
	got := 0
	calls := 0
	for got < 5 {
		n, err := b.ReadBatch(in[got:])
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		got += n
		calls++
		if calls > 5 {
			t.Fatalf("needed %d calls for 5 queued datagrams", calls)
		}
	}
}

// TestBatchedZeroAlloc is the acceptance check: a warm batched read/write
// cycle must not allocate.
func TestBatchedZeroAlloc(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("batched engine is Linux-only")
	}
	apc, bpc := listenUDP(t), listenUDP(t)
	a, b := Wrap(apc, 8, nil), Wrap(bpc, 8, nil)
	if !a.Batched() || !b.Batched() {
		t.Skip("batched engine unavailable on this arch")
	}
	bpc.SetReadDeadline(time.Now().Add(5 * time.Second))

	out := make([]Message, 4)
	for i := range out {
		out[i] = Message{Buf: []byte("warmup-payload"), N: 14, Addr: bpc.LocalAddr()}
	}
	in := make([]Message, 4)
	for i := range in {
		in[i].Buf = make([]byte, 2048)
	}
	cycle := func() {
		if _, err := a.WriteBatch(out); err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		got := 0
		for got < len(out) {
			n, err := b.ReadBatch(in[:])
			if err != nil {
				t.Fatalf("ReadBatch: %v", err)
			}
			got += n
		}
	}
	cycle() // warm the source-address intern cache
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("batched read/write cycle allocates %.1f times per run; want 0", allocs)
	}
}

func TestWriteBatchFamilyMismatch(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("batched engine is Linux-only")
	}
	apc := listenUDP(t) // bound to 127.0.0.1 → v4 socket
	a := Wrap(apc, 8, nil)
	if !a.Batched() {
		t.Skip("batched engine unavailable on this arch")
	}
	dst := &net.UDPAddr{IP: net.ParseIP("2001:db8::1"), Port: 9}
	if _, err := a.WriteBatch([]Message{{Buf: []byte("x"), N: 1, Addr: dst}}); err == nil {
		t.Fatal("IPv6 destination on IPv4 socket: want error, got nil")
	}
}

func TestWrapFallsBackForNonUDP(t *testing.T) {
	c := Wrap(nonUDPConn{}, 8, nil)
	if c.Batched() {
		t.Fatal("Wrap of a non-UDP PacketConn must use the portable engine")
	}
}

type nonUDPConn struct{ net.PacketConn }

func (nonUDPConn) LocalAddr() net.Addr { return &net.UnixAddr{} }

func TestListenReusePort(t *testing.T) {
	if !ReusePortSupported() {
		if _, err := ListenReusePort("udp", "127.0.0.1:0", 2); err == nil {
			t.Fatal("unsupported platform must return an error")
		}
		return
	}
	pcs, err := ListenReusePort("udp", "127.0.0.1:0", 3)
	if err != nil {
		t.Fatalf("ListenReusePort: %v", err)
	}
	defer func() {
		for _, pc := range pcs {
			pc.Close()
		}
	}()
	if len(pcs) != 3 {
		t.Fatalf("got %d sockets; want 3", len(pcs))
	}
	port := pcs[0].LocalAddr().(*net.UDPAddr).Port
	for i, pc := range pcs {
		if p := pc.LocalAddr().(*net.UDPAddr).Port; p != port {
			t.Fatalf("socket %d bound to port %d; want %d", i, p, port)
		}
	}

	// Datagrams sent to the shared port must land on exactly one socket,
	// and every socket must be readable.
	src := listenUDP(t)
	done := make(chan int, len(pcs))
	var wg sync.WaitGroup
	for _, pc := range pcs {
		wg.Add(1)
		go func(pc net.PacketConn) {
			defer wg.Done()
			pc.SetReadDeadline(time.Now().Add(2 * time.Second))
			buf := make([]byte, 64)
			got := 0
			for {
				if _, _, err := pc.ReadFrom(buf); err != nil {
					break
				}
				got++
			}
			done <- got
		}(pc)
	}
	const sent = 200
	for i := 0; i < sent; i++ {
		if _, err := src.WriteTo([]byte("x"), pcs[0].LocalAddr()); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	wg.Wait()
	close(done)
	total := 0
	for n := range done {
		total += n
	}
	if total != sent {
		t.Fatalf("sockets received %d datagrams total; want %d", total, sent)
	}
}
