//go:build !linux

package udpio

import (
	"errors"
	"net"
)

// ReusePortSupported reports whether ListenReusePort works on this
// platform.
func ReusePortSupported() bool { return false }

// ListenReusePort is Linux-only; other platforms keep the single-socket
// read loop.
func ListenReusePort(network, addr string, n int) ([]net.PacketConn, error) {
	return nil, errors.New("udpio: SO_REUSEPORT sharding is Linux-only")
}
