package hashchain

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"alpha/internal/suite"
)

// TestCheckpointMatchesFullChain is the central property: a checkpointed
// chain must disclose byte-for-byte the same sequence as a full chain built
// from the same secret, for every interval.
func TestCheckpointMatchesFullChain(t *testing.T) {
	s := suite.SHA1()
	secret := []byte("checkpoint equivalence")
	for _, n := range []int{1, 2, 7, 8, 16, 33, 64} {
		for _, interval := range []int{1, 2, 3, 4, 8, 16, 100} {
			t.Run(fmt.Sprintf("n=%d/k=%d", n, interval), func(t *testing.T) {
				full, err := New(s, TagS1, TagS2, secret, n)
				if err != nil {
					t.Fatal(err)
				}
				cp, err := NewCheckpoint(s, TagS1, TagS2, secret, n, interval)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(full.Anchor(), cp.Anchor()) {
					t.Fatalf("anchors differ")
				}
				if full.Len() != cp.Len() {
					t.Fatalf("lengths differ: %d vs %d", full.Len(), cp.Len())
				}
				for {
					fe, fi, ferr := full.Next()
					ce, ci, cerr := cp.Next()
					if (ferr != nil) != (cerr != nil) {
						t.Fatalf("exhaustion mismatch: %v vs %v", ferr, cerr)
					}
					if ferr != nil {
						break
					}
					if fi != ci || !bytes.Equal(fe, ce) {
						t.Fatalf("element %d differs", fi)
					}
				}
			})
		}
	}
}

func TestCheckpointPairsMatchFull(t *testing.T) {
	s := suite.SHA1()
	secret := []byte("pair equivalence")
	full, _ := New(s, TagS1, TagS2, secret, 16)
	cp, err := NewCheckpoint(s, TagS1, TagS2, secret, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		fp, ferr := full.NextPair()
		cpp, cerr := cp.NextPair()
		if (ferr != nil) != (cerr != nil) {
			t.Fatalf("pair exhaustion mismatch")
		}
		if ferr != nil {
			break
		}
		if !bytes.Equal(fp.Auth, cpp.Auth) || !bytes.Equal(fp.Key, cpp.Key) ||
			fp.AuthIdx != cpp.AuthIdx || fp.KeyIdx != cpp.KeyIdx {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestCheckpointPeek(t *testing.T) {
	s := suite.SHA1()
	cp, err := NewCheckpoint(s, TagS1, TagS2, []byte("peek"), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, idx, err := cp.Peek(5)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 6 {
		t.Fatalf("peek index %d, want 6", idx)
	}
	for i := 0; i < 5; i++ {
		cp.Next()
	}
	e, i6, err := cp.Next()
	if err != nil || i6 != 6 {
		t.Fatalf("Next: %v idx %d", err, i6)
	}
	if !bytes.Equal(e, p) {
		t.Fatalf("Peek(5) != sixth disclosure")
	}
}

func TestCheckpointStorageSavings(t *testing.T) {
	s := suite.SHA1()
	cp, err := NewCheckpoint(s, TagS1, TagS2, []byte("x"), 1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := cp.StoredElements(); got > 1024/32+2 {
		t.Fatalf("checkpointed chain stores %d elements, want ≈%d", got, 1024/32+1)
	}
}

func TestCheckpointWalkerInterop(t *testing.T) {
	// A verifier walking a checkpointed chain's disclosures must accept
	// every element — the storage strategy is invisible on the wire.
	s := suite.MMO()
	cp, err := NewCheckpoint(s, TagS1, TagS2, []byte("wsn node"), 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(s, TagS1, TagS2, cp.Anchor(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		e, i, err := cp.Next()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err := w.Verify(e, i); err != nil {
			t.Fatalf("Verify(%d): %v", i, err)
		}
	}
}

func TestCheckpointInvalidArgs(t *testing.T) {
	s := suite.SHA1()
	if _, err := NewCheckpoint(s, TagS1, TagS2, []byte("x"), 0, 4); err == nil {
		t.Fatalf("n=0 accepted")
	}
	if _, err := NewCheckpoint(s, TagS1, TagS2, []byte("x"), 8, 0); err == nil {
		t.Fatalf("interval=0 accepted")
	}
	if _, err := NewCheckpoint(s, TagS1, TagS2, nil, 8, 4); err == nil {
		t.Fatalf("empty secret accepted")
	}
}

func BenchmarkChainGenerate1024(b *testing.B) {
	s := suite.SHA1()
	for i := 0; i < b.N; i++ {
		if _, err := New(s, TagS1, TagS2, []byte("bench"), 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointDisclose(b *testing.B) {
	s := suite.SHA1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cp, err := NewCheckpoint(s, TagS1, TagS2, []byte("bench"), 256, 16)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, _, err := cp.Next(); err != nil {
				break
			}
		}
	}
}

func BenchmarkWalkerVerifySequential(b *testing.B) {
	s := suite.SHA1()
	c, _ := New(s, TagS1, TagS2, []byte("bench"), 2)
	e, idx, _ := c.Next()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
		if err := w.Verify(e, idx); err != nil {
			b.Fatal(err)
		}
	}
}
