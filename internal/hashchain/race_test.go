//go:build race

package hashchain

// raceEnabled reports whether the race detector is instrumenting this
// build; its shadow-memory bookkeeping allocates, so allocation-count
// assertions only hold without it.
const raceEnabled = true
