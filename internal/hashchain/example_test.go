package hashchain_test

import (
	"fmt"

	"alpha/internal/hashchain"
	"alpha/internal/suite"
)

// Example walks the full lifecycle: the owner generates a chain, publishes
// the anchor, and discloses elements; the verifier checks each disclosure,
// including across a gap (lost disclosures).
func Example() {
	s := suite.SHA1()
	chain, err := hashchain.New(s, hashchain.TagS1, hashchain.TagS2, []byte("demo secret"), 8)
	if err != nil {
		panic(err)
	}
	walker, err := hashchain.NewSignatureWalker(s, chain.Anchor())
	if err != nil {
		panic(err)
	}

	// Normal operation: disclose, verify.
	elem, idx, _ := chain.Next()
	fmt.Println("disclosure 1 verifies:", walker.Verify(elem, idx) == nil)

	// Two disclosures get lost in the network...
	chain.Next()
	chain.Next()
	// ...but the fourth still verifies: the verifier hashes it forward
	// until it meets its last trusted element (re-authentication, §2.1).
	elem, idx, _ = chain.Next()
	fmt.Println("disclosure 4 verifies after gap:", walker.Verify(elem, idx) == nil)
	fmt.Println("walker position:", walker.Index())

	// Output:
	// disclosure 1 verifies: true
	// disclosure 4 verifies after gap: true
	// walker position: 4
}

// ExampleChain_NextPair shows the element pair protecting one ALPHA
// exchange: the odd element authenticates the S1, the even one keys the MAC
// and is disclosed in the S2.
func ExampleChain_NextPair() {
	s := suite.SHA1()
	chain, _ := hashchain.New(s, hashchain.TagS1, hashchain.TagS2, []byte("pair demo"), 4)
	pair, _ := chain.NextPair()
	fmt.Println("auth index odd: ", pair.AuthIdx%2 == 1)
	fmt.Println("key follows auth:", pair.KeyIdx == pair.AuthIdx+1)
	// The key element hashes to the auth element under the S2 tag.
	fmt.Println("linked:", hashchain.VerifyLink(s, hashchain.TagS1, hashchain.TagS2, pair.Auth, pair.Key, pair.KeyIdx))
	// Output:
	// auth index odd:  true
	// key follows auth: true
	// linked: true
}

// ExampleNewCheckpoint shows the memory-constrained owner: same disclosures,
// a fraction of the resident state.
func ExampleNewCheckpoint() {
	s := suite.SHA1()
	full, _ := hashchain.New(s, hashchain.TagS1, hashchain.TagS2, []byte("x"), 1024)
	cp, _ := hashchain.NewCheckpoint(s, hashchain.TagS1, hashchain.TagS2, []byte("x"), 1024, 64)
	fe, _, _ := full.Next()
	ce, _, _ := cp.Next()
	fmt.Println("identical disclosures:", string(fe) == string(ce))
	fmt.Println("resident digests:", cp.StoredElements())
	// Output:
	// identical disclosures: true
	// resident digests: 18
}
