package hashchain

import (
	"testing"

	"alpha/internal/suite"
)

// verifyFixture builds a chain and a peer walker with every element
// pre-disclosed, for exercising the verification hot path.
func verifyFixture(tb testing.TB, n int) (*Walker, [][]byte, []uint32) {
	tb.Helper()
	s := suite.SHA1()
	c, err := New(s, TagS1, TagS2, []byte("alloc-fixture"), n)
	if err != nil {
		tb.Fatal(err)
	}
	w, err := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
	if err != nil {
		tb.Fatal(err)
	}
	elems := make([][]byte, n)
	idxs := make([]uint32, n)
	for i := 0; i < n; i++ {
		elem, idx, err := c.Next()
		if err != nil {
			tb.Fatal(err)
		}
		elems[i] = append([]byte(nil), elem...)
		idxs[i] = idx
	}
	return w, elems, idxs
}

// TestVerifyZeroAlloc pins the zero-allocation contract of the walker's
// verification path (DESIGN.md §5c): advancing, re-checking an old
// disclosure, and rejecting a forgery must not allocate. The alphavet
// hotpathalloc analyzer checks this statically; this test checks it against
// the live compiler's escape analysis.
func TestVerifyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	w, elems, idxs := verifyFixture(t, 64)
	forged := append([]byte(nil), elems[0]...)
	forged[0] ^= 1
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		j := i % len(elems)
		if err := w.Verify(elems[j], idxs[j]); err != nil {
			t.Fatalf("element %d rejected: %v", idxs[j], err)
		}
		if w.Probe(forged, idxs[0]) == nil {
			t.Fatal("forgery accepted")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Verify allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkVerify measures the per-packet verification cost: the walker
// sits at element k and probes the adjacent disclosure k-1, one derivation
// step — the steady-state receive path of an in-order exchange.
func BenchmarkVerify(b *testing.B) {
	w, elems, idxs := verifyFixture(b, 64)
	k := len(elems) / 2
	if err := w.Verify(elems[k], idxs[k]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Probe(elems[k-1], idxs[k-1]); err != nil {
			b.Fatal(err)
		}
	}
}
