package hashchain

import (
	"testing"

	"alpha/internal/suite"
)

// FuzzHashchainVerify is a structured property fuzzer for the disclosure
// walker. From a fuzzer-chosen secret and shape it builds a real chain and
// checks the §3.2.1 verification invariants: genuine disclosures verify in
// and out of order, any bit flip is rejected, the anchor itself never
// passes as a disclosure, swapped odd/even domain tags are rejected, and
// arbitrary element material never panics the walker.
func FuzzHashchainVerify(f *testing.F) {
	f.Add([]byte("secret"), uint8(8), uint8(3), uint16(0), []byte("junk"), uint32(1))
	f.Add([]byte("s"), uint8(1), uint8(1), uint16(9), []byte(""), uint32(0))
	f.Add([]byte("long-seed-material"), uint8(63), uint8(40), uint16(77), []byte("\xff"), uint32(1<<20))
	f.Fuzz(func(t *testing.T, secret []byte, nRaw, discloseRaw uint8, flip uint16, junk []byte, junkIdx uint32) {
		if len(secret) == 0 {
			secret = []byte{0}
		}
		s := suite.SHA1()
		n := int(nRaw)%64 + 1
		c, err := New(s, TagS1, TagS2, secret, n)
		if err != nil {
			t.Fatalf("New(n=%d): %v", n, err)
		}
		w, err := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
		if err != nil {
			t.Fatal(err)
		}

		// The anchor is public; replaying it must never count as a
		// disclosure.
		if w.Probe(c.Anchor(), 0) == nil {
			t.Fatal("anchor accepted as a disclosure")
		}

		// A walker keyed with swapped parity tags disagrees on every
		// domain-separation tag, so the first genuine element must fail.
		swapped, err := NewWalker(s, TagS2, TagS1, c.Anchor(), 0)
		if err != nil {
			t.Fatal(err)
		}

		k := int(discloseRaw)%n + 1
		var elems [][]byte
		var idxs []uint32
		for i := 0; i < k; i++ {
			elem, idx, err := c.Next()
			if err != nil {
				t.Fatalf("Next %d/%d: %v", i, k, err)
			}
			elems = append(elems, append([]byte(nil), elem...))
			idxs = append(idxs, idx)
			if err := w.Verify(elem, idx); err != nil {
				t.Fatalf("genuine element %d rejected: %v", idx, err)
			}
			if swapped.Probe(elem, idx) == nil {
				t.Fatalf("element %d accepted under swapped parity tags", idx)
			}
		}
		if w.Index() != idxs[k-1] {
			t.Fatalf("walker at index %d after verifying up to %d", w.Index(), idxs[k-1])
		}

		// Out-of-order re-verification: every already-disclosed element
		// still verifies from the advanced position (ALPHA-C/M packets
		// arrive reordered).
		pick := int(flip) % k
		if err := w.Probe(elems[pick], idxs[pick]); err != nil {
			t.Fatalf("re-probe of element %d failed: %v", idxs[pick], err)
		}

		// Any single-bit mutation must be rejected.
		mut := append([]byte(nil), elems[pick]...)
		mut[int(flip)%len(mut)] ^= 1 << (flip % 8)
		if w.Probe(mut, idxs[pick]) == nil {
			t.Fatal("bit-flipped element accepted")
		}
		// A genuine element at the wrong index must be rejected.
		if w.Probe(elems[pick], idxs[pick]+1) == nil {
			t.Fatal("element accepted at the wrong disclosure index")
		}

		// Hostile-input safety: arbitrary bytes at an arbitrary index
		// must never panic (and non-digest sizes must fail outright).
		if err := w.Probe(junk, junkIdx); err == nil && len(junk) != s.Size() {
			t.Fatal("junk of non-digest size accepted")
		}
		w.Probe(nil, junkIdx)

		// Forward verification from a fresh walker: disclosing the
		// furthest element first hashes forward to the anchor.
		fresh, err := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Verify(elems[k-1], idxs[k-1]); err != nil {
			t.Fatalf("forward verification of element %d failed: %v", idxs[k-1], err)
		}
	})
}
