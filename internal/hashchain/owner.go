package hashchain

import "alpha/internal/suite"

// Owner is the common interface of chain owners: the in-memory Chain and
// the memory-constrained CheckpointChain. Protocol code is written against
// Owner so that endpoints can pick a storage strategy per device class.
type Owner interface {
	// Anchor returns d[0], the element exchanged during bootstrapping.
	Anchor() []byte
	// Len returns the number of disclosable elements.
	Len() int
	// Remaining returns how many elements are still undisclosed.
	Remaining() int
	// Next discloses the next element with its 1-based disclosure index.
	Next() (elem []byte, index uint32, err error)
	// Peek returns a future element without disclosing it; Peek(0) is the
	// next disclosure.
	Peek(ahead int) (elem []byte, index uint32, err error)
	// NextPair discloses one exchange's auth/key element pair.
	NextPair() (Pair, error)
}

var (
	_ Owner = (*Chain)(nil)
	_ Owner = (*CheckpointChain)(nil)
)

// Suite returns the hash suite of the checkpointed chain.
func (c *CheckpointChain) Suite() suite.Suite { return c.s }
