// Package hashchain implements the purpose-bound one-way hash chains at the
// heart of ALPHA (§2.1, §3.2.1 of the paper).
//
// A chain is a sequence of digests linked by a hash function, generated from
// a random secret and consumed in reverse order of creation. The final
// element of the generation pass, the anchor, is exchanged during
// bootstrapping; from then on the owner authenticates itself by disclosing
// previously undisclosed elements one at a time, and any party holding the
// anchor (or any later verified element) can verify a disclosure by hashing
// it forward.
//
// ALPHA binds each element to a purpose by mixing a tag into every link:
//
//	d[j-1] = H(tag(j) | d[j])     tag(j) = tagOdd for odd j, tagEven otherwise
//
// where d[0] is the anchor and d[1], d[2], ... are disclosed in that order.
// Odd disclosure indices authenticate announcement packets (S1, or A1 on the
// acknowledgment chain); even indices serve as MAC keys disclosed in payload
// packets (S2/A2). Without the tags, an attacker observing an S2 and the
// following S1 could recombine their elements into a fresh, seemingly valid
// S1 — the reformatting attack of §3.2.1. The tags make the two roles
// cryptographically incompatible; TestReformattingAttack demonstrates both
// sides of this.
package hashchain

import (
	"crypto/rand"
	"errors"
	"fmt"

	"alpha/internal/suite"
)

// Standard purpose tags. Signature chains alternate TagS1/TagS2; the
// acknowledgment chains of a verifier alternate TagA1/TagA2.
var (
	TagS1 = []byte("ALPHA-S1")
	TagS2 = []byte("ALPHA-S2")
	TagA1 = []byte("ALPHA-A1")
	TagA2 = []byte("ALPHA-A2")
)

// seedTag prefixes the secret when deriving the deepest chain element.
var seedTag = []byte("ALPHA-seed")

// Common errors returned by chain and walker operations.
var (
	// ErrExhausted is returned when a chain has no undisclosed elements
	// left. The association must be re-bootstrapped with a fresh chain.
	ErrExhausted = errors.New("hashchain: chain exhausted")
	// ErrVerifyFailed is returned when a disclosed element does not hash
	// forward to a trusted element under the purpose tags.
	ErrVerifyFailed = errors.New("hashchain: element verification failed")
	// ErrStaleIndex is returned when a disclosure index lies behind the
	// walker's trusted position and is not in its recent-element memory.
	ErrStaleIndex = errors.New("hashchain: stale disclosure index")
	// ErrTooFarAhead is returned when a disclosure index would require
	// more forward hashing than the walker's configured advance limit, a
	// guard against CPU-exhaustion by absurd indices.
	ErrTooFarAhead = errors.New("hashchain: disclosure index beyond advance limit")
)

// Chain is the owner's side of a purpose-bound hash chain. It stores every
// element and discloses them in order; see NewCheckpoint for a
// memory-constrained variant. The zero value is not usable; construct with
// New or Generate.
type Chain struct {
	s       suite.Suite
	tagOdd  []byte
	tagEven []byte
	// elems[j] holds d[j]: elems[0] is the anchor, elems[n] the deepest
	// secret. Disclosure walks j = 1, 2, ..., n.
	elems [][]byte
	next  int
}

// New derives a chain of n disclosable elements from the given secret.
// The secret itself is never disclosed; d[n] = H("seed"|secret). n must be
// positive and, because ALPHA consumes elements in odd/even pairs, callers
// typically pass an even n.
func New(s suite.Suite, tagOdd, tagEven, secret []byte, n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hashchain: invalid length %d", n)
	}
	if len(secret) == 0 {
		return nil, errors.New("hashchain: empty secret")
	}
	// All n+1 elements live in one slab: chain generation costs two
	// allocations total instead of one per element, and the elements stay
	// cache-adjacent for the disclosure walk.
	size := s.Size()
	elems := make([][]byte, n+1)
	slab := make([]byte, 0, (n+1)*size)
	var parts [2][]byte
	parts[0], parts[1] = seedTag, secret
	slab = s.HashInto(slab, parts[:]...)
	elems[n] = slab[0:size:size]
	for j := n; j >= 1; j-- {
		parts[0], parts[1] = tagFor(j, tagOdd, tagEven), elems[j]
		off := len(slab)
		slab = s.HashInto(slab, parts[:]...)
		elems[j-1] = slab[off : off+size : off+size]
	}
	return &Chain{s: s, tagOdd: tagOdd, tagEven: tagEven, elems: elems, next: 1}, nil
}

// Generate creates a chain of n elements from a fresh random secret.
func Generate(s suite.Suite, tagOdd, tagEven []byte, n int) (*Chain, error) {
	secret := make([]byte, s.Size())
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("hashchain: generating secret: %w", err)
	}
	return New(s, tagOdd, tagEven, secret, n)
}

// NewSignature creates a signature chain (TagS1/TagS2) of n elements.
func NewSignature(s suite.Suite, n int) (*Chain, error) {
	return Generate(s, TagS1, TagS2, n)
}

// NewAcknowledgment creates an acknowledgment chain (TagA1/TagA2).
func NewAcknowledgment(s suite.Suite, n int) (*Chain, error) {
	return Generate(s, TagA1, TagA2, n)
}

func tagFor(j int, tagOdd, tagEven []byte) []byte {
	if j%2 == 1 {
		return tagOdd
	}
	return tagEven
}

// Anchor returns d[0], the element exchanged during bootstrapping.
func (c *Chain) Anchor() []byte { return c.elems[0] }

// Len returns the number of disclosable elements.
func (c *Chain) Len() int { return len(c.elems) - 1 }

// Remaining returns how many elements are still undisclosed.
func (c *Chain) Remaining() int { return len(c.elems) - c.next }

// Suite returns the hash suite the chain was built with.
func (c *Chain) Suite() suite.Suite { return c.s }

// Next discloses the next element and returns it with its disclosure index
// (1-based). It returns ErrExhausted once all elements are spent.
func (c *Chain) Next() (elem []byte, index uint32, err error) {
	if c.next >= len(c.elems) {
		return nil, 0, ErrExhausted
	}
	elem, index = c.elems[c.next], uint32(c.next)
	c.next++
	return elem, index, nil
}

// Peek returns the element at offset ahead of the next disclosure without
// disclosing it: Peek(0) is what Next would return. It must only be used by
// the owner (e.g. to key a MAC with a still-undisclosed element).
func (c *Chain) Peek(ahead int) (elem []byte, index uint32, err error) {
	j := c.next + ahead
	if ahead < 0 || j >= len(c.elems) {
		return nil, 0, ErrExhausted
	}
	return c.elems[j], uint32(j), nil
}

// NextPair discloses the element pair protecting one signature exchange: the
// odd-index auth element placed in the announcement packet and the following
// even-index key element that keys the MAC and is disclosed in the payload
// packet. It fails without consuming anything if fewer than two elements
// remain or if the chain has drifted off pair alignment.
func (c *Chain) NextPair() (p Pair, err error) {
	if c.next%2 != 1 {
		return Pair{}, fmt.Errorf("hashchain: chain misaligned at index %d", c.next)
	}
	if c.next+1 >= len(c.elems) {
		return Pair{}, ErrExhausted
	}
	p = Pair{
		Auth:    c.elems[c.next],
		AuthIdx: uint32(c.next),
		Key:     c.elems[c.next+1],
		KeyIdx:  uint32(c.next + 1),
	}
	c.next += 2
	return p, nil
}

// Pair is one exchange's worth of chain elements.
type Pair struct {
	Auth    []byte // odd-index element authenticating the announcement
	AuthIdx uint32
	Key     []byte // even-index element keying the MAC, disclosed later
	KeyIdx  uint32
}

// VerifyLink reports whether child at disclosure index j hashes to parent
// d[j-1] under the correct purpose tag. It does not allocate.
//
//alpha:hotpath
func VerifyLink(s suite.Suite, tagOdd, tagEven []byte, parent, child []byte, j uint32) bool {
	if j == 0 {
		return false
	}
	sc := suite.GetScratch()
	sc.Parts[0], sc.Parts[1] = tagFor(int(j), tagOdd, tagEven), child
	sc.Buf = s.HashInto(sc.Buf, sc.Parts[:2]...)
	ok := suite.Equal(parent, sc.Buf)
	suite.PutScratch(sc)
	return ok
}

// DefaultMaxAdvance bounds how many hash steps a Walker performs for a
// single verification, in either direction. Tens of thousands of packet
// losses in a row is already an extreme outage; anything further is treated
// as an attack on CPU time.
const DefaultMaxAdvance = 1 << 16

// Walker is the verifier's (or relay's) view of a peer's chain: the most
// advanced trusted element and its disclosure index. Elements at or behind
// the trusted position are verified by *deriving* them from the trusted
// element (hashing toward the anchor), so out-of-order and duplicated
// disclosures — routine under ALPHA-C/-M and reordering networks — verify
// exactly without extra state. Walkers are not safe for concurrent use;
// each association owns its own.
type Walker struct {
	s          suite.Suite
	tagOdd     []byte
	tagEven    []byte
	last       []byte
	lastIdx    uint32
	maxAdvance uint32
	// scratch and parts are reused across verifications so that deriving
	// up to maxAdvance intermediate digests costs zero allocations.
	scratch []byte
	parts   [2][]byte
}

// NewWalker creates a walker trusting the given anchor (disclosure index 0).
// maxAdvance of 0 selects DefaultMaxAdvance.
func NewWalker(s suite.Suite, tagOdd, tagEven, anchor []byte, maxAdvance uint32) (*Walker, error) {
	if len(anchor) != s.Size() {
		return nil, fmt.Errorf("hashchain: anchor size %d does not match suite digest size %d", len(anchor), s.Size())
	}
	if maxAdvance == 0 {
		maxAdvance = DefaultMaxAdvance
	}
	w := &Walker{s: s, tagOdd: tagOdd, tagEven: tagEven, maxAdvance: maxAdvance}
	w.last = append(make([]byte, 0, s.Size()), anchor...)
	w.scratch = make([]byte, 0, s.Size())
	return w, nil
}

// NewSignatureWalker creates a walker for a peer's signature chain.
func NewSignatureWalker(s suite.Suite, anchor []byte) (*Walker, error) {
	return NewWalker(s, TagS1, TagS2, anchor, 0)
}

// NewAcknowledgmentWalker creates a walker for a peer's acknowledgment chain.
func NewAcknowledgmentWalker(s suite.Suite, anchor []byte) (*Walker, error) {
	return NewWalker(s, TagA1, TagA2, anchor, 0)
}

// Index returns the disclosure index of the most advanced verified element.
func (w *Walker) Index() uint32 { return w.lastIdx }

// Trusted returns the most advanced verified element. Callers must not
// mutate the returned slice, and must copy it if they need it past the next
// Verify call: the walker reuses the backing array when it advances.
func (w *Walker) Trusted() []byte { return w.last }

// Verify checks that elem is the chain element at disclosure index idx and,
// if idx advances past the current position, moves the walker forward.
// An index at or behind the current position is verified by deriving the
// expected element from the trusted one; this is what lets the out-of-order
// packets of ALPHA-C, ALPHA-M and reordering paths verify after the chain
// position has already moved on.
//alpha:hotpath
func (w *Walker) Verify(elem []byte, idx uint32) error {
	if err := w.Probe(elem, idx); err != nil {
		return err
	}
	if idx > w.lastIdx {
		w.last = append(w.last[:0], elem...)
		w.lastIdx = idx
	}
	return nil
}

// Probe is like Verify but never advances the walker. Relays use it when
// they want to check authenticity without committing state (e.g. while a
// packet might still be dropped for other reasons).
//alpha:hotpath
func (w *Walker) Probe(elem []byte, idx uint32) error {
	if len(elem) != w.s.Size() {
		return ErrVerifyFailed
	}
	switch {
	case idx == 0:
		// Index 0 is the anchor, which is never *disclosed*; treating
		// it as a disclosure would let an attacker replay the public
		// anchor as proof of ownership.
		return ErrStaleIndex
	case idx == w.lastIdx:
		if suite.Equal(elem, w.last) {
			return nil
		}
		return ErrVerifyFailed
	case idx < w.lastIdx:
		// Derive the expected older element from the trusted one:
		// d[j-1] = H(tag(j)|d[j]) walks from lastIdx down to idx.
		if w.lastIdx-idx > w.maxAdvance {
			return ErrTooFarAhead
		}
		if suite.Equal(w.derive(w.last, w.lastIdx, idx), elem) {
			return nil
		}
		return ErrVerifyFailed
	case idx-w.lastIdx > w.maxAdvance:
		return ErrTooFarAhead
	}
	// Hash forward from the candidate down to the trusted element.
	if !suite.Equal(w.derive(elem, idx, w.lastIdx), w.last) {
		return ErrVerifyFailed
	}
	return nil
}

// derive hashes from element start at disclosure index from down to index
// to, returning d[to]. The result lives in the walker's scratch buffer (or
// is start itself when from == to) and is valid until the next derivation.
func (w *Walker) derive(start []byte, from, to uint32) []byte {
	cur := start
	for j := from; j > to; j-- {
		w.parts[0] = tagFor(int(j), w.tagOdd, w.tagEven)
		w.parts[1] = cur
		// HashInto consumes its inputs before appending, so writing into
		// the buffer cur points at after the first step is safe.
		w.scratch = w.s.HashInto(w.scratch[:0], w.parts[:]...)
		cur = w.scratch
	}
	return cur
}
