package hashchain

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"alpha/internal/suite"
)

func testChain(t *testing.T, n int) *Chain {
	t.Helper()
	c, err := New(suite.SHA1(), TagS1, TagS2, []byte("test secret"), n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainGeneration(t *testing.T) {
	c := testChain(t, 16)
	if c.Len() != 16 || c.Remaining() != 16 {
		t.Fatalf("Len=%d Remaining=%d, want 16/16", c.Len(), c.Remaining())
	}
	if len(c.Anchor()) != 20 {
		t.Fatalf("anchor size %d", len(c.Anchor()))
	}
}

func TestChainDeterministic(t *testing.T) {
	c1 := testChain(t, 8)
	c2 := testChain(t, 8)
	if !bytes.Equal(c1.Anchor(), c2.Anchor()) {
		t.Fatalf("same secret produced different anchors")
	}
	e1, _, _ := c1.Next()
	e2, _, _ := c2.Next()
	if !bytes.Equal(e1, e2) {
		t.Fatalf("same secret produced different elements")
	}
}

func TestGenerateIsRandom(t *testing.T) {
	c1, err := Generate(suite.SHA1(), TagS1, TagS2, 8)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(suite.SHA1(), TagS1, TagS2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1.Anchor(), c2.Anchor()) {
		t.Fatalf("two generated chains share an anchor")
	}
}

func TestInvalidConstruction(t *testing.T) {
	if _, err := New(suite.SHA1(), TagS1, TagS2, []byte("s"), 0); err == nil {
		t.Fatalf("n=0 accepted")
	}
	if _, err := New(suite.SHA1(), TagS1, TagS2, nil, 4); err == nil {
		t.Fatalf("empty secret accepted")
	}
}

func TestDisclosureOrderAndExhaustion(t *testing.T) {
	c := testChain(t, 4)
	var idxs []uint32
	for {
		_, idx, err := c.Next()
		if err != nil {
			if !errors.Is(err, ErrExhausted) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		idxs = append(idxs, idx)
	}
	want := []uint32{1, 2, 3, 4}
	if len(idxs) != len(want) {
		t.Fatalf("disclosed %v, want %v", idxs, want)
	}
	for i := range want {
		if idxs[i] != want[i] {
			t.Fatalf("disclosed %v, want %v", idxs, want)
		}
	}
}

func TestLinkStructure(t *testing.T) {
	// Each disclosed element must hash to the previous one under the
	// alternating purpose tags: d[j-1] = H(tag(j)|d[j]).
	s := suite.SHA1()
	c := testChain(t, 6)
	prev := c.Anchor()
	for j := uint32(1); ; j++ {
		elem, idx, err := c.Next()
		if err != nil {
			break
		}
		if idx != j {
			t.Fatalf("index %d, want %d", idx, j)
		}
		tag := TagS2
		if j%2 == 1 {
			tag = TagS1
		}
		if !bytes.Equal(prev, s.Hash(tag, elem)) {
			t.Fatalf("element %d does not link under tag %q", j, tag)
		}
		if !VerifyLink(s, TagS1, TagS2, prev, elem, j) {
			t.Fatalf("VerifyLink rejects genuine link %d", j)
		}
		prev = elem
	}
}

func TestPeekDoesNotDisclose(t *testing.T) {
	c := testChain(t, 4)
	p0, i0, err := c.Peek(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, i1, err := c.Peek(1)
	if err != nil {
		t.Fatal(err)
	}
	if i0 != 1 || i1 != 2 {
		t.Fatalf("peek indices %d,%d", i0, i1)
	}
	e, _, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e, p0) {
		t.Fatalf("Next != Peek(0)")
	}
	e2, _, _ := c.Next()
	if !bytes.Equal(e2, p1) {
		t.Fatalf("second Next != Peek(1)")
	}
	if _, _, err := c.Peek(10); !errors.Is(err, ErrExhausted) {
		t.Fatalf("deep Peek should exhaust, got %v", err)
	}
}

func TestNextPair(t *testing.T) {
	c := testChain(t, 8)
	p1, err := c.NextPair()
	if err != nil {
		t.Fatal(err)
	}
	if p1.AuthIdx != 1 || p1.KeyIdx != 2 {
		t.Fatalf("pair indices %d/%d, want 1/2", p1.AuthIdx, p1.KeyIdx)
	}
	p2, err := c.NextPair()
	if err != nil {
		t.Fatal(err)
	}
	if p2.AuthIdx != 3 || p2.KeyIdx != 4 {
		t.Fatalf("second pair indices %d/%d, want 3/4", p2.AuthIdx, p2.KeyIdx)
	}
	// The key of a pair hashes to its auth element under the S2 tag.
	s := suite.SHA1()
	if !bytes.Equal(p1.Auth, s.Hash(TagS2, p1.Key)) {
		t.Fatalf("pair key does not chain to auth element")
	}
}

func TestNextPairExhaustion(t *testing.T) {
	c := testChain(t, 4)
	if _, err := c.NextPair(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextPair(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextPair(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
}

func TestNextPairMisalignment(t *testing.T) {
	c := testChain(t, 8)
	if _, _, err := c.Next(); err != nil { // consume one element: odd position gone
		t.Fatal(err)
	}
	if _, err := c.NextPair(); err == nil {
		t.Fatalf("misaligned NextPair should fail")
	}
}

func TestWalkerVerifiesSequential(t *testing.T) {
	s := suite.SHA1()
	c := testChain(t, 8)
	w, err := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		elem, idx, err := c.Next()
		if err != nil {
			break
		}
		if err := w.Verify(elem, idx); err != nil {
			t.Fatalf("Verify(%d): %v", idx, err)
		}
		if w.Index() != idx {
			t.Fatalf("walker index %d after verifying %d", w.Index(), idx)
		}
	}
}

func TestWalkerSkipsGaps(t *testing.T) {
	// Re-authentication across losses: the verifier may miss arbitrarily
	// many disclosures and still verify a later element.
	s := suite.SHA1()
	c := testChain(t, 32)
	w, _ := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
	var elem []byte
	var idx uint32
	for i := 0; i < 11; i++ {
		elem, idx, _ = c.Next()
	}
	if err := w.Verify(elem, idx); err != nil {
		t.Fatalf("gap verify failed: %v", err)
	}
	if w.Index() != 11 {
		t.Fatalf("walker at %d, want 11", w.Index())
	}
}

func TestWalkerRejectsForgery(t *testing.T) {
	s := suite.SHA1()
	c := testChain(t, 8)
	other, _ := New(s, TagS1, TagS2, []byte("other secret"), 8)
	w, _ := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
	elem, idx, _ := other.Next()
	if err := w.Verify(elem, idx); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("foreign element accepted: %v", err)
	}
	// A mutated genuine element must fail too.
	elem2, idx2, _ := c.Next()
	bad := append([]byte(nil), elem2...)
	bad[0] ^= 1
	if err := w.Verify(bad, idx2); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("mutated element accepted: %v", err)
	}
	// And the genuine one still verifies afterwards.
	if err := w.Verify(elem2, idx2); err != nil {
		t.Fatalf("genuine element rejected after forgery attempt: %v", err)
	}
}

func TestWalkerRejectsWrongSizes(t *testing.T) {
	s := suite.SHA1()
	c := testChain(t, 4)
	w, _ := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
	if err := w.Verify([]byte("short"), 1); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("short element: %v", err)
	}
	if _, err := NewWalker(s, TagS1, TagS2, []byte("tiny"), 0); err == nil {
		t.Fatalf("tiny anchor accepted")
	}
}

func TestWalkerAdvanceLimit(t *testing.T) {
	s := suite.SHA1()
	c := testChain(t, 64)
	w, _ := NewWalker(s, TagS1, TagS2, c.Anchor(), 4)
	var elem []byte
	var idx uint32
	for i := 0; i < 6; i++ {
		elem, idx, _ = c.Next()
	}
	if err := w.Verify(elem, idx); !errors.Is(err, ErrTooFarAhead) {
		t.Fatalf("advance limit not enforced: %v", err)
	}
}

func TestWalkerHistoryAllowsOutOfOrder(t *testing.T) {
	// ALPHA-C delivers many S2 packets carrying the same even element;
	// some arrive after the walker advanced past them via a newer S1.
	s := suite.SHA1()
	c := testChain(t, 16)
	w, _ := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
	e1, i1, _ := c.Next() // idx 1
	e2, i2, _ := c.Next() // idx 2
	e3, i3, _ := c.Next() // idx 3
	if err := w.Verify(e1, i1); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(e2, i2); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(e3, i3); err != nil {
		t.Fatal(err)
	}
	// Replaying the (genuine) element at index 2 must still verify...
	if err := w.Verify(e2, i2); err != nil {
		t.Fatalf("history lookup failed: %v", err)
	}
	// ...but a forged value at a remembered index must not.
	bad := append([]byte(nil), e2...)
	bad[3] ^= 0x80
	if err := w.Verify(bad, i2); err == nil {
		t.Fatalf("forged historical element accepted")
	}
	// An index never seen and behind the walker is stale.
	if err := w.Verify(e1, 0); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("index 0 should be stale: %v", err)
	}
}

func TestWalkerProbeDoesNotAdvance(t *testing.T) {
	s := suite.SHA1()
	c := testChain(t, 8)
	w, _ := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
	e1, i1, _ := c.Next()
	if err := w.Probe(e1, i1); err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if w.Index() != 0 {
		t.Fatalf("Probe advanced the walker to %d", w.Index())
	}
	if err := w.Verify(e1, i1); err != nil {
		t.Fatalf("Verify after Probe: %v", err)
	}
	if err := w.Probe(e1, i1); err != nil {
		t.Fatalf("Probe at current index: %v", err)
	}
}

func TestReformattingAttack(t *testing.T) {
	// §3.2.1: without purpose tags, an attacker holding an intercepted S2
	// element (even index) could pass it off in an S1 role. With tags,
	// verifying an even-index element as if it were odd must fail.
	s := suite.SHA1()
	c := testChain(t, 8)
	w, _ := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
	e1, i1, _ := c.Next() // odd: S1 auth element
	e2, _, _ := c.Next()  // even: S2 MAC key
	if err := w.Verify(e1, i1); err != nil {
		t.Fatal(err)
	}
	// Attacker claims e2 is the *next odd* element (index 3): the walker
	// hashes with the S1 tag where the chain used S2, so this must fail.
	if err := w.Verify(e2, 3); err == nil {
		t.Fatalf("reformatted element accepted — purpose binding broken")
	}
	// Control: an untagged chain (both tags equal) is vulnerable to
	// exactly this confusion, which is why the tags exist. Build one and
	// show the parity confusion goes undetected there.
	same := []byte("ALPHA-untagged")
	uc, _ := New(s, same, same, []byte("untagged secret"), 8)
	uw, _ := NewWalker(s, same, same, uc.Anchor(), 0)
	u1, _, _ := uc.Next()
	u2, _, _ := uc.Next()
	if err := uw.Verify(u1, 1); err != nil {
		t.Fatal(err)
	}
	// The same off-by-parity replay verifies on the untagged chain: u2 at
	// claimed index 2 is genuine, but the point is the verifier cannot
	// tell S1-role from S2-role elements apart without tags.
	if err := uw.Verify(u2, 2); err != nil {
		t.Fatalf("untagged control chain broken: %v", err)
	}
}

func TestWalkerAcrossSuites(t *testing.T) {
	for _, s := range []suite.Suite{suite.SHA1(), suite.SHA256(), suite.MMO()} {
		c, err := New(s, TagS1, TagS2, []byte("multi-suite"), 8)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
		if err != nil {
			t.Fatal(err)
		}
		for {
			e, i, err := c.Next()
			if err != nil {
				break
			}
			if err := w.Verify(e, i); err != nil {
				t.Fatalf("%s: Verify(%d): %v", s.Name(), i, err)
			}
		}
	}
}

func TestQuickWalkerSoundness(t *testing.T) {
	// Property: for random chain lengths and disclosure gaps, a genuine
	// element always verifies and a bit-flipped one never does.
	s := suite.SHA1()
	f := func(seed []byte, lenSel, gapSel, flip uint8) bool {
		if len(seed) == 0 {
			seed = []byte{1}
		}
		n := 2 + int(lenSel)%30
		c, err := New(s, TagS1, TagS2, seed, n)
		if err != nil {
			return false
		}
		w, err := NewWalker(s, TagS1, TagS2, c.Anchor(), 0)
		if err != nil {
			return false
		}
		gap := int(gapSel)%(n-1) + 1
		var elem []byte
		var idx uint32
		for i := 0; i < gap; i++ {
			elem, idx, err = c.Next()
			if err != nil {
				return false
			}
		}
		bad := append([]byte(nil), elem...)
		bad[int(flip)%len(bad)] ^= 1 << (flip % 8)
		if w.Probe(bad, idx) == nil {
			return false
		}
		return w.Verify(elem, idx) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
