// Checkpointed chain owner for memory-constrained nodes.
//
// A full Chain keeps all n elements in memory (n·h bytes), which is fine on
// mesh routers and phones but heavy on 8-KB-RAM sensor nodes (§4.1.3 of the
// paper evaluates a platform with exactly that budget). CheckpointChain
// trades CPU for memory: it stores every k-th element plus the deepest
// secret and recomputes the segment containing each disclosure on demand,
// for ceil(n/k)·h bytes of storage and at most k-1 extra hash operations per
// disclosure. These extra hashes are the "HC create" entries of Table 1 that
// the paper marks as computable off-line.

package hashchain

import (
	"errors"
	"fmt"

	"alpha/internal/suite"
)

// CheckpointChain is a chain owner that stores only every interval-th
// element. It discloses exactly the same sequence as a Chain built from the
// same secret.
type CheckpointChain struct {
	s        suite.Suite
	tagOdd   []byte
	tagEven  []byte
	n        int
	interval int
	// checkpoints[i] holds d[i*interval]; checkpoints[0] is the anchor.
	checkpoints [][]byte
	deepest     []byte // d[n]
	next        int
	// segment caches the elements of the segment currently being
	// disclosed, so a burst of disclosures costs one recomputation. Each
	// segment's digests share one freshly allocated slab: disclosed
	// elements are retained by callers (in-flight exchanges), so the slab
	// must not be recycled when the cache moves to the next segment.
	segment      [][]byte
	segmentStart int
	parts        [2][]byte
}

// NewCheckpoint derives a checkpointed chain of n elements from secret,
// storing one checkpoint every interval elements.
func NewCheckpoint(s suite.Suite, tagOdd, tagEven, secret []byte, n, interval int) (*CheckpointChain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hashchain: invalid length %d", n)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("hashchain: invalid checkpoint interval %d", interval)
	}
	if len(secret) == 0 {
		return nil, errors.New("hashchain: empty secret")
	}
	c := &CheckpointChain{
		s: s, tagOdd: tagOdd, tagEven: tagEven,
		n: n, interval: interval,
		checkpoints:  make([][]byte, n/interval+1),
		segmentStart: -1,
		next:         1,
	}
	// The generation pass alternates between two scratch digests; only
	// checkpoints are copied out, so the walk itself does not allocate
	// per element.
	size := s.Size()
	c.parts[0], c.parts[1] = seedTag, secret
	cur := s.HashInto(make([]byte, 0, size), c.parts[:]...)
	next := make([]byte, 0, size)
	c.deepest = append([]byte(nil), cur...)
	if n%interval == 0 {
		c.checkpoints[n/interval] = c.deepest
	}
	for j := n; j >= 1; j-- {
		c.parts[0], c.parts[1] = tagFor(j, tagOdd, tagEven), cur
		next = c.s.HashInto(next[:0], c.parts[:]...)
		cur, next = next, cur
		if (j-1)%interval == 0 {
			c.checkpoints[(j-1)/interval] = append(make([]byte, 0, size), cur...)
		}
	}
	return c, nil
}

// Anchor returns d[0].
func (c *CheckpointChain) Anchor() []byte { return c.checkpoints[0] }

// Len returns the number of disclosable elements.
func (c *CheckpointChain) Len() int { return c.n }

// Remaining returns how many elements are still undisclosed.
func (c *CheckpointChain) Remaining() int { return c.n + 1 - c.next }

// StoredElements returns how many digests the owner keeps resident,
// excluding the transient segment cache. Exposed for the Table 2 memory
// ablation.
func (c *CheckpointChain) StoredElements() int { return len(c.checkpoints) + 1 }

// element returns d[j], recomputing the enclosing segment if necessary.
func (c *CheckpointChain) element(j int) []byte {
	if j == c.n {
		return c.deepest
	}
	if j%c.interval == 0 {
		return c.checkpoints[j/c.interval]
	}
	segStart := (j / c.interval) * c.interval
	if c.segmentStart != segStart {
		// Recompute d[segStart..segEnd-1] downward from the next
		// checkpoint (or the deepest secret for the final partial
		// segment). Element digests land in the reusable segment slab,
		// so steady-state disclosure does not allocate.
		segEnd := segStart + c.interval
		var cur []byte
		if segEnd >= c.n {
			segEnd = c.n
			cur = c.deepest
		} else {
			cur = c.checkpoints[segEnd/c.interval]
		}
		size := c.s.Size()
		if c.segment == nil {
			c.segment = make([][]byte, c.interval)
		}
		slab := make([]byte, 0, c.interval*size)
		for k := segEnd; k > segStart; k-- {
			if k < segEnd {
				c.parts[0], c.parts[1] = tagFor(k+1, c.tagOdd, c.tagEven), cur
				off := len(slab)
				slab = c.s.HashInto(slab, c.parts[:]...)
				cur = slab[off : off+size : off+size]
			}
			c.segment[k-segStart-1] = cur
		}
		c.segmentStart = segStart
	}
	return c.segment[j-segStart-1]
}

// Next discloses the next element, exactly as Chain.Next does.
func (c *CheckpointChain) Next() (elem []byte, index uint32, err error) {
	if c.next > c.n {
		return nil, 0, ErrExhausted
	}
	elem, index = c.element(c.next), uint32(c.next)
	c.next++
	return elem, index, nil
}

// Peek returns a future element without disclosing it.
func (c *CheckpointChain) Peek(ahead int) (elem []byte, index uint32, err error) {
	j := c.next + ahead
	if ahead < 0 || j > c.n {
		return nil, 0, ErrExhausted
	}
	return c.element(j), uint32(j), nil
}

// NextPair discloses one exchange's auth/key element pair.
func (c *CheckpointChain) NextPair() (Pair, error) {
	if c.next%2 != 1 {
		return Pair{}, fmt.Errorf("hashchain: chain misaligned at index %d", c.next)
	}
	if c.next+1 > c.n {
		return Pair{}, ErrExhausted
	}
	p := Pair{
		Auth:    c.element(c.next),
		AuthIdx: uint32(c.next),
		Key:     c.element(c.next + 1),
		KeyIdx:  uint32(c.next + 1),
	}
	c.next += 2
	return p, nil
}
