// Package telemetry is the repo's dependency-free observability core:
// atomic protocol counters, gauges, lock-free histograms with fixed bucket
// layouts, and a ring-buffer packet-lifecycle tracer, plus exporters that
// serve everything as expvar-style JSON and Prometheus text.
//
// The package exists so the protocol's behavior — per-step latency, relay
// drop reasons, transport back-pressure — is observable on a *live* node,
// not only in offline benchmarks. Design constraints, in order:
//
//  1. Zero allocations on the hot path. Counter.Inc, Gauge.Add,
//     Histogram.Observe and Tracer.Trace are single (or a handful of)
//     atomic operations on preallocated memory; none of them locks or
//     allocates. The engine's zero-alloc discipline (DESIGN.md §5c)
//     survives instrumentation.
//  2. Safe under -race. All mutable state is accessed through
//     sync/atomic; snapshot readers never observe a data race (they may
//     observe counters from slightly different instants, which is the
//     usual and accepted metric-snapshot semantics).
//  3. No dependencies beyond the standard library, matching the rest of
//     the repository.
//
// Metric sets are plain structs of counters (EndpointMetrics,
// RelayMetrics, TransportMetrics) so that call sites pay one atomic add —
// never a map lookup or a string hash. Naming and namespacing happen only
// at export time (see Exporter and DESIGN.md §5d for the namespace).
package telemetry

import "sync/atomic"

// Counter is a monotonically increasing 64-bit metric, safe for concurrent
// use. The zero value is ready; increments never allocate.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//alpha:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//alpha:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// SetMax raises the value to n if n is larger, for high-watermark metrics
// (e.g. maximum observed ack latency). Lock-free CAS loop.
func (c *Counter) SetMax(n uint64) {
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Gauge is an instantaneous signed value (queue depths, active sessions),
// safe for concurrent use. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
