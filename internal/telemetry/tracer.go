// Per-association packet-lifecycle tracing.
//
// The Tracer is a fixed-size ring of packed event slots written with
// atomics only: recording an event is a cursor fetch-add plus four atomic
// stores into preallocated memory — no locks, no allocation, so it can sit
// on the same hot paths as the counters. A slot being overwritten while a
// snapshot reads it can yield one mixed record (fields from two events),
// never a data race; tracing favors liveness over perfect consistency.

package telemetry

import "sync/atomic"

// TraceKind enumerates packet lifecycle events.
type TraceKind uint8

const (
	// TraceS1Sent: an S1 pre-signature announcement entered the outbox.
	// Detail is the batch size.
	TraceS1Sent TraceKind = iota + 1
	// TraceS1Recv: a verifier accepted an S1 announcement.
	TraceS1Recv
	// TraceA1Recv: a signer accepted the verifier's A1 acknowledgment.
	TraceA1Recv
	// TraceS2Sent: the signer disclosed an exchange's S2 packets.
	// Detail is the message count.
	TraceS2Sent
	// TraceS2Verified: a verifier or relay verified an S2 payload.
	// Detail is the message index within the batch.
	TraceS2Verified
	// TraceDrop: an endpoint discarded a packet. Detail is a Reason code.
	TraceDrop
	// TraceRelayForward: a relay forwarded a packet. Detail is the wire
	// packet type.
	TraceRelayForward
	// TraceRelayDrop: a relay discarded a packet. Detail is a Reason code.
	TraceRelayDrop
	// TraceInboxDrop: the UDP server dropped a datagram because the
	// session's inbox was full (worker back-pressure).
	TraceInboxDrop
	// TraceSessionStart: the UDP server created a session.
	TraceSessionStart
	// TraceSessionEnd: a session was removed from the routing table.
	TraceSessionEnd
	// TraceAdaptiveDecision: the adaptive controller decided on a new
	// target profile. Seq carries the decision ordinal; Detail packs the
	// target as mode<<16 | batch.
	TraceAdaptiveDecision
	// TraceModeChange: an endpoint applied a runtime profile transition.
	// Seq is the first exchange sequence that will use it; Detail packs
	// the new profile as mode<<16 | batch.
	TraceModeChange
)

// String returns the event kind's name.
func (k TraceKind) String() string {
	switch k {
	case TraceS1Sent:
		return "S1Sent"
	case TraceS1Recv:
		return "S1Recv"
	case TraceA1Recv:
		return "A1Recv"
	case TraceS2Sent:
		return "S2Sent"
	case TraceS2Verified:
		return "S2Verified"
	case TraceDrop:
		return "Drop"
	case TraceRelayForward:
		return "RelayForward"
	case TraceRelayDrop:
		return "RelayDrop"
	case TraceInboxDrop:
		return "InboxDrop"
	case TraceSessionStart:
		return "SessionStart"
	case TraceSessionEnd:
		return "SessionEnd"
	case TraceAdaptiveDecision:
		return "AdaptiveDecision"
	case TraceModeChange:
		return "ModeChange"
	default:
		return "Unknown"
	}
}

// Reason codes carried in the Detail field of drop events. They mirror the
// drop counters of core, relay and udptransport so a trace line and a
// counter increment always agree.
const (
	ReasonNone uint32 = iota
	ReasonMalformed
	ReasonUnknownAssoc
	ReasonRateLimited
	ReasonBadElement
	ReasonBadPayload
	ReasonBadAck
	ReasonUnsolicited
	ReasonOversized
	ReasonStrictPolicy
	ReasonNotEstablished
	ReasonBadDirection
	ReasonBadHandshake
	ReasonSuiteMismatch
	ReasonChainExhausted
	ReasonInboxFull

	// Transport-only reasons (the UDP server's pre-endpoint drop paths).
	// They sit above the endpoint range on purpose: EndpointMetrics'
	// DropReasons array covers codes 0–15 only, and these never reach it.

	// ReasonPrefilter: the stateless prefilter rejected the datagram
	// before any session lookup (bad structure or cookie mismatch).
	ReasonPrefilter
	// ReasonAcceptBacklog: an established session was discarded because
	// the accept backlog was full.
	ReasonAcceptBacklog
	// ReasonExpired: an idle association was retired by generation
	// rotation.
	ReasonExpired

	// ReasonS1RateLimit: a relay discarded an unsolicited S1 because the
	// per-upstream token bucket was empty (§3.5 rate limiting).
	ReasonS1RateLimit

	// Admission reasons (the connect-token stage between the prefilter and
	// session creation). Like the transport reasons above they live outside
	// the endpoint range: they are counted by AdmissionMetrics, never by
	// EndpointMetrics.

	// ReasonAdmissionMissing: an HS1 arrived without a token while the
	// server requires one.
	ReasonAdmissionMissing
	// ReasonAdmissionInvalid: the token failed to decrypt/authenticate or
	// carried an unknown version or key ID.
	ReasonAdmissionInvalid
	// ReasonAdmissionExpired: the token authenticated but its expiry had
	// passed.
	ReasonAdmissionExpired
	// ReasonAdmissionReplayed: the token's nonce was already seen inside
	// the replay window.
	ReasonAdmissionReplayed
	// ReasonAdmissionAddrMismatch: the token authenticated but was minted
	// for a different client address.
	ReasonAdmissionAddrMismatch
)

// ReasonString names a Reason code.
func ReasonString(code uint32) string {
	switch code {
	case ReasonNone:
		return "none"
	case ReasonMalformed:
		return "malformed"
	case ReasonUnknownAssoc:
		return "unknown_assoc"
	case ReasonRateLimited:
		return "rate_limited"
	case ReasonBadElement:
		return "bad_element"
	case ReasonBadPayload:
		return "bad_payload"
	case ReasonBadAck:
		return "bad_ack"
	case ReasonUnsolicited:
		return "unsolicited"
	case ReasonOversized:
		return "oversized"
	case ReasonStrictPolicy:
		return "strict_policy"
	case ReasonNotEstablished:
		return "not_established"
	case ReasonBadDirection:
		return "bad_direction"
	case ReasonBadHandshake:
		return "bad_handshake"
	case ReasonSuiteMismatch:
		return "suite_mismatch"
	case ReasonChainExhausted:
		return "chain_exhausted"
	case ReasonInboxFull:
		return "inbox_full"
	case ReasonPrefilter:
		return "prefilter"
	case ReasonAcceptBacklog:
		return "accept_backlog"
	case ReasonExpired:
		return "expired"
	case ReasonS1RateLimit:
		return "s1_ratelimit"
	case ReasonAdmissionMissing:
		return "admission_missing"
	case ReasonAdmissionInvalid:
		return "admission_invalid"
	case ReasonAdmissionExpired:
		return "admission_expired"
	case ReasonAdmissionReplayed:
		return "admission_replayed"
	case ReasonAdmissionAddrMismatch:
		return "admission_addr_mismatch"
	default:
		return "unknown"
	}
}

// TraceEvent is one decoded ring entry.
type TraceEvent struct {
	// Time is the caller-supplied timestamp in nanoseconds. The engine is
	// sans-IO, so simulated clocks trace as faithfully as wall clocks.
	Time int64
	Kind TraceKind
	// Assoc is the association the packet belongs to (0 when unknown).
	Assoc uint64
	// Seq is the exchange sequence number (0 when not applicable).
	Seq uint32
	// Detail is event-specific: batch size, message index, or a Reason
	// code for drops (see the TraceKind constants).
	Detail uint32
}

// traceSlot is one ring entry, stored as atomics so concurrent writers and
// snapshot readers never race.
type traceSlot struct {
	ts      atomic.Uint64
	assoc   atomic.Uint64
	kindSeq atomic.Uint64 // kind<<32 | seq
	detail  atomic.Uint64
}

// Tracer records packet lifecycle events into a fixed ring. A nil *Tracer
// is valid and records nothing, so call sites need no guards.
type Tracer struct {
	mask   uint64
	cursor atomic.Uint64
	slots  []traceSlot
}

// NewTracer creates a tracer holding the most recent size events (rounded
// up to a power of two, minimum 16). size <= 0 selects 1024.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = 1024
	}
	n := 16
	for n < size {
		n <<= 1
	}
	return &Tracer{mask: uint64(n - 1), slots: make([]traceSlot, n)}
}

// Trace records one event. Safe for concurrent use; zero allocations.
func (t *Tracer) Trace(ts int64, kind TraceKind, assoc uint64, seq, detail uint32) {
	if t == nil {
		return
	}
	i := t.cursor.Add(1) - 1
	s := &t.slots[i&t.mask]
	s.ts.Store(uint64(ts))
	s.assoc.Store(assoc)
	s.kindSeq.Store(uint64(kind)<<32 | uint64(seq))
	s.detail.Store(uint64(detail))
}

// Len returns the number of events currently retrievable (at most the ring
// size).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.cursor.Load()
	if n > uint64(len(t.slots)) {
		return len(t.slots)
	}
	return int(n)
}

// Snapshot returns the retained events oldest-first. Events recorded while
// the snapshot runs may appear mixed into the oldest entries; each field is
// read atomically so the result is always memory-safe.
func (t *Tracer) Snapshot() []TraceEvent {
	if t == nil {
		return nil
	}
	cur := t.cursor.Load()
	start := uint64(0)
	if n := uint64(len(t.slots)); cur > n {
		start = cur - n
	}
	out := make([]TraceEvent, 0, cur-start)
	for i := start; i < cur; i++ {
		s := &t.slots[i&t.mask]
		ks := s.kindSeq.Load()
		out = append(out, TraceEvent{
			Time:   int64(s.ts.Load()),
			Kind:   TraceKind(ks >> 32),
			Assoc:  s.assoc.Load(),
			Seq:    uint32(ks),
			Detail: uint32(s.detail.Load()),
		})
	}
	return out
}
