// Static metric sets for the three instrumented layers: protocol endpoints
// (internal/core), verifying relays (internal/relay) and the UDP transport
// (internal/udptransport). Fields are plain atomic counters so hot paths
// pay exactly one atomic add; names, prefixes and formats exist only at
// export time (Walk).

package telemetry

// EndpointMetrics counts one protocol endpoint's activity. It backs
// core.Endpoint.Stats(): the endpoint increments these atomically from its
// worker goroutine while Stats() and exporters read them from any other
// goroutine without synchronization hazards.
//
// An EndpointMetrics can also serve as an aggregation target: the UDP
// server folds every session's metrics into one set at scrape time (AddTo).
type EndpointMetrics struct {
	SentS1, SentA1, SentS2, SentA2 Counter
	RecvS1, RecvA1, RecvS2, RecvA2 Counter
	Retransmits                    Counter
	Delivered, Acked, Nacked       Counter
	Dropped                        Counter
	BytesSent, BytesReceived       Counter
	PayloadBytes                   Counter

	// DropReasons splits Dropped by Reason code (indexed by the code), so
	// the endpoint honours the I3 drop-budget invariant exactly:
	// dropped == Σ drop_<reason>. Increment through NoteDrop.
	DropReasons [16]Counter

	// AckLatencyNS accumulates Send-to-verified-ack time in nanoseconds;
	// AckLatencyMaxNS is the high watermark. AckLatency buckets the same
	// observations.
	AckLatencyNS    Counter
	AckLatencyMaxNS Counter
	AckLatency      Histogram
	// PayloadSize buckets delivered (verified) payload sizes.
	PayloadSize Histogram

	// Chain-pressure gauges: undisclosed elements remaining on the local
	// signature and acknowledgment chains, next to their disclosable
	// lengths, so rekey pressure is a plottable ratio on a dashboard
	// before EventChainLow fires (the trigger fraction defaults to 1/3 of
	// the chain and is tunable per association).
	SigChainRemaining, AckChainRemaining Gauge
	SigChainLen, AckChainLen             Gauge

	// Profile state: the mode (packet.Mode ordinal) and batch size new
	// exchanges currently start with, and how many runtime transitions
	// (SetProfile) the association has applied — the observable face of
	// the adaptive controller's actuator.
	Mode, BatchSize Gauge
	ModeChanges     Counter
}

// Init fixes the histogram bucket layouts; counters need no setup.
func (m *EndpointMetrics) Init() *EndpointMetrics {
	m.AckLatency.Init(LatencyBuckets)
	m.PayloadSize.Init(SizeBuckets)
	return m
}

// NewEndpointMetrics allocates an initialized set.
func NewEndpointMetrics() *EndpointMetrics {
	return new(EndpointMetrics).Init()
}

// NoteDrop records one dropped packet under its Reason code: the aggregate
// and the per-reason counter move together, which is what keeps the I3
// invariant an equality rather than a bound.
//
//alpha:hotpath
func (m *EndpointMetrics) NoteDrop(code uint32) {
	m.Dropped.Inc()
	m.DropReasons[code&15].Inc()
}

// endpointCounter pairs a counter with its export name; max marks
// high-watermark fields that merge with SetMax instead of Add.
type endpointCounter struct {
	name string
	c    *Counter
	max  bool
}

func (m *EndpointMetrics) counters() [19]endpointCounter {
	return [19]endpointCounter{
		{"sent_s1", &m.SentS1, false},
		{"sent_a1", &m.SentA1, false},
		{"sent_s2", &m.SentS2, false},
		{"sent_a2", &m.SentA2, false},
		{"recv_s1", &m.RecvS1, false},
		{"recv_a1", &m.RecvA1, false},
		{"recv_s2", &m.RecvS2, false},
		{"recv_a2", &m.RecvA2, false},
		{"retransmits", &m.Retransmits, false},
		{"delivered", &m.Delivered, false},
		{"acked", &m.Acked, false},
		{"nacked", &m.Nacked, false},
		{"dropped", &m.Dropped, false},
		{"bytes_sent", &m.BytesSent, false},
		{"bytes_received", &m.BytesReceived, false},
		{"payload_bytes", &m.PayloadBytes, false},
		{"ack_latency_ns_sum", &m.AckLatencyNS, false},
		{"ack_latency_ns_max", &m.AckLatencyMaxNS, true},
		{"mode_changes", &m.ModeChanges, false},
	}
}

// gauges pairs each gauge with its export name. fold marks gauges that sum
// meaningfully across sessions (chain pressure); mode and batch size are
// per-association state, so AddTo leaves them alone.
func (m *EndpointMetrics) gauges() [6]struct {
	name string
	g    *Gauge
	fold bool
} {
	return [6]struct {
		name string
		g    *Gauge
		fold bool
	}{
		{"sig_chain_remaining", &m.SigChainRemaining, true},
		{"sig_chain_len", &m.SigChainLen, true},
		{"ack_chain_remaining", &m.AckChainRemaining, true},
		{"ack_chain_len", &m.AckChainLen, true},
		{"mode", &m.Mode, false},
		{"batch_size", &m.BatchSize, false},
	}
}

// Walk reports every metric to v.
func (m *EndpointMetrics) Walk(v Visitor) {
	cs := m.counters()
	for i := range cs {
		v.Counter(cs[i].name, cs[i].c.Load())
	}
	for code := uint32(1); code <= ReasonInboxFull; code++ {
		dr := &m.DropReasons[code]
		v.Counter("drop_"+ReasonString(code), dr.Load())
	}
	gs := m.gauges()
	for i := range gs {
		v.Gauge(gs[i].name, gs[i].g.Load())
	}
	v.Histogram("ack_latency_ns", m.AckLatency.Snapshot())
	v.Histogram("payload_size_bytes", m.PayloadSize.Snapshot())
}

// AddTo folds this set into dst (atomic loads and adds on both sides, so
// both may be live). High-watermark fields merge as maxima; histograms
// merge bucket-wise.
func (m *EndpointMetrics) AddTo(dst *EndpointMetrics) {
	src, d := m.counters(), dst.counters()
	for i := range src {
		n := src[i].c.Load()
		if n == 0 {
			continue
		}
		if src[i].max {
			d[i].c.SetMax(n)
		} else {
			d[i].c.Add(n)
		}
	}
	for i := range m.DropReasons {
		if n := m.DropReasons[i].Load(); n != 0 {
			dst.DropReasons[i].Add(n)
		}
	}
	gs, dg := m.gauges(), dst.gauges()
	for i := range gs {
		if !gs[i].fold {
			continue
		}
		if n := gs[i].g.Load(); n != 0 {
			dg[i].g.Add(n)
		}
	}
	m.AckLatency.AddTo(&dst.AckLatency)
	m.PayloadSize.AddTo(&dst.PayloadSize)
}

// ControllerMetrics exposes one adaptive controller's closed loop: the
// signal estimates it maintains (EWMAs, exported as gauges so a dashboard
// shows what the controller currently believes), the target profile it has
// decided on, and how often it decides, holds, or flaps. Counters and
// gauges only — the decision path stays allocation-free.
type ControllerMetrics struct {
	// Samples counts signal observations; Decisions counts applied
	// profile changes; Holds counts samples where hysteresis, confirmation
	// or cool-down kept the profile despite a differing target; Flaps
	// counts changes that reverted the immediately preceding change within
	// the flap window (the instability a controller must avoid).
	Samples, Decisions, Holds, Flaps Counter

	// TargetMode / TargetBatch is the profile the controller currently
	// wants (it equals the endpoint profile once applied).
	TargetMode, TargetBatch Gauge

	// Signal estimates, scaled for integer export: smoothed loss in parts
	// per million, smoothed ack RTT in nanoseconds, smoothed goodput in
	// bytes/s, chain depletion in ppm of the chain spent, and the queue
	// backlog at the last sample.
	LossPPM, AckRTTNS, GoodputBps Gauge
	ChainSpentPPM, QueueDepth     Gauge
}

// Walk reports every metric to v.
func (m *ControllerMetrics) Walk(v Visitor) {
	v.Counter("samples", m.Samples.Load())
	v.Counter("decisions", m.Decisions.Load())
	v.Counter("holds", m.Holds.Load())
	v.Counter("flaps", m.Flaps.Load())
	v.Gauge("target_mode", m.TargetMode.Load())
	v.Gauge("target_batch", m.TargetBatch.Load())
	v.Gauge("loss_ppm", m.LossPPM.Load())
	v.Gauge("ack_rtt_ns", m.AckRTTNS.Load())
	v.Gauge("goodput_bps", m.GoodputBps.Load())
	v.Gauge("chain_spent_ppm", m.ChainSpentPPM.Load())
	v.Gauge("queue_depth", m.QueueDepth.Load())
}

// RelayMetrics counts a verifying relay's activity, with one counter per
// drop reason so hop-by-hop failures never vanish silently (agent-skipping
// attacks on forwarding protocols are exactly the failures that per-hop
// accounting surfaces).
type RelayMetrics struct {
	Forwarded Counter
	Dropped   Counter
	Handshake Counter

	// Drop reasons (Malformed through Oversized mirror relay.Stats). Every
	// reason counter accompanies a Dropped increment, so
	// dropped == Σ drop_<reason> holds exactly (invariant I3). Unknown is
	// different: it counts unknown-association *lookups*, which drop only
	// under the strict policy (where StrictPolicy counts the drop), so it
	// exports outside the drop_ family.
	Malformed, Unknown, RateLimited Counter
	BadElement, BadPayload, BadAck  Counter
	Unsolicited, Oversized          Counter
	StrictPolicy, BadHandshake      Counter
	// S1RateLimited counts unsolicited S1s shed by the per-upstream token
	// bucket (§3.5 rate limiting) before any flow state was created.
	S1RateLimited Counter

	ExtractedBytes Counter
	// ExtractedSize buckets verified-and-extracted payload sizes.
	ExtractedSize Histogram
}

// Init fixes the histogram bucket layout.
func (m *RelayMetrics) Init() *RelayMetrics {
	m.ExtractedSize.Init(SizeBuckets)
	return m
}

// DropCounter returns the per-reason counter for a Reason code, or nil for
// codes the relay never emits. Every drop path must resolve to a counter —
// the alphavet dropcount analyzer and the I3 invariant both assume it.
func (m *RelayMetrics) DropCounter(code uint32) *Counter {
	switch code {
	case ReasonMalformed:
		return &m.Malformed
	case ReasonRateLimited:
		return &m.RateLimited
	case ReasonBadElement:
		return &m.BadElement
	case ReasonBadPayload:
		return &m.BadPayload
	case ReasonBadAck:
		return &m.BadAck
	case ReasonUnsolicited:
		return &m.Unsolicited
	case ReasonOversized:
		return &m.Oversized
	case ReasonStrictPolicy:
		return &m.StrictPolicy
	case ReasonBadHandshake:
		return &m.BadHandshake
	case ReasonS1RateLimit:
		return &m.S1RateLimited
	default:
		return nil
	}
}

// Walk reports every metric to v. Drop reasons export under a drop_ prefix
// so dashboards can sum them as one family.
func (m *RelayMetrics) Walk(v Visitor) {
	v.Counter("forwarded", m.Forwarded.Load())
	v.Counter("dropped", m.Dropped.Load())
	v.Counter("handshakes", m.Handshake.Load())
	v.Counter("drop_malformed", m.Malformed.Load())
	v.Counter("drop_rate_limited", m.RateLimited.Load())
	v.Counter("drop_bad_element", m.BadElement.Load())
	v.Counter("drop_bad_payload", m.BadPayload.Load())
	v.Counter("drop_bad_ack", m.BadAck.Load())
	v.Counter("drop_unsolicited", m.Unsolicited.Load())
	v.Counter("drop_oversized", m.Oversized.Load())
	v.Counter("drop_strict_policy", m.StrictPolicy.Load())
	v.Counter("drop_bad_handshake", m.BadHandshake.Load())
	v.Counter("drop_s1_ratelimit", m.S1RateLimited.Load())
	// Unknown counts lookups, not drops: it stays outside the drop_ family
	// so I3's dropped == Σ drop_<reason> equality holds.
	v.Counter("unknown_assoc", m.Unknown.Load())
	v.Counter("extracted_bytes", m.ExtractedBytes.Load())
	v.Histogram("extracted_size_bytes", m.ExtractedSize.Snapshot())
}

// AdmissionMetrics counts the connect-token admission stage in front of
// session creation: tokens that checked out, and rejections split by
// reason. Every rejection increments both the aggregate and exactly one
// reason counter (NoteDrop), so the family honours the I3 drop-budget
// invariant exactly: dropped == Σ drop_admission_<reason>.
type AdmissionMetrics struct {
	// TokensVerified counts HS1 tokens that decrypted, validated and
	// matched the source address — each one admits a session.
	TokensVerified Counter
	// AnchorsBound counts verified tokens that additionally bound the
	// client's hash-chain/Merkle anchors (allowing the §3.4 signature
	// verify to be skipped).
	AnchorsBound Counter
	Dropped      Counter

	Missing, Invalid, Expired Counter
	Replayed, AddrMismatch    Counter
	// WindowRotations counts replay-window generation swaps.
	WindowRotations Counter
	// Storms counts admission-storm anomaly triggers (flood detection).
	Storms Counter
}

// DropCounter returns the per-reason counter for an admission Reason code,
// or nil for codes the admission stage never emits.
func (m *AdmissionMetrics) DropCounter(code uint32) *Counter {
	switch code {
	case ReasonAdmissionMissing:
		return &m.Missing
	case ReasonAdmissionInvalid:
		return &m.Invalid
	case ReasonAdmissionExpired:
		return &m.Expired
	case ReasonAdmissionReplayed:
		return &m.Replayed
	case ReasonAdmissionAddrMismatch:
		return &m.AddrMismatch
	default:
		return nil
	}
}

// NoteDrop records one rejected HS packet under its admission Reason code:
// aggregate and reason move together, keeping I3 an equality.
//
//alpha:hotpath
func (m *AdmissionMetrics) NoteDrop(code uint32) {
	m.Dropped.Inc()
	if c := m.DropCounter(code); c != nil {
		c.Inc()
	} else {
		m.Invalid.Inc()
	}
}

// Walk reports every metric to v. Reasons export under drop_admission_* so
// the generic I3 checker sums them against dropped.
func (m *AdmissionMetrics) Walk(v Visitor) {
	v.Counter("tokens_verified", m.TokensVerified.Load())
	v.Counter("anchors_bound", m.AnchorsBound.Load())
	v.Counter("dropped", m.Dropped.Load())
	v.Counter("drop_admission_missing", m.Missing.Load())
	v.Counter("drop_admission_invalid", m.Invalid.Load())
	v.Counter("drop_admission_expired", m.Expired.Load())
	v.Counter("drop_admission_replayed", m.Replayed.Load())
	v.Counter("drop_admission_addr_mismatch", m.AddrMismatch.Load())
	v.Counter("window_rotations", m.WindowRotations.Load())
	v.Counter("storms", m.Storms.Load())
}

// IOMetrics counts one socket path's batched datagram I/O: how many socket
// operations moved how many datagrams. On the recvmmsg/sendmmsg engine one
// batch is one syscall, so datagrams−batches is the syscall budget that
// batching saved (exported as io_*_syscalls_saved); on the portable
// fallback every operation carries a single datagram and the saving reads
// zero — which is exactly the comparison BenchmarkUDPBurst records.
type IOMetrics struct {
	ReadBatches      Counter
	WriteBatches     Counter
	DatagramsRead    Counter
	DatagramsWritten Counter

	// ReadBatchSize / WriteBatchSize bucket datagrams-per-operation — the
	// live evidence behind tuning -io-batch.
	ReadBatchSize  Histogram
	WriteBatchSize Histogram

	// Offload-tier accounting (the GSO/GRO/zero-copy engine). A GSO send is
	// one sendmmsg header whose UDP_SEGMENT cmsg packs a run of equal-size
	// datagrams into a single kernel UDP traversal; a GRO split is one
	// coalesced inbound datagram recovered into its segments. Segments minus
	// sends/splits is therefore the kernel-traversal budget the offload tier
	// saved on top of PR 3's syscall batching (exported as
	// io_send_traversals_saved / io_recv_traversals_saved).
	GSOSends    Counter // send headers carrying a UDP_SEGMENT cmsg
	GSOSegments Counter // datagrams packed inside those GSO sends
	GROSplits   Counter // coalesced inbound datagrams that were split
	GROSegments Counter // datagrams recovered from coalesced reads

	// Zero-copy send accounting: sends flagged MSG_ZEROCOPY, errqueue
	// completions reaped (Copied counts completions where the kernel fell
	// back to copying, e.g. loopback), and downgrades to the plain send
	// path (ENOBUFS, slot exhaustion, persistent copy fallback).
	ZeroCopySends       Counter
	ZeroCopyCompletions Counter
	ZeroCopyCopied      Counter
	ZeroCopyDowngrades  Counter

	// GSOSegsPerSend / GROSegsPerRead bucket segments-per-offload-operation,
	// the live evidence that runs actually coalesce.
	GSOSegsPerSend Histogram
	GROSegsPerRead Histogram
}

// Init fixes the histogram bucket layouts.
func (m *IOMetrics) Init() *IOMetrics {
	m.ReadBatchSize.Init(BatchBuckets)
	m.WriteBatchSize.Init(BatchBuckets)
	m.GSOSegsPerSend.Init(BatchBuckets)
	m.GROSegsPerRead.Init(BatchBuckets)
	return m
}

// NoteRead records one read operation that delivered n datagrams.
func (m *IOMetrics) NoteRead(n int) {
	m.ReadBatches.Inc()
	m.DatagramsRead.Add(uint64(n))
	m.ReadBatchSize.Observe(int64(n))
}

// NoteWrite records one write operation that sent n datagrams.
func (m *IOMetrics) NoteWrite(n int) {
	m.WriteBatches.Inc()
	m.DatagramsWritten.Add(uint64(n))
	m.WriteBatchSize.Observe(int64(n))
}

// NoteGSOWrite records one UDP_SEGMENT-tagged send header that packed segs
// datagrams into a single kernel traversal.
func (m *IOMetrics) NoteGSOWrite(segs int) {
	m.GSOSends.Inc()
	m.GSOSegments.Add(uint64(segs))
	m.GSOSegsPerSend.Observe(int64(segs))
}

// NoteGRORead records one coalesced inbound datagram split into segs
// segments.
func (m *IOMetrics) NoteGRORead(segs int) {
	m.GROSplits.Inc()
	m.GROSegments.Add(uint64(segs))
	m.GROSegsPerRead.Observe(int64(segs))
}

// NoteZeroCopySend records one sendmmsg header flagged MSG_ZEROCOPY.
func (m *IOMetrics) NoteZeroCopySend() { m.ZeroCopySends.Inc() }

// NoteZeroCopyCompletion records one errqueue completion notification;
// copied marks completions where the kernel fell back to copying the pages.
func (m *IOMetrics) NoteZeroCopyCompletion(copied bool) {
	m.ZeroCopyCompletions.Inc()
	if copied {
		m.ZeroCopyCopied.Inc()
	}
}

// NoteZeroCopyDowngrade records one fall-back from the zero-copy send path
// to the plain (copying) path.
func (m *IOMetrics) NoteZeroCopyDowngrade() { m.ZeroCopyDowngrades.Inc() }

// Walk reports every metric to v, including the derived syscalls-saved and
// traversals-saved pairs.
func (m *IOMetrics) Walk(v Visitor) {
	rb, wb := m.ReadBatches.Load(), m.WriteBatches.Load()
	dr, dw := m.DatagramsRead.Load(), m.DatagramsWritten.Load()
	v.Counter("io_read_batches", rb)
	v.Counter("io_write_batches", wb)
	v.Counter("io_datagrams_read", dr)
	v.Counter("io_datagrams_written", dw)
	var savedR, savedW uint64
	if dr > rb {
		savedR = dr - rb
	}
	if dw > wb {
		savedW = dw - wb
	}
	v.Counter("io_read_syscalls_saved", savedR)
	v.Counter("io_write_syscalls_saved", savedW)
	v.Histogram("io_read_batch_size", m.ReadBatchSize.Snapshot())
	v.Histogram("io_write_batch_size", m.WriteBatchSize.Snapshot())

	gsends, gsegs := m.GSOSends.Load(), m.GSOSegments.Load()
	gsplits, grsegs := m.GROSplits.Load(), m.GROSegments.Load()
	v.Counter("io_gso_sends", gsends)
	v.Counter("io_gso_segments", gsegs)
	v.Counter("io_gro_splits", gsplits)
	v.Counter("io_gro_segments", grsegs)
	var savedTx, savedRx uint64
	if gsegs > gsends {
		savedTx = gsegs - gsends
	}
	if grsegs > gsplits {
		savedRx = grsegs - gsplits
	}
	v.Counter("io_send_traversals_saved", savedTx)
	v.Counter("io_recv_traversals_saved", savedRx)
	v.Counter("io_zerocopy_sends", m.ZeroCopySends.Load())
	v.Counter("io_zerocopy_completions", m.ZeroCopyCompletions.Load())
	v.Counter("io_zerocopy_copied", m.ZeroCopyCopied.Load())
	v.Counter("io_zerocopy_downgrades", m.ZeroCopyDowngrades.Load())
	v.Histogram("io_gso_segs_per_send", m.GSOSegsPerSend.Snapshot())
	v.Histogram("io_gro_segs_per_read", m.GROSegsPerRead.Snapshot())
}

// RelayTransportMetrics counts the UDP relay's socket-level activity — the
// datagram layer beneath relay.Relay's per-verdict counters.
type RelayTransportMetrics struct {
	IO IOMetrics

	Datagrams Counter // datagrams read off the socket
	Bytes     Counter // bytes read off the socket
	// UnknownPeerDrops counts datagrams from addresses other than the two
	// configured peers, discarded before verification (previously a silent
	// continue).
	UnknownPeerDrops Counter
	// WriteErrors counts forwarding batches the socket refused — the
	// relay's only way to lose a verified packet after the verdict.
	WriteErrors Counter
	// PrefilterDrops counts datagrams the stateless prefilter rejected
	// before verification (bad structure or address-bound cookie
	// mismatch).
	PrefilterDrops Counter
}

// Init fixes the embedded histogram layouts.
func (m *RelayTransportMetrics) Init() *RelayTransportMetrics {
	m.IO.Init()
	return m
}

// Walk reports every metric to v.
func (m *RelayTransportMetrics) Walk(v Visitor) {
	v.Counter("datagrams", m.Datagrams.Load())
	v.Counter("bytes", m.Bytes.Load())
	v.Counter("unknown_peer_drops", m.UnknownPeerDrops.Load())
	v.Counter("write_errors", m.WriteErrors.Load())
	v.Counter("drop_prefilter", m.PrefilterDrops.Load())
	m.IO.Walk(v)
}

// TransportMetrics counts UDP server activity: session lifecycle and the
// datagram drops that previously vanished without a trace.
type TransportMetrics struct {
	IO IOMetrics

	SessionsCreated Counter
	SessionsRemoved Counter
	ActiveSessions  Gauge
	Accepted        Counter

	Datagrams Counter // datagrams read off the socket
	Bytes     Counter // bytes read off the socket

	// InboxDrops counts datagrams dropped because a session worker's
	// bounded inbox was full (back-pressure, the UDP-native semantics).
	InboxDrops Counter
	// UnknownAssocDrops counts non-handshake datagrams for associations
	// this server does not hold.
	UnknownAssocDrops Counter
	// ShortDatagrams counts reads below the minimum header size.
	ShortDatagrams Counter
	// EndpointFailures counts handshakes that could not spawn an endpoint.
	EndpointFailures Counter
	// EventDrops counts engine events discarded because a session's event
	// channel was full (slow or absent consumer; delivery is best-effort).
	EventDrops Counter

	// PrefilterDrops counts datagrams the stateless prefilter rejected
	// before any session-map lookup or MAC (bad structure or address-bound
	// cookie mismatch).
	PrefilterDrops Counter
	// AcceptBacklogDrops counts established sessions discarded because the
	// accept backlog was at its cap.
	AcceptBacklogDrops Counter

	// Generation-rotation accounting: Rotations counts map swaps,
	// SessionsExpired counts idle associations retired by a swap (a subset
	// of SessionsRemoved).
	Rotations       Counter
	SessionsExpired Counter

	// Worker-pool accounting: Workers is the pool size, RunQueueDepth the
	// current number of associations queued for a worker, and
	// DispatchLatency buckets socket-read-to-engine-handle time — the p99
	// of this histogram is the flatness claim BenchmarkScale records.
	Workers         Gauge
	RunQueueDepth   Gauge
	DispatchLatency Histogram
}

// Init fixes the embedded histogram layouts; counters need no setup.
func (m *TransportMetrics) Init() *TransportMetrics {
	m.IO.Init()
	m.DispatchLatency.Init(LatencyBuckets)
	return m
}

// Walk reports every metric to v.
func (m *TransportMetrics) Walk(v Visitor) {
	m.IO.Walk(v)
	v.Counter("sessions_created", m.SessionsCreated.Load())
	v.Counter("sessions_removed", m.SessionsRemoved.Load())
	v.Gauge("active_sessions", m.ActiveSessions.Load())
	v.Counter("accepted", m.Accepted.Load())
	v.Counter("datagrams", m.Datagrams.Load())
	v.Counter("bytes", m.Bytes.Load())
	v.Counter("inbox_drops", m.InboxDrops.Load())
	v.Counter("unknown_assoc_drops", m.UnknownAssocDrops.Load())
	v.Counter("short_datagrams", m.ShortDatagrams.Load())
	v.Counter("endpoint_failures", m.EndpointFailures.Load())
	v.Counter("event_drops", m.EventDrops.Load())
	v.Counter("drop_prefilter", m.PrefilterDrops.Load())
	v.Counter("drop_accept_backlog", m.AcceptBacklogDrops.Load())
	v.Counter("rotations", m.Rotations.Load())
	v.Counter("sessions_expired", m.SessionsExpired.Load())
	v.Gauge("workers", m.Workers.Load())
	v.Gauge("run_queue_depth", m.RunQueueDepth.Load())
	v.Histogram("dispatch_latency_ns", m.DispatchLatency.Snapshot())
}
