// Lock-free histograms with fixed bucket layouts.
//
// Bucket bounds are chosen at Init time and never change, so Observe is a
// short linear scan over a small in-cache bounds slice followed by one
// atomic add — no locks, no allocation, no resizing. Fixed layouts also
// make histograms mergeable across endpoints (the UDP server sums its
// sessions' histograms at scrape time) and directly exportable as
// cumulative Prometheus buckets.

package telemetry

import "sync/atomic"

// LatencyBuckets is the standard bucket layout for durations, in
// nanoseconds: 50µs to 10s, roughly 1-2.5-5 per decade. It brackets
// everything from same-host RTTs to the paper's interactive-traffic limit
// (Table 5 reports multi-second signature latencies for large batches).
var LatencyBuckets = []int64{
	50_000, 100_000, 250_000, 500_000, // 50µs .. 500µs
	1_000_000, 2_500_000, 5_000_000, 10_000_000, // 1ms .. 10ms
	25_000_000, 50_000_000, 100_000_000, 250_000_000, // 25ms .. 250ms
	500_000_000, 1_000_000_000, 2_500_000_000, 5_000_000_000, // 500ms .. 5s
	10_000_000_000, // 10s
}

// SizeBuckets is the standard bucket layout for byte sizes: 16 B to 64 KiB
// in powers of two, bracketing ALPHA payloads (a UDP datagram caps the top).
var SizeBuckets = []int64{
	16, 32, 64, 128, 256, 512,
	1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10,
}

// BatchBuckets is the bucket layout for datagrams-per-syscall batch sizes
// on the batched UDP I/O paths: powers of two from a lone datagram up past
// the default recvmmsg/sendmmsg window, so the histogram shows directly how
// full each socket operation ran.
var BatchBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Histogram counts observations into fixed buckets. It must be initialized
// with Init before use; Observe on an uninitialized histogram is a no-op.
// All methods are safe for concurrent use and allocation-free except
// Snapshot.
type Histogram struct {
	bounds []int64         // ascending upper bounds (inclusive)
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Int64
}

// Init fixes the bucket layout. bounds must be ascending; the caller keeps
// ownership conceptually but must not mutate it afterwards.
func (h *Histogram) Init(bounds []int64) {
	h.bounds = bounds
	h.counts = make([]atomic.Uint64, len(bounds)+1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if len(h.counts) == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts has one extra entry
	// for the overflow (+Inf) bucket.
	Bounds []int64
	Counts []uint64
	Sum    int64
	Count  uint64
}

// Snapshot copies the current counts. Buckets are read individually, so a
// snapshot taken under concurrent writes may be off by in-flight
// observations — never torn memory.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Sum: h.sum.Load()}
	s.Counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// AddTo merges this histogram into dst, which must share the same bucket
// layout (it is a no-op when layouts differ, so merging a zero-value
// histogram is harmless).
func (h *Histogram) AddTo(dst *Histogram) {
	if len(h.counts) == 0 || len(dst.counts) != len(h.counts) {
		return
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			dst.counts[i].Add(n)
		}
	}
	dst.sum.Add(h.sum.Load())
}
