// Export model: metric sets implement Walker; an Exporter owns a list of
// prefixed groups and renders them as Prometheus text, expvar-style JSON,
// or a human-readable text dump. All rendering happens off the hot path;
// only snapshots of atomics are read.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Visitor receives one metric per call during a Walk.
type Visitor interface {
	Counter(name string, value uint64)
	Gauge(name string, value int64)
	Histogram(name string, snap HistogramSnapshot)
}

// Walker is anything that can report its metrics to a Visitor.
type Walker interface {
	Walk(Visitor)
}

// WalkerFunc adapts a function to the Walker interface, for dynamic groups
// (e.g. a server summing per-session metrics at scrape time).
type WalkerFunc func(Visitor)

// Walk calls f.
func (f WalkerFunc) Walk(v Visitor) { f(v) }

// Exporter aggregates named metric groups and renders them. Groups are
// walked in registration order; a group's prefix namespaces every metric it
// reports (prefix_name).
type Exporter struct {
	mu     sync.Mutex
	groups []exportGroup
	tracer *Tracer
}

type exportGroup struct {
	prefix string
	w      Walker
}

// NewExporter creates an empty exporter.
func NewExporter() *Exporter { return &Exporter{} }

// Register adds a metric group under a prefix (e.g. "alpha_endpoint").
// Registering the same prefix twice keeps both groups; callers own prefix
// uniqueness.
func (e *Exporter) Register(prefix string, w Walker) {
	e.mu.Lock()
	e.groups = append(e.groups, exportGroup{prefix: prefix, w: w})
	e.mu.Unlock()
}

// SetTracer attaches the tracer served by the /trace endpoint.
func (e *Exporter) SetTracer(t *Tracer) {
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

func (e *Exporter) snapshotGroups() []exportGroup {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]exportGroup(nil), e.groups...)
}

// Snapshot returns every registered metric keyed by its full name:
// counters and gauges as uint64/int64, histograms as HistogramSnapshot.
// This is the programmatic API the CLIs and examples print at exit.
func (e *Exporter) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, g := range e.snapshotGroups() {
		g.w.Walk(&mapVisitor{prefix: g.prefix, out: out})
	}
	return out
}

// mapVisitor flattens a walk into a name->value map.
type mapVisitor struct {
	prefix string
	out    map[string]any
}

func (m *mapVisitor) Counter(name string, v uint64)              { m.out[m.prefix+"_"+name] = v }
func (m *mapVisitor) Gauge(name string, v int64)                 { m.out[m.prefix+"_"+name] = v }
func (m *mapVisitor) Histogram(name string, h HistogramSnapshot) { m.out[m.prefix+"_"+name] = h }

// WriteText renders a sorted name value dump, one metric per line —
// the exit-summary format. Histograms print count/sum only.
func (e *Exporter) WriteText(w io.Writer) error {
	snap := e.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var err error
		switch v := snap[name].(type) {
		case HistogramSnapshot:
			_, err = fmt.Fprintf(w, "%-44s count=%d sum=%d\n", name, v.Count, v.Sum)
		default:
			_, err = fmt.Fprintf(w, "%-44s %v\n", name, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the Prometheus text exposition format: counters
// and gauges as single samples, histograms as cumulative _bucket/_sum/_count
// families.
func (e *Exporter) WritePrometheus(w io.Writer) error {
	for _, g := range e.snapshotGroups() {
		pv := &promVisitor{w: w, prefix: g.prefix}
		g.w.Walk(pv)
		if pv.err != nil {
			return pv.err
		}
	}
	return nil
}

type promVisitor struct {
	w      io.Writer
	prefix string
	err    error
}

func (p *promVisitor) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *promVisitor) Counter(name string, v uint64) {
	full := p.prefix + "_" + name
	p.printf("# TYPE %s counter\n%s %d\n", full, full, v)
}

func (p *promVisitor) Gauge(name string, v int64) {
	full := p.prefix + "_" + name
	p.printf("# TYPE %s gauge\n%s %d\n", full, full, v)
}

func (p *promVisitor) Histogram(name string, h HistogramSnapshot) {
	full := p.prefix + "_" + name
	p.printf("# TYPE %s histogram\n", full)
	cum := uint64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		p.printf("%s_bucket{le=\"%d\"} %d\n", full, bound, cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", full, h.Count)
	p.printf("%s_sum %d\n%s_count %d\n", full, h.Sum, full, h.Count)
}

// WriteJSON renders an expvar-style JSON object: one nested object per
// group prefix, histograms as {count, sum, buckets:[{le, n}]}.
func (e *Exporter) WriteJSON(w io.Writer) error {
	top := make(map[string]map[string]any)
	for _, g := range e.snapshotGroups() {
		obj, ok := top[g.prefix]
		if !ok {
			obj = make(map[string]any)
			top[g.prefix] = obj
		}
		g.w.Walk(&jsonVisitor{out: obj})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(top)
}

type jsonVisitor struct{ out map[string]any }

func (j *jsonVisitor) Counter(name string, v uint64) { j.out[name] = v }
func (j *jsonVisitor) Gauge(name string, v int64)    { j.out[name] = v }
func (j *jsonVisitor) Histogram(name string, h HistogramSnapshot) {
	type bucket struct {
		LE uint64 `json:"le"`
		N  uint64 `json:"n"`
	}
	buckets := make([]bucket, 0, len(h.Bounds))
	for i, bound := range h.Bounds {
		if h.Counts[i] > 0 {
			buckets = append(buckets, bucket{LE: uint64(bound), N: h.Counts[i]})
		}
	}
	j.out[name] = map[string]any{
		"count":    h.Count,
		"sum":      h.Sum,
		"overflow": h.Counts[len(h.Counts)-1],
		"buckets":  buckets,
	}
}
