// Export model: metric sets implement Walker; an Exporter owns a list of
// prefixed groups and renders them as Prometheus text, expvar-style JSON,
// or a human-readable text dump. All rendering happens off the hot path;
// only snapshots of atomics are read.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Visitor receives one metric per call during a Walk.
type Visitor interface {
	Counter(name string, value uint64)
	Gauge(name string, value int64)
	Histogram(name string, snap HistogramSnapshot)
}

// Walker is anything that can report its metrics to a Visitor.
type Walker interface {
	Walk(Visitor)
}

// WalkerFunc adapts a function to the Walker interface, for dynamic groups
// (e.g. a server summing per-session metrics at scrape time).
type WalkerFunc func(Visitor)

// Walk calls f.
func (f WalkerFunc) Walk(v Visitor) { f(v) }

// Exporter aggregates named metric groups and renders them. Groups are
// walked in registration order; a group's prefix namespaces every metric it
// reports (prefix_name). Groups may carry a label set, and may be produced
// dynamically at scrape time — the mechanism behind per-association metric
// families whose membership changes as sessions come and go.
type Exporter struct {
	mu      sync.Mutex
	groups  []exportGroup
	dynamic []GroupFunc
	tracer  *Tracer
}

type exportGroup struct {
	prefix string
	labels string // rendered inside {} in Prometheus output; "" for none
	w      Walker
}

// GroupFunc produces metric groups at scrape time. It is called with the
// exporter's lock NOT held and must call emit once per group it wants
// rendered in this scrape. Labels use Prometheus pair syntax without
// braces, e.g. `assoc="4f2a90cc01d7b3e6"`.
type GroupFunc func(emit func(prefix, labels string, w Walker))

// NewExporter creates an empty exporter.
func NewExporter() *Exporter { return &Exporter{} }

// Register adds a metric group under a prefix (e.g. "alpha_endpoint").
// Registering the same prefix twice keeps both groups; callers own prefix
// uniqueness.
func (e *Exporter) Register(prefix string, w Walker) {
	e.RegisterLabeled(prefix, "", w)
}

// RegisterLabeled adds a metric group whose samples carry a fixed label set
// (e.g. prefix "alpha_session", labels `assoc="4f2a..."`). In Prometheus
// output the labels render inside braces; in JSON/text/Snapshot output they
// are folded into the group key as prefix{labels}, so two groups sharing a
// prefix but not labels stay distinct.
func (e *Exporter) RegisterLabeled(prefix, labels string, w Walker) {
	e.mu.Lock()
	e.groups = append(e.groups, exportGroup{prefix: prefix, labels: labels, w: w})
	e.mu.Unlock()
}

// RegisterDynamic adds a scrape-time group producer. Each render calls f to
// enumerate the groups that exist right now — the natural fit for
// per-session metric families under churn, where registering each session
// individually would leak groups as sessions retire.
func (e *Exporter) RegisterDynamic(f GroupFunc) {
	e.mu.Lock()
	e.dynamic = append(e.dynamic, f)
	e.mu.Unlock()
}

// SetTracer attaches the tracer served by the /trace endpoint.
func (e *Exporter) SetTracer(t *Tracer) {
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

func (e *Exporter) snapshotGroups() []exportGroup {
	e.mu.Lock()
	groups := append([]exportGroup(nil), e.groups...)
	dynamic := append([]GroupFunc(nil), e.dynamic...)
	e.mu.Unlock()
	// Dynamic producers run unlocked: they may take their own locks (e.g.
	// a server's session table) and must not deadlock against Register.
	for _, f := range dynamic {
		f(func(prefix, labels string, w Walker) {
			groups = append(groups, exportGroup{prefix: prefix, labels: labels, w: w})
		})
	}
	return groups
}

// key returns the group's Snapshot/JSON identity: prefix{labels}, or just
// the prefix for unlabeled groups.
func (g exportGroup) key() string {
	if g.labels == "" {
		return g.prefix
	}
	return g.prefix + "{" + g.labels + "}"
}

// Snapshot returns every registered metric keyed by its full name:
// counters and gauges as uint64/int64, histograms as HistogramSnapshot.
// Labeled groups key as prefix_name{labels}. This is the programmatic API
// the CLIs and examples print at exit.
func (e *Exporter) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, g := range e.snapshotGroups() {
		g.w.Walk(&mapVisitor{prefix: g.prefix, labels: g.labels, out: out})
	}
	return out
}

// mapVisitor flattens a walk into a name->value map.
type mapVisitor struct {
	prefix string
	labels string
	out    map[string]any
}

func (m *mapVisitor) key(name string) string {
	if m.labels == "" {
		return m.prefix + "_" + name
	}
	return m.prefix + "_" + name + "{" + m.labels + "}"
}

func (m *mapVisitor) Counter(name string, v uint64)              { m.out[m.key(name)] = v }
func (m *mapVisitor) Gauge(name string, v int64)                 { m.out[m.key(name)] = v }
func (m *mapVisitor) Histogram(name string, h HistogramSnapshot) { m.out[m.key(name)] = h }

// WriteText renders a sorted name value dump, one metric per line —
// the exit-summary format. Histograms print count/sum only.
func (e *Exporter) WriteText(w io.Writer) error {
	snap := e.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var err error
		switch v := snap[name].(type) {
		case HistogramSnapshot:
			_, err = fmt.Fprintf(w, "%-44s count=%d sum=%d\n", name, v.Count, v.Sum)
		default:
			_, err = fmt.Fprintf(w, "%-44s %v\n", name, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the Prometheus text exposition format: counters
// and gauges as single samples, histograms as cumulative _bucket/_sum/_count
// families.
func (e *Exporter) WritePrometheus(w io.Writer) error {
	// typed is shared across groups so a metric family split over many
	// labeled groups (one per association) declares its TYPE exactly once.
	typed := make(map[string]bool)
	for _, g := range e.snapshotGroups() {
		pv := &promVisitor{w: w, prefix: g.prefix, labels: g.labels, typed: typed}
		g.w.Walk(pv)
		if pv.err != nil {
			return pv.err
		}
	}
	return nil
}

type promVisitor struct {
	w      io.Writer
	prefix string
	labels string
	typed  map[string]bool
	err    error
}

func (p *promVisitor) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// typeLine declares a family's TYPE on first sight.
func (p *promVisitor) typeLine(full, kind string) {
	if !p.typed[full] {
		p.typed[full] = true
		p.printf("# TYPE %s %s\n", full, kind)
	}
}

// sample renders one labeled or unlabeled sample line. extra is an optional
// pre-formatted label pair (e.g. `le="128"`) merged with the group labels.
func (p *promVisitor) sample(full, extra string, value any) {
	labels := p.labels
	switch {
	case labels == "":
		labels = extra
	case extra != "":
		labels = labels + "," + extra
	}
	if labels == "" {
		p.printf("%s %v\n", full, value)
	} else {
		p.printf("%s{%s} %v\n", full, labels, value)
	}
}

func (p *promVisitor) Counter(name string, v uint64) {
	full := p.prefix + "_" + name
	p.typeLine(full, "counter")
	p.sample(full, "", v)
}

func (p *promVisitor) Gauge(name string, v int64) {
	full := p.prefix + "_" + name
	p.typeLine(full, "gauge")
	p.sample(full, "", v)
}

func (p *promVisitor) Histogram(name string, h HistogramSnapshot) {
	full := p.prefix + "_" + name
	p.typeLine(full, "histogram")
	cum := uint64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		p.sample(full+"_bucket", fmt.Sprintf("le=%q", fmt.Sprint(bound)), cum)
	}
	p.sample(full+"_bucket", `le="+Inf"`, h.Count)
	p.sample(full+"_sum", "", h.Sum)
	p.sample(full+"_count", "", h.Count)
}

// WriteJSON renders an expvar-style JSON object: one nested object per
// group (labeled groups key as prefix{labels}), histograms as
// {count, sum, buckets:[{le, n}]}.
func (e *Exporter) WriteJSON(w io.Writer) error {
	top := make(map[string]map[string]any)
	for _, g := range e.snapshotGroups() {
		key := g.key()
		obj, ok := top[key]
		if !ok {
			obj = make(map[string]any)
			top[key] = obj
		}
		g.w.Walk(&jsonVisitor{out: obj})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(top)
}

type jsonVisitor struct{ out map[string]any }

func (j *jsonVisitor) Counter(name string, v uint64) { j.out[name] = v }
func (j *jsonVisitor) Gauge(name string, v int64)    { j.out[name] = v }
func (j *jsonVisitor) Histogram(name string, h HistogramSnapshot) {
	type bucket struct {
		LE uint64 `json:"le"`
		N  uint64 `json:"n"`
	}
	buckets := make([]bucket, 0, len(h.Bounds))
	for i, bound := range h.Bounds {
		if h.Counts[i] > 0 {
			buckets = append(buckets, bucket{LE: uint64(bound), N: h.Counts[i]})
		}
	}
	j.out[name] = map[string]any{
		"count":    h.Count,
		"sum":      h.Sum,
		"overflow": h.Counts[len(h.Counts)-1],
		"buckets":  buckets,
	}
}
