// HTTP exposure: /metrics (Prometheus text, or expvar-style JSON with
// ?format=json) and /trace (the tracer ring as JSON, decoded with kind and
// reason names). Handlers read only atomic snapshots; they never touch the
// hot path.

package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler returns a mux serving /metrics and /trace for this exporter.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", e.serveMetrics)
	mux.HandleFunc("/trace", e.serveTrace)
	return mux
}

func (e *Exporter) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = e.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = e.WritePrometheus(w)
}

// traceRecord is the JSON shape of one trace event.
type traceRecord struct {
	Time   int64  `json:"time_ns"`
	Kind   string `json:"kind"`
	Assoc  uint64 `json:"assoc"`
	Seq    uint32 `json:"seq,omitempty"`
	Detail uint32 `json:"detail,omitempty"`
	Reason string `json:"reason,omitempty"`
}

func (e *Exporter) serveTrace(w http.ResponseWriter, r *http.Request) {
	e.mu.Lock()
	t := e.tracer
	e.mu.Unlock()

	events := t.Snapshot() // nil-safe: no tracer means no events
	records := make([]traceRecord, len(events))
	for i, ev := range events {
		rec := traceRecord{
			Time:   ev.Time,
			Kind:   ev.Kind.String(),
			Assoc:  ev.Assoc,
			Seq:    ev.Seq,
			Detail: ev.Detail,
		}
		switch ev.Kind {
		case TraceDrop, TraceRelayDrop, TraceInboxDrop:
			rec.Reason = ReasonString(ev.Detail)
		}
		records[i] = rec
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(records)
}
