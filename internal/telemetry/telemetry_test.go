package telemetry

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 8, 10_000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("Counter = %d, want %d", got, goroutines*perG)
	}
	c.Add(5)
	if got := c.Load(); got != goroutines*perG+5 {
		t.Fatalf("Counter after Add = %d, want %d", got, goroutines*perG+5)
	}
}

func TestCounterSetMax(t *testing.T) {
	var c Counter
	c.SetMax(10)
	c.SetMax(3) // lower value must not win
	if got := c.Load(); got != 10 {
		t.Fatalf("SetMax regressed: %d, want 10", got)
	}
	// Concurrent racers: the maximum must survive.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.SetMax(uint64(g*1000 + i))
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 7999 {
		t.Fatalf("concurrent SetMax = %d, want 7999", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Load(); got != 1 {
		t.Fatalf("Gauge = %d, want 1", got)
	}
	g.Add(-5)
	if got := g.Load(); got != -4 {
		t.Fatalf("Gauge = %d, want -4", got)
	}
	g.Set(42)
	if got := g.Load(); got != 42 {
		t.Fatalf("Gauge = %d, want 42", got)
	}
}

func TestHistogramBoundaries(t *testing.T) {
	var h Histogram
	h.Init([]int64{10, 20, 30})
	h.Observe(1)  // bucket 0
	h.Observe(10) // bucket 0: bounds are inclusive
	h.Observe(11) // bucket 1
	h.Observe(30) // bucket 2
	h.Observe(31) // overflow
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 1+10+11+30+31 {
		t.Fatalf("Sum = %d, want %d", s.Sum, 1+10+11+30+31)
	}
}

func TestHistogramUninitializedIsNoop(t *testing.T) {
	var h Histogram
	h.Observe(5) // must not panic
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("uninitialized histogram recorded: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	h.Init(SizeBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("Count = %d, want 8000", s.Count)
	}
}

func TestHistogramAddTo(t *testing.T) {
	var a, b Histogram
	a.Init([]int64{10, 20})
	b.Init([]int64{10, 20})
	a.Observe(5)
	a.Observe(15)
	b.Observe(25)
	a.AddTo(&b)
	s := b.Snapshot()
	if s.Count != 3 || s.Sum != 45 {
		t.Fatalf("merged = count %d sum %d, want 3/45", s.Count, s.Sum)
	}
	// Mismatched layout: merge is a silent no-op.
	var c Histogram
	c.Init([]int64{1, 2, 3})
	a.AddTo(&c)
	if s := c.Snapshot(); s.Count != 0 {
		t.Fatalf("mismatched-layout merge recorded %d observations", s.Count)
	}
	// Merging an uninitialized source is harmless.
	var zero Histogram
	zero.AddTo(&b)
	if s := b.Snapshot(); s.Count != 3 {
		t.Fatalf("zero-value merge changed count to %d", s.Count)
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Trace(int64(i), TraceS1Sent, 7, uint32(i), 0)
	}
	if got := tr.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
	evs := tr.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("Snapshot returned %d events, want 16", len(evs))
	}
	// Oldest surviving event is #24, newest #39, in order.
	for i, ev := range evs {
		want := uint32(24 + i)
		if ev.Seq != want || ev.Time != int64(want) || ev.Assoc != 7 {
			t.Fatalf("event %d = %+v, want seq %d", i, ev, want)
		}
	}
}

func TestTracerSizing(t *testing.T) {
	if tr := NewTracer(0); len(tr.slots) != 1024 {
		t.Fatalf("default size = %d, want 1024", len(tr.slots))
	}
	if tr := NewTracer(3); len(tr.slots) != 16 {
		t.Fatalf("minimum size = %d, want 16", len(tr.slots))
	}
	if tr := NewTracer(100); len(tr.slots) != 128 {
		t.Fatalf("rounded size = %d, want 128", len(tr.slots))
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Trace(1, TraceDrop, 2, 3, 4) // must not panic
	if tr.Len() != 0 {
		t.Fatal("nil tracer has nonzero Len")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer returned a snapshot")
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(16)
	tr.Trace(100, TraceRelayDrop, 9, 1, ReasonUnsolicited)
	if got := tr.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	evs := tr.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != TraceRelayDrop || ev.Assoc != 9 || ev.Seq != 1 || ev.Detail != ReasonUnsolicited {
		t.Fatalf("event = %+v", ev)
	}
}

func TestReasonAndKindStrings(t *testing.T) {
	if got := ReasonString(ReasonInboxFull); got != "inbox_full" {
		t.Fatalf("ReasonString(ReasonInboxFull) = %q", got)
	}
	if got := ReasonString(9999); got != "unknown" {
		t.Fatalf("ReasonString(9999) = %q", got)
	}
	if got := TraceS2Verified.String(); got != "S2Verified" {
		t.Fatalf("TraceS2Verified = %q", got)
	}
	if got := TraceKind(200).String(); got != "Unknown" {
		t.Fatalf("TraceKind(200) = %q", got)
	}
}

func TestEndpointMetricsAddTo(t *testing.T) {
	src := NewEndpointMetrics()
	dst := NewEndpointMetrics()
	src.SentS1.Add(3)
	src.Delivered.Add(2)
	src.AckLatencyMaxNS.SetMax(500)
	dst.AckLatencyMaxNS.SetMax(900) // dst already holds a higher watermark
	src.AckLatency.Observe(1_000_000)
	src.AddTo(dst)
	if got := dst.SentS1.Load(); got != 3 {
		t.Fatalf("SentS1 = %d, want 3", got)
	}
	if got := dst.AckLatencyMaxNS.Load(); got != 900 {
		t.Fatalf("watermark merged by Add, not SetMax: %d", got)
	}
	if s := dst.AckLatency.Snapshot(); s.Count != 1 {
		t.Fatalf("histogram did not merge: count %d", s.Count)
	}
	// Merging again accumulates (counters), keeps max (watermarks).
	src.AddTo(dst)
	if got := dst.SentS1.Load(); got != 6 {
		t.Fatalf("second merge SentS1 = %d, want 6", got)
	}
	if got := dst.AckLatencyMaxNS.Load(); got != 900 {
		t.Fatalf("second merge watermark = %d, want 900", got)
	}
}

func TestRelayDropCounterMapping(t *testing.T) {
	m := new(RelayMetrics).Init()
	cases := map[uint32]*Counter{
		ReasonMalformed:    &m.Malformed,
		ReasonRateLimited:  &m.RateLimited,
		ReasonBadElement:   &m.BadElement,
		ReasonBadPayload:   &m.BadPayload,
		ReasonBadAck:       &m.BadAck,
		ReasonUnsolicited:  &m.Unsolicited,
		ReasonOversized:    &m.Oversized,
		ReasonStrictPolicy: &m.StrictPolicy,
		ReasonBadHandshake: &m.BadHandshake,
	}
	for code, want := range cases {
		if got := m.DropCounter(code); got != want {
			t.Fatalf("DropCounter(%s) returned wrong counter", ReasonString(code))
		}
	}
	if m.DropCounter(ReasonNone) != nil {
		t.Fatal("ReasonNone must have no counter")
	}
}

// Hot-path primitives must not allocate: the engine's zero-alloc discipline
// (DESIGN.md §5c) has to survive instrumentation.
func TestHotPathAllocs(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { c.SetMax(7) }); n != 0 {
		t.Errorf("Counter.SetMax allocates %.1f/op", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(100, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %.1f/op", n)
	}
	var h Histogram
	h.Init(LatencyBuckets)
	if n := testing.AllocsPerRun(100, func() { h.Observe(3_000_000) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op", n)
	}
	tr := NewTracer(64)
	if n := testing.AllocsPerRun(100, func() { tr.Trace(1, TraceS1Sent, 2, 3, 4) }); n != 0 {
		t.Errorf("Tracer.Trace allocates %.1f/op", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(100, func() { nilTr.Trace(1, TraceDrop, 2, 3, 4) }); n != 0 {
		t.Errorf("nil Tracer.Trace allocates %.1f/op", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	h.Init(LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 5_000_000_000)
	}
}

func BenchmarkTracerTrace(b *testing.B) {
	tr := NewTracer(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Trace(int64(i), TraceS1Sent, 7, uint32(i), 0)
	}
}
