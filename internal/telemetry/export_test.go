package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// populated builds an exporter with one endpoint group holding known values.
func populated() (*Exporter, *EndpointMetrics) {
	m := NewEndpointMetrics()
	m.SentS1.Add(3)
	m.Delivered.Add(2)
	m.BytesSent.Add(1234)
	m.PayloadSize.Observe(100) // bucket le=128
	m.PayloadSize.Observe(100)
	m.PayloadSize.Observe(300)     // bucket le=512
	m.PayloadSize.Observe(1 << 20) // overflow (> 64 KiB)
	e := NewExporter()
	e.Register("alpha_endpoint", m)
	return e, m
}

func TestSnapshotMap(t *testing.T) {
	e, _ := populated()
	snap := e.Snapshot()
	if got := snap["alpha_endpoint_sent_s1"]; got != uint64(3) {
		t.Fatalf("sent_s1 = %v, want 3", got)
	}
	if got := snap["alpha_endpoint_bytes_sent"]; got != uint64(1234) {
		t.Fatalf("bytes_sent = %v, want 1234", got)
	}
	h, ok := snap["alpha_endpoint_payload_size_bytes"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("payload_size_bytes is %T, want HistogramSnapshot", snap["alpha_endpoint_payload_size_bytes"])
	}
	if h.Count != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	e, _ := populated()
	var buf strings.Builder
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE alpha_endpoint_sent_s1 counter",
		"alpha_endpoint_sent_s1 3",
		"alpha_endpoint_delivered 2",
		"# TYPE alpha_endpoint_payload_size_bytes histogram",
		// Buckets are cumulative: two observations at le=128, three by le=512.
		`alpha_endpoint_payload_size_bytes_bucket{le="128"} 2`,
		`alpha_endpoint_payload_size_bytes_bucket{le="512"} 3`,
		// +Inf covers the 1 MiB overflow observation.
		`alpha_endpoint_payload_size_bytes_bucket{le="+Inf"} 4`,
		"alpha_endpoint_payload_size_bytes_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	e, _ := populated()
	var buf strings.Builder
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var top map[string]map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &top); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	ep := top["alpha_endpoint"]
	if ep == nil {
		t.Fatalf("missing alpha_endpoint group: %v", top)
	}
	if got := ep["sent_s1"]; got != float64(3) {
		t.Fatalf("sent_s1 = %v, want 3", got)
	}
	hist, ok := ep["payload_size_bytes"].(map[string]any)
	if !ok {
		t.Fatalf("payload_size_bytes = %T", ep["payload_size_bytes"])
	}
	if hist["count"] != float64(4) || hist["overflow"] != float64(1) {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestWriteText(t *testing.T) {
	e, _ := populated()
	var buf strings.Builder
	if err := e.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Sorted output, one metric per line: 19 counters + 15 per-reason drop
	// counters + 6 gauges + 2 histograms.
	if len(lines) != 42 {
		t.Fatalf("got %d lines, want 42\n%s", len(lines), buf.String())
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("output not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
	if !strings.Contains(buf.String(), "count=4 sum=") {
		t.Fatalf("histogram line missing count/sum:\n%s", buf.String())
	}
}

func TestWalkerFuncDynamicGroup(t *testing.T) {
	// A WalkerFunc computes its metrics at scrape time — the idiom the UDP
	// server uses to aggregate per-session endpoint metrics.
	calls := 0
	e := NewExporter()
	e.Register("dyn", WalkerFunc(func(v Visitor) {
		calls++
		v.Counter("scrapes", uint64(calls))
	}))
	if got := e.Snapshot()["dyn_scrapes"]; got != uint64(1) {
		t.Fatalf("first scrape = %v", got)
	}
	if got := e.Snapshot()["dyn_scrapes"]; got != uint64(2) {
		t.Fatalf("second scrape = %v, want 2 (walker must run per scrape)", got)
	}
}

func TestRegisterLabeled(t *testing.T) {
	e := NewExporter()
	a := NewEndpointMetrics()
	a.SentS1.Add(7)
	a.PayloadSize.Observe(100)
	b := NewEndpointMetrics()
	b.SentS1.Add(11)
	e.RegisterLabeled("alpha_session", `assoc="000000000000abcd"`, a)
	e.RegisterLabeled("alpha_session", `assoc="000000000000beef"`, b)

	var buf strings.Builder
	if err := e.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`alpha_session_sent_s1{assoc="000000000000abcd"} 7`,
		`alpha_session_sent_s1{assoc="000000000000beef"} 11`,
		// Histogram buckets merge the group labels with le.
		`alpha_session_payload_size_bytes_bucket{assoc="000000000000abcd",le="128"} 1`,
		`alpha_session_payload_size_bytes_sum{assoc="000000000000abcd"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// One family, two labeled groups: the TYPE line must not repeat.
	if n := strings.Count(out, "# TYPE alpha_session_sent_s1 counter"); n != 1 {
		t.Errorf("TYPE line for sent_s1 appears %d times, want 1", n)
	}

	// Snapshot and JSON keys keep the two associations distinct.
	snap := e.Snapshot()
	if got := snap[`alpha_session_sent_s1{assoc="000000000000abcd"}`]; got != uint64(7) {
		t.Errorf("labeled snapshot key = %v, want 7", got)
	}
	var jbuf strings.Builder
	if err := e.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var top map[string]map[string]any
	if err := json.Unmarshal([]byte(jbuf.String()), &top); err != nil {
		t.Fatal(err)
	}
	if got := top[`alpha_session{assoc="000000000000beef"}`]["sent_s1"]; got != float64(11) {
		t.Errorf("labeled JSON group = %v, want 11", got)
	}
}

func TestRegisterDynamic(t *testing.T) {
	// A dynamic producer enumerates groups at scrape time, so per-session
	// families follow session churn without leaking registrations.
	sessions := map[string]*EndpointMetrics{}
	add := func(label string, s1 uint64) {
		m := NewEndpointMetrics()
		m.SentS1.Add(s1)
		sessions[label] = m
	}
	add(`assoc="0000000000000001"`, 1)
	e := NewExporter()
	e.RegisterDynamic(func(emit func(prefix, labels string, w Walker)) {
		for label, m := range sessions {
			emit("alpha_session", label, m)
		}
	})
	if got := e.Snapshot()[`alpha_session_sent_s1{assoc="0000000000000001"}`]; got != uint64(1) {
		t.Fatalf("first scrape = %v, want 1", got)
	}
	add(`assoc="0000000000000002"`, 2)
	delete(sessions, `assoc="0000000000000001"`)
	snap := e.Snapshot()
	if _, ok := snap[`alpha_session_sent_s1{assoc="0000000000000001"}`]; ok {
		t.Fatal("retired session still exported")
	}
	if got := snap[`alpha_session_sent_s1{assoc="0000000000000002"}`]; got != uint64(2) {
		t.Fatalf("new session = %v, want 2", got)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	e, _ := populated()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "alpha_endpoint_sent_s1 3") {
		t.Fatalf("prometheus body missing counter:\n%s", body)
	}

	jresp, err := srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var top map[string]map[string]any
	if err := json.NewDecoder(jresp.Body).Decode(&top); err != nil {
		t.Fatalf("json format did not parse: %v", err)
	}
	if top["alpha_endpoint"]["delivered"] != float64(2) {
		t.Fatalf("json delivered = %v", top["alpha_endpoint"]["delivered"])
	}
}

func TestHTTPTraceEndpoint(t *testing.T) {
	e, _ := populated()
	tr := NewTracer(64)
	tr.Trace(1000, TraceS1Sent, 0xabc, 1, 8)
	tr.Trace(2000, TraceRelayDrop, 0xabc, 2, ReasonUnsolicited)
	e.SetTracer(tr)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var records []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d trace records, want 2", len(records))
	}
	if records[0]["kind"] != "S1Sent" || records[0]["assoc"] != float64(0xabc) {
		t.Fatalf("record 0 = %v", records[0])
	}
	// Drop events decode their Detail field into a reason name.
	if records[1]["kind"] != "RelayDrop" || records[1]["reason"] != "unsolicited" {
		t.Fatalf("record 1 = %v", records[1])
	}
	if _, ok := records[0]["reason"]; ok {
		t.Fatalf("non-drop record carries a reason: %v", records[0])
	}
}

func TestHTTPTraceEndpointNoTracer(t *testing.T) {
	e := NewExporter()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var records []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("tracerless /trace returned %d records", len(records))
	}
}
