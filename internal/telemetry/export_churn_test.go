package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestLabeledGroupChurn registers and retires 10k per-association labeled
// groups through a dynamic producer while a second goroutine scrapes
// continuously: every scrape must be well-formed, with exactly one
// Prometheus TYPE line per metric name no matter how membership moves
// between snapshot and render. Run with -race to make the locking claims
// real.
func TestLabeledGroupChurn(t *testing.T) {
	exp := NewExporter()
	var mu sync.Mutex
	groups := make(map[uint64]*EndpointMetrics)
	exp.RegisterDynamic(func(emit func(prefix, labels string, w Walker)) {
		mu.Lock()
		defer mu.Unlock()
		for a, m := range groups {
			emit("alpha_endpoint", fmt.Sprintf("assoc=%q", fmt.Sprintf("%016x", a)), m)
		}
	})

	const total = 10000
	const live = 64 // groups resident at any moment; the rest have retired

	scrape := func() string {
		var b bytes.Buffer
		if err := exp.WritePrometheus(&b); err != nil {
			t.Errorf("WritePrometheus: %v", err)
		}
		return b.String()
	}
	checkTypes := func(out string) {
		seen := make(map[string]bool)
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "# TYPE ") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			if seen[fields[2]] {
				t.Errorf("duplicate TYPE line for %s", fields[2])
			}
			seen[fields[2]] = true
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < total; i++ {
			m := NewEndpointMetrics()
			m.SentS1.Inc()
			m.NoteDrop(ReasonMalformed)
			mu.Lock()
			groups[i] = m
			if i >= live {
				delete(groups, i-live)
			}
			mu.Unlock()
		}
	}()

	scrapes := 0
	for {
		checkTypes(scrape())
		scrapes++
		select {
		case <-done:
			// One more after churn settles: the steady-state scrape must
			// show exactly the resident groups.
			out := scrape()
			checkTypes(out)
			if got := strings.Count(out, "alpha_endpoint_sent_s1{"); got != live {
				t.Fatalf("final scrape holds %d labeled sent_s1 samples, want %d", got, live)
			}
			if scrapes < 2 {
				t.Fatalf("churn finished before the scraper exercised it (%d scrapes)", scrapes)
			}
			return
		default:
		}
	}
}
