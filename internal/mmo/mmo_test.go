package mmo

import (
	"bytes"
	"crypto/aes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestDigestSize(t *testing.T) {
	h := New()
	if h.Size() != Size || Size != 16 {
		t.Fatalf("Size() = %d, want 16", h.Size())
	}
	if h.BlockSize() != BlockSize || BlockSize != 16 {
		t.Fatalf("BlockSize() = %d, want 16", h.BlockSize())
	}
	if got := h.Sum(nil); len(got) != Size {
		t.Fatalf("digest length %d, want %d", len(got), Size)
	}
}

func TestEmptyInputDeterministic(t *testing.T) {
	a := Sum(nil)
	b := Sum([]byte{})
	if a != b {
		t.Fatalf("empty digests differ: %x vs %x", a, b)
	}
}

func TestKnownCompression(t *testing.T) {
	// One full block with no partial data: the first compression must be
	// exactly E_iv(m) XOR m, followed by one padding block.
	m := bytes.Repeat([]byte{0x42}, 16)
	c, err := aes.NewCipher(iv[:])
	if err != nil {
		t.Fatal(err)
	}
	var enc [16]byte
	c.Encrypt(enc[:], m)
	var h1 [16]byte
	for i := range h1 {
		h1[i] = enc[i] ^ m[i]
	}
	// Now apply the padding block by hand: 0x80, zeros, 64-bit bit length
	// (128 bits = 0x80).
	pad := make([]byte, 16)
	pad[0] = 0x80
	pad[15] = 0x80 // 128 bits, big endian in last 8 bytes
	c2, err := aes.NewCipher(h1[:])
	if err != nil {
		t.Fatal(err)
	}
	var enc2, want [16]byte
	c2.Encrypt(enc2[:], pad)
	for i := range want {
		want[i] = enc2[i] ^ pad[i]
	}
	if got := Sum(m); got != want {
		t.Fatalf("Sum = %x, want %x", got, want)
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly and at length")
	for _, chunk := range []int{1, 3, 7, 16, 17, 64} {
		h := New()
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			h.Write(data[i:end])
		}
		got := h.Sum(nil)
		want := Sum(data)
		if !bytes.Equal(got, want[:]) {
			t.Fatalf("chunk %d: incremental %x != one-shot %x", chunk, got, want)
		}
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	h := New()
	h.Write([]byte("partial"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("repeated Sum differs: %x vs %x", first, second)
	}
	h.Write([]byte(" more"))
	cont := h.Sum(nil)
	want := Sum([]byte("partial more"))
	if !bytes.Equal(cont, want[:]) {
		t.Fatalf("continuing after Sum broke state: %x vs %x", cont, want)
	}
}

func TestResetRestartsHash(t *testing.T) {
	h := New()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("clean"))
	got := h.Sum(nil)
	want := Sum([]byte("clean"))
	if !bytes.Equal(got, want[:]) {
		t.Fatalf("Reset did not restart: %x vs %x", got, want)
	}
}

func TestLengthExtensionDistinct(t *testing.T) {
	// Inputs that are prefixes of each other must not collide (the
	// Merkle-Damgård strengthening at work).
	msgs := [][]byte{
		nil,
		{0x00},
		bytes.Repeat([]byte{0x00}, 15),
		bytes.Repeat([]byte{0x00}, 16),
		bytes.Repeat([]byte{0x00}, 17),
		bytes.Repeat([]byte{0x00}, 32),
	}
	seen := map[[Size]byte]int{}
	for i, m := range msgs {
		d := Sum(m)
		if j, dup := seen[d]; dup {
			t.Fatalf("inputs %d and %d collide: %x", i, j, d)
		}
		seen[d] = i
	}
}

func TestQuickDeterministicAndSensitive(t *testing.T) {
	// Property: equal inputs hash equal; flipping any single bit changes
	// the digest.
	f := func(data []byte, flipByte uint16, flipBit uint8) bool {
		a := Sum(data)
		if a != Sum(data) {
			return false
		}
		if len(data) == 0 {
			return true
		}
		mut := append([]byte(nil), data...)
		mut[int(flipByte)%len(mut)] ^= 1 << (flipBit % 8)
		if bytes.Equal(mut, data) {
			return true // flip was a no-op is impossible, but be safe
		}
		return Sum(mut) != a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctLengthsDistinctDigests(t *testing.T) {
	// Smoke check for accidental state truncation across many sizes.
	seen := map[[Size]byte]int{}
	for n := 0; n < 200; n++ {
		data := bytes.Repeat([]byte{0xA5}, n)
		d := Sum(data)
		if prev, dup := seen[d]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[d] = n
	}
}

func BenchmarkMMO16B(b *testing.B) { benchMMO(b, 16) }
func BenchmarkMMO84B(b *testing.B) { benchMMO(b, 84) }

func benchMMO(b *testing.B, n int) {
	data := bytes.Repeat([]byte{0x5A}, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}

func ExampleSum() {
	d := Sum([]byte("sensor reading 42"))
	fmt.Println(len(d))
	// Output: 16
}
